(* Experiment harness: regenerates every table of the paper's evaluation
   (the paper has no figures).

     dune exec bench/main.exe            -- all tables + ablations
     dune exec bench/main.exe table3     -- one table
     dune exec bench/main.exe -- --qp-limit 60 table3

   Tables are printed in the paper's layout so EXPERIMENTS.md can compare
   row by row.  Absolute costs differ from the paper (our TPC-C widths and
   statistics assumptions are derived independently, and our MIP solver is
   in-repo rather than GLPK); the shapes are what must match.

   Defaults follow Section 5 with one deliberate change documented in
   DESIGN.md: the paper's objective (6) weights cost by lambda yet its
   narrative and results require the cost term to dominate, so experiments
   run at lambda = 0.9 (the paper's stated lambda = 0.1 under the swapped
   reading). *)

open Vpart

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  mutable qp_limit : float;       (* seconds per QP solve *)
  mutable lambda : float;
  mutable p : float;
  mutable max_rows : int;
  mutable sa_seed : int;
  mutable unit_ : float;          (* cost display unit *)
  mutable json_out : string option;  (* machine-readable results + metrics *)
}

let cfg =
  (* max_rows follows the solver's actual default cap (Mip.default_limits)
     instead of a hard-coded stamp, so BENCH_N.json config provenance
     cannot go stale when the solver raises its ceiling. *)
  { qp_limit = 30.; lambda = 0.9; p = 8.;
    max_rows = Option.value Mip.default_limits.Mip.max_rows ~default:max_int;
    sa_seed = 1; unit_ = 1000.; json_out = None }

(* Per-job machine-readable results, written to [cfg.json_out] at exit
   together with the in-process metrics summary. *)
let json_results : (string * Json.t) list ref = ref []

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let hr () = print_endline (String.make 78 '-')

(* ------------------------------------------------------------------ *)
(* Instance cache                                                      *)
(* ------------------------------------------------------------------ *)

let instance_cache : (string, Instance.t) Hashtbl.t = Hashtbl.create 16

let get_instance name =
  match Hashtbl.find_opt instance_cache name with
  | Some i -> i
  | None ->
    let i =
      match name with
      | "TPC-C v5" -> Lazy.force Tpcc.instance
      | "TATP" -> Lazy.force Tatp.instance
      | "SmallBank" -> Lazy.force Smallbank.instance
      | "Voter" -> Lazy.force Voter.instance
      | _ -> Instance_gen.generate (Instance_gen.find name)
    in
    Hashtbl.add instance_cache name i;
    i

(* ------------------------------------------------------------------ *)
(* Solver wrappers                                                     *)
(* ------------------------------------------------------------------ *)

type run = {
  cost_text : string;  (* paper style: plain, (parenthesised) or t/o *)
  cost : float option;
  seconds : float;
}

let fmt_cost c = Printf.sprintf "%.3f" (c /. cfg.unit_)

let qp_options ?(allow_replication = true) ?(use_grouping = true) ?(p = cfg.p)
    ?(lambda = cfg.lambda) ?(time_limit = cfg.qp_limit) sites =
  { Qp_solver.default_options with
    Qp_solver.num_sites = sites;
    p;
    lambda;
    allow_replication;
    use_grouping;
    time_limit;
    max_rows = Some cfg.max_rows;
  }

let qp_cost_text (r : Qp_solver.result) =
  match r.Qp_solver.outcome, r.Qp_solver.cost with
  | Qp_solver.Proved_optimal, Some c -> fmt_cost c
  | Qp_solver.Limit_feasible, Some c -> Printf.sprintf "(%s)" (fmt_cost c)
  | _ -> "t/o"

let run_qp ?allow_replication ?p ?lambda ?time_limit inst sites =
  let options = qp_options ?allow_replication ?p ?lambda ?time_limit sites in
  let r = Qp_solver.solve ~options inst in
  { cost_text = qp_cost_text r; cost = r.Qp_solver.cost;
    seconds = r.Qp_solver.elapsed }

let run_sa ?(allow_replication = true) ?(p = cfg.p) ?(lambda = cfg.lambda)
    ?(seed = cfg.sa_seed) inst sites =
  let options =
    { Sa_solver.default_options with
      Sa_solver.num_sites = sites;
      p;
      lambda;
      allow_replication;
      seed;
    }
  in
  let r = Sa_solver.solve ~options inst in
  {
    cost_text = fmt_cost r.Sa_solver.cost;
    cost = Some r.Sa_solver.cost;
    seconds = r.Sa_solver.elapsed;
  }

let single_site_cost ?(p = cfg.p) inst =
  let stats = Stats.compute inst ~p in
  Cost_model.cost stats (Partitioning.single_site inst)

(* ------------------------------------------------------------------ *)
(* Table 1: parameter influence on the SA solver                       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: effect of generator parameters (SA solver)";
  Printf.printf
    "Costs in units of 10^3; defaults A=3 B=10%% C=15 D=5 E=15 F={4,8}\n\
     (the middle value of each block); one parameter varies at a time.\n";
  let base size =
    { Instance_gen.default_params with
      Instance_gen.num_tables = size;
      num_transactions = size;
    }
  in
  let variations =
    [ ("A Max queries/txn",
       [ "1"; "3"; "5" ],
       fun prm v -> { prm with Instance_gen.max_queries_per_txn = int_of_string v });
      ("B Percent updates",
       [ "0"; "10"; "30" ],
       fun prm v -> { prm with Instance_gen.update_percent = int_of_string v });
      ("C Max attrs/table",
       [ "5"; "15"; "35" ],
       fun prm v -> { prm with Instance_gen.max_attrs_per_table = int_of_string v });
      ("D Max tables/query",
       [ "2"; "5"; "10" ],
       fun prm v -> { prm with Instance_gen.max_tables_per_query = int_of_string v });
      ("E Max attrs/query",
       [ "5"; "15"; "25" ],
       fun prm v -> { prm with Instance_gen.max_attrs_per_query = int_of_string v });
      ("F widths",
       [ "{2,4,8}"; "{4,8}"; "{4,8,16}" ],
       fun prm v ->
         let widths =
           match v with
           | "{2,4,8}" -> [| 2; 4; 8 |]
           | "{4,8}" -> [| 4; 8 |]
           | _ -> [| 4; 8; 16 |]
         in
         { prm with Instance_gen.widths });
    ]
  in
  Printf.printf "%-20s %-9s | %8s %8s %8s | %8s %8s %8s\n" "parameter" "value"
    "20:S=1" "20:S=2" "20:S=3" "100:S=1" "100:S=2" "100:S=3";
  hr ();
  List.iter
    (fun (label, values, apply) ->
       List.iter
         (fun v ->
            Printf.printf "%-20s %-9s |" label v;
            List.iter
              (fun size ->
                 let params =
                   { (apply (base size) v) with
                     Instance_gen.name = Printf.sprintf "t1-%s-%s-%d" label v size }
                 in
                 let inst = Instance_gen.generate params in
                 List.iter
                   (fun sites ->
                      let cost =
                        if sites = 1 then single_site_cost inst
                        else
                          match (run_sa inst sites).cost with
                          | Some c -> c
                          | None -> nan
                      in
                      Printf.printf " %8s" (fmt_cost cost))
                   [ 1; 2; 3 ])
              [ 20; 100 ];
            Printf.printf "\n%!")
         values;
       hr ())
    variations

(* ------------------------------------------------------------------ *)
(* Table 2: the named random instances                                 *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: named random instance classes";
  Printf.printf "%-14s %3s %3s %3s %3s %3s %-12s %4s %7s %6s\n" "name" "A" "B"
    "C" "D" "E" "F" "|T|" "#tables" "|A|";
  hr ();
  List.iter
    (fun (prm : Instance_gen.params) ->
       let inst = get_instance prm.Instance_gen.name in
       Printf.printf "%-14s %3d %3d %3d %3d %3d %-12s %4d %7d %6d\n"
         prm.Instance_gen.name prm.Instance_gen.max_queries_per_txn
         prm.Instance_gen.update_percent prm.Instance_gen.max_attrs_per_table
         prm.Instance_gen.max_tables_per_query prm.Instance_gen.max_attrs_per_query
         (Printf.sprintf "{%s}"
            (String.concat ","
               (Array.to_list (Array.map string_of_int prm.Instance_gen.widths))))
         prm.Instance_gen.num_transactions prm.Instance_gen.num_tables
         (Instance.num_attrs inst))
    Instance_gen.catalog

(* ------------------------------------------------------------------ *)
(* Table 3: QP vs SA                                                   *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3: QP vs SA (replication allowed, remote placement)";
  Printf.printf
    "QP time limit %.0fs, MIP gap 0.1%%, model row cap %d (over-cap = t/o,\n\
     like the paper's 30-minute GLPK timeouts).  Costs in units of 10^3.\n"
    cfg.qp_limit cfg.max_rows;
  Printf.printf "%-14s %5s %4s %3s | %10s %8s | %10s %8s | %9s\n" "instance"
    "|A|" "|T|" "|S|" "QP cost" "QP s" "SA cost" "SA s" "|S|=1";
  hr ();
  let row inst_name sites =
    let inst = get_instance inst_name in
    let qp = run_qp inst sites in
    let sa = run_sa inst sites in
    Printf.printf "%-14s %5d %4d %3d | %10s %8.1f | %10s %8.2f | %9s\n%!"
      inst_name (Instance.num_attrs inst)
      (Instance.num_transactions inst) sites qp.cost_text qp.seconds sa.cost_text
      sa.seconds
      (fmt_cost (single_site_cost inst))
  in
  List.iter (fun s -> row "TPC-C v5" s) [ 2; 3; 4 ];
  hr ();
  List.iter
    (fun name -> row name 4)
    [ "rndAt4x15"; "rndAt8x15"; "rndAt16x15"; "rndAt32x15"; "rndAt64x15";
      "rndAt4x100"; "rndAt8x100"; "rndAt16x100"; "rndAt32x100"; "rndAt64x100" ];
  hr ();
  List.iter
    (fun name -> row name 4)
    [ "rndBt4x15"; "rndBt8x15"; "rndBt16x15"; "rndBt32x15"; "rndBt64x15";
      "rndBt4x100"; "rndBt8x100"; "rndBt16x100"; "rndBt32x100"; "rndBt64x100" ]

(* ------------------------------------------------------------------ *)
(* Table 4: a concrete TPC-C partitioning                              *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table 4: TPC-C partitioning for three sites (QP solver)";
  let inst = get_instance "TPC-C v5" in
  let options = qp_options ~time_limit:(Float.max cfg.qp_limit 60.) 3 in
  let r = Qp_solver.solve ~options inst in
  match r.Qp_solver.partitioning with
  | None -> print_endline "no solution found"
  | Some part ->
    Format.printf "%a@." (Report.pp_partitioning inst) part;
    (match r.Qp_solver.cost with
     | Some c -> Printf.printf "cost: %s (x10^3)\n" (fmt_cost c)
     | None -> ());
    Format.printf "%a@."
      (Report.pp_solution_summary inst ~p:cfg.p ~lambda:cfg.lambda) part

(* ------------------------------------------------------------------ *)
(* Table 5: replication vs disjoint partitioning                       *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "Table 5: with vs without attribute replication (QP solver)";
  Printf.printf "Costs in units of 10^3.\n";
  Printf.printf "%-14s %5s %4s %3s | %10s %7s | %10s %7s | %6s\n" "instance"
    "|A|" "|T|" "|S|" "w.repl" "s" "w/o repl" "s" "ratio";
  hr ();
  let row name sites =
    let inst = get_instance name in
    let w = run_qp ~allow_replication:true inst sites in
    let wo = run_qp ~allow_replication:false inst sites in
    let ratio =
      match w.cost, wo.cost with
      | Some a, Some b when b > 0. -> Printf.sprintf "%3.0f%%" (100. *. a /. b)
      | _ -> "-"
    in
    Printf.printf "%-14s %5d %4d %3d | %10s %7.1f | %10s %7.1f | %6s\n%!" name
      (Instance.num_attrs inst) (Instance.num_transactions inst) sites
      w.cost_text w.seconds wo.cost_text wo.seconds ratio
  in
  List.iter (fun s -> row "TPC-C v5" s) [ 1; 2; 3; 4 ];
  List.iter (fun n -> row n 2) [ "rndAt4x15"; "rndAt8x15"; "rndBt8x15"; "rndBt16x15" ]

(* ------------------------------------------------------------------ *)
(* Table 6: local vs remote partition placement                        *)
(* ------------------------------------------------------------------ *)

let table6 () =
  section "Table 6: local (p=0) vs remote (p=8) placement, with replication";
  Printf.printf "Costs in units of 10^3.\n";
  Printf.printf "%-14s %5s %4s %3s | %10s %10s | %10s %10s\n" "instance" "|A|"
    "|T|" "|S|" "loc QP" "loc SA" "rem QP" "rem SA";
  hr ();
  let row name sites =
    let inst = get_instance name in
    let lqp = run_qp ~p:0. inst sites in
    let lsa = run_sa ~p:0. inst sites in
    let rqp = run_qp ~p:cfg.p inst sites in
    let rsa = run_sa ~p:cfg.p inst sites in
    Printf.printf "%-14s %5d %4d %3d | %10s %10s | %10s %10s\n%!" name
      (Instance.num_attrs inst) (Instance.num_transactions inst) sites
      lqp.cost_text lsa.cost_text rqp.cost_text rsa.cost_text
  in
  List.iter (fun s -> row "TPC-C v5" s) [ 1; 2; 3 ];
  List.iter
    (fun n -> row n 2)
    [ "rndAt4x15"; "rndAt8x15"; "rndAt8x15u50"; "rndBt8x15"; "rndBt16x15";
      "rndBt16x15u50" ]

(* ------------------------------------------------------------------ *)
(* Ablations (beyond the paper)                                        *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation A: lambda sweep on TPC-C (2 sites, QP)";
  Printf.printf "%6s | %10s %12s %10s\n" "lambda" "cost (4)" "max work" "time";
  hr ();
  let inst = get_instance "TPC-C v5" in
  let stats = Stats.compute inst ~p:cfg.p in
  List.iter
    (fun lambda ->
       let r = Qp_solver.solve ~options:(qp_options ~lambda 2) inst in
       match r.Qp_solver.partitioning with
       | Some part ->
         Printf.printf "%6.2f | %10s %12s %9.2fs\n%!" lambda
           (fmt_cost (Cost_model.cost stats part))
           (fmt_cost (Cost_model.max_site_work stats part))
           r.Qp_solver.elapsed
       | None -> Printf.printf "%6.2f | no solution\n" lambda)
    [ 0.0; 0.1; 0.5; 0.9; 1.0 ];

  section "Ablation B: attribute grouping (reasonable cuts, paper sec. 4)";
  Printf.printf "%-14s | %8s %10s %8s | %8s %10s %8s\n" "instance" "grp rows"
    "grp cost" "grp s" "raw rows" "raw cost" "raw s";
  hr ();
  List.iter
    (fun name ->
       let inst = get_instance name in
       let solve g =
         Qp_solver.solve ~options:(qp_options ~use_grouping:g 2) inst
       in
       let a = solve true and b = solve false in
       Printf.printf "%-14s | %8d %10s %8.1f | %8d %10s %8.1f\n%!" name
         a.Qp_solver.model_rows (qp_cost_text a) a.Qp_solver.elapsed
         b.Qp_solver.model_rows (qp_cost_text b) b.Qp_solver.elapsed)
    [ "TPC-C v5"; "rndBt8x15" ];

  section "Ablation C: SA neighborhood size (move fraction, paper sec. 3)";
  Printf.printf "%9s | %10s %10s %10s\n" "fraction" "TPC-C" "rndAt8x15"
    "rndBt16x15";
  hr ();
  List.iter
    (fun frac ->
       Printf.printf "%8.0f%% |" (100. *. frac);
       List.iter
         (fun name ->
            let inst = get_instance name in
            let options =
              { Sa_solver.default_options with
                Sa_solver.num_sites = 2; p = cfg.p; lambda = cfg.lambda;
                move_fraction = frac; seed = cfg.sa_seed }
            in
            let r = Sa_solver.solve ~options inst in
            Printf.printf " %10s" (fmt_cost r.Sa_solver.cost))
         [ "TPC-C v5"; "rndAt8x15"; "rndBt16x15" ];
       Printf.printf "\n%!")
    [ 0.05; 0.10; 0.20; 0.50 ];

  section "Ablation D: cost model vs storage-engine measurement";
  let inst = get_instance "TPC-C v5" in
  let options =
    { Sa_solver.default_options with
      Sa_solver.num_sites = 3; p = cfg.p; lambda = cfg.lambda; seed = cfg.sa_seed }
  in
  let r = Sa_solver.solve ~options inst in
  let eng =
    Engine.deploy inst r.Sa_solver.partitioning ~table_rows:Tpcc.cardinalities
  in
  let c = Engine.run_workload eng in
  let b = Cost_model.breakdown inst r.Sa_solver.partitioning in
  Printf.printf
    "model:  AR=%.0f AW=%.0f B=%.0f  (cost (4) = %.0f)\n\
     engine: AR=%.0f AW=%.0f B=%.0f  (measured bytes, one workload pass)\n"
    b.Cost_model.read_local b.Cost_model.write_local b.Cost_model.transfer
    (b.Cost_model.read_local +. b.Cost_model.write_local
     +. (cfg.p *. b.Cost_model.transfer))
    c.Engine.bytes_read c.Engine.bytes_written c.Engine.bytes_transferred;
  Printf.printf "agreement: %s\n"
    (if
       Float.abs (c.Engine.bytes_read -. b.Cost_model.read_local) < 1e-6
       && Float.abs (c.Engine.bytes_written -. b.Cost_model.write_local) < 1e-6
       && Float.abs (c.Engine.bytes_transferred -. b.Cost_model.transfer) < 1e-6
     then "EXACT"
     else "MISMATCH");

  section "Ablation E: latency extension (Appendix A) on TPC-C, 3 sites";
  Printf.printf "%14s | %12s %12s\n" "layout" "cost (4)" "latency (pl=3)";
  hr ();
  let stats = Stats.compute inst ~p:cfg.p in
  let layouts =
    [ ("single site", Partitioning.single_site inst);
      ("SA 3 sites", r.Sa_solver.partitioning) ]
  in
  List.iter
    (fun (name, part) ->
       Printf.printf "%14s | %12s %12.1f\n" name
         (fmt_cost (Cost_model.cost stats part))
         (Cost_model.latency inst ~pl:3. part))
    layouts;

  section "Ablation F: availability under single-site failure (TPC-C, 3 sites)";
  Printf.printf
    "Replication is chosen for cost, but also buys fail-over: share of\n\
     transactions whose full read set survives the loss of one site.\n";
  Printf.printf "%-12s | %10s | %s\n" "layout" "replicated"
    "runnable after failure of site 1/2/3";
  hr ();
  let disjoint_part =
    let opts =
      { Sa_solver.default_options with
        Sa_solver.num_sites = 3; p = cfg.p; lambda = cfg.lambda;
        allow_replication = false; seed = cfg.sa_seed }
    in
    (Sa_solver.solve ~options:opts inst).Sa_solver.partitioning
  in
  List.iter
    (fun (name, part) ->
       let eng = Engine.deploy inst part in
       let replicated =
         let n = ref 0 in
         for a = 0 to Instance.num_attrs inst - 1 do
           if Partitioning.replicas part a > 1 then incr n
         done;
         !n
       in
       Printf.printf "%-12s | %7d/92 |" name replicated;
       for failed = 0 to 2 do
         let rep = Engine.survive_site_failure eng ~failed in
         Printf.printf "  %d/%d (%.0f%%)" rep.Engine.runnable_txns
           rep.Engine.total_txns
           (100. *. rep.Engine.runnable_weight)
       done;
       Printf.printf "\n%!")
    [ ("SA 3 sites", r.Sa_solver.partitioning); ("disjoint", disjoint_part) ]

(* ------------------------------------------------------------------ *)
(* Extension: H-store workload suite and solver/baseline comparison     *)
(* ------------------------------------------------------------------ *)

let suite () =
  section "Workload suite: solvers and baselines on H-store benchmarks";
  Printf.printf
    "QP/iterative limit %.0fs; costs in units of 10^3; lambda %.2f, p %.0f.\n"
    cfg.qp_limit cfg.lambda cfg.p;
  Printf.printf "%-10s %3s | %9s | %9s %9s %9s %9s %9s\n" "workload" "|S|"
    "1-site" "QP" "SA" "iter" "greedy" "affinity";
  hr ();
  List.iter
    (fun name ->
       let inst = get_instance name in
       List.iter
         (fun sites ->
            let qp = run_qp inst sites in
            let sa = run_sa inst sites in
            let it =
              Iterative_solver.solve
                ~options:{ Iterative_solver.default_options with
                           Iterative_solver.rounds = 3;
                           qp = qp_options sites }
                inst
            in
            let it_text =
              match it.Iterative_solver.cost with
              | Some c -> fmt_cost c
              | None -> "t/o"
            in
            let g =
              Greedy.solve
                ~options:{ Greedy.default_options with Greedy.num_sites = sites;
                           p = cfg.p; lambda = cfg.lambda }
                inst
            in
            let aff =
              Affinity.solve
                ~options:{ Affinity.num_sites = sites; p = cfg.p;
                           lambda = cfg.lambda }
                inst
            in
            Printf.printf "%-10s %3d | %9s | %9s %9s %9s %9s %9s\n%!" name sites
              (fmt_cost (single_site_cost inst))
              qp.cost_text sa.cost_text it_text (fmt_cost g.Greedy.cost)
              (fmt_cost aff.Affinity.cost))
         [ 2; 3 ];
       hr ())
    [ "TPC-C v5"; "TATP"; "SmallBank"; "Voter"; "rndAt8x15"; "rndBt16x15" ]

(* ------------------------------------------------------------------ *)
(* Certification overhead: same QP solve with certificates off and on   *)
(* ------------------------------------------------------------------ *)

let certify_overhead () =
  section "Certification overhead (QP solve, certify off vs on)";
  Printf.printf "%-10s | %9s %9s %9s | %s\n" "instance" "off (s)" "on (s)"
    "overhead" "verdict";
  hr ();
  List.iter
    (fun name ->
       let inst = get_instance name in
       let time f =
         let t0 = Obs.Clock.now () in
         let r = f () in
         (r, Obs.Clock.now () -. t0)
       in
       let opts certify =
         { (qp_options ~time_limit:30. 2) with
           Qp_solver.certify; gap = 0.01 }
       in
       let _, t_off = time (fun () -> Qp_solver.solve ~options:(opts false) inst) in
       let r, t_on = time (fun () -> Qp_solver.solve ~options:(opts true) inst) in
       Printf.printf "%-10s | %9.3f %9.3f %8.1f%% | %s\n%!" name t_off t_on
         (100. *. (t_on -. t_off) /. Float.max 1e-9 t_off)
         (Format.asprintf "%a" Report.pp_certificate r.Qp_solver.certificate))
    [ "TPC-C v5"; "TATP"; "SmallBank"; "Voter" ];
  hr ()

(* ------------------------------------------------------------------ *)
(* Exact-audit overhead: float certification vs the exact rational      *)
(* auditor on the same QP solve                                         *)
(* ------------------------------------------------------------------ *)

let certify_exact_overhead () =
  let module E = Vpart_certify.Certify.Exact in
  let module Q = Vpart_rational.Rational in
  section "Exact-audit overhead (QP solve: no certify vs float vs float+exact)";
  Printf.printf
    "The exact column re-checks every float certificate in arbitrary-\n\
     precision rational arithmetic with zero tolerance (E-codes).\n";
  Printf.printf "%-10s | %8s %8s %8s %8s | %6s %6s | %s\n" "instance"
    "off (s)" "float(s)" "exact(s)" "ex ovh" "checks" "masked" "worst masked residual";
  hr ();
  List.iter
    (fun name ->
       let inst = get_instance name in
       let time f =
         let t0 = Obs.Clock.now () in
         let r = f () in
         (r, Obs.Clock.now () -. t0)
       in
       let opts certify certify_exact =
         { (qp_options ~time_limit:30. 2) with
           Qp_solver.certify; certify_exact; gap = 0.01 }
       in
       let _, t_off =
         time (fun () -> Qp_solver.solve ~options:(opts false false) inst)
       in
       let _, t_float =
         time (fun () -> Qp_solver.solve ~options:(opts true false) inst)
       in
       let r, t_exact =
         time (fun () -> Qp_solver.solve ~options:(opts true true) inst)
       in
       let valid, masked, refuted, unchecked, worst =
         match r.Qp_solver.exact with
         | None -> (0, 0, 0, 0, "-")
         | Some ex ->
           let v, m, rf, u = E.counts ex in
           let w =
             match E.worst_masked ex with
             | None -> "-"
             | Some c ->
               Printf.sprintf "%s (%s)" (Q.to_short_string c.E.residual)
                 c.E.claim
           in
           (v, m, rf, u, w)
       in
       let checks = valid + masked + refuted + unchecked in
       let ovh_pct =
         100. *. (t_exact -. t_float) /. Float.max 1e-9 t_float
       in
       Printf.printf "%-10s | %8.3f %8.3f %8.3f %7.1f%% | %6d %6d | %s\n%!"
         name t_off t_float t_exact ovh_pct checks masked worst;
       if refuted > 0 then
         Printf.printf "%-10s   WARNING: %d exactly-refuted claim(s)!\n%!"
           name refuted;
       json_results :=
         ( "certify-exact/" ^ name,
           Json.Obj
             [
               ("no_certify_seconds", Json.Float t_off);
               ("float_certify_seconds", Json.Float t_float);
               ("exact_certify_seconds", Json.Float t_exact);
               ("exact_over_float_overhead_pct", Json.Float ovh_pct);
               ("exact_checks", Json.Int checks);
               ("exactly_valid", Json.Int valid);
               ("tolerance_masked", Json.Int masked);
               ("exactly_refuted", Json.Int refuted);
               ("unchecked", Json.Int unchecked);
               ("worst_masked_residual", Json.String worst);
             ] )
         :: !json_results)
    [ "TPC-C v5"; "TATP"; "SmallBank"; "Voter" ];
  hr ()

(* ------------------------------------------------------------------ *)
(* Observability overhead: same QP solve with tracing off / no-op sink  *)
(* / JSONL sink                                                        *)
(* ------------------------------------------------------------------ *)

let obs_overhead () =
  section "Observability overhead (QP solve: obs off vs no-op sink vs JSONL)";
  Printf.printf
    "Best of 3 runs each; the JSONL column writes every event to a \n\
     discarding buffer (I/O excluded).\n";
  Printf.printf "%-10s | %9s %9s %9s | %8s %8s | %8s\n" "instance" "off (s)"
    "no-op (s)" "jsonl (s)" "no-op" "jsonl" "events";
  hr ();
  let best_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = Obs.Clock.now () in
      f ();
      let dt = Obs.Clock.now () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let pct base t = 100. *. (t -. base) /. Float.max 1e-9 base in
  List.iter
    (fun name ->
       let inst = get_instance name in
       let solve () =
         ignore
           (Qp_solver.solve
              ~options:{ (qp_options ~time_limit:30. 2) with Qp_solver.gap = 0.01 }
              inst)
       in
       let t_off = best_of 3 solve in
       let t_null = best_of 3 (fun () -> Obs.with_sink (Obs.null_sink ()) solve) in
       let events = ref 0 in
       let t_jsonl =
         best_of 3 (fun () ->
             events := 0;
             (* count events, discard the bytes: isolates encoding cost *)
             let sink =
               Obs.jsonl_sink (fun s -> if String.length s > 1 then incr events)
             in
             Obs.with_sink sink solve)
       in
       Printf.printf "%-10s | %9.3f %9.3f %9.3f | %7.2f%% %7.2f%% | %8d\n%!"
         name t_off t_null t_jsonl (pct t_off t_null) (pct t_off t_jsonl)
         !events;
       json_results :=
         ( "obs-overhead/" ^ name,
           Json.Obj
             [
               ("off_seconds", Json.Float t_off);
               ("null_sink_seconds", Json.Float t_null);
               ("jsonl_sink_seconds", Json.Float t_jsonl);
               ("null_sink_overhead_pct", Json.Float (pct t_off t_null));
               ("jsonl_sink_overhead_pct", Json.Float (pct t_off t_jsonl));
               ("events", Json.Int !events);
             ] )
         :: !json_results)
    [ "SmallBank"; "Voter"; "TATP" ];
  hr ()

(* ------------------------------------------------------------------ *)
(* Parallel speedup: QP branch-and-bound at 1/2/4 domains              *)
(* ------------------------------------------------------------------ *)

(* Honest wall-clock measurement of `--jobs`: the same QP solve at 1, 2
   and 4 domains on TPC-C and a ~20-attribute generated instance.
   Speedup is relative to the sequential (jobs = 1) run on this host —
   on a single-core container the parallel runs can only break even or
   lose to scheduling overhead, and the numbers will say so. *)
let par_speedup () =
  section "Parallel B&B speedup (QP, jobs = 1/2/4)";
  Printf.printf "host: %d domain(s) recommended by the runtime\n\n"
    (Par.recommended_jobs ());
  let rnd20 =
    Instance_gen.generate
      { Instance_gen.default_params with
        Instance_gen.name = "par20";
        num_tables = 6;
        max_attrs_per_table = 6;
        num_transactions = 15;
        max_attrs_per_query = 6;
      }
  in
  Printf.printf "%-12s %5s | %9s %9s %9s %9s\n" "instance" "jobs" "seconds"
    "speedup" "nodes" "nodes/s";
  hr ();
  List.iter
    (fun (name, inst) ->
       let solve jobs =
         let options =
           { (qp_options ~time_limit:30. 2) with
             Qp_solver.gap = 0.01;
             jobs;
           }
         in
         let t0 = Obs.Clock.now () in
         let r = Qp_solver.solve ~options inst in
         (Obs.Clock.now () -. t0, r.Qp_solver.nodes)
       in
       (* warm-up: page in the instance + model build caches *)
       ignore (solve 1);
       let base, _ = solve 1 in
       List.iter
         (fun jobs ->
            let seconds, nodes = solve jobs in
            let speedup = base /. Float.max 1e-9 seconds in
            let nodes_s = float_of_int nodes /. Float.max 1e-9 seconds in
            Printf.printf "%-12s %5d | %9.3f %9.2fx %9d %9.0f\n%!" name jobs
              seconds speedup nodes nodes_s;
            json_results :=
              ( Printf.sprintf "par/%s/jobs%d" name jobs,
                Json.Obj
                  [
                    ("seconds", Json.Float seconds);
                    ("speedup_vs_jobs1", Json.Float speedup);
                    ("nodes", Json.Int nodes);
                    ("nodes_per_second", Json.Float nodes_s);
                    ("recommended_jobs", Json.Int (Par.recommended_jobs ()));
                  ] )
              :: !json_results)
         [ 1; 2; 4 ])
    [ ("TPC-C v5", get_instance "TPC-C v5");
      (Printf.sprintf "rnd-%dattrs" (Instance.num_attrs rnd20), rnd20) ];
  hr ()

(* ------------------------------------------------------------------ *)
(* Sustained-throughput batch service                                  *)
(* ------------------------------------------------------------------ *)

(* 10k+ generated instances streamed through the batch service: the
   instances are produced lazily (Instance_gen.stream) and consumed in
   bounded windows, and every pool domain reuses its simplex/delta
   workspaces, so steady-state memory must stay flat — top_heap_words
   and max_rss are recorded as the evidence, solves/s and p50/p99
   latency as the throughput numbers. *)
let batch_throughput () =
  section "Batch service throughput (streamed instances, pooled workspaces)";
  let sweep name ~action ~count ~jobs params =
    let options =
      { (qp_options ~time_limit:10. 2) with Qp_solver.gap = 0.01 }
    in
    let summary =
      Batch.run ~jobs ~options ~action
        ~emit:(fun r ->
            if r.Batch.outcome = "error" then
              Printf.printf "  %s: ERROR %s\n%!" r.Batch.name
                (Option.value r.Batch.error ~default:"?"))
        (Instance_gen.stream ~seed:cfg.sa_seed ~count params)
    in
    Printf.printf
      "%-14s %6d reqs %2d jobs | %8.1f req/s  p50 %6.2f ms  p99 %6.2f ms | \
       heap %5.1f MW  rss %s  failures %d\n%!"
      name summary.Batch.requests jobs summary.Batch.throughput
      (summary.Batch.p50_seconds *. 1e3) (summary.Batch.p99_seconds *. 1e3)
      (float_of_int summary.Batch.top_heap_words /. 1e6)
      (match summary.Batch.max_rss_kb with
       | Some kb -> Printf.sprintf "%d kB" kb
       | None -> "n/a")
      summary.Batch.failures;
    json_results :=
      (Printf.sprintf "batch/%s" name, Batch.summary_to_json summary)
      :: !json_results
  in
  let tiny =
    { Instance_gen.default_params with
      Instance_gen.name = "batch-tiny";
      num_tables = 3;
      num_transactions = 4;
    }
  in
  (* The headline: >= 10k full QP solves, streamed. *)
  sweep "solve-10k" ~action:Batch.Solve ~count:10_000 ~jobs:4 tiny;
  (* Check sweep: allocation-dominated, exercises the delta workspaces. *)
  sweep "check-10k" ~action:Batch.Check ~count:10_000 ~jobs:4
    { Instance_gen.default_params with Instance_gen.name = "batch-check" };
  hr ()

(* ------------------------------------------------------------------ *)
(* Hot-path kernel throughput: delta SA + eta simplex vs baselines      *)
(* ------------------------------------------------------------------ *)

let perf () =
  section "Kernel throughput (delta vs full SA eval, eta vs dense simplex)";
  print_endline
    "single host, one timed run per cell after a warm-up; same inputs and\n\
     annealing/search parameters per pair, only the kernel differs.  The\n\
     two SA evaluators explore different (equally valid) trajectories, so\n\
     costs may differ slightly; docs/PERFORMANCE.md discusses caveats.\n";
  let rnd19 =
    Instance_gen.generate
      { Instance_gen.default_params with
        Instance_gen.name = "perf19";
        num_tables = 6;
        max_attrs_per_table = 6;
        num_transactions = 15;
        max_attrs_per_query = 6;
      }
  in
  let insts =
    [ ("TPC-C v5", get_instance "TPC-C v5");
      (Printf.sprintf "rnd-%dattrs" (Instance.num_attrs rnd19), rnd19) ]
  in
  (* SA kernel: evaluated moves per second -- the same random single-move
     sequence priced by Delta_cost.apply_move (O(affected txns)) and by a
     from-scratch Cost_model.objective per move, the pre-PR baseline.
     Checksums of the evaluated objectives agree exactly. *)
  Printf.printf "%-14s %-6s | %8s %9s %10s  single-move evaluation\n"
    "instance" "eval" "seconds" "moves" "moves/s";
  hr ();
  List.iter
    (fun (name, inst) ->
       let stats = Stats.compute inst ~p:cfg.p in
       let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
       let ns = 2 in
       let init () =
         let st = Random.State.make [| 11 |] in
         let part =
           Partitioning.create ~num_sites:ns ~num_txns:nt ~num_attrs:na
         in
         for t = 0 to nt - 1 do
           part.Partitioning.txn_site.(t) <- Random.State.int st ns
         done;
         Partitioning.repair_single_sitedness stats part;
         part
       in
       let moves = 200_000 in
       let run_full () =
         let part = init () in
         let st = Random.State.make [| cfg.sa_seed |] in
         let acc = ref 0. in
         let t0 = Obs.Clock.now () in
         for _ = 1 to moves do
           if Random.State.bool st then begin
             let a = Random.State.int st na and s = Random.State.int st ns in
             let row = part.Partitioning.placed.(a) in
             row.(s) <- not row.(s);
             acc := !acc +. Cost_model.objective stats ~lambda:cfg.lambda part;
             row.(s) <- not row.(s)
           end
           else begin
             let t = Random.State.int st nt and s = Random.State.int st ns in
             let old = part.Partitioning.txn_site.(t) in
             part.Partitioning.txn_site.(t) <- s;
             acc := !acc +. Cost_model.objective stats ~lambda:cfg.lambda part;
             part.Partitioning.txn_site.(t) <- old
           end
         done;
         (Obs.Clock.now () -. t0, !acc)
       in
       let run_delta () =
         let part = init () in
         let dc = Delta_cost.create stats ~lambda:cfg.lambda part in
         let st = Random.State.make [| cfg.sa_seed |] in
         let acc = ref 0. in
         let t0 = Obs.Clock.now () in
         for _ = 1 to moves do
           (if Random.State.bool st then begin
              let a = Random.State.int st na and s = Random.State.int st ns in
              ignore (Delta_cost.apply_move dc (Delta_cost.Flip (a, s)))
            end
            else begin
              let t = Random.State.int st nt and s = Random.State.int st ns in
              ignore (Delta_cost.apply_move dc (Delta_cost.Assign (t, s)))
            end);
           acc := !acc +. Delta_cost.objective dc;
           Delta_cost.undo_move dc
         done;
         (Obs.Clock.now () -. t0, !acc)
       in
       ignore (run_delta ());
       (* warm-up *)
       let full_s, full_acc = run_full () in
       let delta_s, delta_acc = run_delta () in
       if Float.abs (full_acc -. delta_acc) > 1e-6 *. (1. +. Float.abs full_acc)
       then
         Printf.printf
           "%-14s WARNING: kernel checksums disagree (%.17g vs %.17g)\n%!" name
           full_acc delta_acc;
       List.iter
         (fun (tag, seconds) ->
            let rate = float_of_int moves /. Float.max 1e-9 seconds in
            Printf.printf "%-14s %-6s | %8.3f %9d %10.0f\n%!" name tag seconds
              moves rate;
            json_results :=
              ( Printf.sprintf "perf/sa/%s/kernel/%s" name tag,
                Json.Obj
                  [
                    ("seconds", Json.Float seconds);
                    ("moves", Json.Int moves);
                    ("moves_per_second", Json.Float rate);
                  ] )
              :: !json_results)
         [ ("full", full_s); ("delta", delta_s) ];
       let speedup = full_s /. Float.max 1e-9 delta_s in
       Printf.printf "%-14s kernel speedup %.1fx (delta vs full moves/s)\n%!"
         name speedup;
       json_results :=
         (Printf.sprintf "perf/sa/%s/kernel/speedup" name, Json.Float speedup)
         :: !json_results)
    insts;
  (* Whole-annealer throughput: same schedule, only the evaluator differs.
     The proposal machinery (perturbation + exact y-/x-steps) is shared,
     so this ratio is much smaller than the kernel one; see
     docs/PERFORMANCE.md. *)
  Printf.printf "\n%-14s %-6s | %8s %9s %10s %10s  whole annealer\n"
    "instance" "eval" "seconds" "moves" "moves/s" "cost";
  hr ();
  List.iter
    (fun (name, inst) ->
       let run full_eval =
         let options =
           { Sa_solver.default_options with
             Sa_solver.num_sites = 2;
             p = cfg.p;
             lambda = cfg.lambda;
             seed = cfg.sa_seed;
             (* Grouping shrinks TPC-C to a handful of attribute groups,
                which hides the evaluator contrast behind annealing-
                schedule overhead; the kernel comparison runs on the raw
                attribute space (same setting both sides). *)
             use_grouping = false;
             full_eval;
           }
         in
         let r = Sa_solver.solve ~options inst in
         (r.Sa_solver.elapsed, r.Sa_solver.iterations, r.Sa_solver.cost)
       in
       ignore (run false);
       (* warm-up *)
       let rates =
         List.map
           (fun (tag, full_eval) ->
              let seconds, moves, cost = run full_eval in
              let rate = float_of_int moves /. Float.max 1e-9 seconds in
              Printf.printf "%-14s %-6s | %8.3f %9d %10.0f %10s\n%!" name tag
                seconds moves rate (fmt_cost cost);
              json_results :=
                ( Printf.sprintf "perf/sa/%s/anneal/%s" name tag,
                  Json.Obj
                    [
                      ("seconds", Json.Float seconds);
                      ("moves", Json.Int moves);
                      ("moves_per_second", Json.Float rate);
                      ("cost", Json.Float cost);
                    ] )
                :: !json_results;
              rate)
           [ ("full", true); ("delta", false) ]
       in
       match rates with
       | [ full_rate; delta_rate ] ->
         let speedup = delta_rate /. Float.max 1e-9 full_rate in
         Printf.printf "%-14s anneal speedup %.1fx (delta vs full moves/s)\n%!"
           name speedup;
         json_results :=
           ( Printf.sprintf "perf/sa/%s/anneal/speedup" name,
             Json.Float speedup )
           :: !json_results
       | _ -> assert false)
    insts;
  (* Simplex: warm-started node LPs of the same branch-and-bound — dense
     per-pivot inverse vs eta (product-form) updates vs the sparse LU
     kernel. *)
  Printf.printf "\n%-14s %-6s | %8s %6s %9s %10s %8s %7s %9s\n" "instance"
    "basis" "seconds" "nodes" "iters" "iters/s" "ms/node" "refacs" "eta_apps";
  hr ();
  List.iter
    (fun (name, inst) ->
       let run kernel =
         let options =
           { (qp_options ~time_limit:30. 2) with
             Qp_solver.gap = 0.01;
             kernel;
           }
         in
         let t0 = Obs.Clock.now () in
         let r = Qp_solver.solve ~options inst in
         (Obs.Clock.now () -. t0, r)
       in
       ignore (run Simplex.Eta);
       (* warm-up *)
       let cells =
         List.map
           (fun (tag, kernel) ->
              let seconds, r = run kernel in
              let nodes = r.Qp_solver.nodes
              and iters = r.Qp_solver.simplex_iters in
              let iters_s = float_of_int iters /. Float.max 1e-9 seconds in
              let ms_node =
                1000. *. seconds /. Float.max 1. (float_of_int nodes)
              in
              Printf.printf
                "%-14s %-6s | %8.3f %6d %9d %10.0f %8.3f %7d %9d\n%!" name tag
                seconds nodes iters iters_s ms_node
                r.Qp_solver.refactorizations r.Qp_solver.eta_applications;
              json_results :=
                ( Printf.sprintf "perf/simplex/%s/%s" name tag,
                  Json.Obj
                    [
                      ("seconds", Json.Float seconds);
                      ("nodes", Json.Int nodes);
                      ("simplex_iterations", Json.Int iters);
                      ("iterations_per_second", Json.Float iters_s);
                      ("ms_per_node", Json.Float ms_node);
                      ("refactorizations", Json.Int r.Qp_solver.refactorizations);
                      ("eta_applications", Json.Int r.Qp_solver.eta_applications);
                    ] )
                :: !json_results;
              (tag, ms_node))
           [
             ("dense", Simplex.Dense);
             ("eta", Simplex.Eta);
             ("sparse", Simplex.Sparse);
           ]
       in
       match cells with
       | [ (_, dense_ms); (_, eta_ms); (_, sparse_ms) ] ->
         let reduction = dense_ms /. Float.max 1e-9 eta_ms in
         Printf.printf "%-14s node-LP wall-clock: %.2fx dense/eta ms/node\n%!"
           name reduction;
         json_results :=
           ( Printf.sprintf "perf/simplex/%s/node_ms_dense_over_eta" name,
             Json.Float reduction )
           :: !json_results;
         let reduction = dense_ms /. Float.max 1e-9 sparse_ms in
         Printf.printf
           "%-14s node-LP wall-clock: %.2fx dense/sparse ms/node\n%!" name
           reduction;
         json_results :=
           ( Printf.sprintf "perf/simplex/%s/node_ms_dense_over_sparse" name,
             Json.Float reduction )
           :: !json_results
       | _ -> assert false)
    insts;
  (* Large node LP: the dense kernel rebuilds B^-1 from scratch (O(m^3))
     every 1024 pivots, a cliff any node LP crossing that count pays; the
     eta kernel folds its file into the inverse at cadence for
     sum nnz(w) * m; the sparse kernel refactorizes a Markowitz LU in
     O(nnz) fill work.  TPC-C at 4 sites is the smallest bundled
     configuration whose root LP crosses the cliff. *)
  Printf.printf "\n%-14s %-6s | %8s %9s %7s  root node LP, 4 sites\n"
    "instance" "basis" "seconds" "iters" "refacs";
  hr ();
  let root_cells =
    List.map
      (fun (tag, kernel) ->
         let inst = get_instance "TPC-C v5" in
         let options = qp_options 4 in
         let stats = Stats.compute inst ~p:options.Qp_solver.p in
         let model, _ = Qp_solver.build_model stats options in
         let std = Lp.standardize model in
         let t0 = Obs.Clock.now () in
         let sx = Simplex.create ~kernel std in
         let status = Simplex.reoptimize sx in
         let seconds = Obs.Clock.now () -. t0 in
         Printf.printf "%-14s %-6s | %8.3f %9d %7d  (%s, %d rows)\n%!"
           "TPC-C v5" tag seconds (Simplex.iterations sx)
           (Simplex.refactorizations sx)
           (Simplex.string_of_status status)
           (Simplex.nrows sx);
         json_results :=
           ( Printf.sprintf "perf/simplex/root4/%s" tag,
             Json.Obj
               [
                 ("seconds", Json.Float seconds);
                 ("simplex_iterations", Json.Int (Simplex.iterations sx));
                 ("refactorizations", Json.Int (Simplex.refactorizations sx));
                 ("rows", Json.Int (Simplex.nrows sx));
               ] )
           :: !json_results;
         seconds)
      [
        ("dense", Simplex.Dense);
        ("eta", Simplex.Eta);
        ("sparse", Simplex.Sparse);
      ]
  in
  (match root_cells with
   | [ dense_s; eta_s; sparse_s ] ->
     let reduction = dense_s /. Float.max 1e-9 eta_s in
     Printf.printf
       "%-14s root node-LP wall-clock: %.2fx dense/eta (eta avoids the \
        O(m^3) rebuild cliff)\n%!"
       "TPC-C v5" reduction;
     json_results :=
       ("perf/simplex/root4/wallclock_dense_over_eta", Json.Float reduction)
       :: !json_results;
     let reduction = dense_s /. Float.max 1e-9 sparse_s in
     Printf.printf
       "%-14s root node-LP wall-clock: %.2fx dense/sparse (LU ftran/btran \
        never touch the dense inverse)\n%!"
       "TPC-C v5" reduction;
     json_results :=
       ("perf/simplex/root4/wallclock_dense_over_sparse", Json.Float reduction)
       :: !json_results
   | _ -> assert false);
  hr ()

(* ------------------------------------------------------------------ *)
(* Root-LP kernel sweep over growing basis sizes                        *)
(* ------------------------------------------------------------------ *)

(* How each basis kernel scales with m: the root LP of the layout model
   for random instances of doubling table count, cold-solved under every
   kernel.  The dense kernel's O(m^2)/pivot + O(m^3)/rebuild wall shows
   as collapsing iters/s; the sparse LU kernel's refactorization seconds
   stay near zero because fill-in is bounded by Markowitz pivoting. *)
let simplex_kernel_sweep () =
  (* The dense kernel allocates and inverts an m x m matrix; past this
     row count one Gauss-Jordan inverse dominates the whole sweep, so
     dense cells are reported as skipped rather than stalling the job. *)
  let dense_row_cap = 5000 in
  Printf.printf "\n%-14s %-6s | %6s %8s %8s %10s %9s %7s %9s\n" "instance"
    "basis" "rows" "seconds" "iters" "iters/s" "refac_s" "refacs" "lu_nnz";
  hr ();
  List.iter
    (fun (name, sites) ->
       let inst = Instance_gen.generate ~seed:42 (Instance_gen.find name) in
       let options = qp_options sites in
       let stats = Stats.compute inst ~p:options.Qp_solver.p in
       let model, _ = Qp_solver.build_model stats options in
       List.iter
         (fun (tag, kernel) ->
            let std = Lp.standardize model in
            if kernel = Simplex.Dense && std.Lp.nrows > dense_row_cap then
              Printf.printf "%-14s %-6s | %6d  (skipped: dense inverse above \
                             %d rows)\n%!"
                name tag std.Lp.nrows dense_row_cap
            else begin
              let t0 = Obs.Clock.now () in
              let sx = Simplex.create ~kernel std in
              let status = Simplex.reoptimize sx in
              let seconds = Obs.Clock.now () -. t0 in
              let iters = Simplex.iterations sx in
              let iters_s = float_of_int iters /. Float.max 1e-9 seconds in
              Printf.printf
                "%-14s %-6s | %6d %8.3f %8d %10.0f %9.3f %7d %9d  (%s)\n%!"
                name tag std.Lp.nrows seconds iters iters_s
                (Simplex.refactor_seconds sx)
                (Simplex.refactorizations sx)
                (Simplex.lu_nnz sx)
                (Simplex.string_of_status status);
              json_results :=
                ( Printf.sprintf "perf/simplex/sweep/%s/%s" name tag,
                  Json.Obj
                    [
                      ("rows", Json.Int std.Lp.nrows);
                      ("seconds", Json.Float seconds);
                      ("simplex_iterations", Json.Int iters);
                      ("iterations_per_second", Json.Float iters_s);
                      ("refactor_seconds",
                       Json.Float (Simplex.refactor_seconds sx));
                      ("refactorizations",
                       Json.Int (Simplex.refactorizations sx));
                      ("lu_nnz", Json.Int (Simplex.lu_nnz sx));
                    ] )
                :: !json_results
            end)
         [
           ("dense", Simplex.Dense);
           ("eta", Simplex.Eta);
           ("sparse", Simplex.Sparse);
         ])
    [
      ("rndBt8x100", 2);
      ("rndBt16x100", 2);
      ("rndBt32x100", 2);
      ("rndBt64x100", 2);
    ];
  hr ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per paper table                *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  section "Bechamel micro-benchmarks (one kernel per table)";
  let open Bechamel in
  let tpcc = get_instance "TPC-C v5" in
  let rnd20 =
    Instance_gen.generate
      { Instance_gen.default_params with Instance_gen.name = "bench20" }
  in
  let stats = Stats.compute tpcc ~p:cfg.p in
  let part = Partitioning.single_site tpcc in
  let sa_opts sites =
    { Sa_solver.default_options with
      Sa_solver.num_sites = sites; lambda = cfg.lambda; max_outer = 20 }
  in
  let qp_opts sites =
    { (qp_options ~time_limit:10. sites) with Qp_solver.gap = 0.01 }
  in
  let tests =
    [ Test.make ~name:"table1-kernel: SA on rnd 20x20"
        (Staged.stage (fun () ->
             ignore (Sa_solver.solve ~options:(sa_opts 2) rnd20)));
      Test.make ~name:"table3-kernel: QP on TPC-C S=2"
        (Staged.stage (fun () ->
             ignore (Qp_solver.solve ~options:(qp_opts 2) tpcc)));
      Test.make ~name:"table5-kernel: disjoint QP on TPC-C S=2"
        (Staged.stage (fun () ->
             ignore
               (Qp_solver.solve
                  ~options:{ (qp_opts 2) with Qp_solver.allow_replication = false }
                  tpcc)));
      Test.make ~name:"table6-kernel: SA on TPC-C p=0"
        (Staged.stage (fun () ->
             ignore
               (Sa_solver.solve ~options:{ (sa_opts 2) with Sa_solver.p = 0. } tpcc)));
      Test.make ~name:"stats: derive c1..c4 for TPC-C"
        (Staged.stage (fun () -> ignore (Stats.compute tpcc ~p:cfg.p)));
      Test.make ~name:"cost: evaluate objective (4) on TPC-C"
        (Staged.stage (fun () -> ignore (Cost_model.cost stats part)));
      Test.make ~name:"grouping: reasonable cuts on TPC-C"
        (Staged.stage (fun () -> ignore (Grouping.compute tpcc)));
      (* The trusted checker alone: certify a solved MIP (dot products
         over the pre-presolve rows), no solver time included. *)
      (let m = Lp.create () in
       let v = Array.init 12 (fun _ -> Lp.binary m ()) in
       Array.iteri
         (fun i x -> Lp.add_constr m [ (float_of_int (1 + (i mod 5)), x) ] Lp.Le 4.)
         v;
       Lp.add_constr m (Array.to_list (Array.map (fun x -> (1., x)) v)) Lp.Eq 6.;
       Lp.set_objective m Lp.Minimize
         (Array.to_list (Array.mapi (fun i x -> (float_of_int (1 + i), x)) v));
       let out, stats = Mip.solve m in
       Test.make ~name:"certify: re-check a solved 12-var MIP"
         (Staged.stage (fun () ->
              ignore (Vpart_certify.Certify.certify_mip m out stats))));
    ]
  in
  List.iter
    (fun test ->
       let cfg_b =
         Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
       in
       let raw = Benchmark.all cfg_b Toolkit.Instance.[ monotonic_clock ] test in
       let ols =
         Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
       in
       let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
       Hashtbl.iter
         (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.printf "%-45s %12.0f ns/run\n%!" name est
            | _ -> Printf.printf "%-45s (no estimate)\n%!" name)
         results)
    tests

(* ------------------------------------------------------------------ *)
(* N/S analysis: overhead of the static passes and the measured payoff  *)
(* of their remediations (--scale, --break-symmetry)                    *)
(* ------------------------------------------------------------------ *)

let analyze_bench () =
  let module Numerics_lint = Vpart_analysis.Numerics_lint in
  let module Structure = Vpart_analysis.Structure in
  let time f =
    let t0 = Obs.Clock.now () in
    let r = f () in
    (r, Obs.Clock.now () -. t0)
  in
  let std_for inst sites =
    let grouping = Grouping.compute inst in
    let stats = Stats.compute grouping.Grouping.reduced ~p:cfg.p in
    let model, _ = Qp_solver.build_model stats (qp_options sites) in
    Lp.standardize model
  in
  let names = [ "SmallBank"; "Voter"; "TATP"; "TPC-C v5" ] in

  section "N/S analysis overhead (model build vs numerics + structure passes)";
  Printf.printf "%-10s | %9s %9s %8s | %s\n" "instance" "build (s)"
    "analy (s)" "ovh" "findings";
  hr ();
  List.iter
    (fun name ->
       let inst = get_instance name in
       let std, t_build = time (fun () -> std_for inst 2) in
       let ds, t_analyze =
         time (fun () -> Numerics_lint.lint std @ Structure.lint std)
       in
       let n = List.length ds in
       Printf.printf "%-10s | %9.4f %9.4f %7.1f%% | %d finding(s)\n%!" name
         t_build t_analyze
         (100. *. t_analyze /. Float.max 1e-9 t_build)
         n;
       json_results :=
         ( "analyze-overhead/" ^ name,
           Json.Obj
             [
               ("build_seconds", Json.Float t_build);
               ("analysis_seconds", Json.Float t_analyze);
               ("findings", Json.Int n);
             ] )
         :: !json_results)
    names;
  hr ();

  section "Scaling payoff (root LP dual simplex, unscaled vs --scale)";
  Printf.printf "%-10s | %8s %8s | %8s %8s | %s\n" "instance" "iter" "iter'"
    "obj" "obj'" "agree";
  hr ();
  List.iter
    (fun name ->
       let inst = get_instance name in
       let std = std_for inst 2 in
       let sstd = Presolve.scale (Presolve.scaling std) std in
       let a = Simplex.solve std and b = Simplex.solve sstd in
       let agree =
         Float.abs (a.Simplex.obj -. b.Simplex.obj)
         <= 1e-6 *. (1. +. Float.abs a.Simplex.obj)
       in
       Printf.printf "%-10s | %8d %8d | %8.1f %8.1f | %s\n%!" name
         a.Simplex.iterations b.Simplex.iterations a.Simplex.obj b.Simplex.obj
         (if agree then "yes" else "NO");
       json_results :=
         ( "scale-root-lp/" ^ name,
           Json.Obj
             [
               ("unscaled_iterations", Json.Int a.Simplex.iterations);
               ("scaled_iterations", Json.Int b.Simplex.iterations);
               ("unscaled_obj", Json.Float a.Simplex.obj);
               ("scaled_obj", Json.Float b.Simplex.obj);
               ("objectives_agree", Json.Bool agree);
             ] )
         :: !json_results)
    names;
  hr ();

  section "Symmetry-breaking payoff (QP B&B, 3 sites, plain vs --break-symmetry)";
  Printf.printf "%-10s | %8s %8s | %9s %9s | %8s %8s | %s\n" "instance"
    "nodes" "nodes'" "time (s)" "time' (s)" "cost" "cost'" "certified";
  hr ();
  List.iter
    (fun name ->
       let inst = get_instance name in
       let solve break_symmetry scale =
         Qp_solver.solve
           ~options:
             { (qp_options ~time_limit:60. 3) with
               Qp_solver.break_symmetry;
               scale;
               certify = true;
             }
           inst
       in
       let plain, t_plain = time (fun () -> solve false false) in
       let pinned, t_pinned = time (fun () -> solve true true) in
       let cost r = Option.value r.Qp_solver.cost ~default:Float.nan in
       let certified r =
         match r.Qp_solver.certificate with
         | Some ds ->
           not
             (Vpart_analysis.Diagnostic.has_errors ds)
         | None -> false
       in
       let ok = certified plain && certified pinned in
       Printf.printf
         "%-10s | %8d %8d | %9.3f %9.3f | %8.1f %8.1f | %s\n%!" name
         plain.Qp_solver.nodes pinned.Qp_solver.nodes t_plain t_pinned
         (cost plain) (cost pinned)
         (if ok then "yes" else "NO");
       json_results :=
         ( "break-symmetry/" ^ name,
           Json.Obj
             [
               ("plain_nodes", Json.Int plain.Qp_solver.nodes);
               ("pinned_nodes", Json.Int pinned.Qp_solver.nodes);
               ("plain_simplex_iters", Json.Int plain.Qp_solver.simplex_iters);
               ("pinned_simplex_iters", Json.Int pinned.Qp_solver.simplex_iters);
               ("plain_seconds", Json.Float t_plain);
               ("pinned_seconds", Json.Float t_pinned);
               ("plain_cost", Json.Float (cost plain));
               ("pinned_cost", Json.Float (cost pinned));
               ("both_certified", Json.Bool ok);
             ] )
         :: !json_results)
    [ "SmallBank"; "Voter"; "TATP" ];
  hr ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe [--qp-limit SECONDS] [--lambda L] [--max-rows N] [--seed N]\n\
    \                [--json-out FILE]\n\
    \                [table1|table2|table3|table4|table5|table6|ablation|suite|certify|certify-exact|obs|par|batch|perf|simplex-kernel|analyze|bechamel|all]...";
  exit 1

let () =
  let jobs = ref [] in
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse = function
    | [] -> ()
    | "--qp-limit" :: v :: rest -> cfg.qp_limit <- float_of_string v; parse rest
    | "--lambda" :: v :: rest -> cfg.lambda <- float_of_string v; parse rest
    | "--max-rows" :: v :: rest -> cfg.max_rows <- int_of_string v; parse rest
    | "--seed" :: v :: rest -> cfg.sa_seed <- int_of_string v; parse rest
    | "--json-out" :: v :: rest -> cfg.json_out <- Some v; parse rest
    | "--help" :: _ -> usage ()
    | job :: rest -> jobs := job :: !jobs; parse rest
  in
  parse args;
  let jobs = if !jobs = [] then [ "all" ] else List.rev !jobs in
  let dispatch = function
    | "table1" -> table1 ()
    | "table2" -> table2 ()
    | "table3" -> table3 ()
    | "table4" -> table4 ()
    | "table5" -> table5 ()
    | "table6" -> table6 ()
    | "ablation" -> ablation ()
    | "suite" -> suite ()
    | "certify" -> certify_overhead ()
    | "certify-exact" -> certify_exact_overhead ()
    | "obs" -> obs_overhead ()
    | "par" -> par_speedup ()
    | "batch" -> batch_throughput ()
    | "perf" -> perf ()
    | "simplex-kernel" -> simplex_kernel_sweep ()
    | "analyze" -> analyze_bench ()
    | "bechamel" -> bechamel ()
    | "all" ->
      Printf.printf
        "vpart experiment harness (p=%.0f, lambda=%.2f, QP limit %.0fs)\n"
        cfg.p cfg.lambda cfg.qp_limit;
      table2 (); table1 (); table3 (); table4 (); table5 (); table6 ();
      ablation (); suite (); certify_overhead (); certify_exact_overhead ();
      obs_overhead ();
      par_speedup (); batch_throughput (); perf (); simplex_kernel_sweep ();
      analyze_bench (); bechamel ()
    | j -> Printf.printf "unknown job %S\n" j; usage ()
  in
  (* With --json-out, collect in-process solver metrics across all jobs
     and fold them into the machine-readable output. *)
  if cfg.json_out <> None then begin
    Obs.Metrics.reset ();
    Obs.Metrics.enable ()
  end;
  List.iter dispatch jobs;
  match cfg.json_out with
  | None -> ()
  | Some path ->
    let j =
      Json.Obj
        [
          (* Versioned + provenance-stamped so BENCH_N.json files can be
             compared honestly across commits and hosts (vpart bench-check;
             see Bench_compare). *)
          ("schema_version", Json.Int Bench_compare.schema_version);
          ("provenance", Bench_compare.provenance_json ());
          ( "config",
            Json.Obj
              [
                ("qp_limit", Json.Float cfg.qp_limit);
                ("lambda", Json.Float cfg.lambda);
                ("p", Json.Float cfg.p);
                ("max_rows", Json.Int cfg.max_rows);
                ("sa_seed", Json.Int cfg.sa_seed);
              ] );
          ("results", Json.Obj (List.rev !json_results));
          ("metrics", Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
        ]
    in
    let oc = open_out path in
    output_string oc (Json.to_string j ^ "\n");
    close_out oc;
    Printf.printf "wrote %s\n" path

(* vpart: command-line front end for the vertical partitioning library.

     vpart info     --tpcc | --instance FILE | --random NAME
     vpart check    FILE... [--strict] [--format json]  (instance lint)
     vpart analyze  FILE... [--sites N] [--format json] (model N/S analysis)
     vpart solve    [--solver sa|qp] [--sites N] [--lint-model] [--certify]
                    (--tpcc | ...)
     vpart certify  FILE... [--solver qp|sa|iter]  (solve + certificates)
     vpart gen      --random NAME [-o FILE]
     vpart export   --tpcc [-o FILE]         (instance as JSON)
     vpart mps      --tpcc --sites N [-o FILE]  (MIP (7) in MPS format)
*)

open Cmdliner
open Vpart
module Diagnostic = Vpart_analysis.Diagnostic

(* Machine-readable diagnostics, shared by `check --format json` and
   `analyze --format json`: stable code/severity/message fields, identical
   findings collapsed with a count (mirroring Diagnostic.pp_report). *)
let findings_to_json ds =
  Json.List
    (List.map
       (fun ((d : Diagnostic.t), n) ->
          Json.Obj
            [
              ("code", Json.String d.Diagnostic.code);
              ("severity",
               Json.String (Diagnostic.severity_label d.Diagnostic.severity));
              ("message", Json.String d.Diagnostic.message);
              ("count", Json.Int n);
            ])
       (Diagnostic.dedup (Diagnostic.sort ds)))

let report_to_json ?(extra = []) ~file ds =
  Json.Obj
    (("file", Json.String file)
     :: extra
     @ [
         ("findings", findings_to_json ds);
         ("errors", Json.Int (Diagnostic.count Diagnostic.Error ds));
         ("warnings", Json.Int (Diagnostic.count Diagnostic.Warning ds));
         ("infos", Json.Int (Diagnostic.count Diagnostic.Info ds));
       ])

(* Machine-readable exact-audit report (`certify --exact --format json`):
   per-check exact/float verdict pairs with the residual as an exact
   rational string, plus the E-code findings in the shared
   code/severity/message/count encoding. *)
let exact_to_json (r : Vpart_certify.Certify.Exact.report) =
  let module E = Vpart_certify.Certify.Exact in
  let module Q = Vpart_rational.Rational in
  let valid, masked, refuted, unchecked = E.counts r in
  Json.Obj
    [
      ("checks",
       Json.List
         (List.map
            (fun (c : E.check) ->
               Json.Obj
                 [
                   ("claim", Json.String c.E.claim);
                   ("code", Json.String c.E.code);
                   ("float", Json.String (if c.E.float_ok then "pass" else "fail"));
                   ("verdict", Json.String (E.verdict_label c.E.verdict));
                   ("residual", Json.String (Q.to_string c.E.residual));
                   ("threshold", Json.Float c.E.threshold);
                 ])
            r.E.checks));
      ("findings", findings_to_json r.E.findings);
      ("valid", Json.Int valid);
      ("masked", Json.Int masked);
      ("refuted", Json.Int refuted);
      ("unchecked", Json.Int unchecked);
      ("worst_masked",
       match E.worst_masked r with
       | None -> Json.Null
       | Some c ->
         Json.Obj
           [
             ("claim", Json.String c.E.claim);
             ("residual", Json.String (Q.to_string c.E.residual));
             ("threshold", Json.Float c.E.threshold);
           ]);
    ]

let format_term =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,text) (human-readable report) or $(b,json) \
           (machine-readable; one object per file with stable \
           code/severity/message/count fields).")

(* ------------------------------------------------------------------ *)
(* Instance sources                                                    *)
(* ------------------------------------------------------------------ *)

let instance_term =
  let tpcc =
    Arg.(value & flag & info [ "tpcc" ] ~doc:"Use the built-in TPC-C v5 instance.")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "i"; "instance" ] ~docv:"FILE"
          ~doc:"Load an instance from a JSON file (see Codec).")
  in
  let random =
    Arg.(
      value
      & opt (some string) None
      & info [ "random" ] ~docv:"NAME"
          ~doc:
            "Generate a named random instance from the paper's Table 2 \
             catalog (e.g. rndAt8x15).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "gen-seed" ] ~docv:"N" ~doc:"Seed for --random generation.")
  in
  let builtin =
    Arg.(
      value
      & opt (some string) None
      & info [ "builtin" ] ~docv:"NAME"
          ~doc:
            "Use a built-in instance: $(b,tpcc), $(b,tatp), $(b,smallbank) \
             or $(b,voter).")
  in
  let combine tpcc file random builtin seed =
    match (tpcc, file, random, builtin) with
    | true, None, None, None -> Ok (Lazy.force Tpcc.instance)
    | false, None, None, Some name -> (
      match String.lowercase_ascii name with
      | "tpcc" | "tpc-c" -> Ok (Lazy.force Tpcc.instance)
      | "tatp" -> Ok (Lazy.force Tatp.instance)
      | "smallbank" -> Ok (Lazy.force Smallbank.instance)
      | "voter" -> Ok (Lazy.force Voter.instance)
      | other ->
        Error (`Msg (Printf.sprintf "unknown built-in %S (tpcc|tatp|smallbank|voter)" other)))
    | false, Some f, None, None -> (
      try Ok (Codec.load_instance f) with
      | Sys_error e -> Error (`Msg e)
      | Json.Parse_error e -> Error (`Msg ("parse error: " ^ e))
      | Invalid_argument e -> Error (`Msg e))
    | false, None, Some name, None -> (
      match Instance_gen.find name with
      | params -> Ok (Instance_gen.generate ~seed params)
      | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown instance %S; known: %s" name
                (String.concat ", "
                   (List.map
                      (fun p -> p.Instance_gen.name)
                      Instance_gen.catalog)))))
    | _ ->
      Error
        (`Msg
           "choose exactly one of --tpcc, --builtin NAME, --instance FILE, \
            --random NAME")
  in
  Term.(term_result (const combine $ tpcc $ file $ random $ builtin $ seed))

let output_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output to $(docv).")

let write_output output content =
  match output with
  | None -> print_string content
  | Some path ->
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc;
    Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Common solver options                                               *)
(* ------------------------------------------------------------------ *)

let sites_term =
  Arg.(value & opt int 2 & info [ "s"; "sites" ] ~docv:"N" ~doc:"Number of sites.")

let p_term =
  Arg.(
    value & opt float 8.
    & info [ "p" ] ~docv:"P"
        ~doc:"Network penalty factor (0 = local placement; paper default 8).")

let lambda_term =
  Arg.(
    value & opt float 0.9
    & info [ "lambda" ] ~docv:"L"
        ~doc:
          "Weight of total cost vs. load balancing in objective (6); 1.0 = \
           pure cost minimization.")

let disjoint_term =
  Arg.(
    value & flag
    & info [ "disjoint" ] ~doc:"Forbid attribute replication (disjoint mode).")

let no_grouping_term =
  Arg.(
    value & flag
    & info [ "no-grouping" ]
        ~doc:"Disable the reasonable-cuts attribute grouping reduction.")

let jobs_term =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains to use (default 1 = the sequential solvers, bit for \
           bit).  For $(b,solve) this parallelizes the solver itself: the \
           QP branch-and-bound solves open subtrees concurrently and the \
           SA runs an $(docv)-chain portfolio with best-layout exchange.  \
           For $(b,check) and $(b,certify) it fans the instance files out \
           across domains.  See docs/PARALLELISM.md.")

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run inst =
    Format.printf "%a@.@.%a@.%a@." Instance.pp_summary inst Schema.pp
      inst.Instance.schema Workload.pp inst.Instance.workload;
    let stats = Stats.compute inst ~p:8. in
    let single = Partitioning.single_site inst in
    Format.printf "single-site cost (objective 4, p=8): %.4g@."
      (Cost_model.cost stats single);
    let g = Grouping.compute inst in
    Format.printf "reasonable-cuts groups: %d (of %d attributes)@."
      (Grouping.num_groups g) (Instance.num_attrs inst)
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe an instance.")
    Term.(const run $ instance_term)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let files_term =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Instance JSON file(s) to analyse.")
  in
  let strict_term =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Promote warnings to errors (non-zero exit).")
  in
  let run files strict format jobs =
    (* Lint every file independently (possibly across domains), then print
       the reports in command-line order — the output is identical for
       every --jobs value. *)
    let check_one file =
      let diags =
        match Codec.load_instance file with
        | inst -> Instance_lint.lint inst
        | exception Sys_error e ->
          [ Diagnostic.error ~code:"I001" "cannot read instance: %s" e ]
        | exception Json.Parse_error e ->
          [ Diagnostic.error ~code:"I001" "JSON parse error: %s" e ]
        | exception Invalid_argument e ->
          [ Diagnostic.error ~code:"I001" "malformed instance: %s" e ]
      in
      let diags = if strict then Diagnostic.promote_warnings diags else diags in
      (file, diags)
    in
    let results =
      Par.with_pool ~jobs:(max 1 jobs) @@ fun pool ->
      Par.map_list pool check_one files
    in
    (match format with
     | `Text ->
       List.iter
         (fun (file, diags) ->
            Format.printf "@[<v>%s:@,%a@]@." file Report.pp_diagnostics diags)
         results
     | `Json ->
       print_string
         (Json.to_string
            (Json.List
               (List.map (fun (file, ds) -> report_to_json ~file ds) results)));
       print_newline ());
    let total_errors =
      List.fold_left
        (fun acc (_, ds) -> acc + List.length (Diagnostic.errors ds))
        0 results
    in
    if total_errors > 0 then begin
      if format = `Text then
        Format.printf "check failed: %d error(s)@." total_errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the static-analysis pass over instance files: referential \
          integrity, statistics sanity and degenerate-workload findings \
          (see docs/ANALYSIS.md for the code catalog).  Exits non-zero if \
          any Error-level finding is present.")
    Term.(const run $ files_term $ strict_term $ format_term $ jobs_term)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

module Numerics_lint = Vpart_analysis.Numerics_lint
module Structure = Vpart_analysis.Structure

let analyze_cmd =
  let files_term =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"Instance JSON file(s) whose layout model to analyse.")
  in
  let strict_term =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Promote warnings to errors (non-zero exit).")
  in
  let solve_root_term =
    Arg.(
      value & flag
      & info [ "solve-root" ]
          ~doc:
            "Also solve the root LP relaxation and translate the simplex \
             kernel's counters (iterations, drift/recovery \
             refactorizations, eta-file high-water) into runtime-feedback \
             diagnostics ($(b,N101)/$(b,N102)) — closing the loop between \
             static prediction and observed behaviour.")
  in
  let profile_to_json (pr : Structure.profile) =
    Json.Obj
      [
        ("rows", Json.Int pr.Structure.p_nrows);
        ("cols", Json.Int pr.Structure.p_ncols);
        ("nnz", Json.Int pr.Structure.p_nnz);
        ("density", Json.Float pr.Structure.p_density);
        ("max_row_nnz", Json.Int pr.Structure.p_max_row_nnz);
        ("bandwidth", Json.Int pr.Structure.p_bandwidth);
        ("avg_bandwidth", Json.Float pr.Structure.p_avg_bandwidth);
        ("blocks",
         Json.List
           (List.map
              (fun (b : Structure.block) ->
                 Json.Obj
                   [
                     ("rows", Json.Int b.Structure.b_rows);
                     ("cols", Json.Int b.Structure.b_cols);
                     ("nnz", Json.Int b.Structure.b_nnz);
                   ])
              pr.Structure.p_blocks));
        ("fill_in",
         match pr.Structure.p_fill_in with
         | Some f -> Json.Int f
         | None -> Json.Null);
        ("fill_capped", Json.Bool pr.Structure.p_fill_capped);
        ("orbits", Json.List (List.map (fun n -> Json.Int n) pr.Structure.p_orbits));
      ]
  in
  (* Root-LP cap: the sparse LU kernel sustains paper-scale bases, so cap
     analysis solves the same way Qp_solver.default_options.max_rows does. *)
  let root_cap = 32000 in
  let root_feedback std =
    if std.Lp.nrows > root_cap then
      [
        Diagnostic.info ~code:"N101"
          "root LP not solved: %d rows exceed the %d-row analysis cap"
          std.Lp.nrows root_cap;
      ]
    else begin
      let sx = Simplex.create std in
      ignore (Simplex.reoptimize sx);
      Numerics_lint.runtime_feedback
        ~iterations:(Simplex.iterations sx)
        ~refactorizations:(Simplex.refactorizations sx)
        ~drift_rebuilds:(Simplex.drift_rebuilds sx)
        ~recovery_rebuilds:(Simplex.recovery_rebuilds sx)
        ~max_eta_length:(Simplex.max_eta_length sx)
    end
  in
  let run files sites p lambda disjoint no_grouping strict format solve_root
      jobs =
    (* Analyse every file independently (possibly across domains), then
       print the reports in command-line order. *)
    let analyze_one file =
      match Codec.load_instance file with
      | exception Sys_error e ->
        (file, [ Diagnostic.error ~code:"I001" "cannot read instance: %s" e ],
         None)
      | exception Json.Parse_error e ->
        (file, [ Diagnostic.error ~code:"I001" "JSON parse error: %s" e ],
         None)
      | exception Invalid_argument e ->
        (file, [ Diagnostic.error ~code:"I001" "malformed instance: %s" e ],
         None)
      | inst ->
        let grouping =
          if no_grouping then Grouping.identity inst else Grouping.compute inst
        in
        let stats = Stats.compute grouping.Grouping.reduced ~p in
        let opts =
          { Qp_solver.default_options with
            Qp_solver.num_sites = sites;
            p;
            lambda;
            allow_replication = not disjoint;
          }
        in
        let model, _ = Qp_solver.build_model stats opts in
        let std = Lp.standardize model in
        let profile = Structure.profile std in
        let diags =
          Vpart_analysis.Model_lint.lint_model model
          @ Numerics_lint.lint ~var_name:(Lp.var_name model) std
          @ Structure.lint_profile profile
          @ (if solve_root then root_feedback std else [])
        in
        (file, diags, Some profile)
    in
    let results =
      Par.with_pool ~jobs:(max 1 jobs) @@ fun pool ->
      Par.map_list pool analyze_one files
    in
    let results =
      List.map
        (fun (file, ds, pr) ->
           (file, (if strict then Diagnostic.promote_warnings ds else ds), pr))
        results
    in
    (match format with
     | `Text ->
       List.iter
         (fun (file, ds, pr) ->
            (match pr with
             | None -> Format.printf "@[<v>%s:@]@." file
             | Some pr ->
               Format.printf
                 "@[<v>%s: %d rows, %d cols, %d nnz (density %.3g), \
                  bandwidth %d, %d block(s)@]@."
                 file pr.Structure.p_nrows pr.Structure.p_ncols
                 pr.Structure.p_nnz pr.Structure.p_density
                 pr.Structure.p_bandwidth
                 (List.length pr.Structure.p_blocks));
            Format.printf "@[<v>%a@]@." Report.pp_diagnostics ds)
         results
     | `Json ->
       print_string
         (Json.to_string
            (Json.List
               (List.map
                  (fun (file, ds, pr) ->
                     let extra =
                       match pr with
                       | None -> []
                       | Some pr -> [ ("profile", profile_to_json pr) ]
                     in
                     report_to_json ~extra ~file ds)
                  results)));
       print_newline ());
    let total_errors =
      List.fold_left
        (fun acc (_, ds, _) -> acc + List.length (Diagnostic.errors ds))
        0 results
    in
    if total_errors > 0 then begin
      if format = `Text then
        Format.printf "analyze failed: %d error(s)@." total_errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Build the linearized layout MIP (7) for each instance and run the \
          numerical/structural static-analysis passes over it: conditioning \
          and scaling ($(b,N001)-$(b,N008)), sparsity, block structure, \
          fill-in and symmetry orbits ($(b,S001)-$(b,S005)); see \
          docs/ANALYSIS.md.  Findings point at remediations ($(b,solve \
          --scale), $(b,--break-symmetry)).  Exits non-zero if any \
          Error-level finding is present.")
    Term.(
      const run $ files_term $ sites_term $ p_term $ lambda_term
      $ disjoint_term $ no_grouping_term $ strict_term $ format_term
      $ solve_root_term $ jobs_term)

(* ------------------------------------------------------------------ *)
(* solve                                                               *)
(* ------------------------------------------------------------------ *)

let solve_cmd =
  let solver_term =
    Arg.(
      value
      & opt
          (enum
             [ ("sa", `Sa); ("qp", `Qp); ("iter", `Iter); ("greedy", `Greedy);
               ("affinity", `Affinity) ])
          `Sa
      & info [ "solver" ] ~docv:"SOLVER"
          ~doc:
            "$(b,sa) = simulated annealing; $(b,qp) = exact MIP; $(b,iter) = \
             iterative 20/80 QP; $(b,greedy) = local-search baseline; \
             $(b,affinity) = Navathe-style affinity baseline.")
  in
  let time_limit_term =
    Arg.(
      value & opt float 60.
      & info [ "time-limit" ] ~docv:"S" ~doc:"QP solver time limit (seconds).")
  in
  let seed_term =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"SA solver seed.")
  in
  let json_term =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the partitioning as JSON instead of text.")
  in
  let lint_model_term =
    Arg.(
      value & flag
      & info [ "lint-model" ]
          ~doc:
            "Build the linearized MIP (7) for the instance and print its \
             full static-analysis report (all severities) before solving.")
  in
  let certify_term =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Independently re-derive every claim of the solve (incumbent \
             feasibility, dual bounds, cost-model agreement) and print the \
             certificate verdict; exits non-zero if certification fails.")
  in
  let simplex_dense_term =
    Arg.(
      value & flag
      & info [ "simplex-dense" ]
          ~doc:
            "Shorthand for $(b,--simplex-kernel dense): the dense \
             explicit-inverse simplex kernel for node LPs.  Same certified \
             answers, different wall-clock profile; see docs/PERFORMANCE.md.")
  in
  let simplex_kernel_term =
    let kernel_conv =
      Arg.conv
        ( (fun s ->
            match Simplex.kernel_of_string s with
            | Some k -> Ok k
            | None ->
              Error (`Msg (Printf.sprintf "unknown simplex kernel %S" s))),
          fun ppf k ->
            Format.pp_print_string ppf (Simplex.string_of_kernel k) )
    in
    Arg.(
      value
      & opt (some kernel_conv) None
      & info [ "simplex-kernel" ] ~docv:"KERNEL"
          ~doc:
            "Basis kernel for the node LPs: $(b,sparse) (default; Markowitz \
             LU factorization with sparse ftran/btran), $(b,eta) (dense \
             inverse + product-form eta file), or $(b,dense) (per-pivot \
             dense inverse update, the bit-exact baseline).  Same certified \
             answers on all three; see docs/PERFORMANCE.md.")
  in
  let pricing_term =
    let pricing_conv =
      Arg.conv
        ( (fun s ->
            match Simplex.pricing_of_string s with
            | Some pr -> Ok pr
            | None ->
              Error (`Msg (Printf.sprintf "unknown pricing rule %S" s))),
          fun ppf pr ->
            Format.pp_print_string ppf (Simplex.string_of_pricing pr) )
    in
    Arg.(
      value
      & opt (some pricing_conv) None
      & info [ "pricing" ] ~docv:"RULE"
          ~doc:
            "Dual-simplex pricing rule: $(b,devex) (reference weights; the \
             sparse kernel's default) or $(b,dantzig) (most-violated; the \
             dense/eta default).  Unset takes the kernel's default.")
  in
  let refactor_every_term =
    Arg.(
      value
      & opt int Qp_solver.default_options.Qp_solver.refactor_every
      & info [ "refactor-every" ] ~docv:"N"
          ~doc:
            "Pivots between basis refactorizations (sparse kernel) or \
             eta-file folds (eta kernel); ignored by the dense kernel.")
  in
  let scale_term =
    Arg.(
      value & flag
      & info [ "scale" ]
          ~doc:
            "Geometric-mean scale the layout model inside the QP/iterative \
             branch-and-bound (power-of-two factors, exactly back-mapped; \
             certificates unaffected).  Remediation for the \
             $(b,N001)/$(b,N002)/$(b,N007) findings of $(b,vpart analyze).")
  in
  let break_symmetry_term =
    Arg.(
      value & flag
      & info [ "break-symmetry" ]
          ~doc:
            "Pin the interchangeable-site symmetry of the layout model \
             (lexicographic site ordering: x_t,s = 0 for s > t) in the \
             QP/iterative solvers.  Remediation for the $(b,S005) symmetry \
             orbits of $(b,vpart analyze).")
  in
  let trace_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.jsonl"
          ~doc:
            "Write a structured JSONL trace of the solve (spans, counters, \
             incumbent/bound events) to $(docv); inspect it with $(b,vpart \
             trace summarize).  Schema: docs/OBSERVABILITY.md.")
  in
  let progress_term =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Print live solve progress (span opens/closes, incumbents, \
             bounds) to stderr.")
  in
  let metrics_term =
    Arg.(
      value & flag
      & info [ "metrics-summary" ]
          ~doc:
            "Collect in-process metrics during the solve and print a \
             counter/gauge/histogram summary afterwards.")
  in
  let gc_stats_term =
    Arg.(
      value & flag
      & info [ "gc-stats" ]
          ~doc:
            "Sample GC counters (minor/major words, heap size, \
             compactions) at every span boundary, as $(b,gc.*) gauges in \
             the trace and metrics summary.  Off by default: existing \
             traces are unchanged.")
  in
  let exact_term =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "With $(b,--certify): additionally re-verify every certificate \
             in exact rational arithmetic (zero tolerance; the [E]-code \
             catalog in docs/ANALYSIS.md), reporting per-check exact/float \
             verdict pairs and failing on exactly-refuted claims.")
  in
  let tol_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "tol" ] ~docv:"T"
          ~doc:
            "Override the float certification tolerance (default 1e-5 for \
             MIP-level checks); every float check reports its actual \
             residual against this threshold, and the exact auditor uses it \
             as the masked-vs-refuted boundary.")
  in
  let run inst solver sites p lambda disjoint no_grouping jobs time_limit seed
      simplex_dense simplex_kernel pricing refactor_every scale break_symmetry
      json lint_model certify exact tol trace progress metrics_summary gc_stats
      output =
    let kernel =
      match simplex_kernel with
      | Some k -> k
      | None ->
        if simplex_dense then Simplex.Dense
        else Qp_solver.default_options.Qp_solver.kernel
    in
    let jobs = max 1 jobs in
    if lint_model then begin
      let grouping =
        if no_grouping then Grouping.identity inst else Grouping.compute inst
      in
      let stats = Stats.compute grouping.Grouping.reduced ~p in
      let opts =
        { Qp_solver.default_options with
          Qp_solver.num_sites = sites;
          p;
          lambda;
          allow_replication = not disjoint;
        }
      in
      let model, _ = Qp_solver.build_model stats opts in
      Format.printf "@[<v>model lint (%d rows, %d cols):@,%a@]@."
        (Lp.num_constrs model) (Lp.num_vars model) Report.pp_diagnostics
        (Vpart_analysis.Model_lint.lint_model model)
    end;
    let finish part cost =
      (let pdiags = Instance_lint.lint_partitioning inst part in
       if Diagnostic.has_errors pdiags then
         Format.eprintf "@[<v>warning: solver returned an invalid \
                         partitioning:@,%a@]@."
           Report.pp_diagnostics
           (Diagnostic.errors pdiags));
      if json then
        write_output output
          (Json.to_string (Codec.partitioning_to_json inst part) ^ "\n")
      else begin
        let buf = Buffer.create 4096 in
        let ppf = Format.formatter_of_buffer buf in
        Format.fprintf ppf "%a@." (Report.pp_partitioning inst) part;
        Format.fprintf ppf "%a@." (Report.pp_solution_summary inst ~p ~lambda) part;
        Format.fprintf ppf "cost (objective 4): %.6g@." cost;
        Format.pp_print_flush ppf ();
        write_output output (Buffer.contents buf)
      end
    in
    (* Print the certificate verdict (and its findings when non-trivial);
       fail the command on Error-level findings. *)
    let check_certificate cert =
      if not certify then Ok ()
      else begin
        Format.printf "%a@." Report.pp_certificate cert;
        match cert with
        | Some (_ :: _ as ds) ->
          Format.printf "%a@." Report.pp_diagnostics ds;
          if Diagnostic.has_errors ds then
            Error (`Msg "certification failed (see findings above)")
          else Ok ()
        | _ -> Ok ()
      end
    in
    (* Exact-audit verdict: print the per-check exact/float pairs and the
       findings; fail the command on exactly-refuted (Error) findings. *)
    let check_exact ex =
      if not exact then Ok ()
      else
        match ex with
        | None -> Ok ()
        | Some r ->
          Format.printf "%a@." Vpart_certify.Certify.Exact.pp_report r;
          let ds = r.Vpart_certify.Certify.Exact.findings in
          if ds <> [] then Format.printf "%a@." Report.pp_diagnostics ds;
          if Diagnostic.has_errors ds then
            Error
              (`Msg "exact audit refuted a certificate (see findings above)")
          else Ok ()
    in
    let check_all cert ex =
      match check_certificate cert with
      | Error _ as e -> e
      | Ok () -> check_exact ex
    in
    (* Baseline solvers have no MIP/dual claims to certify: check the
       decoded partitioning and the claimed cost against the instance. *)
    let domain_certificate part cost =
      Some
        (Diagnostic.sort
           (Solution_certify.certify_partitioning (Stats.compute inst ~p) part
            @ Solution_certify.certify_cost inst ~p part ~claimed:cost))
    in
    let domain_exact part cost =
      if not exact then None
      else
        Some
          (Solution_certify.Exact.cost ?tol inst ~p part ~claimed:cost)
    in
    (* Observability setup: trace / progress sinks and in-process metrics
       live for the duration of the solve, torn down (and the trace file
       closed) even on errors. *)
    let trace_oc = Option.map open_out trace in
    let sinks =
      (match trace_oc with
       | Some oc -> [ Obs.jsonl_sink (output_string oc) ]
       | None -> [])
      @ (if progress then [ Obs.progress_sink ~ppf:Format.err_formatter () ]
         else [])
    in
    if metrics_summary then begin
      Obs.Metrics.reset ();
      Obs.Metrics.enable ()
    end;
    if gc_stats then Obs.set_gc_sampling true;
    (match sinks with [] -> () | ss -> Obs.set_sink (Some (Obs.tee ss)));
    let teardown_obs () =
      Obs.set_gc_sampling false;
      Obs.set_sink None;
      (match trace_oc with Some oc -> close_out oc | None -> ());
      (match trace with
       | Some f -> Printf.eprintf "trace written to %s\n%!" f
       | None -> ());
      if metrics_summary then begin
        Format.printf "%a@." Obs.Metrics.pp (Obs.Metrics.snapshot ());
        Obs.Metrics.disable ()
      end
    in
    Fun.protect ~finally:teardown_obs @@ fun () ->
    try
      match solver with
    | `Sa ->
      let options =
        { Sa_solver.default_options with
          Sa_solver.num_sites = sites;
          p;
          lambda;
          allow_replication = not disjoint;
          use_grouping = not no_grouping;
          seed;
          certify;
          certify_exact = exact;
          certify_tol = tol;
          restarts = jobs;
          jobs;
        }
      in
      let r = Sa_solver.solve ~options inst in
      Printf.printf "SA: %d iterations, %d accepted, %.2fs\n"
        r.Sa_solver.iterations r.Sa_solver.accepted r.Sa_solver.elapsed;
      Format.printf "%a@." Report.pp_sa_search r.Sa_solver.search;
      if Array.length r.Sa_solver.chains > 1 then
        Format.printf "%a@." Report.pp_sa_chains r.Sa_solver.chains;
      finish r.Sa_solver.partitioning r.Sa_solver.cost;
      check_all r.Sa_solver.certificate r.Sa_solver.exact
    | `Qp ->
      let options =
        { Qp_solver.default_options with
          Qp_solver.num_sites = sites;
          p;
          lambda;
          allow_replication = not disjoint;
          use_grouping = not no_grouping;
          time_limit;
          certify;
          certify_exact = exact;
          certify_tol = tol;
          jobs;
          kernel;
          pricing;
          refactor_every;
          scale;
          break_symmetry;
        }
      in
      let r = Qp_solver.solve ~options inst in
      Printf.printf "QP: %s, %d nodes, %d rows, %.2fs\n"
        (match r.Qp_solver.outcome with
         | Qp_solver.Proved_optimal -> "optimal (within MIP gap)"
         | Qp_solver.Limit_feasible -> "feasible (limit hit)"
         | Qp_solver.Limit_no_solution -> "no solution within limit"
         | Qp_solver.Too_large ->
           (match r.Qp_solver.row_limit with
            | Some limit ->
              Printf.sprintf "model too large (%d rows over the %d-row limit)"
                r.Qp_solver.model_rows limit
            | None -> "model too large"))
        r.Qp_solver.nodes r.Qp_solver.model_rows r.Qp_solver.elapsed;
      Format.printf "%a@." Report.pp_mip_kernel r;
      if r.Qp_solver.diagnostics <> [] then
        Format.printf "%a@." Report.pp_diagnostics r.Qp_solver.diagnostics;
      (match (r.Qp_solver.partitioning, r.Qp_solver.cost) with
       | Some part, Some cost ->
         finish part cost;
         check_all r.Qp_solver.certificate r.Qp_solver.exact
       | _ -> Error (`Msg "no solution found (increase --time-limit?)"))
    | `Iter ->
      let options =
        { Iterative_solver.default_options with
          Iterative_solver.qp =
            { Qp_solver.default_options with
              Qp_solver.num_sites = sites;
              p;
              lambda;
              allow_replication = not disjoint;
              use_grouping = not no_grouping;
              time_limit;
              certify;
              certify_exact = exact;
              certify_tol = tol;
              jobs;
              kernel;
              pricing;
              refactor_every;
              scale;
              break_symmetry;
            };
        }
      in
      let r = Iterative_solver.solve ~options inst in
      Printf.printf "iterative: %d rounds, %.2fs\n"
        (List.length r.Iterative_solver.rounds)
        r.Iterative_solver.elapsed;
      if r.Iterative_solver.diagnostics <> [] then
        Format.printf "%a@." Report.pp_diagnostics r.Iterative_solver.diagnostics;
      (match (r.Iterative_solver.partitioning, r.Iterative_solver.cost) with
       | Some part, Some cost ->
         finish part cost;
         check_all r.Iterative_solver.certificate r.Iterative_solver.exact
       | _ -> Error (`Msg "no solution found (increase --time-limit?)"))
    | `Greedy ->
      let options =
        { Greedy.default_options with
          Greedy.num_sites = sites;
          p;
          lambda;
          use_grouping = not no_grouping;
        }
      in
      let r = Greedy.solve ~options inst in
      Printf.printf "greedy: %d moves, %.2fs\n" r.Greedy.moves r.Greedy.elapsed;
      finish r.Greedy.partitioning r.Greedy.cost;
      if certify || exact then
        check_all
          (if certify then domain_certificate r.Greedy.partitioning r.Greedy.cost
           else None)
          (domain_exact r.Greedy.partitioning r.Greedy.cost)
      else Ok ()
    | `Affinity ->
      let r =
        Affinity.solve ~options:{ Affinity.num_sites = sites; p; lambda } inst
      in
      finish r.Affinity.partitioning r.Affinity.cost;
      if certify || exact then
        check_all
          (if certify then
             domain_certificate r.Affinity.partitioning r.Affinity.cost
           else None)
          (domain_exact r.Affinity.partitioning r.Affinity.cost)
      else Ok ()
    with Diagnostic.Errors ds ->
      Format.eprintf "%a@." Report.pp_diagnostics ds;
      Error (`Msg "the built model failed static analysis; refusing to solve")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Compute a vertical partitioning for an instance.")
    Term.(
      term_result
        (const run $ instance_term $ solver_term $ sites_term $ p_term
         $ lambda_term $ disjoint_term $ no_grouping_term $ jobs_term
         $ time_limit_term $ seed_term $ simplex_dense_term
         $ simplex_kernel_term $ pricing_term
         $ refactor_every_term $ scale_term $ break_symmetry_term $ json_term
         $ lint_model_term $ certify_term $ exact_term $ tol_term
         $ trace_term $ progress_term $ metrics_term $ gc_stats_term
         $ output_term))

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let ( let* ) = Result.bind in
  let file_term =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.jsonl"
          ~doc:"Trace file written by $(b,vpart solve --trace).")
  in
  (* Shared loader: every trace subcommand validates the schema and the
     span nesting before interpreting anything, so a corrupt trace is a
     per-line diagnostic and a non-zero exit, never a bogus report. *)
  let read_trace file =
    match Obs.Reader.read_file file with
    | Error e -> Error (`Msg ("invalid trace: " ^ e))
    | Ok events -> (
      match Obs.Reader.check_nesting events with
      | Error e -> Error (`Msg ("malformed span nesting: " ^ e))
      | Ok () -> Ok events)
  in
  let summarize_run fmt file =
    let* events = read_trace file in
    (match fmt with
     | `Text ->
       Format.printf "%a@." Obs.Summary.pp (Obs.Summary.of_events events)
     | `Json ->
       print_endline
         (Json.to_string (Obs.Summary.to_json (Obs.Summary.of_events events))));
    Ok ()
  in
  let summarize_cmd =
    Cmd.v
      (Cmd.info "summarize"
         ~doc:
           "Validate a JSONL solve trace against the event schema \
            (docs/OBSERVABILITY.md) and reconstruct the solve timeline: \
            per-phase durations, counters, time-to-first-incumbent and the \
            gap-vs-time trajectory.  Exits non-zero on schema or span-nesting \
            violations.")
      Term.(term_result (const summarize_run $ format_term $ file_term))
  in
  let flame_cmd =
    let fmt_term =
      Arg.(
        value
        & opt
            (enum
               [
                 ("folded", `Folded); ("speedscope", `Speedscope); ("text", `Text);
               ])
            `Folded
        & info [ "format" ] ~docv:"FMT"
            ~doc:
              "Output format: $(b,folded) (flamegraph.pl / inferno folded \
               stacks, one $(i,path;to;span microseconds) line per span \
               path), $(b,speedscope) (speedscope.app JSON, exact per-domain \
               timeline) or $(b,text) (indented aggregate tree).")
    in
    let run fmt output file =
      let* events = read_trace file in
      let content =
        match fmt with
        | `Folded -> Profile.to_folded (Profile.of_events events)
        | `Speedscope ->
          Json.to_string (Profile.speedscope ~name:(Filename.basename file) events)
          ^ "\n"
        | `Text -> Format.asprintf "%a" Profile.pp (Profile.of_events events)
      in
      write_output output content;
      Ok ()
    in
    Cmd.v
      (Cmd.info "flame"
         ~doc:
           "Fold a validated trace into an aggregated span-path profile \
            (self/total time, call counts, counter attribution) and export \
            it as folded flamegraph stacks or speedscope JSON.")
      Term.(term_result (const run $ fmt_term $ output_term $ file_term))
  in
  let diff_cmd =
    let baseline_term =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"BASELINE.jsonl" ~doc:"Baseline trace.")
    in
    let current_term =
      Arg.(
        required
        & pos 1 (some file) None
        & info [] ~docv:"CURRENT.jsonl" ~doc:"Trace to compare against it.")
    in
    let threshold_term =
      Arg.(
        value
        & opt float Trace_diff.default_options.Trace_diff.threshold_pct
        & info [ "threshold" ] ~docv:"PCT"
            ~doc:
              "Relative noise band: rows moving less than $(docv) percent \
               (or less than the absolute floors) are neutral.")
    in
    let gate_term =
      Arg.(
        value & flag
        & info [ "gate" ]
            ~doc:
              "Exit non-zero when any row regresses (for CI use; the \
               default is informational exit 0).")
    in
    let min_span_term =
      Arg.(
        value
        & opt float Trace_diff.default_options.Trace_diff.min_span_seconds
        & info [ "min-span" ] ~docv:"SECONDS"
            ~doc:
              "Absolute span floor: span rows whose time delta is below \
               $(docv) are neutral regardless of the relative threshold.  \
               Raise it when diffing runs with disjoint instrumentation \
               (e.g. different simplex kernels open different span names, \
               which would otherwise always read as appeared-from-nothing \
               regressions).")
    in
    let run fmt threshold min_span gate baseline current =
      let* base = read_trace baseline in
      let* cur = read_trace current in
      let options =
        { Trace_diff.default_options with
          Trace_diff.threshold_pct = threshold;
          min_span_seconds = min_span;
        }
      in
      let report = Trace_diff.diff ~options base cur in
      (match fmt with
       | `Text -> Format.printf "%a" Trace_diff.pp report
       | `Json -> print_endline (Json.to_string (Trace_diff.to_json report)));
      if gate && report.Trace_diff.regressions > 0 then
        Error
          (`Msg
             (Printf.sprintf "%d regressed row(s) beyond the noise threshold"
                report.Trace_diff.regressions))
      else Ok ()
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Align two traces by span path and counter name and report \
            per-phase time/count deltas with a \
            regression/improvement/neutral verdict per row (relative noise \
            threshold plus absolute floors).")
      Term.(
        term_result
          (const run $ format_term $ threshold_term $ min_span_term $ gate_term
           $ baseline_term $ current_term))
  in
  let tree_cmd =
    let fmt_term =
      Arg.(
        value
        & opt (enum [ ("dot", `Dot); ("json", `Json); ("text", `Text) ]) `Dot
        & info [ "format" ] ~docv:"FMT"
            ~doc:
              "Output format: $(b,dot) (Graphviz digraph, nodes coloured by \
               prune reason), $(b,json) (round-trips through the reader) or \
               $(b,text) (one line per node).")
    in
    let run fmt output file =
      let* events = read_trace file in
      let tree = Trace_tree.of_events events in
      let content =
        match fmt with
        | `Dot -> Trace_tree.to_dot tree
        | `Json -> Json.to_string (Trace_tree.to_json tree) ^ "\n"
        | `Text -> Format.asprintf "%a" Trace_tree.pp tree
      in
      write_output output content;
      Ok ()
    in
    Cmd.v
      (Cmd.info "tree"
         ~doc:
           "Re-derive the branch-and-bound tree from the trace's \
            mip.node/incumbent/bound/prune events (node depth, bound, prune \
            reason) and export it as Graphviz DOT or JSON.")
      Term.(term_result (const run $ fmt_term $ output_term $ file_term))
  in
  let trajectory_cmd =
    let curve_term =
      Arg.(
        value
        & opt (enum [ ("gap", `Gap); ("sa", `Sa) ]) `Gap
        & info [ "curve" ] ~docv:"CURVE"
            ~doc:
              "Which curve to export: $(b,gap) (B&B incumbent/bound/gap vs \
               time) or $(b,sa) (simulated-annealing \
               temperature/acceptance/objective per epoch).")
    in
    let run curve output file =
      let* events = read_trace file in
      let content =
        match curve with
        | `Gap -> Trajectory.gap_csv events
        | `Sa -> Trajectory.sa_csv events
      in
      write_output output content;
      Ok ()
    in
    Cmd.v
      (Cmd.info "trajectory"
         ~doc:
           "Export the search trajectory as plot-ready CSV: the gap-vs-time \
            curve from mip.incumbent/mip.bound events, or the SA \
            temperature/acceptance schedule from sa.epoch events.")
      Term.(term_result (const run $ curve_term $ output_term $ file_term))
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Inspect structured solve traces.")
    [ summarize_cmd; flame_cmd; diff_cmd; tree_cmd; trajectory_cmd ]

(* ------------------------------------------------------------------ *)
(* bench-check                                                         *)
(* ------------------------------------------------------------------ *)

let bench_check_cmd =
  let json_file docv doc =
    Arg.(
      required
      & opt (some file) None
      & info [ String.lowercase_ascii docv ] ~docv ~doc)
  in
  let baseline_term =
    json_file "BASELINE" "Committed bench JSON to compare against."
  in
  let current_term = json_file "CURRENT" "Freshly generated bench JSON." in
  let tolerance_term =
    Arg.(
      value
      & opt float Bench_compare.default_options.Bench_compare.tolerance_pct
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Relative tolerance band for timing-class metrics (percent).  \
             The default is deliberately wide: the gate catches cliffs, not \
             noise.")
  in
  let floor_term =
    Arg.(
      value
      & opt float Bench_compare.default_options.Bench_compare.abs_floor
      & info [ "abs-floor" ] ~docv:"S"
          ~doc:
            "Absolute floor: timing moves smaller than $(docv) seconds never \
             gate, whatever the relative change.")
  in
  let run fmt tolerance abs_floor baseline current =
    let load what path =
      match Json.of_string (In_channel.with_open_bin path In_channel.input_all) with
      | json -> Ok json
      | exception Sys_error e -> Error (`Msg e)
      | exception Json.Parse_error e ->
        Error (`Msg (Printf.sprintf "%s: JSON parse error: %s" what e))
    in
    let ( let* ) = Result.bind in
    let* base = load "baseline" baseline in
    let* cur = load "current" current in
    let options = { Bench_compare.tolerance_pct = tolerance; abs_floor } in
    let report = Bench_compare.compare ~options ~baseline:base ~current:cur () in
    (match fmt with
     | `Text -> Format.printf "%a" Bench_compare.pp report
     | `Json -> print_endline (Json.to_string (Bench_compare.to_json report)));
    if Bench_compare.passed report then Ok ()
    else
      Error
        (`Msg
           (Printf.sprintf "bench regression gate failed: %d regression(s), %d missing metric(s)"
              report.Bench_compare.regressions report.Bench_compare.missing))
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Compare two versioned bench JSON files (bench --json-out) metric \
          by metric against per-metric tolerance bands and exit non-zero on \
          regression or on a metric that silently disappeared.  \
          Lower-is-better (seconds/overhead/latency) and higher-is-better \
          (per-second/speedup) metrics gate; counts are informational.  \
          Provenance mismatches (host core count, OCaml version, schema \
          version) are reported as warnings.")
    Term.(
      term_result
        (const run $ format_term $ tolerance_term $ floor_term $ baseline_term
         $ current_term))

(* ------------------------------------------------------------------ *)
(* certify                                                             *)
(* ------------------------------------------------------------------ *)

let certify_cmd =
  let files_term =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Instance JSON file(s) to solve and certify.")
  in
  let solver_term =
    Arg.(
      value
      & opt (enum [ ("qp", `Qp); ("sa", `Sa); ("iter", `Iter) ]) `Qp
      & info [ "solver" ] ~docv:"SOLVER"
          ~doc:"Solver whose claims to certify: $(b,qp), $(b,sa) or $(b,iter).")
  in
  let time_limit_term =
    Arg.(
      value & opt float 10.
      & info [ "time-limit" ] ~docv:"S"
          ~doc:"Per-instance solve budget (seconds).")
  in
  let exact_term =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Additionally re-verify every certificate in exact rational \
             arithmetic (zero tolerance): per-check exact/float verdict \
             pairs, the worst tolerance-masked residual as an exact \
             rational, and [E]-code findings (docs/ANALYSIS.md).  Exits \
             non-zero on exactly-refuted claims.")
  in
  let tol_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "tol" ] ~docv:"T"
          ~doc:
            "Override the float certification tolerance (default 1e-5); \
             float findings report their residual against it and the exact \
             auditor uses it as the masked-vs-refuted boundary.")
  in
  let run files solver sites p lambda time_limit jobs exact tol fmt =
    (* Solve + certify every file independently (possibly across domains;
       the per-file solvers stay sequential so the fan-out owns the only
       pool), then print the verdicts in command-line order. *)
    let certify_one file =
         let cert, exact_report =
           match Codec.load_instance file with
           | exception Sys_error e ->
             (Some [ Diagnostic.error ~code:"I001" "cannot read instance: %s" e ],
              None)
           | exception Json.Parse_error e ->
             (Some [ Diagnostic.error ~code:"I001" "JSON parse error: %s" e ],
              None)
           | exception Invalid_argument e ->
             (Some [ Diagnostic.error ~code:"I001" "malformed instance: %s" e ],
              None)
           | inst -> (
             try
               match solver with
               | `Qp ->
                 let r =
                   Qp_solver.solve
                     ~options:
                       { Qp_solver.default_options with
                         Qp_solver.num_sites = sites;
                         p;
                         lambda;
                         time_limit;
                         certify = true;
                         certify_exact = exact;
                         certify_tol = tol;
                       }
                     inst
                 in
                 (r.Qp_solver.certificate, r.Qp_solver.exact)
               | `Sa ->
                 let r =
                   Sa_solver.solve
                     ~options:
                       { Sa_solver.default_options with
                         Sa_solver.num_sites = sites;
                         p;
                         lambda;
                         time_limit = Some time_limit;
                         certify = true;
                         certify_exact = exact;
                         certify_tol = tol;
                       }
                     inst
                 in
                 (r.Sa_solver.certificate, r.Sa_solver.exact)
               | `Iter ->
                 let r =
                   Iterative_solver.solve
                     ~options:
                       { Iterative_solver.default_options with
                         Iterative_solver.qp =
                           { Qp_solver.default_options with
                             Qp_solver.num_sites = sites;
                             p;
                             lambda;
                             time_limit;
                             certify = true;
                             certify_exact = exact;
                             certify_tol = tol;
                           };
                       }
                     inst
                 in
                 (r.Iterative_solver.certificate, r.Iterative_solver.exact)
             with Diagnostic.Errors ds -> (Some ds, None))
         in
         (file, cert, exact_report)
    in
    let results =
      Par.with_pool ~jobs:(max 1 jobs) @@ fun pool ->
      Par.map_list pool certify_one files
    in
    let module E = Vpart_certify.Certify.Exact in
    let total_errors =
      match fmt with
      | `Json ->
        let n = ref 0 in
        print_string
          (Json.to_string
             (Json.List
                (List.map
                   (fun (file, cert, ex) ->
                      let ds = Option.value cert ~default:[] in
                      n := !n + List.length (Diagnostic.errors ds);
                      let extra =
                        match ex with
                        | None -> []
                        | Some r ->
                          n :=
                            !n
                            + List.length (Diagnostic.errors r.E.findings);
                          [ ("exact", exact_to_json r) ]
                      in
                      report_to_json ~extra ~file ds)
                   results)));
        print_newline ();
        !n
      | `Text ->
        List.fold_left
          (fun acc (file, cert, ex) ->
             let ds = Option.value cert ~default:[] in
             Format.printf "@[<v>%s: %a@]@." file Report.pp_certificate cert;
             if ds <> [] then Format.printf "%a@." Report.pp_diagnostics ds;
             let acc = acc + List.length (Diagnostic.errors ds) in
             match ex with
             | None -> acc
             | Some r ->
               Format.printf "@[<v>%s: %a@]@." file E.pp_report r;
               if r.E.findings <> [] then
                 Format.printf "%a@." Report.pp_diagnostics r.E.findings;
               acc + List.length (Diagnostic.errors r.E.findings))
          0 results
    in
    if total_errors > 0 then begin
      if fmt = `Text then
        Format.printf "certification failed: %d error(s)@." total_errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Solve each instance and independently certify every claim of the \
          solve: incumbent feasibility against the pre-presolve model, dual \
          and Farkas bounds, bound/gap bookkeeping, and cost-model agreement \
          via Cost_model.breakdown (the [C]-code catalog in \
          docs/ANALYSIS.md).  Exits non-zero if any certificate has \
          Error-level findings.")
    Term.(
      const run $ files_term $ solver_term $ sites_term $ p_term $ lambda_term
      $ time_limit_term $ jobs_term $ exact_term $ tol_term $ format_term)

(* ------------------------------------------------------------------ *)
(* gen / export                                                        *)
(* ------------------------------------------------------------------ *)

let export_cmd =
  let run inst output =
    write_output output (Json.to_string (Codec.instance_to_json inst) ^ "\n")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write an instance (TPC-C, generated, or loaded) as JSON.")
    Term.(const run $ instance_term $ output_term)

(* ------------------------------------------------------------------ *)
(* mps                                                                 *)
(* ------------------------------------------------------------------ *)

let mps_cmd =
  let run inst sites p lambda disjoint no_grouping output =
    let grouping =
      if no_grouping then Grouping.identity inst else Grouping.compute inst
    in
    let stats = Stats.compute grouping.Grouping.reduced ~p in
    let options =
      { Qp_solver.default_options with
        Qp_solver.num_sites = sites;
        p;
        lambda;
        allow_replication = not disjoint;
      }
    in
    let model, _ = Qp_solver.build_model stats options in
    write_output output (Lp.to_mps model)
  in
  Cmd.v
    (Cmd.info "mps"
       ~doc:
         "Export the linearized program (7) in MPS format (for external \
          solvers / debugging).")
    Term.(
      const run $ instance_term $ sites_term $ p_term $ lambda_term
      $ disjoint_term $ no_grouping_term $ output_term)

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

let eval_cmd =
  let part_term =
    Arg.(
      required
      & opt (some file) None
      & info [ "partitioning" ] ~docv:"FILE"
          ~doc:"Partitioning JSON (as written by solve --json).")
  in
  let run inst part_file p lambda =
    match Codec.load_partitioning inst part_file with
    | exception Invalid_argument e -> Error (`Msg e)
    | exception Json.Parse_error e -> Error (`Msg ("parse error: " ^ e))
    | part ->
      let diags = Instance_lint.lint_partitioning inst part in
      (match Diagnostic.has_errors diags with
       | true ->
         Format.eprintf "%a@." Report.pp_diagnostics diags;
         Error (`Msg "invalid partitioning (see diagnostics above)")
       | false ->
         if diags <> [] then Format.printf "%a@." Report.pp_diagnostics diags;
         Format.printf "%a@."
           (Report.pp_solution_summary inst ~p ~lambda) part;
         let eng = Engine.deploy inst part in
         Format.printf "@.storage-engine check (one workload pass):@.%a@."
           Engine.pp_counters (Engine.run_workload eng);
         Format.printf "@.latency estimate (Appendix A, pl = 1): %.2f@."
           (Cost_model.latency inst ~pl:1. part);
         Ok ())
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate a stored partitioning against an instance (cost model \
             + storage-engine cross-check).")
    Term.(
      term_result (const run $ instance_term $ part_term $ p_term $ lambda_term))

(* ------------------------------------------------------------------ *)
(* advise                                                              *)
(* ------------------------------------------------------------------ *)

let advise_cmd =
  let part_term =
    Arg.(
      required
      & opt (some file) None
      & info [ "partitioning" ] ~docv:"FILE"
          ~doc:"Partitioning JSON (as written by solve --json).")
  in
  let limit_term =
    Arg.(
      value & opt int 10
      & info [ "limit" ] ~docv:"N" ~doc:"Moves of each kind to display.")
  in
  let run inst part_file p limit =
    match Codec.load_partitioning inst part_file with
    | exception Invalid_argument e -> Error (`Msg e)
    | exception Json.Parse_error e -> Error (`Msg ("parse error: " ^ e))
    | part ->
      (match Advisor.analyze inst ~p part with
       | exception Invalid_argument e -> Error (`Msg e)
       | report ->
         Format.printf "%a@." (Advisor.pp inst ~limit) report;
         let best = Advisor.best_improvement report in
         if best < 0. then
           Format.printf
             "@.best single move improves cost by %.4g — not locally optimal@."
             (-.best)
         else Format.printf "@.locally optimal under single moves@.";
         Ok ())
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"What-if analysis: marginal cost of every single transaction \
             move and replica change.")
    Term.(term_result (const run $ instance_term $ part_term $ p_term $ limit_term))

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

let batch_cmd =
  let random_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "random" ] ~docv:"NAME"
          ~doc:
            "Catalog instance class to stream (a Table 2 name, e.g. \
             rndAt8x15); defaults to the Table 1 default class.")
  in
  let count_term =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Number of instances to stream.  Generation is lazy: the sweep \
             never materializes more than one window.")
  in
  let seed_term =
    Arg.(
      value & opt int 42
      & info [ "gen-seed" ] ~docv:"N"
          ~doc:"Base seed; streamed instance $(i,i) is generated with seed \
                N+i.")
  in
  let action_term =
    Arg.(
      value & opt string "solve"
      & info [ "action" ] ~docv:"ACTION"
          ~doc:
            "What to do with each instance: $(b,check) (lint + single-site \
             baseline objective), $(b,solve) (QP solver) or $(b,certify) \
             (solve with self-certification of every claim).")
  in
  let window_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"N"
          ~doc:
            "In-flight request bound (default 8 × jobs): instances and \
             responses live at most one window at a time.")
  in
  let tables_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "tables" ] ~docv:"N"
          ~doc:"Override the instance class's table count (small values \
                make per-request latency sub-second for smoke sweeps).")
  in
  let txns_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "txns" ] ~docv:"N"
          ~doc:"Override the instance class's transaction count.")
  in
  let time_limit_term =
    Arg.(
      value & opt float 5.
      & info [ "time-limit" ] ~docv:"SEC"
          ~doc:"Per-request solver time limit (default 5 s).")
  in
  let metrics_term =
    Arg.(
      value & flag
      & info [ "metrics-summary" ]
          ~doc:
            "Collect in-process metrics during the sweep and print the \
             counter/gauge/histogram summary to stderr afterwards.")
  in
  let gc_stats_term =
    Arg.(
      value & flag
      & info [ "gc-stats" ]
          ~doc:
            "Sample GC counters at span boundaries as $(b,gc.*) gauges \
             (requires --metrics-summary or a sink to be visible).")
  in
  let run random count seed action jobs window tables txns sites p lambda
      disjoint time_limit metrics_summary gc_stats output =
    match Batch.action_of_string action with
    | None ->
      Error (`Msg (Printf.sprintf "unknown action %S (check|solve|certify)" action))
    | Some action -> (
      match
        match random with
        | None -> Ok Instance_gen.default_params
        | Some name -> (
          try Ok (Instance_gen.find name)
          with Not_found ->
            Error
              (`Msg
                 (Printf.sprintf "unknown instance class %S; known: %s" name
                    (String.concat ", "
                       (List.map
                          (fun p -> p.Instance_gen.name)
                          Instance_gen.catalog)))))
      with
      | Error _ as e -> e
      | Ok params ->
        let params =
          { params with
            Instance_gen.num_tables =
              Option.value tables ~default:params.Instance_gen.num_tables;
            num_transactions =
              Option.value txns ~default:params.Instance_gen.num_transactions;
          }
        in
        if count < 0 then Error (`Msg "--count must be >= 0")
        else begin
          let jobs = max 1 jobs in
          let options =
            { Qp_solver.default_options with
              Qp_solver.num_sites = sites;
              p;
              lambda;
              allow_replication = not disjoint;
              time_limit;
            }
          in
          if metrics_summary then begin
            Obs.Metrics.reset ();
            Obs.Metrics.enable ()
          end;
          if gc_stats then Obs.set_gc_sampling true;
          let oc = Option.map open_out output in
          let write line =
            match oc with
            | Some oc -> output_string oc line
            | None -> print_string line
          in
          let teardown () =
            Obs.set_gc_sampling false;
            (match oc with Some oc -> close_out oc | None -> ());
            if metrics_summary then begin
              Format.eprintf "%a@." Obs.Metrics.pp (Obs.Metrics.snapshot ());
              Obs.Metrics.disable ()
            end
          in
          let summary =
            Fun.protect ~finally:teardown @@ fun () ->
            Batch.run ~jobs ?window ~options ~action
              ~emit:(fun r ->
                  write
                    (Json.to_string ~minify:true (Batch.response_to_json r)
                     ^ "\n"))
              (Instance_gen.stream ~seed ~count params)
          in
          Format.eprintf "%s@."
            (Json.to_string ~minify:true (Batch.summary_to_json summary));
          if summary.Batch.failures > 0 then
            Error
              (`Msg
                 (Printf.sprintf "%d of %d requests failed"
                    summary.Batch.failures summary.Batch.requests))
          else Ok ()
        end)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Stream generated instances through the solver at sustained \
          throughput, one JSONL response per line; pooled solver \
          workspaces keep steady-state allocation flat.")
    Term.(
      term_result
        (const run $ random_term $ count_term $ seed_term $ action_term
         $ jobs_term $ window_term $ tables_term $ txns_term $ sites_term
         $ p_term $ lambda_term $ disjoint_term $ time_limit_term
         $ metrics_term $ gc_stats_term $ output_term))

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let doc = "vertical partitioning of relational OLTP databases" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "vpart" ~version:"1.0.0" ~doc)
          [ info_cmd; check_cmd; analyze_cmd; solve_cmd; certify_cmd; eval_cmd;
            advise_cmd; export_cmd; mps_cmd; trace_cmd; bench_check_cmd;
            batch_cmd ]))

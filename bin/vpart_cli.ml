(* vpart: command-line front end for the vertical partitioning library.

     vpart info     --tpcc | --instance FILE | --random NAME
     vpart check    FILE... [--strict]       (static analysis / lint)
     vpart solve    [--solver sa|qp] [--sites N] [--lint-model] [--certify]
                    (--tpcc | ...)
     vpart certify  FILE... [--solver qp|sa|iter]  (solve + certificates)
     vpart gen      --random NAME [-o FILE]
     vpart export   --tpcc [-o FILE]         (instance as JSON)
     vpart mps      --tpcc --sites N [-o FILE]  (MIP (7) in MPS format)
*)

open Cmdliner
open Vpart
module Diagnostic = Vpart_analysis.Diagnostic

(* ------------------------------------------------------------------ *)
(* Instance sources                                                    *)
(* ------------------------------------------------------------------ *)

let instance_term =
  let tpcc =
    Arg.(value & flag & info [ "tpcc" ] ~doc:"Use the built-in TPC-C v5 instance.")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "i"; "instance" ] ~docv:"FILE"
          ~doc:"Load an instance from a JSON file (see Codec).")
  in
  let random =
    Arg.(
      value
      & opt (some string) None
      & info [ "random" ] ~docv:"NAME"
          ~doc:
            "Generate a named random instance from the paper's Table 2 \
             catalog (e.g. rndAt8x15).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "gen-seed" ] ~docv:"N" ~doc:"Seed for --random generation.")
  in
  let builtin =
    Arg.(
      value
      & opt (some string) None
      & info [ "builtin" ] ~docv:"NAME"
          ~doc:
            "Use a built-in instance: $(b,tpcc), $(b,tatp), $(b,smallbank) \
             or $(b,voter).")
  in
  let combine tpcc file random builtin seed =
    match (tpcc, file, random, builtin) with
    | true, None, None, None -> Ok (Lazy.force Tpcc.instance)
    | false, None, None, Some name -> (
      match String.lowercase_ascii name with
      | "tpcc" | "tpc-c" -> Ok (Lazy.force Tpcc.instance)
      | "tatp" -> Ok (Lazy.force Tatp.instance)
      | "smallbank" -> Ok (Lazy.force Smallbank.instance)
      | "voter" -> Ok (Lazy.force Voter.instance)
      | other ->
        Error (`Msg (Printf.sprintf "unknown built-in %S (tpcc|tatp|smallbank|voter)" other)))
    | false, Some f, None, None -> (
      try Ok (Codec.load_instance f) with
      | Sys_error e -> Error (`Msg e)
      | Json.Parse_error e -> Error (`Msg ("parse error: " ^ e))
      | Invalid_argument e -> Error (`Msg e))
    | false, None, Some name, None -> (
      match Instance_gen.find name with
      | params -> Ok (Instance_gen.generate ~seed params)
      | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown instance %S; known: %s" name
                (String.concat ", "
                   (List.map
                      (fun p -> p.Instance_gen.name)
                      Instance_gen.catalog)))))
    | _ ->
      Error
        (`Msg
           "choose exactly one of --tpcc, --builtin NAME, --instance FILE, \
            --random NAME")
  in
  Term.(term_result (const combine $ tpcc $ file $ random $ builtin $ seed))

let output_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output to $(docv).")

let write_output output content =
  match output with
  | None -> print_string content
  | Some path ->
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc;
    Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Common solver options                                               *)
(* ------------------------------------------------------------------ *)

let sites_term =
  Arg.(value & opt int 2 & info [ "s"; "sites" ] ~docv:"N" ~doc:"Number of sites.")

let p_term =
  Arg.(
    value & opt float 8.
    & info [ "p" ] ~docv:"P"
        ~doc:"Network penalty factor (0 = local placement; paper default 8).")

let lambda_term =
  Arg.(
    value & opt float 0.9
    & info [ "lambda" ] ~docv:"L"
        ~doc:
          "Weight of total cost vs. load balancing in objective (6); 1.0 = \
           pure cost minimization.")

let disjoint_term =
  Arg.(
    value & flag
    & info [ "disjoint" ] ~doc:"Forbid attribute replication (disjoint mode).")

let no_grouping_term =
  Arg.(
    value & flag
    & info [ "no-grouping" ]
        ~doc:"Disable the reasonable-cuts attribute grouping reduction.")

let jobs_term =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains to use (default 1 = the sequential solvers, bit for \
           bit).  For $(b,solve) this parallelizes the solver itself: the \
           QP branch-and-bound solves open subtrees concurrently and the \
           SA runs an $(docv)-chain portfolio with best-layout exchange.  \
           For $(b,check) and $(b,certify) it fans the instance files out \
           across domains.  See docs/PARALLELISM.md.")

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run inst =
    Format.printf "%a@.@.%a@.%a@." Instance.pp_summary inst Schema.pp
      inst.Instance.schema Workload.pp inst.Instance.workload;
    let stats = Stats.compute inst ~p:8. in
    let single = Partitioning.single_site inst in
    Format.printf "single-site cost (objective 4, p=8): %.4g@."
      (Cost_model.cost stats single);
    let g = Grouping.compute inst in
    Format.printf "reasonable-cuts groups: %d (of %d attributes)@."
      (Grouping.num_groups g) (Instance.num_attrs inst)
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe an instance.")
    Term.(const run $ instance_term)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let files_term =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Instance JSON file(s) to analyse.")
  in
  let strict_term =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Promote warnings to errors (non-zero exit).")
  in
  let run files strict jobs =
    (* Lint every file independently (possibly across domains), then print
       the reports in command-line order — the output is identical for
       every --jobs value. *)
    let check_one file =
      let diags =
        match Codec.load_instance file with
        | inst -> Instance_lint.lint inst
        | exception Sys_error e ->
          [ Diagnostic.error ~code:"I001" "cannot read instance: %s" e ]
        | exception Json.Parse_error e ->
          [ Diagnostic.error ~code:"I001" "JSON parse error: %s" e ]
        | exception Invalid_argument e ->
          [ Diagnostic.error ~code:"I001" "malformed instance: %s" e ]
      in
      let diags = if strict then Diagnostic.promote_warnings diags else diags in
      let report =
        Format.asprintf "@[<v>%s:@,%a@]@." file Report.pp_diagnostics diags
      in
      (List.length (Diagnostic.errors diags), report)
    in
    let results =
      Par.with_pool ~jobs:(max 1 jobs) @@ fun pool ->
      Par.map_list pool check_one files
    in
    let total_errors =
      List.fold_left
        (fun acc (errs, report) ->
           print_string report;
           acc + errs)
        0 results
    in
    if total_errors > 0 then begin
      Format.printf "check failed: %d error(s)@." total_errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the static-analysis pass over instance files: referential \
          integrity, statistics sanity and degenerate-workload findings \
          (see docs/ANALYSIS.md for the code catalog).  Exits non-zero if \
          any Error-level finding is present.")
    Term.(const run $ files_term $ strict_term $ jobs_term)

(* ------------------------------------------------------------------ *)
(* solve                                                               *)
(* ------------------------------------------------------------------ *)

let solve_cmd =
  let solver_term =
    Arg.(
      value
      & opt
          (enum
             [ ("sa", `Sa); ("qp", `Qp); ("iter", `Iter); ("greedy", `Greedy);
               ("affinity", `Affinity) ])
          `Sa
      & info [ "solver" ] ~docv:"SOLVER"
          ~doc:
            "$(b,sa) = simulated annealing; $(b,qp) = exact MIP; $(b,iter) = \
             iterative 20/80 QP; $(b,greedy) = local-search baseline; \
             $(b,affinity) = Navathe-style affinity baseline.")
  in
  let time_limit_term =
    Arg.(
      value & opt float 60.
      & info [ "time-limit" ] ~docv:"S" ~doc:"QP solver time limit (seconds).")
  in
  let seed_term =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"SA solver seed.")
  in
  let json_term =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the partitioning as JSON instead of text.")
  in
  let lint_model_term =
    Arg.(
      value & flag
      & info [ "lint-model" ]
          ~doc:
            "Build the linearized MIP (7) for the instance and print its \
             full static-analysis report (all severities) before solving.")
  in
  let certify_term =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Independently re-derive every claim of the solve (incumbent \
             feasibility, dual bounds, cost-model agreement) and print the \
             certificate verdict; exits non-zero if certification fails.")
  in
  let simplex_dense_term =
    Arg.(
      value & flag
      & info [ "simplex-dense" ]
          ~doc:
            "Use the dense explicit-inverse simplex kernel for node LPs \
             instead of the default product-form (eta) updates.  Same \
             certified answers, different wall-clock profile; see \
             docs/PERFORMANCE.md.")
  in
  let refactor_every_term =
    Arg.(
      value
      & opt int Qp_solver.default_options.Qp_solver.refactor_every
      & info [ "refactor-every" ] ~docv:"N"
          ~doc:
            "Pivots between eta-file folds in the eta simplex kernel \
             (ignored with $(b,--simplex-dense)).")
  in
  let trace_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.jsonl"
          ~doc:
            "Write a structured JSONL trace of the solve (spans, counters, \
             incumbent/bound events) to $(docv); inspect it with $(b,vpart \
             trace summarize).  Schema: docs/OBSERVABILITY.md.")
  in
  let progress_term =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Print live solve progress (span opens/closes, incumbents, \
             bounds) to stderr.")
  in
  let metrics_term =
    Arg.(
      value & flag
      & info [ "metrics-summary" ]
          ~doc:
            "Collect in-process metrics during the solve and print a \
             counter/gauge/histogram summary afterwards.")
  in
  let run inst solver sites p lambda disjoint no_grouping jobs time_limit seed
      simplex_dense refactor_every json lint_model certify trace progress
      metrics_summary output =
    let simplex_eta = not simplex_dense in
    let jobs = max 1 jobs in
    if lint_model then begin
      let grouping =
        if no_grouping then Grouping.identity inst else Grouping.compute inst
      in
      let stats = Stats.compute grouping.Grouping.reduced ~p in
      let opts =
        { Qp_solver.default_options with
          Qp_solver.num_sites = sites;
          p;
          lambda;
          allow_replication = not disjoint;
        }
      in
      let model, _ = Qp_solver.build_model stats opts in
      Format.printf "@[<v>model lint (%d rows, %d cols):@,%a@]@."
        (Lp.num_constrs model) (Lp.num_vars model) Report.pp_diagnostics
        (Vpart_analysis.Model_lint.lint_model model)
    end;
    let finish part cost =
      (let pdiags = Instance_lint.lint_partitioning inst part in
       if Diagnostic.has_errors pdiags then
         Format.eprintf "@[<v>warning: solver returned an invalid \
                         partitioning:@,%a@]@."
           Report.pp_diagnostics
           (Diagnostic.errors pdiags));
      if json then
        write_output output
          (Json.to_string (Codec.partitioning_to_json inst part) ^ "\n")
      else begin
        let buf = Buffer.create 4096 in
        let ppf = Format.formatter_of_buffer buf in
        Format.fprintf ppf "%a@." (Report.pp_partitioning inst) part;
        Format.fprintf ppf "%a@." (Report.pp_solution_summary inst ~p ~lambda) part;
        Format.fprintf ppf "cost (objective 4): %.6g@." cost;
        Format.pp_print_flush ppf ();
        write_output output (Buffer.contents buf)
      end
    in
    (* Print the certificate verdict (and its findings when non-trivial);
       fail the command on Error-level findings. *)
    let check_certificate cert =
      if not certify then Ok ()
      else begin
        Format.printf "%a@." Report.pp_certificate cert;
        match cert with
        | Some (_ :: _ as ds) ->
          Format.printf "%a@." Report.pp_diagnostics ds;
          if Diagnostic.has_errors ds then
            Error (`Msg "certification failed (see findings above)")
          else Ok ()
        | _ -> Ok ()
      end
    in
    (* Baseline solvers have no MIP/dual claims to certify: check the
       decoded partitioning and the claimed cost against the instance. *)
    let domain_certificate part cost =
      Some
        (Diagnostic.sort
           (Solution_certify.certify_partitioning (Stats.compute inst ~p) part
            @ Solution_certify.certify_cost inst ~p part ~claimed:cost))
    in
    (* Observability setup: trace / progress sinks and in-process metrics
       live for the duration of the solve, torn down (and the trace file
       closed) even on errors. *)
    let trace_oc = Option.map open_out trace in
    let sinks =
      (match trace_oc with
       | Some oc -> [ Obs.jsonl_sink (output_string oc) ]
       | None -> [])
      @ (if progress then [ Obs.progress_sink ~ppf:Format.err_formatter () ]
         else [])
    in
    if metrics_summary then begin
      Obs.Metrics.reset ();
      Obs.Metrics.enable ()
    end;
    (match sinks with [] -> () | ss -> Obs.set_sink (Some (Obs.tee ss)));
    let teardown_obs () =
      Obs.set_sink None;
      (match trace_oc with Some oc -> close_out oc | None -> ());
      (match trace with
       | Some f -> Printf.eprintf "trace written to %s\n%!" f
       | None -> ());
      if metrics_summary then begin
        Format.printf "%a@." Obs.Metrics.pp (Obs.Metrics.snapshot ());
        Obs.Metrics.disable ()
      end
    in
    Fun.protect ~finally:teardown_obs @@ fun () ->
    try
      match solver with
    | `Sa ->
      let options =
        { Sa_solver.default_options with
          Sa_solver.num_sites = sites;
          p;
          lambda;
          allow_replication = not disjoint;
          use_grouping = not no_grouping;
          seed;
          certify;
          restarts = jobs;
          jobs;
        }
      in
      let r = Sa_solver.solve ~options inst in
      Printf.printf "SA: %d iterations, %d accepted, %.2fs\n"
        r.Sa_solver.iterations r.Sa_solver.accepted r.Sa_solver.elapsed;
      Format.printf "%a@." Report.pp_sa_search r.Sa_solver.search;
      if Array.length r.Sa_solver.chains > 1 then
        Format.printf "%a@." Report.pp_sa_chains r.Sa_solver.chains;
      finish r.Sa_solver.partitioning r.Sa_solver.cost;
      check_certificate r.Sa_solver.certificate
    | `Qp ->
      let options =
        { Qp_solver.default_options with
          Qp_solver.num_sites = sites;
          p;
          lambda;
          allow_replication = not disjoint;
          use_grouping = not no_grouping;
          time_limit;
          certify;
          jobs;
          simplex_eta;
          refactor_every;
        }
      in
      let r = Qp_solver.solve ~options inst in
      Printf.printf "QP: %s, %d nodes, %d rows, %.2fs\n"
        (match r.Qp_solver.outcome with
         | Qp_solver.Proved_optimal -> "optimal (within MIP gap)"
         | Qp_solver.Limit_feasible -> "feasible (limit hit)"
         | Qp_solver.Limit_no_solution -> "no solution within limit"
         | Qp_solver.Too_large -> "model too large")
        r.Qp_solver.nodes r.Qp_solver.model_rows r.Qp_solver.elapsed;
      Format.printf "%a@." Report.pp_mip_kernel r;
      if r.Qp_solver.diagnostics <> [] then
        Format.printf "%a@." Report.pp_diagnostics r.Qp_solver.diagnostics;
      (match (r.Qp_solver.partitioning, r.Qp_solver.cost) with
       | Some part, Some cost ->
         finish part cost;
         check_certificate r.Qp_solver.certificate
       | _ -> Error (`Msg "no solution found (increase --time-limit?)"))
    | `Iter ->
      let options =
        { Iterative_solver.default_options with
          Iterative_solver.qp =
            { Qp_solver.default_options with
              Qp_solver.num_sites = sites;
              p;
              lambda;
              allow_replication = not disjoint;
              use_grouping = not no_grouping;
              time_limit;
              certify;
              jobs;
              simplex_eta;
              refactor_every;
            };
        }
      in
      let r = Iterative_solver.solve ~options inst in
      Printf.printf "iterative: %d rounds, %.2fs\n"
        (List.length r.Iterative_solver.rounds)
        r.Iterative_solver.elapsed;
      if r.Iterative_solver.diagnostics <> [] then
        Format.printf "%a@." Report.pp_diagnostics r.Iterative_solver.diagnostics;
      (match (r.Iterative_solver.partitioning, r.Iterative_solver.cost) with
       | Some part, Some cost ->
         finish part cost;
         check_certificate r.Iterative_solver.certificate
       | _ -> Error (`Msg "no solution found (increase --time-limit?)"))
    | `Greedy ->
      let options =
        { Greedy.default_options with
          Greedy.num_sites = sites;
          p;
          lambda;
          use_grouping = not no_grouping;
        }
      in
      let r = Greedy.solve ~options inst in
      Printf.printf "greedy: %d moves, %.2fs\n" r.Greedy.moves r.Greedy.elapsed;
      finish r.Greedy.partitioning r.Greedy.cost;
      if certify then
        check_certificate (domain_certificate r.Greedy.partitioning r.Greedy.cost)
      else Ok ()
    | `Affinity ->
      let r =
        Affinity.solve ~options:{ Affinity.num_sites = sites; p; lambda } inst
      in
      finish r.Affinity.partitioning r.Affinity.cost;
      if certify then
        check_certificate
          (domain_certificate r.Affinity.partitioning r.Affinity.cost)
      else Ok ()
    with Diagnostic.Errors ds ->
      Format.eprintf "%a@." Report.pp_diagnostics ds;
      Error (`Msg "the built model failed static analysis; refusing to solve")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Compute a vertical partitioning for an instance.")
    Term.(
      term_result
        (const run $ instance_term $ solver_term $ sites_term $ p_term
         $ lambda_term $ disjoint_term $ no_grouping_term $ jobs_term
         $ time_limit_term $ seed_term $ simplex_dense_term
         $ refactor_every_term $ json_term $ lint_model_term $ certify_term
         $ trace_term $ progress_term $ metrics_term $ output_term))

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let file_term =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.jsonl"
          ~doc:"Trace file written by $(b,vpart solve --trace).")
  in
  let summarize_run file =
    match Obs.Reader.read_file file with
    | Error e -> Error (`Msg ("invalid trace: " ^ e))
    | Ok events ->
      (match Obs.Reader.check_nesting events with
       | Error e -> Error (`Msg ("malformed span nesting: " ^ e))
       | Ok () ->
         Format.printf "%a@." Obs.Summary.pp (Obs.Summary.of_events events);
         Ok ())
  in
  let summarize_cmd =
    Cmd.v
      (Cmd.info "summarize"
         ~doc:
           "Validate a JSONL solve trace against the event schema \
            (docs/OBSERVABILITY.md) and reconstruct the solve timeline: \
            per-phase durations, counters, time-to-first-incumbent and the \
            gap-vs-time trajectory.  Exits non-zero on schema or span-nesting \
            violations.")
      Term.(term_result (const summarize_run $ file_term))
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Inspect structured solve traces.")
    [ summarize_cmd ]

(* ------------------------------------------------------------------ *)
(* certify                                                             *)
(* ------------------------------------------------------------------ *)

let certify_cmd =
  let files_term =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Instance JSON file(s) to solve and certify.")
  in
  let solver_term =
    Arg.(
      value
      & opt (enum [ ("qp", `Qp); ("sa", `Sa); ("iter", `Iter) ]) `Qp
      & info [ "solver" ] ~docv:"SOLVER"
          ~doc:"Solver whose claims to certify: $(b,qp), $(b,sa) or $(b,iter).")
  in
  let time_limit_term =
    Arg.(
      value & opt float 10.
      & info [ "time-limit" ] ~docv:"S"
          ~doc:"Per-instance solve budget (seconds).")
  in
  let run files solver sites p lambda time_limit jobs =
    (* Solve + certify every file independently (possibly across domains;
       the per-file solvers stay sequential so the fan-out owns the only
       pool), then print the verdicts in command-line order. *)
    let certify_one file =
         let cert =
           match Codec.load_instance file with
           | exception Sys_error e ->
             Some [ Diagnostic.error ~code:"I001" "cannot read instance: %s" e ]
           | exception Json.Parse_error e ->
             Some [ Diagnostic.error ~code:"I001" "JSON parse error: %s" e ]
           | exception Invalid_argument e ->
             Some [ Diagnostic.error ~code:"I001" "malformed instance: %s" e ]
           | inst -> (
             try
               match solver with
               | `Qp ->
                 (Qp_solver.solve
                    ~options:
                      { Qp_solver.default_options with
                        Qp_solver.num_sites = sites;
                        p;
                        lambda;
                        time_limit;
                        certify = true;
                      }
                    inst)
                   .Qp_solver.certificate
               | `Sa ->
                 (Sa_solver.solve
                    ~options:
                      { Sa_solver.default_options with
                        Sa_solver.num_sites = sites;
                        p;
                        lambda;
                        time_limit = Some time_limit;
                        certify = true;
                      }
                    inst)
                   .Sa_solver.certificate
               | `Iter ->
                 (Iterative_solver.solve
                    ~options:
                      { Iterative_solver.default_options with
                        Iterative_solver.qp =
                          { Qp_solver.default_options with
                            Qp_solver.num_sites = sites;
                            p;
                            lambda;
                            time_limit;
                            certify = true;
                          };
                      }
                    inst)
                   .Iterative_solver.certificate
             with Diagnostic.Errors ds -> Some ds)
         in
         (file, cert)
    in
    let results =
      Par.with_pool ~jobs:(max 1 jobs) @@ fun pool ->
      Par.map_list pool certify_one files
    in
    let total_errors =
      List.fold_left
        (fun acc (file, cert) ->
           let ds = Option.value cert ~default:[] in
           Format.printf "@[<v>%s: %a@]@." file Report.pp_certificate cert;
           if ds <> [] then Format.printf "%a@." Report.pp_diagnostics ds;
           acc + List.length (Diagnostic.errors ds))
        0 results
    in
    if total_errors > 0 then begin
      Format.printf "certification failed: %d error(s)@." total_errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Solve each instance and independently certify every claim of the \
          solve: incumbent feasibility against the pre-presolve model, dual \
          and Farkas bounds, bound/gap bookkeeping, and cost-model agreement \
          via Cost_model.breakdown (the [C]-code catalog in \
          docs/ANALYSIS.md).  Exits non-zero if any certificate has \
          Error-level findings.")
    Term.(
      const run $ files_term $ solver_term $ sites_term $ p_term $ lambda_term
      $ time_limit_term $ jobs_term)

(* ------------------------------------------------------------------ *)
(* gen / export                                                        *)
(* ------------------------------------------------------------------ *)

let export_cmd =
  let run inst output =
    write_output output (Json.to_string (Codec.instance_to_json inst) ^ "\n")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write an instance (TPC-C, generated, or loaded) as JSON.")
    Term.(const run $ instance_term $ output_term)

(* ------------------------------------------------------------------ *)
(* mps                                                                 *)
(* ------------------------------------------------------------------ *)

let mps_cmd =
  let run inst sites p lambda disjoint no_grouping output =
    let grouping =
      if no_grouping then Grouping.identity inst else Grouping.compute inst
    in
    let stats = Stats.compute grouping.Grouping.reduced ~p in
    let options =
      { Qp_solver.default_options with
        Qp_solver.num_sites = sites;
        p;
        lambda;
        allow_replication = not disjoint;
      }
    in
    let model, _ = Qp_solver.build_model stats options in
    write_output output (Lp.to_mps model)
  in
  Cmd.v
    (Cmd.info "mps"
       ~doc:
         "Export the linearized program (7) in MPS format (for external \
          solvers / debugging).")
    Term.(
      const run $ instance_term $ sites_term $ p_term $ lambda_term
      $ disjoint_term $ no_grouping_term $ output_term)

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

let eval_cmd =
  let part_term =
    Arg.(
      required
      & opt (some file) None
      & info [ "partitioning" ] ~docv:"FILE"
          ~doc:"Partitioning JSON (as written by solve --json).")
  in
  let run inst part_file p lambda =
    match Codec.load_partitioning inst part_file with
    | exception Invalid_argument e -> Error (`Msg e)
    | exception Json.Parse_error e -> Error (`Msg ("parse error: " ^ e))
    | part ->
      let diags = Instance_lint.lint_partitioning inst part in
      (match Diagnostic.has_errors diags with
       | true ->
         Format.eprintf "%a@." Report.pp_diagnostics diags;
         Error (`Msg "invalid partitioning (see diagnostics above)")
       | false ->
         if diags <> [] then Format.printf "%a@." Report.pp_diagnostics diags;
         Format.printf "%a@."
           (Report.pp_solution_summary inst ~p ~lambda) part;
         let eng = Engine.deploy inst part in
         Format.printf "@.storage-engine check (one workload pass):@.%a@."
           Engine.pp_counters (Engine.run_workload eng);
         Format.printf "@.latency estimate (Appendix A, pl = 1): %.2f@."
           (Cost_model.latency inst ~pl:1. part);
         Ok ())
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate a stored partitioning against an instance (cost model \
             + storage-engine cross-check).")
    Term.(
      term_result (const run $ instance_term $ part_term $ p_term $ lambda_term))

(* ------------------------------------------------------------------ *)
(* advise                                                              *)
(* ------------------------------------------------------------------ *)

let advise_cmd =
  let part_term =
    Arg.(
      required
      & opt (some file) None
      & info [ "partitioning" ] ~docv:"FILE"
          ~doc:"Partitioning JSON (as written by solve --json).")
  in
  let limit_term =
    Arg.(
      value & opt int 10
      & info [ "limit" ] ~docv:"N" ~doc:"Moves of each kind to display.")
  in
  let run inst part_file p limit =
    match Codec.load_partitioning inst part_file with
    | exception Invalid_argument e -> Error (`Msg e)
    | exception Json.Parse_error e -> Error (`Msg ("parse error: " ^ e))
    | part ->
      (match Advisor.analyze inst ~p part with
       | exception Invalid_argument e -> Error (`Msg e)
       | report ->
         Format.printf "%a@." (Advisor.pp inst ~limit) report;
         let best = Advisor.best_improvement report in
         if best < 0. then
           Format.printf
             "@.best single move improves cost by %.4g — not locally optimal@."
             (-.best)
         else Format.printf "@.locally optimal under single moves@.";
         Ok ())
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"What-if analysis: marginal cost of every single transaction \
             move and replica change.")
    Term.(term_result (const run $ instance_term $ part_term $ p_term $ limit_term))

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let doc = "vertical partitioning of relational OLTP databases" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "vpart" ~version:"1.0.0" ~doc)
          [ info_cmd; check_cmd; solve_cmd; certify_cmd; eval_cmd; advise_cmd;
            export_cmd; mps_cmd; trace_cmd ]))

(* Capacity planning: how many sites are worth paying for, and how should
   cost minimization be traded against load balance?

   Sweeps the number of sites and the lambda knob of objective (6) on a
   mid-size generated OLTP workload, reporting cost, per-site work skew and
   simulated storage, so an operator can pick the knee of the curve.

     dune exec examples/capacity_planning.exe
*)

open Vpart

let () =
  let params =
    { Instance_gen.default_params with
      Instance_gen.name = "erp-like";
      num_tables = 12;
      num_transactions = 24;
      max_attrs_per_table = 20;
      max_queries_per_txn = 4;
      update_percent = 15;
    }
  in
  let inst = Instance_gen.generate ~seed:2024 params in
  let p = 8. in
  let stats = Stats.compute inst ~p in
  Format.printf "%a@.@." Instance.pp_summary inst;

  (* 1. Site sweep at fixed lambda. *)
  Format.printf "site sweep (SA solver, lambda = 0.9):@.";
  Format.printf "%5s | %10s %9s | %10s %10s | %9s@." "sites" "cost" "vs 1"
    "max work" "min work" "replicas";
  Format.printf "------+----------------------+-----------------------+----------@.";
  let base = Cost_model.cost stats (Partitioning.single_site inst) in
  List.iter
    (fun sites ->
       let r =
         Sa_solver.solve
           ~options:{ Sa_solver.default_options with
                      Sa_solver.num_sites = sites; p; lambda = 0.9 }
           inst
       in
       let work = Cost_model.site_work stats r.Sa_solver.partitioning in
       let replicas =
         let n = ref 0 in
         for a = 0 to Instance.num_attrs inst - 1 do
           if Partitioning.replicas r.Sa_solver.partitioning a > 1 then incr n
         done;
         !n
       in
       Format.printf "%5d | %10.0f %8.0f%% | %10.0f %10.0f | %9d@." sites
         r.Sa_solver.cost
         (100. *. r.Sa_solver.cost /. base)
         (Array.fold_left Float.max 0. work)
         (Array.fold_left Float.min infinity work)
         replicas)
    [ 1; 2; 3; 4; 6; 8 ];

  (* 2. Lambda sweep at fixed sites: the cost / balance trade-off. *)
  Format.printf "@.lambda sweep (QP solver, 3 sites):@.";
  Format.printf "%6s | %10s | %10s %10s | %s@." "lambda" "cost" "max work"
    "min work" "site loads";
  Format.printf "-------+------------+------------------------+-------------@.";
  List.iter
    (fun lambda ->
       let r =
         Qp_solver.solve
           ~options:{ Qp_solver.default_options with
                      Qp_solver.num_sites = 3; p; lambda; time_limit = 30. }
           inst
       in
       match r.Qp_solver.partitioning with
       | Some part ->
         let work = Cost_model.site_work stats part in
         Format.printf "%6.2f | %10.0f | %10.0f %10.0f | %s@." lambda
           (Cost_model.cost stats part)
           (Array.fold_left Float.max 0. work)
           (Array.fold_left Float.min infinity work)
           (String.concat " "
              (Array.to_list (Array.map (fun w -> Printf.sprintf "%.0f" w) work)))
       | None -> Format.printf "%6.2f | (no solution within limit)@." lambda)
    [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ];

  (* 3. What does the chosen deployment look like on disk? *)
  let r =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with
                 Sa_solver.num_sites = 3; p; lambda = 0.9 }
      inst
  in
  let eng = Engine.deploy inst r.Sa_solver.partitioning in
  Format.printf "@.simulated deployment (3 sites, 1000 rows per table):@.";
  Array.iteri
    (fun s bytes -> Format.printf "  site %d stores %8.1f KB@." (s + 1) (bytes /. 1e3))
    (Engine.storage_bytes_per_site eng);
  let counters = Engine.run_workload eng in
  Format.printf "@.workload pass:@.%a@." Engine.pp_counters counters

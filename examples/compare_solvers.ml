(* Solver shoot-out: run every algorithm in the repository on the built-in
   workloads and summarize quality vs. runtime.

   Algorithms:
   - QP         exact linearized quadratic program (paper section 2)
   - SA         simulated annealing (paper section 3)
   - iterative  20/80 batched QP (paper section 4)
   - greedy     best-improvement local search (baseline)
   - affinity   Navathe-style affinity clustering (related-work baseline)

     dune exec examples/compare_solvers.exe
*)

open Vpart

let workloads () =
  [ Lazy.force Tpcc.instance;
    Lazy.force Tatp.instance;
    Lazy.force Smallbank.instance;
    Lazy.force Voter.instance ]

let () =
  let p = 8. and lambda = 0.9 and sites = 2 in
  Format.printf
    "%d sites, p = %.0f, lambda = %.1f; cells show objective-(4) cost and time@.@."
    sites p lambda;
  Format.printf "%-10s | %10s | %-16s %-16s %-16s %-16s %-16s@." "workload"
    "1-site" "QP" "SA" "iterative" "greedy" "affinity";
  Format.printf "%s@." (String.make 110 '-');
  List.iter
    (fun inst ->
       let stats = Stats.compute inst ~p in
       let single = Cost_model.cost stats (Partitioning.single_site inst) in
       let cell cost time = Printf.sprintf "%8.0f %5.2fs" cost time in
       let qp =
         Qp_solver.solve
           ~options:{ Qp_solver.default_options with
                      Qp_solver.num_sites = sites; p; lambda; time_limit = 30. }
           inst
       in
       let qp_cell =
         match qp.Qp_solver.cost with
         | Some c -> cell c qp.Qp_solver.elapsed
         | None -> "       t/o"
       in
       let sa =
         Sa_solver.solve
           ~options:{ Sa_solver.default_options with
                      Sa_solver.num_sites = sites; p; lambda }
           inst
       in
       let it =
         Iterative_solver.solve
           ~options:{ Iterative_solver.default_options with
                      Iterative_solver.rounds = 3;
                      qp = { Qp_solver.default_options with
                             Qp_solver.num_sites = sites; p; lambda;
                             time_limit = 30. } }
           inst
       in
       let it_cell =
         match it.Iterative_solver.cost with
         | Some c -> cell c it.Iterative_solver.elapsed
         | None -> "       t/o"
       in
       let g =
         Greedy.solve
           ~options:{ Greedy.default_options with Greedy.num_sites = sites;
                      p; lambda }
           inst
       in
       let aff = Affinity.solve ~options:{ Affinity.num_sites = sites; p; lambda } inst in
       Format.printf "%-10s | %10.0f | %-16s %-16s %-16s %-16s %-16s@."
         inst.Instance.name single qp_cell
         (cell sa.Sa_solver.cost sa.Sa_solver.elapsed)
         it_cell
         (cell g.Greedy.cost g.Greedy.elapsed)
         (cell aff.Affinity.cost aff.Affinity.elapsed))
    (workloads ());
  Format.printf "@.reading guide: QP is optimal (within the MIP gap) when it@.";
  Format.printf "finishes; SA should match it on these sizes; greedy exposes@.";
  Format.printf "local optima; affinity ignores transactions entirely, which@.";
  Format.printf "is the gap the paper's formulation closes.@."

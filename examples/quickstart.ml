(* Quickstart: define a small schema and workload by hand, run both solvers
   for two sites, and print the resulting vertical partitionings.

     dune exec examples/quickstart.exe
*)

open Vpart

let () =
  (* 1. Schema: a miniature blog.  Widths are average bytes per value. *)
  let schema =
    Schema.make
      [ ( "User",
          [ ("id", 4); ("email", 32); ("password_hash", 32); ("bio", 400) ] );
        ( "Post",
          [ ("id", 4); ("user_id", 4); ("title", 60); ("body", 2000);
            ("view_count", 4) ] );
      ]
  in
  let a t n = Schema.find_attr schema t n in
  let tbl n = Schema.find_table schema n in

  (* 2. Workload: queries grouped into transactions, with statistics.
     The "render post" transaction reads posts and author emails; the
     "count view" transaction blindly increments a counter; "login" reads
     credentials. *)
  let queries =
    [ (* render_post *)
      { Workload.q_name = "get_post"; kind = Workload.Read; freq = 100.;
        tables = [ (tbl "Post", 1.) ];
        attrs = [ a "Post" "id"; a "Post" "title"; a "Post" "body" ] };
      { Workload.q_name = "get_author"; kind = Workload.Read; freq = 100.;
        tables = [ (tbl "User", 1.) ];
        attrs = [ a "User" "id"; a "User" "email" ] };
      (* count_view: an UPDATE split per the paper (5.2) into the key
         lookup (read) and the blind increment (write) *)
      { Workload.q_name = "find_view_row"; kind = Workload.Read; freq = 100.;
        tables = [ (tbl "Post", 1.) ]; attrs = [ a "Post" "id" ] };
      { Workload.q_name = "bump_view"; kind = Workload.Write; freq = 100.;
        tables = [ (tbl "Post", 1.) ]; attrs = [ a "Post" "view_count" ] };
      (* login *)
      { Workload.q_name = "check_password"; kind = Workload.Read; freq = 20.;
        tables = [ (tbl "User", 1.) ];
        attrs = [ a "User" "id"; a "User" "email"; a "User" "password_hash" ] };
    ]
  in
  let transactions =
    [ { Workload.t_name = "RenderPost"; queries = [ 0; 1 ] };
      { Workload.t_name = "CountView"; queries = [ 2; 3 ] };
      { Workload.t_name = "Login"; queries = [ 4 ] };
    ]
  in
  let inst =
    Instance.make ~name:"blog" schema (Workload.make ~queries ~transactions)
  in

  (* 3. Baseline: everything on one site. *)
  let stats = Stats.compute inst ~p:8. in
  let single = Partitioning.single_site inst in
  Format.printf "Single-site cost (objective 4): %.0f bytes@.@."
    (Cost_model.cost stats single);

  (* 4. Exact solver (the linearized QP) for two sites. *)
  let qp =
    Qp_solver.solve
      ~options:{ Qp_solver.default_options with Qp_solver.num_sites = 2;
                 lambda = 0.9 }
      inst
  in
  (match qp.Qp_solver.partitioning, qp.Qp_solver.cost with
   | Some part, Some cost ->
     Format.printf "QP partitioning (cost %.0f, -%.0f%%):@.%a@." cost
       (100. *. (1. -. (cost /. Cost_model.cost stats single)))
       (Report.pp_partitioning inst) part
   | _ -> Format.printf "QP found no solution@.");

  (* 5. The scalable heuristic gives the same answer here. *)
  let sa =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 2;
                 lambda = 0.9 }
      inst
  in
  Format.printf "SA cost: %.0f (same layout: %b)@." sa.Sa_solver.cost
    (match qp.Qp_solver.cost with
     | Some c -> Float.abs (c -. sa.Sa_solver.cost) < 1e-6
     | None -> false)

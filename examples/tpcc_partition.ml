(* TPC-C walk-through: partition the benchmark across 1..4 sites with both
   solvers, deploy the best layout on the storage-engine simulator and
   report what a DBA would want to know.

     dune exec examples/tpcc_partition.exe
*)

open Vpart

let () =
  let inst = Lazy.force Tpcc.instance in
  let p = 8. and lambda = 0.9 in
  let stats = Stats.compute inst ~p in
  let single = Partitioning.single_site inst in
  let base_cost = Cost_model.cost stats single in
  Format.printf "%a@." Instance.pp_summary inst;
  Format.printf "baseline (1 site): cost %.0f bytes per workload execution@.@."
    base_cost;

  (* Sweep the number of sites with both solvers. *)
  Format.printf "%4s | %12s %8s | %12s %8s@." "|S|" "QP cost" "time" "SA cost"
    "time";
  Format.printf "-----+-----------------------+----------------------@.";
  let best = ref (1, single, base_cost) in
  List.iter
    (fun sites ->
       let qp =
         Qp_solver.solve
           ~options:{ Qp_solver.default_options with
                      Qp_solver.num_sites = sites; p; lambda; time_limit = 60. }
           inst
       in
       let sa =
         Sa_solver.solve
           ~options:{ Sa_solver.default_options with
                      Sa_solver.num_sites = sites; p; lambda }
           inst
       in
       (match qp.Qp_solver.partitioning, qp.Qp_solver.cost with
        | Some part, Some cost ->
          let _, _, best_cost = !best in
          if cost < best_cost then best := (sites, part, cost)
        | _ -> ());
       Format.printf "%4d | %12s %7.2fs | %12.0f %7.2fs@." sites
         (match qp.Qp_solver.cost with
          | Some c -> Printf.sprintf "%.0f" c
          | None -> "t/o")
         qp.Qp_solver.elapsed sa.Sa_solver.cost sa.Sa_solver.elapsed)
    [ 2; 3; 4 ];

  let sites, part, cost = !best in
  Format.printf "@.best layout: %d sites, cost %.0f (%.0f%% below baseline)@."
    sites cost
    (100. *. (1. -. (cost /. base_cost)));

  (* Deploy on the storage simulator with the spec's cardinalities. *)
  let eng = Engine.deploy inst part ~table_rows:Tpcc.cardinalities in
  Format.printf "@.fractions (table rows from the TPC-C spec, 1 warehouse):@.";
  List.iter
    (fun f ->
       Format.printf "  site %d  %-10s %4d bytes/row x %6d rows (%d attrs)@."
         (f.Engine.f_site + 1)
         (Schema.table_name inst.Instance.schema f.Engine.f_table)
         f.Engine.f_width f.Engine.f_rows
         (List.length f.Engine.f_attrs))
    (Engine.fractions eng);
  let storage = Engine.storage_bytes_per_site eng in
  Format.printf "@.storage per site:@.";
  Array.iteri
    (fun s bytes -> Format.printf "  site %d: %10.1f MB@." (s + 1) (bytes /. 1e6))
    storage;

  (* Execute the workload and a sampled trace. *)
  let counters = Engine.run_workload eng in
  Format.printf "@.one statistical workload pass:@.%a@." Engine.pp_counters
    counters;
  let trace = Engine.run_trace eng ~seed:7 ~length:10_000 in
  Format.printf "@.10,000 sampled transactions:@.%a@." Engine.pp_counters trace;

  (* Latency estimate from Appendix A. *)
  Format.printf "@.latency estimate (Appendix A, pl = 3): %.0f@."
    (Cost_model.latency inst ~pl:3. part);

  Format.printf "@.full layout:@.%a@." (Report.pp_partitioning inst) part

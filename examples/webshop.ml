(* Webshop case study: a hand-modeled OLTP application that shows the two
   design dimensions the paper's evaluation isolates —

   - replication vs disjoint partitioning (Table 5): the product catalog is
     read by two different transactions homed on different sites, so
     allowing replication pays;
   - local vs remote placement (Table 6): the audit log is write-heavy, so
     with a high network penalty it should stay on the writer's site.

     dune exec examples/webshop.exe
*)

open Vpart

let build_instance () =
  let schema =
    Schema.make
      [ ( "Account",
          [ ("id", 4); ("email", 32); ("password_hash", 32); ("address", 120);
            ("loyalty_points", 4); ("marketing_blob", 800) ] );
        ( "Product",
          [ ("id", 4); ("name", 48); ("price", 4); ("stock", 4);
            ("description", 1500); ("search_keywords", 200) ] );
        ( "CartItem",
          [ ("account_id", 4); ("product_id", 4); ("quantity", 4);
            ("added_at", 8) ] );
        ( "Purchase",
          [ ("id", 4); ("account_id", 4); ("product_id", 4); ("price_paid", 4);
            ("purchased_at", 8) ] );
        ( "AuditLog",
          [ ("id", 4); ("account_id", 4); ("action", 16); ("detail", 200);
            ("at", 8) ] );
      ]
  in
  let a t n = Schema.find_attr schema t n in
  let tbl n = Schema.find_table schema n in
  let q = ref [] and n = ref 0 in
  let add name kind freq tables attrs =
    q := { Workload.q_name = name; kind; freq; tables; attrs } :: !q;
    incr n;
    !n - 1
  in
  (* Browse: hot read path over the catalog. *)
  let browse_q =
    add "browse_products" Workload.Read 500. [ (tbl "Product", 10.) ]
      [ a "Product" "id"; a "Product" "name"; a "Product" "price" ]
  in
  let detail_q =
    add "product_detail" Workload.Read 120. [ (tbl "Product", 1.) ]
      [ a "Product" "id"; a "Product" "name"; a "Product" "price";
        a "Product" "description" ]
  in
  (* Checkout: reads cart + product price/stock, writes purchase + stock. *)
  let cart_q =
    add "read_cart" Workload.Read 50. [ (tbl "CartItem", 5.) ]
      [ a "CartItem" "account_id"; a "CartItem" "product_id";
        a "CartItem" "quantity" ]
  in
  let price_q =
    add "price_stock" Workload.Read 50. [ (tbl "Product", 5.) ]
      [ a "Product" "id"; a "Product" "price"; a "Product" "stock" ]
  in
  let stock_w =
    add "decrement_stock" Workload.Write 50. [ (tbl "Product", 5.) ]
      [ a "Product" "stock" ]
  in
  let purchase_w =
    add "insert_purchase" Workload.Write 50. [ (tbl "Purchase", 5.) ]
      (Schema.attrs_of_table schema (tbl "Purchase"))
  in
  let clear_cart_w =
    add "clear_cart" Workload.Write 50. [ (tbl "CartItem", 5.) ]
      (Schema.attrs_of_table schema (tbl "CartItem"))
  in
  (* Account area: profile read + loyalty increment. *)
  let profile_q =
    add "read_profile" Workload.Read 30. [ (tbl "Account", 1.) ]
      [ a "Account" "id"; a "Account" "email"; a "Account" "address" ]
  in
  let loyalty_w =
    add "bump_loyalty" Workload.Write 30. [ (tbl "Account", 1.) ]
      [ a "Account" "loyalty_points" ]
  in
  (* Audit: every transaction appends, nobody reads online. *)
  let audit1 =
    add "audit_checkout" Workload.Write 50. [ (tbl "AuditLog", 1.) ]
      (Schema.attrs_of_table schema (tbl "AuditLog"))
  in
  let audit2 =
    add "audit_account" Workload.Write 30. [ (tbl "AuditLog", 1.) ]
      (Schema.attrs_of_table schema (tbl "AuditLog"))
  in
  let transactions =
    [ { Workload.t_name = "Browse"; queries = [ browse_q; detail_q ] };
      { Workload.t_name = "Checkout";
        queries = [ cart_q; price_q; stock_w; purchase_w; clear_cart_w; audit1 ] };
      { Workload.t_name = "Account"; queries = [ profile_q; loyalty_w; audit2 ] };
    ]
  in
  Instance.make ~name:"webshop"
    schema
    (Workload.make ~queries:(List.rev !q) ~transactions)

let () =
  let inst = build_instance () in
  let lambda = 0.9 in
  Format.printf "%a@.@." Instance.pp_summary inst;

  let solve ~p ~replication =
    Qp_solver.solve
      ~options:{ Qp_solver.default_options with
                 Qp_solver.num_sites = 2; p; lambda;
                 allow_replication = replication; time_limit = 30. }
      inst
  in
  let cost r = match r.Qp_solver.cost with Some c -> c | None -> nan in

  (* Table 5 story: replication vs disjoint. *)
  let with_rep = solve ~p:8. ~replication:true in
  let without = solve ~p:8. ~replication:false in
  Format.printf "replication allowed : cost %.0f@." (cost with_rep);
  Format.printf "disjoint            : cost %.0f@." (cost without);
  Format.printf "replication saves   : %.0f%%@.@."
    (100. *. (1. -. (cost with_rep /. cost without)));
  (match with_rep.Qp_solver.partitioning with
   | Some part ->
     let replicated =
       List.filter
         (fun a -> Partitioning.replicas part a > 1)
         (List.init (Instance.num_attrs inst) Fun.id)
     in
     Format.printf "replicated attributes: %s@.@."
       (String.concat ", "
          (List.map (Schema.attr_name inst.Instance.schema) replicated))
   | None -> ());

  (* Table 6 story: local vs remote placement. *)
  let local = solve ~p:0. ~replication:true in
  let remote = solve ~p:8. ~replication:true in
  Format.printf "local placement (p=0)  : cost %.0f@." (cost local);
  Format.printf "remote placement (p=8) : cost %.0f@." (cost remote);

  (* Where did the write-heavy audit log land? *)
  (match remote.Qp_solver.partitioning with
   | Some part ->
     let audit_detail = Schema.find_attr inst.Instance.schema "AuditLog" "detail" in
     let checkout_site =
       part.Partitioning.txn_site.(1)  (* Checkout is transaction 1 *)
     in
     let audit_sites =
       List.filter
         (fun s -> part.Partitioning.placed.(audit_detail).(s))
         (List.init 2 Fun.id)
     in
     Format.printf
       "@.audit log lives on site(s) %s; Checkout (its main writer) runs on \
        site %d@."
       (String.concat "," (List.map (fun s -> string_of_int (s + 1)) audit_sites))
       (checkout_site + 1);
     Format.printf "@.chosen layout:@.%a@." (Report.pp_partitioning inst) part;
     (* Replication also buys availability: which transactions survive the
        loss of a site? *)
     let eng = Engine.deploy inst part in
     Format.printf "@.availability under single-site failure:@.";
     for failed = 0 to 1 do
       let r = Engine.survive_site_failure eng ~failed in
       Format.printf
         "  site %d down: %d/%d transactions can be re-homed \
          (%.0f%% of traffic), %d attributes lost@."
         (failed + 1) r.Engine.runnable_txns r.Engine.total_txns
         (100. *. r.Engine.runnable_weight)
         r.Engine.lost_attrs
     done
   | None -> ())

type severity = Error | Warning | Info

type t = { code : string; severity : severity; message : string }

exception Errors of t list

let make severity ~code fmt =
  Printf.ksprintf (fun message -> { code; severity; message }) fmt

let error ~code fmt = make Error ~code fmt

let warning ~code fmt = make Warning ~code fmt

let info ~code fmt = make Info ~code fmt

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

let is_error d = d.severity = Error

let errors ds = List.filter is_error ds

let has_errors ds = List.exists is_error ds

let count sev ds =
  List.fold_left (fun acc d -> if d.severity = sev then acc + 1 else acc) 0 ds

let codes ds = List.sort_uniq compare (List.map (fun d -> d.code) ds)

let promote_warnings ds =
  List.map (fun d -> if d.severity = Warning then { d with severity = Error } else d) ds

let sort ds =
  List.stable_sort
    (fun a b ->
       let c = compare_severity a.severity b.severity in
       if c <> 0 then c else compare a.code b.code)
    ds

let dedup ds =
  let tbl : (t, int ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun d ->
       match Hashtbl.find_opt tbl d with
       | Some n -> incr n
       | None ->
         Hashtbl.add tbl d (ref 1);
         order := d :: !order)
    ds;
  List.rev_map (fun d -> (d, !(Hashtbl.find tbl d))) !order

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s" (severity_label d.severity) d.code d.message

let to_string d = Format.asprintf "%a" pp d

let pp_report ppf ds =
  match ds with
  | [] -> Format.fprintf ppf "no findings"
  | ds ->
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (d, n) ->
         if n = 1 then Format.fprintf ppf "%a@," pp d
         else Format.fprintf ppf "%a (x%d)@," pp d n)
      (dedup (sort ds));
    Format.fprintf ppf "%d error(s), %d warning(s), %d info(s)@]"
      (count Error ds) (count Warning ds) (count Info ds)

let () =
  Printexc.register_printer (function
    | Errors ds ->
      Some
        (Printf.sprintf "Diagnostic.Errors:\n%s"
           (String.concat "\n" (List.map to_string ds)))
    | _ -> None)

(** Structured diagnostics for the static-analysis passes.

    Every finding carries a stable code (catalogued in [docs/ANALYSIS.md]),
    a severity and a human-readable message naming the offending object.
    The model-level pass lives in {!Model_lint}; the instance- and
    partitioning-level passes live in [Vpart.Instance_lint] (they need the
    core types, which depend on this library — the diagnostic
    representation is shared through this module).

    Code prefixes: [M] — MIP/LP model lint, [I] — instance lint,
    [P] — partitioning lint, [C] — solve certificates
    ([Vpart_certify.Certify] and [Vpart.Solution_certify]). *)

type severity = Error | Warning | Info

type t = {
  code : string;      (** stable identifier, e.g. ["M001"] *)
  severity : severity;
  message : string;   (** human-readable; names the offending object *)
}

exception Errors of t list
(** Raised by fail-fast entry points ({!Model_lint.assert_clean}, the
    solvers) when Error-level findings are present.  A printer rendering
    every finding is registered with [Printexc]. *)

val error : code:string -> ('a, unit, string, t) format4 -> 'a
val warning : code:string -> ('a, unit, string, t) format4 -> 'a
val info : code:string -> ('a, unit, string, t) format4 -> 'a
(** [error ~code fmt ...] builds a finding with the given severity. *)

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val compare_severity : severity -> severity -> int
(** Orders [Error < Warning < Info] (most severe first). *)

val is_error : t -> bool

val errors : t list -> t list
(** The Error-level findings, in order. *)

val has_errors : t list -> bool

val count : severity -> t list -> int

val codes : t list -> string list
(** Sorted, de-duplicated codes of the findings (for tests). *)

val promote_warnings : t list -> t list
(** Turn every [Warning] into an [Error] (the CLI's [--strict] mode). *)

val sort : t list -> t list
(** Stable sort by severity (errors first), then code. *)

val dedup : t list -> (t * int) list
(** Collapse identical findings (same code, severity {e and} message —
    the message carries the location) into one entry with an occurrence
    count.  First-occurrence order is preserved, so [dedup (sort ds)]
    yields severity-then-code order. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[M001] message]. *)

val to_string : t -> string

val pp_report : Format.formatter -> t list -> unit
(** Multi-line report: one line per distinct finding (sorted, identical
    findings collapsed with an [(xN)] occurrence count) followed by a
    severity-count summary over {e all} findings; ["no findings"] when
    empty. *)

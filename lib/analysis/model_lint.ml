module D = Diagnostic

let cond_ratio_limit = 1e9

let is_bad f = Float.is_nan f || Float.abs f = infinity

(* Interval a row imposes on its (normalized) linear form. *)
let row_interval cmp rhs =
  match cmp with
  | Lp.Le -> (neg_infinity, rhs)
  | Lp.Ge -> (rhs, infinity)
  | Lp.Eq -> (rhs, rhs)

let flip = function Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq

let check_vars ~vname (std : Lp.std) push =
  for j = 0 to std.Lp.ncols - 1 do
    let lb = std.Lp.lb.(j) and ub = std.Lp.ub.(j) in
    if Float.is_nan lb || Float.is_nan ub || lb = infinity || ub = neg_infinity
    then
      push
        (D.error ~code:"M012" "variable %s: non-finite bounds [%g, %g]"
           (vname j) lb ub)
    else if lb > ub then
      push
        (D.error ~code:"M001"
           "variable %s: lower bound %g exceeds upper bound %g (infeasible)"
           (vname j) lb ub)
    else begin
      if lb = ub then
        push (D.info ~code:"M011" "variable %s: fixed at %g by its bounds" (vname j) lb);
      if std.Lp.integer.(j) then
        List.iter
          (fun (what, b) ->
             if Float.abs b <> infinity
                && Float.abs (b -. Float.round b) > 1e-9 then
               push
                 (D.warning ~code:"M009"
                    "integer variable %s: fractional %s bound %g" (vname j)
                    what b))
          [ ("lower", lb); ("upper", ub) ]
    end;
    if is_bad std.Lp.obj.(j) then
      push
        (D.error ~code:"M012" "variable %s: non-finite objective coefficient %g"
           (vname j) std.Lp.obj.(j))
  done;
  if is_bad std.Lp.obj_const then
    push (D.error ~code:"M012" "non-finite objective constant %g" std.Lp.obj_const)

let check_rows ~vname (std : Lp.std) push =
  (* per-column usage for M008, coefficient extremes for M010 *)
  let used = Array.make std.Lp.ncols false in
  let min_mag = ref infinity and max_mag = ref 0. in
  for r = 0 to std.Lp.nrows - 1 do
    let idx = std.Lp.row_idx.(r) and value = std.Lp.row_val.(r) in
    let rhs = std.Lp.rhs.(r) and cmp = std.Lp.row_cmp.(r) in
    let bad_data = ref (Float.is_nan rhs || Float.abs rhs = infinity) in
    if !bad_data then
      push (D.error ~code:"M012" "row %d: non-finite right-hand side %g" r rhs);
    Array.iteri
      (fun k v ->
         used.(idx.(k)) <- true;
         if is_bad v then begin
           bad_data := true;
           push
             (D.error ~code:"M012" "row %d: non-finite coefficient %g on %s" r v
                (vname idx.(k)))
         end
         else if v <> 0. then begin
           let m = Float.abs v in
           if m < !min_mag then min_mag := m;
           if m > !max_mag then max_mag := m
         end)
      value;
    if Array.length idx = 0 && not !bad_data then begin
      let ok =
        match cmp with
        | Lp.Le -> rhs >= -1e-9
        | Lp.Ge -> rhs <= 1e-9
        | Lp.Eq -> Float.abs rhs <= 1e-9
      in
      let scmp = match cmp with Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "=" in
      if ok then
        push
          (D.warning ~code:"M003" "row %d: empty row 0 %s %g is trivially satisfied"
             r scmp rhs)
      else
        push
          (D.error ~code:"M002" "row %d: empty row 0 %s %g cannot be satisfied" r
             scmp rhs)
    end
  done;
  Array.iteri
    (fun j in_row ->
       if (not in_row) && std.Lp.obj.(j) = 0. then
         push
           (D.warning ~code:"M008"
              "variable %s: appears in no constraint and not in the objective"
              (vname j)))
    used;
  if !max_mag /. !min_mag > cond_ratio_limit then
    push
      (D.warning ~code:"M010"
         "ill-conditioned matrix: coefficient magnitudes span %g .. %g \
          (ratio %.3g > %g)"
         !min_mag !max_mag (!max_mag /. !min_mag) cond_ratio_limit)

(* Interval (activity-bound) propagation per row: provably infeasible or
   provably redundant rows.  Rows touching a variable with crossed or
   non-finite bounds, or carrying non-finite data, are skipped — those
   already have their own findings. *)
let check_activity (std : Lp.std) push =
  for r = 0 to std.Lp.nrows - 1 do
    let idx = std.Lp.row_idx.(r) and value = std.Lp.row_val.(r) in
    let rhs = std.Lp.rhs.(r) in
    if Array.length idx > 0 && not (Float.is_nan rhs || Float.abs rhs = infinity)
    then begin
      let skip = ref false in
      let minact = ref 0. and maxact = ref 0. in
      Array.iteri
        (fun k v ->
           let j = idx.(k) in
           let lo = std.Lp.lb.(j) and hi = std.Lp.ub.(j) in
           if is_bad v || Float.is_nan lo || Float.is_nan hi || lo > hi then
             skip := true
           else if v > 0. then begin
             minact := !minact +. (v *. lo);
             maxact := !maxact +. (v *. hi)
           end
           else if v < 0. then begin
             minact := !minact +. (v *. hi);
             maxact := !maxact +. (v *. lo)
           end)
        value;
      if not !skip then begin
        let ftol = 1e-7 *. (1. +. Float.abs rhs) in
        match std.Lp.row_cmp.(r) with
        | Lp.Le ->
          if !minact > rhs +. ftol then
            push
              (D.error ~code:"M006"
                 "row %d: minimum activity %g already exceeds rhs %g (<=)" r
                 !minact rhs)
          else if !maxact <= rhs -. ftol then
            push
              (D.warning ~code:"M007"
                 "row %d: maximum activity %g never reaches rhs %g (<= is \
                  redundant)"
                 r !maxact rhs)
        | Lp.Ge ->
          if !maxact < rhs -. ftol then
            push
              (D.error ~code:"M006"
                 "row %d: maximum activity %g cannot reach rhs %g (>=)" r !maxact
                 rhs)
          else if !minact >= rhs +. ftol then
            push
              (D.warning ~code:"M007"
                 "row %d: minimum activity %g already exceeds rhs %g (>= is \
                  redundant)"
                 r !minact rhs)
        | Lp.Eq ->
          if !minact > rhs +. ftol || !maxact < rhs -. ftol then
            push
              (D.error ~code:"M006"
                 "row %d: activity range [%g, %g] excludes rhs %g (=)" r !minact
                 !maxact rhs)
      end
    end
  done

(* Duplicate/parallel rows: bucket rows by their support and
   leading-coefficient-normalized coefficient vector; rows landing in the
   same bucket are proportional.  Each bucket tracks the running
   intersection of the intervals its rows impose on the common linear form:
   an empty intersection is a contradiction (M005); a row whose interval
   contains the running intersection adds nothing (M004). *)
let check_parallel (std : Lp.std) push =
  let buckets : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  for r = 0 to std.Lp.nrows - 1 do
    let idx = std.Lp.row_idx.(r) and value = std.Lp.row_val.(r) in
    if Array.length idx > 0 && not (Array.exists is_bad value)
       && not (Float.is_nan std.Lp.rhs.(r))
    then begin
      let lead = value.(0) in
      if lead <> 0. then begin
        let buf = Buffer.create 64 in
        Array.iteri
          (fun k v ->
             Buffer.add_string buf
               (Printf.sprintf "%d:%.12g;" idx.(k) (v /. lead)))
          value;
        let key = Buffer.contents buf in
        let cmp =
          if lead > 0. then std.Lp.row_cmp.(r) else flip std.Lp.row_cmp.(r)
        in
        let lo, hi = row_interval cmp (std.Lp.rhs.(r) /. lead) in
        match Hashtbl.find_opt buckets key with
        | None -> Hashtbl.add buckets key (ref r, ref lo, ref hi)
        | Some (first, cur_lo, cur_hi) ->
          let tol = 1e-9 *. (1. +. Float.abs std.Lp.rhs.(r)) in
          if lo > !cur_hi +. tol || hi < !cur_lo -. tol then
            push
              (D.error ~code:"M005"
                 "row %d: parallel to row %d but mutually exclusive with it" r
                 !first)
          else if lo <= !cur_lo +. tol && hi >= !cur_hi -. tol then
            push
              (D.warning ~code:"M004"
                 "row %d: duplicate/parallel of row %d (redundant)" r !first)
          else begin
            cur_lo := Float.max !cur_lo lo;
            cur_hi := Float.min !cur_hi hi
          end
      end
    end
  done

let lint ?var_name (std : Lp.std) =
  let vname =
    match var_name with Some f -> f | None -> Printf.sprintf "x%d"
  in
  let out = ref [] in
  let push d = out := d :: !out in
  check_vars ~vname std push;
  check_rows ~vname std push;
  check_activity std push;
  check_parallel std push;
  List.rev !out

let lint_model m = lint ~var_name:(Lp.var_name m) (Lp.standardize m)

let assert_clean ?var_name std =
  let ds = lint ?var_name std in
  match D.errors ds with
  | [] -> List.filter (fun d -> not (D.is_error d)) ds
  | errs -> raise (D.Errors errs)

(** Static analysis over MIP models in frozen standard form ({!Lp.std}).

    This plays the role an industrial solver's presolve/diagnostic layer
    would: since the whole solver substrate is in-repo, nothing else
    rejects a mis-built model before branch-and-bound burns time on it.
    The checks are read-only — nothing is simplified or rewritten (that is
    {!Presolve}'s job); findings are returned as {!Diagnostic.t} values.

    Diagnostic codes (see [docs/ANALYSIS.md] for examples):

    - [M001] {e error} — variable with [lb > ub] (trivially infeasible);
    - [M002] {e error} — empty row that cannot be satisfied
      (e.g. [0 = 1], [0 <= -1]);
    - [M003] {e warning} — empty row that is trivially satisfied;
    - [M004] {e warning} — duplicate/parallel row: proportional to an
      earlier row and implied by it (redundant);
    - [M005] {e error} — parallel rows that are mutually exclusive
      (e.g. [x = 1] and [x = 2]);
    - [M006] {e error} — row provably infeasible under interval
      (activity-bound) propagation;
    - [M007] {e warning} — row provably redundant under interval
      propagation (satisfied by every point within bounds);
    - [M008] {e warning} — dangling variable: appears in no row and has a
      zero objective coefficient;
    - [M009] {e warning} — integer variable with a fractional finite bound;
    - [M010] {e warning} — numerical conditioning: the ratio between the
      largest and smallest nonzero constraint-coefficient magnitudes
      exceeds [1e9];
    - [M011] {e info} — variable fixed by its bounds ([lb = ub]);
    - [M012] {e error} — non-finite data: NaN/infinite coefficient,
      objective term or right-hand side, or NaN/inverted-infinite bound. *)

val lint : ?var_name:(int -> string) -> Lp.std -> Diagnostic.t list
(** Run every check.  [var_name] is used in messages (default ["x<j>"]). *)

val lint_model : Lp.model -> Diagnostic.t list
(** [lint] on [Lp.standardize model], with the model's variable names. *)

val assert_clean : ?var_name:(int -> string) -> Lp.std -> Diagnostic.t list
(** Like {!lint} but fails fast: raises {!Diagnostic.Errors} with the
    Error-level findings if any are present; otherwise returns the
    remaining (warning/info) findings.  This is the gate the MIP-building
    solvers ([Qp_solver], [Iterative_solver]) run before solving. *)

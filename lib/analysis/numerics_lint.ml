module D = Diagnostic

let row_ratio_limit = 1e6
let col_ratio_limit = 1e6
let big_m_limit = 1e6
let big_m_rel = 1e4
let near_parallel_tol = 1e-6
let degeneracy_warn_share = 0.5
let degeneracy_info_share = 0.25
let cond_estimate_limit = 1e8
let obj_ratio_limit = 1e9

let is_bad f = Float.is_nan f || Float.abs f = infinity

(* Magnitude range over an array of coefficients, skipping zeros and
   non-finite entries.  Returns (min, max, count of finite nonzeros). *)
let mag_range values =
  let mn = ref infinity and mx = ref 0. and n = ref 0 in
  Array.iter
    (fun v ->
       if (not (is_bad v)) && v <> 0. then begin
         let m = Float.abs v in
         if m < !mn then mn := m;
         if m > !mx then mx := m;
         incr n
       end)
    values;
  (!mn, !mx, !n)

(* N001: rows whose own coefficients span too many orders of magnitude.
   One aggregated finding naming the worst row. *)
let check_row_scaling (std : Lp.std) push =
  let bad = ref 0 and worst = ref (-1) and worst_ratio = ref 0. in
  for r = 0 to std.Lp.nrows - 1 do
    let mn, mx, n = mag_range std.Lp.row_val.(r) in
    if n >= 2 && mx /. mn > row_ratio_limit then begin
      incr bad;
      if mx /. mn > !worst_ratio then begin
        worst_ratio := mx /. mn;
        worst := r
      end
    end
  done;
  if !bad > 0 then
    push
      (D.warning ~code:"N001"
         "%d ill-scaled row(s): in-row coefficient magnitude ratio exceeds \
          %g (worst: row %d, ratio %.3g) — consider --scale"
         !bad row_ratio_limit !worst !worst_ratio)

(* Column-major view: per column, the list of (row, value) with finite
   nonzero coefficients. *)
let columns (std : Lp.std) =
  let cols = Array.make std.Lp.ncols [] in
  for r = std.Lp.nrows - 1 downto 0 do
    let idx = std.Lp.row_idx.(r) and value = std.Lp.row_val.(r) in
    Array.iteri
      (fun k j ->
         let v = value.(k) in
         if (not (is_bad v)) && v <> 0. then cols.(j) <- (r, v) :: cols.(j))
      idx
  done;
  cols

(* N002: columns whose coefficients span too many orders of magnitude. *)
let check_col_scaling ~vname cols push =
  let bad = ref 0 and worst = ref (-1) and worst_ratio = ref 0. in
  Array.iteri
    (fun j entries ->
       let mn = ref infinity and mx = ref 0. and n = ref 0 in
       List.iter
         (fun (_, v) ->
            let m = Float.abs v in
            if m < !mn then mn := m;
            if m > !mx then mx := m;
            incr n)
         entries;
       if !n >= 2 && !mx /. !mn > col_ratio_limit then begin
         incr bad;
         if !mx /. !mn > !worst_ratio then begin
           worst_ratio := !mx /. !mn;
           worst := j
         end
       end)
    cols;
  if !bad > 0 then
    push
      (D.warning ~code:"N002"
         "%d ill-scaled column(s): in-column coefficient magnitude ratio \
          exceeds %g (worst: %s, ratio %.3g) — consider --scale"
         !bad col_ratio_limit (vname !worst) !worst_ratio)

(* N003: big-M constants — huge both absolutely and relative to the
   median coefficient magnitude of the matrix. *)
let check_big_m (std : Lp.std) push =
  let mags = ref [] in
  for r = 0 to std.Lp.nrows - 1 do
    Array.iter
      (fun v ->
         if (not (is_bad v)) && v <> 0. then mags := Float.abs v :: !mags)
      std.Lp.row_val.(r)
  done;
  let mags = Array.of_list !mags in
  let n = Array.length mags in
  if n > 0 then begin
    Array.sort compare mags;
    let median = mags.(n / 2) in
    let floor_mag = Float.max big_m_limit (median *. big_m_rel) in
    let bad = ref 0 and worst = ref 0. and worst_row = ref (-1) in
    for r = 0 to std.Lp.nrows - 1 do
      Array.iter
        (fun v ->
           if (not (is_bad v)) && Float.abs v >= floor_mag then begin
             incr bad;
             if Float.abs v > !worst then begin
               worst := Float.abs v;
               worst_row := r
             end
           end)
        std.Lp.row_val.(r)
    done;
    if !bad > 0 then
      push
        (D.warning ~code:"N003"
           "%d big-M coefficient(s): magnitude >= %g and %gx the median \
            magnitude %g (worst: %g in row %d) — big-M rows dominate pivot \
            selection and hide the rest of the row"
           !bad big_m_limit big_m_rel median !worst !worst_row)
  end

(* N004: near-parallel row pairs.  Rows are bucketed by support; inside a
   bucket each row is compared against the bucket representative after
   normalizing by the leading coefficient.  Exactly proportional rows are
   Model_lint's M004/M005 territory; here we flag the numerically nasty
   case — almost, but not exactly, proportional. *)
let check_near_parallel (std : Lp.std) push =
  let buckets : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let pairs = ref 0 and example = ref None in
  for r = 0 to std.Lp.nrows - 1 do
    let idx = std.Lp.row_idx.(r) and value = std.Lp.row_val.(r) in
    if Array.length idx >= 2 && not (Array.exists is_bad value)
       && value.(0) <> 0.
    then begin
      let buf = Buffer.create 32 in
      Array.iter (fun j -> Buffer.add_string buf (string_of_int j);
                   Buffer.add_char buf ';') idx;
      let key = Buffer.contents buf in
      match Hashtbl.find_opt buckets key with
      | None -> Hashtbl.add buckets key r
      | Some r0 ->
        let v0 = std.Lp.row_val.(r0) in
        if v0.(0) <> 0. then begin
          let dev = ref 0. in
          Array.iteri
            (fun k v ->
               let a = v /. value.(0) and b = v0.(k) /. v0.(0) in
               let d =
                 Float.abs (a -. b) /. Float.max 1. (Float.abs b)
               in
               if d > !dev then dev := d)
            value;
          if !dev > 0. && !dev <= near_parallel_tol then begin
            incr pairs;
            if !example = None then example := Some (r, r0, !dev)
          end
        end
    end
  done;
  match !example with
  | Some (r, r0, dev) ->
    push
      (D.warning ~code:"N004"
         "%d near-parallel row pair(s): relative deviation <= %g but not \
          exactly proportional (e.g. rows %d and %d, deviation %.3g) — \
          expect tiny pivots"
         !pairs near_parallel_tol r r0 dev)
  | None -> ()

(* N005: duplicate columns — same support, proportional coefficients and
   proportional objective.  Keyed on the lead-normalized column pattern. *)
let check_duplicate_columns ~vname (std : Lp.std) cols push =
  let buckets : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let dups = ref 0 and example = ref None in
  Array.iteri
    (fun j entries ->
       match entries with
       | [] -> ()
       | (_, lead) :: _ ->
         let buf = Buffer.create 64 in
         List.iter
           (fun (r, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%d:%.12g;" r (v /. lead)))
           entries;
         Buffer.add_string buf
           (Printf.sprintf "o:%.12g;i:%b" (std.Lp.obj.(j) /. lead)
              std.Lp.integer.(j));
         let key = Buffer.contents buf in
         (match Hashtbl.find_opt buckets key with
          | None -> Hashtbl.add buckets key j
          | Some j0 ->
            incr dups;
            if !example = None then example := Some (j, j0)))
    cols;
  match !example with
  | Some (j, j0) ->
    push
      (D.warning ~code:"N005"
         "%d duplicate column(s): proportional constraint and objective \
          coefficients (e.g. %s duplicates %s) — merging them shrinks the \
          model and removes dual degeneracy"
         !dups (vname j) (vname j0))
  | None -> ()

(* N006: predicted primal degeneracy at the root vertex — a high share of
   zero right-hand sides means many basic variables sit exactly at zero,
   and the dual simplex stalls on degenerate pivots. *)
let check_degeneracy (std : Lp.std) push =
  if std.Lp.nrows > 0 then begin
    let zero = ref 0 in
    for r = 0 to std.Lp.nrows - 1 do
      if std.Lp.rhs.(r) = 0. then incr zero
    done;
    let share = float_of_int !zero /. float_of_int std.Lp.nrows in
    if share > degeneracy_warn_share then
      push
        (D.warning ~code:"N006"
           "predicted root-vertex degeneracy: %d of %d rows (%.0f%%) have a \
            zero right-hand side — expect long runs of degenerate pivots"
           !zero std.Lp.nrows (100. *. share))
    else if share > degeneracy_info_share then
      push
        (D.info ~code:"N006"
           "%d of %d rows (%.0f%%) have a zero right-hand side — some \
            degeneracy at the root vertex is likely"
           !zero std.Lp.nrows (100. *. share))
  end

(* N007: basis condition estimate.  A cheap proxy: the ratio of the
   largest to the smallest column 2-norm bounds (from below) the
   condition number of any basis drawing on both columns. *)
let check_condition cols push =
  let mn = ref infinity and mx = ref 0. and n = ref 0 in
  Array.iter
    (fun entries ->
       if entries <> [] then begin
         let s =
           List.fold_left (fun acc (_, v) -> acc +. (v *. v)) 0. entries
         in
         let norm = sqrt s in
         if norm < !mn then mn := norm;
         if norm > !mx then mx := norm;
         incr n
       end)
    cols;
  if !n >= 2 then begin
    let est = !mx /. !mn in
    if est > cond_estimate_limit then
      push
        (D.warning ~code:"N007"
           "basis condition estimate %.3g (column 2-norms span %.3g .. %.3g, \
            limit %g) — refactorization drift likely; consider --scale"
           est !mn !mx cond_estimate_limit)
    else
      push
        (D.info ~code:"N007"
           "basis condition estimate %.3g (column 2-norms span %.3g .. %.3g)"
           est !mn !mx)
  end

(* N008: objective coefficient range. *)
let check_objective (std : Lp.std) push =
  let mn, mx, n = mag_range std.Lp.obj in
  if n >= 2 && mx /. mn > obj_ratio_limit then
    push
      (D.warning ~code:"N008"
         "objective coefficient magnitudes span %g .. %g (ratio %.3g > %g) — \
          optimality tolerances lose meaning across that range"
         mn mx (mx /. mn) obj_ratio_limit)

let lint ?var_name (std : Lp.std) =
  let vname =
    match var_name with Some f -> f | None -> Printf.sprintf "x%d"
  in
  let out = ref [] in
  let push d = out := d :: !out in
  let cols = columns std in
  check_row_scaling std push;
  check_col_scaling ~vname cols push;
  check_big_m std push;
  check_near_parallel std push;
  check_duplicate_columns ~vname std cols push;
  check_degeneracy std push;
  check_condition cols push;
  check_objective std push;
  List.rev !out

let runtime_feedback ~iterations ~refactorizations ~drift_rebuilds
    ~recovery_rebuilds ~max_eta_length =
  let out =
    [ D.info ~code:"N101"
        "root LP solved in %d iteration(s), %d refactorization(s), eta \
         high-water %d"
        iterations refactorizations max_eta_length ]
  in
  if drift_rebuilds > 0 || recovery_rebuilds > 0 then
    out
    @ [ D.warning ~code:"N102"
          "numerical stress observed at runtime: %d drift-triggered and %d \
           recovery refactorization(s) — the static N-code predictions are \
           confirmed; consider --scale"
          drift_rebuilds recovery_rebuilds ]
  else out

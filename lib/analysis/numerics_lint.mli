(** Numerical conditioning lint (N-codes) over {!Vpart_lp.Lp.std} models.

    Where {!Model_lint} checks {e logical} model health (infeasible bounds,
    empty rows, contradictions), this pass predicts {e numerical} solver
    behaviour from the coefficient data alone: ill-scaled rows and columns,
    big-M constants, near-parallel rows, duplicate columns, root-vertex
    degeneracy and a cheap basis-condition estimate.  Every finding points
    at a remediation (the [--scale] presolve pass, model reformulation),
    so the codes are load-bearing rather than advisory.

    Codes are catalogued in [docs/ANALYSIS.md]:

    - [N001] ill-scaled row (within-row coefficient magnitude ratio)
    - [N002] ill-scaled column (within-column coefficient magnitude ratio)
    - [N003] big-M coefficient (huge both absolutely and relative to the
      median magnitude)
    - [N004] near-parallel rows (angle below tolerance but not exactly
      proportional — a classic source of tiny pivots)
    - [N005] duplicate columns (proportional columns with proportional
      objective coefficients)
    - [N006] predicted root-vertex degeneracy (share of zero right-hand
      sides)
    - [N007] basis condition estimate (column-norm ratio proxy)
    - [N008] objective coefficient range
    - [N101]/[N102] runtime feedback from the simplex kernel
      ({!runtime_feedback}).

    Static findings are aggregated per code — one finding names the worst
    offender and the number of affected rows/columns — so reports stay
    readable on large models. *)

val row_ratio_limit : float
(** In-row magnitude ratio above which [N001] fires (default [1e6]). *)

val col_ratio_limit : float
(** In-column magnitude ratio above which [N002] fires (default [1e6]). *)

val big_m_limit : float
(** Absolute magnitude floor for [N003] (default [1e6]). *)

val big_m_rel : float
(** Relative (vs. median magnitude) floor for [N003] (default [1e4]). *)

val near_parallel_tol : float
(** Max relative deviation for [N004] near-parallelism (default [1e-6]). *)

val degeneracy_warn_share : float
(** Zero-rhs row share above which [N006] is a warning (default [0.5]);
    above {!degeneracy_info_share} it is an info. *)

val degeneracy_info_share : float

val cond_estimate_limit : float
(** Column-norm-ratio estimate above which [N007] is a warning
    (default [1e8]); the estimate is always reported as an info. *)

val obj_ratio_limit : float
(** Objective coefficient magnitude ratio above which [N008] fires
    (default [1e9]). *)

val lint : ?var_name:(int -> string) -> Lp.std -> Diagnostic.t list
(** Run every static numerical check on [std].  [var_name] renders
    column names in messages (default [xj]).  Never raises; models with
    non-finite data get their findings from {!Model_lint} ([M012]) — this
    pass simply skips non-finite entries. *)

val runtime_feedback :
  iterations:int ->
  refactorizations:int ->
  drift_rebuilds:int ->
  recovery_rebuilds:int ->
  max_eta_length:int ->
  Diagnostic.t list
(** Translate observed simplex kernel counters into diagnostics, closing
    the loop between static prediction and runtime behaviour: [N101]
    (info) summarizes the solve effort; [N102] (warning) fires when any
    drift-triggered or numerical-recovery refactorization occurred —
    direct evidence of the ill-conditioning the N-codes predict. *)

module D = Diagnostic

type block = { b_rows : int; b_cols : int; b_nnz : int }

type profile = {
  p_nrows : int;
  p_ncols : int;
  p_nnz : int;
  p_density : float;
  p_max_row_nnz : int;
  p_bandwidth : int;
  p_avg_bandwidth : float;
  p_blocks : block list;
  p_fill_in : int option;
  p_fill_capped : bool;
  p_orbits : int list;
}

let fill_in_caps = (20_000, 1_000_000)
let dense_density_limit = 0.25
let fill_ratio_limit = 10.0

(* Color refinement is skipped beyond this many nonzeros. *)
let orbit_nnz_cap = 500_000

let is_bad f = Float.is_nan f || Float.abs f = infinity

(* {1 Block decomposition: union-find over the row/column bipartite graph} *)

let uf_find parent i =
  let rec root i = if parent.(i) = i then i else root parent.(i) in
  let r = root i in
  (* path compression *)
  let rec compress i =
    if parent.(i) <> r then begin
      let next = parent.(i) in
      parent.(i) <- r;
      compress next
    end
  in
  compress i;
  r

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(ra) <- rb

let blocks (std : Lp.std) =
  let m = std.Lp.nrows and n = std.Lp.ncols in
  (* nodes: rows are 0..m-1, column j is m+j *)
  let parent = Array.init (m + n) (fun i -> i) in
  for r = 0 to m - 1 do
    Array.iteri
      (fun k j ->
         if (not (is_bad std.Lp.row_val.(r).(k)))
            && std.Lp.row_val.(r).(k) <> 0.
         then uf_union parent r (m + j))
      std.Lp.row_idx.(r)
  done;
  let tbl : (int, block ref) Hashtbl.t = Hashtbl.create 16 in
  let bump root f =
    match Hashtbl.find_opt tbl root with
    | Some b -> b := f !b
    | None -> Hashtbl.add tbl root (ref (f { b_rows = 0; b_cols = 0; b_nnz = 0 }))
  in
  for r = 0 to m - 1 do
    let nnz =
      Array.fold_left
        (fun acc v -> if (not (is_bad v)) && v <> 0. then acc + 1 else acc)
        0 std.Lp.row_val.(r)
    in
    if nnz > 0 then
      bump (uf_find parent r) (fun b ->
          { b with b_rows = b.b_rows + 1; b_nnz = b.b_nnz + nnz })
  done;
  for j = 0 to n - 1 do
    let root = uf_find parent (m + j) in
    if root <> m + j || Hashtbl.mem tbl root then
      (* column touched by at least one row, or root of its own block *)
      if Hashtbl.mem tbl root then
        bump root (fun b -> { b with b_cols = b.b_cols + 1 })
  done;
  Hashtbl.fold (fun _ b acc -> !b :: acc) tbl []
  |> List.sort (fun a b ->
         compare (b.b_rows + b.b_cols, b.b_nnz) (a.b_rows + a.b_cols, a.b_nnz))

(* {1 Markowitz-style symbolic fill-in}

   Right-looking symbolic LU on the nonzero pattern with approximate
   minimum-degree pivoting (min column count, then min row count).  Row
   patterns are bitsets over columns; a mask of still-active columns keeps
   eliminated columns out of unions and counts.  Fill-in is the number of
   pattern bits gained over the whole elimination. *)

let bit_index b =
  (* index of the single set bit in [b] *)
  let i = ref 0 and b = ref b in
  while !b <> 1 do
    b := !b lsr 1;
    incr i
  done;
  !i

let fill_estimate (std : Lp.std) ~nnz =
  let m = std.Lp.nrows and n = std.Lp.ncols in
  let max_rows, max_nnz = fill_in_caps in
  if m = 0 || n = 0 || m > max_rows || nnz > max_nnz then (None, false)
  else begin
    let width = (n + 62) / 63 in
    let bits = Array.init m (fun _ -> Array.make width 0) in
    let row_cnt = Array.make m 0 in
    let col_cnt = Array.make n 0 in
    let col_rows = Array.make n [] in
    let mask = Array.make width 0 in
    for j = 0 to n - 1 do
      mask.(j / 63) <- mask.(j / 63) lor (1 lsl (j mod 63))
    done;
    for r = 0 to m - 1 do
      Array.iteri
        (fun k j ->
           let v = std.Lp.row_val.(r).(k) in
           if (not (is_bad v)) && v <> 0. then begin
             let w = j / 63 and b = 1 lsl (j mod 63) in
             if bits.(r).(w) land b = 0 then begin
               bits.(r).(w) <- bits.(r).(w) lor b;
               row_cnt.(r) <- row_cnt.(r) + 1;
               col_cnt.(j) <- col_cnt.(j) + 1;
               col_rows.(j) <- r :: col_rows.(j)
             end
           end)
        std.Lp.row_idx.(r)
    done;
    let active_row = Array.make m true in
    let col_active j = mask.(j / 63) land (1 lsl (j mod 63)) <> 0 in
    let fill = ref 0 and work = ref 0 and capped = ref false in
    let work_cap = 30_000_000 in
    (try
       for _step = 1 to min m n do
         if !work > work_cap then begin
           capped := true;
           raise Exit
         end;
         let bj = ref (-1) and bc = ref max_int in
         for j = 0 to n - 1 do
           if col_active j && col_cnt.(j) > 0 && col_cnt.(j) < !bc then begin
             bc := col_cnt.(j);
             bj := j
           end
         done;
         if !bj < 0 then raise Exit;
         let j = !bj in
         let wj = j / 63 and mj = 1 lsl (j mod 63) in
         let rows =
           List.filter
             (fun r -> active_row.(r) && bits.(r).(wj) land mj <> 0)
             col_rows.(j)
         in
         mask.(wj) <- mask.(wj) land lnot mj;
         col_cnt.(j) <- 0;
         match rows with
         | [] -> ()
         | r0 :: _ ->
           let i =
             List.fold_left
               (fun acc r -> if row_cnt.(r) < row_cnt.(acc) then r else acc)
               r0 rows
           in
           List.iter (fun r -> row_cnt.(r) <- row_cnt.(r) - 1) rows;
           let bi = bits.(i) in
           for w = 0 to width - 1 do
             let x = ref (bi.(w) land mask.(w)) in
             while !x <> 0 do
               let b = !x land (- !x) in
               x := !x land (!x - 1);
               col_cnt.((w * 63) + bit_index b) <-
                 col_cnt.((w * 63) + bit_index b) - 1
             done
           done;
           active_row.(i) <- false;
           List.iter
             (fun r ->
                if r <> i then begin
                  let br = bits.(r) in
                  work := !work + width;
                  for w = 0 to width - 1 do
                    let gained = bi.(w) land lnot br.(w) land mask.(w) in
                    if gained <> 0 then begin
                      br.(w) <- br.(w) lor gained;
                      let x = ref gained in
                      while !x <> 0 do
                        let b = !x land (- !x) in
                        x := !x land (!x - 1);
                        let c = (w * 63) + bit_index b in
                        col_cnt.(c) <- col_cnt.(c) + 1;
                        col_rows.(c) <- r :: col_rows.(c);
                        row_cnt.(r) <- row_cnt.(r) + 1;
                        incr fill
                      done
                    end
                  done
                end)
             rows
       done
     with Exit -> ());
    (Some !fill, !capped)
  end

(* {1 Symmetry orbits: color refinement on the bipartite graph}

   Columns start colored by (bounds, integrality, objective); rows by
   (sense, rhs).  Each round recolors every node by its old color plus
   the sorted multiset of (coefficient, neighbour color) edge labels —
   one step of Weisfeiler–Leman refinement.  The stable coloring groups
   columns that no local invariant can tell apart: candidate orbits. *)

let orbits (std : Lp.std) ~nnz =
  let m = std.Lp.nrows and n = std.Lp.ncols in
  if nnz > orbit_nnz_cap || n = 0 then []
  else begin
    let var_adj : (int * float) list array = Array.make n [] in
    let row_adj : (int * float) list array = Array.make m [] in
    for r = 0 to m - 1 do
      Array.iteri
        (fun k j ->
           let v = std.Lp.row_val.(r).(k) in
           if (not (is_bad v)) && v <> 0. then begin
             var_adj.(j) <- (r, v) :: var_adj.(j);
             row_adj.(r) <- (j, v) :: row_adj.(r)
           end)
        std.Lp.row_idx.(r)
    done;
    let intern tbl next key =
      match Hashtbl.find_opt tbl key with
      | Some c -> c
      | None ->
        let c = !next in
        incr next;
        Hashtbl.add tbl key c;
        c
    in
    let next = ref 0 in
    let init_tbl = Hashtbl.create 64 in
    let vcol =
      Array.init n (fun j ->
          intern init_tbl next
            (Printf.sprintf "v%.12g;%.12g;%b;%.12g" std.Lp.lb.(j)
               std.Lp.ub.(j) std.Lp.integer.(j) std.Lp.obj.(j)))
    in
    let rcol =
      Array.init m (fun r ->
          let s =
            match std.Lp.row_cmp.(r) with
            | Lp.Le -> "<"
            | Lp.Ge -> ">"
            | Lp.Eq -> "="
          in
          intern init_tbl next (Printf.sprintf "r%s%.12g" s std.Lp.rhs.(r)))
    in
    let signature old_color neigh colors =
      let labels =
        List.map (fun (i, v) -> (v, colors.(i))) neigh
        |> List.sort compare
      in
      let buf = Buffer.create 64 in
      Buffer.add_string buf (string_of_int old_color);
      List.iter
        (fun (v, c) ->
           Buffer.add_string buf (Printf.sprintf ";%.12g:%d" v c))
        labels;
      Buffer.contents buf
    in
    let distinct = ref (-1) in
    (try
       for _round = 1 to 64 do
         let tbl = Hashtbl.create 256 in
         let next = ref 0 in
         let vcol' =
           Array.init n (fun j ->
               intern tbl next ("v" ^ signature vcol.(j) var_adj.(j) rcol))
         in
         let rcol' =
           Array.init m (fun r ->
               intern tbl next ("r" ^ signature rcol.(r) row_adj.(r) vcol))
         in
         Array.blit vcol' 0 vcol 0 n;
         Array.blit rcol' 0 rcol 0 m;
         if !next = !distinct then raise Exit;
         distinct := !next
       done
     with Exit -> ());
    (* group integer columns by stable color *)
    let groups : (int, int) Hashtbl.t = Hashtbl.create 64 in
    for j = 0 to n - 1 do
      if std.Lp.integer.(j) then
        Hashtbl.replace groups vcol.(j)
          (1 + Option.value ~default:0 (Hashtbl.find_opt groups vcol.(j)))
    done;
    Hashtbl.fold (fun _ sz acc -> if sz >= 2 then sz :: acc else acc) groups []
    |> List.sort (fun a b -> compare b a)
  end

(* {1 Profile assembly and diagnostics} *)

let profile (std : Lp.std) =
  let m = std.Lp.nrows and n = std.Lp.ncols in
  let nnz = ref 0 and max_row = ref 0 in
  let band = ref 0 and band_sum = ref 0 and band_rows = ref 0 in
  for r = 0 to m - 1 do
    let idx = std.Lp.row_idx.(r) and value = std.Lp.row_val.(r) in
    let cnt = ref 0 and lo = ref max_int and hi = ref (-1) in
    Array.iteri
      (fun k j ->
         if (not (is_bad value.(k))) && value.(k) <> 0. then begin
           incr cnt;
           if j < !lo then lo := j;
           if j > !hi then hi := j
         end)
      idx;
    nnz := !nnz + !cnt;
    if !cnt > !max_row then max_row := !cnt;
    if !cnt > 0 then begin
      let span = !hi - !lo in
      if span > !band then band := span;
      band_sum := !band_sum + span;
      incr band_rows
    end
  done;
  let density =
    if m = 0 || n = 0 then 0.
    else float_of_int !nnz /. (float_of_int m *. float_of_int n)
  in
  let fill, capped = fill_estimate std ~nnz:!nnz in
  {
    p_nrows = m;
    p_ncols = n;
    p_nnz = !nnz;
    p_density = density;
    p_max_row_nnz = !max_row;
    p_bandwidth = !band;
    p_avg_bandwidth =
      (if !band_rows = 0 then 0.
       else float_of_int !band_sum /. float_of_int !band_rows);
    p_blocks = blocks std;
    p_fill_in = fill;
    p_fill_capped = capped;
    p_orbits = orbits std ~nnz:!nnz;
  }

let lint_profile p =
  let out = ref [] in
  let push d = out := d :: !out in
  let cells = p.p_nrows * p.p_ncols in
  if p.p_density > dense_density_limit && cells >= 10_000 then
    push
      (D.warning ~code:"S001"
         "dense constraint matrix: %d x %d with %d nonzeros (density %.1f%%) \
          — sparse kernels cannot pay off at this density"
         p.p_nrows p.p_ncols p.p_nnz (100. *. p.p_density))
  else
    push
      (D.info ~code:"S001"
         "constraint matrix %d x %d: %d nonzeros, density %.2f%%, max row \
          nnz %d"
         p.p_nrows p.p_ncols p.p_nnz (100. *. p.p_density) p.p_max_row_nnz);
  if p.p_nnz > 0 then
    push
      (D.info ~code:"S002"
         "bandwidth: max column-index span %d, mean %.1f (matrix has %d \
          columns)"
         p.p_bandwidth p.p_avg_bandwidth p.p_ncols);
  (match p.p_blocks with
   | b :: (_ :: _ as rest) ->
     push
       (D.info ~code:"S003"
          "decomposes into %d independent blocks (largest %d rows x %d \
           cols) — the subproblems are separable"
          (1 + List.length rest) b.b_rows b.b_cols)
   | _ -> ());
  (match p.p_fill_in with
   | None ->
     let max_rows, max_nnz = fill_in_caps in
     push
       (D.info ~code:"S004"
          "fill-in estimate skipped: matrix exceeds the simulation caps \
           (%d rows / %d nonzeros)"
          max_rows max_nnz)
   | Some f ->
     let ratio = float_of_int f /. float_of_int (max 1 p.p_nnz) in
     let bound = if p.p_fill_capped then ">= " else "" in
     if ratio > fill_ratio_limit then
       push
         (D.warning ~code:"S004"
            "heavy fill-in predicted: %s%d new nonzeros (%.1fx the %d \
             originals) under Markowitz pivoting — a sparse LU needs a \
             better ordering to pay off"
            bound f ratio p.p_nnz)
     else
       push
         (D.info ~code:"S004"
            "Markowitz fill-in estimate: %s%d new nonzeros (%.2fx the %d \
             originals) — sparse LU viable"
            bound f ratio p.p_nnz));
  (match p.p_orbits with
   | [] -> ()
   | largest :: _ as orbs ->
     let covered = List.fold_left ( + ) 0 orbs in
     push
       (D.warning ~code:"S005"
          "candidate symmetry: %d orbit(s) of interchangeable integer \
           columns (largest %d, covering %d columns) — branch-and-bound \
           explores permuted duplicates; consider --break-symmetry"
          (List.length orbs) largest covered));
  List.rev !out

let lint std = lint_profile (profile std)

(** Structural analysis (S-codes) of {!Vpart_lp.Lp.std} constraint
    matrices: the groundwork for sparse-LU kernels and symmetry-aware
    branch-and-bound.

    {!profile} computes a structural summary once; {!lint_profile}
    translates it into diagnostics:

    - [S001] nonzero density (info; warning when the matrix is dense
      enough that sparse kernels cannot pay off)
    - [S002] bandwidth (max/mean column-index span per row)
    - [S003] block decomposition — connected components of the row/column
      bipartite graph, i.e. independent subproblems solvable separately
      (the coarse version of a Dulmage–Mendelsohn decomposition)
    - [S004] Markowitz-style symbolic fill-in estimate predicting
      sparse-LU viability (warning when heavy fill-in is predicted)
    - [S005] candidate symmetry orbits among integer columns, detected by
      color refinement on the bipartite variable/row graph with
      coefficient edge labels — interchangeable sites show up as orbits
      of size [#sites], explaining B&B branching blow-up; remediation is
      the [--break-symmetry] flag.

    Orbit detection is a {e necessary} condition (color refinement never
    splits a true orbit but may fail to split asymmetric columns), hence
    "candidate". *)

type block = { b_rows : int; b_cols : int; b_nnz : int }
(** One connected component of the row/column bipartite graph. *)

type profile = {
  p_nrows : int;
  p_ncols : int;
  p_nnz : int;              (** finite nonzero coefficients *)
  p_density : float;        (** nnz / (nrows * ncols) *)
  p_max_row_nnz : int;
  p_bandwidth : int;        (** max column-index span within a row *)
  p_avg_bandwidth : float;  (** mean span over nonempty rows *)
  p_blocks : block list;    (** independent subproblems, largest first *)
  p_fill_in : int option;   (** predicted new nonzeros in a sparse LU of
                                the full pattern; [None] when the matrix
                                exceeds {!fill_in_caps} *)
  p_fill_capped : bool;     (** the fill simulation hit its work cap;
                                [p_fill_in] is then a lower bound *)
  p_orbits : int list;      (** candidate symmetry orbit sizes ([>= 2])
                                among integer columns, largest first *)
}

val fill_in_caps : int * int
(** [(max_rows, max_nnz)] beyond which the fill-in simulation is skipped. *)

val dense_density_limit : float
(** Density above which [S001] becomes a warning (default [0.25]). *)

val fill_ratio_limit : float
(** Predicted fill-in / nnz ratio above which [S004] becomes a warning
    (default [10.0]). *)

val profile : Lp.std -> profile
(** Compute the structural profile.  Pure; cost is roughly
    O(nnz · log nnz) plus the (capped) fill-in simulation. *)

val lint_profile : profile -> Diagnostic.t list
(** Diagnostics derived from a profile (codes [S001]–[S005]). *)

val lint : Lp.std -> Diagnostic.t list
(** [lint std = lint_profile (profile std)]. *)

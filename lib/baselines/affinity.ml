open Vpart

type options = { num_sites : int; p : float; lambda : float }

let default_options = { num_sites = 2; p = 8.; lambda = 0.9 }

type result = {
  partitioning : Partitioning.t;
  cost : float;
  objective6 : float;
  elapsed : float;
}

let affinity_matrix (inst : Instance.t) ~table =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  let attrs = Array.of_list (Schema.attrs_of_table schema table) in
  let pos = Hashtbl.create 16 in
  Array.iteri (fun i a -> Hashtbl.replace pos a i) attrs;
  let n = Array.length attrs in
  let aff = Array.init n (fun _ -> Array.make n 0.) in
  for qid = 0 to Workload.num_queries wl - 1 do
    let q = Workload.query wl qid in
    match Workload.rows_for_table q table with
    | None -> ()
    | Some rows ->
      let here =
        List.filter_map (fun a -> Hashtbl.find_opt pos a) q.Workload.attrs
      in
      let weight = q.Workload.freq *. rows in
      List.iter
        (fun i ->
           List.iter
             (fun j ->
                if i <> j then aff.(i).(j) <- aff.(i).(j) +. weight)
             here)
        here
  done;
  aff

(* Greedy BEA-style ordering: repeatedly insert the unplaced index whose
   best insertion position adds the largest adjacent-bond contribution. *)
let bea_order aff =
  let n = Array.length aff in
  if n = 0 then []
  else begin
    let placed = ref [ 0 ] in
    let remaining = ref (List.init (n - 1) (fun i -> i + 1)) in
    while !remaining <> [] do
      (* for each candidate, find its best insertion gain *)
      let best = ref None in
      List.iter
        (fun cand ->
           (* try every insertion slot in the current order *)
           let order = Array.of_list !placed in
           let k = Array.length order in
           for slot = 0 to k do
             let left = if slot = 0 then None else Some order.(slot - 1) in
             let right = if slot = k then None else Some order.(slot) in
             let bond x = aff.(cand).(x) in
             let gain =
               (match left with Some l -> bond l | None -> 0.)
               +. (match right with Some r -> bond r | None -> 0.)
               -. (match (left, right) with
                   | Some l, Some r -> aff.(l).(r)
                   | _ -> 0.)
             in
             match !best with
             | Some (_, _, g) when g >= gain -> ()
             | _ -> best := Some (cand, slot, gain)
           done)
        !remaining;
      match !best with
      | None -> remaining := []
      | Some (cand, slot, _) ->
        let order = Array.of_list !placed in
        let before = Array.to_list (Array.sub order 0 slot) in
        let after =
          Array.to_list (Array.sub order slot (Array.length order - slot))
        in
        placed := before @ (cand :: after);
        remaining := List.filter (fun x -> x <> cand) !remaining
    done;
    !placed
  end

(* Split an ordering into at most [k] fragments by cutting the weakest
   adjacent bonds. *)
let fragments_of_order aff order k =
  let arr = Array.of_list order in
  let n = Array.length arr in
  if n = 0 then []
  else if k <= 1 || n = 1 then [ Array.to_list arr ]
  else begin
    let bonds =
      List.init (n - 1) (fun i -> (aff.(arr.(i)).(arr.(i + 1)), i))
    in
    let cuts =
      bonds
      |> List.sort compare
      |> (fun l -> List.filteri (fun i _ -> i < k - 1) l)
      |> List.map snd
      |> List.sort compare
    in
    let out = ref [] and current = ref [] in
    Array.iteri
      (fun i a ->
         current := a :: !current;
         if List.mem i cuts then begin
           out := List.rev !current :: !out;
           current := []
         end)
      arr;
    if !current <> [] then out := List.rev !current :: !out;
    List.rev !out
  end

let solve ?(options = default_options) (inst : Instance.t) =
  let start = Obs.Clock.now () in
  let schema = inst.Instance.schema in
  let stats = Stats.compute inst ~p:options.p in
  let nt = Instance.num_transactions inst in
  let na = Instance.num_attrs inst in
  let ns = options.num_sites in
  (* 1-3. fragments per table *)
  let fragments = ref [] in
  for table = 0 to Schema.num_tables schema - 1 do
    let attrs = Array.of_list (Schema.attrs_of_table schema table) in
    let aff = affinity_matrix inst ~table in
    let order = bea_order aff in
    List.iter
      (fun frag -> fragments := List.map (fun i -> attrs.(i)) frag :: !fragments)
      (fragments_of_order aff order ns)
  done;
  let fragments = List.rev !fragments in
  (* 4. greedy assignment.  Transactions: spread by descending read work
     round-robin (the classical algorithms have no transaction model; this
     mimics an administrator's manual spread).  Fragments: cheapest site
     given x.  Finally repair single-sitedness. *)
  let part = Partitioning.create ~num_sites:ns ~num_txns:nt ~num_attrs:na in
  let weights =
    Array.init nt (fun t ->
        Vec.sum (Vec.row stats.Stats.c3 t))
  in
  let by_weight =
    List.sort
      (fun a b -> compare (weights.(b), a) (weights.(a), b))
      (List.init nt Fun.id)
  in
  List.iteri
    (fun i t -> part.Partitioning.txn_site.(t) <- i mod ns)
    by_weight;
  List.iter
    (fun frag ->
       (* cost of hosting the fragment on site s *)
       let best = ref 0 and best_c = ref infinity in
       for s = 0 to ns - 1 do
         let c = ref 0. in
         List.iter
           (fun a ->
              c := !c +. stats.Stats.c2.(a);
              for t = 0 to nt - 1 do
                if part.Partitioning.txn_site.(t) = s then
                  c := !c +. stats.Stats.c1.{t, a}
              done)
           frag;
         if !c < !best_c then begin
           best := s;
           best_c := !c
         end
       done;
       List.iter (fun a -> part.Partitioning.placed.(a).(!best) <- true) frag)
    fragments;
  Partitioning.repair_single_sitedness stats part;
  (match Partitioning.validate stats part with
   | Ok () -> ()
   | Error e -> invalid_arg ("Affinity: internal invariant broken: " ^ e));
  {
    partitioning = part;
    cost = Cost_model.cost stats part;
    objective6 = Cost_model.objective stats ~lambda:options.lambda part;
    elapsed = Obs.Clock.now () -. start;
  }

(** Attribute-affinity baseline (Navathe et al. style).

    The paper's related-work section (§1.3) surveys a family of classical
    vertical-partitioning algorithms built on an {e attribute affinity
    matrix} clustered with the {e bond energy algorithm} (BEA) and split
    into fragments.  This module implements that family's canonical recipe,
    adapted to the paper's site model, as a comparison baseline:

    + per table, compute the affinity [aff(a,b) = Σ_q f_q·n_q·α_{a,q}·α_{b,q}]
      (how often two attributes are accessed together, weighted by traffic);
    + order each table's attributes with a BEA-style greedy insertion that
      maximizes the sum of adjacent bonds;
    + cut the ordering at its weakest bonds into at most [num_sites]
      fragments per table;
    + place each fragment on the site that minimizes its cost given a
      greedy transaction assignment, then repair single-sitedness by
      replication (the classical algorithms do not model transactions, so
      the assignment/repair step is the adaptation — documented in
      DESIGN.md).

    Unlike the paper's algorithms this never {e chooses} to replicate for
    profit and cannot co-optimize transactions and attributes, which is
    precisely the gap the paper's contribution targets; the bench's
    baseline comparison quantifies it. *)

type options = {
  num_sites : int;
  p : float;
  lambda : float;   (** only used for reporting objective (6) *)
}

val default_options : options
(** 2 sites, p = 8, λ = 0.9. *)

type result = {
  partitioning : Vpart.Partitioning.t;  (** validated *)
  cost : float;                         (** objective (4) *)
  objective6 : float;
  elapsed : float;
}

val solve : ?options:options -> Vpart.Instance.t -> result

val affinity_matrix : Vpart.Instance.t -> table:int -> float array array
(** The per-table affinity matrix (indexed by position within the table's
    attribute list), exposed for tests and inspection. *)

val bea_order : float array array -> int list
(** BEA-style greedy ordering of indices [0..n-1] maximizing adjacent
    bonds; exposed for tests. *)

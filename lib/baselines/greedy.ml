open Vpart

type options = {
  num_sites : int;
  p : float;
  lambda : float;
  use_grouping : bool;
  max_passes : int;
}

let default_options =
  { num_sites = 2; p = 8.; lambda = 0.9; use_grouping = true; max_passes = 1000 }

type result = {
  partitioning : Partitioning.t;
  cost : float;
  objective6 : float;
  moves : int;
  elapsed : float;
}

(* Mutable search state over the (grouped) instance.  Invariants:
   - colsum.(a).(s) = Σ_{t homed at s} c1(t,a)
   - forced.(a).(s) = #{t homed at s with φ(t,a)}
   - replicas.(a)   = #{s with placed} >= 1 *)
type state = {
  stats : Stats.t;
  ns : int;
  part : Partitioning.t;
  colsum : float array array;
  forced : int array array;
  replicas : int array;
}

let make_state (stats : Stats.t) ns =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let part = Partitioning.create ~num_sites:ns ~num_txns:nt ~num_attrs:na in
  (* collapsed start: everything on site 0, y optimized there *)
  Partitioning.repair_single_sitedness stats part;
  let colsum = Array.init na (fun _ -> Array.make ns 0.) in
  let forced = Array.init na (fun _ -> Array.make ns 0) in
  for t = 0 to nt - 1 do
    for a = 0 to na - 1 do
      colsum.(a).(0) <- colsum.(a).(0) +. stats.Stats.c1.{t, a};
      if stats.Stats.phi.(t).(a) then forced.(a).(0) <- forced.(a).(0) + 1
    done
  done;
  let replicas = Array.init na (fun a -> Partitioning.replicas part a) in
  { stats; ns; part; colsum; forced; replicas }

let placed st a s = st.part.Partitioning.placed.(a).(s)

let replica_delta st a s = st.stats.Stats.c2.(a) +. st.colsum.(a).(s)

(* Moving transaction t to site s': cost delta including forced replicas. *)
let move_delta st t s' =
  let s = st.part.Partitioning.txn_site.(t) in
  if s = s' then infinity
  else begin
    let acc = ref 0. in
    for a = 0 to st.stats.Stats.num_attrs - 1 do
      let c1 = st.stats.Stats.c1.{t, a} in
      let newly_forced = st.stats.Stats.phi.(t).(a) && not (placed st a s') in
      if newly_forced then acc := !acc +. replica_delta st a s';
      let y_after_s' = placed st a s' || newly_forced in
      if y_after_s' then acc := !acc +. c1;
      if placed st a s then acc := !acc -. c1
    done;
    !acc
  end

let apply_move st t s' =
  let s = st.part.Partitioning.txn_site.(t) in
  for a = 0 to st.stats.Stats.num_attrs - 1 do
    let c1 = st.stats.Stats.c1.{t, a} in
    st.colsum.(a).(s) <- st.colsum.(a).(s) -. c1;
    st.colsum.(a).(s') <- st.colsum.(a).(s') +. c1;
    if st.stats.Stats.phi.(t).(a) then begin
      st.forced.(a).(s) <- st.forced.(a).(s) - 1;
      st.forced.(a).(s') <- st.forced.(a).(s') + 1;
      if not (placed st a s') then begin
        st.part.Partitioning.placed.(a).(s') <- true;
        st.replicas.(a) <- st.replicas.(a) + 1
      end
    end
  done;
  st.part.Partitioning.txn_site.(t) <- s'

let apply_add st a s =
  st.part.Partitioning.placed.(a).(s) <- true;
  st.replicas.(a) <- st.replicas.(a) + 1

let apply_drop st a s =
  st.part.Partitioning.placed.(a).(s) <- false;
  st.replicas.(a) <- st.replicas.(a) - 1

type move = Move_txn of int * int | Add of int * int | Drop of int * int

let best_move st =
  let nt = st.stats.Stats.num_txns and na = st.stats.Stats.num_attrs in
  let best = ref None in
  let consider delta move =
    match !best with
    | Some (d, _) when d <= delta -> ()
    | _ -> best := Some (delta, move)
  in
  for t = 0 to nt - 1 do
    for s' = 0 to st.ns - 1 do
      if s' <> st.part.Partitioning.txn_site.(t) then
        consider (move_delta st t s') (Move_txn (t, s'))
    done
  done;
  for a = 0 to na - 1 do
    for s = 0 to st.ns - 1 do
      if placed st a s then begin
        if st.forced.(a).(s) = 0 && st.replicas.(a) > 1 then
          consider (-.replica_delta st a s) (Drop (a, s))
      end
      else consider (replica_delta st a s) (Add (a, s))
    done
  done;
  !best

let solve ?(options = default_options) (inst : Instance.t) =
  let start = Obs.Clock.now () in
  let grouping =
    if options.use_grouping then Grouping.compute inst else Grouping.identity inst
  in
  let reduced = grouping.Grouping.reduced in
  let stats = Stats.compute reduced ~p:options.p in
  let full_stats = Stats.compute inst ~p:options.p in
  let st = make_state stats options.num_sites in
  let moves = ref 0 and passes = ref 0 in
  let continue_ = ref true in
  while !continue_ && !passes < options.max_passes do
    incr passes;
    match best_move st with
    | Some (delta, move) when delta < -1e-9 ->
      incr moves;
      (match move with
       | Move_txn (t, s') -> apply_move st t s'
       | Add (a, s) -> apply_add st a s
       | Drop (a, s) -> apply_drop st a s)
    | _ -> continue_ := false
  done;
  (match Partitioning.validate stats st.part with
   | Ok () -> ()
   | Error e -> invalid_arg ("Greedy: internal invariant broken: " ^ e));
  let partitioning = Grouping.expand grouping st.part in
  {
    partitioning;
    cost = Cost_model.cost full_stats partitioning;
    objective6 = Cost_model.objective full_stats ~lambda:options.lambda partitioning;
    moves = !moves;
    elapsed = Obs.Clock.now () -. start;
  }

(** Greedy best-improvement local search baseline.

    A natural point of comparison for the paper's simulated-annealing
    heuristic: start from the best collapsed layout (all transactions on
    one site), then repeatedly apply the single most cost-improving move
    until none exists.  Moves:

    - relocate one transaction (together with the replicas single-sitedness
      then forces);
    - add one attribute replica;
    - drop one attribute replica (if neither forced nor the last copy).

    The search minimizes objective (4) — pure cost, no load-balance term —
    with exact incremental deltas, so each pass is
    O((|T|·|S| + |A|·|S|) · |A|).  Being monotone it terminates at a local
    optimum; the annealer's whole point is escaping exactly these optima,
    which the bench's baseline comparison quantifies. *)

type options = {
  num_sites : int;
  p : float;
  lambda : float;     (** reporting only; the search minimizes cost (4) *)
  use_grouping : bool;
  max_passes : int;   (** safety cap on improvement sweeps *)
}

val default_options : options
(** 2 sites, p = 8, λ = 0.9, grouping on, 1000 passes. *)

type result = {
  partitioning : Vpart.Partitioning.t;  (** validated, original space *)
  cost : float;                         (** objective (4) *)
  objective6 : float;
  moves : int;                          (** improving moves applied *)
  elapsed : float;
}

val solve : ?options:options -> Vpart.Instance.t -> result

module Diagnostic = Vpart_analysis.Diagnostic

let rel tol reference = tol *. (1. +. Float.abs reference)

type options = { tol : float; cone_tol : float }

let default_options = { tol = 1e-5; cone_tol = 1e-7 }

let string_of_cmp = function Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "="

(* ------------------------------------------------------------------ *)
(* Primal certificates                                                *)
(* ------------------------------------------------------------------ *)

let certify_point ?(tol = 1e-5) ?var_name (std : Lp.std) x =
  List.map
    (fun v ->
       let msg =
         Format.asprintf "%a (tolerance %g)" (Lp.pp_violation ?var_name ()) v
           tol
       in
       let code =
         match v with
         | Lp.Wrong_length _ | Lp.Non_finite _ -> "C001"
         | Lp.Bound_violation _ -> "C002"
         | Lp.Not_integral _ -> "C003"
         | Lp.Row_violation _ -> "C004"
       in
       Diagnostic.error ~code "%s" msg)
    (Lp.feasibility_violations ~tol std x)

(* ------------------------------------------------------------------ *)
(* Dual certificates                                                  *)
(* ------------------------------------------------------------------ *)

let clamp_duals ?(tol = 1e-7) (std : Lp.std) y =
  let diags = ref [] in
  let yc = Array.copy y in
  Array.iteri
    (fun r cmp ->
       let v = y.(r) in
       let out_of_cone =
         match cmp with
         | Lp.Le -> v > 0.
         | Lp.Ge -> v < 0.
         | Lp.Eq -> false
       in
       if out_of_cone then begin
         if Float.abs v > tol then
           diags :=
             Diagnostic.warning ~code:"C101"
               "dual multiplier y[%d] = %g lies outside the dual cone of a \
                '%s' row (residual %g exceeds cone tolerance %g); clamped to \
                0 for the bound"
               r v (string_of_cmp cmp) (Float.abs v) tol
             :: !diags;
         yc.(r) <- 0.
       end)
    std.Lp.row_cmp;
  (yc, List.rev !diags)

let reduced_costs (std : Lp.std) y =
  let d = Array.copy std.Lp.obj in
  for r = 0 to std.Lp.nrows - 1 do
    let yr = y.(r) in
    if yr <> 0. then
      Array.iteri
        (fun k j -> d.(j) <- d.(j) -. (yr *. std.Lp.row_val.(r).(k)))
        std.Lp.row_idx.(r)
  done;
  d

let lagrangian_bound (std : Lp.std) y =
  let d = reduced_costs std y in
  let bound = ref std.Lp.obj_const in
  Array.iteri (fun r yr -> bound := !bound +. (yr *. std.Lp.rhs.(r))) y;
  Array.iteri
    (fun j dj ->
       let noise = 1e-7 *. (1. +. Float.abs std.Lp.obj.(j)) in
       if dj > 0. then begin
         (* contribution d_j·l_j; treat numerical noise as zero against an
            infinite bound rather than collapsing the whole bound to -inf *)
         if Float.is_finite std.Lp.lb.(j) then
           bound := !bound +. (dj *. std.Lp.lb.(j))
         else if dj > noise then bound := neg_infinity
       end
       else if dj < 0. then begin
         if Float.is_finite std.Lp.ub.(j) then
           bound := !bound +. (dj *. std.Lp.ub.(j))
         else if dj < -.noise then bound := neg_infinity
       end)
    d;
  !bound

let farkas_proves_infeasible ?(tol = 1e-7) (std : Lp.std) y =
  Array.length y = std.Lp.nrows
  && Array.for_all Float.is_finite y
  && Array.exists (fun v -> v <> 0.) y
  &&
  (* t = Aᵀy over the structural columns *)
  let t = Array.make std.Lp.ncols 0. in
  for r = 0 to std.Lp.nrows - 1 do
    let yr = y.(r) in
    if yr <> 0. then
      Array.iteri
        (fun k j -> t.(j) <- t.(j) +. (yr *. std.Lp.row_val.(r).(k)))
        std.Lp.row_idx.(r)
  done;
  (* Range of yᵀ(Ax + s) over the true variable boxes and slack cones:
     the simplex encodes [row cmp rhs] as [row + s = rhs] with slack
     s >= 0 for <=, s <= 0 for >=, s = 0 for =. *)
  let fmax = ref 0. and fmin = ref 0. in
  let yrhs = ref 0. and scale = ref 1. in
  Array.iteri
    (fun j tj ->
       if tj > 0. then begin
         fmax := !fmax +. (tj *. std.Lp.ub.(j));
         fmin := !fmin +. (tj *. std.Lp.lb.(j));
         scale := !scale +. Float.abs tj
       end
       else if tj < 0. then begin
         fmax := !fmax +. (tj *. std.Lp.lb.(j));
         fmin := !fmin +. (tj *. std.Lp.ub.(j));
         scale := !scale +. Float.abs tj
       end)
    t;
  Array.iteri
    (fun r yr ->
       yrhs := !yrhs +. (yr *. std.Lp.rhs.(r));
       scale := !scale +. Float.abs (yr *. std.Lp.rhs.(r));
       match std.Lp.row_cmp.(r) with
       | Lp.Le ->
         if yr > 0. then fmax := infinity
         else if yr < 0. then fmin := neg_infinity
       | Lp.Ge ->
         if yr > 0. then fmin := neg_infinity
         else if yr < 0. then fmax := infinity
       | Lp.Eq -> ())
    y;
  let eps = tol *. !scale in
  !yrhs > !fmax +. eps || !yrhs < !fmin -. eps

(* ------------------------------------------------------------------ *)
(* Whole-solve certification                                          *)
(* ------------------------------------------------------------------ *)

let certify_mip ?(options = default_options) ?(gap = Mip.default_limits.Mip.gap)
    ?var_name model outcome (stats : Mip.stats) =
  Obs.with_span "certify.mip" @@ fun () ->
  let tol = options.tol in
  let std = Lp.standardize model in
  let audit = stats.Mip.audit in
  let diags = ref [] in
  let add d = diags := d :: !diags in

  (* Primal side: the incumbent and its claimed objective. *)
  let primal_checks (sol : Mip.solution) =
    Obs.timed "certify.primal.seconds" @@ fun () ->
    List.iter add (certify_point ~tol ?var_name std sol.Mip.x);
    let obj_min = Lp.restore_objective std sol.Mip.obj in
    if Array.length sol.Mip.x = std.Lp.ncols
       && Array.for_all Float.is_finite sol.Mip.x
    then begin
      let fresh = Lp.eval_objective std sol.Mip.x in
      if Float.abs (fresh -. obj_min) > rel tol obj_min then
        add
          (Diagnostic.error ~code:"C005"
             "claimed objective %g differs from independent re-evaluation %g \
              (residual %g exceeds tolerance %g)"
             sol.Mip.obj
             (Lp.restore_objective std fresh)
             (Float.abs (fresh -. obj_min))
             (rel tol obj_min))
    end;
    obj_min
  in

  (* Dual side: the root LP certificate, checked against the original
     matrix.  [primal_obj_min] is the certified incumbent value (if any)
     for the weak-duality check. *)
  let dual_checks ~primal_obj_min =
    Obs.timed "certify.dual.seconds" @@ fun () ->
    match audit.Mip.root_lp with
    | None ->
      add
        (Diagnostic.info ~code:"C111"
           "no root LP certificate returned: dual-side claims cannot be \
            independently checked")
    | Some cert ->
      if
        Array.length cert.Mip.lp_y <> std.Lp.nrows
        || not (Array.for_all Float.is_finite cert.Mip.lp_y)
      then
        add
          (Diagnostic.error ~code:"C103"
             "root LP dual vector malformed (length %d for %d rows, or \
              non-finite entries): bound claims unverifiable"
             (Array.length cert.Mip.lp_y) std.Lp.nrows)
      else begin
        let yc, cone = clamp_duals ~tol:options.cone_tol std cert.Mip.lp_y in
        List.iter add cone;
        (* C102: the solver's reported reduced costs vs c - Aᵀy. *)
        let d = reduced_costs std cert.Mip.lp_y in
        if Array.length cert.Mip.lp_reduced <> std.Lp.ncols then
          add
            (Diagnostic.warning ~code:"C102"
               "reported reduced-cost vector has length %d, expected %d"
               (Array.length cert.Mip.lp_reduced)
               std.Lp.ncols)
        else begin
          let worst = ref 0. and worst_j = ref (-1) in
          Array.iteri
            (fun j dj ->
               let e =
                 Float.abs (dj -. cert.Mip.lp_reduced.(j))
                 /. (1. +. Float.abs dj)
               in
               if e > !worst then begin
                 worst := e;
                 worst_j := j
               end)
            d;
          if !worst > tol then
            add
              (Diagnostic.warning ~code:"C102"
                 "reported reduced cost of column %d disagrees with c - A'y \
                  (relative error %g exceeds tolerance %g)"
                 !worst_j !worst tol)
        end;
        let lb = lagrangian_bound std yc in
        (* C103: weak duality against the certified incumbent. *)
        (match primal_obj_min with
         | Some obj when lb > obj +. rel tol obj ->
           add
             (Diagnostic.error ~code:"C103"
                "weak duality violated: certified dual bound %g exceeds \
                 certified incumbent objective %g (residual %g exceeds \
                 tolerance %g)"
                lb obj (lb -. obj) (rel tol obj))
         | _ -> ());
        (* C104: the claimed root LP objective vs the recomputed bound. *)
        if audit.Mip.presolve_rows_removed = 0 then begin
          if Float.abs (lb -. cert.Mip.lp_obj) > rel tol cert.Mip.lp_obj then
            add
              (Diagnostic.warning ~code:"C104"
                 "root LP certificate inconsistent: recomputed Lagrangian \
                  bound %g vs claimed LP objective %g (residual %g exceeds \
                  tolerance %g)"
                 lb cert.Mip.lp_obj
                 (Float.abs (lb -. cert.Mip.lp_obj))
                 (rel tol cert.Mip.lp_obj))
        end
        else begin
          if lb > cert.Mip.lp_obj +. rel tol cert.Mip.lp_obj then
            add
              (Diagnostic.warning ~code:"C104"
                 "root LP certificate inconsistent: back-mapped Lagrangian \
                  bound %g exceeds claimed LP objective %g (residual %g \
                  exceeds tolerance %g)"
                 lb cert.Mip.lp_obj
                 (lb -. cert.Mip.lp_obj)
                 (rel tol cert.Mip.lp_obj));
          add
            (Diagnostic.info ~code:"C111"
               "presolve removed %d rows; the back-mapped dual certificate \
                may be weaker than the solver's internal bound"
               audit.Mip.presolve_rows_removed)
        end;
        (* C109: complementary slackness at the root optimum. *)
        if
          Array.length cert.Mip.lp_x = std.Lp.ncols
          && Array.for_all Float.is_finite cert.Mip.lp_x
        then begin
          let violations = ref 0 and worst = ref 0. and worst_j = ref (-1) in
          let worst_tol = ref 0. in
          Array.iteri
            (fun j dj ->
               let v = cert.Mip.lp_x.(j) in
               let eps = 1e-6 *. (1. +. Float.abs v) in
               let cs_tol = rel tol std.Lp.obj.(j) in
               let bad =
                 (* A fixed column (lb = ub, e.g. symmetry pinning) is at
                    both bounds at once: either reduced-cost sign is
                    complementary. *)
                 if std.Lp.ub.(j) -. std.Lp.lb.(j) <= 2. *. eps then false
                 else if v > std.Lp.lb.(j) +. eps && v < std.Lp.ub.(j) -. eps
                 then Float.abs dj > cs_tol
                 else if v <= std.Lp.lb.(j) +. eps then dj < -.cs_tol
                 else dj > cs_tol
               in
               if bad then begin
                 incr violations;
                 if Float.abs dj > !worst then begin
                   worst := Float.abs dj;
                   worst_j := j;
                   worst_tol := cs_tol
                 end
               end)
            d;
          if !violations > 0 then
            add
              (Diagnostic.warning ~code:"C109"
                 "complementary slackness fails at the root LP optimum for \
                  %d column(s) (worst: column %d, reduced cost %g exceeds \
                  tolerance %g)"
                 !violations !worst_j !worst !worst_tol)
        end
      end
  in

  (* Bound side: audited proven bound, its support, the outcome's claimed
     bound and the reported gap must all agree. *)
  let bound_checks ~claimed_bound_min ~obj_min =
    Obs.timed "certify.bounds.seconds" @@ fun () ->
    (match audit.Mip.proven_bound with
     | Some pb ->
       if Array.length audit.Mip.bound_support = 0 then
         add
           (Diagnostic.warning ~code:"C110"
              "proven bound %g has no supporting node bounds in the audit" pb)
       else begin
         let m = Array.fold_left Float.min infinity audit.Mip.bound_support in
         if Float.abs (pb -. m) > rel tol m then
           add
             (Diagnostic.error ~code:"C110"
                "claimed proven bound %g is not the minimum %g of its %d \
                 supporting node bounds (residual %g exceeds tolerance %g)"
                pb m
                (Array.length audit.Mip.bound_support)
                (Float.abs (pb -. m))
                (rel tol m))
       end;
       (match claimed_bound_min with
        | Some cb when Float.is_finite cb && Float.abs (cb -. pb) > rel tol pb
          ->
          add
            (Diagnostic.error ~code:"C105"
               "outcome bound %g disagrees with audited proven bound %g" cb pb)
        | _ -> ())
     | None ->
       (match claimed_bound_min with
        | Some cb when Float.is_finite cb ->
          add
            (Diagnostic.warning ~code:"C105"
               "outcome claims bound %g but the audit records no proven bound"
               cb)
        | _ -> ()));
    match obj_min with
    | Some o ->
      let b =
        match audit.Mip.proven_bound with
        | Some pb -> Some pb
        | None -> claimed_bound_min
      in
      (match b with
       | Some b when Float.is_finite b ->
         let g = Float.max 0. ((o -. b) /. Float.max 1. (Float.abs o)) in
         if
           Float.is_finite stats.Mip.gap_achieved
           && Float.abs (stats.Mip.gap_achieved -. g) > tol
         then
           add
             (Diagnostic.error ~code:"C105"
                "reported gap %g disagrees with gap %g recomputed from \
                 objective %g and bound %g (residual %g exceeds tolerance %g)"
                stats.Mip.gap_achieved g o b
                (Float.abs (stats.Mip.gap_achieved -. g))
                tol)
       | _ ->
         if Float.is_finite stats.Mip.gap_achieved then
           add
             (Diagnostic.error ~code:"C105"
                "finite gap %g reported without any finite proven bound"
                stats.Mip.gap_achieved))
    | None ->
      if Float.is_finite stats.Mip.gap_achieved then
        add
          (Diagnostic.error ~code:"C105"
             "finite gap %g reported without an incumbent"
             stats.Mip.gap_achieved)
  in

  if audit.Mip.numerical_prunes > 0 then
    add
      (Diagnostic.info ~code:"C111"
         "%d subtree(s) abandoned on numerical trouble; optimality proofs \
          degrade to the root bound"
         audit.Mip.numerical_prunes);

  (match outcome with
   | Mip.Optimal sol ->
     let obj_min = primal_checks sol in
     dual_checks ~primal_obj_min:(Some obj_min);
     bound_checks ~claimed_bound_min:None ~obj_min:(Some obj_min);
     (match audit.Mip.proven_bound with
      | Some pb ->
        let g = Float.max 0. ((obj_min -. pb) /. Float.max 1. (Float.abs obj_min)) in
        if g > gap +. tol then begin
          let f =
            if audit.Mip.numerical_prunes > 0 then
              Diagnostic.warning ~code:"C106"
            else Diagnostic.error ~code:"C106"
          in
          add
            (f
               "optimality claimed but the certified gap %g exceeds the gap \
                tolerance %g (residual %g over the slack tolerance %g)"
               g gap (g -. gap) tol)
        end
      | None ->
        add
          (Diagnostic.warning ~code:"C106"
             "optimality claimed but the audit records no proven bound"))
   | Mip.Feasible (sol, bound) ->
     let obj_min = primal_checks sol in
     let b_min = Lp.restore_objective std bound in
     if Float.is_finite b_min && b_min > obj_min +. rel tol obj_min then
       add
         (Diagnostic.error ~code:"C105"
            "claimed lower bound %g exceeds the incumbent objective %g" b_min
            obj_min);
     dual_checks ~primal_obj_min:(Some obj_min);
     bound_checks ~claimed_bound_min:(Some b_min) ~obj_min:(Some obj_min)
   | Mip.No_incumbent b ->
     dual_checks ~primal_obj_min:None;
     bound_checks
       ~claimed_bound_min:(Option.map (Lp.restore_objective std) b)
       ~obj_min:None
   | Mip.Infeasible ->
     (match audit.Mip.farkas with
      | Some ray ->
        if not (farkas_proves_infeasible ~tol std ray) then
          add
            (Diagnostic.error ~code:"C107"
               "returned Farkas multiplier does not prove infeasibility of \
                the original model")
      | None ->
        add
          (Diagnostic.info ~code:"C108"
             "infeasibility claim carries no single-multiplier certificate \
              (presolve reduction chain or exhaustive search)"))
   | Mip.Unbounded ->
     add
       (Diagnostic.info ~code:"C111"
          "unboundedness claims are not independently certified")
   | Mip.Too_large { rows; limit } ->
     if rows <> std.Lp.nrows then
       add
         (Diagnostic.error ~code:"C105"
            "refusal claims %d rows but the model has %d" rows std.Lp.nrows);
     if rows <= limit then
       add
         (Diagnostic.error ~code:"C105"
            "refusal claims %d rows against a limit of %d, which does not \
             exceed it"
            rows limit));

  Diagnostic.sort (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* Exact rational re-verification                                     *)
(* ------------------------------------------------------------------ *)

module Exact = struct
  module Q = Vpart_rational.Rational

  type verdict =
    | Exactly_valid
    | Masked_violation
    | Exactly_refuted
    | Unchecked

  type check = {
    claim : string;
    code : string;
    float_ok : bool;
    verdict : verdict;
    residual : Q.t;
    threshold : float;
  }

  type report = { checks : check list; findings : Diagnostic.t list }

  let empty = { checks = []; findings = [] }

  let merge a b =
    {
      checks = a.checks @ b.checks;
      findings = Diagnostic.sort (a.findings @ b.findings);
    }

  let counts r =
    List.fold_left
      (fun (v, m, rf, u) c ->
         match c.verdict with
         | Exactly_valid -> (v + 1, m, rf, u)
         | Masked_violation -> (v, m + 1, rf, u)
         | Exactly_refuted -> (v, m, rf + 1, u)
         | Unchecked -> (v, m, rf, u + 1))
      (0, 0, 0, 0) r.checks

  let worst_masked r =
    List.fold_left
      (fun acc c ->
         if c.verdict <> Masked_violation then acc
         else
           match acc with
           | Some best when Q.compare best.residual c.residual >= 0 -> acc
           | _ -> Some c)
      None r.checks

  let classify ~threshold residual =
    if Q.sign residual <= 0 then Exactly_valid
    else if Q.compare residual (Q.of_float threshold) <= 0 then
      Masked_violation
    else Exactly_refuted

  let make_check ~claim ~code ~float_ok ~threshold residual =
    {
      claim;
      code;
      float_ok;
      verdict = classify ~threshold residual;
      residual = Q.max Q.zero residual;
      threshold;
    }

  let unchecked ~claim ~code ~float_ok =
    { claim; code; float_ok; verdict = Unchecked; residual = Q.zero;
      threshold = 0. }

  let verdict_label = function
    | Exactly_valid -> "VALID"
    | Masked_violation -> "MASKED"
    | Exactly_refuted -> "REFUTED"
    | Unchecked -> "unchecked"

  let pp_check ppf c =
    Format.fprintf ppf "%-28s float %-4s  exact %-9s" c.claim
      (if c.float_ok then "PASS" else "FAIL")
      (verdict_label c.verdict);
    match c.verdict with
    | Masked_violation ->
      Format.fprintf ppf "  residual %s <= tolerance %g"
        (Q.to_short_string c.residual) c.threshold
    | Exactly_refuted ->
      Format.fprintf ppf "  residual %s > tolerance %g"
        (Q.to_short_string c.residual) c.threshold
    | Exactly_valid | Unchecked -> ()

  let pp_report ppf r =
    let v, m, rf, u = counts r in
    Format.fprintf ppf
      "@[<v>exact audit: %d check(s): %d exactly valid, %d \
       tolerance-masked, %d exactly refuted, %d unchecked"
      (List.length r.checks) v m rf u;
    List.iter (fun c -> Format.fprintf ppf "@,  %a" pp_check c) r.checks;
    (match worst_masked r with
     | Some c ->
       Format.fprintf ppf "@,  worst masked residual: %s (~%g) on %s"
         (Q.to_string c.residual)
         (Q.to_float c.residual) c.claim
     | None -> ());
    Format.fprintf ppf "@]"

  (* Extended rationals for the +/-infinity variable bounds. *)
  type ext = Neg_inf | Fin of Q.t | Pos_inf

  let ext_add_term acc term =
    match (acc, term) with
    | Neg_inf, _ | _, Neg_inf -> Neg_inf
    | Pos_inf, _ | _, Pos_inf -> Pos_inf
    | Fin a, Fin b -> Fin (Q.add a b)

  (* Exact c - A'y from the sparse rows. *)
  let exact_reduced_costs (std : Lp.std) yq =
    let d = Array.map Q.of_float std.Lp.obj in
    for r = 0 to std.Lp.nrows - 1 do
      let yr = yq.(r) in
      if not (Q.is_zero yr) then
        Array.iteri
          (fun k j ->
             d.(j) <-
               Q.sub d.(j) (Q.mul yr (Q.of_float std.Lp.row_val.(r).(k))))
          std.Lp.row_idx.(r)
    done;
    d

  (* ---------------------------------------------------------------- *)
  (* Primal feasibility (E001/E002)                                   *)
  (* ---------------------------------------------------------------- *)

  let point_residuals ?var_name (std : Lp.std) x =
    let name j =
      match var_name with Some f -> f j | None -> Printf.sprintf "x%d" j
    in
    let items = ref [] in
    let push label residual =
      if Q.sign residual > 0 then items := (label, residual) :: !items
    in
    let xq = Array.map Q.of_float x in
    for j = 0 to std.Lp.ncols - 1 do
      if Float.is_finite std.Lp.lb.(j) then
        push
          (Printf.sprintf "%s below lower bound %g" (name j) std.Lp.lb.(j))
          (Q.sub (Q.of_float std.Lp.lb.(j)) xq.(j));
      if Float.is_finite std.Lp.ub.(j) then
        push
          (Printf.sprintf "%s above upper bound %g" (name j) std.Lp.ub.(j))
          (Q.sub xq.(j) (Q.of_float std.Lp.ub.(j)));
      if std.Lp.integer.(j) then
        push
          (Printf.sprintf "%s non-integral" (name j))
          (Q.abs (Q.sub xq.(j) (Q.of_float (Float.round x.(j)))))
    done;
    for r = 0 to std.Lp.nrows - 1 do
      let act = ref Q.zero in
      Array.iteri
        (fun k j ->
           act :=
             Q.add !act (Q.mul (Q.of_float std.Lp.row_val.(r).(k)) xq.(j)))
        std.Lp.row_idx.(r);
      let rhs = Q.of_float std.Lp.rhs.(r) in
      match std.Lp.row_cmp.(r) with
      | Lp.Le ->
        push (Printf.sprintf "row %d activity above rhs %g" r std.Lp.rhs.(r))
          (Q.sub !act rhs)
      | Lp.Ge ->
        push (Printf.sprintf "row %d activity below rhs %g" r std.Lp.rhs.(r))
          (Q.sub rhs !act)
      | Lp.Eq ->
        push (Printf.sprintf "row %d activity off rhs %g" r std.Lp.rhs.(r))
          (Q.abs (Q.sub !act rhs))
    done;
    (xq, List.rev !items)

  let certify_point ?(options = default_options) ?var_name (std : Lp.std) x =
    let tol = options.tol in
    let float_ok = Lp.feasibility_violations ~tol std x = [] in
    if
      Array.length x <> std.Lp.ncols
      || not (Array.for_all Float.is_finite x)
    then
      {
        checks =
          [ { claim = "primal feasibility"; code = "E001"; float_ok;
              verdict = Exactly_refuted; residual = Q.zero; threshold = tol } ];
        findings =
          [ Diagnostic.error ~code:"E001"
              "primal point malformed (length %d for %d columns, or \
               non-finite coordinates): feasibility claim exactly refuted"
              (Array.length x) std.Lp.ncols ];
      }
    else begin
      let _, items = point_residuals ?var_name std x in
      let tq = Q.of_float tol in
      let refuted = List.filter (fun (_, r) -> Q.compare r tq > 0) items in
      let masked = List.filter (fun (_, r) -> Q.compare r tq <= 0) items in
      let findings =
        List.map
          (fun (label, r) ->
             Diagnostic.error ~code:"E001"
               "exactly refuted primal claim: %s by %s (exceeds the float \
                tolerance %g%s)"
               label (Q.to_short_string r) tol
               (if float_ok then
                  "; float certification passes — the violation is \
                   invisible at machine precision"
                else ""))
          refuted
        @
        match masked with
        | [] -> []
        | (l0, r0) :: _ ->
          let worst =
            List.fold_left
              (fun (wl, wr) (l, r) ->
                 if Q.compare r wr > 0 then (l, r) else (wl, wr))
              (l0, r0) masked
          in
          [ Diagnostic.warning ~code:"E002"
              "%d tolerance-masked primal residual(s): worst is %s by the \
               exact amount %s (within the float tolerance %g, so float \
               certification reports feasible)"
              (List.length masked) (fst worst)
              (Q.to_short_string (snd worst))
              tol ]
      in
      let worst =
        List.fold_left
          (fun acc (_, r) -> Q.max acc r)
          Q.zero items
      in
      {
        checks =
          [ make_check ~claim:"primal feasibility"
              ~code:(if refuted <> [] then "E001" else "E002")
              ~float_ok ~threshold:tol worst ];
        findings = Diagnostic.sort findings;
      }
    end

  (* ---------------------------------------------------------------- *)
  (* Whole-solve exact audit                                          *)
  (* ---------------------------------------------------------------- *)

  let audit ?(options = default_options) ?(gap = Mip.default_limits.Mip.gap)
      ?var_name model outcome (stats : Mip.stats) =
    Obs.with_span "certify.exact" @@ fun () ->
    let std = Lp.standardize model in
    let adt = stats.Mip.audit in
    let tol = options.tol in
    let checks = ref [] and findings = ref [] in
    let addc c = checks := c :: !checks in
    let addf f = findings := f :: !findings in
    let addr (r : report) =
      List.iter addc r.checks;
      List.iter addf r.findings
    in
    (* Emit a value-comparison check: classify the exact residual against
       the float threshold and attach the matching finding. *)
    let value_check ~claim ~refuted_code ~masked_code ~refuted_sev ~masked_sev
        ~float_ok ~threshold residual detail =
      let verdict = classify ~threshold residual in
      let code =
        if verdict = Exactly_refuted then refuted_code else masked_code
      in
      addc (make_check ~claim ~code ~float_ok ~threshold residual);
      match verdict with
      | Exactly_refuted ->
        addf
          {
            Diagnostic.code = refuted_code;
            severity = refuted_sev;
            message =
              Printf.sprintf
                "exactly refuted %s: %s (exact residual %s exceeds the \
                 float tolerance %g%s)"
                claim detail
                (Q.to_short_string residual)
                threshold
                (if float_ok then
                   "; float certification passes — tolerance-masked \
                    refutation"
                 else "");
          }
      | Masked_violation ->
        addf
          {
            Diagnostic.code = masked_code;
            severity = masked_sev;
            message =
              Printf.sprintf
                "tolerance-masked %s drift: %s (exact residual %s within \
                 the float tolerance %g)"
                claim detail
                (Q.to_short_string residual)
                threshold;
          }
      | Exactly_valid | Unchecked -> ()
    in

    (* Primal feasibility + the claimed objective value.  Returns the exact
       re-evaluated objective (minimization sense) when computable. *)
    let primal (sol : Mip.solution) =
      addr (certify_point ~options ?var_name std sol.Mip.x);
      let claimed_min = Lp.restore_objective std sol.Mip.obj in
      if
        Array.length sol.Mip.x = std.Lp.ncols
        && Array.for_all Float.is_finite sol.Mip.x
        && Float.is_finite claimed_min
      then begin
        let xq = Array.map Q.of_float sol.Mip.x in
        let exact =
          let acc = ref (Q.of_float std.Lp.obj_const) in
          Array.iteri
            (fun j c ->
               if c <> 0. then acc := Q.add !acc (Q.mul (Q.of_float c) xq.(j)))
            std.Lp.obj;
          !acc
        in
        let threshold = rel tol claimed_min in
        let float_ok =
          Float.abs (Lp.eval_objective std sol.Mip.x -. claimed_min)
          <= threshold
        in
        value_check ~claim:"objective value" ~refuted_code:"E003"
          ~masked_code:"E004" ~refuted_sev:Diagnostic.Error
          ~masked_sev:Diagnostic.Info ~float_ok ~threshold
          (Q.abs (Q.sub exact (Q.of_float claimed_min)))
          (Printf.sprintf "claimed %g vs exact re-evaluation %s" sol.Mip.obj
             (Q.to_short_string exact));
        (Some exact, Some claimed_min)
      end
      else (None, Some claimed_min)
    in

    (* Dual side: exact cone projection, exact reduced costs, exact
       Lagrangian bound; weak duality and root-LP-objective agreement. *)
    let exact_bound = ref None in
    let dual ~exact_obj ~claimed_obj =
      match adt.Mip.root_lp with
      | None -> addc (unchecked ~claim:"dual bound" ~code:"E005" ~float_ok:true)
      | Some cert ->
        if
          Array.length cert.Mip.lp_y <> std.Lp.nrows
          || not (Array.for_all Float.is_finite cert.Mip.lp_y)
        then
          addc (unchecked ~claim:"dual bound" ~code:"E005" ~float_ok:false)
        else begin
          (* Exact dual-cone projection: any out-of-cone component is
             zeroed (no tolerance); the clamped vector always yields a
             valid bound, so clamping refutes nothing. *)
          let yq =
            Array.mapi
              (fun r v ->
                 let out =
                   match std.Lp.row_cmp.(r) with
                   | Lp.Le -> v > 0.
                   | Lp.Ge -> v < 0.
                   | Lp.Eq -> false
                 in
                 if out then Q.zero else Q.of_float v)
              cert.Mip.lp_y
          in
          let dq = exact_reduced_costs std yq in
          let base = ref (Q.of_float std.Lp.obj_const) in
          Array.iteri
            (fun r yr ->
               if not (Q.is_zero yr) then
                 base := Q.add !base (Q.mul yr (Q.of_float std.Lp.rhs.(r))))
            yq;
          (* Box contributions; a nonzero exact reduced cost against an
             infinite bound collapses the exact bound to -inf. *)
          let fin = ref !base in
          let small = ref [] and big = ref [] in
          Array.iteri
            (fun j dj ->
               let s = Q.sign dj in
               if s > 0 then begin
                 if Float.is_finite std.Lp.lb.(j) then
                   fin := Q.add !fin (Q.mul dj (Q.of_float std.Lp.lb.(j)))
                 else begin
                   let noise = 1e-7 *. (1. +. Float.abs std.Lp.obj.(j)) in
                   if Q.compare (Q.abs dj) (Q.of_float noise) <= 0 then
                     small := (j, Q.abs dj, noise) :: !small
                   else big := j :: !big
                 end
               end
               else if s < 0 then begin
                 if Float.is_finite std.Lp.ub.(j) then
                   fin := Q.add !fin (Q.mul dj (Q.of_float std.Lp.ub.(j)))
                 else begin
                   let noise = 1e-7 *. (1. +. Float.abs std.Lp.obj.(j)) in
                   if Q.compare (Q.abs dj) (Q.of_float noise) <= 0 then
                     small := (j, Q.abs dj, noise) :: !small
                   else big := j :: !big
                 end
               end)
            dq;
          let collapsed = !small <> [] || !big <> [] in
          let lq = if collapsed then None else Some !fin in
          exact_bound := lq;
          (* Float-layer view of the same bound, for the verdict pairs. *)
          let yc_f, _ = clamp_duals ~tol:options.cone_tol std cert.Mip.lp_y in
          let lbf = lagrangian_bound std yc_f in
          if !big = [] && !small <> [] then begin
            (* The float layer's noise guard kept the bound finite; exactly
               the bound is -inf, so every finite float bound claim rests on
               zeroing these reduced costs. *)
            let wj, wr, wn =
              List.fold_left
                (fun (aj, ar, an) (j, r, n) ->
                   if Q.compare r ar > 0 then (j, r, n) else (aj, ar, an))
                (List.hd !small) (List.tl !small)
            in
            addc
              { claim = "Lagrangian bound"; code = "E009"; float_ok = true;
                verdict = Masked_violation; residual = wr; threshold = wn };
            addf
              (Diagnostic.warning ~code:"E009"
                 "the float Lagrangian bound %g relies on zeroing %d exact \
                  reduced cost(s) against infinite bounds (worst column %d: \
                  |d| = %s <= noise guard %g); the exact bound collapses to \
                  -inf, so the dual bound is not exactly established"
                 lbf (List.length !small) wj (Q.to_short_string wr) wn)
          end
          else if not collapsed then
            addc
              { claim = "Lagrangian bound"; code = "E009";
                float_ok = Float.is_finite lbf; verdict = Exactly_valid;
                residual = Q.zero; threshold = tol };
          (* Weak duality: L(y) must not exceed the exact incumbent. *)
          (match (lq, exact_obj) with
           | Some l, Some o ->
             let claimed = Option.value claimed_obj ~default:(Q.to_float o) in
             let threshold = rel tol claimed in
             let float_ok = not (lbf > claimed +. threshold) in
             value_check ~claim:"weak duality" ~refuted_code:"E005"
               ~masked_code:"E006" ~refuted_sev:Diagnostic.Error
               ~masked_sev:Diagnostic.Warning ~float_ok ~threshold
               (Q.sub l o)
               (Printf.sprintf "exact dual bound %s vs exact incumbent %s"
                  (Q.to_short_string l) (Q.to_short_string o))
           | None, Some _ ->
             (* L = -inf: weak duality holds trivially and exactly. *)
             addc
               { claim = "weak duality"; code = "E005"; float_ok = true;
                 verdict = Exactly_valid; residual = Q.zero; threshold = tol }
           | _ -> ());
          (* Agreement with the claimed root LP objective. *)
          (if Float.is_finite cert.Mip.lp_obj then
             match lq with
             | Some l ->
               let threshold = rel tol cert.Mip.lp_obj in
               let diff = Q.sub l (Q.of_float cert.Mip.lp_obj) in
               let residual, float_ok =
                 if adt.Mip.presolve_rows_removed = 0 then
                   ( Q.abs diff,
                     Float.abs (lbf -. cert.Mip.lp_obj) <= threshold )
                 else (diff, not (lbf > cert.Mip.lp_obj +. threshold))
               in
               if adt.Mip.presolve_rows_removed > 0 then
                 addf
                   (Diagnostic.info ~code:"E008"
                      "presolve removed %d row(s); the exact back-mapped \
                       bound may be weaker than the claimed root objective, \
                       so only overclaims are refutable"
                      adt.Mip.presolve_rows_removed);
               value_check ~claim:"root LP objective" ~refuted_code:"E007"
                 ~masked_code:"E008" ~refuted_sev:Diagnostic.Error
                 ~masked_sev:Diagnostic.Info ~float_ok ~threshold residual
                 (Printf.sprintf "exact Lagrangian bound %s vs claimed %g"
                    (Q.to_short_string l) cert.Mip.lp_obj)
             | None ->
               addc
                 (unchecked ~claim:"root LP objective" ~code:"E007"
                    ~float_ok:(Float.abs (lbf -. cert.Mip.lp_obj)
                               <= rel tol cert.Mip.lp_obj)));
          (* Complementary slackness at the root optimum, exactly. *)
          if
            Array.length cert.Mip.lp_x = std.Lp.ncols
            && Array.for_all Float.is_finite cert.Mip.lp_x
          then begin
            let worst = ref Q.zero and worst_j = ref (-1) in
            let worst_thr = ref tol in
            let n_masked = ref 0 and n_refuted = ref 0 in
            let float_viols = ref 0 in
            let d_f = reduced_costs std cert.Mip.lp_y in
            Array.iteri
              (fun j dj ->
                 let xj = Q.of_float cert.Mip.lp_x.(j) in
                 let lbj = std.Lp.lb.(j) and ubj = std.Lp.ub.(j) in
                 let fixed =
                   Float.is_finite lbj && Float.is_finite ubj && lbj = ubj
                 in
                 if not fixed then begin
                   let at_lower =
                     Float.is_finite lbj
                     && Q.compare xj (Q.of_float lbj) <= 0
                   and at_upper =
                     Float.is_finite ubj
                     && Q.compare xj (Q.of_float ubj) >= 0
                   in
                   let residual =
                     if at_lower && at_upper then Q.zero
                     else if at_lower then Q.max Q.zero (Q.neg dj)
                     else if at_upper then Q.max Q.zero dj
                     else Q.abs dj
                   in
                   let thr = rel tol std.Lp.obj.(j) in
                   (match classify ~threshold:thr residual with
                    | Masked_violation -> incr n_masked
                    | Exactly_refuted -> incr n_refuted
                    | _ -> ());
                   if Q.compare residual !worst > 0 then begin
                     worst := residual;
                     worst_j := j;
                     worst_thr := thr
                   end;
                   (* float layer's verdict on the same column *)
                   let v = cert.Mip.lp_x.(j) in
                   let eps = 1e-6 *. (1. +. Float.abs v) in
                   let bad_f =
                     if ubj -. lbj <= 2. *. eps then false
                     else if v > lbj +. eps && v < ubj -. eps then
                       Float.abs d_f.(j) > thr
                     else if v <= lbj +. eps then d_f.(j) < -.thr
                     else d_f.(j) > thr
                   in
                   if bad_f then incr float_viols
                 end)
              dq;
            let float_ok = !float_viols = 0 in
            let verdict =
              if !n_refuted > 0 then Exactly_refuted
              else if !n_masked > 0 then Masked_violation
              else Exactly_valid
            in
            addc
              { claim = "complementary slackness";
                code = (if verdict = Exactly_refuted then "E012" else "E013");
                float_ok; verdict; residual = !worst; threshold = !worst_thr };
            if !n_refuted > 0 then
              addf
                (Diagnostic.warning ~code:"E012"
                   "complementary slackness exactly violated for %d \
                    column(s) at the root optimum (worst: column %d, exact \
                    residual %s exceeds tolerance %g)"
                   !n_refuted !worst_j
                   (Q.to_short_string !worst)
                   !worst_thr)
            else if !n_masked > 0 then
              addf
                (Diagnostic.info ~code:"E013"
                   "%d tolerance-masked complementary-slackness residual(s) \
                    at the root optimum (worst: column %d, exact residual %s \
                    within tolerance %g)"
                   !n_masked !worst_j
                   (Q.to_short_string !worst)
                   !worst_thr)
          end
        end
    in

    (* Bound bookkeeping: support minimum, outcome bound, reported gap. *)
    let bounds ~exact_obj ~outcome_bound_min =
      (match adt.Mip.proven_bound with
       | Some pb when Float.is_finite pb ->
         if Array.length adt.Mip.bound_support > 1 then
           addf
             (Diagnostic.info ~code:"E014"
                "the proven bound aggregates %d search-tree node bounds; \
                 the exact audit re-verifies their bookkeeping, not the \
                 tree search that derived them"
                (Array.length adt.Mip.bound_support));
         (if Array.length adt.Mip.bound_support > 0 then begin
            let m =
              Array.fold_left Float.min infinity adt.Mip.bound_support
            in
            if Float.is_finite m then begin
              let threshold = rel tol m in
              value_check ~claim:"proven bound support" ~refuted_code:"E005"
                ~masked_code:"E006" ~refuted_sev:Diagnostic.Error
                ~masked_sev:Diagnostic.Warning
                ~float_ok:(Float.abs (pb -. m) <= threshold)
                ~threshold
                (Q.abs (Q.sub (Q.of_float pb) (Q.of_float m)))
                (Printf.sprintf
                   "claimed bound %g vs minimum %g of %d node bounds" pb m
                   (Array.length adt.Mip.bound_support))
            end
          end);
         (match outcome_bound_min with
          | Some cb when Float.is_finite cb ->
            let threshold = rel tol pb in
            value_check ~claim:"outcome bound" ~refuted_code:"E005"
              ~masked_code:"E006" ~refuted_sev:Diagnostic.Error
              ~masked_sev:Diagnostic.Warning
              ~float_ok:(Float.abs (cb -. pb) <= threshold)
              ~threshold
              (Q.abs (Q.sub (Q.of_float cb) (Q.of_float pb)))
              (Printf.sprintf "outcome bound %g vs audited bound %g" cb pb)
          | _ -> ())
       | _ -> ());
      match (exact_obj, adt.Mip.proven_bound) with
      | Some o, Some pb when Float.is_finite pb ->
        let g =
          Q.max Q.zero
            (Q.div (Q.sub o (Q.of_float pb)) (Q.max Q.one (Q.abs o)))
        in
        if Float.is_finite stats.Mip.gap_achieved then begin
          let o_f = Q.to_float o in
          let g_f =
            Float.max 0. ((o_f -. pb) /. Float.max 1. (Float.abs o_f))
          in
          value_check ~claim:"reported gap" ~refuted_code:"E005"
            ~masked_code:"E006" ~refuted_sev:Diagnostic.Error
            ~masked_sev:Diagnostic.Warning
            ~float_ok:(Float.abs (stats.Mip.gap_achieved -. g_f) <= tol)
            ~threshold:tol
            (Q.abs (Q.sub (Q.of_float stats.Mip.gap_achieved) g))
            (Printf.sprintf "reported gap %g vs exact recomputation"
               stats.Mip.gap_achieved)
        end;
        Some g
      | _ -> None
    in

    let optimality g =
      match g with
      | None ->
        addc (unchecked ~claim:"optimality gap" ~code:"E015" ~float_ok:true)
      | Some g ->
        let residual = Q.sub g (Q.of_float gap) in
        let verdict = classify ~threshold:tol residual in
        let float_ok = Q.to_float g <= gap +. tol in
        addc
          { claim = "optimality gap"; code = "E015"; float_ok; verdict;
            residual = Q.max Q.zero residual; threshold = tol };
        (match verdict with
         | Exactly_refuted ->
           let f =
             if adt.Mip.numerical_prunes > 0 then
               Diagnostic.warning ~code:"E015"
             else Diagnostic.error ~code:"E015"
           in
           addf
             (f
                "optimality exactly refuted: the exact gap exceeds the gap \
                 tolerance %g by %s (float slack tolerance %g)"
                gap
                (Q.to_short_string residual)
                tol)
         | Masked_violation ->
           addf
             (Diagnostic.warning ~code:"E015"
                "optimality claim is tolerance-masked: the exact gap \
                 exceeds the gap tolerance %g by %s (within the float slack \
                 %g)"
                gap
                (Q.to_short_string residual)
                tol)
         | _ -> ())
    in

    (* Farkas infeasibility, with zero tolerance. *)
    let farkas ray =
      let float_ok = farkas_proves_infeasible ~tol std ray in
      if
        Array.length ray <> std.Lp.nrows
        || not (Array.for_all Float.is_finite ray)
        || not (Array.exists (fun v -> v <> 0.) ray)
      then begin
        addc
          { claim = "Farkas infeasibility"; code = "E010"; float_ok;
            verdict = Exactly_refuted; residual = Q.zero; threshold = tol };
        addf
          (Diagnostic.error ~code:"E010"
             "Farkas multiplier malformed or zero: the infeasibility claim \
              is exactly refuted")
      end
      else begin
        let yq = Array.map Q.of_float ray in
        let t = Array.make std.Lp.ncols Q.zero in
        for r = 0 to std.Lp.nrows - 1 do
          if not (Q.is_zero yq.(r)) then
            Array.iteri
              (fun k j ->
                 t.(j) <-
                   Q.add t.(j)
                     (Q.mul yq.(r) (Q.of_float std.Lp.row_val.(r).(k))))
              std.Lp.row_idx.(r)
        done;
        let mul_bound tj b =
          if b = infinity then (if Q.sign tj > 0 then Pos_inf else Neg_inf)
          else if b = neg_infinity then
            (if Q.sign tj > 0 then Neg_inf else Pos_inf)
          else Fin (Q.mul tj (Q.of_float b))
        in
        let fmax = ref (Fin Q.zero) and fmin = ref (Fin Q.zero) in
        let yrhs = ref Q.zero and scale = ref 1. in
        Array.iteri
          (fun j tj ->
             let s = Q.sign tj in
             if s > 0 then begin
               fmax := ext_add_term !fmax (mul_bound tj std.Lp.ub.(j));
               fmin := ext_add_term !fmin (mul_bound tj std.Lp.lb.(j));
               scale := !scale +. Float.abs (Q.to_float tj)
             end
             else if s < 0 then begin
               fmax := ext_add_term !fmax (mul_bound tj std.Lp.lb.(j));
               fmin := ext_add_term !fmin (mul_bound tj std.Lp.ub.(j));
               scale := !scale +. Float.abs (Q.to_float tj)
             end)
          t;
        Array.iteri
          (fun r yr ->
             if not (Q.is_zero yq.(r)) then
               yrhs := Q.add !yrhs (Q.mul yq.(r) (Q.of_float std.Lp.rhs.(r)));
             scale := !scale +. Float.abs (yr *. std.Lp.rhs.(r));
             match std.Lp.row_cmp.(r) with
             | Lp.Le ->
               if yr > 0. then fmax := Pos_inf
               else if yr < 0. then fmin := Neg_inf
             | Lp.Ge ->
               if yr > 0. then fmin := Neg_inf
               else if yr < 0. then fmax := Pos_inf
             | Lp.Eq -> ())
          ray;
        let eps = tol *. !scale in
        let above =
          match !fmax with
          | Pos_inf -> None
          | Fin f -> Some (Q.sub !yrhs f)
          | Neg_inf -> Some Q.one
        and below =
          match !fmin with
          | Neg_inf -> None
          | Fin f -> Some (Q.sub f !yrhs)
          | Pos_inf -> Some Q.one
        in
        let margin =
          match (above, below) with
          | Some a, Some b -> Some (Q.max a b)
          | Some a, None -> Some a
          | None, Some b -> Some b
          | None, None -> None
        in
        match margin with
        | Some m when Q.sign m > 0 ->
          addc
            { claim = "Farkas infeasibility"; code = "E011"; float_ok;
              verdict = Exactly_valid; residual = Q.zero; threshold = eps };
          if Q.compare m (Q.of_float eps) <= 0 then
            addf
              (Diagnostic.info ~code:"E011"
                 "Farkas certificate exactly proves infeasibility but its \
                  margin %s is below the float epsilon %g — fragile under \
                  the float checker"
                 (Q.to_short_string m) eps)
        | _ ->
          let depth =
            match margin with
            | Some m -> Q.neg m
            | None -> Q.zero
          in
          addc
            { claim = "Farkas infeasibility"; code = "E010"; float_ok;
              verdict = Exactly_refuted; residual = Q.max Q.zero depth;
              threshold = eps };
          addf
            (Diagnostic.error ~code:"E010"
               "Farkas certificate exactly fails: y'b lies inside the \
                attainable range of y'(Ax+s) by %s%s"
               (Q.to_short_string (Q.max Q.zero depth))
               (if float_ok then
                  " — float certification nevertheless passes \
                   (tolerance-masked refutation)"
                else ""))
      end
    in

    (match outcome with
     | Mip.Optimal sol ->
       let exact_obj, claimed_obj = primal sol in
       dual ~exact_obj ~claimed_obj;
       let g = bounds ~exact_obj ~outcome_bound_min:None in
       optimality g
     | Mip.Feasible (sol, bound) ->
       let exact_obj, claimed_obj = primal sol in
       dual ~exact_obj ~claimed_obj;
       ignore
         (bounds ~exact_obj
            ~outcome_bound_min:(Some (Lp.restore_objective std bound)))
     | Mip.No_incumbent b ->
       dual ~exact_obj:None ~claimed_obj:None;
       ignore
         (bounds ~exact_obj:None
            ~outcome_bound_min:(Option.map (Lp.restore_objective std) b))
     | Mip.Infeasible ->
       (match adt.Mip.farkas with
        | Some ray -> farkas ray
        | None ->
          addc
            (unchecked ~claim:"Farkas infeasibility" ~code:"E010"
               ~float_ok:true))
     | Mip.Unbounded ->
       addc (unchecked ~claim:"unboundedness" ~code:"E010" ~float_ok:true)
     | Mip.Too_large { rows; limit = _ } ->
       let residual = Q.abs (Q.of_int (rows - std.Lp.nrows)) in
       addc
         (make_check ~claim:"size refusal" ~code:"E005"
            ~float_ok:(rows = std.Lp.nrows) ~threshold:0. residual);
       if rows <> std.Lp.nrows then
         addf
           (Diagnostic.error ~code:"E005"
              "exactly refuted size refusal: claims %d rows but the model \
               has %d"
              rows std.Lp.nrows));

    let report =
      {
        checks = List.rev !checks;
        findings = Diagnostic.sort (List.rev !findings);
      }
    in
    let _, masked, _, _ = counts report in
    Obs.count "certify.exact_checks"
      (float_of_int (List.length report.checks));
    if masked > 0 then
      Obs.count "certify.masked_violations" (float_of_int masked);
    report
end

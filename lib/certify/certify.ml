module Diagnostic = Vpart_analysis.Diagnostic

let rel tol reference = tol *. (1. +. Float.abs reference)

let string_of_cmp = function Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "="

(* ------------------------------------------------------------------ *)
(* Primal certificates                                                *)
(* ------------------------------------------------------------------ *)

let certify_point ?(tol = 1e-5) ?var_name (std : Lp.std) x =
  List.map
    (fun v ->
       let msg = Format.asprintf "%a" (Lp.pp_violation ?var_name ()) v in
       let code =
         match v with
         | Lp.Wrong_length _ | Lp.Non_finite _ -> "C001"
         | Lp.Bound_violation _ -> "C002"
         | Lp.Not_integral _ -> "C003"
         | Lp.Row_violation _ -> "C004"
       in
       Diagnostic.error ~code "%s" msg)
    (Lp.feasibility_violations ~tol std x)

(* ------------------------------------------------------------------ *)
(* Dual certificates                                                  *)
(* ------------------------------------------------------------------ *)

let clamp_duals ?(tol = 1e-7) (std : Lp.std) y =
  let diags = ref [] in
  let yc = Array.copy y in
  Array.iteri
    (fun r cmp ->
       let v = y.(r) in
       let out_of_cone =
         match cmp with
         | Lp.Le -> v > 0.
         | Lp.Ge -> v < 0.
         | Lp.Eq -> false
       in
       if out_of_cone then begin
         if Float.abs v > tol then
           diags :=
             Diagnostic.warning ~code:"C101"
               "dual multiplier y[%d] = %g lies outside the dual cone of a \
                '%s' row; clamped to 0 for the bound"
               r v (string_of_cmp cmp)
             :: !diags;
         yc.(r) <- 0.
       end)
    std.Lp.row_cmp;
  (yc, List.rev !diags)

let reduced_costs (std : Lp.std) y =
  let d = Array.copy std.Lp.obj in
  for r = 0 to std.Lp.nrows - 1 do
    let yr = y.(r) in
    if yr <> 0. then
      Array.iteri
        (fun k j -> d.(j) <- d.(j) -. (yr *. std.Lp.row_val.(r).(k)))
        std.Lp.row_idx.(r)
  done;
  d

let lagrangian_bound (std : Lp.std) y =
  let d = reduced_costs std y in
  let bound = ref std.Lp.obj_const in
  Array.iteri (fun r yr -> bound := !bound +. (yr *. std.Lp.rhs.(r))) y;
  Array.iteri
    (fun j dj ->
       let noise = 1e-7 *. (1. +. Float.abs std.Lp.obj.(j)) in
       if dj > 0. then begin
         (* contribution d_j·l_j; treat numerical noise as zero against an
            infinite bound rather than collapsing the whole bound to -inf *)
         if Float.is_finite std.Lp.lb.(j) then
           bound := !bound +. (dj *. std.Lp.lb.(j))
         else if dj > noise then bound := neg_infinity
       end
       else if dj < 0. then begin
         if Float.is_finite std.Lp.ub.(j) then
           bound := !bound +. (dj *. std.Lp.ub.(j))
         else if dj < -.noise then bound := neg_infinity
       end)
    d;
  !bound

let farkas_proves_infeasible ?(tol = 1e-7) (std : Lp.std) y =
  Array.length y = std.Lp.nrows
  && Array.for_all Float.is_finite y
  && Array.exists (fun v -> v <> 0.) y
  &&
  (* t = Aᵀy over the structural columns *)
  let t = Array.make std.Lp.ncols 0. in
  for r = 0 to std.Lp.nrows - 1 do
    let yr = y.(r) in
    if yr <> 0. then
      Array.iteri
        (fun k j -> t.(j) <- t.(j) +. (yr *. std.Lp.row_val.(r).(k)))
        std.Lp.row_idx.(r)
  done;
  (* Range of yᵀ(Ax + s) over the true variable boxes and slack cones:
     the simplex encodes [row cmp rhs] as [row + s = rhs] with slack
     s >= 0 for <=, s <= 0 for >=, s = 0 for =. *)
  let fmax = ref 0. and fmin = ref 0. in
  let yrhs = ref 0. and scale = ref 1. in
  Array.iteri
    (fun j tj ->
       if tj > 0. then begin
         fmax := !fmax +. (tj *. std.Lp.ub.(j));
         fmin := !fmin +. (tj *. std.Lp.lb.(j));
         scale := !scale +. Float.abs tj
       end
       else if tj < 0. then begin
         fmax := !fmax +. (tj *. std.Lp.lb.(j));
         fmin := !fmin +. (tj *. std.Lp.ub.(j));
         scale := !scale +. Float.abs tj
       end)
    t;
  Array.iteri
    (fun r yr ->
       yrhs := !yrhs +. (yr *. std.Lp.rhs.(r));
       scale := !scale +. Float.abs (yr *. std.Lp.rhs.(r));
       match std.Lp.row_cmp.(r) with
       | Lp.Le ->
         if yr > 0. then fmax := infinity
         else if yr < 0. then fmin := neg_infinity
       | Lp.Ge ->
         if yr > 0. then fmin := neg_infinity
         else if yr < 0. then fmax := infinity
       | Lp.Eq -> ())
    y;
  let eps = tol *. !scale in
  !yrhs > !fmax +. eps || !yrhs < !fmin -. eps

(* ------------------------------------------------------------------ *)
(* Whole-solve certification                                          *)
(* ------------------------------------------------------------------ *)

let certify_mip ?(tol = 1e-5) ?(gap = Mip.default_limits.Mip.gap) ?var_name
    model outcome (stats : Mip.stats) =
  Obs.with_span "certify.mip" @@ fun () ->
  let std = Lp.standardize model in
  let audit = stats.Mip.audit in
  let diags = ref [] in
  let add d = diags := d :: !diags in

  (* Primal side: the incumbent and its claimed objective. *)
  let primal_checks (sol : Mip.solution) =
    Obs.timed "certify.primal.seconds" @@ fun () ->
    List.iter add (certify_point ~tol ?var_name std sol.Mip.x);
    let obj_min = Lp.restore_objective std sol.Mip.obj in
    if Array.length sol.Mip.x = std.Lp.ncols
       && Array.for_all Float.is_finite sol.Mip.x
    then begin
      let fresh = Lp.eval_objective std sol.Mip.x in
      if Float.abs (fresh -. obj_min) > rel tol obj_min then
        add
          (Diagnostic.error ~code:"C005"
             "claimed objective %g differs from independent re-evaluation %g"
             sol.Mip.obj
             (Lp.restore_objective std fresh))
    end;
    obj_min
  in

  (* Dual side: the root LP certificate, checked against the original
     matrix.  [primal_obj_min] is the certified incumbent value (if any)
     for the weak-duality check. *)
  let dual_checks ~primal_obj_min =
    Obs.timed "certify.dual.seconds" @@ fun () ->
    match audit.Mip.root_lp with
    | None ->
      add
        (Diagnostic.info ~code:"C111"
           "no root LP certificate returned: dual-side claims cannot be \
            independently checked")
    | Some cert ->
      if
        Array.length cert.Mip.lp_y <> std.Lp.nrows
        || not (Array.for_all Float.is_finite cert.Mip.lp_y)
      then
        add
          (Diagnostic.error ~code:"C103"
             "root LP dual vector malformed (length %d for %d rows, or \
              non-finite entries): bound claims unverifiable"
             (Array.length cert.Mip.lp_y) std.Lp.nrows)
      else begin
        let yc, cone = clamp_duals std cert.Mip.lp_y in
        List.iter add cone;
        (* C102: the solver's reported reduced costs vs c - Aᵀy. *)
        let d = reduced_costs std cert.Mip.lp_y in
        if Array.length cert.Mip.lp_reduced <> std.Lp.ncols then
          add
            (Diagnostic.warning ~code:"C102"
               "reported reduced-cost vector has length %d, expected %d"
               (Array.length cert.Mip.lp_reduced)
               std.Lp.ncols)
        else begin
          let worst = ref 0. and worst_j = ref (-1) in
          Array.iteri
            (fun j dj ->
               let e =
                 Float.abs (dj -. cert.Mip.lp_reduced.(j))
                 /. (1. +. Float.abs dj)
               in
               if e > !worst then begin
                 worst := e;
                 worst_j := j
               end)
            d;
          if !worst > tol then
            add
              (Diagnostic.warning ~code:"C102"
                 "reported reduced cost of column %d disagrees with c - A'y \
                  (relative error %g)"
                 !worst_j !worst)
        end;
        let lb = lagrangian_bound std yc in
        (* C103: weak duality against the certified incumbent. *)
        (match primal_obj_min with
         | Some obj when lb > obj +. rel tol obj ->
           add
             (Diagnostic.error ~code:"C103"
                "weak duality violated: certified dual bound %g exceeds \
                 certified incumbent objective %g"
                lb obj)
         | _ -> ());
        (* C104: the claimed root LP objective vs the recomputed bound. *)
        if audit.Mip.presolve_rows_removed = 0 then begin
          if Float.abs (lb -. cert.Mip.lp_obj) > rel tol cert.Mip.lp_obj then
            add
              (Diagnostic.warning ~code:"C104"
                 "root LP certificate inconsistent: recomputed Lagrangian \
                  bound %g vs claimed LP objective %g"
                 lb cert.Mip.lp_obj)
        end
        else begin
          if lb > cert.Mip.lp_obj +. rel tol cert.Mip.lp_obj then
            add
              (Diagnostic.warning ~code:"C104"
                 "root LP certificate inconsistent: back-mapped Lagrangian \
                  bound %g exceeds claimed LP objective %g"
                 lb cert.Mip.lp_obj);
          add
            (Diagnostic.info ~code:"C111"
               "presolve removed %d rows; the back-mapped dual certificate \
                may be weaker than the solver's internal bound"
               audit.Mip.presolve_rows_removed)
        end;
        (* C109: complementary slackness at the root optimum. *)
        if
          Array.length cert.Mip.lp_x = std.Lp.ncols
          && Array.for_all Float.is_finite cert.Mip.lp_x
        then begin
          let violations = ref 0 and worst = ref 0. and worst_j = ref (-1) in
          Array.iteri
            (fun j dj ->
               let v = cert.Mip.lp_x.(j) in
               let eps = 1e-6 *. (1. +. Float.abs v) in
               let cs_tol = rel tol std.Lp.obj.(j) in
               let bad =
                 (* A fixed column (lb = ub, e.g. symmetry pinning) is at
                    both bounds at once: either reduced-cost sign is
                    complementary. *)
                 if std.Lp.ub.(j) -. std.Lp.lb.(j) <= 2. *. eps then false
                 else if v > std.Lp.lb.(j) +. eps && v < std.Lp.ub.(j) -. eps
                 then Float.abs dj > cs_tol
                 else if v <= std.Lp.lb.(j) +. eps then dj < -.cs_tol
                 else dj > cs_tol
               in
               if bad then begin
                 incr violations;
                 if Float.abs dj > !worst then begin
                   worst := Float.abs dj;
                   worst_j := j
                 end
               end)
            d;
          if !violations > 0 then
            add
              (Diagnostic.warning ~code:"C109"
                 "complementary slackness fails at the root LP optimum for \
                  %d column(s) (worst: column %d, reduced cost %g)"
                 !violations !worst_j !worst)
        end
      end
  in

  (* Bound side: audited proven bound, its support, the outcome's claimed
     bound and the reported gap must all agree. *)
  let bound_checks ~claimed_bound_min ~obj_min =
    Obs.timed "certify.bounds.seconds" @@ fun () ->
    (match audit.Mip.proven_bound with
     | Some pb ->
       if Array.length audit.Mip.bound_support = 0 then
         add
           (Diagnostic.warning ~code:"C110"
              "proven bound %g has no supporting node bounds in the audit" pb)
       else begin
         let m = Array.fold_left Float.min infinity audit.Mip.bound_support in
         if Float.abs (pb -. m) > rel tol m then
           add
             (Diagnostic.error ~code:"C110"
                "claimed proven bound %g is not the minimum %g of its %d \
                 supporting node bounds"
                pb m
                (Array.length audit.Mip.bound_support))
       end;
       (match claimed_bound_min with
        | Some cb when Float.is_finite cb && Float.abs (cb -. pb) > rel tol pb
          ->
          add
            (Diagnostic.error ~code:"C105"
               "outcome bound %g disagrees with audited proven bound %g" cb pb)
        | _ -> ())
     | None ->
       (match claimed_bound_min with
        | Some cb when Float.is_finite cb ->
          add
            (Diagnostic.warning ~code:"C105"
               "outcome claims bound %g but the audit records no proven bound"
               cb)
        | _ -> ()));
    match obj_min with
    | Some o ->
      let b =
        match audit.Mip.proven_bound with
        | Some pb -> Some pb
        | None -> claimed_bound_min
      in
      (match b with
       | Some b when Float.is_finite b ->
         let g = Float.max 0. ((o -. b) /. Float.max 1. (Float.abs o)) in
         if
           Float.is_finite stats.Mip.gap_achieved
           && Float.abs (stats.Mip.gap_achieved -. g) > tol
         then
           add
             (Diagnostic.error ~code:"C105"
                "reported gap %g disagrees with gap %g recomputed from \
                 objective %g and bound %g"
                stats.Mip.gap_achieved g o b)
       | _ ->
         if Float.is_finite stats.Mip.gap_achieved then
           add
             (Diagnostic.error ~code:"C105"
                "finite gap %g reported without any finite proven bound"
                stats.Mip.gap_achieved))
    | None ->
      if Float.is_finite stats.Mip.gap_achieved then
        add
          (Diagnostic.error ~code:"C105"
             "finite gap %g reported without an incumbent"
             stats.Mip.gap_achieved)
  in

  if audit.Mip.numerical_prunes > 0 then
    add
      (Diagnostic.info ~code:"C111"
         "%d subtree(s) abandoned on numerical trouble; optimality proofs \
          degrade to the root bound"
         audit.Mip.numerical_prunes);

  (match outcome with
   | Mip.Optimal sol ->
     let obj_min = primal_checks sol in
     dual_checks ~primal_obj_min:(Some obj_min);
     bound_checks ~claimed_bound_min:None ~obj_min:(Some obj_min);
     (match audit.Mip.proven_bound with
      | Some pb ->
        let g = Float.max 0. ((obj_min -. pb) /. Float.max 1. (Float.abs obj_min)) in
        if g > gap +. tol then begin
          let f =
            if audit.Mip.numerical_prunes > 0 then
              Diagnostic.warning ~code:"C106"
            else Diagnostic.error ~code:"C106"
          in
          add
            (f
               "optimality claimed but the certified gap %g exceeds the gap \
                tolerance %g"
               g gap)
        end
      | None ->
        add
          (Diagnostic.warning ~code:"C106"
             "optimality claimed but the audit records no proven bound"))
   | Mip.Feasible (sol, bound) ->
     let obj_min = primal_checks sol in
     let b_min = Lp.restore_objective std bound in
     if Float.is_finite b_min && b_min > obj_min +. rel tol obj_min then
       add
         (Diagnostic.error ~code:"C105"
            "claimed lower bound %g exceeds the incumbent objective %g" b_min
            obj_min);
     dual_checks ~primal_obj_min:(Some obj_min);
     bound_checks ~claimed_bound_min:(Some b_min) ~obj_min:(Some obj_min)
   | Mip.No_incumbent b ->
     dual_checks ~primal_obj_min:None;
     bound_checks
       ~claimed_bound_min:(Option.map (Lp.restore_objective std) b)
       ~obj_min:None
   | Mip.Infeasible ->
     (match audit.Mip.farkas with
      | Some ray ->
        if not (farkas_proves_infeasible ~tol std ray) then
          add
            (Diagnostic.error ~code:"C107"
               "returned Farkas multiplier does not prove infeasibility of \
                the original model")
      | None ->
        add
          (Diagnostic.info ~code:"C108"
             "infeasibility claim carries no single-multiplier certificate \
              (presolve reduction chain or exhaustive search)"))
   | Mip.Unbounded ->
     add
       (Diagnostic.info ~code:"C111"
          "unboundedness claims are not independently certified")
   | Mip.Too_large n ->
     if n <> std.Lp.nrows then
       add
         (Diagnostic.error ~code:"C105"
            "refusal claims %d rows but the model has %d" n std.Lp.nrows));

  Diagnostic.sort (List.rev !diags)

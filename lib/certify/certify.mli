(** Independent certificates for solver claims.

    The branch-and-bound solver ({!Vpart_mip.Mip}) makes three kinds of
    claims: {e this point is feasible}, {e no better objective than this
    bound exists}, and {e the problem is infeasible}.  This module is the
    trusted checker of the untrusted-solver/trusted-checker split: it
    re-derives every claim using only the {e original} (pre-presolve,
    pre-patching) standard form and the artifacts the solver returned —
    it never re-runs the solver and never trusts intermediate solver
    state.  The arithmetic here is a few hundred lines of dot products;
    the solver is thousands of lines of pivoting and search.

    Checks are reported as {!Vpart_analysis.Diagnostic} findings with the
    [C1xx] code family (catalogued in [docs/ANALYSIS.md]); the domain-level
    certificates ([C2xx], comparing MIP objectives against the independent
    cost model) live in [Vpart.Solution_certify], which depends on the core
    types.

    {2 The mathematics}

    For a minimization standard form [min cᵀx + k] s.t. [Ax cmp b],
    [l <= x <= u], any multiplier vector [y] inside the {e dual cone}
    ([y_r <= 0] on [<=] rows, [y_r >= 0] on [>=] rows, free on [=] rows)
    yields the Lagrangian bound

    {v L(y) = k + yᵀb + Σ_j min(d_j·l_j, d_j·u_j),   d = c − Aᵀy v}

    which is a valid lower bound on the optimum for {e any} such [y] —
    so the checker clamps out-of-cone components to zero (reporting them)
    rather than rejecting the certificate.  Infeasibility certificates are
    the same machinery with [c = 0]: a ray [y] proves infeasibility when
    [yᵀb] lies strictly outside the range of [yᵀ(Ax + s)] over the
    variable boxes and slack cones. *)

module Diagnostic = Vpart_analysis.Diagnostic

val certify_point :
  ?tol:float ->
  ?var_name:(Lp.var -> string) ->
  Lp.std ->
  float array ->
  Diagnostic.t list
(** Primal certificate: check that [x] satisfies every bound, row and
    integrality marker of [std] within absolute tolerance [tol] (default
    [1e-5], matching the solver's own incumbent vetting).  Findings:
    [C001] (malformed vector), [C002] (bound), [C003] (integrality),
    [C004] (row).  Empty list = certified feasible. *)

val clamp_duals :
  ?tol:float -> Lp.std -> float array -> float array * Diagnostic.t list
(** Project [y] onto the dual cone of the minimization form [std]
    (see above).  Components outside the cone by more than [tol]
    (default [1e-7]) are zeroed and reported as [C101] warnings;
    sub-tolerance noise is zeroed silently.  The returned vector always
    yields a valid {!lagrangian_bound}. *)

val reduced_costs : Lp.std -> float array -> float array
(** [reduced_costs std y] is [d = c − Aᵀy], computed directly from the
    sparse rows of [std] (length [ncols]). *)

val lagrangian_bound : Lp.std -> float array -> float
(** The bound [L(y)] above for a vector already inside the dual cone
    (callers should {!clamp_duals} first).  May be [neg_infinity] when a
    nonzero reduced cost meets an infinite bound; reduced costs within
    [1e-7·(1+|c_j|)] of zero are treated as zero against infinite bounds
    (safe-bounding compromise, documented in DESIGN.md). *)

val farkas_proves_infeasible : ?tol:float -> Lp.std -> float array -> bool
(** [farkas_proves_infeasible std y] re-derives primal infeasibility from
    a Farkas-style multiplier [y] (one entry per row, e.g. from
    {!Vpart_simplex.Simplex.farkas_ray}): true iff [yᵀb] provably lies
    outside the attainable range of [yᵀ(Ax + s)] over the {e true}
    (unpatched) variable boxes and slack cones, with tolerance scaled by
    the certificate's magnitude.  A ray that only "proves" infeasibility
    of the solver's patched boxes fails here — by design. *)

val certify_mip :
  ?tol:float ->
  ?gap:float ->
  ?var_name:(Lp.var -> string) ->
  Lp.model ->
  Mip.outcome ->
  Mip.stats ->
  Diagnostic.t list
(** Certify everything a {!Vpart_mip.Mip.solve} result claims against the
    original [model]:

    - [Optimal]/[Feasible]: the incumbent passes {!certify_point}; its
      claimed objective matches an independent re-evaluation ([C005]);
      the root LP certificate's duals are in the cone ([C101]), its
      reduced costs agree with [c − Aᵀy] ([C102]), the Lagrangian bound
      does not exceed the incumbent (weak duality, [C103]) and agrees
      with the claimed root LP objective ([C104]); complementary
      slackness holds at the root optimum ([C109]).
    - Claimed bounds: the audited proven bound equals the minimum of its
      supporting node bounds ([C110]); outcome bound, audited bound and
      [gap_achieved] are mutually consistent ([C105]); an [Optimal] claim
      whose certified gap exceeds [gap] (default
      {!Vpart_mip.Mip.default_limits}[.gap]) is rejected ([C106],
      downgraded to a warning when numerical prunes already voided the
      proof).
    - [Infeasible]: the Farkas ray re-proves infeasibility ([C107]);
      claims with no checkable certificate are flagged [C108].
    - Missing/weakened certificates (no root LP, presolve row removal,
      numerical prunes) are surfaced as [C111] infos.

    Findings are sorted most-severe-first; an empty list means every
    claim was independently certified. *)

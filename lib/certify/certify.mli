(** Independent certificates for solver claims.

    The branch-and-bound solver ({!Vpart_mip.Mip}) makes three kinds of
    claims: {e this point is feasible}, {e no better objective than this
    bound exists}, and {e the problem is infeasible}.  This module is the
    trusted checker of the untrusted-solver/trusted-checker split: it
    re-derives every claim using only the {e original} (pre-presolve,
    pre-patching) standard form and the artifacts the solver returned —
    it never re-runs the solver and never trusts intermediate solver
    state.  The arithmetic here is a few hundred lines of dot products;
    the solver is thousands of lines of pivoting and search.

    Checks are reported as {!Vpart_analysis.Diagnostic} findings with the
    [C1xx] code family (catalogued in [docs/ANALYSIS.md]); the domain-level
    certificates ([C2xx], comparing MIP objectives against the independent
    cost model) live in [Vpart.Solution_certify], which depends on the core
    types.

    {2 The mathematics}

    For a minimization standard form [min cᵀx + k] s.t. [Ax cmp b],
    [l <= x <= u], any multiplier vector [y] inside the {e dual cone}
    ([y_r <= 0] on [<=] rows, [y_r >= 0] on [>=] rows, free on [=] rows)
    yields the Lagrangian bound

    {v L(y) = k + yᵀb + Σ_j min(d_j·l_j, d_j·u_j),   d = c − Aᵀy v}

    which is a valid lower bound on the optimum for {e any} such [y] —
    so the checker clamps out-of-cone components to zero (reporting them)
    rather than rejecting the certificate.  Infeasibility certificates are
    the same machinery with [c = 0]: a ray [y] proves infeasibility when
    [yᵀb] lies strictly outside the range of [yᵀ(Ax + s)] over the
    variable boxes and slack cones. *)

module Diagnostic = Vpart_analysis.Diagnostic

type options = {
  tol : float;
      (** primal/dual residual tolerance for the float-layer checks
          (default [1e-5], matching the solver's own incumbent vetting);
          relative thresholds are [tol·(1+|reference|)]. *)
  cone_tol : float;
      (** dual-cone projection tolerance (default [1e-7]): out-of-cone
          components beyond it are reported, smaller ones are zeroed
          silently. *)
}
(** Tolerances of the {e float} certification layer, exposed so callers
    (and the CLI's [certify --tol]) can tighten or relax them.  Every
    finding reports the actual residual alongside the threshold that
    judged it, so the {!Exact} auditor's masked-violation reports are
    actionable. *)

val default_options : options

val certify_point :
  ?tol:float ->
  ?var_name:(Lp.var -> string) ->
  Lp.std ->
  float array ->
  Diagnostic.t list
(** Primal certificate: check that [x] satisfies every bound, row and
    integrality marker of [std] within absolute tolerance [tol] (default
    [1e-5], matching the solver's own incumbent vetting).  Findings:
    [C001] (malformed vector), [C002] (bound), [C003] (integrality),
    [C004] (row).  Empty list = certified feasible. *)

val clamp_duals :
  ?tol:float -> Lp.std -> float array -> float array * Diagnostic.t list
(** Project [y] onto the dual cone of the minimization form [std]
    (see above).  Components outside the cone by more than [tol]
    (default [1e-7]) are zeroed and reported as [C101] warnings;
    sub-tolerance noise is zeroed silently.  The returned vector always
    yields a valid {!lagrangian_bound}. *)

val reduced_costs : Lp.std -> float array -> float array
(** [reduced_costs std y] is [d = c − Aᵀy], computed directly from the
    sparse rows of [std] (length [ncols]). *)

val lagrangian_bound : Lp.std -> float array -> float
(** The bound [L(y)] above for a vector already inside the dual cone
    (callers should {!clamp_duals} first).  May be [neg_infinity] when a
    nonzero reduced cost meets an infinite bound; reduced costs within
    [1e-7·(1+|c_j|)] of zero are treated as zero against infinite bounds
    (safe-bounding compromise, documented in DESIGN.md). *)

val farkas_proves_infeasible : ?tol:float -> Lp.std -> float array -> bool
(** [farkas_proves_infeasible std y] re-derives primal infeasibility from
    a Farkas-style multiplier [y] (one entry per row, e.g. from
    {!Vpart_simplex.Simplex.farkas_ray}): true iff [yᵀb] provably lies
    outside the attainable range of [yᵀ(Ax + s)] over the {e true}
    (unpatched) variable boxes and slack cones, with tolerance scaled by
    the certificate's magnitude.  A ray that only "proves" infeasibility
    of the solver's patched boxes fails here — by design. *)

val certify_mip :
  ?options:options ->
  ?gap:float ->
  ?var_name:(Lp.var -> string) ->
  Lp.model ->
  Mip.outcome ->
  Mip.stats ->
  Diagnostic.t list
(** Certify everything a {!Vpart_mip.Mip.solve} result claims against the
    original [model]:

    - [Optimal]/[Feasible]: the incumbent passes {!certify_point}; its
      claimed objective matches an independent re-evaluation ([C005]);
      the root LP certificate's duals are in the cone ([C101]), its
      reduced costs agree with [c − Aᵀy] ([C102]), the Lagrangian bound
      does not exceed the incumbent (weak duality, [C103]) and agrees
      with the claimed root LP objective ([C104]); complementary
      slackness holds at the root optimum ([C109]).
    - Claimed bounds: the audited proven bound equals the minimum of its
      supporting node bounds ([C110]); outcome bound, audited bound and
      [gap_achieved] are mutually consistent ([C105]); an [Optimal] claim
      whose certified gap exceeds [gap] (default
      {!Vpart_mip.Mip.default_limits}[.gap]) is rejected ([C106],
      downgraded to a warning when numerical prunes already voided the
      proof).
    - [Infeasible]: the Farkas ray re-proves infeasibility ([C107]);
      claims with no checkable certificate are flagged [C108].
    - Missing/weakened certificates (no root LP, presolve row removal,
      numerical prunes) are surfaced as [C111] infos.

    Findings are sorted most-severe-first; an empty list means every
    claim was independently certified. *)

(** Tolerance-free re-verification of every certificate in exact rational
    arithmetic ({!Vpart_rational.Rational}).

    The float certifiers above establish each claim within a tolerance; a
    certificate can therefore {e pass} while being genuinely violated
    (the violation hiding below the epsilon, or cancelling catastrophically
    in double precision).  This pure analysis pass embeds every solver
    artifact losslessly into rationals and re-derives the same claims with
    {e zero} tolerance, classifying each one as exactly valid,
    tolerance-masked (exactly violated, but within the float threshold) or
    exactly refuted (violated beyond the float threshold — the float layer
    should have caught it, and when it didn't, the pass says so).

    Findings use the [E]-code family (catalogued in [docs/ANALYSIS.md]).
    On healthy solver output, masked-violation warnings/infos are {e
    normal} — they are honest float roundoff — while exactly-refuted
    errors mean a certificate is wrong.  The [@certify-exact] gate fails
    on errors only. *)
module Exact : sig
  type verdict =
    | Exactly_valid  (** the exact residual is [<= 0]: the claim holds. *)
    | Masked_violation
        (** exactly violated, but by no more than the float threshold —
            invisible to the float layer. *)
    | Exactly_refuted
        (** violated beyond the float threshold: the certificate is
            wrong. *)
    | Unchecked
        (** the artifact needed for the exact re-derivation is missing or
            malformed. *)

  type check = {
    claim : string;  (** what was audited, e.g. ["weak duality"]. *)
    code : string;   (** the E-code that judged (or would judge) it. *)
    float_ok : bool;
        (** the float layer's verdict on the same claim, for the
            exact/float verdict pairs. *)
    verdict : verdict;
    residual : Vpart_rational.Rational.t;
        (** the exact violation amount ([0] when valid/unchecked). *)
    threshold : float;
        (** the float tolerance the residual was classified against. *)
  }

  type report = {
    checks : check list;
    findings : Diagnostic.t list;  (** sorted most-severe-first. *)
  }

  val empty : report
  val merge : report -> report -> report

  val classify :
    threshold:float -> Vpart_rational.Rational.t -> verdict
  (** [classify ~threshold r]: valid when [r <= 0], masked when
      [0 < r <= threshold] (compared exactly), refuted beyond. *)

  val make_check :
    claim:string ->
    code:string ->
    float_ok:bool ->
    threshold:float ->
    Vpart_rational.Rational.t ->
    check
  (** Classify a residual and package it — the constructor used by the
      domain-level exact audits in [Vpart.Solution_certify]. *)

  val counts : report -> int * int * int * int
  (** [(valid, masked, refuted, unchecked)]. *)

  val worst_masked : report -> check option
  (** The masked-violation check with the largest exact residual. *)

  val verdict_label : verdict -> string
  (** ["VALID"], ["MASKED"], ["REFUTED"] or ["unchecked"]. *)

  val pp_check : Format.formatter -> check -> unit
  val pp_report : Format.formatter -> report -> unit

  val certify_point :
    ?options:options ->
    ?var_name:(Lp.var -> string) ->
    Lp.std ->
    float array ->
    report
  (** Exact primal feasibility: every bound, row and integrality marker
      re-checked in rationals.  Exactly-refuted violations are [E001]
      errors (noting when float certification passes anyway);
      tolerance-masked ones aggregate into a single [E002] warning. *)

  val audit :
    ?options:options ->
    ?gap:float ->
    ?var_name:(Lp.var -> string) ->
    Lp.model ->
    Mip.outcome ->
    Mip.stats ->
    report
  (** Exact counterpart of {!certify_mip}: audits the incumbent
      ([E001]/[E002]), the claimed objective ([E003]/[E004]), the dual
      bound — weak duality, bound bookkeeping and the reported gap
      ([E005]/[E006]) — the root-LP-objective agreement ([E007]/[E008],
      one-sided under presolve), the float layer's reduced-cost noise
      guard ([E009]), Farkas infeasibility ([E010] refuted / [E011]
      fragile margin), complementary slackness ([E012]/[E013]), bound
      provenance ([E014]) and the optimality-gap claim ([E015]).
      Emits the [certify.exact] Obs span and the [certify.exact_checks] /
      [certify.masked_violations] counters. *)
end

type txn_move = {
  txn : int;
  to_site : int;
  delta : float;
  forced_replicas : int list;
}

type replica_change = {
  attr : int;
  site : int;
  action : [ `Add | `Drop ];
  delta : float;
}

type report = {
  base_cost : float;
  txn_moves : txn_move list;
  replica_changes : replica_change list;
}

let analyze (inst : Instance.t) ~p (part : Partitioning.t) =
  let stats = Stats.compute inst ~p in
  (match Partitioning.validate stats part with
   | Ok () -> ()
   | Error e -> invalid_arg ("Advisor.analyze: " ^ e));
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = part.Partitioning.num_sites in
  (* colsum.(a).(s) = sum of c1(t,a) over transactions homed at s;
     forced.(a).(s) = #transactions homed at s reading a. *)
  let colsum = Array.init na (fun _ -> Array.make ns 0.) in
  let forced = Array.init na (fun _ -> Array.make ns 0) in
  for t = 0 to nt - 1 do
    let home = part.Partitioning.txn_site.(t) in
    for a = 0 to na - 1 do
      colsum.(a).(home) <- colsum.(a).(home) +. stats.Stats.c1.{t, a};
      if stats.Stats.phi.(t).(a) then forced.(a).(home) <- forced.(a).(home) + 1
    done
  done;
  let replica_cost a s = stats.Stats.c2.(a) +. colsum.(a).(s) in
  (* transaction moves *)
  let txn_moves = ref [] in
  for t = 0 to nt - 1 do
    let s = part.Partitioning.txn_site.(t) in
    for s' = 0 to ns - 1 do
      if s' <> s then begin
        let delta = ref 0. and new_replicas = ref [] in
        for a = 0 to na - 1 do
          let c1 = stats.Stats.c1.{t, a} in
          let newly_forced =
            stats.Stats.phi.(t).(a) && not part.Partitioning.placed.(a).(s')
          in
          if newly_forced then begin
            delta := !delta +. replica_cost a s';
            new_replicas := a :: !new_replicas
          end;
          if part.Partitioning.placed.(a).(s') || newly_forced then
            delta := !delta +. c1;
          if part.Partitioning.placed.(a).(s) then delta := !delta -. c1
        done;
        txn_moves :=
          { txn = t; to_site = s'; delta = !delta;
            forced_replicas = List.rev !new_replicas }
          :: !txn_moves
      end
    done
  done;
  (* replica additions and drops *)
  let replica_changes = ref [] in
  for a = 0 to na - 1 do
    for s = 0 to ns - 1 do
      if part.Partitioning.placed.(a).(s) then begin
        if forced.(a).(s) = 0 && Partitioning.replicas part a > 1 then
          replica_changes :=
            { attr = a; site = s; action = `Drop; delta = -.(replica_cost a s) }
            :: !replica_changes
      end
      else
        replica_changes :=
          { attr = a; site = s; action = `Add; delta = replica_cost a s }
          :: !replica_changes
    done
  done;
  {
    base_cost = Cost_model.cost stats part;
    txn_moves =
      List.sort
        (fun (x : txn_move) y -> compare (x.delta, x.txn) (y.delta, y.txn))
        !txn_moves;
    replica_changes =
      List.sort
        (fun (x : replica_change) y -> compare (x.delta, x.attr) (y.delta, y.attr))
        !replica_changes;
  }

let best_improvement r =
  let best = ref 0. in
  List.iter
    (fun (m : txn_move) -> if m.delta < !best then best := m.delta)
    r.txn_moves;
  List.iter
    (fun (c : replica_change) -> if c.delta < !best then best := c.delta)
    r.replica_changes;
  !best

let pp (inst : Instance.t) ?(limit = 10) ppf r =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  Format.fprintf ppf "@[<v>base cost (objective 4): %.4g@," r.base_cost;
  Format.fprintf ppf "transaction moves (best %d):@," limit;
  List.iteri
    (fun i (m : txn_move) ->
       if i < limit then
         Format.fprintf ppf "  %+10.1f  move %s -> site %d%s@," m.delta
           (Workload.transaction wl m.txn).Workload.t_name (m.to_site + 1)
           (match m.forced_replicas with
            | [] -> ""
            | reps ->
              Printf.sprintf " (replicating %d attrs)" (List.length reps)))
    r.txn_moves;
  Format.fprintf ppf "replica changes (best %d):@," limit;
  List.iteri
    (fun i (c : replica_change) ->
       if i < limit then
         Format.fprintf ppf "  %+10.1f  %s %s %s site %d@," c.delta
           (match c.action with `Add -> "add" | `Drop -> "drop")
           (Schema.attr_name schema c.attr)
           (match c.action with `Add -> "to" | `Drop -> "from")
           (c.site + 1))
    r.replica_changes;
  Format.fprintf ppf "@]"

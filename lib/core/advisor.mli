(** What-if analysis: exact marginal costs of local changes.

    Given a partitioning, a DBA (or an external tool) often wants to know
    what each small deviation would cost {e before} re-running a solver:
    move one transaction, add one replica, drop one.  This module computes
    the exact objective-(4) delta of every such single change, using the
    same algebra as the solvers (the cost of attribute [a] on site [s] is
    [c2(a) + Σ_{t homed at s} c1(t,a)], and moving transaction [t] also
    pays for the replicas single-sitedness forces).

    A partitioning is {e locally optimal} when no delta is negative; the
    QP's optimum satisfies this up to the MIP gap (tested). *)

type txn_move = {
  txn : int;
  to_site : int;
  delta : float;                 (** change in objective (4); negative = improvement *)
  forced_replicas : int list;    (** attributes that would gain a copy on [to_site] *)
}

type replica_change = {
  attr : int;
  site : int;
  action : [ `Add | `Drop ];
  delta : float;
}

type report = {
  base_cost : float;                  (** objective (4) of the input *)
  txn_moves : txn_move list;          (** every (t, s ≠ home), ascending delta *)
  replica_changes : replica_change list;
      (** every legal add/drop, ascending delta; drops of forced or last
          copies are omitted (they would be infeasible) *)
}

val analyze : Instance.t -> p:float -> Partitioning.t -> report
(** @raise Invalid_argument if the partitioning does not validate. *)

val best_improvement : report -> float
(** The most negative delta in the report, or [0.] if none — zero means
    the partitioning is locally optimal under single moves. *)

val pp : Instance.t -> ?limit:int -> Format.formatter -> report -> unit
(** Human-readable top-[limit] (default 10) moves of each kind. *)

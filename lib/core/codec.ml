let instance_to_json (inst : Instance.t) =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  let tables =
    List.init (Schema.num_tables schema) (fun tid ->
        Json.Obj
          [ ("table", Json.String (Schema.table_name schema tid));
            ( "attrs",
              Json.List
                (List.map
                   (fun a ->
                      Json.Obj
                        [ ( "name",
                            Json.String
                              schema.Schema.attributes.(a).Schema.attr_name );
                          ("width", Json.Int (Schema.attr_width schema a));
                        ])
                   (Schema.attrs_of_table schema tid)) );
          ])
  in
  let queries =
    List.init (Workload.num_queries wl) (fun qid ->
        let q = Workload.query wl qid in
        Json.Obj
          [ ("name", Json.String q.Workload.q_name);
            ( "kind",
              Json.String (if Workload.is_write q then "write" else "read") );
            ("freq", Json.Float q.Workload.freq);
            ( "tables",
              Json.List
                (List.map
                   (fun (tid, rows) ->
                      Json.Obj
                        [ ("table", Json.String (Schema.table_name schema tid));
                          ("rows", Json.Float rows);
                        ])
                   q.Workload.tables) );
            ( "attrs",
              Json.List
                (List.map
                   (fun a -> Json.String (Schema.attr_name schema a))
                   q.Workload.attrs) );
          ])
  in
  let transactions =
    List.init (Workload.num_transactions wl) (fun tid ->
        let t = Workload.transaction wl tid in
        Json.Obj
          [ ("name", Json.String t.Workload.t_name);
            ( "queries",
              Json.List
                (List.map
                   (fun qid ->
                      Json.String (Workload.query wl qid).Workload.q_name)
                   t.Workload.queries) );
          ])
  in
  Json.Obj
    [ ("name", Json.String inst.Instance.name);
      ("schema", Json.List tables);
      ("queries", Json.List queries);
      ("transactions", Json.List transactions);
    ]

(* Prefix decode failures with the offending element's position so a bad
   field in a long instance file is locatable ("Codec: queries[17]: ..."). *)
let in_ctx ctx f =
  try f () with Invalid_argument msg -> invalid_arg (ctx ^ ": " ^ msg)

let instance_of_json json =
  let name =
    match Json.member "name" json with
    | Json.String s -> s
    | Json.Null -> "instance"
    | _ -> invalid_arg "Codec: \"name\" must be a string"
  in
  let schema_spec =
    List.mapi
      (fun i tbl ->
         in_ctx (Printf.sprintf "Codec: schema[%d]" i) @@ fun () ->
         let tname = Json.(to_str (member "table" tbl)) in
         let attrs =
           List.mapi
             (fun j a ->
                in_ctx (Printf.sprintf "table %S: attrs[%d]" tname j) @@ fun () ->
                (Json.(to_str (member "name" a)), Json.(to_int (member "width" a))))
             Json.(to_list (member "attrs" tbl))
         in
         (tname, attrs))
      Json.(to_list (member "schema" json))
  in
  let schema = Schema.make schema_spec in
  let split_qualified s =
    match String.index_opt s '.' with
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None ->
      invalid_arg
        (Printf.sprintf "attribute %S is not qualified (expected \"Table.ATTR\")" s)
  in
  let queries_json = Json.(to_list (member "queries" json)) in
  let query_index = Hashtbl.create 16 in
  let queries =
    List.mapi
      (fun i qj ->
         in_ctx (Printf.sprintf "Codec: queries[%d]" i) @@ fun () ->
         let qname = Json.(to_str (member "name" qj)) in
         Hashtbl.replace query_index qname i;
         let kind =
           match Json.(to_str (member "kind" qj)) with
           | "read" -> Workload.Read
           | "write" -> Workload.Write
           | k -> invalid_arg (Printf.sprintf "query %S: bad kind %S" qname k)
         in
         let tables =
           List.mapi
             (fun j tj ->
                in_ctx (Printf.sprintf "query %S: tables[%d]" qname j) @@ fun () ->
                let tname = Json.(to_str (member "table" tj)) in
                let tid =
                  try Schema.find_table schema tname
                  with Not_found ->
                    invalid_arg (Printf.sprintf "unknown table %S" tname)
                in
                (tid, Json.(to_float (member "rows" tj))))
             Json.(to_list (member "tables" qj))
         in
         let attrs =
           List.mapi
             (fun j aj ->
                in_ctx (Printf.sprintf "query %S: attrs[%d]" qname j) @@ fun () ->
                let full = Json.to_str aj in
                let t, a = split_qualified full in
                try Schema.find_attr schema t a
                with Not_found ->
                  invalid_arg (Printf.sprintf "unknown attribute %S" full))
             Json.(to_list (member "attrs" qj))
         in
         {
           Workload.q_name = qname;
           kind;
           freq = Json.(to_float (member "freq" qj));
           tables;
           attrs;
         })
      queries_json
  in
  let transactions =
    List.mapi
      (fun i tj ->
         in_ctx (Printf.sprintf "Codec: transactions[%d]" i) @@ fun () ->
         let tname = Json.(to_str (member "name" tj)) in
         let qids =
           List.mapi
             (fun j qj ->
                in_ctx (Printf.sprintf "transaction %S: queries[%d]" tname j)
                @@ fun () ->
                let qname = Json.to_str qj in
                match Hashtbl.find_opt query_index qname with
                | Some i -> i
                | None -> invalid_arg (Printf.sprintf "unknown query %S" qname))
             Json.(to_list (member "queries" tj))
         in
         { Workload.t_name = tname; queries = qids })
      Json.(to_list (member "transactions" json))
  in
  Instance.make ~name schema (Workload.make ~queries ~transactions)

let load_instance path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  instance_of_json (Json.of_string content)

let save_instance path inst =
  let oc = open_out_bin path in
  output_string oc (Json.to_string (instance_to_json inst));
  output_string oc "\n";
  close_out oc

let partitioning_of_json (inst : Instance.t) json =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  let num_sites = Json.(to_int (member "num_sites" json)) in
  let part =
    Partitioning.create ~num_sites
      ~num_txns:(Workload.num_transactions wl)
      ~num_attrs:(Schema.num_attrs schema)
  in
  let txn_index = Hashtbl.create 8 in
  for t = 0 to Workload.num_transactions wl - 1 do
    Hashtbl.replace txn_index (Workload.transaction wl t).Workload.t_name t
  done;
  let assigned = Array.make (Workload.num_transactions wl) false in
  List.iteri
    (fun i site_json ->
       in_ctx (Printf.sprintf "Codec: sites[%d]" i) @@ fun () ->
       let s = Json.(to_int (member "site" site_json)) in
       if s < 0 || s >= num_sites then
         invalid_arg
           (Printf.sprintf "site %d out of range 0..%d" s (num_sites - 1));
       List.iteri
         (fun j tj ->
            in_ctx (Printf.sprintf "transactions[%d]" j) @@ fun () ->
            let name = Json.to_str tj in
            match Hashtbl.find_opt txn_index name with
            | Some t ->
              part.Partitioning.txn_site.(t) <- s;
              assigned.(t) <- true
            | None -> invalid_arg (Printf.sprintf "unknown transaction %S" name))
         Json.(to_list (member "transactions" site_json));
       List.iteri
         (fun j aj ->
            in_ctx (Printf.sprintf "attributes[%d]" j) @@ fun () ->
            let full = Json.to_str aj in
            match String.index_opt full '.' with
            | None ->
              invalid_arg
                (Printf.sprintf "attribute %S is not qualified (expected \
                                 \"Table.ATTR\")" full)
            | Some i ->
              let tname = String.sub full 0 i
              and aname = String.sub full (i + 1) (String.length full - i - 1) in
              (match Schema.find_attr schema tname aname with
               | a -> part.Partitioning.placed.(a).(s) <- true
               | exception Not_found ->
                 invalid_arg (Printf.sprintf "unknown attribute %S" full)))
         Json.(to_list (member "attributes" site_json)))
    Json.(to_list (member "sites" json));
  Array.iteri
    (fun t ok ->
       if not ok then
         invalid_arg
           (Printf.sprintf "Codec: transaction %S assigned to no site"
              (Workload.transaction wl t).Workload.t_name))
    assigned;
  part

let load_partitioning inst path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  partitioning_of_json inst (Json.of_string content)

let partitioning_to_json (inst : Instance.t) (part : Partitioning.t) =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  let sites =
    List.init part.Partitioning.num_sites (fun s ->
        Json.Obj
          [ ("site", Json.Int s);
            ( "transactions",
              Json.List
                (List.map
                   (fun t ->
                      Json.String (Workload.transaction wl t).Workload.t_name)
                   (Partitioning.txns_on_site part s)) );
            ( "attributes",
              Json.List
                (List.map
                   (fun a -> Json.String (Schema.attr_name schema a))
                   (Partitioning.attrs_on_site part s)) );
          ])
  in
  Json.Obj
    [ ("instance", Json.String inst.Instance.name);
      ("num_sites", Json.Int part.Partitioning.num_sites);
      ("sites", Json.List sites);
    ]

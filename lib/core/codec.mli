(** JSON (de)serialization of instances and partitionings.

    Since the paper laments the lack of "an official OLTP testbed — a
    library containing realistic OLTP workloads, schemas and statistics"
    (§6), the library defines a small interchange format so instances can
    be saved, shared and re-loaded:

    {v
    { "name": "...",
      "schema": [ { "table": "T", "attrs": [ {"name": "A", "width": 4} ] } ],
      "queries": [ { "name": "q0", "kind": "read" | "write", "freq": 1.0,
                     "tables": [ {"table": "T", "rows": 1.0} ],
                     "attrs": [ "T.A", ... ] } ],
      "transactions": [ { "name": "t0", "queries": ["q0", ...] } ] }
    v} *)

val instance_to_json : Instance.t -> Json.t

val instance_of_json : Json.t -> Instance.t
(** @raise Invalid_argument on malformed documents (with the offending
    field in the message). *)

val load_instance : string -> Instance.t
(** Read and parse an instance file.  @raise Sys_error, Json.Parse_error or
    Invalid_argument. *)

val save_instance : string -> Instance.t -> unit

val partitioning_to_json : Instance.t -> Partitioning.t -> Json.t
(** Self-describing rendering: per site, transaction names and qualified
    attribute names. *)

val partitioning_of_json : Instance.t -> Json.t -> Partitioning.t
(** Parse the {!partitioning_to_json} format back against an instance.
    @raise Invalid_argument on unknown names or missing transactions. *)

val load_partitioning : Instance.t -> string -> Partitioning.t
(** Read a partitioning file (as written by the CLI's [solve --json]). *)

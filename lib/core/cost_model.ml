type breakdown = {
  read_local : float;
  write_local : float;
  transfer : float;
  site_work : float array;
}

let cost (stats : Stats.t) (part : Partitioning.t) =
  let acc = ref 0. in
  (* quadratic part: for each transaction only its home site matters *)
  for tx = 0 to stats.Stats.num_txns - 1 do
    let home = part.Partitioning.txn_site.(tx) in
    let c1 = stats.Stats.c1 in
    for a = 0 to stats.Stats.num_attrs - 1 do
      if part.Partitioning.placed.(a).(home) then acc := !acc +. c1.{tx, a}
    done
  done;
  (* linear part *)
  for a = 0 to stats.Stats.num_attrs - 1 do
    let c2a = stats.Stats.c2.(a) in
    if c2a <> 0. then begin
      let row = part.Partitioning.placed.(a) in
      for s = 0 to part.Partitioning.num_sites - 1 do
        if row.(s) then acc := !acc +. c2a
      done
    end
  done;
  !acc

let site_work (stats : Stats.t) (part : Partitioning.t) =
  let work = Array.make part.Partitioning.num_sites 0. in
  for tx = 0 to stats.Stats.num_txns - 1 do
    let home = part.Partitioning.txn_site.(tx) in
    let c3 = stats.Stats.c3 in
    for a = 0 to stats.Stats.num_attrs - 1 do
      if part.Partitioning.placed.(a).(home) then
        work.(home) <- work.(home) +. c3.{tx, a}
    done
  done;
  for a = 0 to stats.Stats.num_attrs - 1 do
    let c4a = stats.Stats.c4.(a) in
    if c4a <> 0. then begin
      let row = part.Partitioning.placed.(a) in
      for s = 0 to part.Partitioning.num_sites - 1 do
        if row.(s) then work.(s) <- work.(s) +. c4a
      done
    end
  done;
  work

let max_site_work stats part =
  Array.fold_left Float.max 0. (site_work stats part)

let objective stats ~lambda part =
  (lambda *. cost stats part) +. ((1. -. lambda) *. max_site_work stats part)

let breakdown (inst : Instance.t) (part : Partitioning.t) =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  let read_local = ref 0. and write_local = ref 0. and transfer = ref 0. in
  let site_work = Array.make part.Partitioning.num_sites 0. in
  for tx = 0 to Workload.num_transactions wl - 1 do
    let home = part.Partitioning.txn_site.(tx) in
    let txn = Workload.transaction wl tx in
    List.iter
      (fun qid ->
         let q = Workload.query wl qid in
         if Workload.is_write q then begin
           (* AW: pay every attribute of touched tables on every replica *)
           List.iter
             (fun (table, rows) ->
                List.iter
                  (fun a ->
                     let wa =
                       float_of_int (Schema.attr_width schema a)
                       *. q.Workload.freq *. rows
                     in
                     let row = part.Partitioning.placed.(a) in
                     for s = 0 to part.Partitioning.num_sites - 1 do
                       if row.(s) then begin
                         write_local := !write_local +. wa;
                         site_work.(s) <- site_work.(s) +. wa
                       end
                     done)
                  (Schema.attrs_of_table schema table))
             q.Workload.tables;
           (* B: updated attributes shipped to non-home replicas *)
           List.iter
             (fun a ->
                let wa = Stats.w inst ~a ~q:qid in
                let row = part.Partitioning.placed.(a) in
                for s = 0 to part.Partitioning.num_sites - 1 do
                  if row.(s) && s <> home then transfer := !transfer +. wa
                done)
             q.Workload.attrs
         end
         else
           (* AR: whole local fractions of touched tables at the home site *)
           List.iter
             (fun (table, rows) ->
                List.iter
                  (fun a ->
                     if part.Partitioning.placed.(a).(home) then begin
                       let wa =
                         float_of_int (Schema.attr_width schema a)
                         *. q.Workload.freq *. rows
                       in
                       read_local := !read_local +. wa;
                       site_work.(home) <- site_work.(home) +. wa
                     end)
                  (Schema.attrs_of_table schema table))
             q.Workload.tables)
      txn.Workload.queries
  done;
  {
    read_local = !read_local;
    write_local = !write_local;
    transfer = !transfer;
    site_work;
  }

let latency (inst : Instance.t) ~pl (part : Partitioning.t) =
  let wl = inst.Instance.workload in
  let total = ref 0. in
  for tx = 0 to Workload.num_transactions wl - 1 do
    let home = part.Partitioning.txn_site.(tx) in
    let txn = Workload.transaction wl tx in
    List.iter
      (fun qid ->
         let q = Workload.query wl qid in
         if Workload.is_write q then begin
           let remote = ref false in
           List.iter
             (fun a ->
                let row = part.Partitioning.placed.(a) in
                for s = 0 to part.Partitioning.num_sites - 1 do
                  if row.(s) && s <> home then remote := true
                done)
             q.Workload.attrs;
           if !remote then total := !total +. q.Workload.freq
         end)
      txn.Workload.queries
  done;
  pl *. !total

let pp_breakdown ppf b =
  Format.fprintf ppf
    "@[<v>read local   : %12.0f bytes@,write local  : %12.0f bytes@,\
     transfer     : %12.0f bytes@,site work    : @[<h>%a@]@]"
    b.read_local b.write_local b.transfer
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf w ->
         Format.fprintf ppf "%.0f" w))
    (Array.to_list b.site_work)

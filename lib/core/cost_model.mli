(** The paper's cost model: objectives (1)/(4) and (6).

    Two evaluation paths are provided on purpose:

    - {!cost} and {!objective} work from the precomputed {!Stats.t}
      coefficients — this is the fast path used inside the solvers and is
      algebraically identical to program (4)'s objective;
    - {!breakdown} re-derives the read/write/transfer components directly
      from the instance definition (summing over queries and sites), giving
      an independent implementation whose total must equal {!cost}.  Tests
      and the {!Engine} storage simulator cross-check against it.

    Terminology (Section 2.1): [A = AR + AW] is local storage-layer access
    (bytes read + written), [B] is inter-site transfer, and the total cost
    of a partitioning is [A + p·B].  Load balancing enters through the work
    of the maximally loaded site (equation (5)), weighted by [1 - λ]. *)

type breakdown = {
  read_local : float;     (** AR: bytes read by access methods at home sites *)
  write_local : float;    (** AW: bytes written on every replica site *)
  transfer : float;       (** B: bytes shipped to non-home replica sites *)
  site_work : float array;(** per-site work, equation (5) *)
}

val cost : Stats.t -> Partitioning.t -> float
(** Objective (4): [Σ c1(a,t)·x_{t,s}·y_{a,s} + Σ c2(a)·y_{a,s}]
    = [A + p·B].  This is "the actual cost of a solution" that all paper
    tables report, regardless of λ. *)

val site_work : Stats.t -> Partitioning.t -> float array
(** Equation (5) per site. *)

val max_site_work : Stats.t -> Partitioning.t -> float

val objective : Stats.t -> lambda:float -> Partitioning.t -> float
(** Objective (6): [λ·cost + (1-λ)·max_site_work].  This is what both
    solvers minimize. *)

val breakdown : Instance.t -> Partitioning.t -> breakdown
(** Direct evaluation from the instance (independent of {!Stats}).
    Invariant: [read_local + write_local + p·transfer = cost] for the [p]
    the stats were computed with ([transfer] is reported unweighted). *)

val latency : Instance.t -> pl:float -> Partitioning.t -> float
(** Appendix A estimate: [pl · Σ_q f_q · ψ_q] where [ψ_q] indicates that
    write query [q] updates at least one attribute replicated on a site
    other than its transaction's home site (reads never touch remote sites
    because single-sitedness is enforced). *)

val pp_breakdown : Format.formatter -> breakdown -> unit

(* Incremental evaluation of objective (6).  See delta_cost.mli for the
   contract; the invariants maintained here mirror Cost_model exactly:

     quad.(t)   = Σ_a c1.(t).(a) · [placed.(a).(home t)]
     workq.(t)  = Σ_a c3.(t).(a) · [placed.(a).(home t)]
     work.(s)   = Σ_{t at s} workq.(t) + Σ_a c4.(a) · [placed.(a).(s)]
     cost_quad  = Σ_t quad.(t)
     cost_lin   = Σ_a c2.(a) · repl.(a)
     lat.wq_rc.(q) = Σ_{a ∈ attrs q} (repl.(a) − [placed.(a).(home q)])
     lat.total  = Σ_{write q, wq_rc > 0} f_q          (ψ_q of Appendix A)

   so that objective (6) = λ·(cost_quad + cost_lin)
                           + (1−λ)·max_s work.(s) [+ λ·pl·lat.total].

   A per-site transaction index (site_txns/site_len/pos, swap-remove)
   makes a Flip O(transactions homed on the flipped site) instead of
   O(all transactions). *)

type prim =
  | PFlip of int * int          (* attr, site: toggle *)
  | PAssign of int * int        (* txn, site it came from *)

type move =
  | Flip of int * int
  | Assign of int * int
  | Move_component of int array * int array * int

type lat = {
  pl : float;
  wq_txn : int array;           (* home transaction of each write query *)
  wq_freq : float array;
  wq_attrs : int array array;
  wq_rc : int array;            (* remote-replica count, ψ_q = rc > 0 *)
  attr_wqs : int array array;   (* attr -> write queries accessing it *)
  txn_wqs : int array array;    (* txn -> its write queries *)
  mutable total : float;
}

type t = {
  stats : Stats.t;
  lambda : float;
  part : Partitioning.t;
  quad : Vec.t;
  workq : Vec.t;
  work : Vec.t;
  mutable cost_quad : float;
  mutable cost_lin : float;
  repl : int array;
  site_txns : int array array;
  site_len : int array;
  pos : int array;
  lat : lat option;
  mutable journal : prim list list;
  mutable jlen : int;
  mutable nmoves : int;
}

let partitioning t = t.part
let moves_applied t = t.nmoves
let replicas t a = t.repl.(a)
let cost t = t.cost_quad +. t.cost_lin

let max_site_work t =
  (* same fold as Cost_model.max_site_work: max over sites, floor 0 *)
  let m = ref 0. in
  for s = 0 to Vec.length t.work - 1 do
    m := Float.max !m t.work.{s}
  done;
  !m

let site_work t = Vec.to_array t.work

let objective t =
  let base =
    (t.lambda *. cost t) +. ((1. -. t.lambda) *. max_site_work t)
  in
  match t.lat with
  | None -> base
  | Some l -> base +. (t.lambda *. l.pl *. l.total)

(* ------------------------------------------------------------------ *)
(* Cache construction / resync                                         *)
(* ------------------------------------------------------------------ *)

let make_lat (inst : Instance.t) pl =
  let wl = inst.Instance.workload in
  let nq = Workload.num_queries wl in
  let writes = ref [] in
  for q = nq - 1 downto 0 do
    if Workload.is_write (Workload.query wl q) then writes := q :: !writes
  done;
  let wq = Array.of_list !writes in
  let wq_txn = Array.map (Workload.txn_of_query wl) wq in
  let wq_freq = Array.map (fun q -> (Workload.query wl q).Workload.freq) wq in
  let wq_attrs =
    Array.map (fun q -> Array.of_list (Workload.query wl q).Workload.attrs) wq
  in
  let na = Instance.num_attrs inst and nt = Instance.num_transactions inst in
  let bucket n keys_of m =
    let counts = Array.make n 0 in
    for i = 0 to m - 1 do
      List.iter (fun k -> counts.(k) <- counts.(k) + 1) (keys_of i)
    done;
    let out = Array.init n (fun k -> Array.make counts.(k) 0) in
    let fill = Array.make n 0 in
    for i = 0 to m - 1 do
      List.iter
        (fun k ->
           out.(k).(fill.(k)) <- i;
           fill.(k) <- fill.(k) + 1)
        (keys_of i)
    done;
    out
  in
  let nw = Array.length wq in
  let attr_wqs = bucket na (fun i -> Array.to_list wq_attrs.(i)) nw in
  let txn_wqs = bucket nt (fun i -> [ wq_txn.(i) ]) nw in
  {
    pl;
    wq_txn;
    wq_freq;
    wq_attrs;
    wq_rc = Array.make nw 0;
    attr_wqs;
    txn_wqs;
    total = 0.;
  }

(* rc of one write query, from scratch, for an (assumed) home site. *)
let fresh_rc t (l : lat) i home =
  let rc = ref 0 in
  Array.iter
    (fun a ->
       rc := !rc + t.repl.(a) - (if t.part.Partitioning.placed.(a).(home) then 1 else 0))
    l.wq_attrs.(i);
  !rc

let rebuild t =
  let stats = t.stats and part = t.part in
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = part.Partitioning.num_sites in
  Vec.fill t.work 0.;
  Array.fill t.site_len 0 ns 0;
  t.cost_quad <- 0.;
  t.cost_lin <- 0.;
  for tx = 0 to nt - 1 do
    let home = part.Partitioning.txn_site.(tx) in
    let c1t = Vec.row stats.Stats.c1 tx and c3t = Vec.row stats.Stats.c3 tx in
    let q = ref 0. and w = ref 0. in
    for a = 0 to na - 1 do
      if part.Partitioning.placed.(a).(home) then begin
        q := !q +. c1t.{a};
        w := !w +. c3t.{a}
      end
    done;
    t.quad.{tx} <- !q;
    t.workq.{tx} <- !w;
    t.cost_quad <- t.cost_quad +. !q;
    t.work.{home} <- t.work.{home} +. !w;
    t.pos.(tx) <- t.site_len.(home);
    t.site_txns.(home).(t.site_len.(home)) <- tx;
    t.site_len.(home) <- t.site_len.(home) + 1
  done;
  for a = 0 to na - 1 do
    let row = part.Partitioning.placed.(a) in
    let r = ref 0 in
    for s = 0 to ns - 1 do
      if row.(s) then begin
        incr r;
        t.work.{s} <- t.work.{s} +. stats.Stats.c4.(a)
      end
    done;
    t.repl.(a) <- !r;
    t.cost_lin <- t.cost_lin +. (float_of_int !r *. stats.Stats.c2.(a))
  done;
  match t.lat with
  | None -> ()
  | Some l ->
    l.total <- 0.;
    for i = 0 to Array.length l.wq_rc - 1 do
      let rc = fresh_rc t l i part.Partitioning.txn_site.(l.wq_txn.(i)) in
      l.wq_rc.(i) <- rc;
      if rc > 0 then l.total <- l.total +. l.wq_freq.(i)
    done

let resync t = rebuild t

(* Pooled buffers for repeated [create] calls over same-shaped problems
   (the batch service): {!rebuild} overwrites every cache entry it will
   later read, so reusing buffers verbatim cannot change any value a
   fresh evaluator would compute — bit-identity is structural, not
   numerical luck. *)
module Workspace = struct
  type buffers = {
    nt : int;
    na : int;
    ns : int;
    quad : Vec.t;
    workq : Vec.t;
    work : Vec.t;
    repl : int array;
    site_txns : int array array;
    site_len : int array;
    pos : int array;
  }

  type t = { mutable cached : buffers option }

  let create () = { cached = None }

  let buffers ws ~nt ~na ~ns =
    match ws.cached with
    | Some b when b.nt = nt && b.na = na && b.ns = ns -> b
    | _ ->
      let b =
        {
          nt;
          na;
          ns;
          quad = Vec.create nt;
          workq = Vec.create nt;
          work = Vec.create ns;
          repl = Array.make na 0;
          site_txns = Array.init ns (fun _ -> Array.make nt 0);
          site_len = Array.make ns 0;
          pos = Array.make nt 0;
        }
      in
      ws.cached <- Some b;
      b
end

let create ?workspace ?latency (stats : Stats.t) ~lambda
    (part : Partitioning.t) =
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = part.Partitioning.num_sites in
  let b =
    let ws =
      match workspace with Some ws -> ws | None -> Workspace.create ()
    in
    Workspace.buffers ws ~nt ~na ~ns
  in
  let t =
    {
      stats;
      lambda;
      part;
      quad = b.Workspace.quad;
      workq = b.Workspace.workq;
      work = b.Workspace.work;
      cost_quad = 0.;
      cost_lin = 0.;
      repl = b.Workspace.repl;
      site_txns = b.Workspace.site_txns;
      site_len = b.Workspace.site_len;
      pos = b.Workspace.pos;
      lat = Option.map (fun (inst, pl) -> make_lat inst pl) latency;
      journal = [];
      jlen = 0;
      nmoves = 0;
    }
  in
  rebuild t;
  t

(* ------------------------------------------------------------------ *)
(* Primitive moves                                                     *)
(* ------------------------------------------------------------------ *)

let set_rc (l : lat) i rc' =
  if rc' > 0 <> (l.wq_rc.(i) > 0) then
    l.total <-
      l.total +. (if rc' > 0 then l.wq_freq.(i) else -.l.wq_freq.(i));
  l.wq_rc.(i) <- rc'

let prim_flip t a s =
  t.nmoves <- t.nmoves + 1;
  let stats = t.stats and part = t.part in
  let row = part.Partitioning.placed.(a) in
  let adding = not row.(s) in
  let sign = if adding then 1. else -1. in
  row.(s) <- adding;
  t.repl.(a) <- t.repl.(a) + (if adding then 1 else -1);
  t.cost_lin <- t.cost_lin +. (sign *. stats.Stats.c2.(a));
  t.work.{s} <- t.work.{s} +. (sign *. stats.Stats.c4.(a));
  let lst = t.site_txns.(s) in
  for i = 0 to t.site_len.(s) - 1 do
    let tx = lst.(i) in
    let dq = sign *. stats.Stats.c1.{tx, a} in
    let dw = sign *. stats.Stats.c3.{tx, a} in
    t.quad.{tx} <- t.quad.{tx} +. dq;
    t.cost_quad <- t.cost_quad +. dq;
    t.workq.{tx} <- t.workq.{tx} +. dw;
    t.work.{s} <- t.work.{s} +. dw
  done;
  match t.lat with
  | None -> ()
  | Some l ->
    (* rc = Σ repl − [placed at home]: both terms move together when the
       flipped site is the query's home, so only off-home flips count. *)
    let d = if adding then 1 else -1 in
    Array.iter
      (fun i ->
         if part.Partitioning.txn_site.(l.wq_txn.(i)) <> s then
           set_rc l i (l.wq_rc.(i) + d))
      l.attr_wqs.(a)

(* Returns [false] (and does nothing) when [tx] is already on [s]. *)
let prim_assign t tx s =
  let stats = t.stats and part = t.part in
  let s_old = part.Partitioning.txn_site.(tx) in
  if s_old = s then false
  else begin
    t.nmoves <- t.nmoves + 1;
    (* swap-remove from the old site's transaction list *)
    let lst = t.site_txns.(s_old) in
    let last = t.site_len.(s_old) - 1 in
    let i = t.pos.(tx) in
    let moved = lst.(last) in
    lst.(i) <- moved;
    t.pos.(moved) <- i;
    t.site_len.(s_old) <- last;
    let lst' = t.site_txns.(s) in
    t.pos.(tx) <- t.site_len.(s);
    lst'.(t.site_len.(s)) <- tx;
    t.site_len.(s) <- t.site_len.(s) + 1;
    part.Partitioning.txn_site.(tx) <- s;
    t.cost_quad <- t.cost_quad -. t.quad.{tx};
    t.work.{s_old} <- t.work.{s_old} -. t.workq.{tx};
    (* fresh row widths against the new home (exact, not incremental) *)
    let c1t = Vec.row stats.Stats.c1 tx and c3t = Vec.row stats.Stats.c3 tx in
    let q = ref 0. and w = ref 0. in
    for a = 0 to stats.Stats.num_attrs - 1 do
      if part.Partitioning.placed.(a).(s) then begin
        q := !q +. c1t.{a};
        w := !w +. c3t.{a}
      end
    done;
    t.quad.{tx} <- !q;
    t.workq.{tx} <- !w;
    t.cost_quad <- t.cost_quad +. !q;
    t.work.{s} <- t.work.{s} +. !w;
    (match t.lat with
     | None -> ()
     | Some l ->
       Array.iter
         (fun i -> set_rc l i (fresh_rc t l i s))
         l.txn_wqs.(tx));
    true
  end

(* ------------------------------------------------------------------ *)
(* Journaled moves                                                     *)
(* ------------------------------------------------------------------ *)

let apply_move t move =
  let before = objective t in
  let prims = ref [] in
  let flip a s =
    prim_flip t a s;
    prims := PFlip (a, s) :: !prims
  in
  let assign tx s =
    let s_old = t.part.Partitioning.txn_site.(tx) in
    if prim_assign t tx s then prims := PAssign (tx, s_old) :: !prims
  in
  (match move with
   | Flip (a, s) -> flip a s
   | Assign (tx, s) -> assign tx s
   | Move_component (txns, attrs, s) ->
     (* place on the target first so rows never go empty mid-move *)
     Array.iter
       (fun a -> if not (t.part.Partitioning.placed.(a).(s)) then flip a s)
       attrs;
     Array.iter (fun tx -> assign tx s) txns;
     Array.iter
       (fun a ->
          let row = t.part.Partitioning.placed.(a) in
          for s' = 0 to t.part.Partitioning.num_sites - 1 do
            if s' <> s && row.(s') then flip a s'
          done)
       attrs);
  t.journal <- !prims :: t.journal;
  t.jlen <- t.jlen + 1;
  objective t -. before

let undo_move t =
  match t.journal with
  | [] -> invalid_arg "Delta_cost.undo_move: empty journal"
  | prims :: rest ->
    t.journal <- rest;
    t.jlen <- t.jlen - 1;
    (* [prims] holds the primitives most-recent-first: applying inverses
       in list order unwinds the composite exactly. *)
    List.iter
      (function
        | PFlip (a, s) -> prim_flip t a s
        | PAssign (tx, s_old) -> ignore (prim_assign t tx s_old))
      prims

let mark t = t.jlen

let undo_to t m =
  while t.jlen > m do
    undo_move t
  done

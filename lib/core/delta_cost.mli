(** Incremental (delta) evaluation of objective (6).

    {!Cost_model.objective} is O(txns × attrs × sites) per call; the
    annealer and the polish loops evaluate thousands of candidate layouts
    that each differ from the previous one by a single attribute flip or
    transaction re-assignment.  This module caches everything objective
    (1)/(4)/(6) needs — per-transaction home-site row widths, per-attribute
    replica counts, the per-site work vector of equation (5), and the
    Appendix-A latency indicators — and updates those caches in
    O(affected transactions) per move, returning the exact objective
    change.

    The evaluator is a {e cache}, not an oracle: the full
    {!Cost_model.objective} remains the ground truth that final claims and
    the C2xx certificates are checked against.  Incremental float updates
    drift by rounding; callers that run long move sequences should
    {!resync} periodically (the SA solver does so at every epoch
    boundary), and the delta-vs-full agreement is enforced by
    [test/test_delta.ml] and the [@lint] smoke. *)

type t
(** Evaluator state, wrapping (and mutating) a {!Partitioning.t}. *)

type move =
  | Flip of int * int
      (** [Flip (a, s)]: toggle [placed.(a).(s)] — add or drop the replica
          of attribute [a] on site [s].  O(transactions homed at [s]). *)
  | Assign of int * int
      (** [Assign (t, s)]: move transaction [t]'s home to site [s].
          O(attrs + t's write queries).  A no-op when [t] is already
          on [s]. *)
  | Move_component of int array * int array * int
      (** [Move_component (txns, attrs, s)]: re-home every listed
          transaction and re-place every listed attribute onto exactly
          site [s] (dropping their other replicas) — the disjoint-mode
          component move.  Undone as one unit by {!undo_move}. *)

(** Reusable cache buffers for repeated {!create} calls (the batch
    service's steady state).  A workspace caches the float vectors and
    site-index arrays for the last problem shape it saw; {!create} reuses
    them verbatim when the shape matches and reallocates otherwise.
    Because {!create}'s full rebuild pass overwrites every cache entry
    before it is read, a pooled evaluator is bit-identical to a fresh
    one.  A workspace must not back two live evaluators at once: each
    {!create} invalidates the previous evaluator drawn from the same
    workspace. *)
module Workspace : sig
  type t

  val create : unit -> t
end

val create :
  ?workspace:Workspace.t ->
  ?latency:Instance.t * float -> Stats.t -> lambda:float -> Partitioning.t -> t
(** [create ?workspace ?latency stats ~lambda part] builds the caches for
    [part] in one full O(txns × attrs) pass.  [part] is owned by the
    evaluator from here on: {!apply_move} mutates it in place
    ({!partitioning} returns it).  [latency = (inst, pl)] additionally
    folds the Appendix-A term [lambda·pl·Σ_q f_q·ψ_q] into {!objective},
    matching the annealed objective of {!Sa_solver} ([inst] must be the
    instance [stats] was computed from).  [workspace] pools the cache
    buffers across calls; see {!Workspace}. *)

val apply_move : t -> move -> float
(** Apply the move to the wrapped partitioning and every cache; returns
    the exact objective-(6) change (new − old, negative = improvement).
    The move is pushed on the undo journal. *)

val undo_move : t -> unit
(** Revert the most recent un-undone {!apply_move} (composites revert as
    one unit).  @raise Invalid_argument when the journal is empty. *)

val mark : t -> int
(** Journal position, for {!undo_to}. *)

val undo_to : t -> int -> unit
(** Undo every move applied after the given {!mark}. *)

val resync : t -> unit
(** Rebuild every cache from the wrapped partitioning (full O(txns ×
    attrs) pass), discarding accumulated float drift.  The journal stays
    valid: it records partitioning-level facts, not cache values. *)

val objective : t -> float
(** Cached objective (6): [lambda·cost + (1−lambda)·max_site_work]
    plus the latency term when enabled.  O(sites). *)

val cost : t -> float
(** Cached objective (4). *)

val max_site_work : t -> float

val site_work : t -> float array
(** Fresh copy of the per-site work vector (equation (5)). *)

val replicas : t -> int -> int
(** Cached replica count of an attribute. *)

val partitioning : t -> Partitioning.t
(** The wrapped (live, mutated-in-place) partitioning. *)

val moves_applied : t -> int
(** Total primitive cache updates performed ({!apply_move} and
    {!undo_move} both count their primitives) — the feed for the
    [sa.delta_evals] observability counter. *)

type t = {
  original : Instance.t;
  reduced : Instance.t;
  group_of_attr : int array;
  members : int array array;
}

let num_groups t = Array.length t.members

(* Signature of an attribute: which queries access it directly (alpha).
   beta is table-level and therefore constant within a table. *)
let access_signature (inst : Instance.t) =
  let na = Instance.num_attrs inst in
  let sig_ = Array.make na [] in
  let wl = inst.Instance.workload in
  for q = Workload.num_queries wl - 1 downto 0 do
    List.iter
      (fun a -> sig_.(a) <- q :: sig_.(a))
      (Workload.query wl q).Workload.attrs
  done;
  sig_

let compute (inst : Instance.t) =
  let schema = inst.Instance.schema in
  let na = Schema.num_attrs schema in
  let sig_ = access_signature inst in
  let group_of_attr = Array.make na (-1) in
  let members_rev = ref [] in
  let next_group = ref 0 in
  (* Group within each table by signature, preserving attribute order. *)
  for tid = 0 to Schema.num_tables schema - 1 do
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun a ->
         match Hashtbl.find_opt tbl sig_.(a) with
         | Some g ->
           group_of_attr.(a) <- g;
           members_rev :=
             List.map
               (fun (g', ms) -> if g' = g then (g', a :: ms) else (g', ms))
               !members_rev
         | None ->
           let g = !next_group in
           incr next_group;
           Hashtbl.add tbl sig_.(a) g;
           group_of_attr.(a) <- g;
           members_rev := (g, [ a ]) :: !members_rev)
      (Schema.attrs_of_table schema tid)
  done;
  let members = Array.make !next_group [||] in
  List.iter
    (fun (g, ms) -> members.(g) <- Array.of_list (List.rev ms))
    !members_rev;
  (* Reduced schema: one pseudo-attribute per group, width = sum. *)
  let spec =
    List.init (Schema.num_tables schema) (fun tid ->
        let groups =
          List.sort_uniq compare
            (List.map (fun a -> group_of_attr.(a)) (Schema.attrs_of_table schema tid))
        in
        ( Schema.table_name schema tid,
          List.map
            (fun g ->
               let width =
                 Array.fold_left
                   (fun acc a -> acc + Schema.attr_width schema a)
                   0 members.(g)
               in
               let name =
                 if Array.length members.(g) = 1 then
                   (inst.Instance.schema.Schema.attributes.(members.(g).(0)))
                     .Schema.attr_name
                 else
                   Printf.sprintf "grp%d(%d attrs)" g (Array.length members.(g))
               in
               (name, width))
            groups ))
  in
  let reduced_schema = Schema.make spec in
  (* Group ids coincide with reduced attribute ids because groups are
     created in table order and attribute order within tables. *)
  let wl = inst.Instance.workload in
  let queries =
    List.init (Workload.num_queries wl) (fun qid ->
        let q = Workload.query wl qid in
        { q with
          Workload.attrs =
            List.sort_uniq compare
              (List.map (fun a -> group_of_attr.(a)) q.Workload.attrs);
        })
  in
  let transactions =
    List.init (Workload.num_transactions wl) (fun tid -> Workload.transaction wl tid)
  in
  let reduced_wl = Workload.make ~queries ~transactions in
  let reduced =
    Instance.make ~name:(inst.Instance.name ^ "/grouped") reduced_schema reduced_wl
  in
  { original = inst; reduced; group_of_attr; members }

let identity (inst : Instance.t) =
  let na = Instance.num_attrs inst in
  {
    original = inst;
    reduced = inst;
    group_of_attr = Array.init na (fun a -> a);
    members = Array.init na (fun a -> [| a |]);
  }

let expand t (part : Partitioning.t) =
  let na = Instance.num_attrs t.original in
  let out =
    Partitioning.create ~num_sites:part.Partitioning.num_sites
      ~num_txns:(Array.length part.Partitioning.txn_site)
      ~num_attrs:na
  in
  Array.blit part.Partitioning.txn_site 0 out.Partitioning.txn_site 0
    (Array.length part.Partitioning.txn_site);
  for a = 0 to na - 1 do
    let g = t.group_of_attr.(a) in
    Array.blit part.Partitioning.placed.(g) 0 out.Partitioning.placed.(a) 0
      part.Partitioning.num_sites
  done;
  out

let restrict t (part : Partitioning.t) =
  let ng = num_groups t in
  let out =
    Partitioning.create ~num_sites:part.Partitioning.num_sites
      ~num_txns:(Array.length part.Partitioning.txn_site)
      ~num_attrs:ng
  in
  Array.blit part.Partitioning.txn_site 0 out.Partitioning.txn_site 0
    (Array.length part.Partitioning.txn_site);
  for g = 0 to ng - 1 do
    for s = 0 to part.Partitioning.num_sites - 1 do
      out.Partitioning.placed.(g).(s) <-
        Array.for_all (fun a -> part.Partitioning.placed.(a).(s)) t.members.(g)
    done
  done;
  out

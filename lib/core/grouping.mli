(** Attribute grouping — the paper's "reasonable cuts" reduction (§4).

    Attributes of the same table whose access pattern is identical across
    {e all} queries (the same α_{a,q} bit for every query [q]) receive the
    same coefficients per byte of width in every model term, so they can be
    fused into one pseudo-attribute whose width is the sum of the members'
    widths.  Distributing groups instead of attributes shrinks the integer
    program without changing the optimum of objective (4): the members of a
    group never interact and share a common optimal placement (exchange
    argument).

    Under load balancing (λ < 1) the reduction is no longer exact in
    general — splitting identical attributes across sites could balance
    work at a finer granularity — but it only coarsens the balance, never
    the cost term.  Both solvers use it by default and can be told not to. *)

type t = private {
  original : Instance.t;
  reduced : Instance.t;          (** pseudo-attribute instance *)
  group_of_attr : int array;     (** original attribute id -> group id *)
  members : int array array;     (** group id -> original attribute ids *)
}

val compute : Instance.t -> t
(** Group the instance.  The reduced instance has the same tables,
    transactions and queries; only attributes are fused. *)

val num_groups : t -> int

val identity : Instance.t -> t
(** The trivial grouping (one group per attribute), used when grouping is
    disabled. *)

val expand : t -> Partitioning.t -> Partitioning.t
(** Map a partitioning of the reduced instance back to the original
    attribute space (every member inherits its group's placement row). *)

val restrict : t -> Partitioning.t -> Partitioning.t
(** Map an original-space partitioning to the reduced space.  A group is
    placed on a site iff {e all} members are (used for cross-checks). *)

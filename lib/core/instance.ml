type t = { name : string; schema : Schema.t; workload : Workload.t }

let make ?(name = "instance") schema workload =
  (match Workload.validate schema workload with
   | Ok () -> ()
   | Error e -> invalid_arg ("Instance.make: " ^ e));
  { name; schema; workload }

let num_attrs t = Schema.num_attrs t.schema

let num_transactions t = Workload.num_transactions t.workload

let num_queries t = Workload.num_queries t.workload

let restrict_transactions t ids =
  let wl = t.workload in
  let nt = Workload.num_transactions wl in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun i ->
       if i < 0 || i >= nt then
         invalid_arg "Instance.restrict_transactions: id out of range";
       if Hashtbl.mem seen i then
         invalid_arg "Instance.restrict_transactions: duplicate id";
       Hashtbl.add seen i ())
    ids;
  let queries = ref [] and next = ref 0 in
  let transactions =
    List.map
      (fun i ->
         let txn = Workload.transaction wl i in
         let qids =
           List.map
             (fun q ->
                queries := Workload.query wl q :: !queries;
                incr next;
                !next - 1)
             txn.Workload.queries
         in
         { txn with Workload.queries = qids })
      ids
  in
  {
    t with
    name = t.name ^ "/restricted";
    workload = Workload.make ~queries:(List.rev !queries) ~transactions;
  }

let pp_summary ppf t =
  let writes = ref 0 in
  let w = t.workload in
  for q = 0 to Workload.num_queries w - 1 do
    if Workload.is_write (Workload.query w q) then incr writes
  done;
  Format.fprintf ppf "%s: |A|=%d |T|=%d queries=%d (%d writes)" t.name
    (num_attrs t) (num_transactions t) (num_queries t) !writes

(** A problem instance: schema plus workload.

    This is the input to both solvers — the paper's (schema, workload,
    statistics) triple. *)

type t = {
  name : string;
  schema : Schema.t;
  workload : Workload.t;
}

val make : ?name:string -> Schema.t -> Workload.t -> t
(** Build an instance.  @raise Invalid_argument if the workload does not
    validate against the schema (see {!Workload.validate}). *)

val num_attrs : t -> int
val num_transactions : t -> int
val num_queries : t -> int

val restrict_transactions : t -> int list -> t
(** Sub-instance containing only the listed transactions (in the given
    order) and their queries; the schema is unchanged.  Used by the
    iterative 20/80 solver (§4) to grow the workload batch by batch.
    @raise Invalid_argument on out-of-range or duplicate ids. *)

val pp_summary : Format.formatter -> t -> unit
(** One line: name, |A|, |T|, queries, write share. *)

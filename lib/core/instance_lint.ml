module D = Vpart_analysis.Diagnostic

let finite_pos lo hi v = Float.is_nan v || v < lo || v > hi

(* Sane magnitude window for frequencies and row counts: below it the
   statistic is indistinguishable from zero, above it almost certainly a
   unit mistake. *)
let stat_lo = 1e-9

let stat_hi = 1e12

let lint (inst : Instance.t) =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  let nt = Schema.num_tables schema and na = Schema.num_attrs schema in
  let nq = Workload.num_queries wl in
  let out = ref [] in
  let push d = out := d :: !out in
  (* schema-side: widths (Schema.make enforces these; keep the check so a
     future codec path cannot regress silently) *)
  for a = 0 to na - 1 do
    if Schema.attr_width schema a <= 0 then
      push
        (D.error ~code:"I002" "attribute %s: non-positive width %d"
           (Schema.attr_name schema a) (Schema.attr_width schema a))
  done;
  (* per-attribute access tracking *)
  let read = Array.make na false and written = Array.make na false in
  let any_read = ref false and any_write = ref false in
  for qid = 0 to nq - 1 do
    let q = Workload.query wl qid in
    let is_w = Workload.is_write q in
    if is_w then any_write := true else any_read := true;
    if q.Workload.freq <= 0. || Float.is_nan q.Workload.freq then
      push
        (D.error ~code:"I002" "query %s: non-positive frequency %g"
           q.Workload.q_name q.Workload.freq)
    else if finite_pos stat_lo stat_hi q.Workload.freq then
      push
        (D.warning ~code:"I007" "query %s: implausible frequency %g"
           q.Workload.q_name q.Workload.freq);
    let touched = List.map fst q.Workload.tables in
    List.iter
      (fun (tid, rows) ->
         if tid < 0 || tid >= nt then
           push
             (D.error ~code:"I001" "query %s: table id %d out of range (%d tables)"
                q.Workload.q_name tid nt)
         else begin
           if rows <= 0. || Float.is_nan rows then
             push
               (D.error ~code:"I002" "query %s: non-positive row count %g for %s"
                  q.Workload.q_name rows (Schema.table_name schema tid))
           else if finite_pos stat_lo stat_hi rows then
             push
               (D.warning ~code:"I007" "query %s: implausible row count %g for %s"
                  q.Workload.q_name rows (Schema.table_name schema tid));
           if
             not
               (List.exists
                  (fun a ->
                     a >= 0 && a < na && Schema.table_of_attr schema a = tid)
                  q.Workload.attrs)
           then
             push
               (D.warning ~code:"I006"
                  "query %s: touches table %s but accesses none of its attributes"
                  q.Workload.q_name (Schema.table_name schema tid))
         end)
      q.Workload.tables;
    List.iter
      (fun a ->
         if a < 0 || a >= na then
           push
             (D.error ~code:"I001"
                "query %s: attribute id %d out of range (%d attributes)"
                q.Workload.q_name a na)
         else begin
           (if is_w then written.(a) <- true else read.(a) <- true);
           if not (List.mem (Schema.table_of_attr schema a) touched) then
             push
               (D.error ~code:"I001"
                  "query %s: accesses %s but does not touch its table %s"
                  q.Workload.q_name (Schema.attr_name schema a)
                  (Schema.table_name schema
                     (Schema.table_of_attr schema a)))
         end)
      q.Workload.attrs
  done;
  for a = 0 to na - 1 do
    if not (read.(a) || written.(a)) then
      push
        (D.warning ~code:"I003"
           "attribute %s: accessed by no query (placement unconstrained)"
           (Schema.attr_name schema a))
    else if written.(a) && not read.(a) then
      push
        (D.warning ~code:"I004" "attribute %s: written but never read"
           (Schema.attr_name schema a))
  done;
  for t = 0 to Workload.num_transactions wl - 1 do
    let txn = Workload.transaction wl t in
    match txn.Workload.queries with
    | [] ->
      push
        (D.warning ~code:"I005" "transaction %s: contains no queries"
           txn.Workload.t_name)
    | qids ->
      let bad = List.exists (fun q -> q < 0 || q >= nq) qids in
      if bad then
        push
          (D.error ~code:"I001" "transaction %s: query id out of range (%d queries)"
             txn.Workload.t_name nq)
      else if
        List.for_all (fun q -> (Workload.query wl q).Workload.attrs = []) qids
      then
        push
          (D.warning ~code:"I005" "transaction %s: its queries access no attributes"
             txn.Workload.t_name)
  done;
  if nq > 0 && not !any_write then
    push
      (D.info ~code:"I008"
         "workload has no write queries: replication is free in the cost model");
  if nq > 0 && not !any_read then
    push
      (D.info ~code:"I008"
         "workload has no read queries: single-sitedness never binds");
  (* tables whose attributes are always co-accessed: grouping collapses them *)
  for tid = 0 to nt - 1 do
    let attrs = Schema.attrs_of_table schema tid in
    if List.length attrs > 1 then begin
      let accessed_once = ref false and always_all = ref true in
      for qid = 0 to nq - 1 do
        let q = Workload.query wl qid in
        let mine =
          List.filter
            (fun a -> a >= 0 && a < na && Schema.table_of_attr schema a = tid)
            q.Workload.attrs
        in
        if mine <> [] then begin
          accessed_once := true;
          if List.length (List.sort_uniq compare mine) <> List.length attrs then
            always_all := false
        end
      done;
      if !accessed_once && !always_all then
        push
          (D.info ~code:"I009"
             "table %s: all %d attributes are always co-accessed (grouping \
              collapses them)"
             (Schema.table_name schema tid) (List.length attrs))
    end
  done;
  List.rev !out

let lint_partitioning (inst : Instance.t) (part : Partitioning.t) =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  let na = Schema.num_attrs schema and nt = Workload.num_transactions wl in
  let ns = part.Partitioning.num_sites in
  let out = ref [] in
  let push d = out := d :: !out in
  let txn_name t = (Workload.transaction wl t).Workload.t_name in
  let shape_ok = ref true in
  if Array.length part.Partitioning.txn_site <> nt then begin
    shape_ok := false;
    push
      (D.error ~code:"P001" "partitioning covers %d transactions, instance has %d"
         (Array.length part.Partitioning.txn_site) nt)
  end;
  if Array.length part.Partitioning.placed <> na then begin
    shape_ok := false;
    push
      (D.error ~code:"P001" "partitioning covers %d attributes, instance has %d"
         (Array.length part.Partitioning.placed) na)
  end;
  Array.iteri
    (fun a row ->
       if Array.length row <> ns then begin
         shape_ok := false;
         push
           (D.error ~code:"P001"
              "attribute index %d: placement row has %d sites, partitioning \
               declares %d"
              a (Array.length row) ns)
       end)
    part.Partitioning.placed;
  if !shape_ok then begin
    Array.iteri
      (fun t s ->
         if s < 0 || s >= ns then
           push
             (D.error ~code:"P002"
                "transaction %s (index %d): homed on site %d, valid sites are \
                 0..%d"
                (txn_name t) t s (ns - 1)))
      part.Partitioning.txn_site;
    (* phi: which transactions *read* each attribute *)
    let readers = Array.make na [] in
    for t = 0 to nt - 1 do
      List.iter
        (fun qid ->
           let q = Workload.query wl qid in
           if not (Workload.is_write q) then
             List.iter
               (fun a ->
                  if a >= 0 && a < na && not (List.mem t readers.(a)) then
                    readers.(a) <- t :: readers.(a))
               q.Workload.attrs)
        (Workload.transaction wl t).Workload.queries
    done;
    for a = 0 to na - 1 do
      let row = part.Partitioning.placed.(a) in
      let name = Schema.attr_name schema a in
      if not (Array.exists Fun.id row) then
        push
          (D.error ~code:"P003"
             "attribute %s (index %d): placed on no site (coverage violated)"
             name a)
      else begin
        let reader_sites =
          List.filter_map
            (fun t ->
               let s = part.Partitioning.txn_site.(t) in
               if s >= 0 && s < ns then Some s else None)
            readers.(a)
        in
        List.iter
          (fun t ->
             let home = part.Partitioning.txn_site.(t) in
             if home >= 0 && home < ns && not row.(home) then
               push
                 (D.error ~code:"P004"
                    "transaction %s reads %s but site %d (its home) does not \
                     store it"
                    (txn_name t) name home))
          readers.(a);
        if readers.(a) <> [] then
          Array.iteri
            (fun s placed ->
               if placed && not (List.mem s reader_sites) then
                 push
                   (D.info ~code:"P005"
                      "attribute %s: replica on site %d serves no reading \
                       transaction (write cost only)"
                      name s))
            row
      end
    done;
    for s = 0 to ns - 1 do
      if
        Partitioning.txns_on_site part s = []
        && Partitioning.attrs_on_site part s = []
      then push (D.info ~code:"P006" "site %d: no transactions and no attributes" s)
    done
  end;
  List.rev !out

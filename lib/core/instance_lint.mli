(** Static analysis of problem instances and partitionings.

    The workload-sanity counterpart of {!Vpart_analysis.Model_lint}: checks
    an {!Instance.t} (schema + workload + statistics) and a
    {!Partitioning.t} for silent-garbage inputs before any solver runs —
    the same role the pre-optimization sanity passes play in partitioning
    advisors.  Findings share the {!Vpart_analysis.Diagnostic}
    representation; codes are catalogued in [docs/ANALYSIS.md].

    Instance codes:

    - [I001] {e error} — referential-integrity failure: a query references
      a table or attribute that does not resolve, or accesses an attribute
      of a table it does not touch;
    - [I002] {e error} — non-positive or non-finite statistic (query
      frequency, per-table row count) or attribute width;
    - [I003] {e warning} — attribute accessed by no query (its placement
      is unconstrained);
    - [I004] {e warning} — attribute that is written but never read;
    - [I005] {e warning} — degenerate transaction: no queries, or queries
      touching no attributes at all;
    - [I006] {e warning} — query that touches a table but accesses none of
      its attributes;
    - [I007] {e warning} — implausible statistic magnitude (frequency or
      row count outside [\[1e-9, 1e12\]] — usage probabilities and row
      counts outside this range are almost always unit mistakes);
    - [I008] {e info} — one-sided workload: no write queries (replication
      is free) or no read queries (single-sitedness never binds);
    - [I009] {e info} — table whose attributes are always co-accessed
      (attribute grouping will collapse it to one group). *)

val lint : Instance.t -> Vpart_analysis.Diagnostic.t list
(** Run every instance-level check. *)

(** Partitioning codes (all messages name the offending attribute,
    transaction and site):

    - [P001] {e error} — shape mismatch: transaction/attribute/site counts
      disagree with the instance;
    - [P002] {e error} — transaction homed on an out-of-range site;
    - [P003] {e error} — attribute placed on no site (coverage violated);
    - [P004] {e error} — single-sitedness violated: a transaction reads an
      attribute that is not placed on its home site;
    - [P005] {e info} — attribute replicated on a site none of its reading
      transactions is homed at (the replica only adds write cost);
    - [P006] {e info} — empty site: no transactions homed and no
      attributes placed there. *)

val lint_partitioning :
  Instance.t -> Partitioning.t -> Vpart_analysis.Diagnostic.t list
(** Run every partitioning-level check against the instance. *)

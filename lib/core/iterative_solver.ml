type options = {
  qp : Qp_solver.options;
  rounds : int;
  first_fraction : float;
}

let default_options =
  { qp = Qp_solver.default_options; rounds = 4; first_fraction = 0.2 }

type round_info = {
  txns_considered : int;
  outcome : Qp_solver.outcome;
  elapsed : float;
  pins_violated : int;
}

type result = {
  outcome : Qp_solver.outcome;
  partitioning : Partitioning.t option;
  cost : float option;
  objective6 : float option;
  elapsed : float;
  rounds : round_info list;
  diagnostics : Vpart_analysis.Diagnostic.t list;
  certificate : Vpart_analysis.Diagnostic.t list option;
  exact : Vpart_certify.Certify.Exact.report option;
}

let transaction_weights (inst : Instance.t) =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  Array.init (Workload.num_transactions wl) (fun t ->
      List.fold_left
        (fun acc qid ->
           let q = Workload.query wl qid in
           acc
           +. (q.Workload.freq
               *. List.fold_left
                    (fun a (tbl, rows) ->
                       a +. (float_of_int (Schema.row_width schema tbl) *. rows))
                    0. q.Workload.tables))
        0.
        (Workload.transaction wl t).Workload.queries)

(* Cumulative batch sizes: first ~first_fraction of the transactions, the
   rest split evenly over the remaining rounds.  Always ends at nt. *)
let batch_sizes ~nt ~rounds ~first_fraction =
  let rounds = max 1 rounds in
  if rounds = 1 || nt <= 1 then [ nt ]
  else begin
    let first = max 1 (int_of_float (Float.round (first_fraction *. float_of_int nt))) in
    let first = min first nt in
    let remaining = nt - first in
    let steps = rounds - 1 in
    let sizes = ref [ first ] and acc = ref first in
    for k = 1 to steps do
      let target = first + (remaining * k / steps) in
      if target > !acc then begin
        sizes := target :: !sizes;
        acc := target
      end
    done;
    List.rev !sizes
  end

let solve ?(options = default_options) (inst : Instance.t) =
  Obs.with_span "iter.solve" @@ fun () ->
  let start = Obs.Clock.now () in
  let nt = Instance.num_transactions inst in
  let weights = transaction_weights inst in
  let order =
    List.sort
      (fun a b -> compare (weights.(b), a) (weights.(a), b))
      (List.init nt Fun.id)
  in
  let order = Array.of_list order in
  let sizes = batch_sizes ~nt ~rounds:options.rounds
      ~first_fraction:options.first_fraction
  in
  let per_round_limit =
    options.qp.Qp_solver.time_limit /. float_of_int (List.length sizes)
  in
  let rounds_info = ref [] in
  (* previous round's assignments, indexed by position in [order] *)
  let fixed = ref [] in
  let final : Qp_solver.result option ref = ref None in
  let failed = ref false in
  let pin_findings = ref [] in
  let round_no = ref 0 in
  List.iter
    (fun size ->
       if not !failed then begin
         incr round_no;
         Obs.with_span "iter.round"
           ~attrs:[ ("round", Obs.Int !round_no); ("txns", Obs.Int size) ]
         @@ fun () ->
         let ids = List.init size (fun i -> order.(i)) in
         let sub = Instance.restrict_transactions inst ids in
         let qp_opts =
           { options.qp with
             Qp_solver.fixed_txns = !fixed;
             time_limit = per_round_limit;
           }
         in
         let r = Qp_solver.solve ~options:qp_opts sub in
         (* Certify the batch contract: the transactions pinned from the
            previous rounds must come back on their pinned sites. *)
         let pins_violated =
           match r.Qp_solver.partitioning with
           | Some part when options.qp.Qp_solver.certify ->
             let bad = Solution_certify.certify_pins ~fixed:!fixed part in
             pin_findings := !pin_findings @ bad;
             List.length bad
           | _ -> 0
         in
         rounds_info :=
           { txns_considered = size;
             outcome = r.Qp_solver.outcome;
             elapsed = r.Qp_solver.elapsed;
             pins_violated }
           :: !rounds_info;
         (match r.Qp_solver.partitioning with
          | Some part ->
            fixed :=
              List.init size (fun i -> (i, part.Partitioning.txn_site.(i)));
            final := Some r
          | None -> failed := true)
       end)
    sizes;
  let elapsed = Obs.Clock.now () -. start in
  match !final with
  | Some r when not !failed ->
    (* Map the final partitioning's transaction order back to the original
       indices (attributes are untouched by the restriction). *)
    let mapped =
      Option.map
        (fun (part : Partitioning.t) ->
           let out = Partitioning.copy part in
           Array.iteri
             (fun pos site -> out.Partitioning.txn_site.(order.(pos)) <- site)
             part.Partitioning.txn_site;
           out)
        r.Qp_solver.partitioning
    in
    (* Replica polish through the O(Δ) evaluator: the batched rounds fix
       transactions incrementally, so the final replica set can carry
       leftovers from early rounds.  First-improvement flips on the full
       annealed objective (objective (6) plus the Appendix-A latency term
       when configured) clean those up.  Pure y-moves keep the pins and
       the transaction mapping intact; dropping a replica is only legal
       when the attribute keeps coverage and no φ-reader is homed on the
       dropped site.  Bounded to two sweeps over (attribute, site). *)
    let polished =
      match mapped with
      | Some part
        when options.qp.Qp_solver.allow_replication
             && options.qp.Qp_solver.num_sites > 1 ->
        Obs.with_span "iter.polish" @@ fun () ->
        let stats = Stats.compute inst ~p:options.qp.Qp_solver.p in
        let lambda = options.qp.Qp_solver.lambda in
        let latency =
          Option.map (fun pl -> (inst, pl)) options.qp.Qp_solver.latency
        in
        let dc = Delta_cost.create ?latency stats ~lambda part in
        let na = stats.Stats.num_attrs in
        let phi_txns =
          Array.init na (fun a ->
              List.filter
                (fun t -> stats.Stats.phi.(t).(a))
                (List.init (Array.length part.Partitioning.txn_site) Fun.id))
        in
        let changed = ref false and improved = ref true and pass = ref 0 in
        while !improved && !pass < 2 do
          improved := false;
          incr pass;
          for a = 0 to na - 1 do
            for s = 0 to part.Partitioning.num_sites - 1 do
              let legal =
                if part.Partitioning.placed.(a).(s) then
                  Delta_cost.replicas dc a > 1
                  && not
                       (List.exists
                          (fun t -> part.Partitioning.txn_site.(t) = s)
                          phi_txns.(a))
                else true
              in
              if legal then begin
                let tol =
                  1e-9 *. (1. +. Float.abs (Delta_cost.objective dc))
                in
                let d = Delta_cost.apply_move dc (Delta_cost.Flip (a, s)) in
                if d < -.tol then begin
                  improved := true;
                  changed := true
                end
                else Delta_cost.undo_move dc
              end
            done
          done
        done;
        if !changed then Some (stats, dc) else None
      | _ -> None
    in
    (* [mapped] is the partitioning wrapped by the evaluator, mutated in
       place, so it already carries the polished layout; the reported
       numbers are re-derived from the unchanged Cost_model, never from
       the delta caches. *)
    let dtol = Option.value options.qp.Qp_solver.certify_tol ~default:1e-5 in
    let cost, objective6, polish_certs, polish_exact =
      match polished with
      | None -> (r.Qp_solver.cost, r.Qp_solver.objective6, [], None)
      | Some (stats, dc) ->
        let part = Delta_cost.partitioning dc in
        let cost = Cost_model.cost stats part in
        let obj6 =
          Cost_model.objective stats ~lambda:options.qp.Qp_solver.lambda part
        in
        let certs =
          if not options.qp.Qp_solver.certify then []
          else
            Solution_certify.certify_partitioning stats part
            @ Solution_certify.certify_cost ~tol:dtol inst
                ~p:options.qp.Qp_solver.p part ~claimed:cost
            @ Solution_certify.certify_objective6 ~tol:dtol inst
                ~p:options.qp.Qp_solver.p ~lambda:options.qp.Qp_solver.lambda
                ?latency:options.qp.Qp_solver.latency part
                ~claimed:(Delta_cost.objective dc)
        in
        let exact =
          if not options.qp.Qp_solver.certify_exact then None
          else
            (* The local-search polish re-claims the cost/objective; audit
               the polished layout, not just the QP round's. *)
            Some
              (Vpart_certify.Certify.Exact.merge
                 (Solution_certify.Exact.cost ~tol:dtol inst
                    ~p:options.qp.Qp_solver.p part ~claimed:cost)
                 (Solution_certify.Exact.objective6 ~tol:dtol inst
                    ~p:options.qp.Qp_solver.p
                    ~lambda:options.qp.Qp_solver.lambda
                    ?latency:options.qp.Qp_solver.latency part
                    ~claimed:(Delta_cost.objective dc)))
        in
        (Some cost, Some obj6, certs, exact)
    in
    let certificate =
      if not options.qp.Qp_solver.certify then None
      else
        Some
          (Vpart_analysis.Diagnostic.sort
             (!pin_findings @ polish_certs
              @ Option.value r.Qp_solver.certificate ~default:[]))
    in
    let exact =
      if not options.qp.Qp_solver.certify_exact then None
      else
        let base =
          Option.value r.Qp_solver.exact
            ~default:Vpart_certify.Certify.Exact.empty
        in
        Some
          (match polish_exact with
           | None -> base
           | Some e -> Vpart_certify.Certify.Exact.merge base e)
    in
    {
      outcome = r.Qp_solver.outcome;
      partitioning = mapped;
      cost;
      objective6;
      elapsed;
      rounds = List.rev !rounds_info;
      diagnostics = r.Qp_solver.diagnostics;
      certificate;
      exact;
    }
  | _ ->
    {
      outcome = Qp_solver.Limit_no_solution;
      partitioning = None;
      cost = None;
      objective6 = None;
      elapsed;
      rounds = List.rev !rounds_info;
      diagnostics = [];
      certificate =
        (if options.qp.Qp_solver.certify then
           Some (Vpart_analysis.Diagnostic.sort !pin_findings)
         else None);
      exact = None;
    }

(** Iterative 20/80 solver (second improvement of the paper's §4).

    "Assuming that transactions follow the 20/80 rule (20% of the
    transactions generate 80% of the load), the problem can be solved
    iteratively over T starting with a small set of the most heavy
    transactions."

    The solver sorts transactions by their byte-traffic weight, solves the
    QP for the heaviest ~20 % first, then repeatedly adds the next batch of
    transactions with the previous batches' site assignments {e pinned}
    (via {!Qp_solver.options.fixed_txns}) and re-solves — so each round's
    integer program only branches on the new transactions' [x] variables
    while every [y] stays free.  The last round covers the full workload
    and yields the returned partitioning.

    This trades optimality for scaling: each round's search space is
    exponentially smaller than the monolithic program's, while attribute
    placement is still globally re-optimized every round.

    After the last round the replica set is {e polished}: first-improvement
    replica flips on the full annealed objective (objective (6) plus the
    Appendix-A latency term when configured), evaluated through the
    {!Delta_cost} incremental kernel, bounded to two sweeps.  Pure y-moves
    never break the pin contract; flips that would break coverage or read
    single-sitedness are not proposed.  Skipped with
    [qp.allow_replication = false] or a single site.  Reported cost and
    objective are re-derived from {!Cost_model} (never from the delta
    caches), and with [qp.certify] the polished layout gets fresh
    feasibility/cost/objective certificates. *)

type options = {
  qp : Qp_solver.options;   (** per-round solver setup; [qp.time_limit] is
                                the budget for the {e whole} run, split
                                across rounds *)
  rounds : int;             (** number of batches (>= 1; 1 = plain QP) *)
  first_fraction : float;   (** share of transactions in the first batch
                                (the "20" of 20/80) *)
}

val default_options : options
(** {!Qp_solver.default_options}, 4 rounds, first batch 20 %. *)

type round_info = {
  txns_considered : int;
  outcome : Qp_solver.outcome;
  elapsed : float;
  pins_violated : int;
      (** number of previous-round pins the batch's solution broke
          ([C204] findings; always 0 unless [qp.certify] is set, which
          enables the per-round check) *)
}

type result = {
  outcome : Qp_solver.outcome;          (** of the final (full) round *)
  partitioning : Partitioning.t option; (** original attribute space *)
  cost : float option;                  (** objective (4), after polish *)
  objective6 : float option;            (** objective (6), after polish *)
  elapsed : float;
  rounds : round_info list;             (** in execution order *)
  diagnostics : Vpart_analysis.Diagnostic.t list;
      (** non-error model-lint findings of the final (full) round; each
          round's MIP is linted by {!Qp_solver.solve}, which raises
          {!Vpart_analysis.Diagnostic.Errors} on Error-level findings *)
  certificate : Vpart_analysis.Diagnostic.t list option;
      (** [Some findings] when [qp.certify] was set: every round's [C204]
          pin-contract findings plus the final round's full
          {!Qp_solver} certificate; [None] otherwise *)
  exact : Vpart_certify.Certify.Exact.report option;
      (** [Some report] when [qp.certify_exact] was set: the final round's
          exact audit merged with the exact re-audit of the polished
          layout's cost/objective claims. *)
}

val transaction_weights : Instance.t -> float array
(** Byte-traffic weight per transaction:
    [Σ_{q∈t} f_q · Σ_{tables r of q} row_width(r) · n_r] — the quantity the
    20/80 ordering sorts by. *)

val solve : ?options:options -> Instance.t -> result

type t = {
  num_sites : int;
  txn_site : int array;
  placed : bool array array;
}

let create ~num_sites ~num_txns ~num_attrs =
  if num_sites <= 0 then invalid_arg "Partitioning.create: num_sites";
  {
    num_sites;
    txn_site = Array.make num_txns 0;
    placed = Array.init num_attrs (fun _ -> Array.make num_sites false);
  }

let single_site (inst : Instance.t) =
  let p =
    create ~num_sites:1
      ~num_txns:(Instance.num_transactions inst)
      ~num_attrs:(Instance.num_attrs inst)
  in
  Array.iter (fun row -> row.(0) <- true) p.placed;
  p

let copy t =
  {
    num_sites = t.num_sites;
    txn_site = Array.copy t.txn_site;
    placed = Array.map Array.copy t.placed;
  }

let equal a b =
  a.num_sites = b.num_sites && a.txn_site = b.txn_site && a.placed = b.placed

let replicas t a =
  Array.fold_left (fun acc placed -> if placed then acc + 1 else acc) 0 t.placed.(a)

let is_disjoint t =
  let ok = ref true in
  Array.iteri (fun a _ -> if replicas t a > 1 then ok := false) t.placed;
  !ok

let attrs_on_site t s =
  let out = ref [] in
  for a = Array.length t.placed - 1 downto 0 do
    if t.placed.(a).(s) then out := a :: !out
  done;
  !out

let txns_on_site t s =
  let out = ref [] in
  for tx = Array.length t.txn_site - 1 downto 0 do
    if t.txn_site.(tx) = s then out := tx :: !out
  done;
  !out

let repair_single_sitedness (stats : Stats.t) t =
  for tx = 0 to stats.Stats.num_txns - 1 do
    let home = t.txn_site.(tx) in
    let phi_t = stats.Stats.phi.(tx) in
    for a = 0 to stats.Stats.num_attrs - 1 do
      if phi_t.(a) then t.placed.(a).(home) <- true
    done
  done;
  Array.iter
    (fun row -> if not (Array.exists Fun.id row) then row.(0) <- true)
    t.placed

let validate (stats : Stats.t) t =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  if Array.length t.txn_site <> stats.Stats.num_txns then
    fail "transaction count mismatch: partitioning has %d, instance has %d"
      (Array.length t.txn_site) stats.Stats.num_txns;
  if Array.length t.placed <> stats.Stats.num_attrs then
    fail "attribute count mismatch: partitioning has %d, instance has %d"
      (Array.length t.placed) stats.Stats.num_attrs;
  Array.iteri
    (fun tx s ->
       if s < 0 || s >= t.num_sites then
         fail "transaction %d: site %d out of range 0..%d" tx s (t.num_sites - 1))
    t.txn_site;
  Array.iteri
    (fun a row ->
       if Array.length row <> t.num_sites then
         fail "attribute %d: placement row has %d sites, partitioning declares %d"
           a (Array.length row) t.num_sites
       else if not (Array.exists Fun.id row) then
         fail "attribute %d: placed on no site (coverage violated)" a)
    t.placed;
  if !err = None then
    for tx = 0 to stats.Stats.num_txns - 1 do
      let home = t.txn_site.(tx) in
      for a = 0 to stats.Stats.num_attrs - 1 do
        if stats.Stats.phi.(tx).(a) && not (t.placed.(a).(home)) then
          fail "single-sitedness violated: txn %d reads attr %d not on site %d" tx
            a home
      done
    done;
  match !err with None -> Ok () | Some e -> Error e

let pp_compact schema workload ppf t =
  Format.fprintf ppf "@[<v>";
  for s = 0 to t.num_sites - 1 do
    let txns = txns_on_site t s and attrs = attrs_on_site t s in
    Format.fprintf ppf "site %d: %d attrs; txns:" s (List.length attrs);
    List.iter
      (fun tx ->
         Format.fprintf ppf " %s" (Workload.transaction workload tx).Workload.t_name)
      txns;
    Format.fprintf ppf "@,"
  done;
  ignore schema;
  Format.fprintf ppf "@]"

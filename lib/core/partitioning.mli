(** A vertical partitioning: transactions and attributes assigned to sites.

    Mirrors the paper's decision variables: [txn_site.(t)] is the unique
    site with [x_{t,s} = 1]; [placed.(a).(s)] is [y_{a,s}].  Attributes may
    be replicated (non-disjoint partitioning); transactions may not. *)

type t = {
  num_sites : int;
  txn_site : int array;          (** length |T|; values in [0, num_sites) *)
  placed : bool array array;     (** [a].(s): attribute a stored on site s *)
}

val create : num_sites:int -> num_txns:int -> num_attrs:int -> t
(** All transactions on site 0, no attribute placed anywhere (invalid until
    placements are added — see {!repair_single_sitedness}). *)

val single_site : Instance.t -> t
(** The trivial 1-site partitioning: everything co-located.  This is the
    paper's [|S| = 1] baseline column. *)

val copy : t -> t

val equal : t -> t -> bool

val replicas : t -> int -> int
(** Number of sites holding the attribute. *)

val is_disjoint : t -> bool
(** True when no attribute is replicated. *)

val attrs_on_site : t -> int -> int list
val txns_on_site : t -> int -> int list

val repair_single_sitedness : Stats.t -> t -> unit
(** Force [placed.(a).(txn_site.(t)) = true] wherever [φ_{a,t}] holds, and
    place any still-uncovered attribute on site 0.  After this the
    partitioning always satisfies {!validate}. *)

val validate : Stats.t -> t -> (unit, string) result
(** Check: site indices in range, every attribute on at least one site
    (coverage), and single-sitedness of reads
    ([φ_{a,t} ⇒ y_{a, site(t)}]). *)

val pp_compact : Schema.t -> Workload.t -> Format.formatter -> t -> unit
(** Short textual rendering: per site, transaction names and attribute
    count. *)

type options = {
  num_sites : int;
  p : float;
  lambda : float;
  allow_replication : bool;
  use_grouping : bool;
  time_limit : float;
  gap : float;
  max_rows : int option;
  use_heuristic : bool;
  latency : float option;
  fixed_txns : (int * int) list;
  seed_solution : Partitioning.t option;
  certify : bool;
  certify_exact : bool;
  certify_tol : float option;
  jobs : int;
  kernel : Simplex.kernel;
  pricing : Simplex.pricing option;
  refactor_every : int;
  scale : bool;
  break_symmetry : bool;
  simplex_workspace : Simplex.Workspace.t option;
}

let default_options =
  {
    num_sites = 2;
    p = 8.;
    lambda = 0.1;
    allow_replication = true;
    use_grouping = true;
    time_limit = 60.;
    gap = 1e-3;
    max_rows = Some 32000;
    use_heuristic = true;
    latency = None;
    fixed_txns = [];
    seed_solution = None;
    certify = false;
    certify_exact = false;
    certify_tol = None;
    jobs = 1;
    kernel = Simplex.Sparse;
    pricing = None;
    refactor_every = 32;
    scale = false;
    break_symmetry = false;
    simplex_workspace = None;
  }

type outcome = Proved_optimal | Limit_feasible | Limit_no_solution | Too_large

type result = {
  outcome : outcome;
  partitioning : Partitioning.t option;
  cost : float option;
  objective6 : float option;
  bound : float option;
  elapsed : float;
  nodes : int;
  simplex_iters : int;
  refactorizations : int;
  eta_applications : int;
  model_rows : int;
  model_cols : int;
  row_limit : int option;
  kernel : Simplex.kernel;
  diagnostics : Vpart_analysis.Diagnostic.t list;
  certificate : Vpart_analysis.Diagnostic.t list option;
  exact : Vpart_certify.Certify.Exact.report option;
}

(* Layout bookkeeping shared by the builder, the rounding heuristic and the
   solution extractor. *)
type layout = {
  xv : Lp.var array array;               (* [t].(s) *)
  yv : Lp.var array array;               (* [a].(s) *)
  uv : (int * int * int, Lp.var) Hashtbl.t;  (* (t, a, s) -> var *)
  mv : Lp.var option;
  (* Appendix A latency indicators: one per write query, with the txn and
     the accessed attributes needed to recompute its value in heuristics. *)
  psiv : (Lp.var * int * int list) list;
}

(* Symmetry breaking is sound only while the sites are fully
   interchangeable: every constraint family of the layout model
   (assignment, coverage, linearization, load, latency) treats sites
   identically, so any solution can be relabeled so transaction t's home
   site has index <= t (order sites by first transaction appearance).
   Pre-assigned transactions name concrete sites and destroy the
   invariance, so the pinning is disabled then. *)
let sites_interchangeable opts = opts.break_symmetry && opts.fixed_txns = []

let build_layout_model ?instance (stats : Stats.t) opts =
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = opts.num_sites in
  let lambda = opts.lambda in
  let m = Lp.create ~name:"vpart-qp" () in
  let pin_sym = sites_interchangeable opts in
  let xv =
    Array.init nt (fun t ->
        Array.init ns (fun s ->
            (* Lexicographic site ordering: x_{t,s} = 0 for s > t.  Fixing
               the variable (rather than adding ordering rows) keeps the
               row count unchanged and lets presolve drop the columns. *)
            if pin_sym && s > t then
              Lp.add_var m
                ~name:(Printf.sprintf "x_%d_%d" t s)
                ~lb:0. ~ub:0. ~integer:true ()
            else Lp.binary m ~name:(Printf.sprintf "x_%d_%d" t s) ()))
  in
  let yv =
    Array.init na (fun a ->
        Array.init ns (fun s ->
            Lp.binary m ~name:(Printf.sprintf "y_%d_%d" a s) ()))
  in
  let uv = Hashtbl.create 256 in
  (* Objective accumulators. *)
  let obj_terms = ref [] and obj_const = ref 0. in
  let push c v = if c <> 0. then obj_terms := (c, v) :: !obj_terms in
  (* Load-constraint accumulators: one term list per site. *)
  let balancing = lambda < 1. in
  let load_terms = Array.make ns [] in
  let push_load s c v = if c <> 0. then load_terms.(s) <- (c, v) :: load_terms.(s) in
  (* x assignment and y coverage. *)
  for t = 0 to nt - 1 do
    Lp.add_constr m (List.init ns (fun s -> (1., xv.(t).(s)))) Lp.Eq 1.
  done;
  (* Pre-assigned transactions (iterative 20/80 solver, paper sec. 4). *)
  List.iter
    (fun (t, site) ->
       if t < 0 || t >= nt || site < 0 || site >= ns then
         invalid_arg "Qp_solver: fixed_txns out of range";
       Lp.add_constr m [ (1., xv.(t).(site)) ] Lp.Eq 1.)
    opts.fixed_txns;
  for a = 0 to na - 1 do
    let cmp = if opts.allow_replication then Lp.Ge else Lp.Eq in
    Lp.add_constr m (List.init ns (fun s -> (1., yv.(a).(s)))) cmp 1.
  done;
  (* Single-sitedness and the quadratic terms. *)
  for t = 0 to nt - 1 do
    for a = 0 to na - 1 do
      let c1 = stats.Stats.c1.{t, a} and c3 = stats.Stats.c3.{t, a} in
      if stats.Stats.phi.(t).(a) then begin
        (* y >= x at every site; x·y == x, summed over sites == 1. *)
        for s = 0 to ns - 1 do
          Lp.add_constr m [ (1., yv.(a).(s)); (-1., xv.(t).(s)) ] Lp.Ge 0.
        done;
        obj_const := !obj_const +. (lambda *. c1);
        if balancing then
          for s = 0 to ns - 1 do
            push_load s c3 xv.(t).(s)
          done
      end
      else begin
        let needs_obj = c1 <> 0. in
        let needs_load = balancing && c3 > 0. in
        if needs_obj || needs_load then begin
          let push_lower = (lambda *. c1 > 0.) || needs_load in
          let push_upper = lambda *. c1 < 0. in
          for s = 0 to ns - 1 do
            let u =
              Lp.add_var m
                ~name:(Printf.sprintf "u_%d_%d_%d" t a s)
                ~lb:0. ~ub:1. ()
            in
            Hashtbl.replace uv (t, a, s) u;
            push (lambda *. c1) u;
            if needs_load then push_load s c3 u;
            if push_lower then
              (* u >= x + y - 1 *)
              Lp.add_constr m
                [ (1., u); (-1., xv.(t).(s)); (-1., yv.(a).(s)) ]
                Lp.Ge (-1.);
            if push_upper then begin
              Lp.add_constr m [ (1., u); (-1., xv.(t).(s)) ] Lp.Le 0.;
              Lp.add_constr m [ (1., u); (-1., yv.(a).(s)) ] Lp.Le 0.
            end
          done
        end
      end
    done
  done;
  (* y objective and load contributions. *)
  for a = 0 to na - 1 do
    let c2 = stats.Stats.c2.(a) and c4 = stats.Stats.c4.(a) in
    for s = 0 to ns - 1 do
      push (lambda *. c2) yv.(a).(s);
      if balancing then push_load s c4 yv.(a).(s)
    done
  done;
  (* Load balancing: work(s) <= m_var. *)
  let mv =
    if balancing then begin
      let work_ub =
        Vec.mat_sum stats.Stats.c3
        +. Array.fold_left ( +. ) 0. stats.Stats.c4
      in
      let v = Lp.add_var m ~name:"maxload" ~lb:0. ~ub:(Float.max 1. work_ub) () in
      for s = 0 to ns - 1 do
        if load_terms.(s) <> [] then
          Lp.add_constr m ((-1., v) :: load_terms.(s)) Lp.Le 0.
      done;
      push (1. -. lambda) v;
      Some v
    end
    else None
  in
  (* Appendix A: network-latency indicators for write queries.  ψ_q is
     forced to 1 when query q updates an attribute replicated away from its
     transaction's home site: ψ_q >= y_{a,s} - x_{t,s}.  At integral points
     this is exactly the appendix's quadratic condition, linearized tightly
     without extra integer variables (minimization keeps ψ at the bound). *)
  let psiv =
    match opts.latency, instance with
    | Some pl, Some (inst : Instance.t) ->
      let wl = inst.Instance.workload in
      let out = ref [] in
      for t = 0 to Workload.num_transactions wl - 1 do
        List.iter
          (fun qid ->
             let q = Workload.query wl qid in
             if Workload.is_write q then begin
               let psi =
                 Lp.add_var m ~name:(Printf.sprintf "psi_%d" qid) ~lb:0. ~ub:1. ()
               in
               List.iter
                 (fun a ->
                    for s = 0 to ns - 1 do
                      Lp.add_constr m
                        [ (1., psi); (-1., yv.(a).(s)); (1., xv.(t).(s)) ]
                        Lp.Ge 0.
                    done)
                 q.Workload.attrs;
               push (lambda *. pl *. q.Workload.freq) psi;
               out := (psi, t, q.Workload.attrs) :: !out
             end)
          (Workload.transaction wl t).Workload.queries
      done;
      !out
    | _ -> []
  in
  Lp.set_objective m Lp.Minimize ~constant:!obj_const !obj_terms;
  (m, { xv; yv; uv; mv; psiv })

let build_model stats opts =
  let m, layout = build_layout_model stats opts in
  (m, (layout.xv, layout.yv))

(* Extract a Partitioning.t (reduced space) from a structural assignment. *)
let partitioning_of_point (stats : Stats.t) opts layout point =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let part =
    Partitioning.create ~num_sites:opts.num_sites ~num_txns:nt ~num_attrs:na
  in
  for t = 0 to nt - 1 do
    let best = ref 0 and best_v = ref neg_infinity in
    for s = 0 to opts.num_sites - 1 do
      let v = point.(layout.xv.(t).(s)) in
      if v > !best_v then begin
        best := s;
        best_v := v
      end
    done;
    part.Partitioning.txn_site.(t) <- !best
  done;
  for a = 0 to na - 1 do
    for s = 0 to opts.num_sites - 1 do
      part.Partitioning.placed.(a).(s) <- point.(layout.yv.(a).(s)) > 0.5
    done
  done;
  part

(* Relabel a partitioning's sites by first-transaction-appearance order so
   it satisfies the lexicographic pinning; a no-op when the pinning is off.
   Site permutations leave cost, load and latency invariant, so the
   relabeled partitioning is the same solution under canonical names. *)
let canonicalize_sites opts (part : Partitioning.t) =
  if sites_interchangeable opts then begin
    let ns = opts.num_sites in
    let map = Array.make ns (-1) in
    let next = ref 0 in
    Array.iter
      (fun s ->
         if map.(s) < 0 then begin
           map.(s) <- !next;
           incr next
         end)
      part.Partitioning.txn_site;
    for s = 0 to ns - 1 do
      if map.(s) < 0 then begin
        map.(s) <- !next;
        incr next
      end
    done;
    Array.iteri
      (fun t s -> part.Partitioning.txn_site.(t) <- map.(s))
      part.Partitioning.txn_site;
    Array.iter
      (fun row ->
         let permuted = Array.make ns false in
         Array.iteri (fun s v -> if v then permuted.(map.(s)) <- true) row;
         Array.blit permuted 0 row 0 ns)
      part.Partitioning.placed
  end

(* Rounding-repair primal heuristic: derive a feasible partitioning from a
   fractional relaxation point, then encode it back as a full variable
   assignment for the MIP to vet. *)
let rec rounding_heuristic (stats : Stats.t) opts layout ncols point =
  let part = partitioning_of_point stats opts layout point in
  if opts.allow_replication then
    Partitioning.repair_single_sitedness stats part
  else begin
    (* Disjoint mode: exactly one site per attribute.  Prefer the home of a
       reading transaction (required for feasibility), else the best y. *)
    let nt = stats.Stats.num_txns in
    for a = 0 to stats.Stats.num_attrs - 1 do
      let forced = ref None in
      for t = 0 to nt - 1 do
        if stats.Stats.phi.(t).(a) && !forced = None then
          forced := Some part.Partitioning.txn_site.(t)
      done;
      let chosen =
        match !forced with
        | Some s -> s
        | None ->
          let best = ref 0 and best_v = ref neg_infinity in
          for s = 0 to opts.num_sites - 1 do
            let v = point.(layout.yv.(a).(s)) in
            if v > !best_v then begin
              best := s;
              best_v := v
            end
          done;
          !best
      in
      Array.fill part.Partitioning.placed.(a) 0 opts.num_sites false;
      part.Partitioning.placed.(a).(chosen) <- true
    done
  end;
  canonicalize_sites opts part;
  Some (encode_assignment stats opts layout ncols part)

(* Encode a (reduced-space) partitioning as a full MIP variable vector. *)
and encode_assignment (stats : Stats.t) opts layout ncols
    (part : Partitioning.t) =
  let out = Array.make ncols 0. in
  for t = 0 to stats.Stats.num_txns - 1 do
    for s = 0 to opts.num_sites - 1 do
      out.(layout.xv.(t).(s)) <-
        (if part.Partitioning.txn_site.(t) = s then 1. else 0.)
    done
  done;
  for a = 0 to stats.Stats.num_attrs - 1 do
    for s = 0 to opts.num_sites - 1 do
      out.(layout.yv.(a).(s)) <-
        (if part.Partitioning.placed.(a).(s) then 1. else 0.)
    done
  done;
  Hashtbl.iter
    (fun (t, a, s) u ->
       out.(u) <-
         (if part.Partitioning.txn_site.(t) = s
             && part.Partitioning.placed.(a).(s)
          then 1.
          else 0.))
    layout.uv;
  (match layout.mv with
   | Some v -> out.(v) <- Cost_model.max_site_work stats part
   | None -> ());
  List.iter
    (fun (psi, t, attrs) ->
       let home = part.Partitioning.txn_site.(t) in
       let remote =
         List.exists
           (fun a ->
              let row = part.Partitioning.placed.(a) in
              let hit = ref false in
              Array.iteri (fun s v -> if v && s <> home then hit := true) row;
              !hit)
           attrs
       in
       out.(psi) <- (if remote then 1. else 0.))
    layout.psiv;
  out

let solve ?(options = default_options) (inst : Instance.t) =
  Obs.with_span "qp.solve" @@ fun () ->
  let start = Obs.Clock.now () in
  let grouping =
    Obs.with_span "qp.grouping" (fun () ->
        if options.use_grouping then Grouping.compute inst
        else Grouping.identity inst)
  in
  let reduced = grouping.Grouping.reduced in
  let stats, full_stats =
    Obs.with_span "qp.stats" (fun () ->
        (Stats.compute reduced ~p:options.p, Stats.compute inst ~p:options.p))
  in
  let model, layout =
    (* The Lp layer rejects non-finite data at construction time; surface
       such a failure through the same diagnostic channel as the lint gate
       below so callers have a single refusal contract. *)
    Obs.with_span "qp.build_model" (fun () ->
        try build_layout_model ~instance:reduced stats options
        with Invalid_argument msg ->
          raise
            (Vpart_analysis.Diagnostic.Errors
               [ Vpart_analysis.Diagnostic.error ~code:"M012"
                   "model construction rejected corrupted statistics: %s" msg ]))
  in
  (* Static analysis gate: refuse to hand a model with Error-level findings
     to branch-and-bound (raises Diagnostic.Errors); keep the rest for the
     caller's report. *)
  let diagnostics =
    Vpart_analysis.Model_lint.assert_clean ~var_name:(Lp.var_name model)
      (Lp.standardize model)
  in
  let ncols = Lp.num_vars model in
  let priority v =
    (* branch on x before y before (continuous) u/m *)
    let nt = stats.Stats.num_txns and ns = options.num_sites in
    if v < nt * ns then 2
    else if v < (nt * ns) + (stats.Stats.num_attrs * ns) then 1
    else 0
  in
  let heuristic =
    if options.use_heuristic then
      Some (fun point -> rounding_heuristic stats options layout ncols point)
    else None
  in
  let limits =
    {
      Mip.time_limit = Some options.time_limit;
      node_limit = None;
      gap = options.gap;
      max_rows = options.max_rows;
      kernel = options.kernel;
      pricing = options.pricing;
      refactor_every = options.refactor_every;
      scale = options.scale;
    }
  in
  let incumbent =
    Option.map
      (fun part ->
         let reduced_part = Grouping.restrict grouping part in
         Partitioning.repair_single_sitedness stats reduced_part;
         canonicalize_sites options reduced_part;
         encode_assignment stats options layout ncols reduced_part)
      options.seed_solution
  in
  let mip_outcome, mip_stats =
    Mip.solve ~limits ~priority ?heuristic ?incumbent
      ~jobs:(max 1 options.jobs)
      ?simplex_workspace:options.simplex_workspace model
  in
  let elapsed = Obs.Clock.now () -. start in
  let finish outcome partitioning_reduced bound =
    let partitioning = Option.map (Grouping.expand grouping) partitioning_reduced in
    let cost = Option.map (Cost_model.cost full_stats) partitioning in
    let objective6 =
      Option.map (Cost_model.objective full_stats ~lambda:options.lambda) partitioning
    in
    let copts =
      let base = Vpart_certify.Certify.default_options in
      match options.certify_tol with
      | None -> base
      | Some t -> { base with Vpart_certify.Certify.tol = t }
    in
    let dtol = copts.Vpart_certify.Certify.tol in
    let claimed_obj6 =
      match mip_outcome with
      | Mip.Optimal sol | Mip.Feasible (sol, _) -> Some sol.Mip.obj
      | _ -> None
    in
    let certificate =
      if not options.certify then None
      else Obs.with_span "qp.certify" @@ fun () -> begin
        (* Independent certification of every claim this solve made: the
           MIP-level checks re-derive feasibility/bounds/duality from the
           model and the returned artifacts; the domain-level checks
           re-evaluate the decoded partitioning straight from the instance
           (Cost_model.breakdown), bypassing the Stats coefficients the
           model was built from. *)
        let mip_certs =
          Vpart_certify.Certify.certify_mip ~options:copts ~gap:options.gap
            ~var_name:(Lp.var_name model) model mip_outcome mip_stats
        in
        let domain_certs =
          match partitioning with
          | None -> []
          | Some part ->
            Solution_certify.certify_partitioning full_stats part
            @ (match claimed_obj6 with
               | Some obj6 ->
                 Solution_certify.certify_objective6 ~tol:dtol inst
                   ~p:options.p ~lambda:options.lambda
                   ?latency:options.latency part ~claimed:obj6
               | None -> [])
            @ (match cost with
               | Some c ->
                 Solution_certify.certify_cost ~tol:dtol inst ~p:options.p
                   part ~claimed:c
               | None -> [])
            @ Solution_certify.certify_pins ~fixed:options.fixed_txns part
        in
        Some (Vpart_analysis.Diagnostic.sort (mip_certs @ domain_certs))
      end
    in
    let exact =
      if not options.certify_exact then None
      else
        (* Tolerance-free re-verification of the same claims in rational
           arithmetic (E-codes); [copts] still matters — it is the float
           layer whose verdicts the exact ones are paired with. *)
        let module Exact = Vpart_certify.Certify.Exact in
        let mip_exact =
          Exact.audit ~options:copts ~gap:options.gap
            ~var_name:(Lp.var_name model) model mip_outcome mip_stats
        in
        let domain_exact =
          match partitioning with
          | None -> Exact.empty
          | Some part ->
            let o6 =
              match claimed_obj6 with
              | Some obj6 ->
                Solution_certify.Exact.objective6 ~tol:dtol inst
                  ~p:options.p ~lambda:options.lambda
                  ?latency:options.latency part ~claimed:obj6
              | None -> Exact.empty
            in
            let c4 =
              match cost with
              | Some c ->
                Solution_certify.Exact.cost ~tol:dtol inst ~p:options.p part
                  ~claimed:c
              | None -> Exact.empty
            in
            Exact.merge o6 c4
        in
        Some (Exact.merge mip_exact domain_exact)
    in
    {
      outcome;
      partitioning;
      cost;
      objective6;
      bound;
      elapsed;
      nodes = mip_stats.Mip.nodes;
      simplex_iters = mip_stats.Mip.simplex_iterations;
      refactorizations = mip_stats.Mip.refactorizations;
      eta_applications = mip_stats.Mip.eta_applications;
      model_rows = Lp.num_constrs model;
      model_cols = ncols;
      row_limit = options.max_rows;
      kernel = options.kernel;
      diagnostics;
      certificate;
      exact;
    }
  in
  match mip_outcome with
  | Mip.Optimal sol ->
    let part = partitioning_of_point stats options layout sol.Mip.x in
    finish Proved_optimal (Some part) (Some sol.Mip.obj)
  | Mip.Feasible (sol, bound) ->
    let part = partitioning_of_point stats options layout sol.Mip.x in
    finish Limit_feasible (Some part) (Some bound)
  | Mip.No_incumbent bound -> finish Limit_no_solution None bound
  | Mip.Too_large _ -> finish Too_large None None
  | Mip.Infeasible | Mip.Unbounded ->
    (* The model is always feasible and bounded; reaching here indicates a
       numerical failure inside the LP solver.  Report as no-solution. *)
    finish Limit_no_solution None None

(** The paper's first algorithm: the linearized quadratic program (§2).

    Builds the mixed-integer program (7) — objective (6) with the
    linearization of §2.3 — and solves it with the in-repo branch-and-bound
    solver ({!Vpart_mip.Mip}), mirroring the paper's GLPK setup (time
    limit, 0.1 % MIP gap).

    Model-size reductions applied (documented in DESIGN.md):

    - attribute grouping (§4) unless [use_grouping = false];
    - when [φ_{a,t} = 1], feasibility forces [y_{a,s} ≥ x_{t,s}], hence
      [x_{t,s}·y_{a,s} = x_{t,s}] in every feasible point and, summed over
      sites, the pair's objective contribution is the constant [c1(a,t)] —
      no [u] variable is created;
    - remaining [u_{t,a,s}] variables receive only the linearization
      constraints their coefficient signs require ([u ≥ x + y - 1] when the
      model pushes [u] down, [u ≤ x] and [u ≤ y] when it pushes up). *)

type options = {
  num_sites : int;
  p : float;                   (** network penalty factor (§5: default 8) *)
  lambda : float;              (** cost vs. load-balance weight (§5: 0.1) *)
  allow_replication : bool;    (** [false] forces a disjoint partitioning *)
  use_grouping : bool;
  time_limit : float;          (** seconds (the paper used 1800) *)
  gap : float;                 (** relative MIP gap (the paper used 0.001) *)
  max_rows : int option;       (** give up ("t/o") on larger models *)
  use_heuristic : bool;        (** rounding-repair incumbents inside B&B *)
  latency : float option;
      (** Appendix A: when [Some pl], adds a latency indicator ψ_q per
          write query (forced to 1 by [ψ_q ≥ y_{a,s} - x_{t,s}] whenever an
          updated attribute is replicated away from the home site — a tight
          linearization of the appendix's quadratic constraints) and the
          term [λ·pl·Σ_q f_q·ψ_q] to the objective. *)
  fixed_txns : (int * int) list;
      (** Pre-assigned transactions [(t, site)] whose [x] variables are
          pinned — the hook the iterative 20/80 solver
          ({!Iterative_solver}) uses to grow a solution batch by batch. *)
  seed_solution : Partitioning.t option;
      (** Warm-start incumbent (original attribute space), e.g. an
          {!Sa_solver} result: vetted and used for pruning from the first
          node.  Off for paper-comparison runs. *)
  certify : bool;
      (** Self-certification: after the solve, re-derive every claim
          (incumbent feasibility, dual bounds, objective-(6)/cost
          agreement with {!Cost_model.breakdown}, pin satisfaction) with
          {!Vpart_certify.Certify} and {!Solution_certify}, and return the
          findings in [certificate].  Off by default (it re-standardizes
          the model and re-evaluates the instance). *)
  certify_exact : bool;
      (** Exact audit: additionally re-verify every certificate in
          rational arithmetic with zero tolerance
          ({!Vpart_certify.Certify.Exact} + {!Solution_certify.Exact})
          and return the report in [exact].  Independent of [certify] —
          the exact pass re-derives the float verdicts it pairs with. *)
  certify_tol : float option;
      (** Override the float certification tolerance
          ({!Vpart_certify.Certify.options}[.tol], default [1e-5]); also
          used as the relative tolerance of the domain-level [C201]/[C202]
          checks and as the masked-vs-refuted threshold of the exact
          audit. *)
  jobs : int;
      (** Domains the branch-and-bound may use ({!Mip.solve}'s [jobs]);
          1 (default) keeps the sequential search bit for bit. *)
  kernel : Simplex.kernel;
      (** Basis kernel for the node LPs ({!Mip.limits.kernel}): [Sparse]
          (default) for the Markowitz LU kernel, [Eta] for the dense
          inverse + eta file, [Dense] for the per-pivot dense update kept
          as the [bench perf] baseline and bit-exact fallback. *)
  pricing : Simplex.pricing option;
      (** Pricing rule override ({!Mip.limits.pricing}); [None] takes the
          kernel's default (devex for [Sparse], Dantzig otherwise). *)
  refactor_every : int;
      (** Eta-file length at which the node LPs refactorize their basis
          ({!Mip.limits.refactor_every}). *)
  scale : bool;
      (** Geometric-mean scaling of the layout model inside
          branch-and-bound ({!Mip.limits.scale}): remediation for the
          ill-scaling diagnostics ([N001]/[N002]/[N007]) the load rows'
          mixed-magnitude coefficients trigger.  Exactly back-mapped, so
          certificates are unaffected. *)
  break_symmetry : bool;
      (** Lexicographic site-ordering pinning [x_{t,s} = 0] for [s > t]:
          remediation for the site-interchangeability symmetry orbits
          ([S005]).  Sound because sites are fully interchangeable in the
          layout model; automatically disabled when [fixed_txns] names
          concrete sites.  Heuristic and seed partitionings are relabeled
          to canonical site order so they stay feasible under the
          pinning. *)
  simplex_workspace : Simplex.Workspace.t option;
      (** Float arena pooling the branch-and-bound root simplex storage
          across repeated solves ({!Mip.solve}'s [simplex_workspace]) —
          the batch service's steady state.  Must not be shared across
          concurrent solves; [None] (default) allocates fresh. *)
}

val default_options : options
(** 2 sites, p = 8, λ = 0.1, replication and grouping on, 60 s, 0.1 % gap,
    32000-row cap, heuristic on, no latency term, one domain, sparse LU
    kernel with its default (devex) pricing and refactorization every 32
    pivots, no scaling, no symmetry breaking. *)

type outcome =
  | Proved_optimal       (** optimal within the MIP gap *)
  | Limit_feasible       (** limit hit; best incumbent returned
                             (the paper's parenthesised costs) *)
  | Limit_no_solution    (** limit hit with no incumbent (the paper's t/o) *)
  | Too_large            (** model exceeded [max_rows]; also rendered t/o *)

type result = {
  outcome : outcome;
  partitioning : Partitioning.t option;  (** in the original attribute space *)
  cost : float option;        (** objective (4) of the returned partitioning *)
  objective6 : float option;  (** objective (6), what the MIP minimized *)
  bound : float option;       (** best proven lower bound on objective (6) *)
  elapsed : float;
  nodes : int;
  simplex_iters : int;
  refactorizations : int;  (** basis rebuilds across all node LPs *)
  eta_applications : int;  (** eta-file applications; 0 with the [Dense] kernel *)
  model_rows : int;
  model_cols : int;
  row_limit : int option;
      (** the configured [max_rows] cap the solve ran under, so size
          refusals are self-explaining next to [model_rows] *)
  kernel : Simplex.kernel;  (** the basis kernel the solve ran with *)
  diagnostics : Vpart_analysis.Diagnostic.t list;
      (** non-error findings of the model lint run on the built MIP
          (see {!Vpart_analysis.Model_lint}) *)
  certificate : Vpart_analysis.Diagnostic.t list option;
      (** [Some findings] when [options.certify] was set: the sorted
          [C]-code findings of the independent certification pass (empty
          list = every claim certified clean); [None] otherwise *)
  exact : Vpart_certify.Certify.Exact.report option;
      (** [Some report] when [options.certify_exact] was set: the
          tolerance-free rational re-verification ([E]-codes) of the same
          claims, with per-check exact/float verdict pairs. *)
}

val solve : ?options:options -> Instance.t -> result
(** Builds the MIP, runs {!Vpart_analysis.Model_lint} over it and solves.
    @raise Vpart_analysis.Diagnostic.Errors if the lint reports
    Error-level findings — the solver refuses to run a provably broken
    model (this can only happen on corrupted statistics, e.g. non-finite
    frequencies smuggled past validation). *)

val build_model :
  Stats.t -> options -> Lp.model * (Lp.var array array * Lp.var array array)
(** Exposed for white-box tests: the MIP plus the (x, y) variable layout
    ([fst] indexed [t].(s), [snd] indexed [a].(s)). *)

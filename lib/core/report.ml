let pp_partitioning (inst : Instance.t) ppf (part : Partitioning.t) =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  Format.fprintf ppf "@[<v>";
  for s = 0 to part.Partitioning.num_sites - 1 do
    Format.fprintf ppf "=== Site %d ===@," (s + 1);
    List.iter
      (fun t ->
         Format.fprintf ppf "Transaction %s@,"
           (Workload.transaction wl t).Workload.t_name)
      (Partitioning.txns_on_site part s);
    let names =
      List.sort compare
        (List.map (fun a -> Schema.attr_name schema a)
           (Partitioning.attrs_on_site part s))
    in
    List.iter (fun n -> Format.fprintf ppf "%s@," n) names;
    Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

let row_width_reduction (inst : Instance.t) (part : Partitioning.t) =
  let schema = inst.Instance.schema in
  List.init (Schema.num_tables schema) (fun tid ->
      let attrs = Schema.attrs_of_table schema tid in
      let full = Schema.row_width schema tid in
      (* average fraction width over the sites that hold any of the table *)
      let widths = ref [] in
      for s = 0 to part.Partitioning.num_sites - 1 do
        let w =
          List.fold_left
            (fun acc a ->
               if part.Partitioning.placed.(a).(s) then
                 acc + Schema.attr_width schema a
               else acc)
            0 attrs
        in
        if w > 0 then widths := float_of_int w :: !widths
      done;
      let avg =
        match !widths with
        | [] -> 0.
        | ws -> List.fold_left ( +. ) 0. ws /. float_of_int (List.length ws)
      in
      (Schema.table_name schema tid, full, avg))

let pp_solution_summary (inst : Instance.t) ~p ~lambda ppf part =
  let stats = Stats.compute inst ~p in
  let cost = Cost_model.cost stats part in
  let b = Cost_model.breakdown inst part in
  let work = Cost_model.site_work stats part in
  let replicated =
    let n = ref 0 in
    for a = 0 to Instance.num_attrs inst - 1 do
      if Partitioning.replicas part a > 1 then incr n
    done;
    !n
  in
  Format.fprintf ppf
    "@[<v>cost (objective 4)   : %.4g@,objective (6), l=%.2f: %.4g@,%a@,\
     replicated attrs     : %d / %d@,row width avg        :@,"
    cost lambda
    (Cost_model.objective stats ~lambda part)
    Cost_model.pp_breakdown b replicated (Instance.num_attrs inst);
  List.iter
    (fun (name, full, avg) ->
       if avg > 0. then
         Format.fprintf ppf "  %-12s %4d -> %7.1f bytes@," name full avg)
    (row_width_reduction inst part);
  ignore work;
  Format.fprintf ppf "@]"

let pp_diagnostics ppf ds =
  match ds with
  | [] -> Format.fprintf ppf "diagnostics: none"
  | ds ->
    Format.fprintf ppf "@[<v>diagnostics:@,%a@]"
      Vpart_analysis.Diagnostic.pp_report ds

let pp_sa_search ppf (s : Sa_solver.search_stats) =
  let rate =
    if s.Sa_solver.moves = 0 then 0.
    else
      float_of_int s.Sa_solver.accepted_moves /. float_of_int s.Sa_solver.moves
  in
  Format.fprintf ppf
    "@[<v>search: %d moves (%d accepted, %d rejected, %.1f%% acceptance)@,\
     cooling: %d epoch(s), temperature %.4g -> %.4g@]"
    s.Sa_solver.moves s.Sa_solver.accepted_moves s.Sa_solver.rejected_moves
    (100. *. rate) s.Sa_solver.epochs s.Sa_solver.initial_temperature
    s.Sa_solver.final_temperature

let pp_sa_chains ppf (chains : Sa_solver.search_stats array) =
  Format.fprintf ppf "@[<v>portfolio: %d chain(s)" (Array.length chains);
  Array.iteri
    (fun i (c : Sa_solver.search_stats) ->
       Format.fprintf ppf
         "@,  chain %d: %d moves (%d accepted), %d epoch(s), tau %.4g -> %.4g"
         i c.Sa_solver.moves c.Sa_solver.accepted_moves c.Sa_solver.epochs
         c.Sa_solver.initial_temperature c.Sa_solver.final_temperature)
    chains;
  Format.fprintf ppf "@]"

let pp_mip_kernel ppf (r : Qp_solver.result) =
  match r.Qp_solver.outcome with
  | Qp_solver.Too_large ->
    (* self-explaining refusal: the row count AND the cap it exceeded *)
    (match r.Qp_solver.row_limit with
     | Some limit ->
       Format.fprintf ppf
         "kernel: refused, %d model row(s) over the configured %d-row limit"
         r.Qp_solver.model_rows limit
     | None ->
       Format.fprintf ppf "kernel: refused at %d model row(s)"
         r.Qp_solver.model_rows)
  | _ ->
    Format.fprintf ppf "kernel: %s, %d node(s), %d simplex iteration(s)"
      (Simplex.string_of_kernel r.Qp_solver.kernel)
      r.Qp_solver.nodes r.Qp_solver.simplex_iters;
    if r.Qp_solver.eta_applications > 0 then
      Format.fprintf ppf ", %d eta application(s), %d refactorization(s)"
        r.Qp_solver.eta_applications r.Qp_solver.refactorizations
    else
      Format.fprintf ppf ", %d refactorization(s) (dense basis updates)"
        r.Qp_solver.refactorizations

let pp_certificate ppf cert =
  let module D = Vpart_analysis.Diagnostic in
  match cert with
  | None -> Format.fprintf ppf "certificate: not requested"
  | Some [] -> Format.fprintf ppf "certificate: all claims verified"
  | Some ds ->
    let e = D.count D.Error ds
    and w = D.count D.Warning ds
    and i = D.count D.Info ds in
    if e > 0 then
      Format.fprintf ppf
        "certificate: FAILED (%d error(s), %d warning(s), %d info) [%s]" e w i
        (String.concat " " (D.codes ds))
    else
      Format.fprintf ppf
        "certificate: verified with %d warning(s), %d info note(s) [%s]" w i
        (String.concat " " (D.codes ds))

let pp_exact ppf (exact : Vpart_certify.Certify.Exact.report option) =
  let module E = Vpart_certify.Certify.Exact in
  match exact with
  | None -> Format.fprintf ppf "exact audit: not requested"
  | Some r ->
    let valid, masked, refuted, unchecked = E.counts r in
    if refuted > 0 then
      Format.fprintf ppf
        "exact audit: REFUTED (%d claim(s) exactly refuted, %d masked, %d \
         valid)"
        refuted masked valid
    else if masked > 0 then begin
      Format.fprintf ppf
        "exact audit: %d claim(s) exactly valid, %d tolerance-masked" valid
        masked;
      match E.worst_masked r with
      | Some c ->
        Format.fprintf ppf " (worst: %s, exact residual %a <= tolerance %g)"
          c.E.claim Vpart_rational.Rational.pp c.E.residual c.E.threshold
      | None -> ()
    end
    else if unchecked > 0 then
      Format.fprintf ppf
        "exact audit: %d claim(s) exactly valid, %d unchecked" valid unchecked
    else
      Format.fprintf ppf "exact audit: all %d claim(s) exactly valid" valid

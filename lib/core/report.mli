(** Human-readable reports for partitionings and solver runs. *)

val pp_partitioning :
  Instance.t -> Format.formatter -> Partitioning.t -> unit
(** Table-4-style layout: one block per site with the transactions homed
    there followed by the attributes stored there (qualified, sorted). *)

val pp_solution_summary :
  Instance.t -> p:float -> lambda:float -> Format.formatter -> Partitioning.t -> unit
(** Cost summary: objective (4), read/write/transfer breakdown, per-site
    work, replication statistics, average row-width reduction per table. *)

val pp_diagnostics :
  Format.formatter -> Vpart_analysis.Diagnostic.t list -> unit
(** Diagnostics section: every finding (sorted, errors first) plus a
    severity-count summary; ["diagnostics: none"] when the list is empty.
    Used by the CLI's [check] subcommand and after solver runs. *)

val pp_sa_search : Format.formatter -> Sa_solver.search_stats -> unit
(** Two-line summary of an annealing run's search statistics: move /
    acceptance counts and the cooling trajectory (epochs, τ₀ → final τ). *)

val pp_sa_chains : Format.formatter -> Sa_solver.search_stats array -> unit
(** One line per portfolio chain ([Sa_solver.result.chains]): moves,
    acceptance, epochs and temperature trajectory.  Meant for
    [restarts > 1] runs; prints a single line for a one-chain array. *)

val pp_mip_kernel : Format.formatter -> Qp_solver.result -> unit
(** One-line LP-kernel summary of a QP/MIP solve: the basis kernel the
    solve ran with ({!Qp_solver.options.kernel}), node and simplex
    iteration counts, plus the basis-update statistics — eta applications
    and refactorizations for the eta/sparse kernels, refactorizations
    only for the dense one — so the update-vs-rebuild tradeoff of the
    [refactor_every] cadence is visible in run output.  On a
    {!Qp_solver.Too_large} refusal it prints the row count next to the
    configured [max_rows] cap instead. *)

val pp_certificate :
  Format.formatter -> Vpart_analysis.Diagnostic.t list option -> unit
(** One-line certificate verdict for a solver's [certificate] field:
    not requested / all claims verified / verified with warnings /
    FAILED, with severity counts and the distinct [C]-codes involved. *)

val pp_exact :
  Format.formatter -> Vpart_certify.Certify.Exact.report option -> unit
(** One-line verdict for a solver's [exact] field ({!Qp_solver.result},
    {!Sa_solver.result}, {!Iterative_solver.result}): not requested /
    all claims exactly valid / counts of tolerance-masked claims with the
    worst exact residual / REFUTED with counts. *)

val row_width_reduction : Instance.t -> Partitioning.t -> (string * int * float) list
(** Per table: name, original row width, and the average width of its
    fractions across sites holding any of it (smaller = narrower rows,
    the effect the paper's introduction motivates). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t n =
  if n < 0 then invalid_arg "Rng.split: n must be non-negative";
  (* Seed each child from a well-mixed draw of the parent.  The children
     start from distinct 64-bit states (distinct with overwhelming
     probability), so their streams are decorrelated in a way that
     [create (seed + i)] -- sequential raw states -- would not be, and
     the whole family is a pure function of the parent's state. *)
  let seeds = Array.make (max n 1) 0L in
  for i = 0 to n - 1 do
    seeds.(i) <- int64 t
  done;
  Array.init n (fun i -> { state = seeds.(i) })

let float t =
  (* 53 top bits -> [0,1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* mask to 62 bits so the value is non-negative as a native int;
     plain modulo bias is negligible for our bounds (<< 2^62) *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t prob = float t < prob

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_distinct t k n =
  if k >= n then begin
    let all = Array.init n (fun i -> i) in
    shuffle t all;
    Array.to_list all
  end
  else begin
    (* partial Fisher-Yates on an index array *)
    let arr = Array.init n (fun i -> i) in
    let out = ref [] in
    for i = 0 to k - 1 do
      let j = int_in t i (n - 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp;
      out := arr.(i) :: !out
    done;
    !out
  end

(** Deterministic pseudo-random numbers (SplitMix64).

    Both the simulated-annealing solver and the random instance generator
    need reproducible randomness that does not depend on the OCaml runtime's
    [Random] implementation details, so experiment tables are bit-stable
    across OCaml versions.  SplitMix64 is small, fast and well distributed
    (Steele, Lea & Flood, OOPSLA 2014). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val copy : t -> t
(** Independent copy: the original and the copy produce the same stream. *)

val split : t -> int -> t array
(** [split t n] advances [t] by [n] draws and returns [n] child
    generators with distinct, decorrelated streams (each child is seeded
    from one well-mixed output of [t]).  Reproducible: the same parent
    state always yields the same family.  Unlike {!copy}, the children
    do not replay the parent's stream — use one child per domain for
    parallel work. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> float -> bool
(** [bool t prob] is [true] with probability [prob]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k n] draws [k] distinct integers from [\[0, n)]
    (all of them if [k >= n]), in random order. *)

type options = {
  num_sites : int;
  p : float;
  lambda : float;
  allow_replication : bool;
  use_grouping : bool;
  seed : int;
  move_fraction : float;
  inner_loops : int;
  cooling : float;
  accept_gap : float;
  freeze_ratio : float;
  max_outer : int;
  time_limit : float option;
  latency : float option;
  certify : bool;
  restarts : int;
  jobs : int;
}

let default_options =
  {
    num_sites = 2;
    p = 8.;
    lambda = 0.1;
    allow_replication = true;
    use_grouping = true;
    seed = 1;
    move_fraction = 0.10;
    inner_loops = 40;
    cooling = 0.85;
    accept_gap = 0.05;
    freeze_ratio = 1e-3;
    max_outer = 400;
    time_limit = None;
    latency = None;
    certify = false;
    restarts = 1;
    jobs = 1;
  }

type search_stats = {
  moves : int;
  accepted_moves : int;
  rejected_moves : int;
  epochs : int;
  initial_temperature : float;
  final_temperature : float;
}

type result = {
  partitioning : Partitioning.t;
  cost : float;
  objective6 : float;
  elapsed : float;
  iterations : int;
  accepted : int;
  outer_rounds : int;
  search : search_stats;
  chains : search_stats array;
  certificate : Vpart_analysis.Diagnostic.t list option;
}

(* ------------------------------------------------------------------ *)
(* Exact subproblem solvers (replication mode)                         *)
(* ------------------------------------------------------------------ *)

(* Optimal y given x: separable per attribute. *)
let optimize_y_given_x (stats : Stats.t) opts (part : Partitioning.t) =
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = opts.num_sites in
  (* coefficient of y_{a,s}: sum of c1 over transactions homed at s, + c2 *)
  let coef = Array.init na (fun a -> Array.make ns stats.Stats.c2.(a)) in
  let forced = Array.init na (fun _ -> Array.make ns false) in
  for t = 0 to nt - 1 do
    let home = part.Partitioning.txn_site.(t) in
    let c1t = stats.Stats.c1.(t) and phi_t = stats.Stats.phi.(t) in
    for a = 0 to na - 1 do
      coef.(a).(home) <- coef.(a).(home) +. c1t.(a);
      if phi_t.(a) then forced.(a).(home) <- true
    done
  done;
  for a = 0 to na - 1 do
    let row = part.Partitioning.placed.(a) in
    Array.fill row 0 ns false;
    let any = ref false in
    for s = 0 to ns - 1 do
      if forced.(a).(s) || coef.(a).(s) < 0. then begin
        row.(s) <- true;
        any := true
      end
    done;
    if not !any then begin
      let best = ref 0 and best_c = ref coef.(a).(0) in
      for s = 1 to ns - 1 do
        if coef.(a).(s) < !best_c then begin
          best := s;
          best_c := coef.(a).(s)
        end
      done;
      row.(!best) <- true
    end
  done

(* Optimal x given y: separable per transaction over feasible sites. *)
let optimize_x_given_y (stats : Stats.t) opts (part : Partitioning.t) =
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = opts.num_sites in
  for t = 0 to nt - 1 do
    let c1t = stats.Stats.c1.(t) and phi_t = stats.Stats.phi.(t) in
    let best = ref (-1) and best_c = ref infinity in
    for s = 0 to ns - 1 do
      let feasible = ref true in
      for a = 0 to na - 1 do
        if phi_t.(a) && not part.Partitioning.placed.(a).(s) then feasible := false
      done;
      if !feasible then begin
        let c = ref 0. in
        for a = 0 to na - 1 do
          if part.Partitioning.placed.(a).(s) then c := !c +. c1t.(a)
        done;
        if !c < !best_c then begin
          best := s;
          best_c := !c
        end
      end
    done;
    if !best >= 0 then part.Partitioning.txn_site.(t) <- !best
    (* else: no site hosts the whole read set; keep the current assignment
       and let the repair below restore feasibility *)
  done;
  Partitioning.repair_single_sitedness stats part

(* ------------------------------------------------------------------ *)
(* Neighborhoods (§3)                                                  *)
(* ------------------------------------------------------------------ *)

let count_moves frac n = max 1 (int_of_float (Float.round (frac *. float_of_int n)))

let perturb_x rng opts frac (part : Partitioning.t) =
  let nt = Array.length part.Partitioning.txn_site in
  if nt > 0 && opts.num_sites > 1 then begin
    let k = count_moves frac nt in
    List.iter
      (fun t ->
         let cur = part.Partitioning.txn_site.(t) in
         let s = Rng.int rng (opts.num_sites - 1) in
         part.Partitioning.txn_site.(t) <- (if s >= cur then s + 1 else s))
      (Rng.sample_distinct rng k nt)
  end

(* Extend replication: each selected attribute gains one replica site. *)
let perturb_y rng opts frac (part : Partitioning.t) =
  let na = Array.length part.Partitioning.placed in
  if na > 0 && opts.num_sites > 1 then begin
    let k = count_moves frac na in
    List.iter
      (fun a ->
         let row = part.Partitioning.placed.(a) in
         let absent = ref [] in
         for s = opts.num_sites - 1 downto 0 do
           if not row.(s) then absent := s :: !absent
         done;
         match !absent with
         | [] -> ()
         | sites -> row.(List.nth sites (Rng.int rng (List.length sites))) <- true)
      (Rng.sample_distinct rng k na)
  end

(* ------------------------------------------------------------------ *)
(* Annealing loop shared by both modes                                 *)
(* ------------------------------------------------------------------ *)

type anneal_callbacks = {
  propose : [ `Fix_x | `Fix_y ] -> unit;
      (** perturb the state and re-optimize the non-fixed vector *)
  snapshot : unit -> Partitioning.t;
  restore : Partitioning.t -> unit;
  current : unit -> Partitioning.t;
}

(* [epoch_hook best_obj best] runs at every epoch boundary of a
   portfolio chain: it publishes the chain's best to the other domains
   and may return a strictly better (objective, partitioning) for this
   chain to adopt.  The hook must not touch the chain's annealing state
   ([current]/rng/temperature), so the chain's own trajectory — and its
   [search_stats] — stay exactly those of a sequential run with the same
   seed; adoption only ever lowers the reported best.  [best] is never
   mutated in place by the annealer (it is replaced by fresh snapshots),
   so the hook may share it across domains without copying. *)
let anneal ?(extra = fun _ -> 0.) ?epoch_hook (stats : Stats.t) opts rng
    callbacks =
  Obs.with_span "sa.anneal"
    ~attrs:
      [
        ("txns", Obs.Int stats.Stats.num_txns);
        ("attrs", Obs.Int stats.Stats.num_attrs);
      ]
  @@ fun () ->
  let lambda = opts.lambda in
  let eval part = Cost_model.objective stats ~lambda part +. extra part in
  let start = Obs.Clock.now () in
  let deadline = Option.map (fun tl -> start +. tl) opts.time_limit in
  let out_of_time () =
    match deadline with None -> false | Some d -> Obs.Clock.now () > d
  in
  let current_obj = ref (eval (callbacks.current ())) in
  let best = ref (callbacks.snapshot ()) in
  let best_obj = ref !current_obj in
  (* §5.1: accept a accept_gap-worse solution with probability 1/2 in the
     first iterations. *)
  let tau0 =
    let c = Float.max !best_obj 1e-9 in
    -.(opts.accept_gap *. c) /. Float.log 0.5
  in
  let tau = ref tau0 in
  let iterations = ref 0 and accepted = ref 0 and outer = ref 0 in
  let fix = ref `Fix_x in
  (try
     while
       !tau > opts.freeze_ratio *. tau0
       && !outer < opts.max_outer
       && not (out_of_time ())
     do
       incr outer;
       let epoch_start_accepted = !accepted in
       for _ = 1 to opts.inner_loops do
         if out_of_time () then raise Exit;
         incr iterations;
         let saved = callbacks.snapshot () in
         callbacks.propose !fix;
         let cand_obj = eval (callbacks.current ()) in
         let delta = cand_obj -. !current_obj in
         if delta <= 0. || Rng.float rng < Float.exp (-.delta /. !tau) then begin
           incr accepted;
           current_obj := cand_obj;
           if cand_obj < !best_obj then begin
             best_obj := cand_obj;
             best := callbacks.snapshot ();
             if Obs.enabled () then
               Obs.point "sa.best"
                 ~attrs:
                   [
                     ("obj", Obs.Float !best_obj);
                     ("move", Obs.Int !iterations);
                   ]
           end
         end
         else callbacks.restore saved;
         fix := (match !fix with `Fix_x -> `Fix_y | `Fix_y -> `Fix_x)
       done;
       tau := opts.cooling *. !tau;
       (match epoch_hook with
        | None -> ()
        | Some hook -> (
          match hook !best_obj !best with
          | Some (obj, part) when obj < !best_obj ->
            best_obj := obj;
            best := part;
            if Obs.enabled () then
              Obs.point "sa.exchange"
                ~attrs:[ ("obj", Obs.Float obj); ("epoch", Obs.Int !outer) ]
          | _ -> ()));
       if Obs.enabled () then begin
         Obs.gauge "sa.temperature" !tau;
         Obs.point "sa.epoch"
           ~attrs:
             [
               ("epoch", Obs.Int !outer);
               ("temperature", Obs.Float !tau);
               ( "accept_rate",
                 Obs.Float
                   (float_of_int (!accepted - epoch_start_accepted)
                    /. float_of_int opts.inner_loops) );
               ("best_obj", Obs.Float !best_obj);
               ("current_obj", Obs.Float !current_obj);
             ]
       end
     done
   with Exit -> ());
  if Obs.enabled () then begin
    Obs.count "sa.moves" (float_of_int !iterations);
    Obs.count "sa.accepted" (float_of_int !accepted);
    Obs.count "sa.rejected" (float_of_int (!iterations - !accepted))
  end;
  let search =
    {
      moves = !iterations;
      accepted_moves = !accepted;
      rejected_moves = !iterations - !accepted;
      epochs = !outer;
      initial_temperature = tau0;
      final_temperature = !tau;
    }
  in
  (!best, !best_obj, search, Obs.Clock.now () -. start)

(* ------------------------------------------------------------------ *)
(* Replication mode                                                    *)
(* ------------------------------------------------------------------ *)

let solve_replicated ?extra ?epoch_hook (stats : Stats.t) opts rng =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let part = Partitioning.create ~num_sites:opts.num_sites ~num_txns:nt ~num_attrs:na in
  (* random initial x satisfying (2) *)
  for t = 0 to nt - 1 do
    part.Partitioning.txn_site.(t) <- Rng.int rng opts.num_sites
  done;
  optimize_y_given_x stats opts part;
  let state = ref part in
  let callbacks =
    {
      propose =
        (fun fix ->
           let p = !state in
           perturb_x rng opts opts.move_fraction p;
           perturb_y rng opts opts.move_fraction p;
           (* [`Fix_x] re-optimizes y (a y-step) and vice versa. *)
           (match fix with
            | `Fix_x ->
              Obs.timed "sa.ystep.seconds" (fun () ->
                  optimize_y_given_x stats opts p)
            | `Fix_y ->
              Obs.timed "sa.xstep.seconds" (fun () ->
                  optimize_x_given_y stats opts p));
           Partitioning.repair_single_sitedness stats p);
      snapshot = (fun () -> Partitioning.copy !state);
      restore = (fun saved -> state := saved);
      current = (fun () -> !state);
    }
  in
  anneal ?extra ?epoch_hook stats opts rng callbacks

(* ------------------------------------------------------------------ *)
(* Disjoint mode                                                       *)
(* ------------------------------------------------------------------ *)

(* Connected components of the transaction / read-attribute graph: in a
   disjoint partitioning, single-sitedness forces each component onto one
   site. *)
let components (stats : Stats.t) =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let parent = Array.init (nt + na) (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for t = 0 to nt - 1 do
    for a = 0 to na - 1 do
      if stats.Stats.phi.(t).(a) then union t (nt + a)
    done
  done;
  let comp_ids = Hashtbl.create 16 in
  let comp_of = Array.make (nt + na) (-1) in
  let n = ref 0 in
  for i = 0 to nt + na - 1 do
    let r = find i in
    let c =
      match Hashtbl.find_opt comp_ids r with
      | Some c -> c
      | None ->
        let c = !n in
        incr n;
        Hashtbl.add comp_ids r c;
        c
    in
    comp_of.(i) <- c
  done;
  (!n, comp_of)

let solve_disjoint ?extra ?epoch_hook (stats : Stats.t) opts rng =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let ncomp, comp_of = components stats in
  let comp_site = Array.init ncomp (fun _ -> Rng.int rng opts.num_sites) in
  let part = Partitioning.create ~num_sites:opts.num_sites ~num_txns:nt ~num_attrs:na in
  (* Attributes read by someone follow their component; never-read
     attributes are placed greedily given x. *)
  let apply () =
    for t = 0 to nt - 1 do
      part.Partitioning.txn_site.(t) <- comp_site.(comp_of.(t))
    done;
    let read = Array.make na false in
    for t = 0 to nt - 1 do
      for a = 0 to na - 1 do
        if stats.Stats.phi.(t).(a) then read.(a) <- true
      done
    done;
    (* greedy single placement for every attribute *)
    let coef = Array.init na (fun a -> Array.make opts.num_sites stats.Stats.c2.(a)) in
    for t = 0 to nt - 1 do
      let home = part.Partitioning.txn_site.(t) in
      let c1t = stats.Stats.c1.(t) in
      for a = 0 to na - 1 do
        coef.(a).(home) <- coef.(a).(home) +. c1t.(a)
      done
    done;
    for a = 0 to na - 1 do
      let row = part.Partitioning.placed.(a) in
      Array.fill row 0 opts.num_sites false;
      if read.(a) then row.(comp_site.(comp_of.(nt + a))) <- true
      else begin
        let best = ref 0 and best_c = ref coef.(a).(0) in
        for s = 1 to opts.num_sites - 1 do
          if coef.(a).(s) < !best_c then begin
            best := s;
            best_c := coef.(a).(s)
          end
        done;
        row.(!best) <- true
      end
    done
  in
  apply ();
  let saved_sites = ref (Array.copy comp_site) in
  let callbacks =
    {
      propose =
        (fun _fix ->
           saved_sites := Array.copy comp_site;
           if opts.num_sites > 1 then begin
             let k = count_moves opts.move_fraction ncomp in
             List.iter
               (fun c ->
                  let cur = comp_site.(c) in
                  let s = Rng.int rng (opts.num_sites - 1) in
                  comp_site.(c) <- (if s >= cur then s + 1 else s))
               (Rng.sample_distinct rng k ncomp)
           end;
           apply ());
      snapshot =
        (fun () ->
           (* component sites fully determine the state *)
           apply ();
           Partitioning.copy part);
      restore =
        (fun _saved ->
           Array.blit !saved_sites 0 comp_site 0 ncomp;
           apply ());
      current = (fun () -> part);
    }
  in
  anneal ?extra ?epoch_hook stats opts rng callbacks

(* The trivial "everything co-located on one site" candidate: all
   transactions on site s with y optimized.  The annealer's random start
   plus small moves can miss this basin entirely on instances where
   partitioning does not pay (the paper's rndB...x100 rows equal the
   |S| = 1 column exactly), so the returned solution is never worse than
   the best collapsed layout. *)
let collapsed_candidate (stats : Stats.t) opts site =
  let part =
    Partitioning.create ~num_sites:opts.num_sites ~num_txns:stats.Stats.num_txns
      ~num_attrs:stats.Stats.num_attrs
  in
  Array.fill part.Partitioning.txn_site 0 stats.Stats.num_txns site;
  optimize_y_given_x stats opts part;
  part

let solve ?(options = default_options) (inst : Instance.t) =
  Obs.with_span "sa.solve" @@ fun () ->
  let grouping =
    if options.use_grouping then Grouping.compute inst else Grouping.identity inst
  in
  let reduced = grouping.Grouping.reduced in
  let stats = Stats.compute reduced ~p:options.p in
  let full_stats = Stats.compute inst ~p:options.p in
  (* Appendix A: fold the latency estimate into the annealed objective,
     scaled by lambda like every other cost term (matching the QP). *)
  let extra =
    match options.latency with
    | None -> fun _ -> 0.
    | Some pl ->
      fun part -> options.lambda *. Cost_model.latency reduced ~pl part
  in
  let restarts = max 1 options.restarts in
  let best, best_obj6, search, chains, elapsed =
    if restarts = 1 then begin
      (* Single chain: the pre-portfolio sequential code path, bit for
         bit (plain seed, no pool, no exchange). *)
      let rng = Rng.create options.seed in
      let best, obj, search, elapsed =
        if options.allow_replication then
          solve_replicated ~extra stats options rng
        else solve_disjoint ~extra stats options rng
      in
      (best, obj, search, [| search |], elapsed)
    end
    else begin
      (* Portfolio: [restarts] independent chains with split seeds run
         across [jobs] domains.  Chains exchange their bests at epoch
         boundaries through a monotone atomic cell; in replication mode
         the receiving chain additionally polishes the adopted layout
         with one exact y-step + x-step sweep (outside its own
         trajectory).  The portfolio best is therefore never worse than
         the best of the same chains run sequentially. *)
      let t_start = Obs.Clock.now () in
      (* Chain 0 anneals the exact stream a [restarts = 1] run would use,
         so the portfolio is provably never worse than the sequential run
         on the same seed (its reported best can only be replaced by a
         strictly better exchanged layout); the extra chains explore
         decorrelated split streams. *)
      let rngs =
        let splits = Rng.split (Rng.create options.seed) (restarts - 1) in
        Array.init restarts (fun i ->
            if i = 0 then Rng.create options.seed else splits.(i - 1))
      in
      let cell :
            (float * Partitioning.t option) Atomic.t =
        Atomic.make (infinity, None)
      in
      let rec publish obj part =
        let cur = Atomic.get cell in
        if obj < fst cur then
          if not (Atomic.compare_and_set cell cur (obj, Some part)) then
            publish obj part
      in
      let eval part =
        Cost_model.objective stats ~lambda:options.lambda part +. extra part
      in
      let epoch_hook best_obj best =
        publish best_obj best;
        match Atomic.get cell with
        | gobj, Some gpart when gobj < best_obj ->
          if options.allow_replication then begin
            (* Side polish on a private copy; publish any improvement. *)
            let c = Partitioning.copy gpart in
            optimize_y_given_x stats options c;
            optimize_x_given_y stats options c;
            let cobj = eval c in
            if cobj < gobj then begin
              publish cobj c;
              Some (cobj, c)
            end
            else Some (gobj, gpart)
          end
          else Some (gobj, gpart)
        | _ -> None
      in
      let run_chain rng =
        if options.allow_replication then
          solve_replicated ~extra ~epoch_hook stats options rng
        else solve_disjoint ~extra ~epoch_hook stats options rng
      in
      let jobs = max 1 (min options.jobs restarts) in
      let results =
        Par.with_pool ~jobs (fun pool -> Par.map_array pool run_chain rngs)
      in
      let best = ref None and best_obj = ref infinity in
      Array.iter
        (fun (b, obj, _, _) ->
           if obj < !best_obj then begin
             best_obj := obj;
             best := Some b
           end)
        results;
      (* The cell may hold a polished layout better than every chain's
         own best. *)
      (match Atomic.get cell with
       | gobj, Some gpart when gobj < !best_obj ->
         best_obj := gobj;
         best := Some gpart
       | _ -> ());
      let chains = Array.map (fun (_, _, s, _) -> s) results in
      let search =
        Array.fold_left
          (fun acc (c : search_stats) ->
             {
               moves = acc.moves + c.moves;
               accepted_moves = acc.accepted_moves + c.accepted_moves;
               rejected_moves = acc.rejected_moves + c.rejected_moves;
               epochs = max acc.epochs c.epochs;
               initial_temperature = acc.initial_temperature;
               final_temperature =
                 Float.min acc.final_temperature c.final_temperature;
             })
          { chains.(0) with moves = 0; accepted_moves = 0; rejected_moves = 0 }
          chains
      in
      let best =
        match !best with
        | Some b -> b
        | None -> invalid_arg "Sa_solver: empty portfolio"
      in
      (best, !best_obj, search, chains, Obs.Clock.now () -. t_start)
    end
  in
  let best, _obj6 =
    let collapsed = collapsed_candidate stats options 0 in
    let cobj =
      Cost_model.objective stats ~lambda:options.lambda collapsed
      +. extra collapsed
    in
    if cobj < best_obj6 then (collapsed, cobj) else (best, best_obj6)
  in
  (match Partitioning.validate stats best with
   | Ok () -> ()
   | Error e -> invalid_arg ("Sa_solver: internal invariant broken: " ^ e));
  let partitioning = Grouping.expand grouping best in
  let cost = Cost_model.cost full_stats partitioning in
  let objective6 =
    Cost_model.objective full_stats ~lambda:options.lambda partitioning
  in
  let certificate =
    if not options.certify then None
    else
      (* The annealer tracks its objective incrementally; certify both the
         internal best (against a from-scratch reduced-space evaluation)
         and the reported cost/objective (against the instance-level
         breakdown, which never touches the Stats coefficients). *)
      let internal =
        let fresh =
          Cost_model.objective stats ~lambda:options.lambda best +. extra best
        in
        if Float.abs (fresh -. _obj6) > 1e-6 *. (1. +. Float.abs fresh) then
          [ Vpart_analysis.Diagnostic.error ~code:"C203"
              "annealer's tracked best objective %g differs from a fresh \
               re-evaluation %g of the returned layout"
              _obj6 fresh ]
        else []
      in
      Some
        (Vpart_analysis.Diagnostic.sort
           (internal
            @ Solution_certify.certify_partitioning full_stats partitioning
            @ Solution_certify.certify_cost ~code:"C203" inst ~p:options.p
                partitioning ~claimed:cost
            @ Solution_certify.certify_objective6 inst ~p:options.p
                ~lambda:options.lambda partitioning ~claimed:objective6))
  in
  {
    partitioning;
    cost;
    objective6;
    elapsed;
    iterations = search.moves;
    accepted = search.accepted_moves;
    outer_rounds = search.epochs;
    search;
    chains;
    certificate;
  }

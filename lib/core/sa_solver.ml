type options = {
  num_sites : int;
  p : float;
  lambda : float;
  allow_replication : bool;
  use_grouping : bool;
  seed : int;
  move_fraction : float;
  inner_loops : int;
  cooling : float;
  accept_gap : float;
  freeze_ratio : float;
  max_outer : int;
  time_limit : float option;
  latency : float option;
  certify : bool;
  certify_exact : bool;
  certify_tol : float option;
  restarts : int;
  jobs : int;
  full_eval : bool;
}

let default_options =
  {
    num_sites = 2;
    p = 8.;
    lambda = 0.1;
    allow_replication = true;
    use_grouping = true;
    seed = 1;
    move_fraction = 0.10;
    inner_loops = 40;
    cooling = 0.85;
    accept_gap = 0.05;
    freeze_ratio = 1e-3;
    max_outer = 400;
    time_limit = None;
    latency = None;
    certify = false;
    certify_exact = false;
    certify_tol = None;
    restarts = 1;
    jobs = 1;
    full_eval = false;
  }

type search_stats = {
  moves : int;
  accepted_moves : int;
  rejected_moves : int;
  epochs : int;
  initial_temperature : float;
  final_temperature : float;
}

type result = {
  partitioning : Partitioning.t;
  cost : float;
  objective6 : float;
  elapsed : float;
  iterations : int;
  accepted : int;
  outer_rounds : int;
  search : search_stats;
  chains : search_stats array;
  certificate : Vpart_analysis.Diagnostic.t list option;
  exact : Vpart_certify.Certify.Exact.report option;
}

(* ------------------------------------------------------------------ *)
(* Exact subproblem solvers (replication mode)                         *)
(* ------------------------------------------------------------------ *)

(* Optimal y given x: separable per attribute. *)
let optimize_y_given_x (stats : Stats.t) opts (part : Partitioning.t) =
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = opts.num_sites in
  (* coefficient of y_{a,s}: sum of c1 over transactions homed at s, + c2 *)
  let coef = Array.init na (fun a -> Array.make ns stats.Stats.c2.(a)) in
  let forced = Array.init na (fun _ -> Array.make ns false) in
  for t = 0 to nt - 1 do
    let home = part.Partitioning.txn_site.(t) in
    let c1t = Vec.row stats.Stats.c1 t and phi_t = stats.Stats.phi.(t) in
    for a = 0 to na - 1 do
      coef.(a).(home) <- coef.(a).(home) +. c1t.{a};
      if phi_t.(a) then forced.(a).(home) <- true
    done
  done;
  for a = 0 to na - 1 do
    let row = part.Partitioning.placed.(a) in
    Array.fill row 0 ns false;
    let any = ref false in
    for s = 0 to ns - 1 do
      if forced.(a).(s) || coef.(a).(s) < 0. then begin
        row.(s) <- true;
        any := true
      end
    done;
    if not !any then begin
      let best = ref 0 and best_c = ref coef.(a).(0) in
      for s = 1 to ns - 1 do
        if coef.(a).(s) < !best_c then begin
          best := s;
          best_c := coef.(a).(s)
        end
      done;
      row.(!best) <- true
    end
  done

(* Optimal x given y: separable per transaction over feasible sites. *)
let optimize_x_given_y (stats : Stats.t) opts (part : Partitioning.t) =
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = opts.num_sites in
  for t = 0 to nt - 1 do
    let c1t = Vec.row stats.Stats.c1 t and phi_t = stats.Stats.phi.(t) in
    let best = ref (-1) and best_c = ref infinity in
    for s = 0 to ns - 1 do
      let feasible = ref true in
      for a = 0 to na - 1 do
        if phi_t.(a) && not part.Partitioning.placed.(a).(s) then feasible := false
      done;
      if !feasible then begin
        let c = ref 0. in
        for a = 0 to na - 1 do
          if part.Partitioning.placed.(a).(s) then c := !c +. c1t.{a}
        done;
        if !c < !best_c then begin
          best := s;
          best_c := !c
        end
      end
    done;
    if !best >= 0 then part.Partitioning.txn_site.(t) <- !best
    (* else: no site hosts the whole read set; keep the current assignment
       and let the repair below restore feasibility *)
  done;
  Partitioning.repair_single_sitedness stats part

(* ------------------------------------------------------------------ *)
(* Neighborhoods (§3)                                                  *)
(* ------------------------------------------------------------------ *)

let count_moves frac n = max 1 (int_of_float (Float.round (frac *. float_of_int n)))

let perturb_x rng opts frac (part : Partitioning.t) =
  let nt = Array.length part.Partitioning.txn_site in
  if nt > 0 && opts.num_sites > 1 then begin
    let k = count_moves frac nt in
    List.iter
      (fun t ->
         let cur = part.Partitioning.txn_site.(t) in
         let s = Rng.int rng (opts.num_sites - 1) in
         part.Partitioning.txn_site.(t) <- (if s >= cur then s + 1 else s))
      (Rng.sample_distinct rng k nt)
  end

(* Extend replication: each selected attribute gains one replica site. *)
let perturb_y rng opts frac (part : Partitioning.t) =
  let na = Array.length part.Partitioning.placed in
  if na > 0 && opts.num_sites > 1 then begin
    let k = count_moves frac na in
    List.iter
      (fun a ->
         let row = part.Partitioning.placed.(a) in
         let absent = ref [] in
         for s = opts.num_sites - 1 downto 0 do
           if not row.(s) then absent := s :: !absent
         done;
         match !absent with
         | [] -> ()
         | sites -> row.(List.nth sites (Rng.int rng (List.length sites))) <- true)
      (Rng.sample_distinct rng k na)
  end

(* ------------------------------------------------------------------ *)
(* Per-solve context: loop-invariant work hoisted out of the move loop *)
(* ------------------------------------------------------------------ *)

(* Hoisted Appendix-A latency evaluator.  [Cost_model.latency] re-walks
   the workload's query lists on every call and the annealer evaluates it
   once per move; precompute the write queries (home transaction,
   frequency, accessed attributes as arrays) once per solve instead. *)
let make_latency_eval (inst : Instance.t) =
  let wl = inst.Instance.workload in
  let acc = ref [] in
  for q = Workload.num_queries wl - 1 downto 0 do
    let query = Workload.query wl q in
    if Workload.is_write query then
      acc :=
        ( Workload.txn_of_query wl q,
          query.Workload.freq,
          Array.of_list query.Workload.attrs )
        :: !acc
  done;
  let wq = Array.of_list !acc in
  fun (part : Partitioning.t) ->
    let ns = part.Partitioning.num_sites in
    let total = ref 0. in
    Array.iter
      (fun (tx, freq, attrs) ->
         let home = part.Partitioning.txn_site.(tx) in
         let remote = ref false in
         Array.iter
           (fun a ->
              if not !remote then begin
                let row = part.Partitioning.placed.(a) in
                for s = 0 to ns - 1 do
                  if row.(s) && s <> home then remote := true
                done
              end)
           attrs;
         if !remote then total := !total +. freq)
      wq;
    !total

type ctx = {
  stats : Stats.t;
  opts : options;
  phi_attrs : int array array;  (* txn  -> attrs with φ(t,a), ascending *)
  phi_txns : int array array;   (* attr -> txns with φ(t,a), ascending *)
  latency : (Instance.t * float) option;  (* reduced instance, pl *)
  extra : Partitioning.t -> float;
      (* λ·pl·latency (Appendix A), hoisted; constant 0 when disabled *)
}

let make_ctx (reduced : Instance.t) (stats : Stats.t) (opts : options) =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let counts_t = Array.make nt 0 and counts_a = Array.make na 0 in
  for t = 0 to nt - 1 do
    for a = 0 to na - 1 do
      if stats.Stats.phi.(t).(a) then begin
        counts_t.(t) <- counts_t.(t) + 1;
        counts_a.(a) <- counts_a.(a) + 1
      end
    done
  done;
  let phi_attrs = Array.init nt (fun t -> Array.make counts_t.(t) 0) in
  let phi_txns = Array.init na (fun a -> Array.make counts_a.(a) 0) in
  Array.fill counts_t 0 nt 0;
  Array.fill counts_a 0 na 0;
  for t = 0 to nt - 1 do
    for a = 0 to na - 1 do
      if stats.Stats.phi.(t).(a) then begin
        phi_attrs.(t).(counts_t.(t)) <- a;
        counts_t.(t) <- counts_t.(t) + 1;
        phi_txns.(a).(counts_a.(a)) <- t;
        counts_a.(a) <- counts_a.(a) + 1
      end
    done
  done;
  let latency = Option.map (fun pl -> (reduced, pl)) opts.latency in
  let extra =
    match opts.latency with
    | None -> fun _ -> 0.
    | Some pl ->
      let lat = make_latency_eval reduced in
      fun part -> opts.lambda *. pl *. lat part
  in
  { stats; opts; phi_attrs; phi_txns; latency; extra }

(* ------------------------------------------------------------------ *)
(* Move engines                                                        *)
(* ------------------------------------------------------------------ *)

(* The annealing loop drives the search through this interface.  The
   full-evaluation engines ([full_eval = true]) reproduce the pre-delta
   behavior — copy the state, perturb, re-optimize, pay a full
   {!Cost_model.objective} — and serve as the measured baseline; the
   delta engines track the objective through {!Delta_cost} and undo
   rejected moves through its journal instead of restoring snapshots. *)
type engine = {
  init_obj : float;
  propose : [ `Fix_x | `Fix_y ] -> float;
      (** perturb + re-optimize the non-fixed vector; returns the
          candidate objective *)
  accept : unit -> unit;
  reject : unit -> unit;  (** roll the proposal back *)
  snapshot_best : unit -> Partitioning.t;
  epoch_refresh : float -> float;
      (** epoch boundary: resync incremental caches against float drift;
          takes and returns the current objective *)
  delta_evals : unit -> int;  (** primitive delta updates performed *)
}

(* Shared by both replication engines: random x satisfying (2), then an
   exact y-step. *)
let init_replicated (stats : Stats.t) opts rng =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let part =
    Partitioning.create ~num_sites:opts.num_sites ~num_txns:nt ~num_attrs:na
  in
  for t = 0 to nt - 1 do
    part.Partitioning.txn_site.(t) <- Rng.int rng opts.num_sites
  done;
  optimize_y_given_x stats opts part;
  part

let full_replicated_engine ctx rng part =
  let stats = ctx.stats and opts = ctx.opts in
  let eval p =
    Cost_model.objective stats ~lambda:opts.lambda p +. ctx.extra p
  in
  let state = ref part in
  let saved = ref part in
  {
    init_obj = eval part;
    propose =
      (fun fix ->
         saved := Partitioning.copy !state;
         let p = !state in
         perturb_x rng opts opts.move_fraction p;
         perturb_y rng opts opts.move_fraction p;
         (* [`Fix_x] re-optimizes y (a y-step) and vice versa. *)
         (match fix with
          | `Fix_x ->
            Obs.timed "sa.ystep.seconds" (fun () ->
                optimize_y_given_x stats opts p)
          | `Fix_y ->
            Obs.timed "sa.xstep.seconds" (fun () ->
                optimize_x_given_y stats opts p));
         Partitioning.repair_single_sitedness stats p;
         eval p);
    accept = (fun () -> ());
    reject = (fun () -> state := !saved);
    snapshot_best = (fun () -> Partitioning.copy !state);
    epoch_refresh = (fun obj -> obj);
    delta_evals = (fun () -> 0);
  }

(* Replication-mode delta engine.  On top of {!Delta_cost} it maintains
   the two aggregates the exact sub-steps need, so a full y- or x-step
   costs O(attrs × sites) / O(txns × sites) instead of O(txns × attrs):

     coef.(a).(s)   = c2(a) + Σ_{t at s} c1(t,a)   (y-step coefficient)
     forced.(a).(s) = #{t at s with φ(t,a)}        (single-sitedness)
     score.(t).(s)  = Σ_{a placed at s} c1(t,a)    (x-step cost)
     miss.(t).(s)   = #{a : φ(t,a), not placed at s}  (x feasibility)

   Rejected proposals are rolled back through an engine journal that
   mirrors the {!Delta_cost} one. *)
type rprim =
  | EFlip of int * int * bool  (* attr, site, was-added *)
  | EAssign of int * int * int (* txn, old site, new site *)

let delta_replicated_engine ctx rng part =
  let stats = ctx.stats and opts = ctx.opts in
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = opts.num_sites in
  let dc = Delta_cost.create ?latency:ctx.latency stats ~lambda:opts.lambda part in
  let coef = Array.make_matrix na ns 0. in
  let forced = Array.make_matrix na ns 0 in
  let score = Array.make_matrix nt ns 0. in
  let miss = Array.make_matrix nt ns 0 in
  let rebuild_aggregates () =
    for a = 0 to na - 1 do
      Array.fill coef.(a) 0 ns stats.Stats.c2.(a);
      Array.fill forced.(a) 0 ns 0
    done;
    for t = 0 to nt - 1 do
      let home = part.Partitioning.txn_site.(t) in
      let c1t = Vec.row stats.Stats.c1 t in
      for a = 0 to na - 1 do
        coef.(a).(home) <- coef.(a).(home) +. c1t.{a}
      done;
      Array.iter
        (fun a -> forced.(a).(home) <- forced.(a).(home) + 1)
        ctx.phi_attrs.(t)
    done;
    for t = 0 to nt - 1 do
      let c1t = Vec.row stats.Stats.c1 t in
      let nphi = Array.length ctx.phi_attrs.(t) in
      for s = 0 to ns - 1 do
        let sc = ref 0. in
        for a = 0 to na - 1 do
          if part.Partitioning.placed.(a).(s) then sc := !sc +. c1t.{a}
        done;
        score.(t).(s) <- !sc;
        let m = ref nphi in
        Array.iter
          (fun a -> if part.Partitioning.placed.(a).(s) then decr m)
          ctx.phi_attrs.(t);
        miss.(t).(s) <- !m
      done
    done
  in
  rebuild_aggregates ();
  let journal = ref [] in
  let flip a s =
    let added = not part.Partitioning.placed.(a).(s) in
    ignore (Delta_cost.apply_move dc (Delta_cost.Flip (a, s)));
    let sign = if added then 1. else -1. in
    for t = 0 to nt - 1 do
      score.(t).(s) <- score.(t).(s) +. (sign *. stats.Stats.c1.{t, a})
    done;
    let d = if added then -1 else 1 in
    Array.iter (fun t -> miss.(t).(s) <- miss.(t).(s) + d) ctx.phi_txns.(a);
    journal := EFlip (a, s, added) :: !journal
  in
  let assign t s =
    let s_old = part.Partitioning.txn_site.(t) in
    if s_old <> s then begin
      ignore (Delta_cost.apply_move dc (Delta_cost.Assign (t, s)));
      let c1t = Vec.row stats.Stats.c1 t in
      for a = 0 to na - 1 do
        coef.(a).(s_old) <- coef.(a).(s_old) -. c1t.{a};
        coef.(a).(s) <- coef.(a).(s) +. c1t.{a}
      done;
      Array.iter
        (fun a ->
           forced.(a).(s_old) <- forced.(a).(s_old) - 1;
           forced.(a).(s) <- forced.(a).(s) + 1)
        ctx.phi_attrs.(t);
      journal := EAssign (t, s_old, s) :: !journal
    end
  in
  let reject () =
    (* head of the journal = last primitive applied: popping in list
       order keeps the engine aggregates and the Delta_cost journal in
       lockstep *)
    List.iter
      (function
        | EFlip (a, s, added) ->
          Delta_cost.undo_move dc;
          let sign = if added then -1. else 1. in
          for t = 0 to nt - 1 do
            score.(t).(s) <- score.(t).(s) +. (sign *. stats.Stats.c1.{t, a})
          done;
          let d = if added then 1 else -1 in
          Array.iter
            (fun t -> miss.(t).(s) <- miss.(t).(s) + d)
            ctx.phi_txns.(a)
        | EAssign (t, s_old, s_new) ->
          Delta_cost.undo_move dc;
          let c1t = Vec.row stats.Stats.c1 t in
          for a = 0 to na - 1 do
            coef.(a).(s_new) <- coef.(a).(s_new) -. c1t.{a};
            coef.(a).(s_old) <- coef.(a).(s_old) +. c1t.{a}
          done;
          Array.iter
            (fun a ->
               forced.(a).(s_new) <- forced.(a).(s_new) - 1;
               forced.(a).(s_old) <- forced.(a).(s_old) + 1)
            ctx.phi_attrs.(t))
      !journal;
    journal := []
  in
  let ystep () =
    (* y optimal given x, from the maintained coefficients: same
       placement rule as [optimize_y_given_x], applied as diffs *)
    for a = 0 to na - 1 do
      let row = part.Partitioning.placed.(a) in
      let cf = coef.(a) and fc = forced.(a) in
      let any = ref false in
      for s = 0 to ns - 1 do
        if fc.(s) > 0 || cf.(s) < 0. then any := true
      done;
      if !any then
        for s = 0 to ns - 1 do
          let want = fc.(s) > 0 || cf.(s) < 0. in
          if want <> row.(s) then flip a s
        done
      else begin
        let best = ref 0 and best_c = ref cf.(0) in
        for s = 1 to ns - 1 do
          if cf.(s) < !best_c then begin
            best := s;
            best_c := cf.(s)
          end
        done;
        for s = 0 to ns - 1 do
          if (s = !best) <> row.(s) then flip a s
        done
      end
    done
  in
  let xstep () =
    (* x optimal given y from score/miss, then the φ-repair for
       transactions left on an infeasible site — the same fixpoint as
       [optimize_x_given_y] + [repair_single_sitedness] *)
    for t = 0 to nt - 1 do
      let best = ref (-1) and best_c = ref infinity in
      for s = 0 to ns - 1 do
        if miss.(t).(s) = 0 && score.(t).(s) < !best_c then begin
          best := s;
          best_c := score.(t).(s)
        end
      done;
      if !best >= 0 then assign t !best
    done;
    for t = 0 to nt - 1 do
      let home = part.Partitioning.txn_site.(t) in
      if miss.(t).(home) > 0 then
        Array.iter
          (fun a -> if not part.Partitioning.placed.(a).(home) then flip a home)
          ctx.phi_attrs.(t)
    done
  in
  {
    init_obj = Delta_cost.objective dc;
    propose =
      (fun fix ->
         if nt > 0 && ns > 1 then begin
           let k = count_moves opts.move_fraction nt in
           List.iter
             (fun t ->
                let cur = part.Partitioning.txn_site.(t) in
                let s = Rng.int rng (ns - 1) in
                assign t (if s >= cur then s + 1 else s))
             (Rng.sample_distinct rng k nt)
         end;
         if na > 0 && ns > 1 then begin
           let k = count_moves opts.move_fraction na in
           List.iter
             (fun a ->
                let row = part.Partitioning.placed.(a) in
                let absent = ref [] in
                for s = ns - 1 downto 0 do
                  if not row.(s) then absent := s :: !absent
                done;
                match !absent with
                | [] -> ()
                | sites ->
                  flip a (List.nth sites (Rng.int rng (List.length sites))))
             (Rng.sample_distinct rng k na)
         end;
         (match fix with
          | `Fix_x -> Obs.timed "sa.ystep.seconds" ystep
          | `Fix_y -> Obs.timed "sa.xstep.seconds" xstep);
         Delta_cost.objective dc);
    accept = (fun () -> journal := []);
    reject;
    snapshot_best = (fun () -> Partitioning.copy part);
    epoch_refresh =
      (fun _ ->
         rebuild_aggregates ();
         Delta_cost.resync dc;
         Delta_cost.objective dc);
    delta_evals = (fun () -> Delta_cost.moves_applied dc);
  }

(* ------------------------------------------------------------------ *)
(* Disjoint mode                                                       *)
(* ------------------------------------------------------------------ *)

(* Connected components of the transaction / read-attribute graph: in a
   disjoint partitioning, single-sitedness forces each component onto one
   site. *)
let components (stats : Stats.t) =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let parent = Array.init (nt + na) (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for t = 0 to nt - 1 do
    for a = 0 to na - 1 do
      if stats.Stats.phi.(t).(a) then union t (nt + a)
    done
  done;
  let comp_ids = Hashtbl.create 16 in
  let comp_of = Array.make (nt + na) (-1) in
  let n = ref 0 in
  for i = 0 to nt + na - 1 do
    let r = find i in
    let c =
      match Hashtbl.find_opt comp_ids r with
      | Some c -> c
      | None ->
        let c = !n in
        incr n;
        Hashtbl.add comp_ids r c;
        c
    in
    comp_of.(i) <- c
  done;
  (!n, comp_of)

type disjoint_ctx = {
  ncomp : int;
  comp_of : int array;
  comp_txns : int array array;   (* component -> its transactions *)
  comp_attrs : int array array;  (* component -> its read attributes *)
  never_read : int array;        (* attrs no transaction φ-reads *)
}

let make_disjoint_ctx (stats : Stats.t) =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let ncomp, comp_of = components stats in
  let read = Array.make na false in
  for t = 0 to nt - 1 do
    for a = 0 to na - 1 do
      if stats.Stats.phi.(t).(a) then read.(a) <- true
    done
  done;
  let tcount = Array.make ncomp 0 and acount = Array.make ncomp 0 in
  for t = 0 to nt - 1 do
    tcount.(comp_of.(t)) <- tcount.(comp_of.(t)) + 1
  done;
  for a = 0 to na - 1 do
    if read.(a) then
      acount.(comp_of.(nt + a)) <- acount.(comp_of.(nt + a)) + 1
  done;
  let comp_txns = Array.init ncomp (fun c -> Array.make tcount.(c) 0) in
  let comp_attrs = Array.init ncomp (fun c -> Array.make acount.(c) 0) in
  Array.fill tcount 0 ncomp 0;
  Array.fill acount 0 ncomp 0;
  for t = 0 to nt - 1 do
    let c = comp_of.(t) in
    comp_txns.(c).(tcount.(c)) <- t;
    tcount.(c) <- tcount.(c) + 1
  done;
  let nr = ref [] in
  for a = na - 1 downto 0 do
    if read.(a) then begin
      let c = comp_of.(nt + a) in
      comp_attrs.(c).(acount.(c)) <- a;
      acount.(c) <- acount.(c) + 1
    end
    else nr := a :: !nr
  done;
  (* the fill above ran from high to low attr ids: restore ascending *)
  Array.iter (fun row -> Array.sort compare row) comp_attrs;
  { ncomp; comp_of; comp_txns; comp_attrs; never_read = Array.of_list !nr }

(* Full rebuild of the disjoint layout from component sites: attributes
   read by someone follow their component; never-read attributes are
   placed greedily given x. *)
let disjoint_apply (stats : Stats.t) opts comp_of comp_site
    (part : Partitioning.t) =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  for t = 0 to nt - 1 do
    part.Partitioning.txn_site.(t) <- comp_site.(comp_of.(t))
  done;
  let read = Array.make na false in
  for t = 0 to nt - 1 do
    for a = 0 to na - 1 do
      if stats.Stats.phi.(t).(a) then read.(a) <- true
    done
  done;
  (* greedy single placement for every attribute *)
  let coef = Array.init na (fun a -> Array.make opts.num_sites stats.Stats.c2.(a)) in
  for t = 0 to nt - 1 do
    let home = part.Partitioning.txn_site.(t) in
    let c1t = Vec.row stats.Stats.c1 t in
    for a = 0 to na - 1 do
      coef.(a).(home) <- coef.(a).(home) +. c1t.{a}
    done
  done;
  for a = 0 to na - 1 do
    let row = part.Partitioning.placed.(a) in
    Array.fill row 0 opts.num_sites false;
    if read.(a) then row.(comp_site.(comp_of.(nt + a))) <- true
    else begin
      let best = ref 0 and best_c = ref coef.(a).(0) in
      for s = 1 to opts.num_sites - 1 do
        if coef.(a).(s) < !best_c then begin
          best := s;
          best_c := coef.(a).(s)
        end
      done;
      row.(!best) <- true
    end
  done

let full_disjoint_engine ctx (dctx : disjoint_ctx) rng =
  let stats = ctx.stats and opts = ctx.opts in
  let comp_site =
    Array.init dctx.ncomp (fun _ -> Rng.int rng opts.num_sites)
  in
  let part =
    Partitioning.create ~num_sites:opts.num_sites
      ~num_txns:stats.Stats.num_txns ~num_attrs:stats.Stats.num_attrs
  in
  let apply () = disjoint_apply stats opts dctx.comp_of comp_site part in
  apply ();
  let eval () =
    Cost_model.objective stats ~lambda:opts.lambda part +. ctx.extra part
  in
  let saved_sites = ref (Array.copy comp_site) in
  {
    init_obj = eval ();
    propose =
      (fun _fix ->
         saved_sites := Array.copy comp_site;
         if opts.num_sites > 1 then begin
           let k = count_moves opts.move_fraction dctx.ncomp in
           List.iter
             (fun c ->
                let cur = comp_site.(c) in
                let s = Rng.int rng (opts.num_sites - 1) in
                comp_site.(c) <- (if s >= cur then s + 1 else s))
             (Rng.sample_distinct rng k dctx.ncomp)
         end;
         apply ();
         eval ());
    accept = (fun () -> ());
    reject =
      (fun () ->
         Array.blit !saved_sites 0 comp_site 0 dctx.ncomp;
         apply ());
    snapshot_best = (fun () -> Partitioning.copy part);
    epoch_refresh = (fun obj -> obj);
    delta_evals = (fun () -> 0);
  }

(* Disjoint-mode delta engine: component moves are {!Delta_cost}
   composites; only the greedy coefficient of the never-read attributes
   needs maintaining. *)
type dprim =
  | DComp of int * int * int  (* component, old site, new site *)
  | DNr                       (* one never-read re-placement to undo *)

let delta_disjoint_engine ctx (dctx : disjoint_ctx) rng =
  let stats = ctx.stats and opts = ctx.opts in
  let nt = stats.Stats.num_txns
  and na = stats.Stats.num_attrs
  and ns = opts.num_sites in
  let comp_site = Array.init dctx.ncomp (fun _ -> Rng.int rng ns) in
  let part =
    Partitioning.create ~num_sites:ns ~num_txns:nt ~num_attrs:na
  in
  disjoint_apply stats opts dctx.comp_of comp_site part;
  let dc =
    Delta_cost.create ?latency:ctx.latency stats ~lambda:opts.lambda part
  in
  let coef = Array.make_matrix na ns 0. in
  let rebuild_coef () =
    for a = 0 to na - 1 do
      Array.fill coef.(a) 0 ns stats.Stats.c2.(a)
    done;
    for t = 0 to nt - 1 do
      let home = part.Partitioning.txn_site.(t) in
      let c1t = Vec.row stats.Stats.c1 t in
      for a = 0 to na - 1 do
        coef.(a).(home) <- coef.(a).(home) +. c1t.{a}
      done
    done
  in
  rebuild_coef ();
  let journal = ref [] in
  let shift_coef txns from_s to_s =
    Array.iter
      (fun t ->
         let c1t = Vec.row stats.Stats.c1 t in
         for a = 0 to na - 1 do
           coef.(a).(from_s) <- coef.(a).(from_s) -. c1t.{a};
           coef.(a).(to_s) <- coef.(a).(to_s) +. c1t.{a}
         done)
      txns
  in
  let move_comp c s =
    let s_old = comp_site.(c) in
    comp_site.(c) <- s;
    ignore
      (Delta_cost.apply_move dc
         (Delta_cost.Move_component (dctx.comp_txns.(c), dctx.comp_attrs.(c), s)));
    shift_coef dctx.comp_txns.(c) s_old s;
    journal := DComp (c, s_old, s) :: !journal
  in
  {
    init_obj = Delta_cost.objective dc;
    propose =
      (fun _fix ->
         if ns > 1 then begin
           let k = count_moves opts.move_fraction dctx.ncomp in
           List.iter
             (fun c ->
                let cur = comp_site.(c) in
                let s = Rng.int rng (ns - 1) in
                move_comp c (if s >= cur then s + 1 else s))
             (Rng.sample_distinct rng k dctx.ncomp)
         end;
         (* greedy re-placement of the never-read attributes, as in
            [disjoint_apply] *)
         Array.iter
           (fun a ->
              let cf = coef.(a) in
              let best = ref 0 and best_c = ref cf.(0) in
              for s = 1 to ns - 1 do
                if cf.(s) < !best_c then begin
                  best := s;
                  best_c := cf.(s)
                end
              done;
              if not part.Partitioning.placed.(a).(!best) then begin
                ignore
                  (Delta_cost.apply_move dc
                     (Delta_cost.Move_component ([||], [| a |], !best)));
                journal := DNr :: !journal
              end)
           dctx.never_read;
         Delta_cost.objective dc);
    accept = (fun () -> journal := []);
    reject =
      (fun () ->
         List.iter
           (function
             | DNr -> Delta_cost.undo_move dc
             | DComp (c, s_old, s_new) ->
               Delta_cost.undo_move dc;
               comp_site.(c) <- s_old;
               shift_coef dctx.comp_txns.(c) s_new s_old)
           !journal;
         journal := []);
    snapshot_best = (fun () -> Partitioning.copy part);
    epoch_refresh =
      (fun _ ->
         rebuild_coef ();
         Delta_cost.resync dc;
         Delta_cost.objective dc);
    delta_evals = (fun () -> Delta_cost.moves_applied dc);
  }

(* ------------------------------------------------------------------ *)
(* Annealing loop shared by both modes                                 *)
(* ------------------------------------------------------------------ *)

(* [epoch_hook best_obj best] runs at every epoch boundary of a
   portfolio chain: it publishes the chain's best to the other domains
   and may return a strictly better (objective, partitioning) for this
   chain to adopt.  The hook must not touch the chain's annealing state
   (engine/rng/temperature), so the chain's own trajectory — and its
   [search_stats] — stay exactly those of a sequential run with the same
   seed; adoption only ever lowers the reported best.  [best] is never
   mutated in place by the annealer (it is replaced by fresh snapshots),
   so the hook may share it across domains without copying. *)
let anneal ?epoch_hook (stats : Stats.t) opts rng (engine : engine) =
  Obs.with_span "sa.anneal"
    ~attrs:
      [
        ("txns", Obs.Int stats.Stats.num_txns);
        ("attrs", Obs.Int stats.Stats.num_attrs);
      ]
  @@ fun () ->
  let start = Obs.Clock.now () in
  let deadline = Option.map (fun tl -> start +. tl) opts.time_limit in
  let out_of_time () =
    match deadline with None -> false | Some d -> Obs.Clock.now () > d
  in
  let current_obj = ref engine.init_obj in
  let best = ref (engine.snapshot_best ()) in
  let best_obj = ref !current_obj in
  (* §5.1: accept a accept_gap-worse solution with probability 1/2 in the
     first iterations. *)
  let tau0 =
    let c = Float.max !best_obj 1e-9 in
    -.(opts.accept_gap *. c) /. Float.log 0.5
  in
  let tau = ref tau0 in
  let iterations = ref 0 and accepted = ref 0 and outer = ref 0 in
  let fix = ref `Fix_x in
  (try
     while
       !tau > opts.freeze_ratio *. tau0
       && !outer < opts.max_outer
       && not (out_of_time ())
     do
       incr outer;
       let epoch_start_accepted = !accepted in
       for _ = 1 to opts.inner_loops do
         if out_of_time () then raise Exit;
         incr iterations;
         let cand_obj = engine.propose !fix in
         let delta = cand_obj -. !current_obj in
         if delta <= 0. || Rng.float rng < Float.exp (-.delta /. !tau) then begin
           engine.accept ();
           incr accepted;
           current_obj := cand_obj;
           if cand_obj < !best_obj then begin
             best_obj := cand_obj;
             best := engine.snapshot_best ();
             if Obs.enabled () then
               Obs.point "sa.best"
                 ~attrs:
                   [
                     ("obj", Obs.Float !best_obj);
                     ("move", Obs.Int !iterations);
                   ]
           end
         end
         else engine.reject ();
         fix := (match !fix with `Fix_x -> `Fix_y | `Fix_y -> `Fix_x)
       done;
       tau := opts.cooling *. !tau;
       current_obj := engine.epoch_refresh !current_obj;
       (match epoch_hook with
        | None -> ()
        | Some hook -> (
          match hook !best_obj !best with
          | Some (obj, part) when obj < !best_obj ->
            best_obj := obj;
            best := part;
            if Obs.enabled () then
              Obs.point "sa.exchange"
                ~attrs:[ ("obj", Obs.Float obj); ("epoch", Obs.Int !outer) ]
          | _ -> ()));
       if Obs.enabled () then begin
         Obs.gauge "sa.temperature" !tau;
         Obs.point "sa.epoch"
           ~attrs:
             [
               ("epoch", Obs.Int !outer);
               ("temperature", Obs.Float !tau);
               ( "accept_rate",
                 Obs.Float
                   (float_of_int (!accepted - epoch_start_accepted)
                    /. float_of_int opts.inner_loops) );
               ("best_obj", Obs.Float !best_obj);
               ("current_obj", Obs.Float !current_obj);
             ]
       end
     done
   with Exit -> ());
  if Obs.enabled () then begin
    Obs.count "sa.moves" (float_of_int !iterations);
    Obs.count "sa.accepted" (float_of_int !accepted);
    Obs.count "sa.rejected" (float_of_int (!iterations - !accepted));
    let de = engine.delta_evals () in
    if de > 0 then Obs.count "sa.delta_evals" (float_of_int de)
  end;
  let search =
    {
      moves = !iterations;
      accepted_moves = !accepted;
      rejected_moves = !iterations - !accepted;
      epochs = !outer;
      initial_temperature = tau0;
      final_temperature = !tau;
    }
  in
  (!best, !best_obj, search, Obs.Clock.now () -. start)

(* The trivial "everything co-located on one site" candidate: all
   transactions on site s with y optimized.  The annealer's random start
   plus small moves can miss this basin entirely on instances where
   partitioning does not pay (the paper's rndB...x100 rows equal the
   |S| = 1 column exactly), so the returned solution is never worse than
   the best collapsed layout. *)
let collapsed_candidate (stats : Stats.t) opts site =
  let part =
    Partitioning.create ~num_sites:opts.num_sites ~num_txns:stats.Stats.num_txns
      ~num_attrs:stats.Stats.num_attrs
  in
  Array.fill part.Partitioning.txn_site 0 stats.Stats.num_txns site;
  optimize_y_given_x stats opts part;
  part

let solve ?(options = default_options) (inst : Instance.t) =
  Obs.with_span "sa.solve" @@ fun () ->
  let grouping =
    if options.use_grouping then Grouping.compute inst else Grouping.identity inst
  in
  let reduced = grouping.Grouping.reduced in
  let stats = Stats.compute reduced ~p:options.p in
  let full_stats = Stats.compute inst ~p:options.p in
  (* Appendix A: fold the latency estimate into the annealed objective,
     scaled by lambda like every other cost term (matching the QP).  The
     evaluator and the φ adjacency are built once and shared by every
     chain. *)
  let ctx = make_ctx reduced stats options in
  let extra = ctx.extra in
  let dctx =
    if options.allow_replication then None else Some (make_disjoint_ctx stats)
  in
  let run_chain ?epoch_hook rng =
    let engine =
      if options.allow_replication then begin
        let part = init_replicated stats options rng in
        if options.full_eval then full_replicated_engine ctx rng part
        else delta_replicated_engine ctx rng part
      end
      else begin
        let dctx = Option.get dctx in
        if options.full_eval then full_disjoint_engine ctx dctx rng
        else delta_disjoint_engine ctx dctx rng
      end
    in
    anneal ?epoch_hook stats options rng engine
  in
  let restarts = max 1 options.restarts in
  let best, best_obj6, search, chains, elapsed =
    if restarts = 1 then begin
      (* Single chain: the sequential code path (plain seed, no pool, no
         exchange). *)
      let rng = Rng.create options.seed in
      let best, obj, search, elapsed = run_chain rng in
      (best, obj, search, [| search |], elapsed)
    end
    else begin
      (* Portfolio: [restarts] independent chains with split seeds run
         across [jobs] domains.  Chains exchange their bests at epoch
         boundaries through a monotone atomic cell; in replication mode
         the receiving chain additionally polishes the adopted layout
         with one exact y-step + x-step sweep (outside its own
         trajectory).  The portfolio best is therefore never worse than
         the best of the same chains run sequentially. *)
      let t_start = Obs.Clock.now () in
      (* Chain 0 anneals the exact stream a [restarts = 1] run would use,
         so the portfolio is provably never worse than the sequential run
         on the same seed (its reported best can only be replaced by a
         strictly better exchanged layout); the extra chains explore
         decorrelated split streams. *)
      let rngs =
        let splits = Rng.split (Rng.create options.seed) (restarts - 1) in
        Array.init restarts (fun i ->
            if i = 0 then Rng.create options.seed else splits.(i - 1))
      in
      let cell :
            (float * Partitioning.t option) Atomic.t =
        Atomic.make (infinity, None)
      in
      let rec publish obj part =
        let cur = Atomic.get cell in
        if obj < fst cur then
          if not (Atomic.compare_and_set cell cur (obj, Some part)) then
            publish obj part
      in
      let eval part =
        Cost_model.objective stats ~lambda:options.lambda part +. extra part
      in
      let epoch_hook best_obj best =
        publish best_obj best;
        match Atomic.get cell with
        | gobj, Some gpart when gobj < best_obj ->
          if options.allow_replication then begin
            (* Side polish on a private copy; publish any improvement. *)
            let c = Partitioning.copy gpart in
            optimize_y_given_x stats options c;
            optimize_x_given_y stats options c;
            let cobj = eval c in
            if cobj < gobj then begin
              publish cobj c;
              Some (cobj, c)
            end
            else Some (gobj, gpart)
          end
          else Some (gobj, gpart)
        | _ -> None
      in
      let jobs = max 1 (min options.jobs restarts) in
      let results =
        Par.with_pool ~jobs (fun pool ->
            Par.map_array pool (fun rng -> run_chain ~epoch_hook rng) rngs)
      in
      let best = ref None and best_obj = ref infinity in
      Array.iter
        (fun (b, obj, _, _) ->
           if obj < !best_obj then begin
             best_obj := obj;
             best := Some b
           end)
        results;
      (* The cell may hold a polished layout better than every chain's
         own best. *)
      (match Atomic.get cell with
       | gobj, Some gpart when gobj < !best_obj ->
         best_obj := gobj;
         best := Some gpart
       | _ -> ());
      let chains = Array.map (fun (_, _, s, _) -> s) results in
      let search =
        Array.fold_left
          (fun acc (c : search_stats) ->
             {
               moves = acc.moves + c.moves;
               accepted_moves = acc.accepted_moves + c.accepted_moves;
               rejected_moves = acc.rejected_moves + c.rejected_moves;
               epochs = max acc.epochs c.epochs;
               initial_temperature = acc.initial_temperature;
               final_temperature =
                 Float.min acc.final_temperature c.final_temperature;
             })
          { chains.(0) with moves = 0; accepted_moves = 0; rejected_moves = 0 }
          chains
      in
      let best =
        match !best with
        | Some b -> b
        | None -> invalid_arg "Sa_solver: empty portfolio"
      in
      (best, !best_obj, search, chains, Obs.Clock.now () -. t_start)
    end
  in
  let best, _obj6 =
    let collapsed = collapsed_candidate stats options 0 in
    let cobj =
      Cost_model.objective stats ~lambda:options.lambda collapsed
      +. extra collapsed
    in
    if cobj < best_obj6 then (collapsed, cobj) else (best, best_obj6)
  in
  (match Partitioning.validate stats best with
   | Ok () -> ()
   | Error e -> invalid_arg ("Sa_solver: internal invariant broken: " ^ e));
  let partitioning = Grouping.expand grouping best in
  let cost = Cost_model.cost full_stats partitioning in
  let objective6 =
    Cost_model.objective full_stats ~lambda:options.lambda partitioning
  in
  let dtol = Option.value options.certify_tol ~default:1e-6 in
  let certificate =
    if not options.certify then None
    else
      (* The annealer tracks its objective incrementally; certify both the
         internal best (against a from-scratch reduced-space evaluation)
         and the reported cost/objective (against the instance-level
         breakdown, which never touches the Stats coefficients). *)
      let internal =
        let fresh =
          Cost_model.objective stats ~lambda:options.lambda best +. extra best
        in
        if Float.abs (fresh -. _obj6) > 1e-6 *. (1. +. Float.abs fresh) then
          [ Vpart_analysis.Diagnostic.error ~code:"C203"
              "annealer's tracked best objective %g differs from a fresh \
               re-evaluation %g of the returned layout"
              _obj6 fresh ]
        else []
      in
      Some
        (Vpart_analysis.Diagnostic.sort
           (internal
            @ Solution_certify.certify_partitioning full_stats partitioning
            @ Solution_certify.certify_cost ~tol:dtol ~code:"C203" inst
                ~p:options.p partitioning ~claimed:cost
            @ Solution_certify.certify_objective6 ~tol:dtol inst ~p:options.p
                ~lambda:options.lambda partitioning ~claimed:objective6))
  in
  let exact =
    if not options.certify_exact then None
    else
      (* The annealer emits no MIP-level artifacts; the exact audit covers
         the domain-level claims (cost and objective-(6) agreement) in
         rational arithmetic. *)
      let module Exact = Vpart_certify.Certify.Exact in
      Some
        (Exact.merge
           (Solution_certify.Exact.cost ~tol:dtol inst ~p:options.p
              partitioning ~claimed:cost)
           (Solution_certify.Exact.objective6 ~tol:dtol inst ~p:options.p
              ~lambda:options.lambda partitioning ~claimed:objective6))
  in
  {
    partitioning;
    cost;
    objective6;
    elapsed;
    iterations = search.moves;
    accepted = search.accepted_moves;
    outer_rounds = search.epochs;
    search;
    chains;
    certificate;
    exact;
  }

(** The paper's second algorithm: the simulated-annealing heuristic (§3).

    Algorithm 1 alternately fixes the transaction-assignment vector [x] and
    the attribute-placement vector [y] and re-optimizes the other exactly —
    both subproblems separate:

    - [y] given [x]: per (attribute, site), place where single-sitedness
      forces it ([φ]), replicate wherever the net coefficient
      [Σ_{t at s} c1(a,t) + c2(a)] is negative, otherwise use the cheapest
      single site;
    - [x] given [y]: per transaction, the cheapest site hosting the
      transaction's whole read set.

    Neighborhoods follow §3: a constant fraction (default 10 %) of the
    transactions change site and the same fraction of the attributes gain
    one extra replica.  Acceptance is Metropolis on objective (6); the
    initial temperature follows §5.1
    ([τ = -0.05·C*/ln 0.5], i.e. a 5 %-worse solution is accepted with
    probability 1/2 at the start).

    Disjoint mode ([allow_replication = false]) uses an equivalent
    formulation: single-sitedness without replication forces each connected
    component of the transaction–read-attribute graph to co-locate, so the
    annealer moves whole components between sites and greedily places
    never-read attributes. *)

type options = {
  num_sites : int;
  p : float;
  lambda : float;
  allow_replication : bool;
  use_grouping : bool;
  seed : int;               (** PRNG seed; results are deterministic per seed *)
  move_fraction : float;    (** §3: fraction of txns/attrs perturbed (0.10) *)
  inner_loops : int;        (** L in Algorithm 1 *)
  cooling : float;          (** ρ in Algorithm 1 *)
  accept_gap : float;       (** §5.1 initial-temperature gap (0.05) *)
  freeze_ratio : float;     (** frozen when τ < freeze_ratio·τ₀ *)
  max_outer : int;
  time_limit : float option;
  latency : float option;
      (** Appendix A: when [Some pl], adds [λ·pl·Σ_q f_q·ψ_q] to the
          annealed objective (ψ_q = 1 when write query q updates an
          attribute replicated away from its home site). *)
  certify : bool;
      (** Self-certification: re-derive the reported cost/objective from
          {!Cost_model.breakdown} and a from-scratch evaluation of the
          annealer's tracked best, returning the findings in
          [certificate].  Off by default. *)
  certify_exact : bool;
      (** Exact audit: re-derive the reported cost and objective-(6)
          claims in rational arithmetic ({!Solution_certify.Exact}),
          returning the report in [exact].  The annealer emits no
          MIP-level artifacts, so there is no dual/Farkas side here. *)
  certify_tol : float option;
      (** Override the float certification tolerance (default [1e-6] for
          the domain-level checks); also the masked-vs-refuted threshold
          of the exact audit. *)
  restarts : int;
      (** Portfolio width: number of independent annealing chains.  With
          [restarts = 1] (default) the solver runs the single sequential
          chain, bit for bit as before.  With more, chain 0 anneals that
          same stream and chains 1.. run {!Rng.split} streams of [seed];
          chains exchange their best layouts at epoch boundaries, and the
          reported best is never worse than the best of the same chains
          run in isolation — in particular never worse (in objective (6))
          than the [restarts = 1] run on the same seed. *)
  jobs : int;
      (** Domains the portfolio may occupy (capped at [restarts]);
          1 (default) runs the chains sequentially on the caller.  The
          set of chain trajectories is identical for every [jobs] value
          when [time_limit] is [None]; only wall-clock changes. *)
  full_eval : bool;
      (** [false] (default): evaluate moves through the {!Delta_cost}
          incremental kernel — O(affected transactions) per move, undo
          journal instead of per-move snapshots; the kernel is resynced
          against float drift at every epoch boundary and the final
          claims are still re-derived from {!Cost_model}.  [true]: pay a
          full {!Cost_model.objective} recompute (and a state snapshot)
          per move — the pre-delta code path, kept as the measured
          baseline of [bench perf] and as a cross-check.  The two modes
          explore different (equally valid) trajectories: the delta
          kernel's re-optimization steps break floating-point ties
          through incrementally maintained coefficients. *)
}

val default_options : options
(** 2 sites, p = 8, λ = 0.1, replication and grouping on, seed 1,
    10 % moves, L = 40, ρ = 0.85, 5 % gap, freeze at τ₀/1000,
    at most 400 outer rounds, no time limit, no latency term,
    one chain ([restarts = 1]) on one domain ([jobs = 1]).

    The returned solution is additionally never worse (in objective (6))
    than the best {e collapsed} layout — all transactions on one site with
    optimally placed attributes — which the random-start annealer cannot
    always reach on instances where partitioning does not pay. *)

type search_stats = {
  moves : int;                    (** proposals evaluated (= [iterations]) *)
  accepted_moves : int;
  rejected_moves : int;
  epochs : int;                   (** outer cooling rounds (= [outer_rounds]) *)
  initial_temperature : float;    (** τ₀ from the §5.1 accept-gap rule *)
  final_temperature : float;      (** τ when the search froze or was cut off *)
}
(** Search statistics of the annealing run, reported via
    {!Report.pp_sa_search} and mirrored in the [sa.*] observability
    counters (see [docs/OBSERVABILITY.md]). *)

type result = {
  partitioning : Partitioning.t;  (** original attribute space; validated *)
  cost : float;                   (** objective (4) *)
  objective6 : float;             (** objective (6), the annealed quantity *)
  elapsed : float;
  iterations : int;               (** inner iterations executed *)
  accepted : int;                 (** accepted moves *)
  outer_rounds : int;
  search : search_stats;
      (** aggregated search statistics: with one chain, that chain's; with
          a portfolio, moves/accepted/rejected summed over chains, epochs
          the maximum, final temperature the minimum *)
  chains : search_stats array;
      (** per-chain search statistics, [restarts] entries in chain order
          (chain [i] runs on split seed [i]); a single-element array when
          [restarts = 1] *)
  certificate : Vpart_analysis.Diagnostic.t list option;
      (** [Some findings] when [options.certify] was set ([C203]/[C201]/
          [C205] checks; empty = certified clean); [None] otherwise *)
  exact : Vpart_certify.Certify.Exact.report option;
      (** [Some report] when [options.certify_exact] was set: the
          tolerance-free rational re-verification ([E101]-[E104]) of the
          reported cost and objective. *)
}

val solve : ?options:options -> Instance.t -> result

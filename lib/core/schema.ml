type attribute = { attr_table : int; attr_name : string; width : int }

type table = { table_name : string; first_attr : int; attr_count : int }

type t = { tables : table array; attributes : attribute array }

let make spec =
  let seen_tables = Hashtbl.create 16 in
  let tables = ref [] and attrs = ref [] in
  let next_attr = ref 0 in
  List.iteri
    (fun tid (tname, cols) ->
       if Hashtbl.mem seen_tables tname then
         invalid_arg (Printf.sprintf "Schema.make: duplicate table %S" tname);
       Hashtbl.add seen_tables tname ();
       if cols = [] then
         invalid_arg (Printf.sprintf "Schema.make: table %S has no attributes" tname);
       let seen_attrs = Hashtbl.create 16 in
       let first = !next_attr in
       List.iter
         (fun (aname, width) ->
            if Hashtbl.mem seen_attrs aname then
              invalid_arg
                (Printf.sprintf "Schema.make: duplicate attribute %s.%s" tname aname);
            Hashtbl.add seen_attrs aname ();
            if width <= 0 then
              invalid_arg
                (Printf.sprintf "Schema.make: non-positive width for %s.%s" tname
                   aname);
            attrs := { attr_table = tid; attr_name = aname; width } :: !attrs;
            incr next_attr)
         cols;
       tables :=
         { table_name = tname; first_attr = first; attr_count = List.length cols }
         :: !tables)
    spec;
  {
    tables = Array.of_list (List.rev !tables);
    attributes = Array.of_list (List.rev !attrs);
  }

let num_tables s = Array.length s.tables

let num_attrs s = Array.length s.attributes

let table_of_attr s a = s.attributes.(a).attr_table

let attr_name s a =
  let attr = s.attributes.(a) in
  s.tables.(attr.attr_table).table_name ^ "." ^ attr.attr_name

let attr_width s a = s.attributes.(a).width

let table_name s tid = s.tables.(tid).table_name

let attrs_of_table s tid =
  let tbl = s.tables.(tid) in
  List.init tbl.attr_count (fun i -> tbl.first_attr + i)

let find_table s name =
  let rec go i =
    if i >= Array.length s.tables then raise Not_found
    else if s.tables.(i).table_name = name then i
    else go (i + 1)
  in
  go 0

let find_attr s tname aname =
  let tid = find_table s tname in
  let tbl = s.tables.(tid) in
  let rec go i =
    if i >= tbl.attr_count then raise Not_found
    else if s.attributes.(tbl.first_attr + i).attr_name = aname then
      tbl.first_attr + i
    else go (i + 1)
  in
  go 0

let row_width s tid =
  List.fold_left (fun acc a -> acc + attr_width s a) 0 (attrs_of_table s tid)

let pp ppf s =
  Format.fprintf ppf "@[<v>schema: %d tables, %d attributes@," (num_tables s)
    (num_attrs s);
  Array.iteri
    (fun tid tbl ->
       Format.fprintf ppf "  %-12s %3d attrs, row width %4d bytes@,"
         tbl.table_name tbl.attr_count (row_width s tid))
    s.tables;
  Format.fprintf ppf "@]"

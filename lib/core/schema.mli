(** Relational schema: tables and their attributes.

    Attributes are the unit of vertical partitioning (Section 1 of the
    paper): each attribute [a] has an average width [w_a] in bytes, and the
    goal is to distribute attributes to sites.  Attributes are identified by
    a dense integer id that is global across the schema (the paper's set
    [A]); tables are identified by a dense table id. *)

type attribute = {
  attr_table : int;   (** owning table id *)
  attr_name : string;
  width : int;        (** average width w_a in bytes; positive *)
}

type table = {
  table_name : string;
  first_attr : int;   (** id of the table's first attribute *)
  attr_count : int;
}

type t = private {
  tables : table array;
  attributes : attribute array;
}

val make : (string * (string * int) list) list -> t
(** [make [table_name, [(attr_name, width); ...]; ...]] builds a schema.
    @raise Invalid_argument on duplicate table/attribute names, empty
    tables, or non-positive widths. *)

val num_tables : t -> int
val num_attrs : t -> int

val table_of_attr : t -> int -> int
(** Owning table of an attribute id. *)

val attr_name : t -> int -> string
(** Qualified name, ["Table.ATTR"]. *)

val attr_width : t -> int -> int

val table_name : t -> int -> string

val attrs_of_table : t -> int -> int list
(** Attribute ids of a table, in declaration order. *)

val find_table : t -> string -> int
(** @raise Not_found if no such table. *)

val find_attr : t -> string -> string -> int
(** [find_attr s table attr] — @raise Not_found if absent. *)

val row_width : t -> int -> int
(** Total width of a table's row (sum of attribute widths). *)

val pp : Format.formatter -> t -> unit
(** Multi-line summary listing tables with attribute counts and row widths. *)

module Diagnostic = Vpart_analysis.Diagnostic

let rel tol reference = tol *. (1. +. Float.abs reference)

let certify_partitioning stats part =
  Obs.timed "certify.partitioning.seconds" @@ fun () ->
  match Partitioning.validate stats part with
  | Ok () -> []
  | Error msg ->
    [ Diagnostic.error ~code:"C205"
        "returned partitioning fails structural validation: %s" msg ]

let independent_cost (b : Cost_model.breakdown) ~p =
  b.Cost_model.read_local +. b.Cost_model.write_local
  +. (p *. b.Cost_model.transfer)

let certify_cost ?(tol = 1e-6) ?(code = "C202") inst ~p part ~claimed =
  Obs.timed "certify.cost.seconds" @@ fun () ->
  let b = Cost_model.breakdown inst part in
  let indep = independent_cost b ~p in
  if Float.abs (indep -. claimed) > rel tol indep then
    [ Diagnostic.error ~code
        "claimed cost %g differs from the independent breakdown \
         re-derivation %g (read %g + write %g + %g x transfer %g)"
        claimed indep b.Cost_model.read_local b.Cost_model.write_local p
        b.Cost_model.transfer ]
  else []

let certify_objective6 ?(tol = 1e-6) ?(code = "C201") inst ~p ~lambda ?latency
    part ~claimed =
  Obs.timed "certify.objective6.seconds" @@ fun () ->
  let b = Cost_model.breakdown inst part in
  let cost = independent_cost b ~p in
  let work = Array.fold_left Float.max 0. b.Cost_model.site_work in
  let lat =
    match latency with
    | None -> 0.
    | Some pl -> lambda *. Cost_model.latency inst ~pl part
  in
  let indep = (lambda *. cost) +. ((1. -. lambda) *. work) +. lat in
  if Float.abs (indep -. claimed) > rel tol indep then
    [ Diagnostic.error ~code
        "claimed objective (6) %g differs from the independent instance \
         evaluation %g (lambda %g, cost %g, max site work %g%s)"
        claimed indep lambda cost work
        (if lat = 0. then "" else Printf.sprintf ", latency term %g" lat) ]
  else []

let certify_pins ~fixed part =
  let nt = Array.length part.Partitioning.txn_site in
  List.filter_map
    (fun (t, site) ->
       if t < 0 || t >= nt then
         Some
           (Diagnostic.error ~code:"C204"
              "pinned transaction %d is out of range (0..%d)" t (nt - 1))
       else if part.Partitioning.txn_site.(t) <> site then
         Some
           (Diagnostic.error ~code:"C204"
              "pinned transaction %d homed on site %d, but the pin required \
               site %d"
              t
              part.Partitioning.txn_site.(t)
              site)
       else None)
    fixed

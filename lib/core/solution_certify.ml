module Diagnostic = Vpart_analysis.Diagnostic

let rel tol reference = tol *. (1. +. Float.abs reference)

let certify_partitioning stats part =
  Obs.timed "certify.partitioning.seconds" @@ fun () ->
  match Partitioning.validate stats part with
  | Ok () -> []
  | Error msg ->
    [ Diagnostic.error ~code:"C205"
        "returned partitioning fails structural validation: %s" msg ]

let independent_cost (b : Cost_model.breakdown) ~p =
  b.Cost_model.read_local +. b.Cost_model.write_local
  +. (p *. b.Cost_model.transfer)

let certify_cost ?(tol = 1e-6) ?(code = "C202") inst ~p part ~claimed =
  Obs.timed "certify.cost.seconds" @@ fun () ->
  let b = Cost_model.breakdown inst part in
  let indep = independent_cost b ~p in
  if Float.abs (indep -. claimed) > rel tol indep then
    [ Diagnostic.error ~code
        "claimed cost %g differs from the independent breakdown \
         re-derivation %g (read %g + write %g + %g x transfer %g)"
        claimed indep b.Cost_model.read_local b.Cost_model.write_local p
        b.Cost_model.transfer ]
  else []

let certify_objective6 ?(tol = 1e-6) ?(code = "C201") inst ~p ~lambda ?latency
    part ~claimed =
  Obs.timed "certify.objective6.seconds" @@ fun () ->
  let b = Cost_model.breakdown inst part in
  let cost = independent_cost b ~p in
  let work = Array.fold_left Float.max 0. b.Cost_model.site_work in
  let lat =
    match latency with
    | None -> 0.
    | Some pl -> lambda *. Cost_model.latency inst ~pl part
  in
  let indep = (lambda *. cost) +. ((1. -. lambda) *. work) +. lat in
  if Float.abs (indep -. claimed) > rel tol indep then
    [ Diagnostic.error ~code
        "claimed objective (6) %g differs from the independent instance \
         evaluation %g (lambda %g, cost %g, max site work %g%s)"
        claimed indep lambda cost work
        (if lat = 0. then "" else Printf.sprintf ", latency term %g" lat) ]
  else []

(* ------------------------------------------------------------------ *)
(* Exact (rational) domain-level audits: E101-E104                    *)
(* ------------------------------------------------------------------ *)

module Exact = struct
  module Q = Vpart_rational.Rational
  module E = Vpart_certify.Certify.Exact

  (* Exact mirror of {!Cost_model.breakdown}: every per-attribute weight
     [width · freq · rows] is the exact product of the embedded raw
     factors — NOT the embedding of the float product the cost model
     computes — so the exact sums are free of both product and
     accumulation roundoff. *)
  type qbreak = {
    read_local : Q.t;
    write_local : Q.t;
    transfer : Q.t;
    site_work : Q.t array;
  }

  let breakdown (inst : Instance.t) (part : Partitioning.t) =
    let schema = inst.Instance.schema and wl = inst.Instance.workload in
    let read_local = ref Q.zero
    and write_local = ref Q.zero
    and transfer = ref Q.zero in
    let site_work = Array.make part.Partitioning.num_sites Q.zero in
    for tx = 0 to Workload.num_transactions wl - 1 do
      let home = part.Partitioning.txn_site.(tx) in
      let txn = Workload.transaction wl tx in
      List.iter
        (fun qid ->
           let q = Workload.query wl qid in
           let freq = Q.of_float q.Workload.freq in
           if Workload.is_write q then begin
             List.iter
               (fun (table, rows) ->
                  let rq = Q.mul freq (Q.of_float rows) in
                  List.iter
                    (fun a ->
                       let wa =
                         Q.mul (Q.of_int (Schema.attr_width schema a)) rq
                       in
                       let row = part.Partitioning.placed.(a) in
                       for s = 0 to part.Partitioning.num_sites - 1 do
                         if row.(s) then begin
                           write_local := Q.add !write_local wa;
                           site_work.(s) <- Q.add site_work.(s) wa
                         end
                       done)
                    (Schema.attrs_of_table schema table))
               q.Workload.tables;
             List.iter
               (fun a ->
                  match
                    Workload.rows_for_table q (Schema.table_of_attr schema a)
                  with
                  | None -> ()
                  | Some rows ->
                    let wa =
                      Q.mul
                        (Q.of_int (Schema.attr_width schema a))
                        (Q.mul freq (Q.of_float rows))
                    in
                    let row = part.Partitioning.placed.(a) in
                    for s = 0 to part.Partitioning.num_sites - 1 do
                      if row.(s) && s <> home then
                        transfer := Q.add !transfer wa
                    done)
               q.Workload.attrs
           end
           else
             List.iter
               (fun (table, rows) ->
                  let rq = Q.mul freq (Q.of_float rows) in
                  List.iter
                    (fun a ->
                       if part.Partitioning.placed.(a).(home) then begin
                         let wa =
                           Q.mul (Q.of_int (Schema.attr_width schema a)) rq
                         in
                         read_local := Q.add !read_local wa;
                         site_work.(home) <- Q.add site_work.(home) wa
                       end)
                    (Schema.attrs_of_table schema table))
               q.Workload.tables)
        txn.Workload.queries
    done;
    {
      read_local = !read_local;
      write_local = !write_local;
      transfer = !transfer;
      site_work;
    }

  let latency (inst : Instance.t) ~pl (part : Partitioning.t) =
    let wl = inst.Instance.workload in
    let total = ref Q.zero in
    for tx = 0 to Workload.num_transactions wl - 1 do
      let home = part.Partitioning.txn_site.(tx) in
      let txn = Workload.transaction wl tx in
      List.iter
        (fun qid ->
           let q = Workload.query wl qid in
           if Workload.is_write q then begin
             let remote = ref false in
             List.iter
               (fun a ->
                  let row = part.Partitioning.placed.(a) in
                  for s = 0 to part.Partitioning.num_sites - 1 do
                    if row.(s) && s <> home then remote := true
                  done)
               q.Workload.attrs;
             if !remote then total := Q.add !total (Q.of_float q.Workload.freq)
           end)
        txn.Workload.queries
    done;
    Q.mul (Q.of_float pl) !total

  let value_report ~claim ~refuted_code ~masked_code ~masked_sev ~float_ok
      ~threshold ~exact ~claimed detail =
    let residual = Q.abs (Q.sub exact (Q.of_float claimed)) in
    let verdict = E.classify ~threshold residual in
    let code =
      if verdict = E.Exactly_refuted then refuted_code else masked_code
    in
    let findings =
      match verdict with
      | E.Exactly_refuted ->
        [ Diagnostic.error ~code:refuted_code
            "exactly refuted %s: claimed %g vs exact re-derivation %s — \
             residual %s exceeds the float tolerance %g%s (%s)"
            claim claimed (Q.to_short_string exact)
            (Q.to_short_string residual)
            threshold
            (if float_ok then
               "; float certification passes — tolerance-masked refutation"
             else "")
            detail ]
      | E.Masked_violation ->
        [ {
            Diagnostic.code = masked_code;
            severity = masked_sev;
            message =
              Printf.sprintf
                "tolerance-masked %s drift: claimed %g is off the exact \
                 re-derivation by %s (within the float tolerance %g; %s)"
                claim claimed
                (Q.to_short_string residual)
                threshold detail;
          } ]
      | _ -> []
    in
    {
      E.checks =
        [ E.make_check ~claim ~code ~float_ok ~threshold residual ];
      findings;
    }

  let cost ?(tol = 1e-6) inst ~p part ~claimed =
    Obs.timed "certify.exact.cost.seconds" @@ fun () ->
    let bq = breakdown inst part in
    let exact =
      Q.add bq.read_local
        (Q.add bq.write_local (Q.mul (Q.of_float p) bq.transfer))
    in
    let bf = Cost_model.breakdown inst part in
    let indep = independent_cost bf ~p in
    let threshold = rel tol indep in
    let float_ok = Float.abs (indep -. claimed) <= threshold in
    value_report ~claim:"cost (objective 4)" ~refuted_code:"E103"
      ~masked_code:"E104" ~masked_sev:Diagnostic.Info ~float_ok ~threshold
      ~exact ~claimed
      (Printf.sprintf "exact read %s + write %s + %g x transfer %s"
         (Q.to_short_string bq.read_local)
         (Q.to_short_string bq.write_local)
         p
         (Q.to_short_string bq.transfer))

  let objective6 ?(tol = 1e-6) inst ~p ~lambda ?latency:pl part ~claimed =
    Obs.timed "certify.exact.objective6.seconds" @@ fun () ->
    let bq = breakdown inst part in
    let lq = Q.of_float lambda in
    let cost_q =
      Q.add bq.read_local
        (Q.add bq.write_local (Q.mul (Q.of_float p) bq.transfer))
    in
    let work_q = Array.fold_left Q.max Q.zero bq.site_work in
    let lat_q =
      match pl with
      | None -> Q.zero
      | Some pl -> Q.mul lq (latency inst ~pl part)
    in
    let exact =
      Q.add
        (Q.add (Q.mul lq cost_q)
           (Q.mul (Q.sub Q.one lq) work_q))
        lat_q
    in
    (* float layer's view, mirroring {!certify_objective6} *)
    let bf = Cost_model.breakdown inst part in
    let cost_f = independent_cost bf ~p in
    let work_f = Array.fold_left Float.max 0. bf.Cost_model.site_work in
    let lat_f =
      match pl with
      | None -> 0.
      | Some pl -> lambda *. Cost_model.latency inst ~pl part
    in
    let indep = (lambda *. cost_f) +. ((1. -. lambda) *. work_f) +. lat_f in
    let threshold = rel tol indep in
    let float_ok = Float.abs (indep -. claimed) <= threshold in
    value_report ~claim:"objective (6)" ~refuted_code:"E101"
      ~masked_code:"E102" ~masked_sev:Diagnostic.Info ~float_ok ~threshold
      ~exact ~claimed
      (Printf.sprintf
         "lambda %g, exact cost %s, exact max site work %s%s" lambda
         (Q.to_short_string cost_q)
         (Q.to_short_string work_q)
         (if Q.is_zero lat_q then ""
          else
            Printf.sprintf ", exact latency term %s"
              (Q.to_short_string lat_q)))
end

let certify_pins ~fixed part =
  let nt = Array.length part.Partitioning.txn_site in
  List.filter_map
    (fun (t, site) ->
       if t < 0 || t >= nt then
         Some
           (Diagnostic.error ~code:"C204"
              "pinned transaction %d is out of range (0..%d)" t (nt - 1))
       else if part.Partitioning.txn_site.(t) <> site then
         Some
           (Diagnostic.error ~code:"C204"
              "pinned transaction %d homed on site %d, but the pin required \
               site %d"
              t
              part.Partitioning.txn_site.(t)
              site)
       else None)
    fixed

(** Domain-level certificates: re-derive solver cost claims from the
    instance definition.

    The MIP-level certificates ([C0xx]/[C1xx], {!Vpart_certify.Certify})
    check a solve against its own model; the checks here close the
    remaining gap between {e model} and {e problem}: whatever a solver
    reports — a decoded partitioning, a cost, an objective-(6) value —
    is re-evaluated directly from the {!Instance.t} via
    {!Cost_model.breakdown}, the evaluator-of-record that sums over
    queries and sites without going through the precomputed {!Stats.t}
    coefficients the solvers themselves optimize.  Codes are the [C2xx]
    family (catalogued in [docs/ANALYSIS.md]). *)

module Diagnostic = Vpart_analysis.Diagnostic

val certify_partitioning : Stats.t -> Partitioning.t -> Diagnostic.t list
(** [C205] when the partitioning fails {!Partitioning.validate}
    (shape, site range, coverage, single-sitedness). *)

val certify_cost :
  ?tol:float ->
  ?code:string ->
  Instance.t ->
  p:float ->
  Partitioning.t ->
  claimed:float ->
  Diagnostic.t list
(** Re-derive objective (4) as [read_local + write_local + p·transfer]
    from {!Cost_model.breakdown} ([p] must be the network penalty the
    claim was made with) and compare against [claimed] within relative
    tolerance [tol] (default [1e-6]).  Emits [code] (default ["C202"];
    {!Sa_solver} uses ["C203"] to mark the annealer's fresh-evaluation
    check). *)

val certify_objective6 :
  ?tol:float ->
  ?code:string ->
  Instance.t ->
  p:float ->
  lambda:float ->
  ?latency:float ->
  Partitioning.t ->
  claimed:float ->
  Diagnostic.t list
(** Re-derive objective (6) — [λ·(A + p·B) + (1−λ)·max_s work(s)], plus
    [λ·pl·Σ_q f_q·ψ_q] when [latency] is set — from the breakdown and
    {!Cost_model.latency}, and compare against [claimed].  Emits [code]
    (default ["C201"]).  This is the check that catches a drift between
    the MIP/SA objective arithmetic and the paper's cost model. *)

(** Exact (rational) counterparts of the domain certificates, part of the
    {!Vpart_certify.Certify.Exact} auditor: the breakdown and latency are
    re-derived in {!Vpart_rational.Rational} arithmetic with every
    per-attribute weight computed as the exact product of its embedded
    raw factors (attribute width, query frequency, row fraction), so the
    comparison against the claimed value carries no float roundoff at
    all.  Codes: [E101] (error) / [E102] (info) for objective (6),
    [E103] (error) / [E104] (info) for the cost claim. *)
module Exact : sig
  val cost :
    ?tol:float ->
    Instance.t ->
    p:float ->
    Partitioning.t ->
    claimed:float ->
    Vpart_certify.Certify.Exact.report
  (** Exact re-derivation of objective (4); [tol] (default [1e-6]) is the
      {e float} layer's relative tolerance used to classify the exact
      residual as masked vs refuted. *)

  val objective6 :
    ?tol:float ->
    Instance.t ->
    p:float ->
    lambda:float ->
    ?latency:float ->
    Partitioning.t ->
    claimed:float ->
    Vpart_certify.Certify.Exact.report
  (** Exact re-derivation of objective (6), latency term included when
      [latency] is set (the [pl] penalty). *)
end

val certify_pins :
  fixed:(int * int) list -> Partitioning.t -> Diagnostic.t list
(** [C204] for every [(txn, site)] pin the partitioning does not honour
    (or that indexes out of range) — the contract of
    {!Qp_solver.options.fixed_txns} relied on by {!Iterative_solver}. *)

type t = {
  p : float;
  num_attrs : int;
  num_txns : int;
  num_queries : int;
  c1 : Vec.mat;
  c2 : float array;
  c3 : Vec.mat;
  c4 : float array;
  phi : bool array array;
  total_weight : float;
}

let w (inst : Instance.t) ~a ~q =
  let query = Workload.query inst.workload q in
  let tid = Schema.table_of_attr inst.schema a in
  match Workload.rows_for_table query tid with
  | None -> 0.
  | Some rows ->
    float_of_int (Schema.attr_width inst.schema a) *. query.Workload.freq *. rows

let compute (inst : Instance.t) ~p =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  let na = Schema.num_attrs schema in
  let nt = Workload.num_transactions wl in
  let nq = Workload.num_queries wl in
  let c1 = Vec.mat_create nt na in
  let c2 = Array.make na 0. in
  let c3 = Vec.mat_create nt na in
  let c4 = Array.make na 0. in
  let phi = Array.init nt (fun _ -> Array.make na false) in
  let total_weight = ref 0. in
  for tid = 0 to nt - 1 do
    let txn = Workload.transaction wl tid in
    List.iter
      (fun qid ->
         let q = Workload.query wl qid in
         let delta = Workload.is_write q in
         let alpha = Array.make na false in
         List.iter (fun a -> alpha.(a) <- true) q.Workload.attrs;
         List.iter
           (fun (table, rows) ->
              List.iter
                (fun a ->
                   (* beta_{a,q} = 1 for every attribute of this table *)
                   let wa =
                     float_of_int (Schema.attr_width schema a)
                     *. q.Workload.freq *. rows
                   in
                   total_weight := !total_weight +. wa;
                   if delta then begin
                     c2.(a) <- c2.(a) +. (wa *. (1. +. (if alpha.(a) then p else 0.)));
                     c4.(a) <- c4.(a) +. wa;
                     if alpha.(a) then
                       c1.{tid, a} <- c1.{tid, a} -. (p *. wa)
                   end
                   else begin
                     c1.{tid, a} <- c1.{tid, a} +. wa;
                     c3.{tid, a} <- c3.{tid, a} +. wa;
                     if alpha.(a) then phi.(tid).(a) <- true
                   end)
                (Schema.attrs_of_table schema table))
           q.Workload.tables)
      txn.Workload.queries
  done;
  {
    p;
    num_attrs = na;
    num_txns = nt;
    num_queries = nq;
    c1; c2; c3; c4; phi;
    total_weight = !total_weight;
  }

let reads_remote_possible t ~a ~t_ =
  if t_ < 0 || t_ >= t.num_txns || a < 0 || a >= t.num_attrs then
    invalid_arg "Stats.reads_remote_possible";
  t.phi.(t_).(a)

(** Derived model constants (Section 2.1 of the paper).

    From an instance and the network penalty factor [p], this module
    precomputes everything the objective needs:

    - [W_{a,q} = w_a · f_q · n_{a,q}] — estimated bytes attribute [a] costs
      per evaluation of query [q] (zero when [q] does not touch [a]'s
      table);
    - [c1(a,t) = Σ_q W_{a,q} γ_{q,t} (β_{a,q}(1-δ_q) - p·α_{a,q}·δ_q)] —
      the coefficient of the quadratic term [x_{t,s}·y_{a,s}];
    - [c2(a)  = Σ_q W_{a,q} δ_q (β_{a,q} + p·α_{a,q})] — the coefficient of
      the linear term [y_{a,s}];
    - [c3(a,t) = Σ_q W_{a,q} γ_{q,t} β_{a,q} (1-δ_q)] and
      [c4(a) = Σ_q W_{a,q} β_{a,q} δ_q] — the load-balancing work terms
      (equation (5));
    - [φ_{a,t}] — whether any read query of transaction [t] accesses
      attribute [a] (the single-sitedness coupling).

    All of these are static once the instance is fixed, as the paper notes
    after program (4). *)

type t = private {
  p : float;          (** network penalty factor used to build [c1]/[c2] *)
  num_attrs : int;
  num_txns : int;
  num_queries : int;
  c1 : Vec.mat;              (** indexed [{t, a}] *)
  c2 : float array;          (** indexed [a] *)
  c3 : Vec.mat;              (** indexed [{t, a}]; always >= 0 *)
  c4 : float array;          (** indexed [a]; always >= 0 *)
  phi : bool array array;    (** indexed [t].(a) *)
  total_weight : float;      (** Σ_{a,q} W_{a,q}·β_{a,q}: scale of the instance *)
}

val compute : Instance.t -> p:float -> t

val w : Instance.t -> a:int -> q:int -> float
(** [W_{a,q}]; zero if the query does not touch the attribute's table. *)

val reads_remote_possible : t -> a:int -> t_:int -> bool
(** [phi] accessor with bounds checking, for tests. *)

type kind = Read | Write

type query = {
  q_name : string;
  kind : kind;
  freq : float;
  tables : (int * float) list;
  attrs : int list;
}

type transaction = { t_name : string; queries : int list }

type t = { queries : query array; transactions : transaction array }

let make ~queries ~transactions =
  let queries = Array.of_list queries in
  let transactions = Array.of_list transactions in
  let owner = Array.make (Array.length queries) (-1) in
  Array.iteri
    (fun tid txn ->
       List.iter
         (fun q ->
            if q < 0 || q >= Array.length queries then
              invalid_arg
                (Printf.sprintf "Workload.make: transaction %S references query %d"
                   txn.t_name q);
            if owner.(q) >= 0 then
              invalid_arg
                (Printf.sprintf
                   "Workload.make: query %S used by two transactions"
                   queries.(q).q_name);
            owner.(q) <- tid)
         txn.queries)
    transactions;
  Array.iteri
    (fun q o ->
       if o < 0 then
         invalid_arg
           (Printf.sprintf "Workload.make: query %S belongs to no transaction"
              queries.(q).q_name))
    owner;
  { queries; transactions }

let num_queries w = Array.length w.queries

let num_transactions w = Array.length w.transactions

let query w q = w.queries.(q)

let transaction w t = w.transactions.(t)

let txn_of_query w q =
  (* recomputed on demand; workloads are small and static *)
  let found = ref (-1) in
  Array.iteri
    (fun tid (txn : transaction) -> if List.mem q txn.queries then found := tid)
    w.transactions;
  if !found < 0 then raise Not_found else !found

let is_write q = q.kind = Write

let rows_for_table q tid = List.assoc_opt tid q.tables

let validate schema w =
  let nt = Schema.num_tables schema and na = Schema.num_attrs schema in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  Array.iter
    (fun q ->
       if not (Float.is_finite q.freq && q.freq > 0.) then
         fail "query %S: frequency %g is not positive and finite" q.q_name q.freq;
       if q.tables = [] then fail "query %S: touches no table" q.q_name;
       List.iter
         (fun (tid, rows) ->
            if tid < 0 || tid >= nt then
              fail "query %S: table id %d out of range" q.q_name tid;
            if not (Float.is_finite rows && rows > 0.) then
              fail "query %S: row count %g for table %d is not positive and finite"
                q.q_name rows tid)
         q.tables;
       let tids = List.map fst q.tables in
       if List.length (List.sort_uniq compare tids) <> List.length tids then
         fail "query %S: duplicate table entry" q.q_name;
       List.iter
         (fun a ->
            if a < 0 || a >= na then
              fail "query %S: attribute id %d out of range" q.q_name a
            else if not (List.mem (Schema.table_of_attr schema a) tids) then
              fail "query %S: accesses %s outside its touched tables" q.q_name
                (Schema.attr_name schema a))
         q.attrs;
       if q.attrs = [] then fail "query %S: accesses no attribute" q.q_name)
    w.queries;
  match !err with None -> Ok () | Some e -> Error e

let pp ppf w =
  Format.fprintf ppf "@[<v>workload: %d transactions, %d queries@,"
    (num_transactions w) (num_queries w);
  Array.iter
    (fun txn ->
       Format.fprintf ppf "  %-14s %d queries@," txn.t_name
         (List.length txn.queries))
    w.transactions;
  Format.fprintf ppf "@]"

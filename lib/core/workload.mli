(** Workload: queries grouped into transactions, with statistics.

    This captures the paper's input exactly (Section 1.1 and 2.1):

    - each query [q] has a kind (read or write — the paper's δ_q), a
      frequency [f_q], the set of tables it touches with the average number
      of rows [n_{r}] retrieved/written per table, and the set of attributes
      it accesses (the paper's α);
    - each transaction is an ordered group of queries (γ) and is assigned to
      exactly one primary executing site by the optimizer.

    The paper's remaining schema constants are derived:
    β_{a,q} = "a belongs to a table q touches", and
    φ_{a,t} = "some {e read} query of t accesses a"
    (see {!Stats}).

    UPDATE statements should be modeled per Section 5.2: a read query over
    the attributes the statement {e uses} plus a write query over the
    attributes it {e writes} (helpers in {!Tpcc} follow this convention). *)

type kind = Read | Write

type query = {
  q_name : string;
  kind : kind;
  freq : float;                 (** f_q > 0 *)
  tables : (int * float) list;  (** (table id, rows n_r per execution) *)
  attrs : int list;             (** α: attribute ids accessed *)
}

type transaction = {
  t_name : string;
  queries : int list;  (** query ids, in program order *)
}

type t = private {
  queries : query array;
  transactions : transaction array;
}

val make : queries:query list -> transactions:transaction list -> t
(** Build a workload.  Query ids referenced by transactions are indices
    into [queries].  @raise Invalid_argument on dangling query ids, queries
    used by several transactions, or queries used by none (every query must
    belong to exactly one transaction, which defines γ). *)

val num_queries : t -> int
val num_transactions : t -> int

val query : t -> int -> query
val transaction : t -> int -> transaction

val txn_of_query : t -> int -> int
(** The unique transaction containing a query (γ inverted). *)

val is_write : query -> bool
(** δ_q *)

val rows_for_table : query -> int -> float option
(** [n_{a,q}] lookup: rows the query touches in the given table, if any. *)

val validate : Schema.t -> t -> (unit, string) result
(** Check referential integrity against a schema: table ids in range,
    attribute ids in range, every accessed attribute belongs to a touched
    table, frequencies and row counts positive and finite. *)

val pp : Format.formatter -> t -> unit

open Vpart

type fraction = {
  f_table : int;
  f_site : int;
  f_attrs : int list;
  f_width : int;
  f_rows : int;
}

type t = {
  instance : Instance.t;
  part : Partitioning.t;
  (* width.(table).(site): bytes per fraction row, 0 when absent *)
  width : int array array;
  rows : int array;  (* per table *)
}

type counters = {
  bytes_read : float;
  bytes_written : float;
  bytes_transferred : float;
  remote_write_queries : int;
  queries_executed : int;
}

let zero =
  {
    bytes_read = 0.;
    bytes_written = 0.;
    bytes_transferred = 0.;
    remote_write_queries = 0;
    queries_executed = 0;
  }

let add a b =
  {
    bytes_read = a.bytes_read +. b.bytes_read;
    bytes_written = a.bytes_written +. b.bytes_written;
    bytes_transferred = a.bytes_transferred +. b.bytes_transferred;
    remote_write_queries = a.remote_write_queries + b.remote_write_queries;
    queries_executed = a.queries_executed + b.queries_executed;
  }

let scale k c =
  {
    c with
    bytes_read = k *. c.bytes_read;
    bytes_written = k *. c.bytes_written;
    bytes_transferred = k *. c.bytes_transferred;
  }

let deploy ?(table_rows = []) (inst : Instance.t) (part : Partitioning.t) =
  let schema = inst.Instance.schema in
  let stats = Stats.compute inst ~p:1. in
  (match Partitioning.validate stats part with
   | Ok () -> ()
   | Error e -> invalid_arg ("Engine.deploy: invalid partitioning: " ^ e));
  let nt = Schema.num_tables schema and ns = part.Partitioning.num_sites in
  let width = Array.init nt (fun _ -> Array.make ns 0) in
  for tid = 0 to nt - 1 do
    List.iter
      (fun a ->
         for s = 0 to ns - 1 do
           if part.Partitioning.placed.(a).(s) then
             width.(tid).(s) <- width.(tid).(s) + Schema.attr_width schema a
         done)
      (Schema.attrs_of_table schema tid)
  done;
  let rows =
    Array.init nt (fun tid ->
        match List.assoc_opt (Schema.table_name schema tid) table_rows with
        | Some n -> n
        | None -> 1000)
  in
  { instance = inst; part; width; rows }

let fractions t =
  let schema = t.instance.Instance.schema in
  let out = ref [] in
  for tid = Schema.num_tables schema - 1 downto 0 do
    for s = t.part.Partitioning.num_sites - 1 downto 0 do
      let attrs =
        List.filter
          (fun a -> t.part.Partitioning.placed.(a).(s))
          (Schema.attrs_of_table schema tid)
      in
      if attrs <> [] then
        out :=
          {
            f_table = tid;
            f_site = s;
            f_attrs = attrs;
            f_width = t.width.(tid).(s);
            f_rows = t.rows.(tid);
          }
          :: !out
    done
  done;
  !out

let fraction_width t ~table ~site = t.width.(table).(site)

let storage_bytes_per_site t =
  let ns = t.part.Partitioning.num_sites in
  let out = Array.make ns 0. in
  Array.iteri
    (fun tid per_site ->
       Array.iteri
         (fun s w -> out.(s) <- out.(s) +. (float_of_int w *. float_of_int t.rows.(tid)))
         per_site;
       ignore tid)
    t.width;
  out

(* Execute one query at the given home site; [weight] multiplies the byte
   counts (1 for a single execution, [freq] for workload totals). *)
let execute_query t ~home ~weight qid =
  let inst = t.instance in
  let schema = inst.Instance.schema in
  let q = Workload.query inst.Instance.workload qid in
  let ns = t.part.Partitioning.num_sites in
  if Workload.is_write q then begin
    (* full fraction rows written on every hosting site *)
    let written = ref 0. in
    List.iter
      (fun (tid, rows) ->
         for s = 0 to ns - 1 do
           written := !written +. (float_of_int t.width.(tid).(s) *. rows)
         done)
      q.Workload.tables;
    (* updated attributes shipped to non-home replicas *)
    let shipped = ref 0. and remote = ref false in
    List.iter
      (fun a ->
         let tid = Schema.table_of_attr schema a in
         let rows =
           match Workload.rows_for_table q tid with Some r -> r | None -> 0.
         in
         for s = 0 to ns - 1 do
           if s <> home && t.part.Partitioning.placed.(a).(s) then begin
             shipped :=
               !shipped +. (float_of_int (Schema.attr_width schema a) *. rows);
             remote := true
           end
         done)
      q.Workload.attrs;
    {
      zero with
      bytes_written = weight *. !written;
      bytes_transferred = weight *. !shipped;
      remote_write_queries = (if !remote then 1 else 0);
      queries_executed = 1;
    }
  end
  else begin
    (* scan local fractions of the touched tables at the home site *)
    let read = ref 0. in
    List.iter
      (fun (tid, rows) ->
         read := !read +. (float_of_int t.width.(tid).(home) *. rows))
      q.Workload.tables;
    { zero with bytes_read = weight *. !read; queries_executed = 1 }
  end

let execute_transaction t tx =
  let wl = t.instance.Instance.workload in
  let home = t.part.Partitioning.txn_site.(tx) in
  List.fold_left
    (fun acc qid -> add acc (execute_query t ~home ~weight:1. qid))
    zero
    (Workload.transaction wl tx).Workload.queries

let run_workload ?(repetitions = 1) t =
  let wl = t.instance.Instance.workload in
  let total = ref zero in
  for tx = 0 to Workload.num_transactions wl - 1 do
    let home = t.part.Partitioning.txn_site.(tx) in
    List.iter
      (fun qid ->
         let q = Workload.query wl qid in
         total := add !total (execute_query t ~home ~weight:q.Workload.freq qid))
      (Workload.transaction wl tx).Workload.queries
  done;
  scale (float_of_int repetitions)
    { !total with
      queries_executed = repetitions * !total.queries_executed;
      remote_write_queries = repetitions * !total.remote_write_queries;
    }

let run_trace ?(weighted = false) t ~seed ~length =
  let wl = t.instance.Instance.workload in
  let ntx = Workload.num_transactions wl in
  let rng = Rng.create seed in
  let weights =
    Array.init ntx (fun tx ->
        if weighted then
          List.fold_left
            (fun acc qid -> acc +. (Workload.query wl qid).Workload.freq)
            0.
            (Workload.transaction wl tx).Workload.queries
        else 1.)
  in
  let total_weight = Array.fold_left ( +. ) 0. weights in
  let sample () =
    let r = Rng.float rng *. total_weight in
    let acc = ref 0. and chosen = ref (ntx - 1) in
    (try
       Array.iteri
         (fun tx w ->
            acc := !acc +. w;
            if r < !acc then begin
              chosen := tx;
              raise Exit
            end)
         weights
     with Exit -> ());
    !chosen
  in
  let total = ref zero in
  for _ = 1 to length do
    total := add !total (execute_transaction t (sample ()))
  done;
  !total

type failure_report = {
  failed_site : int;
  runnable_txns : int;
  total_txns : int;
  lost_attrs : int;
  runnable_weight : float;
}

let survive_site_failure t ~failed =
  let ns = t.part.Partitioning.num_sites in
  if ns < 2 then invalid_arg "Engine.survive_site_failure: single-site deployment";
  if failed < 0 || failed >= ns then
    invalid_arg "Engine.survive_site_failure: site out of range";
  let inst = t.instance in
  let wl = inst.Instance.workload in
  let stats = Stats.compute inst ~p:1. in
  let ntx = Workload.num_transactions wl in
  let na = Instance.num_attrs inst in
  let runnable = ref 0 and runnable_weight = ref 0. and total_weight = ref 0. in
  for tx = 0 to ntx - 1 do
    let weight =
      List.fold_left
        (fun acc qid -> acc +. (Workload.query wl qid).Workload.freq)
        0.
        (Workload.transaction wl tx).Workload.queries
    in
    total_weight := !total_weight +. weight;
    (* can the whole read set be served from one surviving site? *)
    let ok = ref false in
    for s = 0 to ns - 1 do
      if s <> failed && not !ok then begin
        let covered = ref true in
        for a = 0 to na - 1 do
          if stats.Stats.phi.(tx).(a) && not t.part.Partitioning.placed.(a).(s)
          then covered := false
        done;
        if !covered then ok := true
      end
    done;
    if !ok then begin
      incr runnable;
      runnable_weight := !runnable_weight +. weight
    end
  done;
  let lost = ref 0 in
  for a = 0 to na - 1 do
    if
      t.part.Partitioning.placed.(a).(failed)
      && Partitioning.replicas t.part a = 1
    then incr lost
  done;
  {
    failed_site = failed;
    runnable_txns = !runnable;
    total_txns = ntx;
    lost_attrs = !lost;
    runnable_weight =
      (if !total_weight > 0. then !runnable_weight /. !total_weight else 0.);
  }

let pp_counters ppf c =
  Format.fprintf ppf
    "@[<v>bytes read        : %14.0f@,bytes written     : %14.0f@,\
     bytes transferred : %14.0f@,remote write ops  : %d / %d queries@]"
    c.bytes_read c.bytes_written c.bytes_transferred c.remote_write_queries
    c.queries_executed

(** Row-store storage-layer simulator.

    The paper's cost model {e estimates} the bytes moved by storage-layer
    access methods under a vertical partitioning; this module provides the
    corresponding operational substrate: it materializes a partitioning as
    per-site {e table fractions} (row segments containing the attributes
    placed on that site), then executes workloads against the deployment,
    counting every byte read, written and transferred according to the
    H-store-like execution rules of §2.1:

    - a read query executes at its transaction's home site and scans the
      local fractions of every table it touches (whole fraction rows — a
      row store reads rows, not columns);
    - a write query writes the full local fraction row of every touched
      table on {e every} site holding one (the paper's "access all
      attributes" choice), and ships the updated attributes to every
      non-home replica site.

    Running the whole workload once must therefore reproduce
    {!Vpart.Cost_model.breakdown} exactly — the test suite asserts this —
    while {!run_trace} executes a sampled transaction mix like a live
    system would. *)

type fraction = {
  f_table : int;
  f_site : int;
  f_attrs : int list;   (** attribute ids stored in this fraction *)
  f_width : int;        (** bytes per fraction row *)
  f_rows : int;         (** simulated cardinality *)
}

type t
(** A deployment: an instance, a partitioning, and the derived fractions. *)

type counters = {
  bytes_read : float;        (** storage-layer reads at home sites *)
  bytes_written : float;     (** storage-layer writes on all replicas *)
  bytes_transferred : float; (** inter-site shipping of updated attributes *)
  remote_write_queries : int;(** executions that touched a remote site (ψ) *)
  queries_executed : int;
}

val deploy :
  ?table_rows:(string * int) list ->
  Vpart.Instance.t -> Vpart.Partitioning.t -> t
(** Materialize the partitioning.  [table_rows] gives simulated
    cardinalities by table name (default 1000 rows each).
    @raise Invalid_argument if the partitioning does not validate. *)

val fractions : t -> fraction list
(** All non-empty fractions, by (table, site). *)

val fraction_width : t -> table:int -> site:int -> int
(** Row width of a table's fraction on a site (0 if absent). *)

val storage_bytes_per_site : t -> float array
(** Total bytes stored on each site: Σ fraction width × rows. *)

val execute_transaction : t -> int -> counters
(** Execute one occurrence of the given transaction (each query once, at
    its statistical row count, ignoring frequency). *)

val run_workload : ?repetitions:int -> t -> counters
(** Execute the complete workload with the frequency statistics applied —
    the operational counterpart of the cost model.  With [repetitions = 1]
    (default), [bytes_read/written/transferred] equal the corresponding
    fields of {!Vpart.Cost_model.breakdown}. *)

val run_trace : ?weighted:bool -> t -> seed:int -> length:int -> counters
(** Execute [length] transactions sampled at random — a simulated live
    mix.  With [~weighted:true] transactions are drawn proportionally to
    their total query frequency instead of uniformly. *)

(** {1 Failure analysis}

    Vertical partitioning interacts with availability: a replicated
    attribute survives the loss of one of its sites, a single-copy one
    does not.  {!survive_site_failure} asks, for each transaction, whether
    some surviving site still hosts the transaction's complete read set —
    i.e. whether the transaction could be re-homed and keep running
    single-sited while the failed site is down. *)

type failure_report = {
  failed_site : int;
  runnable_txns : int;       (** transactions with a full read set on some
                                 surviving site *)
  total_txns : int;
  lost_attrs : int;          (** attributes whose only copy was lost *)
  runnable_weight : float;   (** frequency-weighted share of runnable
                                 transactions, in [0, 1] *)
}

val survive_site_failure : t -> failed:int -> failure_report
(** @raise Invalid_argument if [failed] is out of range or the deployment
    has a single site. *)

val add : counters -> counters -> counters
val zero : counters
val pp_counters : Format.formatter -> counters -> unit

open Vpart

type params = {
  name : string;
  num_tables : int;
  num_transactions : int;
  max_queries_per_txn : int;
  update_percent : int;
  max_attrs_per_table : int;
  max_tables_per_query : int;
  max_attrs_per_query : int;
  widths : int array;
}

let default_params =
  {
    name = "rnd-default";
    num_tables = 20;
    num_transactions = 20;
    max_queries_per_txn = 3;
    update_percent = 10;
    max_attrs_per_table = 15;
    max_tables_per_query = 5;
    max_attrs_per_query = 15;
    widths = [| 4; 8 |];
  }

let generate ?(seed = 42) p =
  if p.num_tables <= 0 || p.num_transactions <= 0 then
    invalid_arg "Instance_gen.generate: empty instance";
  let rng = Rng.create (seed lxor (Hashtbl.hash p.name * 65599)) in
  (* schema *)
  let spec =
    List.init p.num_tables (fun tid ->
        let nattrs = Rng.int_in rng 1 p.max_attrs_per_table in
        ( Printf.sprintf "T%d" tid,
          List.init nattrs (fun k ->
              (Printf.sprintf "a%d_%d" tid k, Rng.pick rng p.widths)) ))
  in
  let schema = Schema.make spec in
  (* workload *)
  let queries = ref [] and nq = ref 0 in
  let transactions =
    List.init p.num_transactions (fun txn_id ->
        let count = Rng.int_in rng 1 p.max_queries_per_txn in
        let qids =
          List.init count (fun k ->
              let is_update = Rng.int rng 100 < p.update_percent in
              let ntab =
                Rng.int_in rng 1 (min p.max_tables_per_query p.num_tables)
              in
              let tables = Rng.sample_distinct rng ntab p.num_tables in
              let pool =
                Array.of_list
                  (List.concat_map (fun t -> Schema.attrs_of_table schema t) tables)
              in
              let navail = Array.length pool in
              let nattr = min navail (Rng.int_in rng 1 p.max_attrs_per_query) in
              let attrs =
                List.map (fun i -> pool.(i)) (Rng.sample_distinct rng nattr navail)
              in
              let q =
                {
                  Workload.q_name =
                    Printf.sprintf "q%d_%d%s" txn_id k (if is_update then "w" else "");
                  kind = (if is_update then Workload.Write else Workload.Read);
                  freq = 1.0;
                  tables = List.map (fun t -> (t, 1.0)) tables;
                  attrs;
                }
              in
              queries := q :: !queries;
              incr nq;
              !nq - 1)
        in
        { Workload.t_name = Printf.sprintf "txn%d" txn_id; queries = qids })
  in
  let workload = Workload.make ~queries:(List.rev !queries) ~transactions in
  Instance.make ~name:p.name schema workload

let stream ?(seed = 42) ~count p =
  if count < 0 then invalid_arg "Instance_gen.stream: negative count";
  (* Element [i] is [generate ~seed:(seed + i)]: each instance draws from
     its own freshly seeded generator, so the sequence is pure — forcing
     it twice (or from several domains at once) yields identical
     instances, and no element depends on how many predecessors were
     forced.  Nothing is materialized: memory stays O(1) in [count]. *)
  Seq.init count (fun i ->
      let name = Printf.sprintf "%s#%d" p.name i in
      (name, generate ~seed:(seed + i) { p with name }))

(* Table 2: the rndA... instances have many attributes per table and few
   attribute references per query (high cost-reduction potential); the
   rndB... instances are the opposite. *)
let rnd_a name ~tables ~txns ~update_percent =
  {
    name;
    num_tables = tables;
    num_transactions = txns;
    max_queries_per_txn = 3;
    update_percent;
    max_attrs_per_table = 30;
    max_tables_per_query = 3;
    max_attrs_per_query = 8;
    widths = [| 2; 4; 8; 16 |];
  }

let rnd_b name ~tables ~txns ~update_percent =
  {
    name;
    num_tables = tables;
    num_transactions = txns;
    max_queries_per_txn = 3;
    update_percent;
    max_attrs_per_table = 5;
    max_tables_per_query = 6;
    max_attrs_per_query = 28;
    widths = [| 2; 4; 8; 16 |];
  }

let catalog =
  [ rnd_a "rndAt4x15" ~tables:4 ~txns:15 ~update_percent:10;
    rnd_a "rndAt8x15" ~tables:8 ~txns:15 ~update_percent:10;
    rnd_a "rndAt8x15u50" ~tables:8 ~txns:15 ~update_percent:50;
    rnd_a "rndAt16x15" ~tables:16 ~txns:15 ~update_percent:10;
    rnd_a "rndAt32x15" ~tables:32 ~txns:15 ~update_percent:10;
    rnd_a "rndAt64x15" ~tables:64 ~txns:15 ~update_percent:10;
    rnd_a "rndAt4x100" ~tables:4 ~txns:100 ~update_percent:10;
    rnd_a "rndAt8x100" ~tables:8 ~txns:100 ~update_percent:10;
    rnd_a "rndAt16x100" ~tables:16 ~txns:100 ~update_percent:10;
    rnd_a "rndAt32x100" ~tables:32 ~txns:100 ~update_percent:10;
    rnd_a "rndAt64x100" ~tables:64 ~txns:100 ~update_percent:10;
    rnd_b "rndBt4x15" ~tables:4 ~txns:15 ~update_percent:10;
    rnd_b "rndBt8x15" ~tables:8 ~txns:15 ~update_percent:10;
    rnd_b "rndBt16x15" ~tables:16 ~txns:15 ~update_percent:10;
    rnd_b "rndBt16x15u50" ~tables:16 ~txns:15 ~update_percent:50;
    rnd_b "rndBt32x15" ~tables:32 ~txns:15 ~update_percent:10;
    rnd_b "rndBt64x15" ~tables:64 ~txns:15 ~update_percent:10;
    rnd_b "rndBt4x100" ~tables:4 ~txns:100 ~update_percent:10;
    rnd_b "rndBt8x100" ~tables:8 ~txns:100 ~update_percent:10;
    rnd_b "rndBt16x100" ~tables:16 ~txns:100 ~update_percent:10;
    rnd_b "rndBt32x100" ~tables:32 ~txns:100 ~update_percent:10;
    rnd_b "rndBt64x100" ~tables:64 ~txns:100 ~update_percent:10;
  ]

let find name = List.find (fun p -> p.name = name) catalog

(** Random OLTP instance generator (§5.3 of the paper).

    Instance classes are defined by upper bounds on eight parameters; each
    individual value is drawn uniformly between 1 and its bound (so a class
    with [max_attrs_per_table = k] has tables with [U\[1, k\]] attributes,
    mean k/2).  The parameter letters match the paper's Table 1:

    - A — maximum queries per transaction
    - B — percentage of queries that are updates
    - C — maximum attributes per table
    - D — maximum table references per query
    - E — maximum attribute references per query
    - F — the set of allowed attribute widths

    Queries run with frequency 1 and touch 1 row per referenced table (the
    paper specifies no row statistics for random instances).  Write
    queries' accessed attributes are the attributes they update.

    {!catalog} reproduces the named instances of Table 2 (plus the
    [...t64x...] instances that appear in Table 3 only). *)

type params = {
  name : string;
  num_tables : int;
  num_transactions : int;          (** the paper's |T| *)
  max_queries_per_txn : int;       (** A *)
  update_percent : int;            (** B *)
  max_attrs_per_table : int;       (** C *)
  max_tables_per_query : int;      (** D *)
  max_attrs_per_query : int;       (** E *)
  widths : int array;              (** F *)
}

val default_params : params
(** Table 1's defaults (bold): A = 3, B = 10, C = 15, D = 5, E = 15,
    F = \{4, 8\}, with 20 tables and 20 transactions. *)

val generate : ?seed:int -> params -> Vpart.Instance.t
(** Deterministic for a given [(seed, params)] pair (default seed 42). *)

val stream : ?seed:int -> count:int -> params -> (string * Vpart.Instance.t) Seq.t
(** [stream ?seed ~count p] is the lazy sequence of [count] instances
    whose element [i] is [generate ~seed:(seed + i)] under the name
    ["<p.name>#<i>"] (default seed 42, as in {!generate}).  The sequence
    is {e pure}: re-traversal regenerates identical instances, so a 10k
    sweep never holds more than the element being consumed — the batch
    service and the throughput bench iterate it without materializing.
    Equal to the materialized list element-for-element (enforced by a
    [test/test_gen.ml] property).
    @raise Invalid_argument when [count < 0]. *)

val catalog : params list
(** The named rndA/rndB instances of Table 2 (extended with t64). *)

val find : string -> params
(** Look up a catalog instance by name.  @raise Not_found. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let fail st msg =
  (* Report a 1-based line/column for the current position. *)
  let line = ref 1 and col = ref 1 in
  for i = 0 to min st.pos (String.length st.src) - 1 do
    if st.src.[i] = '\n' then begin incr line; col := 1 end else incr col
  done;
  raise (Parse_error (Printf.sprintf "line %d, column %d: %s" !line !col msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

(* Encode a Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
     | Some c ->
       let d =
         match c with
         | '0' .. '9' -> Char.code c - Char.code '0'
         | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
         | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
         | _ -> fail st "invalid hex digit in \\u escape"
       in
       v := (!v lsl 4) lor d;
       advance st
     | None -> fail st "truncated \\u escape")
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
       | None -> fail st "truncated escape"
       | Some c ->
         advance st;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let u = hex4 st in
            if u >= 0xD800 && u <= 0xDBFF then begin
              (* high surrogate: must be followed by \uDC00-\uDFFF *)
              expect st '\\';
              expect st 'u';
              let lo = hex4 st in
              if lo < 0xDC00 || lo > 0xDFFF then fail st "invalid low surrogate";
              add_utf8 buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else add_utf8 buf u
          | c -> fail st (Printf.sprintf "invalid escape \\%c" c)));
      loop ()
    | Some c when Char.code c < 0x20 -> fail st "raw control character in string"
    | Some c -> advance st; Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  let integral =
    not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text)
  in
  if integral then
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> fail st (Printf.sprintf "invalid number %S" text))
  else
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin advance st; Obj [] end
  else begin
    let fields = ref [] in
    let rec loop () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; loop ()
      | Some '}' -> advance st
      | _ -> fail st "expected ',' or '}' in object"
    in
    loop ();
    Obj (List.rev !fields)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin advance st; List [] end
  else begin
    let items = ref [] in
    let rec loop () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; loop ()
      | Some ']' -> advance st
      | _ -> fail st "expected ',' or ']' in array"
    in
    loop ();
    List (List.rev !items)
  end

let of_string src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
   | None -> ()
   | Some c -> fail st (Printf.sprintf "trailing garbage starting with %C" c));
  v

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_json f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(minify = false) json =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth json =
    match json with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_json f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      if minify then begin
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
             if i > 0 then Buffer.add_char buf ',';
             go depth v)
          items;
        Buffer.add_char buf ']'
      end
      else begin
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
             if i > 0 then Buffer.add_string buf ",\n";
             indent (depth + 1);
             go (depth + 1) v)
          items;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf ']'
      end
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      if minify then begin
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
             if i > 0 then Buffer.add_char buf ',';
             escape_string buf k;
             Buffer.add_char buf ':';
             go depth v)
          fields;
        Buffer.add_char buf '}'
      end
      else begin
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
             if i > 0 then Buffer.add_string buf ",\n";
             indent (depth + 1);
             escape_string buf k;
             Buffer.add_string buf ": ";
             go (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf '}'
      end
  in
  go 0 json;
  Buffer.contents buf

let pp ppf json = Format.pp_print_string ppf (to_string json)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let shape_error expected json =
  invalid_arg (Printf.sprintf "Json: expected %s, found %s" expected (type_name json))

let member key = function
  | Obj fields -> (try List.assoc key fields with Not_found -> Null)
  | json -> shape_error (Printf.sprintf "object with field %S" key) json

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | json -> shape_error (Printf.sprintf "object with field %S" key) json

let to_list = function
  | List items -> items
  | json -> shape_error "array" json

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | json -> shape_error "number" json

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | json -> shape_error "integer" json

let to_bool = function
  | Bool b -> b
  | json -> shape_error "bool" json

let to_str = function
  | String s -> s
  | json -> shape_error "string" json

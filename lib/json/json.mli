(** Minimal JSON codec.

    The sealed build environment ships no JSON library, so instance files and
    experiment reports use this small, self-contained implementation.  It
    supports the full JSON grammar (RFC 8259) minus the more exotic corners
    of string escaping (\uXXXX escapes outside the BMP are decoded to UTF-8;
    surrogate pairs are combined). *)

(** A JSON document. Object fields keep their source order. *)
type t =
  | Null
  | Bool of bool
  | Int of int          (** numbers without fraction/exponent that fit [int] *)
  | Float of float      (** every other number *)
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a human-readable position message. *)

val of_string : string -> t
(** Parse a complete JSON document. Trailing whitespace is allowed, trailing
    garbage is not. @raise Parse_error on malformed input. *)

val to_string : ?minify:bool -> t -> string
(** Render a document. By default pretty-prints with two-space indentation;
    [~minify:true] produces the compact single-line form. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print (same layout as {!to_string} without [minify]). *)

(** {1 Accessors}

    All accessors raise [Invalid_argument] with the offending path when the
    shape does not match, which keeps instance-file error messages usable. *)

val member : string -> t -> t
(** [member key json] is the value of field [key]; [Null] if absent.
    @raise Invalid_argument if [json] is not an object. *)

val member_opt : string -> t -> t option
(** Like {!member} but [None] when the field is absent. *)

val to_list : t -> t list

val to_float : t -> float
(** Accepts both [Int] and [Float]. *)

val to_int : t -> int
(** Accepts integral [Float]s. *)

val to_bool : t -> bool

val to_str : t -> string

type var = int

type sense = Minimize | Maximize

type cmp = Le | Ge | Eq

type vinfo = {
  v_name : string option;
  v_lb : float;
  v_ub : float;
  v_integer : bool;
}

type row = {
  r_idx : int array;
  r_val : float array;
  r_cmp : cmp;
  r_rhs : float;
}

type model = {
  m_name : string;
  mutable vars : vinfo array;   (* grown geometrically; [nvars] live *)
  mutable nvars : int;
  mutable rows_rev : row list;  (* newest first *)
  mutable nrows : int;
  mutable obj_sense : sense;
  mutable obj_terms : (float * var) list;
  mutable obj_constant : float;
}

let create ?(name = "model") () =
  {
    m_name = name;
    vars = [||];
    nvars = 0;
    rows_rev = [];
    nrows = 0;
    obj_sense = Minimize;
    obj_terms = [];
    obj_constant = 0.;
  }

let name m = m.m_name

let dummy_vinfo = { v_name = None; v_lb = 0.; v_ub = 0.; v_integer = false }

let add_var m ?name ?(lb = 0.) ?(ub = infinity) ?(integer = false) () =
  if Float.is_nan lb || Float.is_nan ub || lb = infinity || ub = neg_infinity
  then
    invalid_arg
      (Printf.sprintf "Lp.add_var: unsatisfiable bounds [%g, %g]" lb ub);
  if lb > ub then
    invalid_arg (Printf.sprintf "Lp.add_var: lb %g > ub %g" lb ub);
  if m.nvars = Array.length m.vars then begin
    let cap = max 16 (2 * Array.length m.vars) in
    let grown = Array.make cap dummy_vinfo in
    Array.blit m.vars 0 grown 0 m.nvars;
    m.vars <- grown
  end;
  m.vars.(m.nvars) <- { v_name = name; v_lb = lb; v_ub = ub; v_integer = integer };
  m.nvars <- m.nvars + 1;
  m.nvars - 1

let binary m ?name () = add_var m ?name ~lb:0. ~ub:1. ~integer:true ()

(* Sum duplicate variables, drop exact zeros, sort by variable index. *)
let normalize_terms m terms =
  let tbl = Hashtbl.create (List.length terms) in
  let check v =
    if v < 0 || v >= m.nvars then
      invalid_arg (Printf.sprintf "Lp: variable %d out of range (have %d)" v m.nvars)
  in
  let add (c, v) =
    check v;
    let prev = try Hashtbl.find tbl v with Not_found -> 0. in
    Hashtbl.replace tbl v (prev +. c)
  in
  List.iter add terms;
  let pairs =
    Hashtbl.fold (fun v c acc -> if c = 0. then acc else (v, c) :: acc) tbl []
  in
  let pairs = List.sort (fun (v1, _) (v2, _) -> compare v1 v2) pairs in
  let n = List.length pairs in
  let idx = Array.make n 0 and value = Array.make n 0. in
  List.iteri (fun i (v, c) -> idx.(i) <- v; value.(i) <- c) pairs;
  (idx, value)

let add_constr m ?name terms cmp rhs =
  ignore name;
  if Float.is_nan rhs || Float.abs rhs = infinity then
    invalid_arg
      (Printf.sprintf "Lp.add_constr: non-finite right-hand side %g" rhs);
  List.iter
    (fun (c, v) ->
       if Float.is_nan c || Float.abs c = infinity then
         invalid_arg
           (Printf.sprintf "Lp.add_constr: non-finite coefficient %g on variable %d"
              c v))
    terms;
  let r_idx, r_val = normalize_terms m terms in
  (* After summing duplicates and dropping zeros the row may be empty; an
     unsatisfiable empty row (e.g. [0·x = 1]) is a modeling bug — report it
     here instead of letting the solver chase a phantom infeasibility. *)
  if Array.length r_idx = 0 then begin
    let ok = match cmp with Le -> rhs >= 0. | Ge -> rhs <= 0. | Eq -> rhs = 0. in
    if not ok then
      invalid_arg
        (Printf.sprintf "Lp.add_constr: empty row \"0 %s %g\" is trivially infeasible"
           (match cmp with Le -> "<=" | Ge -> ">=" | Eq -> "=")
           rhs)
  end;
  m.rows_rev <- { r_idx; r_val; r_cmp = cmp; r_rhs = rhs } :: m.rows_rev;
  m.nrows <- m.nrows + 1

let set_objective m sense ?(constant = 0.) terms =
  List.iter
    (fun (_, v) ->
       if v < 0 || v >= m.nvars then
         invalid_arg (Printf.sprintf "Lp.set_objective: variable %d out of range" v))
    terms;
  m.obj_sense <- sense;
  m.obj_terms <- terms;
  m.obj_constant <- constant

let num_vars m = m.nvars

let num_constrs m = m.nrows

let var_name m v =
  if v < 0 || v >= m.nvars then invalid_arg "Lp.var_name: out of range";
  match m.vars.(v).v_name with Some s -> s | None -> Printf.sprintf "x%d" v

type std = {
  std_name : string;
  ncols : int;
  nrows : int;
  obj : float array;
  obj_const : float;
  lb : float array;
  ub : float array;
  integer : bool array;
  row_idx : int array array;
  row_val : float array array;
  rhs : float array;
  row_cmp : cmp array;
  maximize : bool;
}

let standardize m =
  let n = m.nvars in
  let maximize = m.obj_sense = Maximize in
  let sign = if maximize then -1. else 1. in
  let obj = Array.make n 0. in
  List.iter (fun (c, v) -> obj.(v) <- obj.(v) +. (sign *. c)) m.obj_terms;
  let lb = Array.init n (fun i -> m.vars.(i).v_lb)
  and ub = Array.init n (fun i -> m.vars.(i).v_ub)
  and integer = Array.init n (fun i -> m.vars.(i).v_integer) in
  let rows = Array.of_list (List.rev m.rows_rev) in
  {
    std_name = m.m_name;
    ncols = n;
    nrows = Array.length rows;
    obj;
    obj_const = sign *. m.obj_constant;
    lb;
    ub;
    integer;
    row_idx = Array.map (fun r -> r.r_idx) rows;
    row_val = Array.map (fun r -> r.r_val) rows;
    rhs = Array.map (fun r -> r.r_rhs) rows;
    row_cmp = Array.map (fun r -> r.r_cmp) rows;
    maximize;
  }

let restore_objective std v = if std.maximize then -.v else v

let eval_row std r x =
  let acc = ref 0. in
  let idx = std.row_idx.(r) and value = std.row_val.(r) in
  for k = 0 to Array.length idx - 1 do
    acc := !acc +. (value.(k) *. x.(idx.(k)))
  done;
  !acc

type violation =
  | Wrong_length of { expected : int; got : int }
  | Non_finite of { var : int; value : float }
  | Bound_violation of { var : int; value : float; lb : float; ub : float;
                         excess : float }
  | Not_integral of { var : int; value : float }
  | Row_violation of { row : int; activity : float; cmp : cmp; rhs : float;
                       excess : float }

let feasibility_violations ?(tol = 1e-6) std x =
  if Array.length x <> std.ncols then
    [ Wrong_length { expected = std.ncols; got = Array.length x } ]
  else begin
    let out = ref [] in
    let add v = out := v :: !out in
    let finite = ref true in
    for j = 0 to std.ncols - 1 do
      let v = x.(j) in
      (* a NaN coordinate compares false against every bound — reject
         non-finite points explicitly instead of accepting them *)
      if not (Float.is_finite v) then begin
        finite := false;
        add (Non_finite { var = j; value = v })
      end
      else begin
        if v < std.lb.(j) -. tol || v > std.ub.(j) +. tol then
          add
            (Bound_violation
               { var = j; value = v; lb = std.lb.(j); ub = std.ub.(j);
                 excess = Float.max (std.lb.(j) -. v) (v -. std.ub.(j)) });
        if std.integer.(j) && Float.abs (v -. Float.round v) > tol then
          add (Not_integral { var = j; value = v })
      end
    done;
    (* row activities are meaningless over a non-finite point *)
    if !finite then
      for r = 0 to std.nrows - 1 do
        let act = eval_row std r x in
        let excess =
          match std.row_cmp.(r) with
          | Le -> act -. std.rhs.(r)
          | Ge -> std.rhs.(r) -. act
          | Eq -> Float.abs (act -. std.rhs.(r))
        in
        if excess > tol then
          add
            (Row_violation
               { row = r; activity = act; cmp = std.row_cmp.(r);
                 rhs = std.rhs.(r); excess })
      done;
    List.rev !out
  end

let string_of_cmp = function Le -> "<=" | Ge -> ">=" | Eq -> "="

let pp_violation ?var_name () ppf v =
  let vname j =
    match var_name with Some f -> f j | None -> Printf.sprintf "x%d" j
  in
  match v with
  | Wrong_length { expected; got } ->
    Format.fprintf ppf "point has %d coordinates, model has %d columns" got
      expected
  | Non_finite { var; value } ->
    Format.fprintf ppf "variable %s has non-finite value %g" (vname var) value
  | Bound_violation { var; value; lb; ub; excess } ->
    Format.fprintf ppf "variable %s = %g outside bounds [%g, %g] by %g"
      (vname var) value lb ub excess
  | Not_integral { var; value } ->
    Format.fprintf ppf "integer variable %s = %g is fractional" (vname var)
      value
  | Row_violation { row; activity; cmp; rhs; excess } ->
    Format.fprintf ppf "row %d violated: activity %g %s %g fails by %g" row
      activity (string_of_cmp cmp) rhs excess

let check_feasible ?tol std x = feasibility_violations ?tol std x = []

let eval_objective std x =
  let acc = ref std.obj_const in
  for j = 0 to std.ncols - 1 do
    acc := !acc +. (std.obj.(j) *. x.(j))
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* MPS export                                                          *)
(* ------------------------------------------------------------------ *)

let to_mps m =
  let std = standardize m in
  let buf = Buffer.create 4096 in
  let vname j =
    (* MPS identifiers: keep it simple and collision-free *)
    Printf.sprintf "C%07d" j
  in
  Buffer.add_string buf (Printf.sprintf "NAME          %s\n" m.m_name);
  Buffer.add_string buf "ROWS\n N  COST\n";
  for r = 0 to std.nrows - 1 do
    let tag = match std.row_cmp.(r) with Le -> 'L' | Ge -> 'G' | Eq -> 'E' in
    Buffer.add_string buf (Printf.sprintf " %c  R%07d\n" tag r)
  done;
  Buffer.add_string buf "COLUMNS\n";
  (* column-major walk: gather per-column entries *)
  let cols = Array.make std.ncols [] in
  for r = std.nrows - 1 downto 0 do
    let idx = std.row_idx.(r) and value = std.row_val.(r) in
    for k = 0 to Array.length idx - 1 do
      cols.(idx.(k)) <- (r, value.(k)) :: cols.(idx.(k))
    done
  done;
  let in_int_block = ref false in
  for j = 0 to std.ncols - 1 do
    if std.integer.(j) && not !in_int_block then begin
      Buffer.add_string buf
        "    MARKER                 'MARKER'                 'INTORG'\n";
      in_int_block := true
    end
    else if (not std.integer.(j)) && !in_int_block then begin
      Buffer.add_string buf
        "    MARKER                 'MARKER'                 'INTEND'\n";
      in_int_block := false
    end;
    if std.obj.(j) <> 0. then
      Buffer.add_string buf
        (Printf.sprintf "    %-10s COST      %.12g\n" (vname j) std.obj.(j));
    List.iter
      (fun (r, c) ->
         Buffer.add_string buf
           (Printf.sprintf "    %-10s R%07d  %.12g\n" (vname j) r c))
      cols.(j)
  done;
  if !in_int_block then
    Buffer.add_string buf
      "    MARKER                 'MARKER'                 'INTEND'\n";
  Buffer.add_string buf "RHS\n";
  for r = 0 to std.nrows - 1 do
    if std.rhs.(r) <> 0. then
      Buffer.add_string buf
        (Printf.sprintf "    RHS        R%07d  %.12g\n" r std.rhs.(r))
  done;
  Buffer.add_string buf "BOUNDS\n";
  for j = 0 to std.ncols - 1 do
    let l = std.lb.(j) and u = std.ub.(j) in
    if l = neg_infinity && u = infinity then
      Buffer.add_string buf (Printf.sprintf " FR BND        %s\n" (vname j))
    else begin
      if l <> 0. then begin
        if l = neg_infinity then
          Buffer.add_string buf (Printf.sprintf " MI BND        %s\n" (vname j))
        else
          Buffer.add_string buf
            (Printf.sprintf " LO BND        %-10s %.12g\n" (vname j) l)
      end;
      if u <> infinity then
        Buffer.add_string buf
          (Printf.sprintf " UP BND        %-10s %.12g\n" (vname j) u)
    end
  done;
  Buffer.add_string buf "ENDATA\n";
  Buffer.contents buf

let pp_stats ppf m =
  let nnz =
    List.fold_left (fun acc r -> acc + Array.length r.r_idx) 0 m.rows_rev
  in
  Format.fprintf ppf "%s: %d vars (%d integer), %d constraints, %d nonzeros"
    m.m_name m.nvars
    (let n = ref 0 in
     for i = 0 to m.nvars - 1 do
       if m.vars.(i).v_integer then incr n
     done;
     !n)
    m.nrows nnz

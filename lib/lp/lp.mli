(** Mixed-integer linear programming modeling layer.

    This is the modeling substrate under the paper's linearized quadratic
    program (7): the sealed environment has no LP solver bindings, so the
    model representation, the simplex solver ({!Vpart_simplex.Simplex}) and
    the branch-and-bound solver ({!Vpart_mip.Mip}) are all implemented here.

    A {!model} is a growable set of bounded (optionally integer) variables,
    sparse linear constraints and a linear objective.  Solvers consume the
    frozen array form produced by {!standardize}. *)

type var = int
(** Variable handle: the dense index assigned by {!add_var} (0-based). *)

type sense = Minimize | Maximize

type cmp = Le | Ge | Eq
(** Constraint comparators: [row <= rhs], [row >= rhs], [row = rhs]. *)

type model

val create : ?name:string -> unit -> model
(** Fresh empty model with [Minimize] objective 0. *)

val name : model -> string

val add_var :
  model -> ?name:string -> ?lb:float -> ?ub:float -> ?integer:bool -> unit -> var
(** Add a variable. Defaults: [lb = 0.], [ub = infinity], [integer = false].
    Use [lb = neg_infinity] for free variables. *)

val binary : model -> ?name:string -> unit -> var
(** Shorthand for an integer variable with bounds [0, 1]. *)

val add_constr : model -> ?name:string -> (float * var) list -> cmp -> float -> unit
(** [add_constr m terms cmp rhs] adds the constraint [Σ coef·var cmp rhs].
    Repeated variables in [terms] are summed.  Zero coefficients are
    dropped.  @raise Invalid_argument on an out-of-range variable, a
    non-finite coefficient or right-hand side, or a row whose support
    normalizes to empty while the comparison is unsatisfiable (e.g.
    [0·x = 1]). *)

val set_objective : model -> sense -> ?constant:float -> (float * var) list -> unit
(** Replace the objective.  Terms behave as in {!add_constr}. *)

val num_vars : model -> int
val num_constrs : model -> int

val var_name : model -> var -> string
(** The name given at creation, or ["x<i>"] if none. *)

(** {1 Frozen standard form}

    The array form consumed by the solvers: [Minimize Σ obj·x] subject to
    sparse rows and variable bounds.  A [Maximize] model is negated during
    standardization; callers should re-negate reported objective values via
    {!restore_objective}. *)

type std = {
  std_name : string;
  ncols : int;
  nrows : int;
  obj : float array;             (** minimization costs, length [ncols] *)
  obj_const : float;
  lb : float array;
  ub : float array;
  integer : bool array;
  row_idx : int array array;     (** per-row column indices, strictly increasing *)
  row_val : float array array;   (** matching coefficients *)
  rhs : float array;
  row_cmp : cmp array;
  maximize : bool;               (** true if the source model maximized *)
}

val standardize : model -> std
(** Freeze the model.  The result shares no mutable state with [model]. *)

val restore_objective : std -> float -> float
(** Map a minimization objective value back to the source model's sense. *)

(** {1 Feasibility checking}

    {!feasibility_violations} is the detailed check: it names every
    violated bound/row so error messages (and the {!Vpart_certify}
    certificates built on them) can say {e what} failed and by how much.
    {!check_feasible} is the boolean wrapper kept for the hot paths. *)

type violation =
  | Wrong_length of { expected : int; got : int }
  | Non_finite of { var : int; value : float }
      (** NaN or infinite coordinate *)
  | Bound_violation of { var : int; value : float; lb : float; ub : float;
                         excess : float }
      (** [value] outside [[lb, ub]] by [excess > 0] *)
  | Not_integral of { var : int; value : float }
  | Row_violation of { row : int; activity : float; cmp : cmp; rhs : float;
                       excess : float }
      (** row activity fails [activity cmp rhs] by [excess > 0] *)

val feasibility_violations : ?tol:float -> std -> float array -> violation list
(** All violations of bounds, rows and integrality of [x] (structural
    variables only) within absolute tolerance [tol] (default [1e-6]), in
    variable-then-row order.  A [Wrong_length] finding short-circuits the
    rest.  Empty list = feasible. *)

val pp_violation : ?var_name:(var -> string) -> unit ->
  Format.formatter -> violation -> unit
(** One-line rendering naming the offending variable/row. *)

val check_feasible : ?tol:float -> std -> float array -> bool
(** [check_feasible std x] is [feasibility_violations std x = []]: tests
    bounds, every row and integrality of [x] (structural variables only)
    within absolute tolerance [tol] (default [1e-6]).  Points containing
    non-finite coordinates are always infeasible.  Used by
    branch-and-bound to vet heuristic points. *)

val eval_objective : std -> float array -> float
(** Minimization objective (including constant) of a structural point. *)

val to_mps : model -> string
(** Export in fixed MPS format (for debugging against external solvers). *)

val pp_stats : Format.formatter -> model -> unit
(** One-line summary: name, variable/constraint/nonzero counts. *)

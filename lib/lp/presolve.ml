type verdict = Reduced of Lp.std | Infeasible

type t = {
  verdict : verdict;
  kept_cols : int array;
  kept_rows : int array;
  fixed : (int * float) array;
  rows_removed : int;
}

let tol = 1e-9

exception Infeasible_exn

(* Mutable working copy of the problem. *)
type work = {
  ncols : int;
  lb : float array;
  ub : float array;
  integer : bool array;
  obj : float array;
  mutable obj_const : float;
  (* rows as mutable assoc lists; None entries are eliminated columns *)
  rows : (int * float) list array;
  rhs : float array;
  cmp : Lp.cmp array;
  alive : bool array;          (* rows *)
  active : bool array;         (* columns *)
  fixed_at : float option array;
}

let of_std (std : Lp.std) =
  {
    ncols = std.Lp.ncols;
    lb = Array.copy std.Lp.lb;
    ub = Array.copy std.Lp.ub;
    integer = Array.copy std.Lp.integer;
    obj = Array.copy std.Lp.obj;
    obj_const = std.Lp.obj_const;
    rows =
      Array.init std.Lp.nrows (fun r ->
          List.init
            (Array.length std.Lp.row_idx.(r))
            (fun k -> (std.Lp.row_idx.(r).(k), std.Lp.row_val.(r).(k))));
    rhs = Array.copy std.Lp.rhs;
    cmp = Array.copy std.Lp.row_cmp;
    alive = Array.make std.Lp.nrows true;
    active = Array.make std.Lp.ncols true;
    fixed_at = Array.make std.Lp.ncols None;
  }

(* Tighten a variable bound, rounding inward for integer variables. *)
let tighten_lb w j v =
  let v = if w.integer.(j) then Float.ceil (v -. 1e-6) else v in
  if v > w.lb.(j) +. tol then begin
    w.lb.(j) <- v;
    if w.lb.(j) > w.ub.(j) +. 1e-7 then raise Infeasible_exn;
    true
  end
  else false

let tighten_ub w j v =
  let v = if w.integer.(j) then Float.floor (v +. 1e-6) else v in
  if v < w.ub.(j) -. tol then begin
    w.ub.(j) <- v;
    if w.lb.(j) > w.ub.(j) +. 1e-7 then raise Infeasible_exn;
    true
  end
  else false

let fix_variable w j v =
  w.fixed_at.(j) <- Some v;
  w.active.(j) <- false;
  w.obj_const <- w.obj_const +. (w.obj.(j) *. v);
  Array.iteri
    (fun r entries ->
       if w.alive.(r) then begin
         match List.assoc_opt j entries with
         | None -> ()
         | Some a ->
           w.rhs.(r) <- w.rhs.(r) -. (a *. v);
           w.rows.(r) <- List.filter (fun (j', _) -> j' <> j) entries
       end)
    w.rows

let pass w =
  let changed = ref false in
  (* fixed variables *)
  for j = 0 to w.ncols - 1 do
    if w.active.(j) && w.ub.(j) -. w.lb.(j) <= tol then begin
      fix_variable w j ((w.lb.(j) +. w.ub.(j)) /. 2.);
      changed := true
    end
  done;
  (* row reductions *)
  Array.iteri
    (fun r entries ->
       if w.alive.(r) then
         match entries with
         | [] ->
           let ok =
             match w.cmp.(r) with
             | Lp.Le -> w.rhs.(r) >= -1e-7
             | Lp.Ge -> w.rhs.(r) <= 1e-7
             | Lp.Eq -> Float.abs w.rhs.(r) <= 1e-7
           in
           if not ok then raise Infeasible_exn;
           w.alive.(r) <- false;
           changed := true
         | [ (j, a) ] when Float.abs a > tol ->
           let bound = w.rhs.(r) /. a in
           (match w.cmp.(r), a > 0. with
            | Lp.Le, true | Lp.Ge, false -> ignore (tighten_ub w j bound)
            | Lp.Le, false | Lp.Ge, true -> ignore (tighten_lb w j bound)
            | Lp.Eq, _ ->
              ignore (tighten_lb w j bound);
              ignore (tighten_ub w j bound));
           w.alive.(r) <- false;
           changed := true
         | entries ->
           (* activity bounds *)
           let minact = ref 0. and maxact = ref 0. in
           List.iter
             (fun (j, a) ->
                let lo = w.lb.(j) and hi = w.ub.(j) in
                if a > 0. then begin
                  minact := !minact +. (a *. lo);
                  maxact := !maxact +. (a *. hi)
                end
                else begin
                  minact := !minact +. (a *. hi);
                  maxact := !maxact +. (a *. lo)
                end)
             entries;
           let feas_tol = 1e-7 *. (1. +. Float.abs w.rhs.(r)) in
           (match w.cmp.(r) with
            | Lp.Le ->
              if !minact > w.rhs.(r) +. feas_tol then raise Infeasible_exn;
              if !maxact <= w.rhs.(r) +. (feas_tol /. 10.) then begin
                w.alive.(r) <- false;
                changed := true
              end
            | Lp.Ge ->
              if !maxact < w.rhs.(r) -. feas_tol then raise Infeasible_exn;
              if !minact >= w.rhs.(r) -. (feas_tol /. 10.) then begin
                w.alive.(r) <- false;
                changed := true
              end
            | Lp.Eq ->
              if
                !minact > w.rhs.(r) +. feas_tol
                || !maxact < w.rhs.(r) -. feas_tol
              then raise Infeasible_exn))
    w.rows;
  !changed

let rebuild (std : Lp.std) w =
  let kept = ref [] in
  for j = w.ncols - 1 downto 0 do
    if w.active.(j) then kept := j :: !kept
  done;
  let kept_cols = Array.of_list !kept in
  let new_index = Array.make w.ncols (-1) in
  Array.iteri (fun i j -> new_index.(j) <- i) kept_cols;
  let rows = ref [] and kept_rows = ref [] in
  for r = Array.length w.rows - 1 downto 0 do
    if w.alive.(r) then begin
      let entries =
        List.filter_map
          (fun (j, a) ->
             if Float.abs a <= tol then None else Some (new_index.(j), a))
          w.rows.(r)
      in
      rows := (entries, w.cmp.(r), w.rhs.(r)) :: !rows;
      kept_rows := r :: !kept_rows
    end
  done;
  let rows = Array.of_list !rows in
  let kept_rows = Array.of_list !kept_rows in
  let nkept = Array.length kept_cols in
  let reduced : Lp.std =
    {
      Lp.std_name = std.Lp.std_name ^ "/presolved";
      ncols = nkept;
      nrows = Array.length rows;
      obj = Array.map (fun j -> w.obj.(j)) kept_cols;
      obj_const = w.obj_const;
      lb = Array.map (fun j -> w.lb.(j)) kept_cols;
      ub = Array.map (fun j -> w.ub.(j)) kept_cols;
      integer = Array.map (fun j -> w.integer.(j)) kept_cols;
      row_idx =
        Array.map (fun (entries, _, _) -> Array.of_list (List.map fst entries)) rows;
      row_val =
        Array.map (fun (entries, _, _) -> Array.of_list (List.map snd entries)) rows;
      rhs = Array.map (fun (_, _, rhs) -> rhs) rows;
      row_cmp = Array.map (fun (_, cmp, _) -> cmp) rows;
      maximize = std.Lp.maximize;
    }
  in
  let fixed = ref [] in
  Array.iteri
    (fun j v -> match v with Some value -> fixed := (j, value) :: !fixed | None -> ())
    w.fixed_at;
  {
    verdict = Reduced reduced;
    kept_cols;
    kept_rows;
    fixed = Array.of_list (List.rev !fixed);
    rows_removed = std.Lp.nrows - Array.length rows;
  }

(* Rows/columns eliminated so far — used for the per-pass progress events. *)
let removed_so_far w =
  let rows = Array.fold_left (fun n a -> if a then n else n + 1) 0 w.alive in
  let cols = Array.fold_left (fun n a -> if a then n else n + 1) 0 w.active in
  (rows, cols)

let reduce (std : Lp.std) =
  Obs.with_span "presolve.reduce"
    ~attrs:[ ("rows", Obs.Int std.Lp.nrows); ("cols", Obs.Int std.Lp.ncols) ]
    (fun () ->
       let w = of_std std in
       let npass = ref 0 in
       let finish r =
         if Obs.enabled () then begin
           Obs.count "presolve.passes" (float_of_int !npass);
           Obs.count "presolve.rows_removed" (float_of_int r.rows_removed);
           Obs.count "presolve.cols_fixed" (float_of_int (Array.length r.fixed))
         end;
         r
       in
       match
         let continue_ = ref true in
         while !continue_ do
           continue_ := pass w;
           incr npass;
           if Obs.enabled () then begin
             let rows, cols = removed_so_far w in
             Obs.point "presolve.pass"
               ~attrs:
                 [
                   ("pass", Obs.Int !npass);
                   ("rows_removed", Obs.Int rows);
                   ("cols_fixed", Obs.Int cols);
                 ]
           end
         done
       with
       | () -> finish (rebuild std w)
       | exception Infeasible_exn ->
         finish
           {
             verdict = Infeasible;
             kept_cols = [||];
             kept_rows = [||];
             fixed = [||];
             rows_removed = 0;
           })

let restore t reduced_solution =
  match t.verdict with
  | Infeasible -> invalid_arg "Presolve.restore: infeasible problem"
  | Reduced reduced ->
    if Array.length reduced_solution <> reduced.Lp.ncols then
      invalid_arg "Presolve.restore: solution length mismatch";
    let n =
      Array.length t.kept_cols + Array.length t.fixed
    in
    let out = Array.make n 0. in
    Array.iteri (fun i j -> out.(j) <- reduced_solution.(i)) t.kept_cols;
    Array.iter (fun (j, v) -> out.(j) <- v) t.fixed;
    out

let restore_duals t reduced_duals =
  match t.verdict with
  | Infeasible -> invalid_arg "Presolve.restore_duals: infeasible problem"
  | Reduced _ ->
    if Array.length reduced_duals <> Array.length t.kept_rows then
      invalid_arg "Presolve.restore_duals: dual length mismatch";
    let out = Array.make (Array.length t.kept_rows + t.rows_removed) 0. in
    Array.iteri (fun i r -> out.(r) <- reduced_duals.(i)) t.kept_rows;
    out

(* {1 Geometric-mean (Curtis–Reid-style) scaling}

   The scaled problem replaces x_j by x'_j = x_j / c_j and multiplies row i
   by r_i, so a'_ij = r_i * a_ij * c_j, rhs' = r * rhs, obj' = obj * c and
   bounds divide by c.  All factors are positive powers of two: multiplying
   a float by a power of two only changes the exponent, so scaling and
   unscaling are exact and certificates computed on back-mapped solutions
   are as trustworthy as on an unscaled solve.  Column factors of integer
   variables stay 1 — their bounds, branching and integrality are
   untouched.  The objective value is invariant: obj'·x' = obj·x. *)

type scaling = { row_scale : float array; col_scale : float array }

let pow2_round v =
  if Float.is_nan v || v <= 0. || v = infinity then 1.
  else begin
    let e = Float.round (Float.log2 v) in
    let e = Float.max (-60.) (Float.min 60. e) in
    Float.ldexp 1. (int_of_float e)
  end

let finite_nonzero v =
  (not (Float.is_nan v)) && Float.abs v <> infinity && v <> 0.

let scaling (std : Lp.std) =
  let m = std.Lp.nrows and n = std.Lp.ncols in
  let r = Array.make m 1. and c = Array.make n 1. in
  for _pass = 1 to 8 do
    (* rows: divide by the geometric mean of the row's magnitude extremes *)
    for i = 0 to m - 1 do
      let idx = std.Lp.row_idx.(i) and value = std.Lp.row_val.(i) in
      let mn = ref infinity and mx = ref 0. in
      Array.iteri
        (fun k j ->
           let v = value.(k) in
           if finite_nonzero v then begin
             let mag = Float.abs v *. r.(i) *. c.(j) in
             if mag < !mn then mn := mag;
             if mag > !mx then mx := mag
           end)
        idx;
      if !mx > 0. then r.(i) <- r.(i) /. sqrt (!mn *. !mx)
    done;
    (* columns, via one sweep accumulating per-column extremes *)
    let mn = Array.make n infinity and mx = Array.make n 0. in
    for i = 0 to m - 1 do
      let idx = std.Lp.row_idx.(i) and value = std.Lp.row_val.(i) in
      Array.iteri
        (fun k j ->
           let v = value.(k) in
           if finite_nonzero v then begin
             let mag = Float.abs v *. r.(i) *. c.(j) in
             if mag < mn.(j) then mn.(j) <- mag;
             if mag > mx.(j) then mx.(j) <- mag
           end)
        idx
    done;
    for j = 0 to n - 1 do
      if (not std.Lp.integer.(j)) && mx.(j) > 0. then
        c.(j) <- c.(j) /. sqrt (mn.(j) *. mx.(j))
    done
  done;
  for i = 0 to m - 1 do
    r.(i) <- pow2_round r.(i)
  done;
  for j = 0 to n - 1 do
    c.(j) <- (if std.Lp.integer.(j) then 1. else pow2_round c.(j))
  done;
  { row_scale = r; col_scale = c }

let is_identity sc =
  Array.for_all (fun v -> v = 1.) sc.row_scale
  && Array.for_all (fun v -> v = 1.) sc.col_scale

let scale sc (std : Lp.std) =
  if Array.length sc.row_scale <> std.Lp.nrows
     || Array.length sc.col_scale <> std.Lp.ncols
  then invalid_arg "Presolve.scale: dimension mismatch";
  let r = sc.row_scale and c = sc.col_scale in
  {
    std with
    Lp.std_name = std.Lp.std_name ^ "/scaled";
    obj = Array.mapi (fun j o -> o *. c.(j)) std.Lp.obj;
    lb = Array.mapi (fun j v -> v /. c.(j)) std.Lp.lb;
    ub = Array.mapi (fun j v -> v /. c.(j)) std.Lp.ub;
    row_val =
      Array.mapi
        (fun i value ->
           let idx = std.Lp.row_idx.(i) in
           Array.mapi (fun k v -> v *. r.(i) *. c.(idx.(k))) value)
        std.Lp.row_val;
    row_idx = Array.map Array.copy std.Lp.row_idx;
    rhs = Array.mapi (fun i b -> b *. r.(i)) std.Lp.rhs;
  }

let scale_point sc x =
  if Array.length x <> Array.length sc.col_scale then
    invalid_arg "Presolve.scale_point: length mismatch";
  Array.mapi (fun j v -> v /. sc.col_scale.(j)) x

let unscale_point sc x =
  if Array.length x <> Array.length sc.col_scale then
    invalid_arg "Presolve.unscale_point: length mismatch";
  Array.mapi (fun j v -> v *. sc.col_scale.(j)) x

let unscale_duals sc y =
  if Array.length y <> Array.length sc.row_scale then
    invalid_arg "Presolve.unscale_duals: length mismatch";
  Array.mapi (fun i v -> v *. sc.row_scale.(i)) y

let unscale_reduced_costs sc d =
  if Array.length d <> Array.length sc.col_scale then
    invalid_arg "Presolve.unscale_reduced_costs: length mismatch";
  Array.mapi (fun j v -> v /. sc.col_scale.(j)) d

let pp_summary ppf t =
  match t.verdict with
  | Infeasible -> Format.fprintf ppf "presolve: infeasible"
  | Reduced reduced ->
    Format.fprintf ppf "presolve: %d cols fixed, %d rows removed (now %dx%d)"
      (Array.length t.fixed) t.rows_removed reduced.Lp.nrows reduced.Lp.ncols

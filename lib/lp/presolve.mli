(** LP/MIP presolve: standard reductions applied before the simplex.

    Implemented reductions (repeated to a fixed point):

    - {b empty rows}: [0 cmp rhs] — removed, or the whole problem declared
      infeasible;
    - {b singleton rows}: [a·x cmp rhs] — converted into a bound on [x]
      (rounded inward for integer variables) and removed;
    - {b fixed variables} ([lb = ub]): substituted into every row and the
      objective, column removed;
    - {b forcing/redundant rows}: rows whose minimum/maximum activity over
      the variable bounds already implies (or contradicts) the row.

    The result keeps a mapping back to the original variable space, so a
    solution of the reduced problem can be {!restore}d.  Reductions are
    sound for both continuous and integer variables (bounds on integer
    variables are rounded inward). *)

type verdict =
  | Reduced of Lp.std   (** possibly smaller problem *)
  | Infeasible          (** detected before any simplex work *)

type t = {
  verdict : verdict;
  kept_cols : int array;
      (** reduced column index -> original column index *)
  kept_rows : int array;
      (** reduced row index -> original row index *)
  fixed : (int * float) array;
      (** original columns eliminated as fixed, with their values *)
  rows_removed : int;
}

val reduce : Lp.std -> t
(** Apply all reductions to a fixed point. *)

val restore : t -> float array -> float array
(** Map a reduced-space structural solution back to the original space
    (fixed variables get their fixed values).
    @raise Invalid_argument on a length mismatch. *)

val restore_duals : t -> float array -> float array
(** Map a reduced-space row-dual vector back to the original row space.
    Removed rows get a zero multiplier, which keeps the vector inside the
    dual cone: the back-mapped vector still certifies a {e valid} Lagrangian
    bound on the original problem, though possibly a weaker one when a
    removed singleton row had tightened a variable bound the reduced dual
    relied on (see DESIGN.md, "certificates and presolve").
    @raise Invalid_argument on a length mismatch. *)

val pp_summary : Format.formatter -> t -> unit
(** One line: columns/rows removed. *)

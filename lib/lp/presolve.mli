(** LP/MIP presolve: standard reductions applied before the simplex.

    Implemented reductions (repeated to a fixed point):

    - {b empty rows}: [0 cmp rhs] — removed, or the whole problem declared
      infeasible;
    - {b singleton rows}: [a·x cmp rhs] — converted into a bound on [x]
      (rounded inward for integer variables) and removed;
    - {b fixed variables} ([lb = ub]): substituted into every row and the
      objective, column removed;
    - {b forcing/redundant rows}: rows whose minimum/maximum activity over
      the variable bounds already implies (or contradicts) the row.

    The result keeps a mapping back to the original variable space, so a
    solution of the reduced problem can be {!restore}d.  Reductions are
    sound for both continuous and integer variables (bounds on integer
    variables are rounded inward). *)

type verdict =
  | Reduced of Lp.std   (** possibly smaller problem *)
  | Infeasible          (** detected before any simplex work *)

type t = {
  verdict : verdict;
  kept_cols : int array;
      (** reduced column index -> original column index *)
  kept_rows : int array;
      (** reduced row index -> original row index *)
  fixed : (int * float) array;
      (** original columns eliminated as fixed, with their values *)
  rows_removed : int;
}

val reduce : Lp.std -> t
(** Apply all reductions to a fixed point. *)

val restore : t -> float array -> float array
(** Map a reduced-space structural solution back to the original space
    (fixed variables get their fixed values).
    @raise Invalid_argument on a length mismatch. *)

val restore_duals : t -> float array -> float array
(** Map a reduced-space row-dual vector back to the original row space.
    Removed rows get a zero multiplier, which keeps the vector inside the
    dual cone: the back-mapped vector still certifies a {e valid} Lagrangian
    bound on the original problem, though possibly a weaker one when a
    removed singleton row had tightened a variable bound the reduced dual
    relied on (see DESIGN.md, "certificates and presolve").
    @raise Invalid_argument on a length mismatch. *)

val pp_summary : Format.formatter -> t -> unit
(** One line: columns/rows removed. *)

(** {1 Geometric-mean (Curtis–Reid-style) scaling}

    An equilibration pass for ill-scaled models (the [N001]/[N002]/[N007]
    diagnostics of [Vpart_analysis.Numerics_lint]): row factors [r] and
    column factors [c] chosen by iterative geometric-mean balancing so the
    scaled coefficients [a'_ij = r_i * a_ij * c_j] cluster around 1.

    All factors are positive {e powers of two}, so applying and undoing
    the scaling is exact in floating point — solutions, duals and Farkas
    rays back-map bit-for-bit modulo exponent shifts, and certificates on
    the back-mapped artifacts remain meaningful.  Column factors of
    integer variables are pinned to 1: integrality, bounds and branching
    are untouched, which is what lets [Vpart_mip.Mip] scale the LP
    relaxations inside branch-and-bound.  The objective value is
    invariant ([obj'·x' = obj·x]; [obj_const] unchanged); row senses are
    preserved (factors are positive). *)

type scaling = {
  row_scale : float array;  (** [r], one positive power of two per row *)
  col_scale : float array;  (** [c], one per column; 1 for integer columns *)
}

val scaling : Lp.std -> scaling
(** Compute factors by a few geometric-mean balancing sweeps, then round
    to powers of two.  Non-finite and zero coefficients are ignored. *)

val is_identity : scaling -> bool
(** All factors exactly 1 (scaling would be a no-op). *)

val scale : scaling -> Lp.std -> Lp.std
(** The scaled model over [x' = x / c]: coefficients [r·A·c], right-hand
    side [r·b], objective [obj·c], bounds [lb/c, ub/c].
    @raise Invalid_argument on a dimension mismatch. *)

val scale_point : scaling -> float array -> float array
(** Map a structural point into the scaled space: [x' = x / c]. *)

val unscale_point : scaling -> float array -> float array
(** Map a scaled-space structural point back: [x = c · x']. *)

val unscale_duals : scaling -> float array -> float array
(** Map scaled-space row duals (or a Farkas ray) back: [y = r · y']. *)

val unscale_reduced_costs : scaling -> float array -> float array
(** Map scaled-space reduced costs back: [d = d' / c]. *)

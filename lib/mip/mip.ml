type limits = {
  time_limit : float option;
  node_limit : int option;
  gap : float;
  max_rows : int option;
  kernel : Simplex.kernel;
  pricing : Simplex.pricing option;
  refactor_every : int;
  scale : bool;
}

let default_limits =
  { time_limit = Some 60.; node_limit = None; gap = 1e-3;
    max_rows = Some 32000; kernel = Simplex.Sparse; pricing = None;
    refactor_every = 32; scale = false }

type solution = { x : float array; obj : float }

type outcome =
  | Optimal of solution
  | Feasible of solution * float
  | No_incumbent of float option
  | Infeasible
  | Unbounded
  | Too_large of { rows : int; limit : int }

type lp_certificate = {
  lp_x : float array;
  lp_y : float array;
  lp_reduced : float array;
  lp_obj : float;
}

type audit = {
  root_lp : lp_certificate option;
  farkas : float array option;
  bound_support : float array;
  proven_bound : float option;
  presolve_rows_removed : int;
  numerical_prunes : int;
}

type stats = {
  nodes : int;
  simplex_iterations : int;
  refactorizations : int;
  eta_applications : int;
  elapsed : float;
  gap_achieved : float;
  audit : audit;
}

let int_tol = 1e-6

(* State shared between the domains of a parallel search ([solve ~jobs]).
   [None] in every sequential search: the sequential code path is the
   pre-parallelism one, bit for bit. *)
type shared = {
  best : (float * float array option) Atomic.t;
      (* global incumbent (objective, point); objective only decreases *)
  nodes_global : int Atomic.t;
      (* process-wide node count, so [node_limit] caps the whole search
         rather than each domain separately *)
}

type search = {
  std : Lp.std;
  sx : Simplex.t;
  limits : limits;
  priority : int -> int;
  heuristic : (float array -> float array option) option;
  start : float;
  deadline : float option;
  int_vars : int array;
  mutable incumbent : float array option;   (* minimization-sense best point *)
  mutable incumbent_obj : float;
  (* Bounds of nodes pushed on the DFS path but not yet fully explored;
     the global lower bound is the minimum over this table (plus the node
     currently being expanded, which always registers before recursing). *)
  open_bounds : (int, float) Hashtbl.t;
  mutable next_node_id : int;
  mutable nodes : int;
  mutable numerical_prunes : int;
  mutable shared : shared option;
}

(* Pull a better incumbent published by another domain into this
   domain's local view, so its prune threshold tightens. *)
let sync_shared s =
  match s.shared with
  | None -> ()
  | Some sh ->
    let obj, x = Atomic.get sh.best in
    if obj < s.incumbent_obj then begin
      s.incumbent_obj <- obj;
      s.incumbent <- x
    end

(* Publish this domain's incumbent; the CAS loop keeps the shared
   objective monotonically decreasing under contention. *)
let rec publish_shared s =
  match s.shared with
  | None -> ()
  | Some sh ->
    let cur = Atomic.get sh.best in
    if s.incumbent_obj < fst cur then
      if not (Atomic.compare_and_set sh.best cur (s.incumbent_obj, s.incumbent))
      then publish_shared s

exception Hit_limit

exception Gap_reached of float * float array
(* carries the global lower bound proven at the moment the MIP gap
   criterion was satisfied, together with the open node bounds supporting
   it (for the audit trail — the Hashtbl is unwound by the handlers) *)

let out_of_time s =
  match s.deadline with None -> false | Some d -> Obs.Clock.now () > d

let global_lower_bound s current =
  Hashtbl.fold (fun _ b acc -> Float.min b acc) s.open_bounds current

let rel_gap inc lb =
  if inc = infinity then infinity
  else (inc -. lb) /. Float.max 1. (Float.abs inc)

let bound_support s current =
  let acc = Hashtbl.fold (fun _ b acc -> b :: acc) s.open_bounds [ current ] in
  Array.of_list acc

let check_gap s current_lb =
  match s.incumbent with
  | None -> ()
  | Some _ ->
    let glb = global_lower_bound s current_lb in
    if Obs.enabled () then
      Obs.point "mip.bound"
        ~attrs:
          [
            ("bound", Obs.Float (Lp.restore_objective s.std glb));
            ("node", Obs.Int s.nodes);
          ];
    if rel_gap s.incumbent_obj glb <= s.limits.gap then
      raise (Gap_reached (glb, bound_support s current_lb))

(* Round integer coordinates of [x]; returns a fresh array. *)
let round_integers std x =
  let y = Array.copy x in
  Array.iteri
    (fun j is_int -> if is_int then y.(j) <- Float.round y.(j))
    std.Lp.integer;
  y

(* Try to install [cand] as the new incumbent.  The candidate is vetted
   against the original model (bounds, rows, integrality). *)
let offer s cand =
  let cand = round_integers s.std cand in
  if Lp.check_feasible ~tol:1e-5 s.std cand then begin
    let obj = Lp.eval_objective s.std cand in
    if obj < s.incumbent_obj -. 1e-9 then begin
      s.incumbent <- Some cand;
      s.incumbent_obj <- obj;
      publish_shared s;
      if Obs.enabled () then
        Obs.point "mip.incumbent"
          ~attrs:
            [
              ("obj", Obs.Float (Lp.restore_objective s.std obj));
              ("node", Obs.Int s.nodes);
            ];
      true
    end
    else false
  end
  else false

let most_fractional s x =
  let best = ref (-1) and best_frac = ref int_tol and best_prio = ref min_int in
  Array.iter
    (fun j ->
       let f = Float.abs (x.(j) -. Float.round x.(j)) in
       if f > int_tol then begin
         let p = s.priority j in
         if p > !best_prio || (p = !best_prio && f > !best_frac) then begin
           best := j;
           best_frac := f;
           best_prio := p
         end
       end)
    s.int_vars;
  if !best < 0 then None else Some !best

let rec branch s depth =
  if out_of_time s then raise Hit_limit;
  sync_shared s;
  (match s.limits.node_limit with
   | Some n ->
     let counted =
       match s.shared with
       | Some sh -> Atomic.get sh.nodes_global
       | None -> s.nodes
     in
     if counted >= n then raise Hit_limit
   | None -> ());
  s.nodes <- s.nodes + 1;
  (match s.shared with
   | Some sh -> Atomic.incr sh.nodes_global
   | None -> ());
  if Obs.enabled () then
    Obs.point "mip.node"
      ~attrs:[ ("node", Obs.Int s.nodes); ("depth", Obs.Int depth) ];
  match Simplex.reoptimize ?deadline:s.deadline s.sx with
  | Simplex.Infeasible -> Obs.count "mip.prune.infeasible" ~attrs:[ ("node", Obs.Int s.nodes) ] 1.
  | Simplex.Time_limit -> raise Hit_limit
  | Simplex.Iter_limit | Simplex.Numerical ->
    (* Cannot trust this subtree's relaxation; abandoning it loses the
       optimality proof, which the caller reports via the gap. *)
    s.numerical_prunes <- s.numerical_prunes + 1;
    Obs.count "mip.prune.numerical" ~attrs:[ ("node", Obs.Int s.nodes) ] 1.
  | Simplex.Unbounded -> ()  (* cannot happen from reoptimize *)
  | Simplex.Optimal ->
    let bound = Simplex.objective s.sx +. s.std.Lp.obj_const in
    if bound >= s.incumbent_obj -. 1e-9 *. Float.max 1. (Float.abs s.incumbent_obj)
    then Obs.count "mip.prune.bound" ~attrs:[ ("node", Obs.Int s.nodes) ] 1.
    else begin
      let x = Simplex.primal s.sx in
      match most_fractional s x with
      | None ->
        Obs.count "mip.integral_leaf" ~attrs:[ ("node", Obs.Int s.nodes) ] 1.;
        if not (offer s x) then
          (* Rounding failed the vet (tolerance artifact): accept the raw
             relaxation point, which is integral within int_tol. *)
          if bound < s.incumbent_obj -. 1e-9 then begin
            s.incumbent <- Some (round_integers s.std x);
            s.incumbent_obj <- bound;
            publish_shared s;
            if Obs.enabled () then
              Obs.point "mip.incumbent"
                ~attrs:
                  [
                    ("obj", Obs.Float (Lp.restore_objective s.std bound));
                    ("node", Obs.Int s.nodes);
                  ]
          end
      | Some j ->
        (match s.heuristic with
         | Some h when s.nodes land 31 = 1 ->
           (match h x with Some cand -> ignore (offer s cand) | None -> ())
         | _ -> ());
        check_gap s bound;
        let lo, hi = Simplex.bounds s.sx j in
        let fl = Float.of_int (int_of_float (Float.floor x.(j)))
        and ce = Float.of_int (int_of_float (Float.ceil x.(j))) in
        let explore side =
          (match side with
           | `Down -> Simplex.set_bounds s.sx j ~lb:lo ~ub:fl
           | `Up -> Simplex.set_bounds s.sx j ~lb:ce ~ub:hi);
          branch s (depth + 1);
          Simplex.set_bounds s.sx j ~lb:lo ~ub:hi
        in
        let first, second =
          if x.(j) -. fl >= 0.5 then (`Up, `Down) else (`Down, `Up)
        in
        (* Register this node's bound for the sibling subtree so the global
           lower bound stays valid while we are inside the first child. *)
        let id = s.next_node_id in
        s.next_node_id <- id + 1;
        Hashtbl.replace s.open_bounds id bound;
        (try explore first
         with e ->
           Hashtbl.remove s.open_bounds id;
           raise e);
        Hashtbl.remove s.open_bounds id;
        explore second
    end

(* ------------------------------------------------------------------ *)
(* Parallel branch-and-bound (solve ~jobs)                             *)
(* ------------------------------------------------------------------ *)

(* An open subtree produced by the breadth-first expansion: the bound
   changes along the path from the root (root-first, so replaying them
   in order reproduces the node's variable box on a fresh root copy)
   and the parent's LP objective, which is a valid lower bound for
   everything inside the subtree. *)
type subtree = {
  changes : (int * float * float) list;  (* (var, lb, ub) *)
  sub_bound : float;
  sub_depth : int;
}

let insert_by_bound node queue =
  let rec go = function
    | [] -> [ node ]
    | n :: rest when n.sub_bound <= node.sub_bound -> n :: go rest
    | rest -> node :: rest
  in
  go queue

(* Multi-domain search: expand the tree best-bound-first on the caller's
   simplex until at least [4 * jobs] open subtrees exist, then solve
   each subtree on the pool.  Every worker gets an independent
   [Simplex.copy] of the root-optimal instance (a dual-feasible warm
   start for any subtree box) and runs the ordinary [branch] DFS; the
   incumbent is exchanged through [shared.best] so all domains prune
   against the global best.

   Soundness of the aggregated proof: the global minimum is covered by
   (a) subtrees explored to exhaustion — every leaf pruned against an
   incumbent objective that only ever decreases towards the final one,
   so they prove [>= incumbent_obj] exactly as the sequential search
   does; (b) abandoned or unfinished parts, each of which contributes
   its own subtree/frontier LP bound.  The proven global lower bound is
   the minimum over those contributions, and the contribution list is
   returned as [bound_support] so the certificate layer can re-check
   [proven = min support] (C110).  Returns
   [(interrupted, proven_lb, support, worker_simplex_iters,
     worker_refactorizations, worker_eta_applications)]. *)
let parallel_search s ~root_bound ~jobs =
  let sh =
    {
      best = Atomic.make (s.incumbent_obj, s.incumbent);
      nodes_global = Atomic.make s.nodes;
    }
  in
  s.shared <- Some sh;
  let target = 4 * jobs in
  let queue = ref [ { changes = []; sub_bound = root_bound; sub_depth = 0 } ] in
  let contribs = ref [] in
  let stopped = ref false in
  let gap_stop = ref None in
  let node_limit_hit () =
    match s.limits.node_limit with
    | Some n -> Atomic.get sh.nodes_global >= n
    | None -> false
  in
  while
    (not !stopped) && !gap_stop = None && !queue <> []
    && List.length !queue < target
  do
    (* Frontier-wide gap check (the expansion-phase analogue of
       [check_gap]): the minimum over open subtree bounds is the global
       lower bound right now. *)
    (match s.incumbent with
     | Some _ ->
       let glb =
         List.fold_left (fun acc n -> Float.min acc n.sub_bound) infinity !queue
       in
       if Obs.enabled () then
         Obs.point "mip.bound"
           ~attrs:
             [
               ("bound", Obs.Float (Lp.restore_objective s.std glb));
               ("node", Obs.Int s.nodes);
             ];
       if rel_gap s.incumbent_obj glb <= s.limits.gap then gap_stop := Some glb
     | None -> ());
    match !queue with
    | [] -> ()
    | node :: rest when !gap_stop = None ->
      if out_of_time s || node_limit_hit () then stopped := true
      else begin
        queue := rest;
        s.nodes <- s.nodes + 1;
        Atomic.incr sh.nodes_global;
        if Obs.enabled () then
          Obs.point "mip.node"
            ~attrs:[ ("node", Obs.Int s.nodes); ("depth", Obs.Int node.sub_depth) ];
        (* Apply the node's box on the caller's simplex, recording the
           previous bounds so it can be restored to the root box. *)
        let saved =
          List.rev_map
            (fun (j, lb, ub) ->
               let plo, phi = Simplex.bounds s.sx j in
               Simplex.set_bounds s.sx j ~lb ~ub;
               (j, plo, phi))
            node.changes
        in
        (match Simplex.reoptimize ?deadline:s.deadline s.sx with
         | Simplex.Infeasible -> Obs.count "mip.prune.infeasible" ~attrs:[ ("node", Obs.Int s.nodes) ] 1.
         | Simplex.Time_limit ->
           stopped := true;
           contribs := node.sub_bound :: !contribs
         | Simplex.Iter_limit | Simplex.Numerical ->
           s.numerical_prunes <- s.numerical_prunes + 1;
           Obs.count "mip.prune.numerical" ~attrs:[ ("node", Obs.Int s.nodes) ] 1.;
           contribs := node.sub_bound :: !contribs
         | Simplex.Unbounded -> ()  (* cannot happen from reoptimize *)
         | Simplex.Optimal ->
           let bound = Simplex.objective s.sx +. s.std.Lp.obj_const in
           if
             bound
             >= s.incumbent_obj
                -. (1e-9 *. Float.max 1. (Float.abs s.incumbent_obj))
           then Obs.count "mip.prune.bound" ~attrs:[ ("node", Obs.Int s.nodes) ] 1.
           else begin
             let x = Simplex.primal s.sx in
             match most_fractional s x with
             | None ->
               Obs.count "mip.integral_leaf" ~attrs:[ ("node", Obs.Int s.nodes) ] 1.;
               if not (offer s x) then
                 if bound < s.incumbent_obj -. 1e-9 then begin
                   s.incumbent <- Some (round_integers s.std x);
                   s.incumbent_obj <- bound;
                   publish_shared s;
                   if Obs.enabled () then
                     Obs.point "mip.incumbent"
                       ~attrs:
                         [
                           ("obj", Obs.Float (Lp.restore_objective s.std bound));
                           ("node", Obs.Int s.nodes);
                         ]
                 end
             | Some j ->
               let lo, hi = Simplex.bounds s.sx j in
               let fl = Float.of_int (int_of_float (Float.floor x.(j)))
               and ce = Float.of_int (int_of_float (Float.ceil x.(j))) in
               let child changes =
                 {
                   changes = node.changes @ [ changes ];
                   sub_bound = bound;
                   sub_depth = node.sub_depth + 1;
                 }
               in
               let down = child (j, lo, fl) and up = child (j, ce, hi) in
               let first, second =
                 if x.(j) -. fl >= 0.5 then (up, down) else (down, up)
               in
               queue := insert_by_bound second (insert_by_bound first !queue)
           end);
        List.iter
          (fun (j, lo, hi) -> Simplex.set_bounds s.sx j ~lb:lo ~ub:hi)
          saved
      end
    | _ -> ()
  done;
  (* Solve the open subtrees on the pool.  Each worker copies the
     root-boxed, root-warm simplex, replays its subtree's bound changes
     and runs the ordinary DFS. *)
  let run_subtree node =
    let wsx = Simplex.copy s.sx in
    let iters0 = Simplex.iterations wsx in
    let refacs0 = Simplex.refactorizations wsx in
    let etas0 = Simplex.eta_applications wsx in
    List.iter (fun (j, lb, ub) -> Simplex.set_bounds wsx j ~lb ~ub) node.changes;
    let iobj, ix = Atomic.get sh.best in
    let ws =
      {
        s with
        sx = wsx;
        incumbent = ix;
        incumbent_obj = iobj;
        open_bounds = Hashtbl.create 64;
        next_node_id = 0;
        nodes = 0;
        numerical_prunes = 0;
      }
    in
    let verdict =
      try
        branch ws node.sub_depth;
        if ws.numerical_prunes = 0 then `Clean else `Abandoned node.sub_bound
      with
      | Hit_limit -> `Limit (global_lower_bound ws node.sub_bound)
      | Gap_reached (glb, _) -> `Gap glb
    in
    ( verdict,
      ws.nodes,
      Simplex.iterations wsx - iters0,
      Simplex.refactorizations wsx - refacs0,
      Simplex.eta_applications wsx - etas0,
      ws.numerical_prunes )
  in
  let results =
    if !stopped || !gap_stop <> None || !queue = [] then [||]
    else
      Par.with_pool ~jobs (fun pool ->
          Par.map_array pool run_subtree (Array.of_list !queue))
  in
  let interrupted = ref (!stopped || !gap_stop <> None) in
  (match !gap_stop with Some glb -> contribs := glb :: !contribs | None -> ());
  if !stopped then
    List.iter (fun n -> contribs := n.sub_bound :: !contribs) !queue;
  let par_iters = ref 0 and par_refacs = ref 0 and par_etas = ref 0 in
  Array.iter
    (fun (verdict, n, it, rf, ea, np) ->
       s.nodes <- s.nodes + n;
       par_iters := !par_iters + it;
       par_refacs := !par_refacs + rf;
       par_etas := !par_etas + ea;
       s.numerical_prunes <- s.numerical_prunes + np;
       match verdict with
       | `Clean -> ()
       | `Abandoned b -> contribs := b :: !contribs
       | `Limit b ->
         interrupted := true;
         contribs := b :: !contribs
       | `Gap b ->
         interrupted := true;
         contribs := b :: !contribs)
    results;
  (* Adopt the portfolio-best incumbent, then drop the shared state. *)
  let iobj, ix = Atomic.get sh.best in
  if iobj < s.incumbent_obj then begin
    s.incumbent <- ix;
    s.incumbent_obj <- iobj
  end;
  s.shared <- None;
  let support =
    match s.incumbent with
    | Some _ -> s.incumbent_obj :: !contribs
    | None -> !contribs
  in
  let proven = List.fold_left Float.min infinity support in
  (!interrupted, proven, Array.of_list support, !par_iters, !par_refacs,
   !par_etas)

let pp_outcome ppf = function
  | Optimal { obj; _ } -> Format.fprintf ppf "optimal %g" obj
  | Feasible ({ obj; _ }, bound) ->
    if Float.is_finite bound then
      Format.fprintf ppf "feasible %g (bound %g, gap %.2g%%)" obj bound
        (100. *. Float.abs (obj -. bound) /. Float.max 1. (Float.abs obj))
    else Format.fprintf ppf "feasible %g (bound %g)" obj bound
  | No_incumbent (Some b) ->
    Format.fprintf ppf "no incumbent (proven bound %g)" b
  | No_incumbent None -> Format.fprintf ppf "no incumbent"
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
  | Too_large { rows; limit } ->
    Format.fprintf ppf "too large (%d rows, limit %d)" rows limit

(* Reduced costs d = c - yᵀA of [std] from a row-dual vector, computed
   against the original (sparse row) matrix — used to re-derive reduced
   costs in the original column space after presolve back-mapping. *)
let reduced_costs_from (std : Lp.std) y =
  let d = Array.copy std.Lp.obj in
  for r = 0 to std.Lp.nrows - 1 do
    let yr = y.(r) in
    if yr <> 0. then
      Array.iteri
        (fun k j -> d.(j) <- d.(j) -. (yr *. std.Lp.row_val.(r).(k)))
        std.Lp.row_idx.(r)
  done;
  d

let no_audit =
  {
    root_lp = None;
    farkas = None;
    bound_support = [||];
    proven_bound = None;
    presolve_rows_removed = 0;
    numerical_prunes = 0;
  }

let outcome_tag = function
  | Optimal _ -> "optimal"
  | Feasible _ -> "feasible"
  | No_incumbent _ -> "no_incumbent"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Too_large _ -> "too_large"

let solve ?(limits = default_limits) ?(presolve = false)
    ?(priority = fun _ -> 0) ?heuristic ?incumbent ?(jobs = 1)
    ?simplex_workspace model =
  let original_std = Lp.standardize model in
  Obs.with_span "mip.solve"
    ~attrs:
      [
        ("rows", Obs.Int original_std.Lp.nrows);
        ("cols", Obs.Int original_std.Lp.ncols);
      ]
  @@ fun () ->
  (* Optional presolve: solve the reduced problem and map every solution
     (and the callbacks' variable spaces) back to the original.
     [restore_y] back-maps row duals ([None] when the search runs on the
     synthetic contradiction below, whose row space is unrelated to the
     original); [rows_removed] is recorded in the audit so a checker knows
     the dual certificate may be weaker than the reduced problem's. *)
  let std, restore, restore_y, rows_removed, project, priority, heuristic,
      incumbent =
    if not presolve then
      (original_std, Fun.id, Some Fun.id, 0, Fun.id, priority, heuristic,
       incumbent)
    else
      match Presolve.reduce original_std with
      | { Presolve.verdict = Presolve.Infeasible; _ } ->
        (* signalled via an empty, contradictory problem *)
        let m = Lp.create ~name:"infeasible" () in
        let x = Lp.add_var m ~lb:0. ~ub:0. () in
        Lp.add_constr m [ (1., x) ] Lp.Ge 1.;
        (Lp.standardize m, Fun.id, None, 0, Fun.id, priority, None, None)
      | { Presolve.verdict = Presolve.Reduced red; kept_cols; _ } as r ->
        let restore x = Presolve.restore r x in
        let restore_y y = Presolve.restore_duals r y in
        let project full = Array.map (fun j -> full.(j)) kept_cols in
        let priority j = priority kept_cols.(j) in
        let heuristic =
          Option.map
            (fun h x_red -> Option.map project (h (restore x_red)))
            heuristic
        in
        let incumbent = Option.map project incumbent in
        (red, restore, Some restore_y, r.Presolve.rows_removed, project,
         priority, heuristic, incumbent)
  in
  ignore project;
  let presolved = presolve in
  (* Optional geometric-mean scaling of the (possibly reduced) search
     model.  The search runs entirely in the scaled space x' = x / c;
     every exit point back-maps through [restore]/[restore_y], and the
     power-of-two factors make the back-mapping exact, so certificates on
     the returned artifacts hold exactly as for an unscaled solve.
     Integer columns keep factor 1: branching and integrality are
     untouched, and the objective value is invariant. *)
  let std, restore, restore_y, unscale_x, unscale_ray, heuristic, incumbent,
      scaled =
    if not limits.scale then
      (std, restore, restore_y, Fun.id, Fun.id, heuristic, incumbent, false)
    else begin
      let sc = Presolve.scaling std in
      if Presolve.is_identity sc then
        (std, restore, restore_y, Fun.id, Fun.id, heuristic, incumbent, false)
      else begin
        let sstd = Presolve.scale sc std in
        let restore x = restore (Presolve.unscale_point sc x) in
        let restore_y =
          Option.map
            (fun ry y -> ry (Presolve.unscale_duals sc y))
            restore_y
        in
        (* Heuristic candidates and seed incumbents live in the caller's
           (reduced) space; translate both ways around the callback. *)
        let heuristic =
          Option.map
            (fun h x ->
               Option.map (Presolve.scale_point sc)
                 (h (Presolve.unscale_point sc x)))
            heuristic
        in
        let incumbent = Option.map (Presolve.scale_point sc) incumbent in
        if Obs.enabled () then
          Obs.point "mip.scaled"
            ~attrs:
              [ ("rows", Obs.Int sstd.Lp.nrows); ("cols", Obs.Int sstd.Lp.ncols) ];
        (sstd, restore, restore_y, Presolve.unscale_point sc,
         Presolve.unscale_duals sc, heuristic, incumbent, true)
      end
    end
  in
  let start = Obs.Clock.now () in
  let finish outcome ~nodes ~iters ~refacs ~etas ~eta_len ~gap_achieved ~audit
    =
    let outcome =
      match outcome with
      | Optimal s -> Optimal { s with x = restore s.x }
      | Feasible (s, b) -> Feasible ({ s with x = restore s.x }, b)
      | o -> o
    in
    (* The counters emitted here carry exactly the values returned in
       [stats], so a trace consumer can cross-check them 1:1. *)
    if Obs.enabled () then begin
      Obs.count "mip.nodes" (float_of_int nodes);
      Obs.count "mip.simplex_iterations" (float_of_int iters);
      if refacs > 0 then
        Obs.count "simplex.refactorizations" (float_of_int refacs);
      if etas > 0 then
        Obs.count "simplex.eta_applications" (float_of_int etas);
      if eta_len > 0 then Obs.gauge "simplex.eta_len" (float_of_int eta_len);
      if Float.is_finite gap_achieved then
        Obs.gauge "mip.gap_achieved" gap_achieved;
      Obs.point "mip.done" ~attrs:[ ("outcome", Obs.Str (outcome_tag outcome)) ]
    end;
    (outcome,
     { nodes;
       simplex_iterations = iters;
       refactorizations = refacs;
       eta_applications = etas;
       elapsed = Obs.Clock.now () -. start;
       gap_achieved;
       audit = { audit with presolve_rows_removed = rows_removed } })
  in
  match limits.max_rows with
  | Some r when std.Lp.nrows > r ->
    (* Leave a trace of the refusal: a silent Too_large is
       indistinguishable from a solver that never ran (documented next
       to the M/I/P codes in docs/ANALYSIS.md). *)
    if Obs.enabled () then
      Obs.point "mip.too_large"
        ~attrs:[ ("rows", Obs.Int std.Lp.nrows); ("max_rows", Obs.Int r) ];
    finish (Too_large { rows = std.Lp.nrows; limit = r }) ~nodes:0 ~iters:0
      ~refacs:0 ~etas:0 ~eta_len:0 ~gap_achieved:infinity ~audit:no_audit
  | _ ->
    let sx =
      Simplex.create ?workspace:simplex_workspace ~kernel:limits.kernel
        ?pricing:limits.pricing ~refactor_every:limits.refactor_every std
    in
    let deadline = Option.map (fun tl -> start +. tl) limits.time_limit in
    let int_vars =
      Array.of_list
        (List.filter
           (fun j -> std.Lp.integer.(j))
           (List.init std.Lp.ncols (fun j -> j)))
    in
    let s =
      {
        std; sx; limits; priority; heuristic; start; deadline; int_vars;
        incumbent = None;
        incumbent_obj = infinity;
        open_bounds = Hashtbl.create 64;
        next_node_id = 0;
        nodes = 0;
        numerical_prunes = 0;
        shared = None;
      }
    in
    (match incumbent with Some c -> ignore (offer s c) | None -> ());
    let root_status = Simplex.reoptimize ?deadline s.sx in
    (match root_status with
     | Simplex.Infeasible ->
       (* A Farkas multiplier is only meaningful in the original row space;
          after presolve the proof is the reduction chain itself.  A scaled
          ray unscales exactly (y = r·y'; positive factors preserve the
          sign conditions). *)
       let farkas =
         if presolved then None
         else Option.map unscale_ray (Simplex.farkas_ray sx)
       in
       finish Infeasible ~nodes:1 ~iters:(Simplex.iterations sx)
         ~refacs:(Simplex.refactorizations sx)
         ~etas:(Simplex.eta_applications sx)
         ~eta_len:(Simplex.max_eta_length sx) ~gap_achieved:infinity
         ~audit:{ no_audit with farkas }
     | Simplex.Time_limit | Simplex.Iter_limit | Simplex.Numerical ->
       let out =
         match s.incumbent with
         | Some x -> Feasible ({ x; obj = Lp.restore_objective std s.incumbent_obj },
                               Lp.restore_objective std neg_infinity)
         | None -> No_incumbent None
       in
       finish out ~nodes:1 ~iters:(Simplex.iterations sx)
         ~refacs:(Simplex.refactorizations sx)
         ~etas:(Simplex.eta_applications sx)
         ~eta_len:(Simplex.max_eta_length sx) ~gap_achieved:infinity
         ~audit:no_audit
     | Simplex.Optimal | Simplex.Unbounded ->
       (* The incremental interface cannot return Unbounded; detect patched
          bounds explicitly via the solution magnitude. *)
       let root_x = Simplex.primal sx in
       if Array.exists (fun v -> Float.abs v > 1e9) (unscale_x root_x) then
         finish Unbounded ~nodes:1 ~iters:(Simplex.iterations sx)
           ~refacs:(Simplex.refactorizations sx)
           ~etas:(Simplex.eta_applications sx)
           ~eta_len:(Simplex.max_eta_length sx) ~gap_achieved:infinity
           ~audit:no_audit
       else begin
         let root_bound = Simplex.objective sx +. std.Lp.obj_const in
         if Obs.enabled () then
           Obs.gauge "mip.root_lp_obj" (Lp.restore_objective std root_bound);
         (* Capture the root relaxation's certificate before branching
            disturbs the basis: duals and reduced costs back-mapped into
            the original spaces so an independent checker can re-derive
            the bound without trusting the solver. *)
         let root_lp =
           match restore_y with
           | None -> None
           | Some restore_y ->
             let y = restore_y (Simplex.duals sx) in
             let reduced =
               (* [y] is back-mapped to the original row space; whenever
                  the search space differs from the original (presolve or
                  scaling), re-derive the reduced costs there too. *)
               if presolved || scaled then reduced_costs_from original_std y
               else Simplex.reduced_costs sx
             in
             Some
               { lp_x = restore root_x;
                 lp_y = y;
                 lp_reduced = reduced;
                 lp_obj = root_bound }
         in
         (* Root heuristic. *)
         (match heuristic with
          | Some h ->
            (match h root_x with Some cand -> ignore (offer s cand) | None -> ())
          | None -> ());
         let interrupted, proven_lb, support, par_iters, par_refacs, par_etas =
           if jobs <= 1 then (
             try
               branch s 0;
               (* Search exhausted: the proof is complete up to numerical
                  prunes. *)
               if s.numerical_prunes = 0 then
                 (false, s.incumbent_obj, [| s.incumbent_obj |], 0, 0, 0)
               else (false, root_bound, [| root_bound |], 0, 0, 0)
             with
             | Hit_limit ->
               (* The exception handlers along the unwind removed their
                  open_bounds entries, so the table only retains nodes above
                  the interrupt point (usually none): the provable bound
                  degrades towards the root bound. *)
               let glb = global_lower_bound s root_bound in
               (true, glb, bound_support s root_bound, 0, 0, 0)
             | Gap_reached (glb, support) -> (true, glb, support, 0, 0, 0))
           else parallel_search s ~root_bound ~jobs
         in
         let iters = Simplex.iterations sx + par_iters in
         let refacs = Simplex.refactorizations sx + par_refacs in
         let etas = Simplex.eta_applications sx + par_etas in
         let eta_len = Simplex.max_eta_length sx in
         let lb_min = proven_lb in
         let audit glb_known =
           { no_audit with
             root_lp;
             bound_support = (if glb_known then support else [||]);
             proven_bound = (if glb_known then Some lb_min else None);
             numerical_prunes = s.numerical_prunes }
         in
         match s.incumbent with
         | None ->
           if interrupted then
             finish (No_incumbent (Some (Lp.restore_objective std lb_min)))
               ~nodes:s.nodes ~iters ~refacs ~etas ~eta_len
               ~gap_achieved:infinity ~audit:(audit true)
           else
             finish Infeasible ~nodes:s.nodes ~iters ~refacs ~etas ~eta_len
               ~gap_achieved:infinity ~audit:(audit false)
         | Some x ->
           let sol = { x; obj = Lp.restore_objective std s.incumbent_obj } in
           let g = rel_gap s.incumbent_obj lb_min in
           if (not interrupted) || g <= limits.gap then
             finish (Optimal sol) ~nodes:s.nodes ~iters ~refacs ~etas ~eta_len
               ~gap_achieved:(Float.max g 0.) ~audit:(audit true)
           else
             finish (Feasible (sol, Lp.restore_objective std lb_min))
               ~nodes:s.nodes ~iters ~refacs ~etas ~eta_len ~gap_achieved:g
               ~audit:(audit true)
       end)

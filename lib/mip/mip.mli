(** Branch-and-bound mixed-integer programming solver.

    Together with {!Vpart_lp.Lp} and {!Vpart_simplex.Simplex} this replaces
    the GLPK MIP solver the paper used: the linearized program (7) is handed
    to {!solve} with a time limit and a relative MIP gap, mirroring the
    paper's 30-minute / 0.1 %-gap setup.

    The search is depth-first with a single warm-started dual-simplex
    instance: branching only changes variable bounds, and any basis stays
    dual feasible under bound changes, so each node costs one warm
    {!Vpart_simplex.Simplex.reoptimize}.  Branching picks the most
    fractional integer variable, preferring higher [priority] values;
    the child closer to the fractional value is explored first.  An
    optional domain [heuristic] is consulted at the root and periodically
    to produce early incumbents (the vertical-partitioning solver plugs in
    a rounding/repair procedure there). *)

type limits = {
  time_limit : float option;  (** wall-clock seconds for the whole solve *)
  node_limit : int option;
  gap : float;                (** relative MIP gap at which to stop, e.g. 0.001 *)
  max_rows : int option;
      (** refuse models with more rows — a guard against runaway basis
          work, sized to what the configured {!Vpart_simplex.Simplex}
          kernel sustains (the sparse LU kernel raised it far beyond the
          old dense-inverse ceiling) *)
  kernel : Simplex.kernel;
      (** basis kernel for the node LPs (see
          {!Vpart_simplex.Simplex.create}); [Sparse] by default *)
  pricing : Simplex.pricing option;
      (** pricing rule override; [None] takes the kernel's default
          (devex for the sparse kernel, Dantzig otherwise) *)
  refactor_every : int;
      (** eta-file length at which the basis is refactorized (sparse
          kernel) or folded (eta kernel); ignored by the dense kernel *)
  scale : bool;
      (** geometric-mean scaling ({!Presolve.scaling}) of the search model
          (after presolve, when both are on).  The branch-and-bound then
          runs on [r·A·c] with power-of-two factors; solutions, duals and
          Farkas rays are back-mapped {e exactly}, integer columns keep
          factor 1, and the objective value is invariant — so outcomes,
          [audit] artifacts and certificates keep their unscaled meaning.
          Remediation for the [N001]/[N002]/[N007] diagnostics of
          [Vpart_analysis.Numerics_lint]. *)
}

val default_limits : limits
(** 60 s, unlimited nodes, gap 0.001, 32000 rows, sparse LU kernel with
    its default (devex) pricing and refactorization every 32 pivots, no
    scaling. *)

type solution = {
  x : float array;  (** structural values; integer variables are integral *)
  obj : float;      (** objective in the model's original sense *)
}

type outcome =
  | Optimal of solution        (** proven optimal within [gap] *)
  | Feasible of solution * float
      (** a limit was hit; the float is the best proven bound
          (lower bound for minimization, in the original sense) *)
  | No_incumbent of float option
      (** a limit was hit before any integer solution was found *)
  | Infeasible
  | Unbounded
  | Too_large of { rows : int; limit : int }
      (** the model has [rows] rows, above the configured [max_rows]
          value [limit] (both are reported so refusals are
          self-explaining in traces and reports) *)

type lp_certificate = {
  lp_x : float array;
      (** LP-relaxation point, original structural space *)
  lp_y : float array;
      (** row duals, original row space, minimization sense *)
  lp_reduced : float array;
      (** reduced costs [c - yᵀA], original structural space, minimization
          sense.  With presolve these are recomputed against the original
          matrix from the back-mapped [lp_y], so they may disagree with the
          reduced solver's internal values on eliminated columns. *)
  lp_obj : float;
      (** LP objective including the constant, minimization sense *)
}
(** Everything an independent checker needs to re-derive the root
    relaxation's claims: weak duality, the Lagrangian bound and
    complementary slackness (see [Vpart_certify.Certify]). *)

type audit = {
  root_lp : lp_certificate option;
      (** root LP relaxation certificate; [None] when the root did not
          solve to optimality (time/iteration/numerical trouble) or the
          model was rejected before any simplex work *)
  farkas : float array option;
      (** when the root relaxation proved [Infeasible] without presolve:
          the dual-simplex Farkas-style multiplier row from which
          infeasibility can be re-derived.  [None] when presolve detected
          infeasibility (the reduction chain, not a single multiplier,
          is the proof) or the outcome is not [Infeasible]. *)
  bound_support : float array;
      (** minimization-sense node bounds backing the claimed global lower
          bound at termination: the claimed bound must equal their minimum.
          Empty when no bound was proven. *)
  proven_bound : float option;
      (** minimization-sense global lower bound at exit, when the search
          ran far enough to establish one *)
  presolve_rows_removed : int;
      (** rows eliminated by presolve (0 without [~presolve]); nonzero
          values mean dual certificates were back-mapped with zero
          multipliers on removed rows and may be weaker than the reduced
          problem's internal bound *)
  numerical_prunes : int;
      (** subtrees abandoned on simplex numerical trouble; nonzero values
          void the optimality proof down to the root bound *)
}
(** Independently checkable artifacts from the solve, in the {e original}
    (pre-presolve) spaces.  Consumed by [Vpart_certify.Certify.certify_mip];
    the solver never verifies its own claims with these. *)

type stats = {
  nodes : int;
  simplex_iterations : int;
  refactorizations : int;
      (** basis refactorizations across the root instance and all worker
          copies; with the [Dense] kernel this counts only the
          cadence/recovery rebuilds *)
  eta_applications : int;
      (** eta-matrix applications summed likewise; 0 with the [Dense]
          kernel.  Emitted as the [simplex.eta_applications] counter (and
          the root's high-water eta-file length as the [simplex.eta_len]
          gauge) next to [mip.nodes]/[mip.simplex_iterations]. *)
  elapsed : float;          (** seconds *)
  gap_achieved : float;
      (** relative gap at termination.  [infinity] exactly when no finite
          gap exists: there is no incumbent, or no finite proven bound to
          measure the incumbent against (root limit paths). *)
  audit : audit;
}

val solve :
  ?limits:limits ->
  ?presolve:bool ->
  ?priority:(Lp.var -> int) ->
  ?heuristic:(float array -> float array option) ->
  ?incumbent:float array ->
  ?jobs:int ->
  ?simplex_workspace:Simplex.Workspace.t ->
  Lp.model ->
  outcome * stats
(** Solve the model.  [priority v] orders branching candidates (higher
    first; default 0).  [heuristic lp_point] may propose a full structural
    assignment built from the current LP relaxation point; proposals are
    vetted against the model before acceptance.  [incumbent] seeds the
    search with a known feasible point (vetted likewise).

    With [~presolve:true] (default false) the model is reduced with
    {!Presolve} first; returned solutions are mapped back to the original
    variable space, and the [priority]/[heuristic]/[incumbent] callbacks
    continue to see original-space indices/points.

    [jobs] (default 1) is the number of domains the branch-and-bound may
    use.  With [jobs = 1] the search is the sequential DFS, bit for bit.
    With [jobs > 1] the tree is first expanded best-bound-first into at
    least [4 * jobs] open subtrees, which are then solved concurrently on
    a {!Par} pool: every domain owns a private warm-started
    {!Simplex.copy} of the root instance, the incumbent is shared through
    an [Atomic] so all domains prune against the global best, and the
    proven lower bound / [bound_support] aggregate the per-subtree
    proofs, so [gap_achieved] and the audit keep their sequential
    meaning (the certificate layer re-checks them unchanged).  The
    explored tree shape — and therefore [nodes], the incumbent point and
    exact tie-breaking — may differ from the sequential search, but the
    certified objective agrees within [limits.gap].  [priority] and
    [heuristic] callbacks must be thread-safe (pure functions of their
    arguments); the ones built by [Qp_solver] are.

    [simplex_workspace] pools the root simplex instance's dense float
    storage across repeated solves (see
    {!Vpart_simplex.Simplex.Workspace}): a batch loop that solves many
    models through one workspace stops paying per-solve major-heap
    allocations for the simplex vectors.  The workspace must not be
    shared across concurrent [solve] calls; worker copies made under
    [jobs > 1] always allocate fresh storage. *)

val pp_outcome : Format.formatter -> outcome -> unit

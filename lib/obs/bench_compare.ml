(* Bench JSON provenance + tolerance-band comparison; policy in the
   interface. *)

let schema_version = 1

type provenance = {
  git_rev : string;
  generated_utc : string;
  ocaml_version : string;
  domains : int;
}

let git_rev () =
  match Sys.getenv_opt "VPART_GIT_REV" with
  | Some r when r <> "" -> r
  | _ -> (
      try
        let ic =
          Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
        in
        let line = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "unknown"
      with _ -> "unknown")

let utc_now () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let provenance () =
  {
    git_rev = git_rev ();
    generated_utc = utc_now ();
    ocaml_version = Sys.ocaml_version;
    domains = Domain.recommended_domain_count ();
  }

let provenance_to_json p =
  Json.Obj
    [
      ("git_rev", Json.String p.git_rev);
      ("generated_utc", Json.String p.generated_utc);
      ("ocaml_version", Json.String p.ocaml_version);
      ("domains", Json.Int p.domains);
    ]

let provenance_json () = provenance_to_json (provenance ())

let provenance_of_json json =
  match json with
  | Json.Obj _ -> (
      let str key =
        match Json.member_opt key json with
        | Some (Json.String s) -> Some s
        | _ -> None
      in
      let int key =
        match Json.member_opt key json with
        | Some (Json.Int i) -> Some i
        | _ -> None
      in
      match (str "git_rev", str "generated_utc", str "ocaml_version", int "domains") with
      | Some git_rev, Some generated_utc, Some ocaml_version, Some domains ->
          Some { git_rev; generated_utc; ocaml_version; domains }
      | _ -> None)
  | _ -> None

type direction = Lower_better | Higher_better | Boolean | Informational

type value = Num of float | Flag of bool

type verdict = Regression | Improvement | Unchanged | Changed | Missing | New

type row = {
  metric : string;
  direction : direction;
  base : value option;
  cur : value option;
  delta : float option;
  verdict : verdict;
}

type options = { tolerance_pct : float; abs_floor : float }

let default_options = { tolerance_pct = 50.; abs_floor = 5e-3 }

type report = {
  rows : row list;
  regressions : int;
  improvements : int;
  missing : int;
  fresh : int;
  warnings : string list;
}

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* "per_second" contains "seconds": check higher-is-better names first. *)
let higher_better_names = [ "per_second"; "per_sec"; "speedup"; "throughput" ]

let lower_better_names =
  [ "seconds"; "_time"; "time_"; "duration"; "overhead"; "latency"; "span." ]

let informational_leaves = [ "count"; "domains"; "schema_version" ]

let direction_of path value =
  match value with
  | Some (Flag _) -> Boolean
  | _ ->
      let lower = String.lowercase_ascii path in
      let leaf =
        match String.rindex_opt lower '/' with
        | Some i -> String.sub lower (i + 1) (String.length lower - i - 1)
        | None -> lower
      in
      if List.mem leaf informational_leaves then Informational
      else if List.exists (contains lower) higher_better_names then
        Higher_better
      else if List.exists (contains lower) lower_better_names then Lower_better
      else Informational

(* Flatten numeric/boolean leaves of the results + metrics members to
   path -> value; strings, nulls and arrays are not comparable metrics. *)
let flatten doc =
  let acc = ref [] in
  let rec walk prefix json =
    match json with
    | Json.Obj fields ->
        List.iter (fun (k, v) -> walk (prefix ^ "/" ^ k) v) fields
    | Json.Int i -> acc := (prefix, Num (float_of_int i)) :: !acc
    | Json.Float f -> acc := (prefix, Num f) :: !acc
    | Json.Bool b -> acc := (prefix, Flag b) :: !acc
    | Json.String _ | Json.Null | Json.List _ -> ()
  in
  List.iter
    (fun key ->
      match Json.member_opt key doc with
      | Some sub -> walk key sub
      | None -> ())
    [ "results"; "metrics" ];
  !acc

let verdict_of ~opts direction base cur =
  match (base, cur) with
  | None, None -> Unchanged
  | Some _, None -> Missing
  | None, Some _ -> New
  | Some (Flag a), Some (Flag b) ->
      if a = b then Unchanged
      else if a && not b then Regression
      else Improvement
  | Some (Num a), Some (Num b) -> (
      let delta = b -. a in
      let beyond_band worse_delta =
        worse_delta > opts.abs_floor
        && worse_delta > Float.abs a *. opts.tolerance_pct /. 100.
      in
      match direction with
      | Lower_better ->
          if beyond_band delta then Regression
          else if beyond_band (-.delta) then Improvement
          else Unchanged
      | Higher_better ->
          if beyond_band (-.delta) then Regression
          else if beyond_band delta then Improvement
          else Unchanged
      | Boolean | Informational ->
          if a = b then Unchanged else Changed)
  | Some _, Some _ -> Changed (* numeric vs boolean type drift *)

let schema_warnings baseline current =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  let version doc =
    match Json.member_opt "schema_version" doc with
    | Some (Json.Int v) -> Some v
    | _ -> None
  in
  (match (version baseline, version current) with
  | None, _ -> warn "baseline has no schema_version (pre-PR-8 bench file)"
  | _, None -> warn "current has no schema_version (pre-PR-8 bench file)"
  | Some a, Some b ->
      if a <> b then warn "schema_version differs: baseline %d vs current %d" a b
      else if a <> schema_version then
        warn "unknown schema_version %d (this reader knows %d)" a schema_version);
  let prov doc =
    Option.bind (Json.member_opt "provenance" doc) provenance_of_json
  in
  (match (prov baseline, prov current) with
  | Some a, Some b ->
      if a.domains <> b.domains then
        warn
          "host core counts differ (baseline %d vs current %d domains): \
           timing comparisons are cross-host"
          a.domains b.domains;
      if a.ocaml_version <> b.ocaml_version then
        warn "OCaml versions differ: baseline %s vs current %s" a.ocaml_version
          b.ocaml_version
  | None, _ | _, None -> ());
  (match (Json.member_opt "config" baseline, Json.member_opt "config" current) with
  | Some a, Some b when Json.to_string ~minify:true a <> Json.to_string ~minify:true b
    ->
      warn "bench configs differ: results may not be comparable"
  | _ -> ());
  List.rev !warnings

let compare ?(options = default_options) ~baseline ~current () =
  let opts = options in
  let base_tbl : (string, value) Hashtbl.t = Hashtbl.create 64 in
  let cur_tbl : (string, value) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base_tbl k v) (flatten baseline);
  List.iter (fun (k, v) -> Hashtbl.replace cur_tbl k v) (flatten current);
  let keys : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) base_tbl;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) cur_tbl;
  let rows =
    Hashtbl.fold
      (fun metric () acc ->
        let base = Hashtbl.find_opt base_tbl metric in
        let cur = Hashtbl.find_opt cur_tbl metric in
        let direction =
          direction_of metric (match base with Some _ -> base | None -> cur)
        in
        let delta =
          match (base, cur) with
          | Some (Num a), Some (Num b) -> Some (b -. a)
          | _ -> None
        in
        { metric; direction; base; cur; delta; verdict = verdict_of ~opts direction base cur }
        :: acc)
      keys []
    |> List.sort (fun a b ->
           let rank r =
             match r.verdict with
             | Regression -> 0
             | Missing -> 1
             | Improvement -> 2
             | Changed -> 3
             | New -> 4
             | Unchanged -> 5
           in
           match Stdlib.compare (rank a) (rank b) with
           | 0 -> Stdlib.compare a.metric b.metric
           | c -> c)
  in
  let tally v = List.length (List.filter (fun r -> r.verdict = v) rows) in
  {
    rows;
    regressions = tally Regression;
    improvements = tally Improvement;
    missing = tally Missing;
    fresh = tally New;
    warnings = schema_warnings baseline current;
  }

let passed r = r.regressions = 0 && r.missing = 0

let verdict_str = function
  | Regression -> "REGRESSION"
  | Improvement -> "IMPROVEMENT"
  | Unchanged -> "unchanged"
  | Changed -> "changed"
  | Missing -> "MISSING"
  | New -> "new"

let direction_str = function
  | Lower_better -> "lower-better"
  | Higher_better -> "higher-better"
  | Boolean -> "boolean"
  | Informational -> "informational"

let value_str = function
  | Some (Num f) -> Printf.sprintf "%g" f
  | Some (Flag b) -> string_of_bool b
  | None -> "-"

let pp ppf r =
  List.iter (fun w -> Format.fprintf ppf "warning: %s@." w) r.warnings;
  Format.fprintf ppf
    "bench-check: %d metric(s) — %d regression(s), %d missing, %d \
     improvement(s), %d new@."
    (List.length r.rows) r.regressions r.missing r.improvements r.fresh;
  List.iter
    (fun row ->
      if row.verdict <> Unchanged then begin
        Format.fprintf ppf "  [%-11s] %s (%s): %s -> %s"
          (verdict_str row.verdict) row.metric
          (direction_str row.direction)
          (value_str row.base) (value_str row.cur);
        (match row.delta with
        | Some d -> Format.fprintf ppf " (%+g)" d
        | None -> ());
        Format.fprintf ppf "@."
      end)
    r.rows;
  Format.fprintf ppf "verdict: %s@." (if passed r then "PASS" else "FAIL")

let value_json = function
  | Some (Num f) -> Json.Float f
  | Some (Flag b) -> Json.Bool b
  | None -> Json.Null

let to_json r =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("metric", Json.String row.metric);
                   ("direction", Json.String (direction_str row.direction));
                   ("base", value_json row.base);
                   ("current", value_json row.cur);
                   ( "delta",
                     match row.delta with
                     | Some d -> Json.Float d
                     | None -> Json.Null );
                   ( "verdict",
                     Json.String
                       (String.lowercase_ascii (verdict_str row.verdict)) );
                 ])
             r.rows) );
      ("regressions", Json.Int r.regressions);
      ("improvements", Json.Int r.improvements);
      ("missing", Json.Int r.missing);
      ("new", Json.Int r.fresh);
      ("warnings", Json.List (List.map (fun w -> Json.String w) r.warnings));
      ("passed", Json.Bool (passed r));
    ]

(** Bench-result provenance and the regression gate behind
    [vpart_cli bench-check].

    {2 Schema}

    [bench --json-out] documents are versioned from schema version 1 on:
    top-level [schema_version] (int) and [provenance] (object: [git_rev],
    [generated_utc], [ocaml_version], [domains] =
    [Domain.recommended_domain_count ()]) ride alongside the existing
    [config] / [results] / [metrics] members.  Additions of new members
    are backwards-compatible; changes to existing members bump the
    version, and {!compare} warns on any version it does not know.

    {2 Comparison policy}

    Both documents are flattened to ["results/…/leaf"] /
    ["metrics/…/leaf"] paths over their numeric and boolean leaves and
    aligned by path.  Each metric is classified by name:

    - {e lower-is-better} (wall-clock language: [seconds], [time],
      [duration], [overhead], [latency], [span.] histograms) and
      {e higher-is-better} ([per_second], [speedup], [throughput])
      metrics gate: a move beyond {e both} the relative tolerance band
      and the absolute floor in the bad direction is a [Regression], in
      the good direction an [Improvement];
    - booleans gate with zero tolerance ([true -> false] is a
      [Regression]);
    - everything else (node counts, iteration totals, configuration
      echoes) is informational: reported as [Changed]/[Unchanged], never
      a regression — counts legitimately move across commits and are
      judged by the trace-diff / test layers, not by this gate.

    A metric present in the baseline but absent from the current run is
    [Missing] and fails the gate (silently dropping a metric is how
    regressions hide); a metric only in the current run is [New] and
    informational.  The default band (50% relative, 0.005 absolute
    floor for timings) is deliberately wide: this gate exists to catch
    order-of-magnitude cliffs on shared CI hosts, not 5% noise —
    tighten with [--tolerance] on quiet hardware. *)

val schema_version : int

type provenance = {
  git_rev : string;       (** [VPART_GIT_REV] env override, else git *)
  generated_utc : string; (** ISO-8601 UTC, e.g. 2026-08-08T12:00:00Z *)
  ocaml_version : string;
  domains : int;          (** [Domain.recommended_domain_count ()] *)
}

val provenance : unit -> provenance
val provenance_json : unit -> Json.t
val provenance_of_json : Json.t -> provenance option

type direction = Lower_better | Higher_better | Boolean | Informational

type value = Num of float | Flag of bool

type verdict = Regression | Improvement | Unchanged | Changed | Missing | New

type row = {
  metric : string;  (** flattened path, e.g. [results/perf/sa_speedup] *)
  direction : direction;
  base : value option;
  cur : value option;
  delta : float option;  (** cur - base when both numeric *)
  verdict : verdict;
}

type options = {
  tolerance_pct : float;  (** relative band for timings, default 50. *)
  abs_floor : float;      (** absolute floor (seconds), default 5e-3 *)
}

val default_options : options

type report = {
  rows : row list;  (** gating verdicts first, then by path *)
  regressions : int;
  improvements : int;
  missing : int;
  fresh : int;     (** [New] rows *)
  warnings : string list;
      (** schema-version / provenance / config mismatches — context for
          reading the verdicts, never failures themselves *)
}

val compare :
  ?options:options -> baseline:Json.t -> current:Json.t -> unit -> report

val passed : report -> bool
(** [regressions = 0 && missing = 0] — the gate's exit criterion. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Json.t

(* Observability layer: monotone clock, span/counter/gauge/point events,
   pluggable sinks, in-process metrics, and the JSONL schema reader used
   by `vpart_cli trace summarize` and the tests.

   Hot-path contract: with no sink installed and metrics collection off,
   every emitter is one mutable-flag test.  Call sites that must build
   attribute lists guard with [enabled ()] first.

   Domain safety: emitters may be called from worker domains
   (Mip.solve ~jobs, the SA portfolio, Par batches).  The clock clamp is
   a CAS loop, span stacks are per-domain (Domain.DLS), span ids come
   from an Atomic, sink emission and the Metrics tables are
   mutex-guarded, and events emitted off the main domain carry a
   [domain] attr so [Reader.check_nesting] can validate each domain's
   span stack separately.  Installing a sink ([with_sink]) remains a
   main-domain affair; the sequential (main-domain-only) event stream is
   byte-identical to the unguarded implementation. *)

module Clock = struct
  (* Monotone clamp over the wall clock: a backwards adjustment freezes
     [now] until real time catches up (documented in the .mli).  The
     clamp is process-wide across domains: CAS loop over the last value
     returned. *)
  let last = Atomic.make 0.

  let rec now () =
    let t = Unix.gettimeofday () in
    let l = Atomic.get last in
    if t > l then
      if Atomic.compare_and_set last l t then t else now ()
    else l

  let since t0 = now () -. t0
end

type value = Int of int | Float of float | Bool of bool | Str of string

type attrs = (string * value) list

type event =
  | Span_open of { id : int; parent : int option; name : string; attrs : attrs }
  | Span_close of { id : int; name : string; dur : float }
  | Counter of { name : string; add : float; attrs : attrs }
  | Gauge of { name : string; value : float; attrs : attrs }
  | Point of { name : string; attrs : attrs }

let schema_version = 1

type sink = {
  emit : ts:float -> event -> unit;
  flush : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

(* [Metrics.enable]/[disable] must refresh the emitter's cached activity
   flag, but the emitter state is defined below; wired up via this hook. *)
let metrics_toggle_hook = ref (fun () -> ())

module Metrics = struct
  let on = Atomic.make false

  (* All table mutation and reading happens under [lock]: counters may
     be bumped concurrently from worker domains (Hashtbl is not
     domain-safe).  The off fast path never touches the lock. *)
  let lock = Mutex.create ()

  let locked f =
    Mutex.lock lock;
    match f () with
    | v -> Mutex.unlock lock; v
    | exception e -> Mutex.unlock lock; raise e

  let counters : (string, float ref) Hashtbl.t = Hashtbl.create 32
  let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 16

  type mutable_hist = {
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : (int, int ref) Hashtbl.t;
        (* log-scale sample counts for percentile estimation, see
           [bucket_of] *)
  }

  let hists : (string, mutable_hist) Hashtbl.t = Hashtbl.create 16

  (* Percentiles must be deterministic and bounded-memory (histograms can
     take millions of samples under bench), so samples land in log-scale
     buckets with ratio 2^(1/8) — worst-case quantile error ~4.4%, a few
     hundred live buckets across the full double range.  Non-positive
     samples (possible for caller-supplied [observe] values, not for
     durations) share one underflow bucket. *)
  let bucket_of v =
    if v > 0. then int_of_float (Float.floor (8. *. Float.log2 v)) else min_int

  let bucket_rep idx =
    if idx = min_int then neg_infinity
    else Float.pow 2. ((float_of_int idx +. 0.5) /. 8.)

  let enable () =
    Atomic.set on true;
    !metrics_toggle_hook ()

  let disable () =
    Atomic.set on false;
    !metrics_toggle_hook ()

  let enabled () = Atomic.get on

  let reset () =
    locked @@ fun () ->
    Hashtbl.reset counters;
    Hashtbl.reset gauges;
    Hashtbl.reset hists

  let add_counter name v =
    locked @@ fun () ->
    match Hashtbl.find_opt counters name with
    | Some r -> r := !r +. v
    | None -> Hashtbl.replace counters name (ref v)

  let set_gauge name v =
    locked @@ fun () ->
    match Hashtbl.find_opt gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace gauges name (ref v)

  let bucket_incr h v =
    let idx = bucket_of v in
    match Hashtbl.find_opt h.h_buckets idx with
    | Some r -> incr r
    | None -> Hashtbl.replace h.h_buckets idx (ref 1)

  let observe name v =
    locked @@ fun () ->
    match Hashtbl.find_opt hists name with
    | Some h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      bucket_incr h v
    | None ->
      let h =
        {
          h_count = 1;
          h_sum = v;
          h_min = v;
          h_max = v;
          h_buckets = Hashtbl.create 8;
        }
      in
      bucket_incr h v;
      Hashtbl.replace hists name h

  (* Nearest-rank percentile over the log-scale buckets: find the bucket
     holding the ceil(q*count)-th sample, report its geometric midpoint
     clamped into the exact [min,max] envelope (so single-sample and
     extreme quantiles are exact). *)
  let percentile h q =
    let buckets =
      Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) h.h_buckets []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count)))
    in
    let rec find cum = function
      | [] -> h.h_max
      | (idx, n) :: rest ->
        let cum = cum + n in
        if cum >= rank then bucket_rep idx else find cum rest
    in
    Float.min h.h_max (Float.max h.h_min (find 0 buckets))

  type hist = {
    count : int;
    sum : float;
    min : float;
    max : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  type snapshot = {
    counters : (string * float) list;
    gauges : (string * float) list;
    hists : (string * hist) list;
  }

  let sorted_bindings tbl f =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl [])

  let snapshot () =
    locked @@ fun () ->
    {
      counters = sorted_bindings counters (fun r -> !r);
      gauges = sorted_bindings gauges (fun r -> !r);
      hists =
        sorted_bindings hists (fun h ->
            {
              count = h.h_count;
              sum = h.h_sum;
              min = h.h_min;
              max = h.h_max;
              p50 = percentile h 0.50;
              p90 = percentile h 0.90;
              p99 = percentile h 0.99;
            });
    }

  let counter_value name =
    locked @@ fun () ->
    match Hashtbl.find_opt counters name with Some r -> !r | None -> 0.

  let to_json (s : snapshot) =
    let obj_of f xs = Json.Obj (List.map (fun (k, v) -> (k, f v)) xs) in
    Json.Obj
      [
        ("counters", obj_of (fun v -> Json.Float v) s.counters);
        ("gauges", obj_of (fun v -> Json.Float v) s.gauges);
        ( "hists",
          obj_of
            (fun (h : hist) ->
               Json.Obj
                 [
                   ("count", Json.Int h.count);
                   ("sum", Json.Float h.sum);
                   ("min", Json.Float h.min);
                   ("max", Json.Float h.max);
                   ("p50", Json.Float h.p50);
                   ("p90", Json.Float h.p90);
                   ("p99", Json.Float h.p99);
                 ])
            s.hists );
      ]

  let pp ppf (s : snapshot) =
    Format.fprintf ppf "@[<v>metrics:";
    if s.counters = [] && s.gauges = [] && s.hists = [] then
      Format.fprintf ppf " (empty)"
    else begin
      List.iter
        (fun (name, v) -> Format.fprintf ppf "@,  %-36s %14.6g" name v)
        s.counters;
      List.iter
        (fun (name, v) ->
           Format.fprintf ppf "@,  %-36s %14.6g (gauge)" name v)
        s.gauges;
      List.iter
        (fun (name, (h : hist)) ->
           Format.fprintf ppf
             "@,  %-36s n=%d sum=%.6g min=%.6g p50=%.6g p90=%.6g p99=%.6g \
              max=%.6g"
             name h.count h.sum h.min h.p50 h.p90 h.p99 h.max)
        s.hists
    end;
    Format.fprintf ppf "@]"
end

(* ------------------------------------------------------------------ *)
(* Global emitter state                                                *)
(* ------------------------------------------------------------------ *)

type state = {
  mutable sink : sink option;   (* installed/removed on the main domain *)
  mutable t0 : float;           (* sink time origin *)
  next_id : int Atomic.t;
  mutable active : bool;        (* sink <> None || Metrics.enabled *)
}

let st = { sink = None; t0 = 0.; next_id = Atomic.make 0; active = false }

(* Open span ids, innermost first, per domain: spans opened on a worker
   domain nest among themselves, never under another domain's spans. *)
let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Serializes sink emission across domains, so concurrent events cannot
   interleave inside a JSONL line and file timestamps stay
   non-decreasing (the ts is taken under the lock). *)
let emit_lock = Mutex.create ()

let sink_on () = match st.sink with Some _ -> true | None -> false

let refresh_active () = st.active <- sink_on () || Metrics.enabled ()
let () = metrics_toggle_hook := refresh_active

let set_sink s =
  st.sink <- s;
  st.t0 <- Clock.now ();
  Atomic.set st.next_id 0;
  Domain.DLS.get stack_key := [];
  refresh_active ()

let enabled () =
  (* Metrics.enable/disable don't go through [set_sink]; recompute. *)
  refresh_active ();
  st.active

let emit ev =
  match st.sink with
  | None -> ()
  | Some s ->
    Mutex.lock emit_lock;
    (match s.emit ~ts:(Clock.since st.t0) ev with
     | () -> Mutex.unlock emit_lock
     | exception e -> Mutex.unlock emit_lock; raise e)

let with_sink sink f =
  let prev = st.sink in
  set_sink (Some sink);
  Fun.protect
    ~finally:(fun () ->
        sink.flush ();
        set_sink prev)
    f

(* Events emitted off the main domain are tagged with the runtime domain
   id, so a parallel trace remains attributable and checkable per
   domain.  Main-domain events carry no tag: the sequential stream is
   byte-identical to the pre-parallelism schema. *)
let domain_attrs attrs =
  if Domain.is_main_domain () then attrs
  else attrs @ [ ("domain", Int (Domain.self () :> int)) ]

(* Set below, once [gauge] exists: samples GC counters at span close
   when {!set_gc_sampling} is on. *)
let gc_sample_hook : (unit -> unit) ref = ref (fun () -> ())

let with_span ?(attrs = []) name f =
  refresh_active ();
  if not st.active then f ()
  else begin
    let t0 = Clock.now () in
    let stack = Domain.DLS.get stack_key in
    let id =
      match st.sink with
      | None -> -1
      | Some _ ->
        let id = Atomic.fetch_and_add st.next_id 1 in
        let parent = match !stack with [] -> None | p :: _ -> Some p in
        stack := id :: !stack;
        emit (Span_open { id; parent; name; attrs = domain_attrs attrs });
        id
    in
    Fun.protect
      ~finally:(fun () ->
          let dur = Clock.since t0 in
          if id >= 0 then begin
            (match !stack with
             | top :: rest when top = id -> stack := rest
             | _ -> ()  (* sink swapped mid-span; drop silently *));
            emit (Span_close { id; name; dur })
          end;
          if Metrics.enabled () then Metrics.observe ("span." ^ name) dur;
          !gc_sample_hook ())
      f
  end

let count ?(attrs = []) name v =
  if st.active then begin
    if Metrics.enabled () then Metrics.add_counter name v;
    if sink_on () then emit (Counter { name; add = v; attrs })
  end

let gauge ?(attrs = []) name v =
  if st.active then begin
    if Metrics.enabled () then Metrics.set_gauge name v;
    if sink_on () then emit (Gauge { name; value = v; attrs })
  end

let point ?(attrs = []) name =
  if st.active then begin
    if Metrics.enabled () then Metrics.add_counter name 1.;
    if sink_on () then emit (Point { name; attrs = domain_attrs attrs })
  end

(* --- GC sampling -------------------------------------------------- *)

let gc_sampling_flag = ref false

let set_gc_sampling b = gc_sampling_flag := b

let gc_sampling () = !gc_sampling_flag

let sample_gc () =
  if !gc_sampling_flag && st.active then begin
    (* [quick_stat] reads counters without forcing a heap walk, so the
       sample is cheap enough for span boundaries.  Words are reported
       as floats (minor_words already is one; a heap beyond 2^53 words
       is not a concern). *)
    let s = Gc.quick_stat () in
    gauge "gc.minor_words" s.Gc.minor_words;
    gauge "gc.major_words" s.Gc.major_words;
    gauge "gc.heap_words" (float_of_int s.Gc.heap_words);
    gauge "gc.compactions" (float_of_int s.Gc.compactions)
  end

let () = gc_sample_hook := sample_gc

let observe name v = if Metrics.enabled () then Metrics.observe name v

let timed name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let t0 = Clock.now () in
    Fun.protect ~finally:(fun () -> Metrics.observe name (Clock.since t0)) f
  end

(* ------------------------------------------------------------------ *)
(* Event rendering                                                     *)
(* ------------------------------------------------------------------ *)

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b
  | Str s -> Json.String s

let json_of_attrs attrs =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)

let event_to_json ~ts ev =
  let base ev_name rest =
    Json.Obj
      (("v", Json.Int schema_version)
       :: ("ev", Json.String ev_name)
       :: ("ts", Json.Float ts)
       :: rest)
  in
  match ev with
  | Span_open { id; parent; name; attrs } ->
    base "span_open"
      [
        ("id", Json.Int id);
        ("parent", (match parent with Some p -> Json.Int p | None -> Json.Null));
        ("name", Json.String name);
        ("attrs", json_of_attrs attrs);
      ]
  | Span_close { id; name; dur } ->
    base "span_close"
      [ ("id", Json.Int id); ("name", Json.String name); ("dur", Json.Float dur) ]
  | Counter { name; add; attrs } ->
    base "counter"
      [
        ("name", Json.String name);
        ("add", Json.Float add);
        ("attrs", json_of_attrs attrs);
      ]
  | Gauge { name; value; attrs } ->
    base "gauge"
      [
        ("name", Json.String name);
        ("value", Json.Float value);
        ("attrs", json_of_attrs attrs);
      ]
  | Point { name; attrs } ->
    base "point" [ ("name", Json.String name); ("attrs", json_of_attrs attrs) ]

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let null_sink () = { emit = (fun ~ts:_ _ -> ()); flush = (fun () -> ()) }

let jsonl_sink write =
  {
    emit =
      (fun ~ts ev ->
         write (Json.to_string ~minify:true (event_to_json ~ts ev));
         write "\n");
    flush = (fun () -> ());
  }

let pp_attr_value ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%.6g" f
  | Bool b -> Format.pp_print_bool ppf b
  | Str s -> Format.pp_print_string ppf s

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    List.iter
      (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_attr_value v)
      attrs

let progress_sink ?ppf () =
  let ppf = match ppf with Some p -> p | None -> Format.err_formatter in
  let depth = ref 0 in
  let indent () = String.make (2 * !depth) ' ' in
  {
    emit =
      (fun ~ts ev ->
         (match ev with
          | Span_open { name; attrs; _ } ->
            Format.fprintf ppf "[%8.3fs] %s> %s%a@." ts (indent ()) name
              pp_attrs attrs;
            incr depth
          | Span_close { name; dur; _ } ->
            decr depth;
            if !depth < 0 then depth := 0;
            Format.fprintf ppf "[%8.3fs] %s< %s (%.3fs)@." ts (indent ()) name
              dur
          | Counter { name; add; attrs } ->
            Format.fprintf ppf "[%8.3fs] %s+ %s %.6g%a@." ts (indent ()) name
              add pp_attrs attrs
          | Gauge { name; value; attrs } ->
            Format.fprintf ppf "[%8.3fs] %s= %s %.6g%a@." ts (indent ()) name
              value pp_attrs attrs
          | Point { name; attrs } ->
            Format.fprintf ppf "[%8.3fs] %s* %s%a@." ts (indent ()) name
              pp_attrs attrs))
    ;
    flush = (fun () -> Format.pp_print_flush ppf ());
  }

let tee sinks =
  {
    emit = (fun ~ts ev -> List.iter (fun s -> s.emit ~ts ev) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
  }

(* ------------------------------------------------------------------ *)
(* Reader: schema validation                                           *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  exception Bad of string

  let bad fmt = Format.kasprintf (fun m -> raise (Bad m)) fmt

  let field name json =
    match Json.member_opt name json with
    | Some v -> v
    | None -> bad "missing field %S" name

  let as_int name = function
    | Json.Int i -> i
    | Json.Float f when Float.is_integer f -> int_of_float f
    | _ -> bad "field %S must be an integer" name

  let as_float name = function
    | Json.Int i -> float_of_int i
    | Json.Float f -> f
    | _ -> bad "field %S must be a number" name

  let as_string name = function
    | Json.String s -> s
    | _ -> bad "field %S must be a string" name

  let attrs_of_json name = function
    | Json.Obj fields ->
      List.map
        (fun (k, v) ->
           ( k,
             match v with
             | Json.Int i -> Int i
             | Json.Float f -> Float f
             | Json.Bool b -> Bool b
             | Json.String s -> Str s
             | _ -> bad "attr %S of %S must be a scalar" k name ))
        fields
    | Json.Null -> []
    | _ -> bad "field %S must be an object" name

  let event_of_json json =
    try
      (match json with Json.Obj _ -> () | _ -> bad "event must be an object");
      let v = as_int "v" (field "v" json) in
      if v <> schema_version then
        bad "unsupported schema version %d (expected %d)" v schema_version;
      let ts = as_float "ts" (field "ts" json) in
      if not (Float.is_finite ts) || ts < 0. then
        bad "field \"ts\" must be a finite non-negative number";
      let name () = as_string "name" (field "name" json) in
      let attrs () =
        match Json.member_opt "attrs" json with
        | None -> []
        | Some a -> attrs_of_json "attrs" a
      in
      let ev =
        match as_string "ev" (field "ev" json) with
        | "span_open" ->
          let parent =
            match Json.member_opt "parent" json with
            | None | Some Json.Null -> None
            | Some p -> Some (as_int "parent" p)
          in
          Span_open
            {
              id = as_int "id" (field "id" json);
              parent;
              name = name ();
              attrs = attrs ();
            }
        | "span_close" ->
          let dur = as_float "dur" (field "dur" json) in
          if not (Float.is_finite dur) || dur < 0. then
            bad "field \"dur\" must be a finite non-negative number";
          Span_close { id = as_int "id" (field "id" json); name = name (); dur }
        | "counter" ->
          Counter
            {
              name = name ();
              add = as_float "add" (field "add" json);
              attrs = attrs ();
            }
        | "gauge" ->
          Gauge
            {
              name = name ();
              value = as_float "value" (field "value" json);
              attrs = attrs ();
            }
        | "point" -> Point { name = name (); attrs = attrs () }
        | other -> bad "unknown event kind %S" other
      in
      Ok (ts, ev)
    with
    | Bad m -> Error m
    | Invalid_argument m -> Error m

  let read_string contents =
    let lines = String.split_on_char '\n' contents in
    let rec go lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else begin
          match Json.of_string line with
          | exception Json.Parse_error m ->
            Error (Printf.sprintf "line %d: JSON parse error: %s" lineno m)
          | json -> (
            match event_of_json json with
            | Ok ev -> go (lineno + 1) (ev :: acc) rest
            | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
        end
    in
    go 1 [] lines

  let read_file path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error m -> Error m
    | contents -> read_string contents

  (* Span discipline is per domain: events emitted off the main domain
     carry a ["domain"] int attr (absent = main domain, runtime id 0),
     and spans opened on a domain nest among that domain's spans only.
     A [span_close] has no attrs; it belongs to the domain that opened
     its id.  Sequential traces (no tagged events) degenerate to the
     original single-stack check. *)
  let check_nesting events =
    let open_spans = Hashtbl.create 32 in   (* id -> name *)
    let span_domain = Hashtbl.create 32 in  (* id -> domain *)
    let stacks : (int, int list ref) Hashtbl.t = Hashtbl.create 4 in
    let stack_of dom =
      match Hashtbl.find_opt stacks dom with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace stacks dom r;
        r
    in
    let domain_of attrs =
      match List.assoc_opt "domain" attrs with
      | Some (Int d) -> d
      | _ -> 0
    in
    let rec check = function
      | [] ->
        Hashtbl.fold
          (fun _dom stack acc ->
             match (acc, !stack) with
             | (Error _, _) | (_, []) -> acc
             | (Ok (), id :: _) ->
               Error
                 (Printf.sprintf "span %d (%s) never closed" id
                    (try Hashtbl.find open_spans id with Not_found -> "?")))
          stacks (Ok ())
      | (_, ev) :: rest -> (
        match ev with
        | Span_open { id; parent; name; attrs } ->
          let dom = domain_of attrs in
          let stack = stack_of dom in
          if Hashtbl.mem open_spans id then
            Error (Printf.sprintf "span id %d opened twice" id)
          else begin
            match parent with
            | Some p when not (Hashtbl.mem open_spans p) ->
              Error
                (Printf.sprintf "span %d (%s) opened under unknown parent %d"
                   id name p)
            | Some p when (match !stack with t :: _ -> t <> p | [] -> true) ->
              Error
                (Printf.sprintf
                   "span %d (%s): parent %d is not the innermost open span" id
                   name p)
            | None when !stack <> [] ->
              Error
                (Printf.sprintf
                   "span %d (%s) claims no parent inside an open span" id name)
            | _ ->
              Hashtbl.replace open_spans id name;
              Hashtbl.replace span_domain id dom;
              stack := id :: !stack;
              check rest
          end
        | Span_close { id; name; _ } -> (
          let stack =
            match Hashtbl.find_opt span_domain id with
            | Some dom -> stack_of dom
            | None -> stack_of 0
          in
          match !stack with
          | top :: rest_stack when top = id ->
            stack := rest_stack;
            Hashtbl.remove open_spans id;
            check rest
          | top :: _ ->
            Error
              (Printf.sprintf
                 "span close %d (%s) does not match innermost open span %d" id
                 name top)
          | [] ->
            Error (Printf.sprintf "orphan span close %d (%s)" id name))
        | Counter _ | Gauge _ | Point _ -> check rest)
    in
    check events
end

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

module Summary = struct
  type phase = { calls : int; total : float }

  type t = {
    events : int;
    duration : float;
    phases : (string * phase) list;
    counters : (string * float) list;
    gauges : (string * float) list;
    points : (string * int) list;
    solve_start : float option;
    incumbents : (float * float) list;
    bounds : (float * float) list;
    time_to_first_incumbent : float option;
  }

  let attr_float key attrs =
    List.find_map
      (fun (k, v) ->
         if k <> key then None
         else
           match v with
           | Float f -> Some f
           | Int i -> Some (float_of_int i)
           | _ -> None)
      attrs

  let of_events events =
    let phases : (string, phase ref) Hashtbl.t = Hashtbl.create 16 in
    let phase_order = ref [] in
    let counters : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
    let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
    let points : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
    let duration = ref 0. in
    let solve_start = ref None in
    let incumbents = ref [] and bounds = ref [] in
    List.iter
      (fun (ts, ev) ->
         if ts > !duration then duration := ts;
         match ev with
         | Span_open { name; _ } ->
           if not (Hashtbl.mem phases name) then begin
             Hashtbl.replace phases name (ref { calls = 0; total = 0. });
             phase_order := name :: !phase_order
           end;
           if name = "mip.solve" && !solve_start = None then
             solve_start := Some ts
         | Span_close { name; dur; _ } ->
           let r =
             match Hashtbl.find_opt phases name with
             | Some r -> r
             | None ->
               let r = ref { calls = 0; total = 0. } in
               Hashtbl.replace phases name r;
               phase_order := name :: !phase_order;
               r
           in
           r := { calls = !r.calls + 1; total = !r.total +. dur }
         | Counter { name; add; _ } -> (
           match Hashtbl.find_opt counters name with
           | Some r -> r := !r +. add
           | None -> Hashtbl.replace counters name (ref add))
         | Gauge { name; value; _ } -> (
           match Hashtbl.find_opt gauges name with
           | Some r -> r := value
           | None -> Hashtbl.replace gauges name (ref value))
         | Point { name; attrs } ->
           (match Hashtbl.find_opt points name with
            | Some r -> incr r
            | None -> Hashtbl.replace points name (ref 1));
           (match name, attr_float "obj" attrs with
            | "mip.incumbent", Some obj ->
              incumbents := (ts, obj) :: !incumbents
            | _ -> ());
           (match name, attr_float "bound" attrs with
            | "mip.bound", Some b -> bounds := (ts, b) :: !bounds
            | _ -> ()))
      events;
    let sorted tbl f =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl [])
    in
    let incumbents = List.rev !incumbents in
    let ttfi =
      match incumbents with
      | [] -> None
      | (ts, _) :: _ ->
        Some (ts -. Option.value !solve_start ~default:0.)
    in
    {
      events = List.length events;
      duration = !duration;
      phases =
        List.rev_map
          (fun name -> (name, !(Hashtbl.find phases name)))
          !phase_order;
      counters = sorted counters (fun r -> !r);
      gauges = sorted gauges (fun r -> !r);
      points = sorted points (fun r -> !r);
      solve_start = !solve_start;
      incumbents;
      bounds = List.rev !bounds;
      time_to_first_incumbent = ttfi;
    }

  let to_json t =
    let obj_of f xs = Json.Obj (List.map (fun (k, v) -> (k, f v)) xs) in
    let opt_float = function Some f -> Json.Float f | None -> Json.Null in
    let ts_pairs xs =
      Json.List
        (List.map
           (fun (ts, v) ->
              Json.Obj [ ("ts", Json.Float ts); ("value", Json.Float v) ])
           xs)
    in
    Json.Obj
      [
        ("schema_version", Json.Int schema_version);
        ("events", Json.Int t.events);
        ("duration_seconds", Json.Float t.duration);
        ( "phases",
          Json.Obj
            (List.map
               (fun (name, p) ->
                  ( name,
                    Json.Obj
                      [
                        ("calls", Json.Int p.calls);
                        ("total_seconds", Json.Float p.total);
                      ] ))
               t.phases) );
        ("counters", obj_of (fun v -> Json.Float v) t.counters);
        ("gauges", obj_of (fun v -> Json.Float v) t.gauges);
        ("points", obj_of (fun n -> Json.Int n) t.points);
        ("solve_start", opt_float t.solve_start);
        ("incumbents", ts_pairs t.incumbents);
        ("bounds", ts_pairs t.bounds);
        ("time_to_first_incumbent", opt_float t.time_to_first_incumbent);
      ]

  let pp ppf t =
    Format.fprintf ppf "@[<v>trace summary (schema v%d): %d events, %.3fs"
      schema_version t.events t.duration;
    if t.phases <> [] then begin
      Format.fprintf ppf "@,per-phase breakdown:";
      List.iter
        (fun (name, p) ->
           Format.fprintf ppf "@,  %-28s %5d call%s %10.3fs" name p.calls
             (if p.calls = 1 then " " else "s") p.total)
        t.phases
    end;
    if t.counters <> [] then begin
      Format.fprintf ppf "@,counters:";
      List.iter
        (fun (name, v) -> Format.fprintf ppf "@,  %-28s %16.6g" name v)
        t.counters
    end;
    if t.gauges <> [] then begin
      Format.fprintf ppf "@,gauges:";
      List.iter
        (fun (name, v) -> Format.fprintf ppf "@,  %-28s %16.6g" name v)
        t.gauges
    end;
    if t.points <> [] then begin
      Format.fprintf ppf "@,events:";
      List.iter
        (fun (name, n) -> Format.fprintf ppf "@,  %-28s %10d" name n)
        t.points
    end;
    (match t.time_to_first_incumbent with
     | Some dt -> Format.fprintf ppf "@,time-to-first-incumbent: %.3fs" dt
     | None -> ());
    if t.incumbents <> [] then begin
      Format.fprintf ppf "@,gap-vs-time (incumbent trajectory):";
      List.iter
        (fun (ts, obj) ->
           (* best proven bound known at this timestamp *)
           let bound =
             List.fold_left
               (fun acc (bts, b) -> if bts <= ts then Some b else acc)
               None t.bounds
           in
           match bound with
           | Some b when Float.is_finite b ->
             let gap =
               100. *. Float.abs (obj -. b) /. Float.max 1. (Float.abs obj)
             in
             Format.fprintf ppf "@,  %8.3fs  obj %14.6g  bound %14.6g  gap %6.2f%%"
               ts obj b gap
           | _ -> Format.fprintf ppf "@,  %8.3fs  obj %14.6g" ts obj)
        t.incumbents
    end;
    Format.fprintf ppf "@]"
end

(** vpart_obs: structured tracing, metrics and solve-progress
    instrumentation for the solver stack.

    The layer has three pieces:

    - {!Clock}: a monotone time source replacing the scattered
      [Unix.gettimeofday] call sites in deadline checks and [elapsed]
      bookkeeping;
    - emitters ({!with_span}, {!count}, {!gauge}, {!point}, {!observe},
      {!timed}) that the solvers call unconditionally — when nothing is
      listening every emitter is a single flag test;
    - pluggable {!sink}s that receive timestamped {!event}s: {!null_sink}
      (drop everything), {!progress_sink} (human-readable lines) and
      {!jsonl_sink} (one JSON object per line, schema below), plus the
      in-process {!Metrics} aggregator for end-of-run summaries.

    {2 JSONL event schema (version {!schema_version})}

    Every line is a JSON object with fields [v] (schema version, int),
    [ev] (event kind), [ts] (seconds since the sink was installed, float)
    and kind-specific fields:

    - [{"v":1,"ev":"span_open","ts":..,"id":N,"parent":N|null,
       "name":S,"attrs":{..}}]
    - [{"v":1,"ev":"span_close","ts":..,"id":N,"name":S,"dur":F}]
    - [{"v":1,"ev":"counter","ts":..,"name":S,"add":F,"attrs":{..}}]
    - [{"v":1,"ev":"gauge","ts":..,"name":S,"value":F,"attrs":{..}}]
    - [{"v":1,"ev":"point","ts":..,"name":S,"attrs":{..}}]

    [attrs] values are scalars (int, float, bool or string).  Versioning
    policy: additions of new optional fields or new span/counter names are
    backwards-compatible and do not bump [v]; any change to the fields
    above or to the meaning of an existing name bumps [v], and readers
    must reject versions they do not know.  The catalogue of span and
    counter names emitted by the solvers lives in docs/OBSERVABILITY.md. *)

(** Monotone wall-clock.  The sealed environment has no binding to
    [CLOCK_MONOTONIC], so [now] is [Unix.gettimeofday] clamped to be
    non-decreasing within the process: a backwards step of the system
    clock (NTP adjustment, manual set) freezes [now] until real time
    catches up instead of making deadlines fire early or elapsed times
    negative.  Forward jumps are indistinguishable from time passing. *)
module Clock : sig
  val now : unit -> float
  (** Seconds since the Unix epoch, never decreasing within the process. *)

  val since : float -> float
  (** [since t0] is [now () -. t0] (>= 0 whenever [t0] came from [now]). *)
end

(** Scalar attribute values attached to events. *)
type value = Int of int | Float of float | Bool of bool | Str of string

type attrs = (string * value) list

type event =
  | Span_open of { id : int; parent : int option; name : string; attrs : attrs }
  | Span_close of { id : int; name : string; dur : float }
  | Counter of { name : string; add : float; attrs : attrs }
  | Gauge of { name : string; value : float; attrs : attrs }
  | Point of { name : string; attrs : attrs }

val schema_version : int
(** Version written into (and required of) every JSONL event. *)

val event_to_json : ts:float -> event -> Json.t
(** The schema-v1 rendering of one event. *)

(** {1 Sinks} *)

type sink = {
  emit : ts:float -> event -> unit;
      (** [ts] is seconds since the sink was installed. *)
  flush : unit -> unit;
}

val null_sink : unit -> sink
(** Accepts and drops every event (for overhead measurements; installing
    no sink at all is cheaper still). *)

val progress_sink : ?ppf:Format.formatter -> unit -> sink
(** Human-readable one-line-per-event rendering; defaults to stderr. *)

val jsonl_sink : (string -> unit) -> sink
(** [jsonl_sink write] renders each event with {!event_to_json} and calls
    [write] with the minified line (terminated by ["\n"]). *)

val tee : sink list -> sink
(** Broadcast to several sinks. *)

(** {1 Installation and emitters} *)

val set_sink : sink option -> unit
(** Install (or remove, with [None]) the process-wide sink.  Resets the
    sink's time origin and the span stack. *)

val enabled : unit -> bool
(** True when a sink is installed or {!Metrics} collection is on — the
    guard call sites use before building expensive attribute lists. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install a sink for the duration of the callback (flushing it and
    restoring the previous sink afterwards). *)

val with_span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** Run the callback inside a named span.  Spans nest; the sink sees
    matching [Span_open]/[Span_close] events (closed even on exceptions),
    and {!Metrics} records the duration under histogram ["span." ^ name]. *)

val count : ?attrs:attrs -> string -> float -> unit
(** Add to a named counter: a [Counter] event for the sink and an
    accumulating total in {!Metrics}. *)

val gauge : ?attrs:attrs -> string -> float -> unit
(** Set a named gauge (last value wins in {!Metrics}). *)

val point : ?attrs:attrs -> string -> unit
(** An instantaneous progress event (incumbent found, epoch finished).
    Sink-only; {!Metrics} counts occurrences under the event name. *)

val set_gc_sampling : bool -> unit
(** Enable/disable GC sampling at span boundaries (off by default, so
    existing traces stay byte-identical).  When on and a sink or
    {!Metrics} is active, every span close additionally emits the gauges
    [gc.minor_words], [gc.major_words] (cumulative allocation, words),
    [gc.heap_words] (current major heap) and [gc.compactions] — the
    memory-flatness evidence of the batch throughput bench.  New gauge
    names only: schema version is unchanged per the policy above. *)

val gc_sampling : unit -> bool

val sample_gc : unit -> unit
(** Emit one GC sample immediately (same gauges as above); a no-op when
    sampling is off or nothing is listening.  For request-loop callers
    that want samples between spans. *)

val observe : string -> float -> unit
(** Record a value into a {!Metrics} histogram.  Metrics-only: histogram
    samples are aggregates, not trace events. *)

val timed : string -> (unit -> 'a) -> 'a
(** [timed name f] runs [f], recording its duration with {!observe}
    [name] when metrics are on.  Unlike {!with_span} it never emits trace
    events, so it is safe on warm paths. *)

(** In-process aggregation of counters, gauges and histograms, for
    end-of-run summaries ([solve --metrics-summary], bench JSON output).
    Collection is off by default and independent of the sink. *)
module Metrics : sig
  val enable : unit -> unit

  val disable : unit -> unit

  val enabled : unit -> bool

  val reset : unit -> unit
  (** Drop all accumulated values (collection state is unchanged). *)

  type hist = {
    count : int;
    sum : float;
    min : float;  (** exact *)
    max : float;  (** exact *)
    p50 : float;
    p90 : float;
    p99 : float;
        (** deterministic bounded-memory estimates: samples land in
            log-scale buckets of ratio 2^(1/8), percentiles report the
            nearest-rank bucket's geometric midpoint clamped to
            [[min,max]] (worst-case relative error ~4.4%, exact for
            single-sample histograms) *)
  }

  type snapshot = {
    counters : (string * float) list;  (** sorted by name *)
    gauges : (string * float) list;    (** sorted by name; last value *)
    hists : (string * hist) list;      (** sorted by name *)
  }

  val snapshot : unit -> snapshot

  val counter_value : string -> float
  (** Current total of a counter; [0.] when never incremented. *)

  val to_json : snapshot -> Json.t
  (** [{"counters":{..},"gauges":{..},"hists":{name:{"count":..,"sum":..,
      "min":..,"max":..,"p50":..,"p90":..,"p99":..}}}] *)

  val pp : Format.formatter -> snapshot -> unit
end

(** Parsing and validation of JSONL traces (the reader half of the
    schema contract). *)
module Reader : sig
  val event_of_json : Json.t -> (float * event, string) result
  (** Validate one line against the schema; returns [(ts, event)]. *)

  val read_string : string -> ((float * event) list, string) result
  (** Parse a whole JSONL document (blank lines ignored).  The error
      message names the offending line. *)

  val read_file : string -> ((float * event) list, string) result

  val check_nesting : (float * event) list -> (unit, string) result
  (** Well-formedness of the span structure: every [Span_close] must
      close the innermost open span, parents must be open at open time,
      and no span may remain open at end of trace. *)
end

(** Timeline reconstruction for [vpart_cli trace summarize]. *)
module Summary : sig
  type phase = { calls : int; total : float (** summed span durations *) }

  type t = {
    events : int;
    duration : float;             (** largest timestamp in the trace *)
    phases : (string * phase) list;       (** first-open order *)
    counters : (string * float) list;     (** summed, sorted by name *)
    gauges : (string * float) list;       (** last value, sorted by name *)
    points : (string * int) list;         (** occurrences, sorted by name *)
    solve_start : float option;   (** open ts of the first mip.solve span *)
    incumbents : (float * float) list;    (** (ts, objective), mip.incumbent *)
    bounds : (float * float) list;        (** (ts, bound), mip.bound *)
    time_to_first_incumbent : float option;
        (** first incumbent ts relative to [solve_start] (or the trace
            start when no mip.solve span is present) *)
  }

  val of_events : (float * event) list -> t

  val to_json : t -> Json.t
  (** Machine-readable summary ([trace summarize --format json]):
      [{"schema_version":..,"events":..,"duration_seconds":..,
      "phases":{name:{"calls":..,"total_seconds":..}},"counters":{..},
      "gauges":{..},"points":{..},"solve_start":..,
      "incumbents":[{"ts":..,"value":..}],"bounds":[..],
      "time_to_first_incumbent":..}] with [null] for absent optionals. *)

  val pp : Format.formatter -> t -> unit
  (** The timeline report: per-phase breakdown, counters, incumbent /
      gap-vs-time trajectory.  Deterministic for a given trace. *)
end

(* Aggregated span-path profiles over validated JSONL traces: the span
   tree behind [vpart_cli trace flame] plus the two export formats
   (folded stacks for flamegraph.pl/inferno, speedscope JSON). *)

type node = {
  name : string;
  path : string list;
  calls : int;
  total : float;
  self : float;
  counters : (string * float) list;
  children : node list;
}

type t = {
  roots : node list;
  counters : (string * float) list;
  total : float;
  duration : float;
}

(* Mutable builder node: one per distinct span path. *)
type bnode = {
  b_name : string;
  mutable b_calls : int;
  mutable b_total : float;
  b_counters : (string, float ref) Hashtbl.t;
  b_children : (string, bnode) Hashtbl.t;
}

let new_bnode name =
  {
    b_name = name;
    b_calls = 0;
    b_total = 0.;
    b_counters = Hashtbl.create 4;
    b_children = Hashtbl.create 4;
  }

let child_of tbl name =
  match Hashtbl.find_opt tbl name with
  | Some n -> n
  | None ->
      let n = new_bnode name in
      Hashtbl.add tbl name n;
      n

let bump tbl name v =
  match Hashtbl.find_opt tbl name with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add tbl name (ref v)

let domain_of attrs =
  match List.assoc_opt "domain" attrs with Some (Obs.Int d) -> d | _ -> 0

let of_events events =
  let roots : (string, bnode) Hashtbl.t = Hashtbl.create 8 in
  let top_counters : (string, float ref) Hashtbl.t = Hashtbl.create 8 in
  (* Per-domain stack of open builder nodes (innermost first). *)
  let stacks : (int, bnode list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
  in
  (* Open span id -> (domain, builder node). *)
  let open_spans : (int, int * bnode) Hashtbl.t = Hashtbl.create 16 in
  (* Counter events carry no domain tag; attribute them to the innermost
     open span of the domain that most recently emitted a span event
     (exact for sequential traces, best-effort under --jobs). *)
  let current_domain = ref 0 in
  let duration = ref 0. in
  List.iter
    (fun (ts, ev) ->
      if ts > !duration then duration := ts;
      match ev with
      | Obs.Span_open { id; name; attrs; _ } ->
          let dom = domain_of attrs in
          current_domain := dom;
          let stack = stack_of dom in
          let node =
            match !stack with
            | [] -> child_of roots name
            | top :: _ -> child_of top.b_children name
          in
          Hashtbl.replace open_spans id (dom, node);
          stack := node :: !stack
      | Obs.Span_close { id; dur; _ } -> (
          match Hashtbl.find_opt open_spans id with
          | None -> ()
          | Some (dom, node) ->
              Hashtbl.remove open_spans id;
              current_domain := dom;
              node.b_calls <- node.b_calls + 1;
              node.b_total <- node.b_total +. dur;
              let stack = stack_of dom in
              (* Validated traces close the innermost span; drop down to
                 the matching node regardless so a sloppy trace cannot
                 corrupt the stack. *)
              let rec drop = function
                | [] -> []
                | top :: rest -> if top == node then rest else drop rest
              in
              stack := drop !stack)
      | Obs.Counter { name; add; _ } -> (
          match !(stack_of !current_domain) with
          | top :: _ -> bump top.b_counters name add
          | [] -> bump top_counters name add)
      | Obs.Gauge _ | Obs.Point _ -> ())
    events;
  let sorted_counters tbl =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let rec freeze rev_path b : node =
    let path = List.rev (b.b_name :: rev_path) in
    let children =
      Hashtbl.fold (fun _ c acc -> c :: acc) b.b_children []
      |> List.sort (fun a b -> compare a.b_name b.b_name)
      |> List.map (freeze (b.b_name :: rev_path))
    in
    let child_total =
      List.fold_left (fun s (c : node) -> s +. c.total) 0. children
    in
    {
      name = b.b_name;
      path;
      calls = b.b_calls;
      total = b.b_total;
      self = Float.max 0. (b.b_total -. child_total);
      counters = sorted_counters b.b_counters;
      children;
    }
  in
  let root_nodes =
    Hashtbl.fold (fun _ b acc -> b :: acc) roots []
    |> List.sort (fun a b -> compare a.b_name b.b_name)
    |> List.map (freeze [])
  in
  {
    roots = root_nodes;
    counters = sorted_counters top_counters;
    total = List.fold_left (fun s (n : node) -> s +. n.total) 0. root_nodes;
    duration = !duration;
  }

let path_key path = String.concat ";" path

let flatten t =
  let rec walk acc n =
    let acc = (path_key n.path, n) :: acc in
    List.fold_left walk acc n.children
  in
  List.rev (List.fold_left walk [] t.roots)

let to_folded t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (key, n) ->
      let micros = int_of_float (Float.round (n.self *. 1e6)) in
      Buffer.add_string buf key;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (max 0 micros));
      Buffer.add_char buf '\n')
    (flatten t);
  Buffer.contents buf

let speedscope ?(name = "vpart trace") events =
  (* Frames deduplicated by span name, in first-appearance order. *)
  let frame_idx : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let frames_rev = ref [] in
  let nframes = ref 0 in
  let frame_of name =
    match Hashtbl.find_opt frame_idx name with
    | Some i -> i
    | None ->
        let i = !nframes in
        Hashtbl.add frame_idx name i;
        frames_rev := name :: !frames_rev;
        incr nframes;
        i
  in
  (* Per-domain evented timelines.  [at] must be non-decreasing and
     opens/closes balanced; validated traces already guarantee both per
     domain. *)
  let timelines : (int, (float * bool * int) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let open_domain : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let timeline dom =
    match Hashtbl.find_opt timelines dom with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add timelines dom l;
        l
  in
  let end_ts = ref 0. in
  List.iter
    (fun (ts, ev) ->
      if ts > !end_ts then end_ts := ts;
      match ev with
      | Obs.Span_open { id; name; attrs; _ } ->
          let dom = domain_of attrs in
          Hashtbl.replace open_domain id dom;
          let l = timeline dom in
          l := (ts, true, frame_of name) :: !l
      | Obs.Span_close { id; name; _ } -> (
          match Hashtbl.find_opt open_domain id with
          | None -> ()
          | Some dom ->
              Hashtbl.remove open_domain id;
              let l = timeline dom in
              l := (ts, false, frame_of name) :: !l)
      | _ -> ())
    events;
  let profile_of_domain (dom, l) =
    let events_json =
      List.rev_map
        (fun (at, is_open, frame) ->
          Json.Obj
            [
              ("type", Json.String (if is_open then "O" else "C"));
              ("frame", Json.Int frame);
              ("at", Json.Float at);
            ])
        !l
    in
    let pname = if dom = 0 then "main" else Printf.sprintf "domain %d" dom in
    Json.Obj
      [
        ("type", Json.String "evented");
        ("name", Json.String pname);
        ("unit", Json.String "seconds");
        ("startValue", Json.Float 0.);
        ("endValue", Json.Float !end_ts);
        ("events", Json.List events_json);
      ]
  in
  let domains =
    Hashtbl.fold (fun d l acc -> (d, l) :: acc) timelines []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let frames =
    List.rev_map (fun n -> Json.Obj [ ("name", Json.String n) ]) !frames_rev
  in
  Json.Obj
    [
      ( "$schema",
        Json.String "https://www.speedscope.app/file-format-schema.json" );
      ("name", Json.String name);
      ("exporter", Json.String "vpart_cli trace flame");
      ("activeProfileIndex", Json.Int 0);
      ("shared", Json.Obj [ ("frames", Json.List frames) ]);
      ("profiles", Json.List (List.map profile_of_domain domains));
    ]

let pp ppf t =
  Format.fprintf ppf "profile: %d root span(s), %.6fs traced, %.6fs span time@."
    (List.length t.roots) t.duration t.total;
  let rec pp_node depth n =
    Format.fprintf ppf "%s%s  calls=%d total=%.6fs self=%.6fs@."
      (String.make (2 * depth) ' ')
      n.name n.calls n.total n.self;
    List.iter
      (fun (c, v) ->
        Format.fprintf ppf "%s· %s += %g@."
          (String.make ((2 * depth) + 2) ' ')
          c v)
      n.counters;
    List.iter (pp_node (depth + 1)) n.children
  in
  List.iter (pp_node 0) t.roots;
  if t.counters <> [] then begin
    Format.fprintf ppf "outside any span:@.";
    List.iter
      (fun (c, v) -> Format.fprintf ppf "  · %s += %g@." c v)
      t.counters
  end

(** Aggregated span-path profiles over validated JSONL traces — the
    folding half of [vpart_cli trace flame].

    {!of_events} folds a trace (as returned by {!Obs.Reader.read_file},
    ideally after {!Obs.Reader.check_nesting}) into a tree keyed by span
    {e path} (the chain of span names from the outermost open span down):
    per path it aggregates call counts, total (inclusive) time, self
    (exclusive) time, and the counters incremented while that path was
    innermost.  Two export formats are supported:

    - {!to_folded}: the folded-stack format consumed by flamegraph.pl /
      inferno ("a;b;c 1234" — one line per path, weight in microseconds
      of self time);
    - {!speedscope}: the speedscope JSON file format
      (https://www.speedscope.app/file-format-schema.json), an exact
      evented timeline (one profile per emitting domain) rather than an
      aggregate, so narrow spans keep their position in time.

    Counter attribution uses the innermost open span of the domain that
    most recently emitted a span event; for sequential traces this is
    exact, for [--jobs N] traces it is best-effort (counter events carry
    no domain tag — see docs/OBSERVABILITY.md). *)

type node = {
  name : string;
  path : string list;  (** root-first span names; last element is [name] *)
  calls : int;
  total : float;       (** summed span durations, seconds *)
  self : float;        (** [total] minus time in child spans, >= 0 *)
  counters : (string * float) list;  (** sorted by name *)
  children : node list;              (** sorted by name *)
}

type t = {
  roots : node list;                  (** sorted by name *)
  counters : (string * float) list;
      (** counters emitted outside any span, sorted by name *)
  total : float;     (** sum of root totals *)
  duration : float;  (** largest timestamp in the trace *)
}

val of_events : (float * Obs.event) list -> t

val flatten : t -> (string * node) list
(** Every node of the tree, depth-first, keyed by its ";"-joined path
    (the folded-stack key).  Deterministic for a given trace. *)

val to_folded : t -> string
(** flamegraph.pl / inferno compatible folded stacks: one
    ["path;to;span N"] line per node with [N] the node's self time in
    microseconds (rounded).  Lines appear in depth-first path order. *)

val speedscope : ?name:string -> (float * Obs.event) list -> Json.t
(** The speedscope file-format rendering of the {e raw} trace: an
    "evented" profile per emitting domain with exactly the trace's
    open/close events, frames deduplicated by span name.  Output loads
    directly in https://www.speedscope.app. *)

val pp : Format.formatter -> t -> unit
(** Human-readable indented tree (calls, total, self, per-span
    counters), deterministic for a given trace. *)

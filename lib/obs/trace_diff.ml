(* Aligned trace comparison with noise-thresholded verdicts; see the
   interface for alignment and verdict semantics. *)

type verdict = Regression | Improvement | Neutral

type row = {
  kind : [ `Span | `Counter ];
  key : string;
  base_calls : float;
  base_value : float;
  cur_calls : float;
  cur_value : float;
  delta : float;
  pct : float option;
  verdict : verdict;
}

type options = {
  threshold_pct : float;
  min_span_seconds : float;
  min_counter_delta : float;
}

let default_options =
  { threshold_pct = 10.; min_span_seconds = 1e-3; min_counter_delta = 0.5 }

type report = {
  rows : row list;
  regressions : int;
  improvements : int;
  neutral : int;
}

(* Sum counter totals (and event counts) over a whole trace. *)
let counter_totals events =
  let tbl : (string, float * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Obs.Counter { name; add; _ } ->
          let n, v =
            Option.value ~default:(0., 0.) (Hashtbl.find_opt tbl name)
          in
          Hashtbl.replace tbl name (n +. 1., v +. add)
      | _ -> ())
    events;
  tbl

let verdict_of ~opts ~abs_floor base_value delta =
  let exceeds_rel =
    if base_value <> 0. then
      Float.abs delta /. Float.abs base_value *. 100. > opts.threshold_pct
    else true (* appeared from / vanished to nothing: only the floor gates *)
  in
  if Float.abs delta <= abs_floor || not exceeds_rel then Neutral
  else if delta > 0. then Regression
  else Improvement

let make_row ~opts ~abs_floor kind key (base_calls, base_value)
    (cur_calls, cur_value) =
  let delta = cur_value -. base_value in
  let pct =
    if base_value <> 0. then Some (delta /. Float.abs base_value *. 100.)
    else None
  in
  {
    kind;
    key;
    base_calls;
    base_value;
    cur_calls;
    cur_value;
    delta;
    pct;
    verdict = verdict_of ~opts ~abs_floor base_value delta;
  }

(* Union of keys from two assoc tables, missing side = (0,0). *)
let aligned_rows ~opts ~abs_floor kind base_tbl cur_tbl =
  let keys : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) base_tbl;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) cur_tbl;
  Hashtbl.fold
    (fun key () acc ->
      let get tbl =
        Option.value ~default:(0., 0.) (Hashtbl.find_opt tbl key)
      in
      make_row ~opts ~abs_floor kind key (get base_tbl) (get cur_tbl) :: acc)
    keys []
  |> List.sort (fun a b ->
         match compare (Float.abs b.delta) (Float.abs a.delta) with
         | 0 -> compare a.key b.key
         | c -> c)

let span_table events =
  let tbl : (string, float * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (key, n) ->
      Hashtbl.replace tbl key (float_of_int n.Profile.calls, n.Profile.total))
    (Profile.flatten (Profile.of_events events));
  tbl

let diff ?(options = default_options) base cur =
  let opts = options in
  let span_rows =
    aligned_rows ~opts ~abs_floor:opts.min_span_seconds `Span (span_table base)
      (span_table cur)
  in
  let counter_rows =
    aligned_rows ~opts ~abs_floor:opts.min_counter_delta `Counter
      (counter_totals base) (counter_totals cur)
  in
  let rows = span_rows @ counter_rows in
  let tally v = List.length (List.filter (fun r -> r.verdict = v) rows) in
  {
    rows;
    regressions = tally Regression;
    improvements = tally Improvement;
    neutral = tally Neutral;
  }

let verdict_str = function
  | Regression -> "REGRESSION"
  | Improvement -> "IMPROVEMENT"
  | Neutral -> "neutral"

let pp ppf r =
  Format.fprintf ppf
    "trace diff: %d row(s) — %d regression(s), %d improvement(s), %d neutral@."
    (List.length r.rows) r.regressions r.improvements r.neutral;
  let pp_row row =
    let unit, fmt_v =
      match row.kind with
      | `Span -> ("s", fun v -> Printf.sprintf "%.6f" v)
      | `Counter -> ("", fun v -> Printf.sprintf "%g" v)
    in
    Format.fprintf ppf "  [%-11s] %-7s %s: %s%s -> %s%s (%+.6g%s"
      (verdict_str row.verdict)
      (match row.kind with `Span -> "span" | `Counter -> "counter")
      row.key (fmt_v row.base_value) unit (fmt_v row.cur_value) unit row.delta
      unit;
    (match row.pct with
    | Some p -> Format.fprintf ppf ", %+.1f%%" p
    | None -> ());
    (match row.kind with
    | `Span ->
        Format.fprintf ppf "; calls %g -> %g" row.base_calls row.cur_calls
    | `Counter ->
        Format.fprintf ppf "; events %g -> %g" row.base_calls row.cur_calls);
    Format.fprintf ppf ")@."
  in
  List.iter pp_row r.rows

let row_to_json row =
  Json.Obj
    [
      ( "kind",
        Json.String (match row.kind with `Span -> "span" | `Counter -> "counter")
      );
      ("key", Json.String row.key);
      ("base_calls", Json.Float row.base_calls);
      ("base_value", Json.Float row.base_value);
      ("cur_calls", Json.Float row.cur_calls);
      ("cur_value", Json.Float row.cur_value);
      ("delta", Json.Float row.delta);
      ( "pct",
        match row.pct with Some p -> Json.Float p | None -> Json.Null );
      ( "verdict",
        Json.String
          (match row.verdict with
          | Regression -> "regression"
          | Improvement -> "improvement"
          | Neutral -> "neutral") );
    ]

let to_json r =
  Json.Obj
    [
      ("rows", Json.List (List.map row_to_json r.rows));
      ("regressions", Json.Int r.regressions);
      ("improvements", Json.Int r.improvements);
      ("neutral", Json.Int r.neutral);
    ]

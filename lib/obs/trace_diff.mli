(** Aligned comparison of two JSONL traces — [vpart_cli trace diff].

    Both traces are folded through {!Profile.of_events}; span rows are
    aligned by full span {e path} (the folded-stack key, e.g.
    ["mip.solve;simplex.solve;simplex.refactor"]) and counter rows by
    counter name (totals summed over the whole trace).  Each row gets a
    verdict against a noise threshold: a relative change within
    [threshold_pct] — or an absolute change below the per-kind floor —
    is {!Neutral}; beyond that, more time / larger counter total in the
    current trace is a {!Regression}, less is an {!Improvement}.  Rows
    present on only one side are scored against an implicit zero (a span
    that appears only in the current trace with non-trivial time is a
    regression; one that disappeared is an improvement).

    Counter verdicts are directional in the same raw sense (more events
    = regression); for counters where "more" is good, read the sign, not
    the label — the report is forensics, not policy.  Exit-code policy
    lives in the CLI ([trace diff --gate]). *)

type verdict = Regression | Improvement | Neutral

type row = {
  kind : [ `Span | `Counter ];
  key : string;  (** ";"-joined span path, or counter name *)
  base_calls : float;  (** span calls / counter events in the baseline *)
  base_value : float;  (** span seconds / counter total in the baseline *)
  cur_calls : float;
  cur_value : float;
  delta : float;        (** [cur_value -. base_value] *)
  pct : float option;   (** 100 * delta / base_value when base_value <> 0 *)
  verdict : verdict;
}

type options = {
  threshold_pct : float;     (** relative noise band, default 10. *)
  min_span_seconds : float;  (** absolute span floor, default 1e-3 *)
  min_counter_delta : float; (** absolute counter floor, default 0.5 *)
}

val default_options : options

type report = {
  rows : row list;
      (** spans first then counters, each sorted by |delta| descending
          (ties by key) — the biggest movers lead. *)
  regressions : int;
  improvements : int;
  neutral : int;
}

val diff :
  ?options:options ->
  (float * Obs.event) list ->
  (float * Obs.event) list ->
  report
(** [diff baseline current]. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Json.t

(* B&B tree reconstruction from mip.node / mip.incumbent / mip.bound /
   mip.prune.* trace events; see the interface for the derivation
   contract. *)

type node = {
  id : int;
  depth : int;
  parent : int option;
  ts : float;
  incumbent : float option;
  bound : float option;
  prune : string option;
}

type t = { nodes : node list }

type bnode = {
  b_id : int;
  b_depth : int;
  b_parent : int option;
  b_ts : float;
  mutable b_incumbent : float option;
  mutable b_bound : float option;
  mutable b_prune : string option;
}

let int_attr attrs key =
  match List.assoc_opt key attrs with
  | Some (Obs.Int i) -> Some i
  | Some (Obs.Float f) -> Some (int_of_float f)
  | _ -> None

let float_attr attrs key =
  match List.assoc_opt key attrs with
  | Some (Obs.Float f) -> Some f
  | Some (Obs.Int i) -> Some (float_of_int i)
  | _ -> None

let prune_reason name =
  match name with
  | "mip.prune.infeasible" -> Some "infeasible"
  | "mip.prune.bound" -> Some "bound"
  | "mip.prune.numerical" -> Some "numerical"
  | "mip.integral_leaf" -> Some "integral"
  | _ -> None

let of_events events =
  let byid : (int, bnode) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  (* DFS parent inference: the most recent node seen at each depth. *)
  let last_at_depth : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let current = ref None in
  let node_of attrs =
    (* Events tagged with a node attr bind to that node; untagged ones
       (pre-PR-8 traces) fall back to the node most recently visited. *)
    match int_attr attrs "node" with
    | Some id when Hashtbl.mem byid id -> Hashtbl.find_opt byid id
    | Some _ -> None
    | None -> Option.bind !current (Hashtbl.find_opt byid)
  in
  List.iter
    (fun (ts, ev) ->
      match ev with
      | Obs.Point { name = "mip.node"; attrs } -> (
          match (int_attr attrs "node", int_attr attrs "depth") with
          | Some id, Some depth ->
              let parent =
                if depth = 0 then None
                else Hashtbl.find_opt last_at_depth (depth - 1)
              in
              let b =
                {
                  b_id = id;
                  b_depth = depth;
                  b_parent = parent;
                  b_ts = ts;
                  b_incumbent = None;
                  b_bound = None;
                  b_prune = None;
                }
              in
              Hashtbl.replace byid id b;
              Hashtbl.replace last_at_depth depth id;
              order := id :: !order;
              current := Some id
          | _ -> ())
      | Obs.Point { name = "mip.incumbent"; attrs } -> (
          match (node_of attrs, float_attr attrs "obj") with
          | Some b, Some obj -> b.b_incumbent <- Some obj
          | _ -> ())
      | Obs.Point { name = "mip.bound"; attrs } -> (
          match (node_of attrs, float_attr attrs "bound") with
          | Some b, Some bound -> b.b_bound <- Some bound
          | _ -> ())
      | Obs.Counter { name; attrs; _ } -> (
          match prune_reason name with
          | Some reason -> (
              match node_of attrs with
              | Some b when b.b_prune = None -> b.b_prune <- Some reason
              | _ -> ())
          | None -> ())
      | _ -> ())
    events;
  let nodes =
    List.rev_map
      (fun id ->
        let b = Hashtbl.find byid id in
        {
          id = b.b_id;
          depth = b.b_depth;
          parent = b.b_parent;
          ts = b.b_ts;
          incumbent = b.b_incumbent;
          bound = b.b_bound;
          prune = b.b_prune;
        })
      !order
  in
  { nodes }

let prune_color = function
  | Some "infeasible" -> "red"
  | Some "bound" -> "blue"
  | Some "numerical" -> "orange"
  | Some "integral" -> "darkgreen"
  | _ -> "black"

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph bnb {\n";
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun n ->
      let label = Buffer.create 32 in
      Printf.bprintf label "#%d d%d" n.id n.depth;
      (match n.bound with
      | Some b -> Printf.bprintf label "\\nbound=%g" b
      | None -> ());
      (match n.incumbent with
      | Some o -> Printf.bprintf label "\\ninc=%g" o
      | None -> ());
      (match n.prune with
      | Some r -> Printf.bprintf label "\\n%s" r
      | None -> ());
      Printf.bprintf buf "  n%d [label=\"%s\", color=%s];\n" n.id
        (Buffer.contents label) (prune_color n.prune))
    t.nodes;
  List.iter
    (fun n ->
      match n.parent with
      | Some p -> Printf.bprintf buf "  n%d -> n%d;\n" p n.id
      | None -> ())
    t.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let opt_float = function Some f -> Json.Float f | None -> Json.Null
let opt_int = function Some i -> Json.Int i | None -> Json.Null
let opt_str = function Some s -> Json.String s | None -> Json.Null

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ( "nodes",
        Json.List
          (List.map
             (fun n ->
               Json.Obj
                 [
                   ("id", Json.Int n.id);
                   ("depth", Json.Int n.depth);
                   ("parent", opt_int n.parent);
                   ("ts", Json.Float n.ts);
                   ("incumbent", opt_float n.incumbent);
                   ("bound", opt_float n.bound);
                   ("prune", opt_str n.prune);
                 ])
             t.nodes) );
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let int_field obj key =
    match Json.member_opt key obj with
    | Some (Json.Int i) -> Ok i
    | Some (Json.Float f) when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "trace tree JSON: missing int field %S" key)
  in
  let opt_int_field obj key =
    match Json.member_opt key obj with
    | Some (Json.Int i) -> Ok (Some i)
    | Some Json.Null | None -> Ok None
    | _ -> Error (Printf.sprintf "trace tree JSON: bad field %S" key)
  in
  let opt_float_field obj key =
    match Json.member_opt key obj with
    | Some (Json.Float f) -> Ok (Some f)
    | Some (Json.Int i) -> Ok (Some (float_of_int i))
    | Some Json.Null | None -> Ok None
    | _ -> Error (Printf.sprintf "trace tree JSON: bad field %S" key)
  in
  let opt_str_field obj key =
    match Json.member_opt key obj with
    | Some (Json.String s) -> Ok (Some s)
    | Some Json.Null | None -> Ok None
    | _ -> Error (Printf.sprintf "trace tree JSON: bad field %S" key)
  in
  let node_of_json j =
    let* id = int_field j "id" in
    let* depth = int_field j "depth" in
    let* parent = opt_int_field j "parent" in
    let* ts =
      match opt_float_field j "ts" with
      | Ok (Some f) -> Ok f
      | Ok None -> Error "trace tree JSON: missing float field \"ts\""
      | Error e -> Error e
    in
    let* incumbent = opt_float_field j "incumbent" in
    let* bound = opt_float_field j "bound" in
    let* prune = opt_str_field j "prune" in
    Ok { id; depth; parent; ts; incumbent; bound; prune }
  in
  let* version =
    match Json.member_opt "schema_version" json with
    | Some (Json.Int v) -> Ok v
    | _ -> Error "trace tree JSON: missing schema_version"
  in
  let* () =
    if version = 1 then Ok ()
    else Error (Printf.sprintf "trace tree JSON: unknown schema_version %d" version)
  in
  let* nodes_json =
    match Json.member_opt "nodes" json with
    | Some (Json.List l) -> Ok l
    | _ -> Error "trace tree JSON: missing nodes array"
  in
  let* nodes =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* n = node_of_json j in
        Ok (n :: acc))
      (Ok []) nodes_json
  in
  Ok { nodes = List.rev nodes }

let pp ppf t =
  let tally r =
    List.length (List.filter (fun n -> n.prune = Some r) t.nodes)
  in
  Format.fprintf ppf
    "B&B tree: %d node(s) — integral %d, pruned by bound %d, infeasible %d, \
     numerical %d@."
    (List.length t.nodes) (tally "integral") (tally "bound")
    (tally "infeasible") (tally "numerical");
  List.iter
    (fun n ->
      Format.fprintf ppf "  #%-4d depth=%-3d parent=%-6s ts=%.6f" n.id n.depth
        (match n.parent with Some p -> "#" ^ string_of_int p | None -> "root")
        n.ts;
      (match n.bound with
      | Some b -> Format.fprintf ppf " bound=%g" b
      | None -> ());
      (match n.incumbent with
      | Some o -> Format.fprintf ppf " incumbent=%g" o
      | None -> ());
      (match n.prune with
      | Some r -> Format.fprintf ppf " [%s]" r
      | None -> ());
      Format.fprintf ppf "@.")
    t.nodes

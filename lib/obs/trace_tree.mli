(** B&B search-tree reconstruction from a JSONL trace —
    [vpart_cli trace tree].

    The MIP solver emits, per node, a [mip.node] point (attrs [node],
    [depth]) followed by the node's outcome: a [mip.prune.*] /
    [mip.integral_leaf] counter (tagged with the same [node] attr), and
    possibly [mip.incumbent] / [mip.bound] points.  {!of_events} folds
    those back into the explicit tree.  Parent linkage uses the DFS
    invariant of the sequential solver (a node's parent is the most
    recently visited node one level shallower); traces from [--jobs N]
    runs interleave several subtree walks, so parent edges there are
    best-effort and the per-node outcome attrs remain the source of
    truth.

    Exports: Graphviz DOT ({!to_dot}) and a JSON document ({!to_json})
    that {!of_json} reads back — [of_json (to_json t) = Ok t] exactly. *)

type node = {
  id : int;            (** the solver's 1-based visit index *)
  depth : int;
  parent : int option; (** best-effort under [--jobs], exact sequentially *)
  ts : float;          (** timestamp of the [mip.node] point *)
  incumbent : float option;  (** objective if this node improved it *)
  bound : float option;      (** global bound reported at this node *)
  prune : string option;
      (** ["infeasible" | "bound" | "numerical" | "integral"] *)
}

type t = { nodes : node list (** in visit (id) order *) }

val of_events : (float * Obs.event) list -> t

val to_dot : t -> string
(** Graphviz digraph; nodes are labelled with id/depth/bound/incumbent
    and coloured by prune reason. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val pp : Format.formatter -> t -> unit
(** One line per node plus outcome tallies. *)

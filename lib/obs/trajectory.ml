(* CSV exports of the B&B gap-vs-time and SA schedule curves; see the
   interface for column contracts. *)

let float_attr attrs key =
  match List.assoc_opt key attrs with
  | Some (Obs.Float f) -> Some f
  | Some (Obs.Int i) -> Some (float_of_int i)
  | _ -> None

let int_attr attrs key =
  match List.assoc_opt key attrs with
  | Some (Obs.Int i) -> Some i
  | Some (Obs.Float f) -> Some (int_of_float f)
  | _ -> None

let cell = function Some f -> Printf.sprintf "%.9g" f | None -> ""

let gap_csv events =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ts,event,incumbent,bound,gap_pct\n";
  let incumbent = ref None and bound = ref None in
  List.iter
    (fun (ts, ev) ->
      let row kind =
        (* Same guarded denominator as the solver's gap test. *)
        let gap =
          match (!incumbent, !bound) with
          | Some inc, Some b ->
              Some (100. *. Float.abs (inc -. b) /. Float.max 1. (Float.abs inc))
          | _ -> None
        in
        Printf.bprintf buf "%.9g,%s,%s,%s,%s\n" ts kind (cell !incumbent)
          (cell !bound) (cell gap)
      in
      match ev with
      | Obs.Point { name = "mip.incumbent"; attrs } -> (
          match float_attr attrs "obj" with
          | Some obj ->
              incumbent := Some obj;
              row "incumbent"
          | None -> ())
      | Obs.Point { name = "mip.bound"; attrs } -> (
          match float_attr attrs "bound" with
          | Some b ->
              bound := Some b;
              row "bound"
          | None -> ())
      | _ -> ())
    events;
  Buffer.contents buf

let sa_csv events =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ts,epoch,temperature,accept_rate,best_obj,current_obj\n";
  List.iter
    (fun (ts, ev) ->
      match ev with
      | Obs.Point { name = "sa.epoch"; attrs } ->
          let epoch =
            match int_attr attrs "epoch" with
            | Some e -> string_of_int e
            | None -> ""
          in
          Printf.bprintf buf "%.9g,%s,%s,%s,%s,%s\n" ts epoch
            (cell (float_attr attrs "temperature"))
            (cell (float_attr attrs "accept_rate"))
            (cell (float_attr attrs "best_obj"))
            (cell (float_attr attrs "current_obj"))
      | _ -> ())
    events;
  Buffer.contents buf

(** Search-trajectory curves as CSV — [vpart_cli trace trajectory].

    Plot-ready exports of the two convergence stories a trace tells:

    - {!gap_csv}: the B&B gap-vs-time curve.  One row per
      [mip.incumbent] / [mip.bound] point, carrying the other side
      forward, with [gap_pct = 100 * |incumbent - bound| /
      max(1, |incumbent|)] once both are known (the same guarded
      denominator the solver's gap test uses).
    - {!sa_csv}: the simulated-annealing schedule.  One row per
      [sa.epoch] point (epoch, temperature, acceptance rate, best /
      current objective).

    Both return the empty-but-headed CSV when the trace contains no
    matching events, so downstream plotting scripts never special-case
    absence. *)

val gap_csv : (float * Obs.event) list -> string
(** Header: [ts,event,incumbent,bound,gap_pct].  [event] is
    ["incumbent"] or ["bound"]; unknown-yet fields are empty. *)

val sa_csv : (float * Obs.event) list -> string
(** Header: [ts,epoch,temperature,accept_rate,best_obj,current_obj]. *)

(* Fork/join executor over OCaml 5 domains.

   Shape: a pool owns [jobs - 1] worker domains parked on a condition
   variable.  A batch pre-seeds one fixed-capacity work-stealing deque
   per participant (round-robin), wakes the workers, and the caller
   participates as participant 0.  Owners pop their own deque LIFO;
   idle participants steal FIFO from the others (Chase-Lev discipline,
   simplified by the fact that nothing is pushed after the batch
   starts, so the buffers never grow).  An atomic count of unfinished
   tasks tells the caller when the batch is complete; workers go back
   to sleep as soon as a full sweep finds nothing left to run. *)

(* ------------------------------------------------------------------ *)
(* Work-stealing deque, fixed capacity, pre-seeded                     *)
(* ------------------------------------------------------------------ *)

module Deque = struct
  type 'a t = {
    buf : 'a option array;
    top : int Atomic.t;     (* next index a thief takes *)
    bottom : int Atomic.t;  (* one past the last index the owner owns *)
  }

  let of_list tasks =
    let buf = Array.of_list (List.map Option.some tasks) in
    { buf; top = Atomic.make 0; bottom = Atomic.make (Array.length buf) }

  (* Owner end: LIFO.  Only the owning participant calls this. *)
  let pop t =
    let b = Atomic.get t.bottom - 1 in
    Atomic.set t.bottom b;
    let tp = Atomic.get t.top in
    if b > tp then t.buf.(b)
    else if b = tp then begin
      (* Last element: race thieves for it via [top]. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then t.buf.(b) else None
    end
    else begin
      Atomic.set t.bottom tp;
      None
    end

  (* Thief end: FIFO.  Any participant may call this.  A failed CAS
     means another thief advanced [top]; retry so an idle sweep never
     walks past a deque that still holds work ([top] is monotone, so
     there is no ABA and the retry terminates). *)
  let rec steal t =
    let tp = Atomic.get t.top in
    let b = Atomic.get t.bottom in
    if tp >= b then None
    else
      let x = t.buf.(tp) in
      if Atomic.compare_and_set t.top tp (tp + 1) then x else steal t
end

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

type batch = {
  deques : (unit -> unit) Deque.t array;  (* one per participant *)
  remaining : int Atomic.t;               (* tasks not yet completed *)
  gen : int;                              (* batch generation stamp *)
}

type pool = {
  jobs : int;
  mutable domains : unit Domain.t array;
  lock : Mutex.t;
  wake : Condition.t;
  mutable current : batch option;  (* guarded by [lock] *)
  mutable generation : int;        (* guarded by [lock] *)
  mutable stopping : bool;         (* guarded by [lock] *)
  busy : bool Atomic.t;            (* a batch is being submitted/run *)
}

let index_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let worker_index () = Domain.DLS.get index_key

let recommended_jobs () = Domain.recommended_domain_count ()

(* Run tasks from [deques], preferring participant [me]'s own deque and
   stealing round-robin from the others once it is empty.  Returns when
   a full sweep over every deque finds nothing runnable. *)
let participate ~me (b : batch) =
  let n = Array.length b.deques in
  let run task =
    task ();
    Atomic.decr b.remaining
  in
  let rec own () =
    match Deque.pop b.deques.(me) with
    | Some task -> run task; own ()
    | None -> sweep 1
  and sweep k =
    if k >= n then ()
    else
      match Deque.steal b.deques.((me + k) mod n) with
      | Some task -> run task; own ()
      | None -> sweep (k + 1)
  in
  own ()

let worker pool me () =
  Domain.DLS.set index_key me;
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock pool.lock;
    let rec await () =
      if pool.stopping then None
      else
        match pool.current with
        | Some b when b.gen > !last_gen -> Some b
        | _ ->
          Condition.wait pool.wake pool.lock;
          await ()
    in
    let next = await () in
    Mutex.unlock pool.lock;
    match next with
    | None -> ()
    | Some b ->
      last_gen := b.gen;
      participate ~me b;
      loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Par.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      domains = [||];
      lock = Mutex.create ();
      wake = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      busy = Atomic.make false;
    }
  in
  pool.domains <-
    Array.init (jobs - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let size pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Batch submission                                                    *)
(* ------------------------------------------------------------------ *)

let run_list pool tasks =
  let ntasks = List.length tasks in
  if ntasks = 0 then ()
  else begin
    let first_exn = Atomic.make None in
    let guard task () =
      try task ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set first_exn None (Some (e, bt)))
    in
    let reraise () =
      match Atomic.get first_exn with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    in
    if pool.jobs = 1 then begin
      (* Degenerate pool: same semantics (all tasks run, first exception
         re-raised at the end), no domains involved. *)
      List.iter (fun task -> guard task ()) tasks;
      reraise ()
    end
    else begin
      if not (Atomic.compare_and_set pool.busy false true) then
        invalid_arg "Par.run_list: pool is already running a batch";
      Fun.protect ~finally:(fun () -> Atomic.set pool.busy false)
      @@ fun () ->
      (* Round-robin the tasks over one deque per participant. *)
      let buckets = Array.make pool.jobs [] in
      List.iteri
        (fun i task -> buckets.(i mod pool.jobs) <- guard task :: buckets.(i mod pool.jobs))
        tasks;
      let deques = Array.map (fun l -> Deque.of_list (List.rev l)) buckets in
      let b = { deques; remaining = Atomic.make ntasks; gen = 0 } in
      Mutex.lock pool.lock;
      pool.generation <- pool.generation + 1;
      let b = { b with gen = pool.generation } in
      pool.current <- Some b;
      Condition.broadcast pool.wake;
      Mutex.unlock pool.lock;
      (* The caller is participant 0. *)
      participate ~me:0 b;
      (* Our sweep found nothing, but stolen tasks may still be running
         on workers: spin until every task has completed. *)
      while Atomic.get b.remaining > 0 do
        Domain.cpu_relax ()
      done;
      Mutex.lock pool.lock;
      pool.current <- None;
      Mutex.unlock pool.lock;
      reraise ()
    end
  end

let map_array pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    let task i () = out.(i) <- Some (f arr.(i)) in
    run_list pool (List.init n task);
    Array.map
      (function
        | Some v -> v
        | None ->
          (* Only reachable when the producing task raised; run_list
             re-raised already unless another task's exception won. *)
          failwith "Par.map_array: task produced no result")
      out
  end

let map_list pool f l = Array.to_list (map_array pool f (Array.of_list l))

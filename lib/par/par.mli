(** Domain-pool executor for OCaml 5 parallelism.

    [Par] is a small, dependency-free fork/join executor used to
    parallelize the branch-and-bound search ([Mip.solve ~jobs]), the
    simulated-annealing portfolio ([Sa_solver] with [restarts > 1]) and
    the CLI/bench batch fan-outs.  A pool owns [jobs - 1] worker domains
    (the calling domain is the [jobs]-th participant); a batch of tasks
    is distributed round-robin over per-participant work-stealing deques
    (owner pops LIFO, thieves steal FIFO), so uneven task costs balance
    automatically.

    Determinism contract: [Par] never decides *what* is computed — only
    *where*.  Callers that need reproducible results must make each task
    self-contained (own RNG stream via {!Rng.split}, own solver state)
    and combine results in submission order, which is exactly what
    {!map_array} / {!map_list} provide.

    A pool is not reentrant: tasks must not submit new batches to the
    pool that is running them (nested parallelism would deadlock the
    caller's participation loop).  Submitting two batches concurrently
    from different domains is likewise a programming error and raises
    [Invalid_argument]. *)

type pool
(** A fixed set of worker domains plus the calling domain. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the hardware parallelism
    available to this process. *)

val create : jobs:int -> pool
(** [create ~jobs] spawns [jobs - 1] worker domains.  [jobs <= 1] builds
    a degenerate pool that runs every batch sequentially on the caller —
    useful as a universal code path.  @raise Invalid_argument if
    [jobs < 1]. *)

val size : pool -> int
(** Total participants (worker domains + the caller), i.e. the [jobs]
    given to {!create}. *)

val shutdown : pool -> unit
(** Join all worker domains.  Idempotent.  Every pool must be shut down
    or its domains outlive the batch and keep the runtime alive. *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down on
    exit (normal or exceptional). *)

val run_list : pool -> (unit -> unit) list -> unit
(** Run every task to completion, in parallel across the pool.  If any
    task raises, one of the raised exceptions is re-raised in the caller
    after all tasks have finished (no task is abandoned mid-flight). *)

val map_list : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map; results are returned in submission order regardless of
    which domain computed them.  Exception behaviour as {!run_list}. *)

val map_array : pool -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map_list}. *)

val worker_index : unit -> int
(** Index of the current participant in the pool that is running the
    current task: [0] for the pool's caller domain, [1 .. jobs - 1] for
    the workers.  Returns [0] outside any pool.  Stable for the lifetime
    of a task; used e.g. to pick a per-domain RNG stream. *)

(* Arbitrary-precision rationals over in-module big naturals.

   Limbs are little-endian ints in base 2^26: a limb product fits well
   inside the 63-bit native int (26 + 26 = 52 bits plus carries), so
   schoolbook multiplication needs no splitting.  The numbers flowing
   through the exact auditor are embeddings of IEEE-754 doubles (53-bit
   mantissas, exponents within ±1074) and their sums/products, so limb
   counts stay small; the shift-and-subtract division and binary gcd are
   O(bits·limbs) and O(bits²/limb) respectively, which is far below the
   cost of the solves being audited. *)

(* ------------------------------------------------------------------ *)
(* Big naturals                                                        *)
(* ------------------------------------------------------------------ *)

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

(* [||] is zero; otherwise the top limb is nonzero. *)
type nat = int array

let nat_zero : nat = [||]
let nat_is_zero (a : nat) = Array.length a = 0

let trim (a : nat) =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let nat_of_int64 (v : int64) : nat =
  (* v >= 0 *)
  let rec limbs v acc =
    if Int64.equal v 0L then acc
    else
      limbs
        (Int64.shift_right_logical v limb_bits)
        (Int64.to_int (Int64.logand v (Int64.of_int limb_mask)) :: acc)
  in
  Array.of_list (List.rev (limbs v []))

let nat_one : nat = [| 1 |]
let nat_is_one (a : nat) = Array.length a = 1 && a.(0) = 1

let nat_compare (a : nat) (b : nat) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let nat_equal a b = nat_compare a b = 0

let nat_add (a : nat) (b : nat) : nat =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  trim r

(* a - b, requiring a >= b *)
let nat_sub (a : nat) (b : nat) : nat =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + limb_base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  trim r

let nat_mul (a : nat) (b : nat) : nat =
  if nat_is_zero a || nat_is_zero b then nat_zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let cur = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- cur land limb_mask;
          carry := cur lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let cur = r.(!k) + !carry in
          r.(!k) <- cur land limb_mask;
          carry := cur lsr limb_bits;
          incr k
        done
      end
    done;
    trim r
  end

let nat_num_bits (a : nat) =
  let l = Array.length a in
  if l = 0 then 0
  else begin
    let top = a.(l - 1) in
    let b = ref 0 in
    while top lsr !b <> 0 do
      incr b
    done;
    ((l - 1) * limb_bits) + !b
  end

let nat_bit (a : nat) i =
  let limb = i / limb_bits in
  limb < Array.length a && (a.(limb) lsr (i mod limb_bits)) land 1 = 1

let nat_shift_left (a : nat) k : nat =
  if nat_is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    trim r
  end

let nat_shift_right (a : nat) k : nat =
  if nat_is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then nat_zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if bits = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      trim r
    end
  end

let nat_trailing_zeros (a : nat) =
  (* a <> 0 *)
  let i = ref 0 in
  while a.(!i) = 0 do
    incr i
  done;
  let b = ref 0 in
  while (a.(!i) lsr !b) land 1 = 0 do
    incr b
  done;
  (!i * limb_bits) + !b

(* Shift-and-subtract long division: O(bits(a) · limbs). *)
let nat_divmod (a : nat) (b : nat) : nat * nat =
  if nat_is_zero b then raise Division_by_zero;
  if nat_compare a b < 0 then (nat_zero, a)
  else if nat_is_one b then (a, nat_zero)
  else begin
    let n = nat_num_bits a in
    let q = Array.make ((n + limb_bits - 1) / limb_bits) 0 in
    let r = ref nat_zero in
    for i = n - 1 downto 0 do
      r := nat_shift_left !r 1;
      if nat_bit a i then r := nat_add !r nat_one;
      if nat_compare !r b >= 0 then begin
        r := nat_sub !r b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (trim q, !r)
  end

(* Stein's binary gcd: subtraction and shifts only. *)
let nat_gcd (a : nat) (b : nat) : nat =
  if nat_is_zero a then b
  else if nat_is_zero b then a
  else if nat_is_one a || nat_is_one b then nat_one
  else begin
    let ta = nat_trailing_zeros a and tb = nat_trailing_zeros b in
    let shift = Stdlib.min ta tb in
    let x = ref (nat_shift_right a ta) and y = ref (nat_shift_right b tb) in
    while not (nat_equal !x !y) do
      if nat_compare !x !y > 0 then begin
        let d = nat_sub !x !y in
        x := nat_shift_right d (nat_trailing_zeros d)
      end
      else begin
        let d = nat_sub !y !x in
        y := nat_shift_right d (nat_trailing_zeros d)
      end
    done;
    nat_shift_left !x shift
  end

(* Exact for naturals below 2^53 (every limb step stays an integer). *)
let nat_to_float_small (a : nat) =
  let v = ref 0. in
  for i = Array.length a - 1 downto 0 do
    v := (!v *. float_of_int limb_base) +. float_of_int a.(i)
  done;
  !v

(* Division by a small positive int (fits a limb product). *)
let nat_divmod_small (a : nat) d =
  let q = Array.make (Array.length a) 0 in
  let rem = ref 0 in
  for i = Array.length a - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (trim q, !rem)

let nat_to_decimal (a : nat) =
  if nat_is_zero a then "0"
  else begin
    let chunks = ref [] in
    let x = ref a in
    while not (nat_is_zero !x) do
      let q, r = nat_divmod_small !x 10_000_000 in
      chunks := r :: !chunks;
      x := q
    done;
    match !chunks with
    | [] -> "0"
    | top :: rest ->
      let buf = Buffer.create 16 in
      Buffer.add_string buf (string_of_int top);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest;
      Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* Rationals                                                           *)
(* ------------------------------------------------------------------ *)

(* Invariants: den >= 1; gcd(num, den) = 1; num = 0 implies (neg = false,
   den = 1). *)
type t = { neg : bool; num : nat; den : nat }

let zero = { neg = false; num = nat_zero; den = nat_one }

let normalize neg num den =
  if nat_is_zero num then zero
  else begin
    let g = nat_gcd num den in
    if nat_is_one g then { neg; num; den }
    else begin
      let num, _ = nat_divmod num g and den, _ = nat_divmod den g in
      { neg; num; den }
    end
  end

let of_int i =
  let neg = i < 0 in
  let mag = nat_of_int64 (Int64.abs (Int64.of_int i)) in
  if nat_is_zero mag then zero else { neg; num = mag; den = nat_one }

let one = of_int 1
let minus_one = of_int (-1)

let make num den =
  if den = 0 then raise Division_by_zero;
  let neg = num < 0 <> (den < 0) in
  let n = nat_of_int64 (Int64.abs (Int64.of_int num)) in
  let d = nat_of_int64 (Int64.abs (Int64.of_int den)) in
  normalize neg n d

let is_zero t = nat_is_zero t.num
let sign t = if nat_is_zero t.num then 0 else if t.neg then -1 else 1
let neg t = if is_zero t then t else { t with neg = not t.neg }
let abs t = { t with neg = false }

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else begin
    let n1 = nat_mul a.num b.den and n2 = nat_mul b.num a.den in
    let den = nat_mul a.den b.den in
    if a.neg = b.neg then normalize a.neg (nat_add n1 n2) den
    else begin
      match nat_compare n1 n2 with
      | 0 -> zero
      | c when c > 0 -> normalize a.neg (nat_sub n1 n2) den
      | _ -> normalize b.neg (nat_sub n2 n1) den
    end
  end

let sub a b = add a (neg b)

let mul a b =
  if is_zero a || is_zero b then zero
  else normalize (a.neg <> b.neg) (nat_mul a.num b.num) (nat_mul a.den b.den)

let inv t =
  if is_zero t then raise Division_by_zero
  else { neg = t.neg; num = t.den; den = t.num }

let div a b = mul a (inv b)

let compare a b =
  let sa = sign a and sb = sign b in
  if sa <> sb then Stdlib.compare sa sb
  else if sa = 0 then 0
  else begin
    let c = nat_compare (nat_mul a.num b.den) (nat_mul b.num a.den) in
    if sa > 0 then c else -c
  end

let equal a b = a.neg = b.neg && nat_equal a.num b.num && nat_equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* ------------------------------------------------------------------ *)
(* Float conversion                                                    *)
(* ------------------------------------------------------------------ *)

let of_float_opt f =
  if not (Float.is_finite f) then None
  else if f = 0. then Some zero
  else begin
    let bits = Int64.bits_of_float f in
    let neg = Int64.compare bits 0L < 0 in
    let biased =
      Int64.to_int (Int64.logand (Int64.shift_right_logical bits 52) 0x7FFL)
    in
    let frac = Int64.logand bits 0xF_FFFF_FFFF_FFFFL in
    let mant, e =
      if biased = 0 then (frac, -1074) (* subnormal *)
      else (Int64.logor frac (Int64.shift_left 1L 52), biased - 1075)
    in
    let mant = nat_of_int64 mant in
    let tz = nat_trailing_zeros mant in
    let mant = nat_shift_right mant tz and e = e + tz in
    Some
      (if e >= 0 then { neg; num = nat_shift_left mant e; den = nat_one }
       else { neg; num = mant; den = nat_shift_left nat_one (-e) })
  end

let of_float f =
  match of_float_opt f with
  | Some t -> t
  | None -> invalid_arg "Rational.of_float: non-finite float"

let to_float t =
  if is_zero t then 0.
  else begin
    (* Divide the top 53 bits of each side and rescale: exact whenever the
       value is a representable dyadic (both prefixes then carry the full
       numbers), within 2 ulp otherwise. *)
    let take x =
      let b = nat_num_bits x in
      if b <= 53 then (nat_to_float_small x, 0)
      else (nat_to_float_small (nat_shift_right x (b - 53)), b - 53)
    in
    let nf, ns = take t.num and df, ds = take t.den in
    let v = Float.ldexp (nf /. df) (ns - ds) in
    if t.neg then -.v else v
  end

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let to_string t =
  let s = if t.neg then "-" else "" in
  if nat_is_one t.den then s ^ nat_to_decimal t.num
  else s ^ nat_to_decimal t.num ^ "/" ^ nat_to_decimal t.den

let to_short_string t =
  (* Exact when readable; otherwise the nearest double, marked as such. *)
  if nat_num_bits t.num <= 64 && nat_num_bits t.den <= 64 then to_string t
  else Printf.sprintf "~%.9g" (to_float t)

let pp ppf t = Format.pp_print_string ppf (to_short_string t)

(** Arbitrary-precision rational arithmetic, dependency-free.

    This is the substrate of the exact certificate auditor
    ([Vpart_certify.Certify.Exact]): every arithmetic fact the float
    certifiers establish within a tolerance can be re-derived here with
    {e no} tolerance at all.  The design constraints are

    - {b no external dependencies} — the sealed environment has no zarith,
      so numerators and denominators are big naturals implemented in-module
      (little-endian limbs in a power-of-two base with schoolbook
      multiplication, shift-and-subtract division and binary gcd);
    - {b lossless float embedding} — {!of_float} decomposes the IEEE-754
      double into sign, mantissa and exponent ([m · 2^e] with integer [m])
      and builds the {e exact} rational it denotes.  Every coefficient,
      bound, right-hand side, dual multiplier and solution coordinate a
      float-based solver emits therefore embeds without loss, and sums /
      products / comparisons of embedded artifacts are exact.

    Values are kept normalized: the denominator is positive and coprime
    with the numerator, so {!equal} and {!compare} are structural truths,
    not tolerance checks. *)

type t
(** A rational number.  Immutable. *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero when [den = 0]. *)

val of_float : float -> t
(** The exact rational value of a finite IEEE-754 double, via
    mantissa/exponent decomposition: for normal doubles
    [(-1)^s · (2^52 + frac) · 2^(e - 1075)], for subnormals
    [(-1)^s · frac · 2^(-1074)].  No rounding is involved — note that
    e.g. [of_float 0.1] is {e not} [make 1 10] but the exact dyadic
    [3602879701896397 / 2^55] the literal denotes.
    @raise Invalid_argument on NaN or infinities. *)

val of_float_opt : float -> t option
(** [of_float] returning [None] instead of raising on non-finite input. *)

val to_float : t -> float
(** Nearest-double approximation.  Exact (bit-for-bit round-trip with
    {!of_float}) whenever the value is representable as a finite double;
    within 2 ulp otherwise (the conversion divides 53-bit prefixes, which
    can double-round).  Used for display, never inside exact checks. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val inv : t -> t
(** @raise Division_by_zero on {!zero}. *)

val div : t -> t -> t
(** @raise Division_by_zero when the divisor is {!zero}. *)

(** {1 Comparison} *)

val compare : t -> t -> int
(** Total order; exact (cross-multiplied, never through floats). *)

val equal : t -> t -> bool

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool

val min : t -> t -> t
val max : t -> t -> t

(** {1 Printing} *)

val to_string : t -> string
(** Exact decimal rendering ["num/den"] (["num"] when the denominator is
    1), e.g. [to_string (make 3 6) = "1/2"]. *)

val to_short_string : t -> string
(** Human-scale rendering for diagnostics: the exact ["num/den"] when it
    is short enough to read, otherwise a ["~%g"]-style nearest-double
    approximation (still derived from the exact value). *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_short_string}. *)

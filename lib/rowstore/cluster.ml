open Vpart

(* A fraction: the slice of a table stored on one site, as a heap of
   fixed-width rows plus the byte layout of each stored attribute. *)
type frag = {
  heap : Heap.t;
  layout : (int * (int * int)) list;  (* attr id -> (offset, width) *)
}

type t = {
  instance : Instance.t;
  part : Partitioning.t;
  frags : frag option array array;    (* [site].(table) *)
  mutable network : float;
}

type counters = {
  bytes_read : float;
  bytes_written : float;
  bytes_transferred : float;
}

let synthetic_row width seed =
  Bytes.init width (fun i -> Char.chr ((seed + (i * 31)) land 0xff))

let deploy ?(table_rows = []) (inst : Instance.t) (part : Partitioning.t) =
  let schema = inst.Instance.schema and wl = inst.Instance.workload in
  let stats = Stats.compute inst ~p:1. in
  (match Partitioning.validate stats part with
   | Ok () -> ()
   | Error e -> invalid_arg ("Cluster.deploy: invalid partitioning: " ^ e));
  let ns = part.Partitioning.num_sites in
  let ntab = Schema.num_tables schema in
  (* minimum rows any query scans, per table *)
  let min_rows = Array.make ntab 0 in
  for qid = 0 to Workload.num_queries wl - 1 do
    List.iter
      (fun (tid, rows) ->
         min_rows.(tid) <- max min_rows.(tid) (int_of_float (Float.ceil rows)))
      (Workload.query wl qid).Workload.tables
  done;
  let frags =
    Array.init ns (fun s ->
        Array.init ntab (fun tid ->
            let attrs =
              List.filter
                (fun a -> part.Partitioning.placed.(a).(s))
                (Schema.attrs_of_table schema tid)
            in
            if attrs = [] then None
            else begin
              let layout = ref [] and off = ref 0 in
              List.iter
                (fun a ->
                   let w = Schema.attr_width schema a in
                   layout := (a, (!off, w)) :: !layout;
                   off := !off + w)
                attrs;
              let heap = Heap.create ~width:!off () in
              let rows =
                let named =
                  List.assoc_opt (Schema.table_name schema tid) table_rows
                in
                max (Option.value named ~default:64) min_rows.(tid)
              in
              for r = 0 to rows - 1 do
                ignore (Heap.append heap (synthetic_row !off (r + (17 * tid))))
              done;
              Heap.reset_counters heap;
              Some { heap; layout = List.rev !layout }
            end))
  in
  { instance = inst; part; frags; network = 0. }

let execute_query t ~txn qid =
  let inst = t.instance in
  let schema = inst.Instance.schema in
  let q = Workload.query inst.Instance.workload qid in
  let home = t.part.Partitioning.txn_site.(txn) in
  let ns = t.part.Partitioning.num_sites in
  if Workload.is_write q then begin
    (* write the full fraction row on every hosting site *)
    List.iter
      (fun (tid, rows) ->
         let n = int_of_float (Float.round rows) in
         for s = 0 to ns - 1 do
           match t.frags.(s).(tid) with
           | None -> ()
           | Some frag ->
             let width = Heap.width frag.heap in
             let payload = synthetic_row width qid in
             for r = 0 to n - 1 do
               Heap.write_row frag.heap (r mod Heap.count frag.heap) payload
             done
         done)
      q.Workload.tables;
    (* ship the updated attributes to non-home replicas *)
    List.iter
      (fun a ->
         let tid = Schema.table_of_attr schema a in
         let rows =
           match Workload.rows_for_table q tid with Some r -> r | None -> 0.
         in
         let w = float_of_int (Schema.attr_width schema a) in
         for s = 0 to ns - 1 do
           if s <> home && t.part.Partitioning.placed.(a).(s) then
             t.network <- t.network +. (w *. rows)
         done)
      q.Workload.attrs
  end
  else
    (* scan the local fraction of every touched table at the home site *)
    List.iter
      (fun (tid, rows) ->
         match t.frags.(home).(tid) with
         | None -> ()
         | Some frag ->
           let n = int_of_float (Float.round rows) in
           Heap.scan frag.heap ~limit:n (fun _ _ -> ()))
      q.Workload.tables

let execute_transaction t txn =
  List.iter
    (fun qid -> execute_query t ~txn qid)
    (Workload.transaction t.instance.Instance.workload txn).Workload.queries

let run_workload t =
  let wl = t.instance.Instance.workload in
  for txn = 0 to Workload.num_transactions wl - 1 do
    List.iter
      (fun qid ->
         let q = Workload.query wl qid in
         let reps = int_of_float (Float.round q.Workload.freq) in
         for _ = 1 to reps do
           execute_query t ~txn qid
         done)
      (Workload.transaction wl txn).Workload.queries
  done

let counters t =
  let reads = ref 0. and writes = ref 0. in
  Array.iter
    (Array.iter (function
       | None -> ()
       | Some frag ->
         reads := !reads +. Heap.bytes_read frag.heap;
         writes := !writes +. Heap.bytes_written frag.heap))
    t.frags;
  { bytes_read = !reads; bytes_written = !writes; bytes_transferred = t.network }

let storage_bytes_per_site t =
  Array.map
    (fun site ->
       Array.fold_left
         (fun acc f ->
            match f with
            | None -> acc
            | Some frag -> acc +. float_of_int (Heap.storage_bytes frag.heap))
         0. site)
    t.frags

let fraction_row t ~site ~table rid =
  match t.frags.(site).(table) with
  | None -> None
  | Some frag -> Some (Heap.read_row frag.heap rid)

let attribute_value t ~site ~attr rid =
  let table = Schema.table_of_attr t.instance.Instance.schema attr in
  match t.frags.(site).(table) with
  | None -> None
  | Some frag ->
    (match List.assoc_opt attr frag.layout with
     | None -> None
     | Some (off, len) -> Some (Heap.read_field frag.heap rid ~off ~len))

let reset t =
  t.network <- 0.;
  Array.iter
    (Array.iter (function None -> () | Some frag -> Heap.reset_counters frag.heap))
    t.frags

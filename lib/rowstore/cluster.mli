(** Byte-level deployment of a vertical partitioning.

    Where {!Vpart_engine.Engine} {e counts} what the execution rules would
    move, this module actually {e moves} the bytes: it materializes every
    (table, site) fraction as a {!Heap} of fixed-width rows filled with
    synthetic tuples and executes workload queries as physical scans and
    row writes.  The heaps' I/O counters plus the cluster's network counter
    then {e measure} the quantities the paper's cost model estimates.

    Execution rules (the model's §2.1 semantics):

    - a read query scans, at its transaction's home site, [n_r] rows of the
      local fraction of every table it touches (row stores read whole
      fraction rows);
    - a write query writes [n_r] full fraction rows on {e every} site
      holding a fraction of a touched table, and ships each updated
      attribute's bytes to every non-home site holding it.

    [run_workload] executes each query [round f_q] times, so when all
    frequencies and row counts are integral (true for every built-in
    instance) the measured byte counts equal
    {!Vpart.Cost_model.breakdown} exactly — asserted by the test suite. *)

type t

type counters = {
  bytes_read : float;
  bytes_written : float;
  bytes_transferred : float;
}

val deploy :
  ?table_rows:(string * int) list ->
  Vpart.Instance.t -> Vpart.Partitioning.t -> t
(** Materialize fraction heaps and fill them with synthetic rows
    ([table_rows] by table name; default 64, and never fewer than the
    largest per-query row count so scans are never short).
    @raise Invalid_argument if the partitioning does not validate. *)

val execute_query : t -> txn:int -> int -> unit
(** Execute one occurrence of a query of the given transaction (physical
    scans/writes at its statistical row count). *)

val execute_transaction : t -> int -> unit

val run_workload : t -> unit
(** Execute every query [round f_q] times. *)

val counters : t -> counters
(** Cumulative measured I/O since deployment or the last {!reset}. *)

val storage_bytes_per_site : t -> float array
(** Physically reserved heap bytes per site. *)

val fraction_row : t -> site:int -> table:int -> int -> bytes option
(** Copy a raw fraction row (for inspection/tests); [None] if the site
    holds no fraction of the table.  Counted as a read. *)

val attribute_value : t -> site:int -> attr:int -> int -> bytes option
(** Copy one attribute's bytes out of a fraction row using the fraction's
    layout; [None] when the site does not store the attribute.  Counted as
    a read of the attribute's width. *)

val reset : t -> unit
(** Zero all I/O counters (storage is kept). *)

type t = {
  row_width : int;
  mutable data : Bytes.t;
  mutable rows : int;
  mutable reads : float;
  mutable writes : float;
}

let create ?(initial_capacity = 64) ~width () =
  if width <= 0 then invalid_arg "Heap.create: width must be positive";
  let cap = max 1 initial_capacity in
  {
    row_width = width;
    data = Bytes.create (cap * width);
    rows = 0;
    reads = 0.;
    writes = 0.;
  }

let width t = t.row_width

let count t = t.rows

let storage_bytes t = Bytes.length t.data

let ensure_capacity t =
  let needed = (t.rows + 1) * t.row_width in
  if needed > Bytes.length t.data then begin
    let grown = Bytes.create (max needed (2 * Bytes.length t.data)) in
    Bytes.blit t.data 0 grown 0 (t.rows * t.row_width);
    t.data <- grown
  end

let check_rid t rid fn =
  if rid < 0 || rid >= t.rows then
    invalid_arg (Printf.sprintf "Heap.%s: row %d out of %d" fn rid t.rows)

let append t row =
  if Bytes.length row <> t.row_width then
    invalid_arg "Heap.append: row width mismatch";
  ensure_capacity t;
  Bytes.blit row 0 t.data (t.rows * t.row_width) t.row_width;
  t.rows <- t.rows + 1;
  t.writes <- t.writes +. float_of_int t.row_width;
  t.rows - 1

let read_row t rid =
  check_rid t rid "read_row";
  let out = Bytes.create t.row_width in
  Bytes.blit t.data (rid * t.row_width) out 0 t.row_width;
  t.reads <- t.reads +. float_of_int t.row_width;
  out

let write_row t rid row =
  check_rid t rid "write_row";
  if Bytes.length row <> t.row_width then
    invalid_arg "Heap.write_row: row width mismatch";
  Bytes.blit row 0 t.data (rid * t.row_width) t.row_width;
  t.writes <- t.writes +. float_of_int t.row_width

let read_field t rid ~off ~len =
  check_rid t rid "read_field";
  if off < 0 || len < 0 || off + len > t.row_width then
    invalid_arg "Heap.read_field: out of row bounds";
  let out = Bytes.create len in
  Bytes.blit t.data ((rid * t.row_width) + off) out 0 len;
  t.reads <- t.reads +. float_of_int len;
  out

let write_field t rid ~off ~len value =
  check_rid t rid "write_field";
  if off < 0 || len < 0 || off + len > t.row_width then
    invalid_arg "Heap.write_field: out of row bounds";
  if Bytes.length value <> len then
    invalid_arg "Heap.write_field: value length mismatch";
  Bytes.blit value 0 t.data ((rid * t.row_width) + off) len;
  t.writes <- t.writes +. float_of_int len

let scan t ?limit f =
  let n = match limit with Some l -> min l t.rows | None -> t.rows in
  for rid = 0 to n - 1 do
    f rid (read_row t rid)
  done

let bytes_read t = t.reads

let bytes_written t = t.writes

let reset_counters t =
  t.reads <- 0.;
  t.writes <- 0.

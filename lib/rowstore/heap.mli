(** Fixed-width in-memory heap file with byte-level I/O accounting.

    The lowest layer of the row-store substrate: a growable array of
    fixed-width rows stored contiguously in [Bytes.t] segments, as an
    H-store-like memory-resident row store would lay them out.  Every
    access goes through {!read_row}/{!write_row}/{!scan}, which physically
    copy bytes and charge them to the heap's counters — the quantity the
    paper's cost model estimates.

    Rows are addressed by dense row ids ([0 .. count-1]); deletion is
    logical (a free list would add nothing to the experiments). *)

type t

val create : ?initial_capacity:int -> width:int -> unit -> t
(** A heap of [width]-byte rows.  @raise Invalid_argument if
    [width <= 0]. *)

val width : t -> int
val count : t -> int
(** Number of rows appended so far. *)

val storage_bytes : t -> int
(** Bytes currently reserved ([capacity × width]). *)

val append : t -> bytes -> int
(** Copy a row in (must be exactly [width] bytes) and return its row id.
    Counted as [width] bytes written. *)

val read_row : t -> int -> bytes
(** Copy a row out.  Counted as [width] bytes read.
    @raise Invalid_argument on a bad row id. *)

val write_row : t -> int -> bytes -> unit
(** Overwrite a row in place.  Counted as [width] bytes written. *)

val read_field : t -> int -> off:int -> len:int -> bytes
(** Copy [len] bytes at offset [off] of a row (a single attribute).
    Counted as [len] bytes read. *)

val write_field : t -> int -> off:int -> len:int -> bytes -> unit
(** Overwrite part of a row.  Counted as [len] bytes written. *)

val scan : t -> ?limit:int -> (int -> bytes -> unit) -> unit
(** Full scan in row-id order (up to [limit] rows): each visited row is
    copied out and counted as read. *)

val bytes_read : t -> float
val bytes_written : t -> float
(** Cumulative I/O counters. *)

val reset_counters : t -> unit

open Vpart

type action = Check | Solve | Certify

let action_of_string = function
  | "check" -> Some Check
  | "solve" -> Some Solve
  | "certify" -> Some Certify
  | _ -> None

let string_of_action = function
  | Check -> "check"
  | Solve -> "solve"
  | Certify -> "certify"

type response = {
  index : int;
  name : string;
  ok : bool;
  outcome : string;
  cost : float option;
  objective6 : float option;
  seconds : float;
  error : string option;
}

let opt_float = function None -> Json.Null | Some v -> Json.Float v

let response_to_json r =
  Json.Obj
    [
      ("index", Json.Int r.index);
      ("name", Json.String r.name);
      ("ok", Json.Bool r.ok);
      ("outcome", Json.String r.outcome);
      ("cost", opt_float r.cost);
      ("objective6", opt_float r.objective6);
      ("seconds", Json.Float r.seconds);
      ("error",
       match r.error with None -> Json.Null | Some e -> Json.String e);
    ]

type summary = {
  requests : int;
  failures : int;
  elapsed_seconds : float;
  throughput : float;
  p50_seconds : float;
  p99_seconds : float;
  minor_words : float;
  major_words : float;
  top_heap_words : int;
  compactions : int;
  max_rss_kb : int option;
}

let summary_to_json s =
  Json.Obj
    [
      ("requests", Json.Int s.requests);
      ("failures", Json.Int s.failures);
      ("elapsed_seconds", Json.Float s.elapsed_seconds);
      ("throughput", Json.Float s.throughput);
      ("p50_seconds", Json.Float s.p50_seconds);
      ("p99_seconds", Json.Float s.p99_seconds);
      ("minor_words", Json.Float s.minor_words);
      ("major_words", Json.Float s.major_words);
      ("top_heap_words", Json.Int s.top_heap_words);
      ("compactions", Json.Int s.compactions);
      ("max_rss_kb",
       match s.max_rss_kb with None -> Json.Null | Some k -> Json.Int k);
    ]

(* VmHWM ("high water mark" RSS) from /proc/self/status, in kB.  [None]
   on platforms without procfs — the summary field is advisory. *)
let read_max_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          String.sub line 6 (String.length line - 6)
          |> String.trim
          |> (fun s ->
              match String.index_opt s ' ' with
              | Some i -> String.sub s 0 i
              | None -> s)
          |> int_of_string_opt
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

(* Exact nearest-rank percentile of a (non-empty) latency array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let outcome_tag = function
  | Qp_solver.Proved_optimal -> "optimal"
  | Qp_solver.Limit_feasible -> "feasible"
  | Qp_solver.Limit_no_solution -> "no_solution"
  | Qp_solver.Too_large -> "too_large"

(* Split off the next [n] elements; the returned tail re-enters the
   loop, so only one window of instances is ever forced. *)
let rec take n seq acc =
  if n = 0 then (List.rev acc, seq)
  else
    match seq () with
    | Seq.Nil -> (List.rev acc, Seq.empty)
    | Seq.Cons (x, rest) -> take (n - 1) rest (x :: acc)

let run ?(jobs = 1) ?window ?(options = Qp_solver.default_options) ~action
    ~emit seq =
  let jobs = max 1 jobs in
  let window = max jobs (Option.value window ~default:(8 * jobs)) in
  (* One workspace pair per pool participant ({!Par.worker_index}):
     domain-local, so pooled solver state is never shared across
     concurrently running requests. *)
  let sx_ws = Array.init jobs (fun _ -> Simplex.Workspace.create ()) in
  let dc_ws = Array.init jobs (fun _ -> Delta_cost.Workspace.create ()) in
  let g0 = Gc.quick_stat () in
  let handle (index, name, inst) =
    let t0 = Obs.Clock.now () in
    let wi = Par.worker_index () in
    let r =
      try
        match action with
        | Check ->
          let diags = Instance_lint.lint inst in
          let stats = Stats.compute inst ~p:options.Qp_solver.p in
          let part = Partitioning.single_site inst in
          let dc =
            Delta_cost.create ~workspace:dc_ws.(wi) stats
              ~lambda:options.Qp_solver.lambda part
          in
          let clean = not (Vpart_analysis.Diagnostic.has_errors diags) in
          {
            index;
            name;
            ok = clean;
            outcome = (if clean then "clean" else "findings");
            cost = Some (Delta_cost.cost dc);
            objective6 = Some (Delta_cost.objective dc);
            seconds = 0.;
            error = None;
          }
        | Solve | Certify ->
          let options =
            {
              options with
              Qp_solver.certify =
                options.Qp_solver.certify || action = Certify;
              simplex_workspace = Some sx_ws.(wi);
            }
          in
          let r = Qp_solver.solve ~options inst in
          let solved =
            match r.Qp_solver.outcome with
            | Qp_solver.Proved_optimal | Qp_solver.Limit_feasible -> true
            | Qp_solver.Limit_no_solution | Qp_solver.Too_large -> false
          in
          let certified =
            match r.Qp_solver.certificate with
            | None -> true
            | Some ds -> not (Vpart_analysis.Diagnostic.has_errors ds)
          in
          {
            index;
            name;
            ok = solved && certified;
            outcome = outcome_tag r.Qp_solver.outcome;
            cost = r.Qp_solver.cost;
            objective6 = r.Qp_solver.objective6;
            seconds = 0.;
            error = None;
          }
      with e ->
        {
          index;
          name;
          ok = false;
          outcome = "error";
          cost = None;
          objective6 = None;
          seconds = 0.;
          error = Some (Printexc.to_string e);
        }
    in
    { r with seconds = Obs.Clock.since t0 }
  in
  Obs.with_span "batch.run"
    ~attrs:
      [
        ("jobs", Obs.Int jobs);
        ("window", Obs.Int window);
        ("action", Obs.Str (string_of_action action));
      ]
  @@ fun () ->
  let start = Obs.Clock.now () in
  let latencies = ref [] in
  let requests = ref 0 and failures = ref 0 in
  let top_heap = ref 0 in
  Par.with_pool ~jobs @@ fun pool ->
  let rec loop index seq =
    let chunk, rest = take window seq [] in
    match chunk with
    | [] -> ()
    | chunk ->
      let tagged =
        List.mapi (fun k (name, inst) -> (index + k, name, inst)) chunk
      in
      let responses = Par.map_list pool handle tagged in
      List.iter
        (fun r ->
           incr requests;
           if not r.ok then incr failures;
           latencies := r.seconds :: !latencies;
           Obs.observe "batch.request.seconds" r.seconds;
           emit r)
        responses;
      let g = Gc.quick_stat () in
      if g.Gc.top_heap_words > !top_heap then
        top_heap := g.Gc.top_heap_words;
      Obs.sample_gc ();
      loop (index + List.length chunk) rest
  in
  loop 0 seq;
  if Obs.enabled () then begin
    Obs.count "batch.requests" (float_of_int !requests);
    if !failures > 0 then Obs.count "batch.failures" (float_of_int !failures)
  end;
  let elapsed = Obs.Clock.since start in
  let g1 = Gc.quick_stat () in
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  {
    requests = !requests;
    failures = !failures;
    elapsed_seconds = elapsed;
    throughput =
      (if elapsed > 0. then float_of_int !requests /. elapsed else 0.);
    p50_seconds = percentile sorted 0.50;
    p99_seconds = percentile sorted 0.99;
    minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    major_words = g1.Gc.major_words -. g0.Gc.major_words;
    top_heap_words = max !top_heap g1.Gc.top_heap_words;
    compactions = g1.Gc.compactions - g0.Gc.compactions;
    max_rss_kb = read_max_rss_kb ();
  }

(** Sustained-throughput batch solve service.

    [run] fans a lazy stream of instances (typically
    {!Instance_gen.stream}) across a {!Par} work-stealing domain pool,
    applying one {!action} per instance, and hands each {!response} to
    the caller's [emit] callback {e in submission order} — the JSONL
    writer never has to buffer or re-sort.

    Memory is bounded two ways:

    - the stream is consumed in windows of [window] requests, so at most
      one window of instances and responses is live at a time no matter
      how long the sweep is (a 10k-instance run holds tens, not
      thousands);
    - every pool participant owns a {!Vpart_simplex.Simplex.Workspace}
      and a {!Delta_cost.Workspace} (indexed by {!Par.worker_index}), so
      steady-state solving reuses the simplex float arena and the
      delta-evaluator cache buffers instead of reallocating them per
      request.  Pooled state never changes results: pooled and fresh
      solver instances are bit-identical by construction (enforced by
      [test/test_simplex.ml] and [test/test_batch.ml]).

    Observability: the sweep runs inside a [batch.run] span, counts
    [batch.requests] / [batch.failures], and records per-request latency
    in the [batch.request.seconds] metrics histogram; with
    {!Obs.set_gc_sampling} on, [gc.*] gauges track memory flatness. *)

open Vpart

type action =
  | Check
      (** Lint the instance ({!Instance_lint.lint}) and evaluate the
          single-site baseline objective through a pooled
          {!Delta_cost} evaluator — the cheap, allocation-dominated
          action for memory-behaviour sweeps. *)
  | Solve  (** {!Qp_solver.solve} with the pooled simplex workspace. *)
  | Certify
      (** [Solve] with self-certification on: every claim of every
          result is re-derived ({!Qp_solver.options.certify}), and a
          response is only [ok] when its certificate is clean. *)

val action_of_string : string -> action option
(** Parses ["check"], ["solve"], ["certify"]; [None] otherwise. *)

val string_of_action : action -> string

type response = {
  index : int;          (** position in the request stream *)
  name : string;        (** instance name *)
  ok : bool;
      (** [Check]: no error-level lint findings.  [Solve]: an incumbent
          was returned.  [Certify]: additionally, a clean certificate. *)
  outcome : string;
      (** [Check]: ["clean"] or ["findings"].  [Solve]/[Certify]: the
          solver outcome tag ([optimal], [feasible], [no_solution],
          [too_large]), or ["error"] when the request raised. *)
  cost : float option;        (** objective (4) of the returned layout *)
  objective6 : float option;  (** objective (6); what the MIP minimized *)
  seconds : float;            (** wall-clock latency of this request *)
  error : string option;      (** exception text when [outcome = "error"] *)
}

val response_to_json : response -> Json.t
(** One JSONL line: [{"index":..,"name":..,"ok":..,"outcome":..,
    "cost":..,"objective6":..,"seconds":..,"error":..}] with [null] for
    absent optionals. *)

type summary = {
  requests : int;
  failures : int;             (** responses with [ok = false] *)
  elapsed_seconds : float;
  throughput : float;         (** requests per second *)
  p50_seconds : float;        (** exact nearest-rank latency percentiles *)
  p99_seconds : float;
  minor_words : float;        (** GC words allocated during the sweep *)
  major_words : float;
  top_heap_words : int;       (** major-heap high water over the sweep *)
  compactions : int;
  max_rss_kb : int option;    (** VmHWM from /proc/self/status, if readable *)
}

val summary_to_json : summary -> Json.t

val run :
  ?jobs:int ->
  ?window:int ->
  ?options:Qp_solver.options ->
  action:action ->
  emit:(response -> unit) ->
  (string * Instance.t) Seq.t ->
  summary
(** Consume the stream.  [jobs] (default 1) sizes the domain pool;
    [window] (default [8 * jobs]) bounds in-flight requests; [options]
    (default {!Qp_solver.default_options}) configures [Solve]/[Certify]
    solves and the [Check] evaluation ([p], [lambda], [num_sites]) —
    its [certify] flag is forced on by [Certify] and its
    [simplex_workspace] is overridden with the per-domain arena.
    [emit] runs on the calling domain, in stream order.  A request that
    raises becomes an [outcome = "error"] response instead of aborting
    the sweep. *)

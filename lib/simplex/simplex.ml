(* Bounded-variable revised simplex over a pluggable basis kernel.

   Variable indexing: 0..n-1 are the structural variables of the Lp.std
   model, n..n+m-1 are slacks (one per row, turning every row into an
   equality: a_i x + s_i = b_i with s_i >= 0 for Le, <= 0 for Ge, = 0 for
   Eq).  Infinite bounds are patched to +-big so that every variable is
   boxed; a structural variable resting on a patched bound at optimality is
   reported as Unbounded.

   Basis kernels:
   - [Dense]: an explicit dense m x m inverse updated per pivot by
     Gauss-Jordan — the original kernel, kept bit-identical as the
     reference and recovery mode.
   - [Eta]: a dense inverse at the last refactorization plus a
     product-form eta file folded back at the [refactor_every] cadence.
   - [Sparse]: a sparse LU factorization of the basis (Markowitz
     pivoting, {!Sparse_lu}) with sparse-eta updates layered on top; no
     dense inverse exists at all, so memory and ftran/btran cost scale
     with the factor nonzeros instead of m².  Refactorization replaces
     the eta fold.  If a basis defeats the sparse factorization the
     kernel falls back to a dense rebuild when m is small enough to
     afford one, else reports Numerical.

   Invariant maintained by the dual method: the current basis is dual
   feasible (every nonbasic at lower has reduced cost >= -tol, at upper
   <= +tol).  Reduced costs are independent of bounds, so bound changes
   between reoptimize calls preserve the invariant -- the warm-start
   property branch-and-bound relies on. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit | Time_limit | Numerical

let string_of_status = function
  | Optimal -> "optimal"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Iter_limit -> "iteration limit"
  | Time_limit -> "time limit"
  | Numerical -> "numerical failure"

type kernel = Dense | Eta | Sparse

let string_of_kernel = function
  | Dense -> "dense"
  | Eta -> "eta"
  | Sparse -> "sparse"

let kernel_of_string = function
  | "dense" -> Some Dense
  | "eta" -> Some Eta
  | "sparse" -> Some Sparse
  | _ -> None

type pricing = Dantzig | Devex

let string_of_pricing = function Dantzig -> "dantzig" | Devex -> "devex"

let pricing_of_string = function
  | "dantzig" -> Some Dantzig
  | "devex" -> Some Devex
  | _ -> None

let big = 1e10
let unbounded_threshold = 1e9
let pivot_tol = 1e-8
let feas_tol = 1e-7
let dual_tol = 1e-7
let degen_limit = 60
let drift_tol = 1e-7

(* Sparse-kernel dense fallback ceiling: above this a dense m x m inverse
   is the very memory wall the sparse kernel exists to avoid, so a failed
   factorization reports Numerical instead of allocating one. *)
let dense_fallback_rows = 2000

(* Warm-reoptimize guards: fall back to a full compute_xb/recompute_d when
   too many bounds changed (the ftran replay would cost more than the
   full passes), when a patched infinite bound is involved (cancellation
   on the 1e10 box), or after this many consecutive warm starts (bounds
   the xb drift a short node solve never resyncs). *)
let warm_max_pending = 8
let warm_max_delta = 1e7
let warm_limit = 64

(* One product-form elementary matrix E = I with column [er] replaced by
   the eta column derived from the entering column w = B^-1 A_q at pivot
   row [er]: E_{er,er} = 1/piv, E_{i,er} = -w_i/piv.  B^-1 after k pivots
   is E_k ... E_1 B0^-1 with B0^-1 the basis inverse operator of the last
   refactorization (dense matrix or sparse LU).  Records are immutable,
   so [copy] can share them. *)
type eta = {
  er : int;            (* pivot basis position *)
  idx : int array;     (* rows i <> er with w_i <> 0 *)
  va : float array;    (* the corresponding w_i *)
  piv : float;         (* w_er *)
}

let dummy_eta = { er = 0; idx = [||]; va = [||]; piv = 1. }

type t = {
  n : int;                        (* structural variables *)
  m : int;                        (* rows = basis size *)
  nn : int;                       (* n + m *)
  cost : Vec.t;                   (* nn; slacks cost 0 *)
  lb : Vec.t;                     (* nn, patched *)
  ub : Vec.t;
  lb_patched : bool array;
  ub_patched : bool array;
  col_idx : int array array;      (* structural columns only *)
  col_val : float array array;
  row_idx : int array array;      (* row-major mirror, for scatter pricing *)
  row_val : float array array;
  b : Vec.t;
  basis : int array;              (* m: variable basic at each position *)
  loc : int array;                (* nn: -1 at lower, -2 at upper, pos >= 0 basic *)
  kernel : kernel;
  pricing : pricing;
  mutable binv : Vec.mat;
      (* m x m rows of B0^-1: the dense inverse at the last
         refactorization.  In the Eta kernel the current B^-1 is the
         product of the eta file over this matrix; in the Dense kernel
         the eta file stays empty and binv is B^-1 itself, updated in
         place per pivot.  In the Sparse kernel this is [||] (the LU
         factors replace it) unless a singular-basis fallback forced a
         dense rebuild. *)
  mutable lu : Sparse_lu.t option;
      (* Sparse kernel: the B0 factorization.  None means the dense binv
         is live instead (Dense/Eta kernels, or sparse fallback). *)
  lu_work : Vec.t;                (* m scratch for Sparse_lu solves *)
  xb : Vec.t;                     (* m basic values *)
  d : Vec.t;                      (* nn reduced costs (valid for nonbasic) *)
  alpha : Vec.t;                  (* nn scratch: pivot row in nonbasic space *)
  amark : bool array;             (* nn scratch: alpha scatter membership *)
  atouch : int array;             (* nn scratch: scattered positions *)
  mutable natouch : int;
  dw : Vec.t;                     (* m devex reference weights (rows) *)
  wscratch : Vec.t;               (* m scratch: ftran result *)
  zscratch : Vec.t;               (* m scratch: compute_xb right-hand side *)
  duscratch : Vec.t;              (* m scratch: compute_duals btran input *)
  dyscratch : Vec.t;              (* m scratch: compute_duals dense output *)
  refactor_every : int;           (* eta-file length triggering refactor *)
  mutable etas : eta array;       (* stack; first neta entries valid *)
  mutable neta : int;
  mutable eta_apps : int;         (* eta applications performed *)
  mutable eta_len_max : int;      (* high-water eta-file length *)
  rho : Vec.t;                    (* m scratch: pivot row e_r B^-1 *)
  uscratch : Vec.t;               (* m scratch: sparse btran (zero outside) *)
  utouched : int array;           (* m scratch: nonzero rows of uscratch *)
  umark : bool array;             (* m scratch: membership (false outside) *)
  xb_save : Vec.t;                (* m scratch: drift detection *)
  mutable total_iters : int;
  mutable total_refactors : int;
  mutable drift_rebuilds : int;    (* refactors forced by resync drift *)
  mutable recovery_rebuilds : int; (* refactors forced by rejected pivots *)
  mutable refactor_seconds : float;
  mutable bland : bool;
  mutable degen_count : int;
  mutable infeas_ray : float array option;
      (* row of B^-1 at the moment the dual method proved primal
         infeasibility: a Farkas-style multiplier vector over the rows *)
  mutable warm : bool;
      (* xb and d are current for the basis and bounds: the last
         reoptimize ended verified Optimal and only set_bounds calls
         happened since.  Lets the next reoptimize skip the full
         compute_xb/recompute_d entry passes (eta-file kernels only). *)
  mutable pending_bounds : (int * float) list;
      (* (j, new resting value - old) for nonbasic variables whose
         bound changed while [warm]; replayed as ftran updates of xb *)
  mutable npending : int;
  mutable warm_solves : int;      (* consecutive warm starts since full resync *)
}

(* The Dense kernel updates its inverse per pivot and never touches the
   eta file; both eta-file kernels push per-pivot etas over B0^-1. *)
let uses_etas t = t.kernel <> Dense

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let patch_lb v = if v = neg_infinity then -.big else v
let patch_ub v = if v = infinity then big else v

(* Build column-major copies of the constraint matrix. *)
let col_major (std : Lp.std) =
  let n = std.Lp.ncols and m = std.Lp.nrows in
  let counts = Array.make n 0 in
  for r = 0 to m - 1 do
    Array.iter (fun j -> counts.(j) <- counts.(j) + 1) std.Lp.row_idx.(r)
  done;
  let idx = Array.init n (fun j -> Array.make counts.(j) 0) in
  let value = Array.init n (fun j -> Array.make counts.(j) 0.) in
  let fill = Array.make n 0 in
  for r = 0 to m - 1 do
    let ri = std.Lp.row_idx.(r) and rv = std.Lp.row_val.(r) in
    for k = 0 to Array.length ri - 1 do
      let j = ri.(k) in
      idx.(j).(fill.(j)) <- r;
      value.(j).(fill.(j)) <- rv.(k);
      fill.(j) <- fill.(j) + 1
    done
  done;
  (idx, value)

(* Domain-local arena for the float payload of a solver instance.  Batch
   solving creates one Simplex.t per request; with a workspace the
   per-create float vectors (5·nn + 11·m doubles — the dominant
   allocation) are carved as views out of a single retained buffer that
   is zeroed and re-carved on every [create], so steady-state solving
   allocates O(1) float payload per request.  The buffer only grows (to
   the largest model seen), and because every carved view starts
   zero-filled exactly like a fresh [Vec.create], a pooled instance is
   bit-identical to a fresh one.  A workspace must back at most one live
   instance: the next [create] from the same workspace re-carves the
   buffer under the previous instance.  [copy] never draws from a
   workspace — copies always allocate fresh. *)
module Workspace = struct
  type t = { mutable buf : Vec.t }

  let create () = { buf = Vec.create 0 }

  (* Total float demand of [Simplex.create] for an n×m model. *)
  let demand ~nn ~m = (5 * nn) + (11 * m)
end

let create ?workspace ?(kernel = Sparse) ?pricing ?(refactor_every = 32)
    (std : Lp.std) =
  if refactor_every < 1 then
    invalid_arg "Simplex.create: refactor_every must be >= 1";
  (* Devex pays off where iterations are the bottleneck; the Dense and
     Eta kernels keep Dantzig so their per-pivot behavior (and the
     dense-mode bit-identity guarantee) is unchanged. *)
  let pricing =
    match pricing with
    | Some p -> p
    | None -> ( match kernel with Sparse -> Devex | Dense | Eta -> Dantzig)
  in
  let n = std.Lp.ncols and m = std.Lp.nrows in
  let nn = n + m in
  let alloc =
    match workspace with
    | None -> Vec.create
    | Some ws ->
      let total = Workspace.demand ~nn ~m in
      if Vec.length ws.Workspace.buf < total then
        ws.Workspace.buf <- Vec.create total
      else Vec.fill (Vec.sub ws.Workspace.buf 0 total) 0.;
      let off = ref 0 in
      fun len ->
        let v = Vec.sub ws.Workspace.buf !off len in
        off := !off + len;
        v
  in
  let cost = alloc nn in
  for j = 0 to n - 1 do
    cost.{j} <- std.Lp.obj.(j)
  done;
  let lb = alloc nn and ub = alloc nn in
  let lb_patched = Array.make nn false and ub_patched = Array.make nn false in
  for j = 0 to n - 1 do
    lb_patched.(j) <- std.Lp.lb.(j) = neg_infinity;
    ub_patched.(j) <- std.Lp.ub.(j) = infinity;
    lb.{j} <- patch_lb std.Lp.lb.(j);
    ub.{j} <- patch_ub std.Lp.ub.(j)
  done;
  for i = 0 to m - 1 do
    let j = n + i in
    (match std.Lp.row_cmp.(i) with
     | Lp.Le -> lb.{j} <- 0.; ub.{j} <- big; ub_patched.(j) <- true
     | Lp.Ge -> lb.{j} <- -.big; ub.{j} <- 0.; lb_patched.(j) <- true
     | Lp.Eq -> lb.{j} <- 0.; ub.{j} <- 0.)
  done;
  (* Dual-feasible nonbasic placement for structurals. *)
  let loc = Array.make nn (-1) in
  for j = 0 to n - 1 do
    if cost.{j} > 0. then loc.(j) <- -1
    else if cost.{j} < 0. then loc.(j) <- -2
    else if not lb_patched.(j) then loc.(j) <- -1
    else if not ub_patched.(j) then loc.(j) <- -2
    else loc.(j) <- -1
  done;
  let basis = Array.init m (fun i -> n + i) in
  for i = 0 to m - 1 do
    loc.(n + i) <- i
  done;
  (* The all-slack start basis is the identity under either kernel. *)
  let binv =
    if kernel = Sparse then Vec.mat_empty
    else begin
      let bm = Vec.mat_create m m in
      for i = 0 to m - 1 do
        bm.{i, i} <- 1.
      done;
      bm
    end
  in
  let lu = if kernel = Sparse then Some (Sparse_lu.identity m) else None in
  let d = alloc nn in
  Vec.blit cost d;
  let b = alloc m in
  for i = 0 to m - 1 do
    b.{i} <- std.Lp.rhs.(i)
  done;
  let dw = alloc m in
  Vec.fill dw 1.;
  let col_idx, col_val = col_major std in
  {
    n; m; nn; cost; lb; ub; lb_patched; ub_patched;
    col_idx;
    col_val;
    row_idx = std.Lp.row_idx;
    row_val = std.Lp.row_val;
    b;
    basis; loc;
    kernel;
    pricing;
    binv;
    lu;
    lu_work = alloc m;
    xb = alloc m;
    d;
    alpha = alloc nn;
    amark = Array.make nn false;
    atouch = Array.make nn 0;
    natouch = 0;
    dw;
    wscratch = alloc m;
    zscratch = alloc m;
    duscratch = alloc m;
    dyscratch = alloc m;
    refactor_every;
    etas = [||];
    neta = 0;
    eta_apps = 0;
    eta_len_max = 0;
    rho = alloc m;
    uscratch = alloc m;
    utouched = Array.make m 0;
    umark = Array.make m false;
    xb_save = alloc m;
    total_iters = 0;
    total_refactors = 0;
    drift_rebuilds = 0;
    recovery_rebuilds = 0;
    refactor_seconds = 0.;
    bland = false;
    degen_count = 0;
    infeas_ray = None;
    warm = false;
    pending_bounds = [];
    npending = 0;
    warm_solves = 0;
  }

(* Independent snapshot for a worker domain.  [cost], [b], [col_idx],
   [col_val], [row_idx] and [row_val] are write-once after [create]
   (verified: no mutation site in this module), so the copy shares them;
   LU factors and eta records are immutable after construction, so they
   are shared too.  Everything the solve mutates -- bounds, basis, the
   dense inverse, values, reduced costs, scratch, counters -- is
   deep-copied so the copy can reoptimize concurrently with (or instead
   of) the original. *)
let copy t =
  {
    t with
    lb = Vec.copy t.lb;
    ub = Vec.copy t.ub;
    lb_patched = Array.copy t.lb_patched;
    ub_patched = Array.copy t.ub_patched;
    basis = Array.copy t.basis;
    loc = Array.copy t.loc;
    binv = Vec.mat_copy t.binv;
    lu_work = Vec.copy t.lu_work;
    xb = Vec.copy t.xb;
    d = Vec.copy t.d;
    alpha = Vec.copy t.alpha;
    amark = Array.copy t.amark;
    atouch = Array.copy t.atouch;
    dw = Vec.copy t.dw;
    wscratch = Vec.copy t.wscratch;
    zscratch = Vec.copy t.zscratch;
    duscratch = Vec.copy t.duscratch;
    dyscratch = Vec.copy t.dyscratch;
    (* eta records are immutable; sharing them with the copy is safe *)
    etas = Array.copy t.etas;
    rho = Vec.copy t.rho;
    uscratch = Vec.copy t.uscratch;
    utouched = Array.copy t.utouched;
    umark = Array.copy t.umark;
    xb_save = Vec.copy t.xb_save;
    infeas_ray = Option.map Array.copy t.infeas_ray;
  }

let nrows t = t.m
let ncols t = t.n
let iterations t = t.total_iters
let refactorizations t = t.total_refactors
let drift_rebuilds t = t.drift_rebuilds
let recovery_rebuilds t = t.recovery_rebuilds
let refactor_seconds t = t.refactor_seconds
let eta_applications t = t.eta_apps
let eta_length t = t.neta
let max_eta_length t = t.eta_len_max
let lu_nnz t = match t.lu with Some lu -> Sparse_lu.nnz lu | None -> 0

(* Value of a nonbasic variable (forward declaration of the one below;
   needed here so set_bounds can record resting-value deltas). *)
let nb_value_loc t j = if t.loc.(j) = -1 then t.lb.{j} else t.ub.{j}

let set_bounds t j ~lb ~ub =
  if j < 0 || j >= t.n then invalid_arg "Simplex.set_bounds: out of range";
  if lb > ub then invalid_arg "Simplex.set_bounds: lb > ub";
  let old_v = if t.warm && t.loc.(j) < 0 then nb_value_loc t j else 0. in
  t.lb_patched.(j) <- lb = neg_infinity;
  t.ub_patched.(j) <- ub = infinity;
  t.lb.{j} <- patch_lb lb;
  t.ub.{j} <- patch_ub ub;
  (* Reduced costs are bound-independent and a basic variable's value does
     not move when its box does, so the only state a bound change touches
     is the resting value of a nonbasic variable: record the delta for an
     ftran replay at the next reoptimize.  Anything outsized (patched
     bounds, long replay lists) drops back to the cold path. *)
  if t.warm && t.loc.(j) < 0 then begin
    let dv = nb_value_loc t j -. old_v in
    if dv <> 0. then begin
      if Float.abs dv > warm_max_delta || t.npending >= warm_max_pending then
        t.warm <- false
      else begin
        t.pending_bounds <- (j, dv) :: t.pending_bounds;
        t.npending <- t.npending + 1
      end
    end
  end

let bounds t j =
  if j < 0 || j >= t.n then invalid_arg "Simplex.bounds: out of range";
  (t.lb.{j}, t.ub.{j})

(* ------------------------------------------------------------------ *)
(* Core linear algebra                                                 *)
(* ------------------------------------------------------------------ *)

(* Forward pass of the eta file (oldest first): v := E_k ... E_1 v,
   turning a B0^-1-product into a B^-1-product (ftran). *)
let apply_etas_fwd t (v : Vec.t) =
  for k = 0 to t.neta - 1 do
    let e = t.etas.(k) in
    let vr = v.{e.er} /. e.piv in
    v.{e.er} <- vr;
    if vr <> 0. then begin
      let idx = e.idx and va = e.va in
      for i = 0 to Array.length idx - 1 do
        v.{idx.(i)} <- v.{idx.(i)} -. (va.(i) *. vr)
      done
    end;
    t.eta_apps <- t.eta_apps + 1
  done

(* Backward (row) pass, newest first: u := u E_k ... applied right to
   left gives u B^-1 = ((u E_k) ... E_1) B0^-1 (btran).  Each eta only
   changes entry [er]. *)
let apply_etas_rev_row t (u : Vec.t) =
  for k = t.neta - 1 downto 0 do
    let e = t.etas.(k) in
    let acc = ref u.{e.er} in
    let idx = e.idx and va = e.va in
    for i = 0 to Array.length idx - 1 do
      acc := !acc -. (u.{idx.(i)} *. va.(i))
    done;
    u.{e.er} <- !acc /. e.piv;
    t.eta_apps <- t.eta_apps + 1
  done

(* Push the eta derived from entering column w (= B^-1 A_q) at pivot row
   r.  Replaces the dense O(m^2) Gauss-Jordan update of binv. *)
let push_eta t r (w : Vec.t) =
  let cnt = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> r && w.{i} <> 0. then incr cnt
  done;
  let idx = Array.make !cnt 0 and va = Array.make !cnt 0. in
  let k = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> r && w.{i} <> 0. then begin
      idx.(!k) <- i;
      va.(!k) <- w.{i};
      incr k
    end
  done;
  if t.neta >= Array.length t.etas then begin
    let grown = Array.make (max 8 (2 * Array.length t.etas)) dummy_eta in
    Array.blit t.etas 0 grown 0 t.neta;
    t.etas <- grown
  end;
  t.etas.(t.neta) <- { er = r; idx; va; piv = w.{r} };
  t.neta <- t.neta + 1;
  if t.neta > t.eta_len_max then t.eta_len_max <- t.neta

(* rho := e_r B^-1 into t.rho, by a sparse btran of e_r: the unit vector
   stays sparse through the eta file (each eta touches only its own [er]
   entry), so the B0^-1 half runs over the touched positions only — a
   dense pass over the touched rows of binv, or a sparse-RHS LU btran. *)
let compute_rho t r =
  let u = t.uscratch and mark = t.umark and touched = t.utouched in
  let ntouch = ref 0 in
  let touch i =
    if not mark.(i) then begin
      mark.(i) <- true;
      touched.(!ntouch) <- i;
      incr ntouch
    end
  in
  u.{r} <- 1.;
  touch r;
  for k = t.neta - 1 downto 0 do
    let e = t.etas.(k) in
    let acc = ref (if mark.(e.er) then u.{e.er} else 0.) in
    let idx = e.idx and va = e.va in
    for i = 0 to Array.length idx - 1 do
      let row = idx.(i) in
      if mark.(row) then acc := !acc -. (u.{row} *. va.(i))
    done;
    let v = !acc /. e.piv in
    if v <> 0. || mark.(e.er) then begin
      u.{e.er} <- v;
      touch e.er
    end;
    t.eta_apps <- t.eta_apps + 1
  done;
  (match t.lu with
   | Some lu ->
     Vec.fill t.rho 0.;
     for ti = 0 to !ntouch - 1 do
       let i = touched.(ti) in
       t.rho.{i} <- u.{i}
     done;
     Sparse_lu.btran lu ~work:t.lu_work t.rho
   | None ->
     Vec.fill t.rho 0.;
     for ti = 0 to !ntouch - 1 do
       let i = touched.(ti) in
       let ui = u.{i} in
       if ui <> 0. then begin
         let binv = t.binv in
         for c = 0 to t.m - 1 do
           t.rho.{c} <- t.rho.{c} +. (ui *. binv.{i, c})
         done
       end
     done);
  (* restore the all-zero / all-false scratch invariant *)
  for ti = 0 to !ntouch - 1 do
    let i = touched.(ti) in
    u.{i} <- 0.;
    mark.(i) <- false
  done

(* Value of a nonbasic variable. *)
let nb_value t j = if t.loc.(j) = -1 then t.lb.{j} else t.ub.{j}

let var_value t j =
  let k = t.loc.(j) in
  if k >= 0 then t.xb.{k} else nb_value t j

(* xb := B^-1 (b - N x_N). *)
let compute_xb t =
  let z = t.zscratch in
  Vec.blit t.b z;
  for j = 0 to t.nn - 1 do
    if t.loc.(j) < 0 then begin
      let v = nb_value t j in
      if v <> 0. then
        if j < t.n then begin
          let ci = t.col_idx.(j) and cv = t.col_val.(j) in
          for k = 0 to Array.length ci - 1 do
            z.{ci.(k)} <- z.{ci.(k)} -. (cv.(k) *. v)
          done
        end
        else z.{j - t.n} <- z.{j - t.n} -. v
    end
  done;
  (match t.lu with
   | Some lu ->
     Sparse_lu.ftran lu ~work:t.lu_work z;
     Vec.blit z t.xb
   | None ->
     let binv = t.binv in
     for i = 0 to t.m - 1 do
       let acc = ref 0. in
       for k = 0 to t.m - 1 do
         acc := !acc +. (binv.{i, k} *. z.{k})
       done;
       t.xb.{i} <- !acc
     done);
  apply_etas_fwd t t.xb

(* w := B^-1 A_j (ftran of column j) into t.wscratch. *)
let ftran t j =
  let w = t.wscratch in
  (match t.lu with
   | Some lu ->
     Vec.fill w 0.;
     if j < t.n then begin
       let ci = t.col_idx.(j) and cv = t.col_val.(j) in
       for k = 0 to Array.length ci - 1 do
         w.{ci.(k)} <- w.{ci.(k)} +. cv.(k)
       done
     end
     else w.{j - t.n} <- 1.;
     Sparse_lu.ftran lu ~work:t.lu_work w
   | None ->
     let binv = t.binv in
     if j < t.n then begin
       let ci = t.col_idx.(j) and cv = t.col_val.(j) in
       for i = 0 to t.m - 1 do
         let acc = ref 0. in
         for k = 0 to Array.length ci - 1 do
           acc := !acc +. (binv.{i, ci.(k)} *. cv.(k))
         done;
         w.{i} <- !acc
       done
     end
     else begin
       let r = j - t.n in
       for i = 0 to t.m - 1 do
         w.{i} <- binv.{i, r}
       done
     end);
  apply_etas_fwd t w;
  w

(* Fresh duals y = c_B B^-1: btran of c_B through the eta file, then
   through B0^-1 (dense rows or LU).  The returned vector is scratch
   owned by [t] (clobbered by the next call) — public accessors copy. *)
let compute_duals t =
  let u = t.duscratch in
  for k = 0 to t.m - 1 do
    u.{k} <- t.cost.{t.basis.(k)}
  done;
  apply_etas_rev_row t u;
  match t.lu with
  | Some lu ->
    Sparse_lu.btran lu ~work:t.lu_work u;
    u
  | None ->
    let y = t.dyscratch in
    Vec.fill y 0.;
    let binv = t.binv in
    for k = 0 to t.m - 1 do
      let uk = u.{k} in
      if uk <> 0. then
        for i = 0 to t.m - 1 do
          y.{i} <- y.{i} +. (uk *. binv.{k, i})
        done
    done;
    y

(* Fresh reduced costs: d_j = c_j - y . A_j with y = c_B B^-1. *)
let recompute_d t =
  let y = compute_duals t in
  for j = 0 to t.nn - 1 do
    if t.loc.(j) >= 0 then t.d.{j} <- 0.
    else if j < t.n then begin
      let ci = t.col_idx.(j) and cv = t.col_val.(j) in
      let acc = ref t.cost.{j} in
      for k = 0 to Array.length ci - 1 do
        acc := !acc -. (y.{ci.(k)} *. cv.(k))
      done;
      t.d.{j} <- !acc
    end
    else t.d.{j} <- -.y.{j - t.n}
  done

let duals t = Vec.to_array (compute_duals t)

let farkas_ray t = t.infeas_ray

let reduced_costs t =
  let y = compute_duals t in
  Array.init t.n (fun j ->
      let ci = t.col_idx.(j) and cv = t.col_val.(j) in
      let acc = ref t.cost.{j} in
      for k = 0 to Array.length ci - 1 do
        acc := !acc -. (y.{ci.(k)} *. cv.(k))
      done;
      !acc)

(* Rebuild binv from the basis by Gauss-Jordan with partial pivoting.
   Returns false if the basis matrix is (numerically) singular. *)
let dense_refactor t =
  Obs.with_span "simplex.refactor"
    ~attrs:[ ("kind", Obs.Str "rebuild"); ("m", Obs.Int t.m) ]
  @@ fun () ->
  let t0 = Obs.Clock.now () in
  t.total_refactors <- t.total_refactors + 1;
  (* binv becomes the current B^-1 again: the eta file restarts empty *)
  t.neta <- 0;
  let m = t.m in
  let a = Array.init m (fun _ -> Array.make m 0.) in
  for k = 0 to m - 1 do
    let j = t.basis.(k) in
    if j < t.n then begin
      let ci = t.col_idx.(j) and cv = t.col_val.(j) in
      for e = 0 to Array.length ci - 1 do
        a.(ci.(e)).(k) <- cv.(e)
      done
    end
    else a.(j - t.n).(k) <- 1.
  done;
  let inv = Array.init m (fun i ->
      let row = Array.make m 0. in
      row.(i) <- 1.;
      row)
  in
  let ok = ref true in
  (try
     for col = 0 to m - 1 do
       (* partial pivot *)
       let best = ref col and best_mag = ref (Float.abs a.(col).(col)) in
       for i = col + 1 to m - 1 do
         let mag = Float.abs a.(i).(col) in
         if mag > !best_mag then begin best := i; best_mag := mag end
       done;
       if !best_mag < 1e-12 then begin ok := false; raise Exit end;
       if !best <> col then begin
         let tmp = a.(col) in a.(col) <- a.(!best); a.(!best) <- tmp;
         let tmp = inv.(col) in inv.(col) <- inv.(!best); inv.(!best) <- tmp
       end;
       let piv = a.(col).(col) in
       let arow = a.(col) and irow = inv.(col) in
       let scale = 1. /. piv in
       for k = 0 to m - 1 do
         arow.(k) <- arow.(k) *. scale;
         irow.(k) <- irow.(k) *. scale
       done;
       for i = 0 to m - 1 do
         if i <> col then begin
           let f = a.(i).(col) in
           if f <> 0. then begin
             let ai = a.(i) and ii = inv.(i) in
             for k = 0 to m - 1 do
               ai.(k) <- ai.(k) -. (f *. arow.(k));
               ii.(k) <- ii.(k) -. (f *. irow.(k))
             done
           end
         end
       done
     done
   with Exit -> ());
  if !ok then
    for i = 0 to m - 1 do
      let ii = inv.(i) in
      for k = 0 to m - 1 do
        t.binv.{i, k} <- ii.(k)
      done
    done;
  t.refactor_seconds <- t.refactor_seconds +. (Obs.Clock.now () -. t0);
  !ok

(* Sparse-kernel refactorization: factor the current basis columns with
   {!Sparse_lu.factor}.  On success the LU replaces both the previous
   factors and the eta file; on a singular basis the kernel falls back to
   a dense Gauss-Jordan rebuild when a dense inverse is affordable. *)
let sparse_refactor t =
  Obs.with_span "simplex.lu_refactor"
    ~attrs:[ ("m", Obs.Int t.m); ("etas", Obs.Int t.neta) ]
  @@ fun () ->
  let t0 = Obs.Clock.now () in
  let m = t.m in
  let idx = Array.make m [||] and va = Array.make m [||] in
  let bnnz = ref 0 in
  for k = 0 to m - 1 do
    let j = t.basis.(k) in
    if j < t.n then begin
      idx.(k) <- t.col_idx.(j);
      va.(k) <- t.col_val.(j);
      bnnz := !bnnz + Array.length t.col_idx.(j)
    end
    else begin
      idx.(k) <- [| j - t.n |];
      va.(k) <- [| 1. |];
      incr bnnz
    end
  done;
  match Sparse_lu.factor idx va with
  | Some lu ->
    t.lu <- Some lu;
    t.neta <- 0;
    t.total_refactors <- t.total_refactors + 1;
    t.refactor_seconds <- t.refactor_seconds +. (Obs.Clock.now () -. t0);
    if Obs.enabled () then begin
      Obs.gauge "simplex.lu_nnz" (float_of_int (Sparse_lu.nnz lu));
      Obs.gauge "simplex.lu_fill"
        (float_of_int (max 0 (Sparse_lu.nnz lu - !bnnz)))
    end;
    true
  | None ->
    t.refactor_seconds <- t.refactor_seconds +. (Obs.Clock.now () -. t0);
    if t.m > dense_fallback_rows then false
    else begin
      (* a dense inverse is affordable at this size; allocate it lazily
         and let the dense rebuild arbitrate singularity *)
      if Vec.dim1 t.binv = 0 then t.binv <- Vec.mat_create m m;
      t.lu <- None;
      dense_refactor t
    end

let refactor t =
  match t.kernel with
  | Sparse -> sparse_refactor t
  | Dense | Eta -> dense_refactor t

(* Gauss-Jordan update of binv for entering column w at basis position r. *)
let update_binv t r (w : Vec.t) =
  let piv = w.{r} in
  let binv = t.binv in
  let brow = Vec.row binv r in
  let scale = 1. /. piv in
  for k = 0 to t.m - 1 do
    brow.{k} <- brow.{k} *. scale
  done;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let f = w.{i} in
      if f <> 0. then
        for k = 0 to t.m - 1 do
          binv.{i, k} <- binv.{i, k} -. (f *. brow.{k})
        done
    end
  done

(* Cadence refactorization in the Eta kernel: fold the eta file into binv
   so it becomes the current B^-1 again.  Each stored eta applies exactly
   the row operations [update_binv] would have performed at pivot time
   (oldest first), so the result is bit-identical to dense-mode updating
   -- and since B^-1 itself is unchanged, xb and d stay valid: no
   recompute follows a fold.  Cost is sum over the file of nnz(w) * m,
   versus the O(m^3) from-scratch rebuild, which remains reserved for
   drift and numerical recovery where folding would preserve the very
   error being repaired. *)
let fold_etas t =
  Obs.with_span "simplex.refactor"
    ~attrs:[ ("kind", Obs.Str "fold"); ("etas", Obs.Int t.neta) ]
  @@ fun () ->
  for e = 0 to t.neta - 1 do
    let { er; idx; va; piv } = t.etas.(e) in
    let binv = t.binv in
    let brow = Vec.row binv er in
    let scale = 1. /. piv in
    for k = 0 to t.m - 1 do
      brow.{k} <- brow.{k} *. scale
    done;
    for u = 0 to Array.length idx - 1 do
      let i = idx.(u) and f = va.(u) in
      for k = 0 to t.m - 1 do
        binv.{i, k} <- binv.{i, k} -. (f *. brow.{k})
      done
    done
  done;
  t.neta <- 0;
  t.total_refactors <- t.total_refactors + 1

let objective t =
  let acc = ref 0. in
  for j = 0 to t.n - 1 do
    if t.cost.{j} <> 0. then acc := !acc +. (t.cost.{j} *. var_value t j)
  done;
  !acc

let primal_value t j =
  if j < 0 || j >= t.n then invalid_arg "Simplex.primal_value: out of range";
  var_value t j

let primal t = Array.init t.n (fun j -> var_value t j)

(* ------------------------------------------------------------------ *)
(* Dual simplex                                                        *)
(* ------------------------------------------------------------------ *)

exception Stop of status

let check_deadline deadline iters =
  match deadline with
  | Some d when iters land 15 = 0 && Obs.Clock.now () > d ->
    raise (Stop Time_limit)
  | _ -> ()

(* Select the leaving row.  Dantzig: most-violated basic variable (or the
   smallest variable index under Bland's rule).  Devex: largest
   violation^2 / reference weight, steering toward rows whose pivots have
   historically moved the iterate most per unit violation.  Returns None
   when primal feasible. *)
let select_leaving t =
  if t.pricing = Devex && not t.bland then begin
    let best = ref (-1) and best_score = ref 0. in
    for i = 0 to t.m - 1 do
      let p = t.basis.(i) in
      let v = t.xb.{i} in
      let tol_lo = feas_tol *. (1. +. Float.abs t.lb.{p})
      and tol_hi = feas_tol *. (1. +. Float.abs t.ub.{p}) in
      let viol =
        if v < t.lb.{p} -. tol_lo then t.lb.{p} -. v
        else if v > t.ub.{p} +. tol_hi then v -. t.ub.{p}
        else 0.
      in
      if viol > 0. then begin
        let score = viol *. viol /. t.dw.{i} in
        if score > !best_score then begin
          best := i;
          best_score := score
        end
      end
    done;
    if !best < 0 then None else Some !best
  end
  else begin
    let best = ref (-1) and best_viol = ref feas_tol and best_var = ref max_int in
    for i = 0 to t.m - 1 do
      let p = t.basis.(i) in
      let v = t.xb.{i} in
      let tol_lo = feas_tol *. (1. +. Float.abs t.lb.{p})
      and tol_hi = feas_tol *. (1. +. Float.abs t.ub.{p}) in
      let viol =
        if v < t.lb.{p} -. tol_lo then t.lb.{p} -. v
        else if v > t.ub.{p} +. tol_hi then v -. t.ub.{p}
        else 0.
      in
      if viol > 0. then
        if t.bland then begin
          if p < !best_var then begin best := i; best_var := p; best_viol := viol end
        end
        else if viol > !best_viol then begin
          best := i;
          best_viol := viol
        end
    done;
    if !best < 0 then None else Some !best
  end

(* Devex weight update after a pivot on row r with entering column w:
   every row moved by the pivot inherits at least the reference weight it
   would get if the entering variable defined the reference framework;
   the pivot row's own weight is rescaled by the pivot element.  When the
   weights blow past 1e12 the reference framework has degraded — restart
   it flat (the classic devex reset). *)
let devex_update t r (w : Vec.t) =
  let wr = w.{r} in
  let gr = t.dw.{r} in
  let mx = ref 1. in
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let wi = w.{i} in
      if wi <> 0. then begin
        let q = wi /. wr in
        let cand = q *. q *. gr in
        if cand > t.dw.{i} then t.dw.{i} <- cand
      end;
      if t.dw.{i} > !mx then mx := t.dw.{i}
    end
  done;
  t.dw.{r} <- Float.max (gr /. (wr *. wr)) 1.;
  if Float.max !mx t.dw.{r} > 1e12 then Vec.fill t.dw 1.

(* Pivot-row pricing, sparse kernel: alpha_j = rho . A_j for every
   column, computed by scattering the nonzero entries of rho through the
   row-major matrix — O(nnz of the touched rows) instead of a gather
   over all nn columns.  Scatter order is ascending row index, matching
   the dense gather's per-column accumulation order, and the movable
   list is sorted so the ratio test scans candidates in ascending
   variable order (determinism).  Touched positions are recorded for
   [clear_alpha]. *)
let scatter_price t (rho : Vec.t) =
  let ntouch = ref 0 in
  for i = 0 to t.m - 1 do
    let ri = rho.{i} in
    if ri <> 0. then begin
      let rowi = t.row_idx.(i) and rowv = t.row_val.(i) in
      for k = 0 to Array.length rowi - 1 do
        let j = rowi.(k) in
        if not t.amark.(j) then begin
          t.amark.(j) <- true;
          t.alpha.{j} <- 0.;
          t.atouch.(!ntouch) <- j;
          incr ntouch
        end;
        t.alpha.{j} <- t.alpha.{j} +. (ri *. rowv.(k))
      done;
      let sj = t.n + i in
      t.amark.(sj) <- true;
      t.alpha.{sj} <- ri;
      t.atouch.(!ntouch) <- sj;
      incr ntouch
    end
  done;
  t.natouch <- !ntouch;
  let touched = Array.sub t.atouch 0 !ntouch in
  Array.sort (fun (a : int) b -> compare a b) touched;
  let movable = ref [] in
  for k = !ntouch - 1 downto 0 do
    let j = touched.(k) in
    if
      t.loc.(j) < 0
      && t.ub.{j} -. t.lb.{j} > 1e-12
      && Float.abs t.alpha.{j} > pivot_tol
    then movable := j :: !movable
  done;
  !movable

let clear_alpha t =
  for k = 0 to t.natouch - 1 do
    let j = t.atouch.(k) in
    t.alpha.{j} <- 0.;
    t.amark.(j) <- false
  done;
  t.natouch <- 0

(* One dual pivot.  Returns `Progress, `Feasible (primal feasible reached)
   or `Infeasible. *)
let dual_step t =
  match select_leaving t with
  | None -> `Feasible
  | Some r ->
    let p = t.basis.(r) in
    let above = t.xb.{r} > t.ub.{p} in
    let s = if above then 1. else -1. in
    (* Pivot row in nonbasic space: alpha_j = (e_r B^-1) A_j.  In the
       Dense kernel binv is B^-1 and its row r can be aliased (a
       zero-copy bigarray slice); the eta kernels produce the row by a
       sparse btran through the eta file. *)
    let rho =
      if uses_etas t then begin
        compute_rho t r;
        t.rho
      end
      else Vec.row t.binv r
    in
    let movable =
      if t.kernel = Sparse then ref (scatter_price t rho)
      else begin
        let movable = ref [] in
        for j = t.nn - 1 downto 0 do
          if t.loc.(j) < 0 && t.ub.{j} -. t.lb.{j} > 1e-12 then begin
            let a =
              if j < t.n then begin
                let ci = t.col_idx.(j) and cv = t.col_val.(j) in
                let acc = ref 0. in
                for k = 0 to Array.length ci - 1 do
                  acc := !acc +. (rho.{ci.(k)} *. cv.(k))
                done;
                !acc
              end
              else rho.{j - t.n}
            in
            t.alpha.{j} <- a;
            if Float.abs a > pivot_tol then movable := j :: !movable
          end
        done;
        movable
      end
    in
    (* Dual ratio test: keep reduced costs sign-feasible. *)
    let q = ref (-1) and best_ratio = ref infinity and best_mag = ref 0. in
    List.iter
      (fun j ->
         let a = s *. t.alpha.{j} in
         let eligible =
           (t.loc.(j) = -1 && a > pivot_tol) || (t.loc.(j) = -2 && a < -.pivot_tol)
         in
         if eligible then begin
           let dj =
             if t.loc.(j) = -1 then Float.max t.d.{j} 0. else Float.min t.d.{j} 0.
           in
           let ratio = dj /. a in
           let mag = Float.abs t.alpha.{j} in
           let better =
             if t.bland then
               ratio < !best_ratio -. 1e-9
               || (ratio < !best_ratio +. 1e-9 && (!q < 0 || j < !q))
             else
               ratio < !best_ratio -. 1e-9
               || (ratio < !best_ratio +. 1e-9 && mag > !best_mag)
           in
           if better then begin
             q := j;
             best_ratio := ratio;
             best_mag := mag
           end
         end)
      !movable;
    if !q < 0 then begin
      (* No entering column can repair the violated basic variable in row
         [r]: the row [e_r B^-1] of the basis inverse is a Farkas-style
         infeasibility multiplier over the constraint rows (the certifier
         re-derives the contradiction from it against the true, unpatched
         variable boxes). *)
      t.infeas_ray <- Some (Vec.to_array rho);
      if t.kernel = Sparse then clear_alpha t;
      `Infeasible
    end
    else begin
      let q = !q in
      let w = ftran t q in
      if Float.abs w.{r} < pivot_tol then begin
        if t.kernel = Sparse then clear_alpha t;
        `Numerical_pivot
      end
      else begin
        let target = if above then t.ub.{p} else t.lb.{p} in
        let delta = (t.xb.{r} -. target) /. w.{r} in
        let new_q_value = nb_value t q +. delta in
        (* Reduced-cost update (before the basis mutates). *)
        let theta = t.d.{q} /. w.{r} in
        List.iter
          (fun j -> if j <> q then t.d.{j} <- t.d.{j} -. (theta *. t.alpha.{j}))
          !movable;
        t.d.{p} <- -.theta;
        t.d.{q} <- 0.;
        (* Basic value update. *)
        for i = 0 to t.m - 1 do
          if i <> r then t.xb.{i} <- t.xb.{i} -. (w.{i} *. delta)
        done;
        t.xb.{r} <- new_q_value;
        (* Swap. *)
        t.loc.(p) <- (if above then -2 else -1);
        t.loc.(q) <- r;
        t.basis.(r) <- q;
        if t.pricing = Devex then devex_update t r w;
        if uses_etas t then push_eta t r w else update_binv t r w;
        if t.kernel = Sparse then clear_alpha t;
        if Float.abs delta <= 1e-9 then t.degen_count <- t.degen_count + 1
        else begin
          t.degen_count <- 0;
          t.bland <- false
        end;
        if t.degen_count > degen_limit then t.bland <- true;
        `Progress
      end
    end

let dual_loop t ~max_iter ~deadline =
  let numerical_retries = ref 0 in
  let iter = ref 0 in
  let result = ref None in
  (try
     while !result = None do
       if !iter >= max_iter then raise (Stop Iter_limit);
       check_deadline deadline !iter;
       incr iter;
       t.total_iters <- t.total_iters + 1;
       (* Periodic resync against drift.  With an eta file the fresh
          basic values double as a residual check: large disagreement
          with the incrementally updated ones means the eta product has
          degraded and triggers an early refactorization. *)
       if !iter mod 256 = 0 then begin
         if uses_etas t then begin
           Vec.blit t.xb t.xb_save;
           compute_xb t;
           let drift = ref 0. in
           for i = 0 to t.m - 1 do
             let d =
               Float.abs (t.xb.{i} -. t.xb_save.{i})
               /. (1. +. Float.abs t.xb.{i})
             in
             if d > !drift then drift := d
           done;
           if !drift > drift_tol then begin
             t.drift_rebuilds <- t.drift_rebuilds + 1;
             if not (refactor t) then raise (Stop Numerical);
             compute_xb t;
             recompute_d t
           end
         end
         else compute_xb t
       end;
       (* Refactorization cadence: the Eta kernel folds a full file into
          binv (no xb/d recompute needed -- B^-1 is unchanged); the
          Sparse kernel re-factors the basis (cheap at O(fill) and
          followed by an O(nnz) resync of xb and d, which the fresh
          factors make affordable); the Dense kernel keeps the pre-eta
          fixed-interval rebuild. *)
       (match t.kernel with
        | Eta -> if t.neta >= t.refactor_every then fold_etas t
        | Sparse ->
          if t.neta >= t.refactor_every then begin
            if not (refactor t) then raise (Stop Numerical);
            compute_xb t;
            recompute_d t
          end
        | Dense ->
          if !iter mod 1024 = 0 then begin
            if not (refactor t) then raise (Stop Numerical);
            compute_xb t;
            recompute_d t
          end);
       match dual_step t with
       | `Progress -> ()
       | `Feasible -> result := Some Optimal
       | `Infeasible -> result := Some Infeasible
       | `Numerical_pivot ->
         incr numerical_retries;
         if !numerical_retries > 3 then raise (Stop Numerical);
         t.recovery_rebuilds <- t.recovery_rebuilds + 1;
         if not (refactor t) then raise (Stop Numerical);
         compute_xb t;
         recompute_d t
     done
   with Stop s -> result := Some s);
  match !result with Some s -> s | None -> assert false

(* ------------------------------------------------------------------ *)
(* Primal simplex                                                      *)
(* ------------------------------------------------------------------ *)

let primal_step t =
  recompute_d t;
  (* Entering: most improving reduced cost (Bland: smallest index). *)
  let q = ref (-1) and best = ref 0. in
  for j = 0 to t.nn - 1 do
    if t.loc.(j) < 0 && t.ub.{j} -. t.lb.{j} > 1e-12 then begin
      let tol = dual_tol *. (1. +. Float.abs t.cost.{j}) in
      let improve =
        if t.loc.(j) = -1 then -.t.d.{j} else t.d.{j}
      in
      if improve > tol then
        if t.bland then begin
          if !q < 0 then begin q := j; best := improve end
        end
        else if improve > !best then begin
          q := j;
          best := improve
        end
    end
  done;
  if !q < 0 then `Optimal
  else begin
    let q = !q in
    let dir = if t.loc.(q) = -1 then 1. else -1. in
    let w = ftran t q in
    let limit = ref (t.ub.{q} -. t.lb.{q}) and leaving = ref (-1) in
    for i = 0 to t.m - 1 do
      let coef = -.dir *. w.{i} in
      let p = t.basis.(i) in
      if coef > pivot_tol then begin
        let room = Float.max 0. (t.ub.{p} -. t.xb.{i}) in
        let step = room /. coef in
        if step < !limit -. 1e-12 then begin limit := step; leaving := i end
      end
      else if coef < -.pivot_tol then begin
        let room = Float.max 0. (t.xb.{i} -. t.lb.{p}) in
        let step = room /. -.coef in
        if step < !limit -. 1e-12 then begin limit := step; leaving := i end
      end
    done;
    if !limit >= unbounded_threshold then `Unbounded
    else if !leaving < 0 then begin
      (* bound flip: q runs to its opposite bound *)
      let delta = !limit in
      for i = 0 to t.m - 1 do
        t.xb.{i} <- t.xb.{i} -. (dir *. w.{i} *. delta)
      done;
      t.loc.(q) <- (if t.loc.(q) = -1 then -2 else -1);
      `Progress
    end
    else begin
      let r = !leaving in
      let p = t.basis.(r) in
      let coef = -.dir *. w.{r} in
      let delta = !limit in
      let new_q_value = nb_value t q +. (dir *. delta) in
      for i = 0 to t.m - 1 do
        if i <> r then t.xb.{i} <- t.xb.{i} -. (dir *. w.{i} *. delta)
      done;
      t.xb.{r} <- new_q_value;
      t.loc.(p) <- (if coef > 0. then -2 else -1);
      t.loc.(q) <- r;
      t.basis.(r) <- q;
      if t.pricing = Devex then devex_update t r w;
      if uses_etas t then push_eta t r w else update_binv t r w;
      if delta <= 1e-9 then t.degen_count <- t.degen_count + 1
      else begin
        t.degen_count <- 0;
        t.bland <- false
      end;
      if t.degen_count > degen_limit then t.bland <- true;
      `Progress
    end
  end

let primal_simplex ?(max_iter = 200_000) ?deadline t =
  let iter = ref 0 in
  let result = ref None in
  (try
     while !result = None do
       if !iter >= max_iter then raise (Stop Iter_limit);
       check_deadline deadline !iter;
       incr iter;
       t.total_iters <- t.total_iters + 1;
       if uses_etas t && t.neta >= t.refactor_every then begin
         match t.kernel with
         | Sparse ->
           if not (refactor t) then raise (Stop Numerical);
           compute_xb t
         | Dense | Eta -> fold_etas t
       end;
       if !iter mod 256 = 0 then compute_xb t;
       match primal_step t with
       | `Progress -> ()
       | `Optimal -> result := Some Optimal
       | `Unbounded -> result := Some Unbounded
     done
   with Stop s -> result := Some s);
  match !result with Some s -> s | None -> assert false

(* ------------------------------------------------------------------ *)
(* Reoptimize and top-level solve                                      *)
(* ------------------------------------------------------------------ *)

(* Verify dual feasibility with freshly computed reduced costs; the dual
   loop maintains them incrementally and drift is possible. *)
let dual_feasible t =
  recompute_d t;
  let ok = ref true in
  for j = 0 to t.nn - 1 do
    if t.loc.(j) < 0 && t.ub.{j} -. t.lb.{j} > 1e-12 then begin
      let tol = 1e-5 *. (1. +. Float.abs t.cost.{j}) in
      if t.loc.(j) = -1 && t.d.{j} < -.tol then ok := false;
      if t.loc.(j) = -2 && t.d.{j} > tol then ok := false
    end
  done;
  !ok

let reoptimize ?(max_iter = 200_000) ?deadline t =
  (* Warm entry (eta-file kernels): the previous reoptimize ended
     verified Optimal, so d is fresh for the unchanged basis and bounds
     do not enter reduced costs at all -- only the resting values of
     changed nonbasic variables moved.  Replaying those as ftran updates
     of xb replaces both full entry passes with a handful of column
     solves.  Every [warm_limit] consecutive warm starts the full
     recompute runs anyway, bounding accumulated drift that short node
     solves would never hit a periodic resync for. *)
  if uses_etas t && t.warm && t.warm_solves < warm_limit then begin
    t.warm_solves <- t.warm_solves + 1;
    List.iter
      (fun (j, dv) ->
         let w = ftran t j in
         for i = 0 to t.m - 1 do
           t.xb.{i} <- t.xb.{i} -. (w.{i} *. dv)
         done)
      t.pending_bounds
  end
  else begin
    compute_xb t;
    recompute_d t;
    t.warm_solves <- 0
  end;
  t.pending_bounds <- [];
  t.npending <- 0;
  t.warm <- false;
  t.bland <- false;
  t.degen_count <- 0;
  if t.pricing = Devex then Vec.fill t.dw 1.;
  t.infeas_ray <- None;
  let status = dual_loop t ~max_iter ~deadline in
  match status with
  | Optimal ->
    (* Guard against reduced-cost drift: verify with fresh values, finish
       with primal pivots if needed (the point is primal feasible here).
       A verified exit leaves d fresh and xb current, arming the warm
       path for the next node. *)
    if dual_feasible t then begin
      t.warm <- true;
      Optimal
    end
    else primal_simplex ?deadline ~max_iter t
  | s -> s

let structural_on_patched_bound t =
  let hit = ref false in
  for j = 0 to t.n - 1 do
    let v = var_value t j in
    if (t.ub_patched.(j) && v > unbounded_threshold)
       || (t.lb_patched.(j) && v < -.unbounded_threshold)
    then hit := true
  done;
  !hit

type result = {
  status : status;
  x : float array;
  obj : float;
  iterations : int;
}

let solve ?(max_iter = 200_000) ?time_limit ?kernel ?pricing ?refactor_every
    (std : Lp.std) =
  Obs.with_span "simplex.solve"
    ~attrs:[ ("rows", Obs.Int std.Lp.nrows); ("cols", Obs.Int std.Lp.ncols) ]
    (fun () ->
       let t = create ?kernel ?pricing ?refactor_every std in
       let deadline =
         match time_limit with
         | Some s -> Some (Obs.Clock.now () +. s)
         | None -> None
       in
       let status = reoptimize ~max_iter ?deadline t in
       let status =
         if status = Optimal && structural_on_patched_bound t then Unbounded
         else status
       in
       if Obs.enabled () then begin
         Obs.count "simplex.iterations" (float_of_int t.total_iters);
         Obs.count "simplex.refactorizations" (float_of_int t.total_refactors);
         if t.drift_rebuilds > 0 then
           Obs.count "simplex.drift_rebuilds" (float_of_int t.drift_rebuilds);
         if t.recovery_rebuilds > 0 then
           Obs.count "simplex.recovery_rebuilds"
             (float_of_int t.recovery_rebuilds);
         if t.eta_apps > 0 then
           Obs.count "simplex.eta_applications" (float_of_int t.eta_apps);
         if uses_etas t then
           Obs.gauge "simplex.eta_len" (float_of_int t.eta_len_max);
         (match t.lu with
          | Some lu ->
            Obs.gauge "simplex.lu_nnz" (float_of_int (Sparse_lu.nnz lu))
          | None -> ());
         Obs.point "simplex.done"
           ~attrs:
             [
               ("status", Obs.Str (string_of_status status));
               ("iterations", Obs.Int t.total_iters);
             ]
       end;
       {
         status;
         x = primal t;
         obj = objective t +. std.Lp.obj_const;
         iterations = t.total_iters;
       })

(** Bounded-variable simplex solver over {!Vpart_lp.Lp.std} models.

    The implementation is a revised simplex supporting both the {e dual}
    and {e primal} methods on variables with general (boxed) bounds.

    The basis inverse is kept in {e product form}: a dense inverse [B₀⁻¹]
    from the last refactorization plus an {e eta file} — one sparse
    elementary matrix per pivot — applied on every [ftran]/[btran].  A
    pivot therefore costs O(nnz) instead of the O(rows²) dense
    Gauss-Jordan update, and the pivot row needed for pricing is produced
    by a {e sparse} btran of a unit vector through the eta file (the unit
    vector gains at most one nonzero per eta).  The file is folded back
    into a fresh dense inverse every [refactor_every] pivots, or earlier
    when the periodic basic-value resync detects drift beyond tolerance.
    [create ~eta_mode:false] disables all of this and maintains a dense
    [B⁻¹] updated per pivot — the pre-eta code path, kept as a measured
    baseline ([bench perf]) and a numerical cross-check.

    The dual method is the workhorse: starting from the all-slack basis, the
    solver first places every nonbasic variable on the bound that makes its
    reduced cost sign-feasible (infinite bounds are patched to a large
    constant, so this placement always exists), which makes the start dual
    feasible; dual pivots then restore primal feasibility.  Because reduced
    costs do not depend on variable bounds, any basis stays dual feasible
    under arbitrary bound changes — which is exactly what branch-and-bound
    needs for warm starts ({!Vpart_mip.Mip}).

    Anti-cycling: Bland's rule is engaged after a run of degenerate pivots.
    Numerical safety: candidate pivots below a pivot tolerance are rejected,
    the basis inverse is refactorized (Gauss-Jordan with partial pivoting)
    on demand, and basic values / reduced costs are recomputed from scratch
    periodically. *)

type status =
  | Optimal        (** primal and dual feasible within tolerances *)
  | Infeasible     (** primal infeasible (dual unbounded) *)
  | Unbounded      (** a structural variable rests on a patched infinite bound *)
  | Iter_limit
  | Time_limit
  | Numerical      (** pivoting stalled; result untrustworthy *)

val string_of_status : status -> string

type result = {
  status : status;
  x : float array;     (** structural variable values (length [ncols]) *)
  obj : float;         (** minimization objective incl. constant *)
  iterations : int;
}

val solve :
  ?max_iter:int ->
  ?time_limit:float ->
  ?eta_mode:bool ->
  ?refactor_every:int ->
  Lp.std ->
  result
(** Solve the continuous relaxation of [std] (integrality is ignored).
    [time_limit] is wall-clock seconds.  [eta_mode] (default [true]) and
    [refactor_every] (default 64) as in {!create}. *)

(** {1 Incremental interface (for branch-and-bound)} *)

type t
(** A live solver instance: a model plus current basis, bounds, and basic
    values.  Bounds may be tightened/relaxed between calls to {!reoptimize};
    the basis is reused (warm start). *)

val create : ?eta_mode:bool -> ?refactor_every:int -> Lp.std -> t
(** Build an instance positioned at the dual-feasible all-slack basis.
    Integrality markers in [std] are ignored here.

    [eta_mode] (default [true]) selects the product-form basis updates;
    [false] maintains a dense [B⁻¹] per pivot (the pre-eta behavior).
    [refactor_every] (default 64, must be ≥ 1) bounds the eta-file
    length before the dense inverse is rebuilt; an out-of-tolerance
    basic-value residual at the periodic resync triggers an earlier
    rebuild regardless.  Only meaningful in eta mode.
    @raise Invalid_argument when [refactor_every < 1]. *)

val copy : t -> t
(** Independent snapshot: same model, same current basis/bounds/values,
    but no mutable state shared with the original — the copy and the
    original can be reoptimized concurrently (e.g. on different domains).
    Immutable model data (costs, matrix columns, right-hand side) is
    shared, so a copy is O(rows² + cols), dominated by the basis
    inverse.  A copy of a root-optimal instance is a valid warm start
    for any subtree of a branch-and-bound search: the basis stays dual
    feasible under the subtree's bound changes. *)

val nrows : t -> int
val ncols : t -> int

val set_bounds : t -> int -> lb:float -> ub:float -> unit
(** Change the bounds of structural variable [j].  Infinite values are
    patched as in {!create}.  Takes effect at the next {!reoptimize}. *)

val bounds : t -> int -> float * float
(** Current (possibly patched) bounds of structural variable [j]. *)

val reoptimize : ?max_iter:int -> ?deadline:float -> t -> status
(** Recompute basic values under the current bounds and run the dual
    simplex to optimality.  [deadline] is an absolute timestamp on the
    [Obs.Clock.now] (monotone wall-clock) scale. *)

val objective : t -> float
(** Objective value of the current (last reoptimized) point. *)

val primal_value : t -> int -> float
(** Current value of structural variable [j]. *)

val primal : t -> float array
(** All structural values, freshly allocated. *)

val iterations : t -> int
(** Total simplex iterations performed by this instance so far. *)

val refactorizations : t -> int
(** Total basis refactorizations (cadence, drift-triggered and
    numerical-recovery rebuilds) performed by this instance so far. *)

val drift_rebuilds : t -> int
(** Refactorizations forced by the periodic basic-value resync detecting
    drift beyond tolerance — runtime evidence of ill-conditioning (the
    [N102] diagnostic of [Vpart_analysis.Numerics_lint]).  Subset of
    {!refactorizations}; always 0 in dense mode. *)

val recovery_rebuilds : t -> int
(** Refactorizations forced by a rejected (below-tolerance) pivot —
    numerical-recovery rebuilds, the other [N102] evidence source. *)

val eta_applications : t -> int
(** Total eta-matrix applications (ftran/btran passes through eta-file
    entries) performed by this instance so far; 0 in dense mode.
    Mirrored in the [simplex.eta_applications] observability counter. *)

val eta_length : t -> int
(** Current eta-file length (pivots since the last refactorization);
    always 0 in dense mode. *)

val max_eta_length : t -> int
(** High-water eta-file length over the instance's lifetime — the
    [simplex.eta_len] observability gauge. *)

(** {1 Dual information}

    Available after a successful {!reoptimize}; both are freshly computed
    (O(rows²)). *)

val duals : t -> float array
(** Dual values [y = c_B·B⁻¹], one per row: the shadow price of each
    constraint at the current basis. *)

val reduced_costs : t -> float array
(** Reduced costs [d_j = c_j - y·A_j] of the structural variables.  At an
    optimum, complementary slackness holds: a variable strictly between its
    bounds has (numerically) zero reduced cost, one at its lower bound has
    [d_j >= 0], one at its upper bound has [d_j <= 0]. *)

val farkas_ray : t -> float array option
(** After a {!reoptimize} that returned [Infeasible]: the row [e_r B⁻¹] of
    the basis inverse for the unrepairable basic variable — a Farkas-style
    multiplier vector (one entry per constraint row) from which primal
    infeasibility can be re-derived independently (see
    [Vpart_certify.Certify.farkas_proves_infeasible]).  [None] before the
    first reoptimize or when the last reoptimize did not prove
    infeasibility.  Cleared at the start of every reoptimize. *)

(** {1 Primal method}

    Exposed mainly for testing and for completeness of the library; the
    vertical-partitioning pipeline only exercises the dual method. *)

val primal_simplex : ?max_iter:int -> ?deadline:float -> t -> status
(** Run primal pivots from the current point, which must be primal feasible
    (e.g. after a successful {!reoptimize}).  Useful after objective-free
    modifications; returns [Unbounded] when the improving ray is limited
    only by a patched infinite bound. *)

(** Bounded-variable simplex solver over {!Vpart_lp.Lp.std} models.

    The implementation is a revised simplex supporting both the {e dual}
    and {e primal} methods on variables with general (boxed) bounds, over
    a pluggable {e basis kernel} ({!kernel}):

    - [Sparse] (default): the basis is held as a sparse LU factorization
      with Markowitz pivoting ({!Sparse_lu}), refreshed every
      [refactor_every] pivots; between refactorizations pivots are
      layered on top as product-form {e eta} updates.  ftran/btran cost
      O(nnz(L)+nnz(U)) instead of O(rows²), no dense inverse is ever
      allocated, and pricing scatters the pivot row through the row-major
      matrix so a pivot costs O(nonzeros touched) rather than O(cols).
      Pricing defaults to devex reference weights.
    - [Eta]: a dense inverse [B₀⁻¹] from the last refactorization plus an
      eta file applied on every ftran/btran, folded back into the dense
      inverse at the cadence.  The PR-5 kernel, kept as a measured
      baseline.
    - [Dense]: a dense [B⁻¹] updated per pivot by Gauss-Jordan — the
      original kernel, bit-identical to the pre-eta code path; the
      reference for numerical cross-checks.

    The dual method is the workhorse: starting from the all-slack basis, the
    solver first places every nonbasic variable on the bound that makes its
    reduced cost sign-feasible (infinite bounds are patched to a large
    constant, so this placement always exists), which makes the start dual
    feasible; dual pivots then restore primal feasibility.  Because reduced
    costs do not depend on variable bounds, any basis stays dual feasible
    under arbitrary bound changes — which is exactly what branch-and-bound
    needs for warm starts ({!Vpart_mip.Mip}).

    Anti-cycling: Bland's rule is engaged after a run of degenerate pivots.
    Numerical safety: candidate pivots below a pivot tolerance are rejected,
    the basis is refactorized on demand, and basic values / reduced costs
    are recomputed from scratch periodically.  A sparse factorization that
    fails on a (near-)singular basis falls back to a dense rebuild when the
    model is small enough to afford one. *)

type status =
  | Optimal        (** primal and dual feasible within tolerances *)
  | Infeasible     (** primal infeasible (dual unbounded) *)
  | Unbounded      (** a structural variable rests on a patched infinite bound *)
  | Iter_limit
  | Time_limit
  | Numerical      (** pivoting stalled; result untrustworthy *)

val string_of_status : status -> string

type kernel =
  | Dense   (** dense B⁻¹, Gauss-Jordan update per pivot (pre-eta baseline) *)
  | Eta     (** dense B₀⁻¹ + product-form eta file, folded at the cadence *)
  | Sparse  (** Markowitz sparse LU + eta updates; no dense inverse *)

val string_of_kernel : kernel -> string

val kernel_of_string : string -> kernel option
(** Parses ["dense"], ["eta"], ["sparse"]; [None] otherwise. *)

type pricing =
  | Dantzig  (** most-violated row (dual) / most-improving column (primal) *)
  | Devex    (** dual devex: violation² over reference weights *)

val string_of_pricing : pricing -> string

val pricing_of_string : string -> pricing option
(** Parses ["dantzig"], ["devex"]; [None] otherwise. *)

type result = {
  status : status;
  x : float array;     (** structural variable values (length [ncols]) *)
  obj : float;         (** minimization objective incl. constant *)
  iterations : int;
}

val solve :
  ?max_iter:int ->
  ?time_limit:float ->
  ?kernel:kernel ->
  ?pricing:pricing ->
  ?refactor_every:int ->
  Lp.std ->
  result
(** Solve the continuous relaxation of [std] (integrality is ignored).
    [time_limit] is wall-clock seconds.  [kernel], [pricing] and
    [refactor_every] as in {!create}. *)

(** {1 Incremental interface (for branch-and-bound)} *)

type t
(** A live solver instance: a model plus current basis, bounds, and basic
    values.  Bounds may be tightened/relaxed between calls to {!reoptimize};
    the basis is reused (warm start). *)

(** Reusable float arena for repeated {!create} calls (the batch
    service's steady state).  A workspace owns one growable Float64
    buffer; {!create} carves its dense vectors (costs, bounds, basic
    values, reduced costs, scratch) out of it as zero-filled views
    instead of allocating, so a steady-state solve loop stops paying
    per-solve major-heap allocations for the float payload.  Because
    the carved views are zero-filled exactly like fresh allocations,
    a pooled instance is bit-identical to a fresh one (enforced by
    [test/test_simplex.ml]).

    A workspace must back at most one live instance at a time: each
    {!create} re-carves the buffer, invalidating the previous instance
    drawn from the same workspace {e and any} {!copy} made of it (a
    copy shares the original's immutable cost/rhs views).  {!copy}
    itself always allocates fresh storage and never draws from a
    workspace. *)
module Workspace : sig
  type t

  val create : unit -> t
end

val create : ?workspace:Workspace.t -> ?kernel:kernel -> ?pricing:pricing ->
  ?refactor_every:int -> Lp.std -> t
(** Build an instance positioned at the dual-feasible all-slack basis.
    Integrality markers in [std] are ignored here.

    [workspace] pools the instance's dense float storage across calls;
    see {!Workspace}.  [kernel] (default [Sparse]) selects the basis
    representation; see the module documentation.  [pricing] defaults
    to [Devex] for the sparse kernel and [Dantzig] otherwise (so the
    dense kernel reproduces the pre-eta pivot sequence bit-identically).
    [refactor_every] (default 32, must be ≥ 1) bounds the eta-file
    length before the basis is refactorized (sparse) or the file is
    folded (eta); an out-of-tolerance basic-value residual at the
    periodic resync triggers an earlier rebuild regardless.  Ignored by
    the dense kernel.
    @raise Invalid_argument when [refactor_every < 1]. *)

val copy : t -> t
(** Independent snapshot: same model, same current basis/bounds/values,
    but no mutable state shared with the original — the copy and the
    original can be reoptimized concurrently (e.g. on different domains).
    Immutable model data (costs, matrix, right-hand side), eta records
    and LU factors are shared, so a sparse-kernel copy is O(rows + cols);
    with a dense kernel the inverse copy dominates at O(rows²).  A copy
    of a root-optimal instance is a valid warm start for any subtree of a
    branch-and-bound search: the basis stays dual feasible under the
    subtree's bound changes. *)

val nrows : t -> int
val ncols : t -> int

val set_bounds : t -> int -> lb:float -> ub:float -> unit
(** Change the bounds of structural variable [j].  Infinite values are
    patched as in {!create}.  Takes effect at the next {!reoptimize}. *)

val bounds : t -> int -> float * float
(** Current (possibly patched) bounds of structural variable [j]. *)

val reoptimize : ?max_iter:int -> ?deadline:float -> t -> status
(** Recompute basic values under the current bounds and run the dual
    simplex to optimality.  [deadline] is an absolute timestamp on the
    [Obs.Clock.now] (monotone wall-clock) scale. *)

val objective : t -> float
(** Objective value of the current (last reoptimized) point. *)

val primal_value : t -> int -> float
(** Current value of structural variable [j]. *)

val primal : t -> float array
(** All structural values, freshly allocated. *)

val iterations : t -> int
(** Total simplex iterations performed by this instance so far. *)

val refactorizations : t -> int
(** Total basis refactorizations (cadence, drift-triggered and
    numerical-recovery rebuilds) performed by this instance so far. *)

val drift_rebuilds : t -> int
(** Refactorizations forced by the periodic basic-value resync detecting
    drift beyond tolerance — runtime evidence of ill-conditioning (the
    [N102] diagnostic of [Vpart_analysis.Numerics_lint]).  Subset of
    {!refactorizations}; always 0 in the dense kernel. *)

val recovery_rebuilds : t -> int
(** Refactorizations forced by a rejected (below-tolerance) pivot —
    numerical-recovery rebuilds, the other [N102] evidence source. *)

val refactor_seconds : t -> float
(** Wall-clock seconds spent inside basis refactorizations (sparse LU
    factor and dense Gauss-Jordan rebuilds; eta folds excluded) — the
    refactorization-time column of the [simplex-kernel] bench job. *)

val eta_applications : t -> int
(** Total eta-matrix applications (ftran/btran passes through eta-file
    entries) performed by this instance so far; 0 in the dense kernel.
    Mirrored in the [simplex.eta_applications] observability counter. *)

val eta_length : t -> int
(** Current eta-file length (pivots since the last refactorization);
    always 0 in the dense kernel. *)

val max_eta_length : t -> int
(** High-water eta-file length over the instance's lifetime — the
    [simplex.eta_len] observability gauge. *)

val lu_nnz : t -> int
(** Stored nonzeros of the current sparse LU factors (the
    [simplex.lu_nnz] observability gauge); 0 when no LU is live (dense
    and eta kernels, or after a sparse singular-basis fallback). *)

(** {1 Dual information}

    Available after a successful {!reoptimize}; both are freshly computed
    (one btran plus a column sweep). *)

val duals : t -> float array
(** Dual values [y = c_B·B⁻¹], one per row: the shadow price of each
    constraint at the current basis. *)

val reduced_costs : t -> float array
(** Reduced costs [d_j = c_j - y·A_j] of the structural variables.  At an
    optimum, complementary slackness holds: a variable strictly between its
    bounds has (numerically) zero reduced cost, one at its lower bound has
    [d_j >= 0], one at its upper bound has [d_j <= 0]. *)

val farkas_ray : t -> float array option
(** After a {!reoptimize} that returned [Infeasible]: the row [e_r B⁻¹] of
    the basis inverse for the unrepairable basic variable — a Farkas-style
    multiplier vector (one entry per constraint row) from which primal
    infeasibility can be re-derived independently (see
    [Vpart_certify.Certify.farkas_proves_infeasible]).  [None] before the
    first reoptimize or when the last reoptimize did not prove
    infeasibility.  Cleared at the start of every reoptimize. *)

(** {1 Primal method}

    Exposed mainly for testing and for completeness of the library; the
    vertical-partitioning pipeline only exercises the dual method. *)

val primal_simplex : ?max_iter:int -> ?deadline:float -> t -> status
(** Run primal pivots from the current point, which must be primal feasible
    (e.g. after a successful {!reoptimize}).  Useful after objective-free
    modifications; returns [Unbounded] when the improving ray is limited
    only by a patched infinite bound. *)

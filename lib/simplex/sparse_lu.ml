(* Right-looking sparse LU with Markowitz pivoting.

   The active submatrix lives in dynamic sparse columns (exact: only
   active-row entries, rebuilt on every update) plus per-row lists of the
   columns whose pattern ever included the row (append-only, so they may
   carry stale references; membership is re-validated by scanning the
   column before use).  Row/column nonzero counts are exact, and columns
   are bucketed by count in doubly-linked lists so the pivot search walks
   the sparsest columns first.

   At step k the search examines buckets in increasing column count,
   collecting up to [search_cols] candidate columns with an acceptable
   entry (|a_ij| >= tau * colmax_j), and takes the entry minimizing the
   Markowitz cost (rowcnt-1)(colcnt-1), largest magnitude on ties.  The
   search stops early once the best cost cannot be beaten by the next
   bucket — the standard Suhl-style compromise between fill optimality
   and search time.

   Elimination is classic right-looking: the pivot column's multipliers
   become column k of L, the pivot row becomes row k of U, and every
   active column containing the pivot row is rebuilt through a scatter/
   gather workspace (exact cancellations are dropped; fill entries update
   the row lists and counts).  After the last step the stored indices are
   remapped into pivot-order space so the triangular solves need no
   indirection. *)

type t = {
  m : int;
  lcol_idx : int array array;  (* step k -> below-diagonal column of L *)
  lcol_val : float array array;
  urow_idx : int array array;  (* step k -> right-of-diagonal row of U *)
  urow_val : float array array;
  upiv : float array;          (* diagonal of U, pivot order *)
  rowperm : int array;         (* step -> original constraint row *)
  colperm : int array;         (* step -> basis position *)
  nnz : int;
}

let abs_tol = 1e-12
let tau = 0.1
let search_cols = 8

let identity m =
  {
    m;
    lcol_idx = Array.make m [||];
    lcol_val = Array.make m [||];
    urow_idx = Array.make m [||];
    urow_val = Array.make m [||];
    upiv = Array.make m 1.;
    rowperm = Array.init m Fun.id;
    colperm = Array.init m Fun.id;
    nnz = m;
  }

let size t = t.m
let nnz t = t.nnz

exception Singular

let factor (cols_idx : int array array) (cols_val : float array array) =
  let m = Array.length cols_idx in
  if m = 0 then Some (identity 0)
  else begin
    (* Dynamic columns: exact active-submatrix contents. *)
    let c_idx = Array.map Array.copy cols_idx in
    let c_val = Array.map Array.copy cols_val in
    let c_len = Array.map Array.length cols_idx in
    (* Append-only row lists (possibly stale) + exact row counts. *)
    let r_cols = Array.make m [||] in
    let r_len = Array.make m 0 in
    let rowcnt = Array.make m 0 in
    let rpush i j =
      if r_len.(i) >= Array.length r_cols.(i) then begin
        let grown = Array.make (max 4 (2 * Array.length r_cols.(i))) 0 in
        Array.blit r_cols.(i) 0 grown 0 r_len.(i);
        r_cols.(i) <- grown
      end;
      r_cols.(i).(r_len.(i)) <- j;
      r_len.(i) <- r_len.(i) + 1
    in
    for j = 0 to m - 1 do
      Array.iter
        (fun i ->
           rowcnt.(i) <- rowcnt.(i) + 1;
           rpush i j)
        cols_idx.(j)
    done;
    (* Columns bucketed by nonzero count (doubly-linked lists). *)
    let colcnt = Array.copy c_len in
    let head = Array.make (m + 1) (-1) in
    let nxt = Array.make m (-1) and prv = Array.make m (-1) in
    let cmin = ref 1 in
    let unlink j =
      let c = colcnt.(j) in
      if prv.(j) >= 0 then nxt.(prv.(j)) <- nxt.(j) else head.(c) <- nxt.(j);
      if nxt.(j) >= 0 then prv.(nxt.(j)) <- prv.(j);
      prv.(j) <- -1;
      nxt.(j) <- -1
    in
    let link j =
      let c = colcnt.(j) in
      prv.(j) <- -1;
      nxt.(j) <- head.(c);
      if head.(c) >= 0 then prv.(head.(c)) <- j;
      head.(c) <- j;
      if c >= 1 && c < !cmin then cmin := c
    in
    for j = 0 to m - 1 do
      link j
    done;
    let col_active = Array.make m true in
    (* Outputs (original index space until the final remap). *)
    let lcol_idx = Array.make m [||] and lcol_val = Array.make m [||] in
    let urow_idx = Array.make m [||] and urow_val = Array.make m [||] in
    let upiv = Array.make m 0. in
    let rowperm = Array.make m (-1) and colperm = Array.make m (-1) in
    (* Scatter workspace for column updates. *)
    let wval = Array.make m 0. and wmark = Array.make m false in
    let wpat = Array.make m 0 in
    match
      for k = 0 to m - 1 do
        (* ---- pivot search ---- *)
        let best_cost = ref max_int
        and best_col = ref (-1)
        and best_row = ref (-1)
        and best_mag = ref 0. in
        let cands = ref 0 in
        (try
           let cnt = ref (max 1 !cmin) in
           let first_nonempty = ref false in
           while !cnt <= m do
             (if !best_col >= 0 && !best_cost <= (!cnt - 1) * (!cnt - 1) then
                raise Exit);
             let j = ref head.(!cnt) in
             if !j >= 0 && not !first_nonempty then begin
               first_nonempty := true;
               cmin := !cnt
             end;
             while !j >= 0 do
               let jj = !j in
               let cmax = ref 0. in
               for e = 0 to c_len.(jj) - 1 do
                 let a = Float.abs c_val.(jj).(e) in
                 if a > !cmax then cmax := a
               done;
               if !cmax >= abs_tol then begin
                 let thresh = tau *. !cmax in
                 let found = ref false in
                 for e = 0 to c_len.(jj) - 1 do
                   let a = Float.abs c_val.(jj).(e) in
                   if a >= thresh then begin
                     let i = c_idx.(jj).(e) in
                     let cost = (rowcnt.(i) - 1) * (!cnt - 1) in
                     if
                       cost < !best_cost
                       || (cost = !best_cost && a > !best_mag)
                     then begin
                       best_cost := cost;
                       best_col := jj;
                       best_row := i;
                       best_mag := a
                     end;
                     found := true
                   end
                 done;
                 if !found then incr cands
               end;
               if !best_cost = 0 || !cands >= search_cols then raise Exit;
               j := nxt.(jj)
             done;
             incr cnt
           done
         with Exit -> ());
        if !best_col < 0 then raise Singular;
        let pc = !best_col and pr = !best_row in
        colperm.(k) <- pc;
        rowperm.(k) <- pr;
        (* ---- pivot column -> L column k (multipliers) ---- *)
        let piv = ref 0. in
        for e = 0 to c_len.(pc) - 1 do
          if c_idx.(pc).(e) = pr then piv := c_val.(pc).(e)
        done;
        let piv = !piv in
        upiv.(k) <- piv;
        let nl = c_len.(pc) - 1 in
        let li = Array.make (max nl 0) 0 and lv = Array.make (max nl 0) 0. in
        let p = ref 0 in
        for e = 0 to c_len.(pc) - 1 do
          let i = c_idx.(pc).(e) in
          rowcnt.(i) <- rowcnt.(i) - 1;
          if i <> pr then begin
            li.(!p) <- i;
            lv.(!p) <- c_val.(pc).(e) /. piv;
            incr p
          end
        done;
        lcol_idx.(k) <- li;
        lcol_val.(k) <- lv;
        unlink pc;
        col_active.(pc) <- false;
        colcnt.(pc) <- 0;
        c_len.(pc) <- 0;
        c_idx.(pc) <- [||];
        c_val.(pc) <- [||];
        (* ---- pivot row -> U row k; rank-1 update of touched columns ---- *)
        let nu = ref 0 in
        let ui = ref (Array.make 8 0) and uv = ref (Array.make 8 0.) in
        for e = 0 to r_len.(pr) - 1 do
          let jj = r_cols.(pr).(e) in
          if col_active.(jj) then begin
            let uval = ref 0. and present = ref false in
            for q = 0 to c_len.(jj) - 1 do
              if c_idx.(jj).(q) = pr then begin
                uval := c_val.(jj).(q);
                present := true
              end
            done;
            (* the row list is append-only: [jj] may be stale (the entry
               cancelled in an earlier update) or a duplicate already
               consumed this step (its pr entry was dropped below) *)
            if !present then begin
              if !nu >= Array.length !ui then begin
                let gi = Array.make (2 * Array.length !ui) 0 in
                let gv = Array.make (2 * Array.length !uv) 0. in
                Array.blit !ui 0 gi 0 !nu;
                Array.blit !uv 0 gv 0 !nu;
                ui := gi;
                uv := gv
              end;
              !ui.(!nu) <- jj;
              !uv.(!nu) <- !uval;
              incr nu;
              (* column jj := column jj - l * uval, dropping row pr *)
              let npat = ref 0 in
              for q = 0 to c_len.(jj) - 1 do
                let i = c_idx.(jj).(q) in
                if i <> pr then begin
                  wval.(i) <- c_val.(jj).(q);
                  wmark.(i) <- true;
                  wpat.(!npat) <- i;
                  incr npat
                end
              done;
              let u = !uval in
              for q = 0 to nl - 1 do
                let i = li.(q) in
                let delta = -.(lv.(q) *. u) in
                if wmark.(i) then wval.(i) <- wval.(i) +. delta
                else begin
                  wval.(i) <- delta;
                  wmark.(i) <- true;
                  wpat.(!npat) <- i;
                  incr npat;
                  rowcnt.(i) <- rowcnt.(i) + 1;
                  rpush i jj
                end
              done;
              let nlen = ref 0 in
              for q = 0 to !npat - 1 do
                if wval.(wpat.(q)) <> 0. then incr nlen
              done;
              let gi = Array.make !nlen 0 and gv = Array.make !nlen 0. in
              let p2 = ref 0 in
              for q = 0 to !npat - 1 do
                let i = wpat.(q) in
                if wval.(i) <> 0. then begin
                  gi.(!p2) <- i;
                  gv.(!p2) <- wval.(i);
                  incr p2
                end
                else rowcnt.(i) <- rowcnt.(i) - 1;
                wmark.(i) <- false;
                wval.(i) <- 0.
              done;
              c_idx.(jj) <- gi;
              c_val.(jj) <- gv;
              c_len.(jj) <- !nlen;
              unlink jj;
              colcnt.(jj) <- !nlen;
              link jj
            end
          end
        done;
        urow_idx.(k) <- Array.sub !ui 0 !nu;
        urow_val.(k) <- Array.sub !uv 0 !nu;
        rowcnt.(pr) <- 0;
        r_len.(pr) <- 0;
        r_cols.(pr) <- [||]
      done
    with
    | exception Singular -> None
    | () ->
      (* Remap stored indices into pivot-order space: L rows through the
         row permutation, U columns through the column permutation.  All
         remapped indices are > k (rows/columns still active at step k
         are eliminated later), which is what the solves rely on. *)
      let rowinv = Array.make m 0 and colinv = Array.make m 0 in
      for k = 0 to m - 1 do
        rowinv.(rowperm.(k)) <- k;
        colinv.(colperm.(k)) <- k
      done;
      let total = ref m in
      for k = 0 to m - 1 do
        let li = lcol_idx.(k) in
        for e = 0 to Array.length li - 1 do
          li.(e) <- rowinv.(li.(e))
        done;
        let ui = urow_idx.(k) in
        for e = 0 to Array.length ui - 1 do
          ui.(e) <- colinv.(ui.(e))
        done;
        total := !total + Array.length li + Array.length ui
      done;
      Some
        {
          m;
          lcol_idx;
          lcol_val;
          urow_idx;
          urow_val;
          upiv;
          rowperm;
          colperm;
          nnz = !total;
        }
  end

(* Solve B w = b:  P B Q = L U, so L U (Qᵀw) = P b.  Forward scatter
   through L skips zero positions — a sparse right-hand side touches only
   its reach, Gilbert–Peierls style — then a backward gather through U. *)
let ftran t ~work (b : Vec.t) =
  let m = t.m in
  let y : Vec.t = work in
  for k = 0 to m - 1 do
    y.{k} <- b.{t.rowperm.(k)}
  done;
  for k = 0 to m - 1 do
    let yk = y.{k} in
    if yk <> 0. then begin
      let li = t.lcol_idx.(k) and lv = t.lcol_val.(k) in
      for e = 0 to Array.length li - 1 do
        y.{li.(e)} <- y.{li.(e)} -. (lv.(e) *. yk)
      done
    end
  done;
  for k = m - 1 downto 0 do
    let ui = t.urow_idx.(k) and uv = t.urow_val.(k) in
    let acc = ref y.{k} in
    for e = 0 to Array.length ui - 1 do
      acc := !acc -. (uv.(e) *. y.{ui.(e)})
    done;
    y.{k} <- !acc /. t.upiv.(k)
  done;
  for k = 0 to m - 1 do
    b.{t.colperm.(k)} <- y.{k}
  done

(* Solve Bᵀ v = u:  Uᵀ Lᵀ (P v) = Qᵀ u.  Forward scatter through Uᵀ
   (zero-skipping, so a near-unit right-hand side stays sparse), backward
   gather through Lᵀ. *)
let btran t ~work (u : Vec.t) =
  let m = t.m in
  let y : Vec.t = work in
  for k = 0 to m - 1 do
    y.{k} <- u.{t.colperm.(k)}
  done;
  for k = 0 to m - 1 do
    let yk = y.{k} /. t.upiv.(k) in
    y.{k} <- yk;
    if yk <> 0. then begin
      let ui = t.urow_idx.(k) and uv = t.urow_val.(k) in
      for e = 0 to Array.length ui - 1 do
        y.{ui.(e)} <- y.{ui.(e)} -. (uv.(e) *. yk)
      done
    end
  done;
  for k = m - 1 downto 0 do
    let li = t.lcol_idx.(k) and lv = t.lcol_val.(k) in
    let acc = ref y.{k} in
    for e = 0 to Array.length li - 1 do
      acc := !acc -. (lv.(e) *. y.{li.(e)})
    done;
    y.{k} <- !acc
  done;
  for k = 0 to m - 1 do
    u.{t.rowperm.(k)} <- y.{k}
  done

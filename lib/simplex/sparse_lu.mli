(** Sparse LU factorization of a simplex basis with Markowitz pivoting.

    [factor] computes [P B Q = L U] for the m×m basis matrix [B] given by
    its sparse columns: at every elimination step the pivot is chosen to
    minimize the Markowitz count [(r-1)(c-1)] among entries passing a
    relative threshold test (threshold partial pivoting, τ = 0.1), which
    bounds fill-in while keeping the factors stable.  [L] is unit lower
    triangular stored column-wise, [U] upper triangular stored row-wise,
    both in pivot-order index space, so the four triangular solves run in
    O(nnz(L) + nnz(U) + m):

    - {!ftran} solves [B w = b] (forward scatter through L with zero
      skipping — the Gilbert–Peierls sparse right-hand-side benefit —
      then a backward gather through U);
    - {!btran} solves [Bᵀ v = u] (forward scatter through Uᵀ with zero
      skipping, then a backward gather through Lᵀ).

    Factors are immutable after construction: {!Simplex.copy} shares them
    across branch-and-bound worker domains, and pivot updates are layered
    on top as product-form etas rather than by mutating L/U. *)

type t

val factor : int array array -> float array array -> t option
(** [factor cols_idx cols_val] factors the square matrix whose [j]-th
    column has row indices [cols_idx.(j)] and values [cols_val.(j)]
    (one entry per row, unordered).  Returns [None] when the matrix is
    structurally or numerically singular (no remaining entry passes the
    absolute pivot tolerance 1e-12). *)

val identity : int -> t
(** Trivial factors of the m×m identity — the all-slack start basis. *)

val size : t -> int
(** Dimension m. *)

val nnz : t -> int
(** Total stored nonzeros of L and U (including the m unit/pivot
    diagonals) — the [simplex.lu_nnz] observability gauge. *)

val ftran : t -> work:Vec.t -> Vec.t -> unit
(** [ftran lu ~work b] overwrites [b] (length m, constraint-row space)
    with [B⁻¹ b] (basis-position space).  [work] is caller-provided
    scratch of length m; its contents are clobbered. *)

val btran : t -> work:Vec.t -> Vec.t -> unit
(** [btran lu ~work u] overwrites [u] (length m, basis-position space)
    with [B⁻ᵀ u] (constraint-row space).  [work] as in {!ftran}. *)

open Vpart

(* ------------------------------------------------------------------ *)
(* Schema: TPC-C v5, widths from the spec's datatypes                  *)
(* ------------------------------------------------------------------ *)

let schema_spec =
  [ ( "Warehouse",
      [ ("W_ID", 4); ("W_NAME", 10); ("W_STREET_1", 20); ("W_STREET_2", 20);
        ("W_CITY", 20); ("W_STATE", 2); ("W_ZIP", 9); ("W_TAX", 4); ("W_YTD", 8);
      ] );
    ( "District",
      [ ("D_ID", 4); ("D_W_ID", 4); ("D_NAME", 10); ("D_STREET_1", 20);
        ("D_STREET_2", 20); ("D_CITY", 20); ("D_STATE", 2); ("D_ZIP", 9);
        ("D_TAX", 4); ("D_YTD", 8); ("D_NEXT_O_ID", 4);
      ] );
    ( "Customer",
      [ ("C_ID", 4); ("C_D_ID", 4); ("C_W_ID", 4); ("C_FIRST", 16);
        ("C_MIDDLE", 2); ("C_LAST", 16); ("C_STREET_1", 20); ("C_STREET_2", 20);
        ("C_CITY", 20); ("C_STATE", 2); ("C_ZIP", 9); ("C_PHONE", 16);
        ("C_SINCE", 8); ("C_CREDIT", 2); ("C_CREDIT_LIM", 8); ("C_DISCOUNT", 4);
        ("C_BALANCE", 8); ("C_YTD_PAYMENT", 8); ("C_PAYMENT_CNT", 4);
        ("C_DELIVERY_CNT", 4); ("C_DATA", 500);
      ] );
    ( "History",
      [ ("H_C_ID", 4); ("H_C_D_ID", 4); ("H_C_W_ID", 4); ("H_D_ID", 4);
        ("H_W_ID", 4); ("H_DATE", 8); ("H_AMOUNT", 4); ("H_DATA", 24);
      ] );
    ("NewOrder", [ ("NO_O_ID", 4); ("NO_D_ID", 4); ("NO_W_ID", 4) ]);
    ( "Order",
      [ ("O_ID", 4); ("O_D_ID", 4); ("O_W_ID", 4); ("O_C_ID", 4);
        ("O_ENTRY_D", 8); ("O_CARRIER_ID", 4); ("O_OL_CNT", 4); ("O_ALL_LOCAL", 4);
      ] );
    ( "OrderLine",
      [ ("OL_O_ID", 4); ("OL_D_ID", 4); ("OL_W_ID", 4); ("OL_NUMBER", 4);
        ("OL_I_ID", 4); ("OL_SUPPLY_W_ID", 4); ("OL_DELIVERY_D", 8);
        ("OL_QUANTITY", 4); ("OL_AMOUNT", 4); ("OL_DIST_INFO", 24);
      ] );
    ( "Item",
      [ ("I_ID", 4); ("I_IM_ID", 4); ("I_NAME", 24); ("I_PRICE", 4);
        ("I_DATA", 50);
      ] );
    ( "Stock",
      [ ("S_I_ID", 4); ("S_W_ID", 4); ("S_QUANTITY", 4); ("S_DIST_01", 24);
        ("S_DIST_02", 24); ("S_DIST_03", 24); ("S_DIST_04", 24);
        ("S_DIST_05", 24); ("S_DIST_06", 24); ("S_DIST_07", 24);
        ("S_DIST_08", 24); ("S_DIST_09", 24); ("S_DIST_10", 24); ("S_YTD", 8);
        ("S_ORDER_CNT", 4); ("S_REMOTE_CNT", 4); ("S_DATA", 50);
      ] );
  ]

let schema = lazy (Schema.make schema_spec)

let attr table name = Schema.find_attr (Lazy.force schema) table name

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let cardinalities =
  [ ("Warehouse", 1); ("District", 10); ("Customer", 30_000);
    ("History", 30_000); ("NewOrder", 9_000); ("Order", 30_000);
    ("OrderLine", 300_000); ("Item", 100_000); ("Stock", 100_000);
  ]

let transaction_names =
  [ "NewOrder"; "Payment"; "OrderStatus"; "Delivery"; "StockLevel" ]

(* Query builder helpers.  [table] names are resolved lazily against the
   schema; [rows] follows the paper: 1 unless the query iterates or
   aggregates, in which case 10. *)
let build_workload () =
  let s = Lazy.force schema in
  let tid name = Schema.find_table s name in
  let a table name = Schema.find_attr s table name in
  let queries = ref [] and count = ref 0 in
  let add_query name kind tables attrs =
    let tables = List.map (fun (t, rows) -> (tid t, rows)) tables in
    queries := { Workload.q_name = name; kind; freq = 1.0; tables; attrs } :: !queries;
    incr count;
    !count - 1
  in
  let read name ~rows table attrs =
    add_query name Workload.Read [ (table, rows) ]
      (List.map (fun n -> a table n) attrs)
  in
  (* UPDATE/DELETE split (§5.2): a read sub-query over what the statement
     reads and a write sub-query over what it writes. *)
  let update name ~rows table ~reads ~writes =
    let r =
      add_query (name ^ ":r") Workload.Read [ (table, rows) ]
        (List.map (fun n -> a table n) reads)
    in
    let w =
      add_query (name ^ ":w") Workload.Write [ (table, rows) ]
        (List.map (fun n -> a table n) writes)
    in
    [ r; w ]
  in
  let insert name ~rows table =
    [ add_query name Workload.Write [ (table, rows) ]
        (List.map (fun ai -> ai) (Schema.attrs_of_table s (tid table)))
    ]
  in
  (* ---------------- New-Order (spec 2.4.2) ---------------- *)
  let new_order =
    List.concat
      [ [ read "no_get_warehouse" ~rows:1. "Warehouse" [ "W_ID"; "W_TAX" ] ];
        [ read "no_get_district" ~rows:1. "District"
            [ "D_W_ID"; "D_ID"; "D_TAX"; "D_NEXT_O_ID" ] ];
        update "no_inc_next_o_id" ~rows:1. "District"
          ~reads:[ "D_W_ID"; "D_ID"; "D_NEXT_O_ID" ]
          ~writes:[ "D_NEXT_O_ID" ];
        [ read "no_get_customer" ~rows:1. "Customer"
            [ "C_W_ID"; "C_D_ID"; "C_ID"; "C_DISCOUNT"; "C_LAST"; "C_CREDIT" ] ];
        insert "no_insert_order" ~rows:1. "Order";
        insert "no_insert_neworder" ~rows:1. "NewOrder";
        [ read "no_get_items" ~rows:10. "Item"
            [ "I_ID"; "I_PRICE"; "I_NAME"; "I_DATA" ] ];
        [ read "no_get_stock" ~rows:10. "Stock"
            [ "S_I_ID"; "S_W_ID"; "S_QUANTITY"; "S_DIST_01"; "S_DIST_02";
              "S_DIST_03"; "S_DIST_04"; "S_DIST_05"; "S_DIST_06"; "S_DIST_07";
              "S_DIST_08"; "S_DIST_09"; "S_DIST_10"; "S_DATA" ] ];
        update "no_update_stock" ~rows:10. "Stock"
          ~reads:[ "S_I_ID"; "S_W_ID" ]
          ~writes:[ "S_QUANTITY"; "S_YTD"; "S_ORDER_CNT"; "S_REMOTE_CNT" ];
        insert "no_insert_orderlines" ~rows:10. "OrderLine";
      ]
  in
  (* ---------------- Payment (spec 2.5.2) ---------------- *)
  let payment =
    List.concat
      [ [ read "pay_get_warehouse" ~rows:1. "Warehouse"
            [ "W_ID"; "W_NAME"; "W_STREET_1"; "W_STREET_2"; "W_CITY"; "W_STATE";
              "W_ZIP" ] ];
        update "pay_inc_w_ytd" ~rows:1. "Warehouse" ~reads:[ "W_ID" ]
          ~writes:[ "W_YTD" ];
        [ read "pay_get_district" ~rows:1. "District"
            [ "D_W_ID"; "D_ID"; "D_NAME"; "D_STREET_1"; "D_STREET_2"; "D_CITY";
              "D_STATE"; "D_ZIP" ] ];
        update "pay_inc_d_ytd" ~rows:1. "District" ~reads:[ "D_W_ID"; "D_ID" ]
          ~writes:[ "D_YTD" ];
        [ read "pay_get_customer" ~rows:1. "Customer"
            [ "C_W_ID"; "C_D_ID"; "C_ID"; "C_FIRST"; "C_MIDDLE"; "C_LAST";
              "C_STREET_1"; "C_STREET_2"; "C_CITY"; "C_STATE"; "C_ZIP";
              "C_PHONE"; "C_SINCE"; "C_CREDIT"; "C_CREDIT_LIM"; "C_DISCOUNT";
              "C_BALANCE" ] ];
        (* C_DATA is read back and rewritten for bad-credit customers;
           balance/counters are blind increments. *)
        update "pay_update_customer" ~rows:1. "Customer"
          ~reads:[ "C_W_ID"; "C_D_ID"; "C_ID"; "C_DATA" ]
          ~writes:[ "C_BALANCE"; "C_YTD_PAYMENT"; "C_PAYMENT_CNT"; "C_DATA" ];
        insert "pay_insert_history" ~rows:1. "History";
      ]
  in
  (* ---------------- Order-Status (spec 2.6.2) ---------------- *)
  let order_status =
    List.concat
      [ [ read "os_get_customer" ~rows:1. "Customer"
            [ "C_W_ID"; "C_D_ID"; "C_ID"; "C_FIRST"; "C_MIDDLE"; "C_LAST";
              "C_BALANCE" ] ];
        [ read "os_get_order" ~rows:1. "Order"
            [ "O_W_ID"; "O_D_ID"; "O_ID"; "O_C_ID"; "O_ENTRY_D"; "O_CARRIER_ID" ] ];
        [ read "os_get_orderlines" ~rows:10. "OrderLine"
            [ "OL_W_ID"; "OL_D_ID"; "OL_O_ID"; "OL_I_ID"; "OL_SUPPLY_W_ID";
              "OL_QUANTITY"; "OL_AMOUNT"; "OL_DELIVERY_D" ] ];
      ]
  in
  (* ---------------- Delivery (spec 2.7.4; one row per district, 10
     districts -> 10 rows per query) ---------------- *)
  let delivery =
    List.concat
      [ [ read "dl_get_neworder" ~rows:10. "NewOrder"
            [ "NO_W_ID"; "NO_D_ID"; "NO_O_ID" ] ];
        update "dl_delete_neworder" ~rows:10. "NewOrder"
          ~reads:[ "NO_W_ID"; "NO_D_ID"; "NO_O_ID" ]
          ~writes:[ "NO_O_ID"; "NO_D_ID"; "NO_W_ID" ];
        [ read "dl_get_order" ~rows:10. "Order"
            [ "O_W_ID"; "O_D_ID"; "O_ID"; "O_C_ID" ] ];
        update "dl_update_order" ~rows:10. "Order"
          ~reads:[ "O_W_ID"; "O_D_ID"; "O_ID" ]
          ~writes:[ "O_CARRIER_ID" ];
        [ read "dl_sum_orderlines" ~rows:10. "OrderLine"
            [ "OL_W_ID"; "OL_D_ID"; "OL_O_ID"; "OL_AMOUNT" ] ];
        update "dl_update_orderlines" ~rows:10. "OrderLine"
          ~reads:[ "OL_W_ID"; "OL_D_ID"; "OL_O_ID" ]
          ~writes:[ "OL_DELIVERY_D" ];
        update "dl_update_customer" ~rows:10. "Customer"
          ~reads:[ "C_W_ID"; "C_D_ID"; "C_ID" ]
          ~writes:[ "C_BALANCE"; "C_DELIVERY_CNT" ];
      ]
  in
  (* ---------------- Stock-Level (spec 2.8.2) ---------------- *)
  let stock_level =
    List.concat
      [ [ read "sl_get_district" ~rows:1. "District"
            [ "D_W_ID"; "D_ID"; "D_NEXT_O_ID" ] ];
        [ read "sl_get_orderlines" ~rows:10. "OrderLine"
            [ "OL_W_ID"; "OL_D_ID"; "OL_O_ID"; "OL_I_ID" ] ];
        [ read "sl_count_stock" ~rows:10. "Stock"
            [ "S_W_ID"; "S_I_ID"; "S_QUANTITY" ] ];
      ]
  in
  let transactions =
    [ { Workload.t_name = "NewOrder"; queries = new_order };
      { Workload.t_name = "Payment"; queries = payment };
      { Workload.t_name = "OrderStatus"; queries = order_status };
      { Workload.t_name = "Delivery"; queries = delivery };
      { Workload.t_name = "StockLevel"; queries = stock_level };
    ]
  in
  Workload.make ~queries:(List.rev !queries) ~transactions

let instance =
  lazy (Instance.make ~name:"TPC-C v5" (Lazy.force schema) (build_workload ()))

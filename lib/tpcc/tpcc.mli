(** The TPC-C v5 problem instance (§5.2 of the paper).

    The schema is the nine TPC-C tables with all 92 attributes; widths are
    derived from the spec's datatypes (4-byte ids/numerics, 8-byte
    dates/money accumulators, declared maxima for variable-width text, so
    e.g. [C_DATA] is 500 bytes).  The workload is the five standard
    transactions (New-Order, Payment, Order-Status, Delivery, Stock-Level)
    with the paper's statistical assumptions:

    - every query runs with frequency 1;
    - a query touches 1 row, or 10 rows when it iterates over a result or
      aggregates (so e.g. the Item lookups of New-Order touch 10 rows);
    - every UPDATE/DELETE is split into a read sub-query over the
      attributes the statement {e reads} (WHERE keys plus values returned
      or combined) and a write sub-query over the attributes it writes.
      Blind increments ([S_YTD = S_YTD + ?]) count as write-only: they can
      be applied at each replica without an application-level read.  This
      matches the placement in the paper's Table 4, where [S_YTD],
      [S_ORDER_CNT] and [S_REMOTE_CNT] land away from New-Order's site. *)

val schema : Vpart.Schema.t Lazy.t

val instance : Vpart.Instance.t Lazy.t
(** The full instance; [|A| = 92], five transactions. *)

val attr : string -> string -> int
(** [attr "Stock" "S_YTD"] — attribute id in {!schema}.
    @raise Not_found on unknown names. *)

val transaction_names : string list
(** In declaration order: NewOrder, Payment, OrderStatus, Delivery,
    StockLevel. *)

val cardinalities : (string * int) list
(** Rows per table for one warehouse (spec §1.2.1, e.g. 100k Stock, 30k
    Customer); used by the storage-engine examples to size simulated
    tables. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type mat = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

let create n : t =
  let v = Bigarray.Array1.create Float64 C_layout n in
  Bigarray.Array1.fill v 0.;
  v

let length (v : t) = Bigarray.Array1.dim v
let fill (v : t) x = Bigarray.Array1.fill v x

let copy (v : t) : t =
  let c = Bigarray.Array1.create Float64 C_layout (Bigarray.Array1.dim v) in
  Bigarray.Array1.blit v c;
  c

let blit (src : t) (dst : t) = Bigarray.Array1.blit src dst
let sub (v : t) pos len : t = Bigarray.Array1.sub v pos len
let of_array (a : float array) : t = Bigarray.Array1.of_array Float64 C_layout a

let to_array (v : t) =
  let n = Bigarray.Array1.dim v in
  Array.init n (fun i -> v.{i})

let sum (v : t) =
  let acc = ref 0. in
  for i = 0 to Bigarray.Array1.dim v - 1 do
    acc := !acc +. v.{i}
  done;
  !acc

let mat_create rows cols : mat =
  let m = Bigarray.Array2.create Float64 C_layout rows cols in
  Bigarray.Array2.fill m 0.;
  m

let mat_empty : mat = Bigarray.Array2.create Float64 C_layout 0 0
let dim1 (m : mat) = Bigarray.Array2.dim1 m
let dim2 (m : mat) = Bigarray.Array2.dim2 m

let mat_copy (m : mat) : mat =
  let c =
    Bigarray.Array2.create Float64 C_layout (Bigarray.Array2.dim1 m)
      (Bigarray.Array2.dim2 m)
  in
  Bigarray.Array2.blit m c;
  c

let row (m : mat) i : t = Bigarray.Array2.slice_left m i

let mat_sum (m : mat) =
  let acc = ref 0. in
  for i = 0 to Bigarray.Array2.dim1 m - 1 do
    for j = 0 to Bigarray.Array2.dim2 m - 1 do
      acc := !acc +. m.{i, j}
    done
  done;
  !acc

(** Flat Float64 vectors and matrices over [Bigarray] (C layout).

    The hot dense structures of the solver stack — simplex work vectors,
    the dense basis inverse, and the cost-model matrices — live in
    bigarrays rather than [float array]/[float array array]: the payload
    is a single unboxed malloc'd block outside the OCaml heap, so the GC
    never scans or copies it, rows of a matrix are contiguous (C layout),
    and buffers can be carved out of a pre-allocated arena
    ({!Simplex.Workspace}) for O(1) steady-state allocation in batch
    solving.

    Element access uses the standard index syntax: [v.{i}] and
    [m.{i, j}].  Unlike [Array.make], {!create} and {!mat_create}
    zero-fill (bigarray memory is otherwise uninitialized).

    Structural polymorphic equality ([=]) on bigarrays compares kind,
    layout, dimensions and contents, so value-level tests work unchanged.
*)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A dense Float64 vector. *)

type mat = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t
(** A dense Float64 matrix, row-major. *)

(** {1 Vectors} *)

val create : int -> t
(** [create n] is a fresh zero-filled vector of length [n]. *)

val length : t -> int

val fill : t -> float -> unit

val copy : t -> t

val blit : t -> t -> unit
(** [blit src dst] copies [src] into [dst]; lengths must match. *)

val sub : t -> int -> int -> t
(** [sub v pos len] is a {e view} sharing storage with [v] — writes
    through either alias are visible in both. *)

val of_array : float array -> t

val to_array : t -> float array

val sum : t -> float
(** Left-to-right sum, same accumulation order as
    [Array.fold_left (+.) 0.]. *)

(** {1 Matrices} *)

val mat_create : int -> int -> mat
(** [mat_create rows cols], zero-filled. *)

val mat_empty : mat
(** The 0×0 matrix (placeholder for kernels that allocate no inverse). *)

val dim1 : mat -> int

val dim2 : mat -> int

val mat_copy : mat -> mat

val row : mat -> int -> t
(** [row m i] is a {e view} of row [i] sharing storage with [m]
    ([Bigarray.Array2.slice_left]). *)

val mat_sum : mat -> float
(** Row-major left-to-right sum: same accumulation order as folding
    [(+.)] over rows then elements of a [float array array]. *)

open Vpart

let schema_spec =
  [ ("Account", [ ("custid", 8); ("name", 64); ("profile", 200) ]);
    ("Saving", [ ("custid", 8); ("bal", 8); ("flags", 4) ]);
    ("Checking", [ ("custid", 8); ("bal", 8); ("overdrafts", 4); ("flags", 4) ]);
  ]

let schema = lazy (Schema.make schema_spec)

let attr table name = Schema.find_attr (Lazy.force schema) table name

let build_workload () =
  let s = Lazy.force schema in
  let tid name = Schema.find_table s name in
  let a table name = Schema.find_attr s table name in
  let queries = ref [] and count = ref 0 in
  let add name kind freq tables attrs =
    queries := { Workload.q_name = name; kind; freq; tables; attrs } :: !queries;
    incr count;
    !count - 1
  in
  let read name table attrs = add name Workload.Read 1. [ (tid table, 1.) ] attrs in
  let write name table attrs =
    add name Workload.Write 1. [ (tid table, 1.) ] attrs
  in
  let lookup prefix =
    (* every transaction starts by resolving the customer by name *)
    read (prefix ^ "_lookup") "Account" [ a "Account" "custid"; a "Account" "name" ]
  in
  (* Balance: read both balances *)
  let balance =
    [ lookup "bal";
      read "bal_sav" "Saving" [ a "Saving" "custid"; a "Saving" "bal" ];
      read "bal_chk" "Checking" [ a "Checking" "custid"; a "Checking" "bal" ];
    ]
  in
  (* DepositChecking: blind increment of the checking balance *)
  let deposit_checking =
    [ lookup "dep";
      read "dep_chk:r" "Checking" [ a "Checking" "custid" ];
      write "dep_chk:w" "Checking" [ a "Checking" "bal" ];
    ]
  in
  (* TransactSavings: read savings balance (overdraft check), then update *)
  let transact_savings =
    [ lookup "ts";
      read "ts_sav:r" "Saving" [ a "Saving" "custid"; a "Saving" "bal" ];
      write "ts_sav:w" "Saving" [ a "Saving" "bal" ];
    ]
  in
  (* Amalgamate: zero the savings/checking of one customer, credit another *)
  let amalgamate =
    [ lookup "am";
      read "am_sav:r" "Saving" [ a "Saving" "custid"; a "Saving" "bal" ];
      read "am_chk:r" "Checking" [ a "Checking" "custid"; a "Checking" "bal" ];
      write "am_sav:w" "Saving" [ a "Saving" "bal" ];
      write "am_chk:w" "Checking" [ a "Checking" "bal" ];
    ]
  in
  (* WriteCheck: read both balances, conditionally penalize, update checking *)
  let write_check =
    [ lookup "wc";
      read "wc_sav" "Saving" [ a "Saving" "custid"; a "Saving" "bal" ];
      read "wc_chk:r" "Checking" [ a "Checking" "custid"; a "Checking" "bal" ];
      write "wc_chk:w" "Checking"
        [ a "Checking" "bal"; a "Checking" "overdrafts" ];
    ]
  in
  (* SendPayment: move money between two checking accounts *)
  let send_payment =
    [ lookup "sp";
      read "sp_chk:r" "Checking" [ a "Checking" "custid"; a "Checking" "bal" ];
      write "sp_chk:w" "Checking" [ a "Checking" "bal" ];
    ]
  in
  let transactions =
    [ { Workload.t_name = "Balance"; queries = balance };
      { Workload.t_name = "DepositChecking"; queries = deposit_checking };
      { Workload.t_name = "TransactSavings"; queries = transact_savings };
      { Workload.t_name = "Amalgamate"; queries = amalgamate };
      { Workload.t_name = "WriteCheck"; queries = write_check };
      { Workload.t_name = "SendPayment"; queries = send_payment };
    ]
  in
  Workload.make ~queries:(List.rev !queries) ~transactions

let instance =
  lazy (Instance.make ~name:"SmallBank" (Lazy.force schema) (build_workload ()))

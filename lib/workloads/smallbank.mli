(** The SmallBank instance.

    SmallBank (Alomari et al., ICDE 2008) is a minimal banking OLTP
    benchmark commonly used with H-store-class systems: three tables
    (Account, Saving, Checking) and six short transactions.  The Account
    table carries a wide, rarely-read [name]/[profile] payload next to hot
    numeric columns, so even this tiny schema benefits from vertical
    partitioning.

    Conventions as in {!Tpcc}: UPDATEs split into read/write sub-queries,
    blind balance increments count as write-only, uniform per-transaction
    frequencies matching the standard mix (all six at equal weight). *)

val instance : Vpart.Instance.t Lazy.t
(** 10 attributes, 6 transactions. *)

val attr : string -> string -> int
(** Attribute id lookup. @raise Not_found. *)

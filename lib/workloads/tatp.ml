open Vpart

let bits = List.init 10 (fun i -> (Printf.sprintf "bit_%d" (i + 1), 1))
let hexes = List.init 10 (fun i -> (Printf.sprintf "hex_%d" (i + 1), 1))
let byte2s = List.init 10 (fun i -> (Printf.sprintf "byte2_%d" (i + 1), 2))

let schema_spec =
  [ ( "Subscriber",
      [ ("s_id", 4); ("sub_nbr", 15) ]
      @ bits @ hexes @ byte2s
      @ [ ("msc_location", 4); ("vlr_location", 4) ] );
    ( "Access_Info",
      [ ("s_id", 4); ("ai_type", 1); ("data1", 1); ("data2", 1); ("data3", 3);
        ("data4", 5) ] );
    ( "Special_Facility",
      [ ("s_id", 4); ("sf_type", 1); ("is_active", 1); ("error_cntrl", 1);
        ("data_a", 1); ("data_b", 5) ] );
    ( "Call_Forwarding",
      [ ("s_id", 4); ("sf_type", 1); ("start_time", 1); ("end_time", 1);
        ("numberx", 15) ] );
  ]

let schema = lazy (Schema.make schema_spec)

let attr table name = Schema.find_attr (Lazy.force schema) table name

let build_workload () =
  let s = Lazy.force schema in
  let tid name = Schema.find_table s name in
  let a table name = Schema.find_attr s table name in
  let all table = Schema.attrs_of_table s (tid table) in
  let queries = ref [] and count = ref 0 in
  let add name kind freq tables attrs =
    queries := { Workload.q_name = name; kind; freq; tables; attrs } :: !queries;
    incr count;
    !count - 1
  in
  let read name freq table ~rows attrs =
    add name Workload.Read freq [ (tid table, rows) ] attrs
  in
  let write name freq table ~rows attrs =
    add name Workload.Write freq [ (tid table, rows) ] attrs
  in
  (* GET_SUBSCRIBER_DATA: SELECT * FROM Subscriber WHERE s_id = ? *)
  let get_subscriber =
    [ read "get_subscriber" 35. "Subscriber" ~rows:1. (all "Subscriber") ]
  in
  (* GET_NEW_DESTINATION: join Special_Facility and Call_Forwarding *)
  let get_new_destination =
    [ read "gnd_sf" 10. "Special_Facility" ~rows:1.
        [ a "Special_Facility" "s_id"; a "Special_Facility" "sf_type";
          a "Special_Facility" "is_active" ];
      read "gnd_cf" 10. "Call_Forwarding" ~rows:2.
        [ a "Call_Forwarding" "s_id"; a "Call_Forwarding" "sf_type";
          a "Call_Forwarding" "start_time"; a "Call_Forwarding" "end_time";
          a "Call_Forwarding" "numberx" ];
    ]
  in
  (* GET_ACCESS_DATA *)
  let get_access_data =
    [ read "get_access" 35. "Access_Info" ~rows:1.
        [ a "Access_Info" "s_id"; a "Access_Info" "ai_type";
          a "Access_Info" "data1"; a "Access_Info" "data2";
          a "Access_Info" "data3"; a "Access_Info" "data4" ];
    ]
  in
  (* UPDATE_SUBSCRIBER_DATA: UPDATE Subscriber SET bit_1 = ?;
     UPDATE Special_Facility SET data_a = ? *)
  let update_subscriber_data =
    [ read "usd_sub:r" 2. "Subscriber" ~rows:1. [ a "Subscriber" "s_id" ];
      write "usd_sub:w" 2. "Subscriber" ~rows:1. [ a "Subscriber" "bit_1" ];
      read "usd_sf:r" 2. "Special_Facility" ~rows:1.
        [ a "Special_Facility" "s_id"; a "Special_Facility" "sf_type" ];
      write "usd_sf:w" 2. "Special_Facility" ~rows:1.
        [ a "Special_Facility" "data_a" ];
    ]
  in
  (* UPDATE_LOCATION: lookup by sub_nbr, set vlr_location *)
  let update_location =
    [ read "ul:r" 14. "Subscriber" ~rows:1.
        [ a "Subscriber" "sub_nbr"; a "Subscriber" "s_id" ];
      write "ul:w" 14. "Subscriber" ~rows:1. [ a "Subscriber" "vlr_location" ];
    ]
  in
  (* INSERT_CALL_FORWARDING: read Subscriber + Special_Facility, insert CF *)
  let insert_call_forwarding =
    [ read "icf_sub" 2. "Subscriber" ~rows:1.
        [ a "Subscriber" "sub_nbr"; a "Subscriber" "s_id" ];
      read "icf_sf" 2. "Special_Facility" ~rows:1.
        [ a "Special_Facility" "s_id"; a "Special_Facility" "sf_type" ];
      write "icf_ins" 2. "Call_Forwarding" ~rows:1. (all "Call_Forwarding");
    ]
  in
  (* DELETE_CALL_FORWARDING *)
  let delete_call_forwarding =
    [ read "dcf_sub" 2. "Subscriber" ~rows:1.
        [ a "Subscriber" "sub_nbr"; a "Subscriber" "s_id" ];
      read "dcf_cf:r" 2. "Call_Forwarding" ~rows:1.
        [ a "Call_Forwarding" "s_id"; a "Call_Forwarding" "sf_type";
          a "Call_Forwarding" "start_time" ];
      write "dcf_cf:w" 2. "Call_Forwarding" ~rows:1. (all "Call_Forwarding");
    ]
  in
  let transactions =
    [ { Workload.t_name = "GetSubscriberData"; queries = get_subscriber };
      { Workload.t_name = "GetNewDestination"; queries = get_new_destination };
      { Workload.t_name = "GetAccessData"; queries = get_access_data };
      { Workload.t_name = "UpdateSubscriberData"; queries = update_subscriber_data };
      { Workload.t_name = "UpdateLocation"; queries = update_location };
      { Workload.t_name = "InsertCallForwarding"; queries = insert_call_forwarding };
      { Workload.t_name = "DeleteCallForwarding"; queries = delete_call_forwarding };
    ]
  in
  Workload.make ~queries:(List.rev !queries) ~transactions

let instance =
  lazy (Instance.make ~name:"TATP" (Lazy.force schema) (build_workload ()))

(** The TATP (Telecom Application Transaction Processing) instance.

    TATP is the classic telecom OLTP benchmark used by the H-store/VoltDB
    line of systems the paper targets: seven short transactions over four
    tables, 80 % reads, and a very wide Subscriber table (35 attributes,
    most of them rarely read together) — which makes it an interesting
    vertical-partitioning subject beyond TPC-C.

    Modeling follows the same conventions as {!Tpcc}: frequencies are the
    standard TATP mix percentages (GET_SUBSCRIBER_DATA 35, GET_NEW_DESTINATION
    10, GET_ACCESS_DATA 35, UPDATE_SUBSCRIBER_DATA 2, UPDATE_LOCATION 14,
    INSERT_CALL_FORWARDING 2, DELETE_CALL_FORWARDING 2); UPDATEs are split
    into read and write sub-queries; single-row lookups touch 1 row and
    short scans 2 rows. *)

val instance : Vpart.Instance.t Lazy.t
(** 51 attributes, 7 transactions. *)

val attr : string -> string -> int
(** Attribute id lookup. @raise Not_found. *)

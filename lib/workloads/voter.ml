open Vpart

let schema_spec =
  [ ("Contestants", [ ("number", 4); ("name", 50) ]);
    ("AreaCodeState", [ ("area_code", 2); ("state", 2) ]);
    ( "Votes",
      [ ("vote_id", 8); ("phone_number", 8); ("state", 2);
        ("contestant_number", 4); ("created", 8) ] );
    ( "Leaderboard",
      [ ("contestant_number", 4); ("num_votes", 8); ("updated", 8) ] );
  ]

let schema = lazy (Schema.make schema_spec)

let attr table name = Schema.find_attr (Lazy.force schema) table name

let build_workload () =
  let s = Lazy.force schema in
  let tid name = Schema.find_table s name in
  let a table name = Schema.find_attr s table name in
  let queries = ref [] and count = ref 0 in
  let add name kind freq rows table attrs =
    queries := { Workload.q_name = name; kind; freq; tables = [ (tid table, rows) ]; attrs }
               :: !queries;
    incr count;
    !count - 1
  in
  (* Vote: validate contestant + area code, append a vote, bump the
     leaderboard counter (blind increment). *)
  let vote =
    [ add "v_contestant" Workload.Read 100. 1. "Contestants"
        [ a "Contestants" "number" ];
      add "v_area" Workload.Read 100. 1. "AreaCodeState"
        [ a "AreaCodeState" "area_code"; a "AreaCodeState" "state" ];
      add "v_insert" Workload.Write 100. 1. "Votes"
        (Schema.attrs_of_table s (tid "Votes"));
      add "v_board:r" Workload.Read 100. 1. "Leaderboard"
        [ a "Leaderboard" "contestant_number" ];
      add "v_board:w" Workload.Write 100. 1. "Leaderboard"
        [ a "Leaderboard" "num_votes"; a "Leaderboard" "updated" ];
    ]
  in
  (* Leaderboard display: top contestants with names. *)
  let leaderboard =
    [ add "lb_board" Workload.Read 2. 10. "Leaderboard"
        [ a "Leaderboard" "contestant_number"; a "Leaderboard" "num_votes" ];
      add "lb_names" Workload.Read 2. 10. "Contestants"
        [ a "Contestants" "number"; a "Contestants" "name" ];
    ]
  in
  (* Audit: recent votes by state. *)
  let audit =
    [ add "audit_votes" Workload.Read 1. 10. "Votes"
        [ a "Votes" "vote_id"; a "Votes" "state"; a "Votes" "contestant_number";
          a "Votes" "created" ];
    ]
  in
  let transactions =
    [ { Workload.t_name = "Vote"; queries = vote };
      { Workload.t_name = "Leaderboard"; queries = leaderboard };
      { Workload.t_name = "Audit"; queries = audit };
    ]
  in
  Workload.make ~queries:(List.rev !queries) ~transactions

let instance =
  lazy (Instance.make ~name:"Voter" (Lazy.force schema) (build_workload ()))

(** The Voter instance.

    Voter is the VoltDB telephone-voting demo workload (the canonical
    H-store showcase): a write-dominated stream of [Vote] transactions over
    a contestants catalog, an area-code lookup table and an append-only
    votes table, plus two periodic read transactions for the leaderboard.
    The vote path reads narrow lookup columns and appends full vote rows,
    so the optimizer should keep the lookup columns co-located with [Vote]
    and can park the display-only columns elsewhere. *)

val instance : Vpart.Instance.t Lazy.t
(** 12 attributes, 3 transactions. *)

val attr : string -> string -> int
(** Attribute id lookup. @raise Not_found. *)

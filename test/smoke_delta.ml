(* Fast delta-vs-full agreement smoke, run by `dune build @lint`: a
   fixed-seed move sequence through Delta_cost must track the
   from-scratch Cost_model objective to float precision on a bundled
   instance.  Exits non-zero on the first disagreement, so delta-kernel
   drift fails the lint gate (ISSUE 5 acceptance). *)

open Vpart

let () =
  let file = Sys.argv.(1) in
  let inst = Codec.load_instance file in
  let stats = Stats.compute inst ~p:8. in
  let lambda = 0.1 and pl = 1. and num_sites = 3 in
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let st = Random.State.make [| 42 |] in
  let part =
    Partitioning.create ~num_sites ~num_txns:nt ~num_attrs:na
  in
  for t = 0 to nt - 1 do
    part.Partitioning.txn_site.(t) <- Random.State.int st num_sites
  done;
  Partitioning.repair_single_sitedness stats part;
  let dc = Delta_cost.create ~latency:(inst, pl) stats ~lambda part in
  let fresh () =
    Cost_model.objective stats ~lambda part
    +. (lambda *. Cost_model.latency inst ~pl part)
  in
  let worst = ref 0. in
  let check step =
    let want = fresh () and got = Delta_cost.objective dc in
    let diff = Float.abs (got -. want) in
    if diff > !worst then worst := diff;
    if diff > 1e-9 *. (1. +. Float.abs want) then begin
      Printf.eprintf
        "smoke_delta: step %d: delta %.17g vs fresh %.17g (diff %g)\n" step
        got want diff;
      exit 1
    end
  in
  check 0;
  for step = 1 to 400 do
    (match Random.State.int st 8 with
     | 0 | 1 | 2 ->
       ignore
         (Delta_cost.apply_move dc
            (Delta_cost.Flip
               (Random.State.int st na, Random.State.int st num_sites)))
     | 3 | 4 | 5 ->
       ignore
         (Delta_cost.apply_move dc
            (Delta_cost.Assign
               (Random.State.int st nt, Random.State.int st num_sites)))
     | 6 -> if Delta_cost.mark dc > 0 then Delta_cost.undo_move dc
     | _ ->
       let k = 1 + Random.State.int st (min 3 nt) in
       let t0 = Random.State.int st (nt - k + 1) in
       ignore
         (Delta_cost.apply_move dc
            (Delta_cost.Move_component
               (Array.init k (fun i -> t0 + i),
                [| Random.State.int st na |],
                Random.State.int st num_sites))));
    check step
  done;
  Printf.printf "smoke_delta: %s ok (400 moves, max drift %g)\n"
    (Filename.basename file) !worst

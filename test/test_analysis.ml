(* Tests for the static-analysis passes: Vpart_analysis.Diagnostic,
   Vpart_analysis.Model_lint and Vpart.Instance_lint. *)

open Vpart
module D = Vpart_analysis.Diagnostic
module Model_lint = Vpart_analysis.Model_lint

let codes ds = D.codes ds

let error_codes ds = codes (D.errors ds)

let check_codes msg expected ds =
  Alcotest.(check (list string)) msg expected (codes ds)

(* ------------------------------------------------------------------ *)
(* Diagnostic basics                                                   *)
(* ------------------------------------------------------------------ *)

let test_diagnostic_basics () =
  let e = D.error ~code:"M001" "bad %s %d" "thing" 7 in
  Alcotest.(check string) "formatted message" "bad thing 7" e.D.message;
  Alcotest.(check bool) "is_error" true (D.is_error e);
  Alcotest.(check string) "pp" "error[M001] bad thing 7" (D.to_string e);
  let w = D.warning ~code:"M004" "w" and i = D.info ~code:"M011" "i" in
  Alcotest.(check bool) "warning not error" false (D.is_error w);
  Alcotest.(check bool) "severity order" true
    (D.compare_severity D.Error D.Warning < 0
     && D.compare_severity D.Warning D.Info < 0
     && D.compare_severity D.Info D.Info = 0);
  let ds = [ i; w; e; w ] in
  Alcotest.(check bool) "has_errors" true (D.has_errors ds);
  Alcotest.(check int) "count warnings" 2 (D.count D.Warning ds);
  Alcotest.(check (list string)) "codes sorted uniq"
    [ "M001"; "M004"; "M011" ] (codes ds);
  Alcotest.(check (list string)) "errors picks errors" [ "M001" ]
    (error_codes ds);
  let promoted = D.promote_warnings ds in
  Alcotest.(check int) "promote: no warnings left" 0
    (D.count D.Warning promoted);
  Alcotest.(check int) "promote: errors grew" 3 (D.count D.Error promoted);
  (match D.sort ds with
   | first :: _ -> Alcotest.(check string) "sort: error first" "M001" first.D.code
   | [] -> Alcotest.fail "sort dropped findings");
  Alcotest.(check string) "empty report"
    "no findings" (Format.asprintf "%a" D.pp_report [])

(* ------------------------------------------------------------------ *)
(* Model lint: one fixture per code                                    *)
(* ------------------------------------------------------------------ *)

(* Hand-built standard forms: Lp.add_var/add_constr now reject most of
   these defects at construction time, so negative tests must assemble
   the frozen record directly. *)
let mk_std ?(obj = fun _ -> 1.) ?(lb = fun _ -> 0.) ?(ub = fun _ -> 1.)
    ?(integer = fun _ -> false) ncols rows =
  {
    Lp.std_name = "fixture";
    ncols;
    nrows = List.length rows;
    obj = Array.init ncols obj;
    obj_const = 0.;
    lb = Array.init ncols lb;
    ub = Array.init ncols ub;
    integer = Array.init ncols integer;
    row_idx = Array.of_list (List.map (fun (i, _, _, _) -> Array.of_list i) rows);
    row_val = Array.of_list (List.map (fun (_, v, _, _) -> Array.of_list v) rows);
    row_cmp = Array.of_list (List.map (fun (_, _, c, _) -> c) rows);
    rhs = Array.of_list (List.map (fun (_, _, _, r) -> r) rows);
    maximize = false;
  }

let test_m001_crossed_bounds () =
  let std = mk_std 1 [ ([ 0 ], [ 1. ], Lp.Le, 5.) ] ~lb:(fun _ -> 2.) in
  check_codes "lb > ub" [ "M001" ] (Model_lint.lint std)

let test_m002_m003_empty_rows () =
  let std = mk_std 0 [ ([], [], Lp.Eq, 1.); ([], [], Lp.Le, 0.) ] in
  check_codes "0 = 1 and 0 <= 0" [ "M002"; "M003" ] (Model_lint.lint std)

let test_m004_duplicate_row () =
  let row = ([ 0 ], [ 1. ], Lp.Le, 1.) in
  let std = mk_std 1 [ row; row ] in
  check_codes "duplicate row" [ "M004" ] (Model_lint.lint std)

let test_m004_scaled_parallel_row () =
  (* 2x <= 2 is the same constraint as x <= 1 *)
  let std = mk_std 1 [ ([ 0 ], [ 1. ], Lp.Le, 1.); ([ 0 ], [ 2. ], Lp.Le, 2.) ] in
  check_codes "scaled parallel row" [ "M004" ] (Model_lint.lint std)

let test_m005_contradicting_rows () =
  let std = mk_std 1 [ ([ 0 ], [ 1. ], Lp.Eq, 0.); ([ 0 ], [ 1. ], Lp.Eq, 1.) ] in
  check_codes "x = 0 vs x = 1" [ "M005" ] (Model_lint.lint std)

let test_m006_infeasible_activity () =
  let std = mk_std 1 [ ([ 0 ], [ 1. ], Lp.Ge, 2.) ] in
  check_codes "x >= 2 with x <= 1" [ "M006" ] (Model_lint.lint std)

let test_m007_redundant_activity () =
  let std = mk_std 1 [ ([ 0 ], [ 1. ], Lp.Le, 2.) ] in
  check_codes "x <= 2 with x <= 1" [ "M007" ] (Model_lint.lint std)

let test_m008_dangling_variable () =
  let std =
    mk_std 2 [ ([ 0 ], [ 1. ], Lp.Le, 1.) ]
      ~obj:(fun j -> if j = 0 then 1. else 0.)
  in
  check_codes "x1 unused" [ "M008" ] (Model_lint.lint std)

let test_m009_fractional_integer_bound () =
  let std =
    mk_std 1 [ ([ 0 ], [ 1. ], Lp.Ge, 1.) ]
      ~ub:(fun _ -> 2.5) ~integer:(fun _ -> true)
  in
  check_codes "integer with ub 2.5" [ "M009" ] (Model_lint.lint std)

let test_m010_conditioning () =
  let std = mk_std 2 [ ([ 0; 1 ], [ 1e-6; 1e6 ], Lp.Le, 1e6) ] in
  check_codes "1e12 coefficient ratio" [ "M010" ] (Model_lint.lint std)

let test_m011_fixed_variable () =
  let std =
    mk_std 1 [ ([ 0 ], [ 1. ], Lp.Le, 1.) ] ~lb:(fun _ -> 1.) ~ub:(fun _ -> 1.)
  in
  check_codes "lb = ub" [ "M011" ] (Model_lint.lint std)

let test_m012_non_finite_data () =
  let nan_bound = mk_std 1 [] ~lb:(fun _ -> Float.nan) in
  check_codes "NaN bound" [ "M012" ] (Model_lint.lint nan_bound);
  let nan_obj = mk_std 1 [ ([ 0 ], [ 1. ], Lp.Le, 1.) ] ~obj:(fun _ -> Float.nan) in
  check_codes "NaN objective" [ "M012" ] (Model_lint.lint nan_obj);
  let inf_rhs = mk_std 1 [ ([ 0 ], [ 1. ], Lp.Le, Float.infinity) ] in
  check_codes "infinite rhs" [ "M012" ] (Model_lint.lint inf_rhs);
  let nan_coef = mk_std 1 [ ([ 0 ], [ Float.nan ], Lp.Le, 1.) ] in
  check_codes "NaN coefficient" [ "M012" ] (Model_lint.lint nan_coef)

let test_clean_model_no_findings () =
  (* a well-formed model built through the public API lints clean *)
  let m = Lp.create ~name:"clean" () in
  let x = Lp.binary m ~name:"x" () and y = Lp.binary m ~name:"y" () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 1.;
  Lp.set_objective m Lp.Minimize [ (1., x); (2., y) ];
  check_codes "no findings" [] (Model_lint.lint_model m);
  Alcotest.(check (list string)) "assert_clean returns non-errors" []
    (codes (Model_lint.assert_clean (Lp.standardize m)))

let test_assert_clean_raises () =
  let std = mk_std 1 [ ([ 0 ], [ 1. ], Lp.Le, 5.) ] ~lb:(fun _ -> 2.) in
  match Model_lint.assert_clean std with
  | _ -> Alcotest.fail "assert_clean accepted an infeasible model"
  | exception D.Errors errs ->
    Alcotest.(check (list string)) "raised with M001" [ "M001" ] (codes errs)

(* The acceptance fixture from the issue: a model with a crossed-bound
   variable and a duplicated row yields exactly those two findings. *)
let test_acceptance_exact_codes () =
  let std =
    mk_std 2
      [ ([ 0 ], [ 1. ], Lp.Le, 1.);
        ([ 0 ], [ 1. ], Lp.Le, 1.);   (* duplicate of row 0 *)
        ([ 1 ], [ 1. ], Lp.Le, 5.);
      ]
      ~lb:(fun j -> if j = 1 then 2. else 0.)  (* x1: lb 2 > ub 1 *)
  in
  check_codes "exactly M001 + M004" [ "M001"; "M004" ] (Model_lint.lint std)

let test_var_names_in_messages () =
  let std = mk_std 1 [ ([ 0 ], [ 1. ], Lp.Le, 5.) ] ~lb:(fun _ -> 2.) in
  match Model_lint.lint ~var_name:(fun _ -> "y_3_1") std with
  | [ d ] ->
    Alcotest.(check bool) "names the variable" true
      (String.length d.D.message > 0
       && String.sub d.D.message 9 5 = "y_3_1")
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* Instance lint                                                       *)
(* ------------------------------------------------------------------ *)

let mk_schema () =
  Schema.make [ ("T", [ ("A", 4); ("B", 4) ]); ("U", [ ("C", 8) ]) ]

let rq ?(freq = 1.) name tables attrs =
  { Workload.q_name = name; kind = Workload.Read; freq; tables; attrs }

let wq ?(freq = 1.) name tables attrs =
  { Workload.q_name = name; kind = Workload.Write; freq; tables; attrs }

(* Clean fixture: every attribute read, both kinds present, no table
   always co-accessed. *)
let clean_instance () =
  let schema = mk_schema () in
  let wl =
    Workload.make
      ~queries:
        [ rq "r1" [ (0, 1.) ] [ 0 ];
          rq "r2" [ (0, 1.); (1, 1.) ] [ 1; 2 ];
          wq "w1" [ (1, 1.) ] [ 2 ];
        ]
      ~transactions:
        [ { Workload.t_name = "t1"; queries = [ 0; 1 ] };
          { Workload.t_name = "t2"; queries = [ 2 ] };
        ]
  in
  Instance.make ~name:"clean" schema wl

(* Instance.make validates, so defective fixtures are assembled directly
   (the record is public; Workload.make only checks txn/query linkage). *)
let raw_instance queries transactions =
  { Instance.name = "raw";
    schema = mk_schema ();
    workload = Workload.make ~queries ~transactions;
  }

let one_txn n = [ { Workload.t_name = "t1"; queries = List.init n Fun.id } ]

let test_instance_clean () =
  check_codes "clean instance" [] (Instance_lint.lint (clean_instance ()))

let test_i001_referential () =
  (* attribute id 5 out of range; attribute 2 (U.C) accessed without
     touching U *)
  let inst =
    raw_instance
      [ rq "r1" [ (0, 1.) ] [ 0; 5 ]; rq "r2" [ (0, 1.) ] [ 0; 2 ] ]
      (one_txn 2)
  in
  Alcotest.(check (list string)) "I001 errors" [ "I001" ]
    (error_codes (Instance_lint.lint inst))

let test_i002_bad_stats () =
  let inst =
    raw_instance
      [ rq ~freq:Float.nan "r1" [ (0, 1.) ] [ 0; 1 ];
        rq "r2" [ (0, -2.); (1, 1.) ] [ 0; 1; 2 ];
      ]
      (one_txn 2)
  in
  Alcotest.(check (list string)) "NaN freq + negative rows" [ "I002" ]
    (error_codes (Instance_lint.lint inst))

let test_i003_unused_attribute () =
  let inst =
    raw_instance
      [ rq "r1" [ (0, 1.) ] [ 0 ]; wq "w1" [ (1, 1.) ] [ 2 ];
        rq "r2" [ (1, 1.) ] [ 2 ] ]
      (one_txn 3)
  in
  let ds = Instance_lint.lint inst in
  Alcotest.(check bool) "B unused -> I003" true (List.mem "I003" (codes ds));
  Alcotest.(check (list string)) "warning only" [] (error_codes ds)

let test_i004_write_only_attribute () =
  let inst =
    raw_instance
      [ rq "r1" [ (0, 1.) ] [ 0; 1 ]; wq "w1" [ (1, 1.) ] [ 2 ] ]
      (one_txn 2)
  in
  Alcotest.(check bool) "C write-only -> I004" true
    (List.mem "I004" (codes (Instance_lint.lint inst)))

let test_i005_degenerate_transaction () =
  let inst =
    { Instance.name = "raw";
      schema = mk_schema ();
      workload =
        Workload.make
          ~queries:[ rq "r1" [ (0, 1.) ] [ 0; 1 ]; rq "r2" [ (1, 1.) ] [ 2 ] ]
          ~transactions:
            [ { Workload.t_name = "t1"; queries = [ 0; 1 ] };
              { Workload.t_name = "empty"; queries = [] };
            ];
    }
  in
  Alcotest.(check bool) "empty transaction -> I005" true
    (List.mem "I005" (codes (Instance_lint.lint inst)))

let test_i006_table_without_attrs () =
  let inst =
    raw_instance
      [ rq "r1" [ (0, 1.); (1, 1.) ] [ 0; 1 ] ]  (* touches U, reads only T *)
      (one_txn 1)
  in
  let ds = Instance_lint.lint inst in
  Alcotest.(check bool) "I006 reported" true (List.mem "I006" (codes ds));
  Alcotest.(check (list string)) "warning only" [] (error_codes ds)

let test_i007_implausible_magnitude () =
  let inst =
    raw_instance
      [ rq ~freq:1e15 "r1" [ (0, 1.) ] [ 0; 1 ]; rq "r2" [ (1, 1.) ] [ 2 ] ]
      (one_txn 2)
  in
  let ds = Instance_lint.lint inst in
  Alcotest.(check bool) "I007 reported" true (List.mem "I007" (codes ds));
  Alcotest.(check (list string)) "warning only" [] (error_codes ds)

let test_i008_one_sided_workload () =
  let inst =
    raw_instance
      [ rq "r1" [ (0, 1.) ] [ 0 ]; rq "r2" [ (0, 1.); (1, 1.) ] [ 1; 2 ] ]
      (one_txn 2)
  in
  Alcotest.(check bool) "read-only workload -> I008" true
    (List.mem "I008" (codes (Instance_lint.lint inst)))

let test_i009_co_accessed_table () =
  let inst =
    raw_instance
      [ rq "r1" [ (0, 1.) ] [ 0; 1 ]; rq "r2" [ (0, 1.); (1, 1.) ] [ 0; 1; 2 ];
        wq "w1" [ (1, 1.) ] [ 2 ] ]
      (one_txn 3)
  in
  Alcotest.(check bool) "T always co-accessed -> I009" true
    (List.mem "I009" (codes (Instance_lint.lint inst)))

(* ------------------------------------------------------------------ *)
(* Partitioning lint                                                   *)
(* ------------------------------------------------------------------ *)

let test_partitioning_clean () =
  let inst = clean_instance () in
  check_codes "single-site partitioning" []
    (Instance_lint.lint_partitioning inst (Partitioning.single_site inst))

let two_site_all_on_0 inst =
  let part =
    Partitioning.create ~num_sites:2
      ~num_txns:(Instance.num_transactions inst)
      ~num_attrs:(Instance.num_attrs inst)
  in
  Array.iteri (fun a _ -> part.Partitioning.placed.(a).(0) <- true)
    part.Partitioning.placed;
  part

let test_p001_shape_mismatch () =
  let inst = clean_instance () in
  let part = Partitioning.create ~num_sites:1 ~num_txns:1 ~num_attrs:2 in
  Alcotest.(check (list string)) "shape mismatch" [ "P001" ]
    (error_codes (Instance_lint.lint_partitioning inst part))

let test_p002_site_out_of_range () =
  let inst = clean_instance () in
  let part = two_site_all_on_0 inst in
  part.Partitioning.txn_site.(0) <- 7;
  Alcotest.(check bool) "P002 reported" true
    (List.mem "P002" (error_codes (Instance_lint.lint_partitioning inst part)))

let test_p003_uncovered_attribute () =
  let inst = clean_instance () in
  let part = two_site_all_on_0 inst in
  part.Partitioning.placed.(0).(0) <- false;
  Alcotest.(check bool) "P003 reported" true
    (List.mem "P003" (error_codes (Instance_lint.lint_partitioning inst part)))

let test_p004_single_sitedness () =
  let inst = clean_instance () in
  let part = two_site_all_on_0 inst in
  (* t1 reads A, B, C, all placed on site 0 only; home it on site 1 *)
  part.Partitioning.txn_site.(0) <- 1;
  Alcotest.(check bool) "P004 reported" true
    (List.mem "P004" (error_codes (Instance_lint.lint_partitioning inst part)))

let test_p005_p006_infos () =
  let inst = clean_instance () in
  let part = two_site_all_on_0 inst in
  (* replicate A on site 1 where no reader is homed *)
  part.Partitioning.placed.(0).(1) <- true;
  let ds = Instance_lint.lint_partitioning inst part in
  Alcotest.(check bool) "P005 reported" true (List.mem "P005" (codes ds));
  Alcotest.(check (list string)) "infos only" [] (error_codes ds);
  let empty = two_site_all_on_0 inst in
  Alcotest.(check bool) "empty site -> P006" true
    (List.mem "P006" (codes (Instance_lint.lint_partitioning inst empty)))

(* ------------------------------------------------------------------ *)
(* Bundled instances lint clean                                        *)
(* ------------------------------------------------------------------ *)

let test_bundled_instances_no_errors () =
  (* cwd is _build/default/test under `dune runtest`, the repo root under
     a bare `dune exec` *)
  let dir = if Sys.file_exists "instances" then "instances" else "../instances" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  Alcotest.(check bool) "found bundled instances" true (files <> []);
  List.iter
    (fun f ->
       let inst = Codec.load_instance (Filename.concat dir f) in
       match D.errors (Instance_lint.lint inst) with
       | [] -> ()
       | errs ->
         Alcotest.failf "%s: %d error(s), first: %s" f (List.length errs)
           (D.to_string (List.hd errs)))
    files

(* ------------------------------------------------------------------ *)
(* Solver integration: fail fast on corrupted statistics               *)
(* ------------------------------------------------------------------ *)

let nan_freq_instance () =
  raw_instance
    [ rq ~freq:Float.nan "r1" [ (0, 1.) ] [ 0; 1 ];
      rq "r2" [ (1, 1.) ] [ 2 ];
      wq "w1" [ (1, 1.) ] [ 2 ] ]
    (one_txn 3)

let small_qp_options =
  { Qp_solver.default_options with
    Qp_solver.num_sites = 2;
    time_limit = 5.;
  }

(* Grouping rebuilds the reduced instance through Instance.make, whose
   validation would reject the NaN before the solver sees it; turning
   grouping off exercises the model-lint gate itself. *)
let no_grouping_options =
  { small_qp_options with Qp_solver.use_grouping = false }

let test_qp_solver_refuses_nan () =
  match Qp_solver.solve ~options:no_grouping_options (nan_freq_instance ()) with
  | _ -> Alcotest.fail "qp_solver accepted NaN statistics"
  | exception D.Errors errs ->
    Alcotest.(check bool) "M012 in errors" true
      (List.mem "M012" (codes errs))

let test_iterative_solver_refuses_nan () =
  let options =
    { Iterative_solver.default_options with
      Iterative_solver.qp = no_grouping_options }
  in
  match Iterative_solver.solve ~options (nan_freq_instance ()) with
  | _ -> Alcotest.fail "iterative solver accepted NaN statistics"
  | exception D.Errors _ -> ()

let test_solver_reports_diagnostics () =
  let r = Qp_solver.solve ~options:small_qp_options (clean_instance ()) in
  Alcotest.(check (list string)) "no error-level diagnostics" []
    (error_codes r.Qp_solver.diagnostics)

(* ------------------------------------------------------------------ *)
(* Properties: generated instances build lint-clean MIPs; presolve     *)
(* preserves lint-cleanliness                                          *)
(* ------------------------------------------------------------------ *)

let gen_params seed =
  { Instance_gen.default_params with
    Instance_gen.name = Printf.sprintf "lint%d" seed;
    num_tables = 4;
    num_transactions = 4;
    max_attrs_per_table = 4;
    max_queries_per_txn = 2;
    max_tables_per_query = 2;
    max_attrs_per_query = 4;
  }

let model_for seed =
  let inst = Instance_gen.generate ~seed (gen_params seed) in
  let grouping = Grouping.compute inst in
  let stats = Stats.compute grouping.Grouping.reduced ~p:8. in
  let model, _ = Qp_solver.build_model stats small_qp_options in
  model

let prop_generated_mip_lints_clean =
  QCheck.Test.make ~count:25 ~name:"generated MIP has no lint errors"
    QCheck.small_int (fun seed ->
      error_codes (Model_lint.lint_model (model_for seed)) = [])

let prop_presolve_preserves_cleanliness =
  QCheck.Test.make ~count:25 ~name:"presolve output has no lint errors"
    QCheck.small_int (fun seed ->
      let std = Lp.standardize (model_for seed) in
      match (Presolve.reduce std).Presolve.verdict with
      | Presolve.Infeasible -> false
      | Presolve.Reduced std' -> error_codes (Model_lint.lint std') = [])

(* ------------------------------------------------------------------ *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "analysis"
    [ ( "diagnostic",
        [ Alcotest.test_case "basics" `Quick test_diagnostic_basics ] );
      ( "model-lint",
        [ Alcotest.test_case "M001 crossed bounds" `Quick test_m001_crossed_bounds;
          Alcotest.test_case "M002/M003 empty rows" `Quick test_m002_m003_empty_rows;
          Alcotest.test_case "M004 duplicate row" `Quick test_m004_duplicate_row;
          Alcotest.test_case "M004 scaled parallel" `Quick
            test_m004_scaled_parallel_row;
          Alcotest.test_case "M005 contradicting rows" `Quick
            test_m005_contradicting_rows;
          Alcotest.test_case "M006 infeasible activity" `Quick
            test_m006_infeasible_activity;
          Alcotest.test_case "M007 redundant row" `Quick
            test_m007_redundant_activity;
          Alcotest.test_case "M008 dangling variable" `Quick
            test_m008_dangling_variable;
          Alcotest.test_case "M009 fractional integer bound" `Quick
            test_m009_fractional_integer_bound;
          Alcotest.test_case "M010 conditioning" `Quick test_m010_conditioning;
          Alcotest.test_case "M011 fixed variable" `Quick test_m011_fixed_variable;
          Alcotest.test_case "M012 non-finite data" `Quick
            test_m012_non_finite_data;
          Alcotest.test_case "clean model" `Quick test_clean_model_no_findings;
          Alcotest.test_case "assert_clean raises" `Quick test_assert_clean_raises;
          Alcotest.test_case "acceptance: exact codes" `Quick
            test_acceptance_exact_codes;
          Alcotest.test_case "variable names in messages" `Quick
            test_var_names_in_messages;
        ] );
      ( "instance-lint",
        [ Alcotest.test_case "clean instance" `Quick test_instance_clean;
          Alcotest.test_case "I001 referential" `Quick test_i001_referential;
          Alcotest.test_case "I002 bad statistics" `Quick test_i002_bad_stats;
          Alcotest.test_case "I003 unused attribute" `Quick
            test_i003_unused_attribute;
          Alcotest.test_case "I004 write-only attribute" `Quick
            test_i004_write_only_attribute;
          Alcotest.test_case "I005 degenerate transaction" `Quick
            test_i005_degenerate_transaction;
          Alcotest.test_case "I006 table without attrs" `Quick
            test_i006_table_without_attrs;
          Alcotest.test_case "I007 implausible magnitude" `Quick
            test_i007_implausible_magnitude;
          Alcotest.test_case "I008 one-sided workload" `Quick
            test_i008_one_sided_workload;
          Alcotest.test_case "I009 co-accessed table" `Quick
            test_i009_co_accessed_table;
        ] );
      ( "partitioning-lint",
        [ Alcotest.test_case "clean single-site" `Quick test_partitioning_clean;
          Alcotest.test_case "P001 shape mismatch" `Quick test_p001_shape_mismatch;
          Alcotest.test_case "P002 site out of range" `Quick
            test_p002_site_out_of_range;
          Alcotest.test_case "P003 uncovered attribute" `Quick
            test_p003_uncovered_attribute;
          Alcotest.test_case "P004 single-sitedness" `Quick
            test_p004_single_sitedness;
          Alcotest.test_case "P005/P006 infos" `Quick test_p005_p006_infos;
        ] );
      ( "bundled-instances",
        [ Alcotest.test_case "no errors in instances/" `Quick
            test_bundled_instances_no_errors ] );
      ( "solver-integration",
        [ Alcotest.test_case "qp_solver refuses NaN stats" `Quick
            test_qp_solver_refuses_nan;
          Alcotest.test_case "iterative solver refuses NaN stats" `Quick
            test_iterative_solver_refuses_nan;
          Alcotest.test_case "clean solve reports no errors" `Quick
            test_solver_reports_diagnostics;
        ] );
      ( "properties",
        [ q prop_generated_mip_lints_clean; q prop_presolve_preserves_cleanliness ]
      );
    ]

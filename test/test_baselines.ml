(* Tests for the comparison baselines (affinity clustering, greedy local
   search). *)

open Vpart

let small_instance seed =
  let params =
    { Instance_gen.default_params with
      Instance_gen.name = Printf.sprintf "base%d" seed;
      num_tables = 3;
      num_transactions = 6;
      max_attrs_per_table = 5;
      update_percent = 30;
    }
  in
  Instance_gen.generate ~seed params

(* ------------------------------------------------------------------ *)
(* Affinity                                                            *)
(* ------------------------------------------------------------------ *)

let test_affinity_matrix () =
  (* two attributes read together have positive affinity; separated ones 0 *)
  let schema = Schema.make [ ("T", [ ("a", 4); ("b", 4); ("c", 4) ]) ] in
  let q1 =
    { Workload.q_name = "ab"; kind = Workload.Read; freq = 3.;
      tables = [ (0, 2.) ]; attrs = [ 0; 1 ] }
  in
  let q2 =
    { Workload.q_name = "c"; kind = Workload.Read; freq = 5.;
      tables = [ (0, 1.) ]; attrs = [ 2 ] }
  in
  let inst =
    Instance.make schema
      (Workload.make ~queries:[ q1; q2 ]
         ~transactions:[ { Workload.t_name = "t"; queries = [ 0; 1 ] } ])
  in
  let aff = Affinity.affinity_matrix inst ~table:0 in
  Alcotest.(check (float 1e-9)) "aff(a,b) = freq*rows" 6. aff.(0).(1);
  Alcotest.(check (float 1e-9)) "symmetric" aff.(0).(1) aff.(1).(0);
  Alcotest.(check (float 1e-9)) "aff(a,c) = 0" 0. aff.(0).(2);
  Alcotest.(check (float 1e-9)) "diagonal empty" 0. aff.(0).(0)

let test_bea_order_is_permutation () =
  let aff =
    [| [| 0.; 5.; 0.; 1. |];
       [| 5.; 0.; 0.; 0. |];
       [| 0.; 0.; 0.; 9. |];
       [| 1.; 0.; 9.; 0. |] |]
  in
  let order = Affinity.bea_order aff in
  Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3 ]
    (List.sort compare order);
  (* strongly bonded pairs end up adjacent *)
  let arr = Array.of_list order in
  let adjacent x y =
    let rec go i =
      i + 1 < Array.length arr
      && ((arr.(i) = x && arr.(i + 1) = y)
          || (arr.(i) = y && arr.(i + 1) = x)
          || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "0-1 adjacent" true (adjacent 0 1);
  Alcotest.(check bool) "2-3 adjacent" true (adjacent 2 3)

let test_affinity_valid () =
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let r =
         Affinity.solve
           ~options:{ Affinity.default_options with Affinity.num_sites = 3 }
           inst
       in
       let stats = Stats.compute inst ~p:8. in
       (match Partitioning.validate stats r.Affinity.partitioning with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d: %s" seed e);
       Alcotest.(check (float 1e-9)) "cost recomputes"
         (Cost_model.cost stats r.Affinity.partitioning)
         r.Affinity.cost)
    [ 1; 2; 3; 4; 5 ]

let test_affinity_on_tpcc () =
  let inst = Lazy.force Tpcc.instance in
  let r =
    Affinity.solve
      ~options:{ Affinity.default_options with Affinity.num_sites = 3 } inst
  in
  let stats = Stats.compute inst ~p:8. in
  (match Partitioning.validate stats r.Affinity.partitioning with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "positive cost" true (r.Affinity.cost > 0.)

(* ------------------------------------------------------------------ *)
(* Greedy                                                              *)
(* ------------------------------------------------------------------ *)

let test_greedy_valid_and_monotone () =
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let stats = Stats.compute inst ~p:8. in
       let r =
         Greedy.solve
           ~options:{ Greedy.default_options with Greedy.num_sites = 3 } inst
       in
       (match Partitioning.validate stats r.Greedy.partitioning with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d: %s" seed e);
       (* never worse than the collapsed start *)
       let collapsed =
         let part =
           Partitioning.create ~num_sites:3
             ~num_txns:(Instance.num_transactions inst)
             ~num_attrs:(Instance.num_attrs inst)
         in
         Partitioning.repair_single_sitedness stats part;
         Cost_model.cost stats part
       in
       if r.Greedy.cost > collapsed +. 1e-6 then
         Alcotest.failf "seed %d: greedy %.9g worse than start %.9g" seed
           r.Greedy.cost collapsed)
    [ 1; 2; 3; 4; 5; 6 ]

let test_greedy_never_beats_qp () =
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let qp =
         Qp_solver.solve
           ~options:{ Qp_solver.default_options with Qp_solver.num_sites = 2;
                      lambda = 1.0; time_limit = 30.; gap = 1e-9 }
           inst
       in
       let g =
         Greedy.solve
           ~options:{ Greedy.default_options with Greedy.num_sites = 2;
                      lambda = 1.0 }
           inst
       in
       match qp.Qp_solver.outcome, qp.Qp_solver.cost with
       | Qp_solver.Proved_optimal, Some opt ->
         if g.Greedy.cost +. 1e-6 < opt -. 1e-6 *. Float.abs opt then
           Alcotest.failf "seed %d: greedy %.9g beats QP optimum %.9g" seed
             g.Greedy.cost opt
       | _ -> Alcotest.failf "seed %d: QP not optimal" seed)
    [ 1; 2; 3; 4; 5 ]

let test_greedy_delta_consistency () =
  (* the incremental deltas must agree with full recomputation: compare the
     final incremental cost against Cost_model on the result *)
  let inst = Lazy.force Tpcc.instance in
  let r =
    Greedy.solve ~options:{ Greedy.default_options with Greedy.num_sites = 3 } inst
  in
  let stats = Stats.compute inst ~p:8. in
  Alcotest.(check (float 1e-6)) "cost matches recomputation"
    (Cost_model.cost stats r.Greedy.partitioning)
    r.Greedy.cost;
  Alcotest.(check bool) "applied some moves" true (r.Greedy.moves > 0)

let test_greedy_improves_tpcc () =
  let inst = Lazy.force Tpcc.instance in
  let stats = Stats.compute inst ~p:8. in
  let single = Cost_model.cost stats (Partitioning.single_site inst) in
  let r =
    Greedy.solve ~options:{ Greedy.default_options with Greedy.num_sites = 2 } inst
  in
  Alcotest.(check bool) "beats single site" true (r.Greedy.cost < single)

(* SA should dominate greedy on average (it can escape local optima);
   check it never loses by much across seeds. *)
let test_sa_vs_greedy () =
  let worse = ref 0 in
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let sa =
         Sa_solver.solve
           ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 2;
                      lambda = 1.0 }
           inst
       in
       let g =
         Greedy.solve
           ~options:{ Greedy.default_options with Greedy.num_sites = 2;
                      lambda = 1.0 }
           inst
       in
       if sa.Sa_solver.cost > g.Greedy.cost +. 1e-6 then incr worse)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  if !worse > 4 then
    Alcotest.failf "SA lost to greedy on %d/8 seeds" !worse

let () =
  Alcotest.run "baselines"
    [ ("affinity",
       [ Alcotest.test_case "matrix" `Quick test_affinity_matrix;
         Alcotest.test_case "bea order" `Quick test_bea_order_is_permutation;
         Alcotest.test_case "valid" `Quick test_affinity_valid;
         Alcotest.test_case "tpcc" `Quick test_affinity_on_tpcc;
       ]);
      ("greedy",
       [ Alcotest.test_case "valid and monotone" `Quick
           test_greedy_valid_and_monotone;
         Alcotest.test_case "never beats QP" `Slow test_greedy_never_beats_qp;
         Alcotest.test_case "delta consistency" `Quick test_greedy_delta_consistency;
         Alcotest.test_case "improves tpcc" `Quick test_greedy_improves_tpcc;
         Alcotest.test_case "sa vs greedy" `Quick test_sa_vs_greedy;
       ]);
    ]

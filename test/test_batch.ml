(* Batch solve service (ISSUE 10): ordered streaming emission, request
   accounting, JSONL response shape, and parity with one-off solves. *)

open Vpart

let tiny_params name =
  { Instance_gen.default_params with
    Instance_gen.name;
    num_tables = 3;
    num_transactions = 4;
  }

let collect ?jobs ?window ?options ~action count =
  let seq = Instance_gen.stream ~seed:7 ~count (tiny_params "batch-test") in
  let out = ref [] in
  let summary =
    Batch.run ?jobs ?window ?options ~action
      ~emit:(fun r -> out := r :: !out)
      seq
  in
  (List.rev !out, summary)

(* Responses must come back in submission order — index 0..n-1, names
   matching the streamed instances — even with a parallel pool, so the
   JSONL output is deterministic. *)
let test_ordered_emission () =
  let n = 23 in
  let responses, summary = collect ~jobs:2 ~window:5 ~action:Batch.Check n in
  Alcotest.(check int) "responses" n (List.length responses);
  Alcotest.(check int) "requests" n summary.Batch.requests;
  List.iteri
    (fun i r ->
       Alcotest.(check int) (Printf.sprintf "index %d" i) i r.Batch.index;
       Alcotest.(check string)
         (Printf.sprintf "name %d" i)
         (Printf.sprintf "batch-test#%d" i)
         r.Batch.name)
    responses

let test_check_clean () =
  let responses, summary = collect ~jobs:2 ~action:Batch.Check 10 in
  Alcotest.(check int) "no failures" 0 summary.Batch.failures;
  List.iter
    (fun r ->
       Alcotest.(check bool) "ok" true r.Batch.ok;
       Alcotest.(check string) "outcome" "clean" r.Batch.outcome;
       Alcotest.(check bool) "has cost" true (r.Batch.cost <> None);
       Alcotest.(check bool) "no error" true (r.Batch.error = None))
    responses;
  Alcotest.(check bool) "throughput positive" true
    (summary.Batch.throughput > 0.)

(* Solving through the batch service (pooled workspaces, worker domains)
   must reproduce the standalone Qp_solver result on the same instance. *)
let test_solve_matches_standalone () =
  let options = { Qp_solver.default_options with Qp_solver.time_limit = 10. } in
  let responses, summary =
    collect ~jobs:2 ~options ~action:Batch.Solve 4
  in
  Alcotest.(check int) "no failures" 0 summary.Batch.failures;
  List.iteri
    (fun i r ->
       let name = Printf.sprintf "batch-test#%d" i in
       let inst =
         Instance_gen.generate ~seed:(7 + i) (tiny_params name)
       in
       let standalone = Qp_solver.solve ~options inst in
       Alcotest.(check bool) "solved" true r.Batch.ok;
       Alcotest.(check string) "outcome" "optimal" r.Batch.outcome;
       match (r.Batch.objective6, standalone.Qp_solver.objective6) with
       | Some a, Some b ->
         Alcotest.(check (float 1e-9)) (name ^ " objective") b a
       | _ -> Alcotest.fail (name ^ ": missing objective"))
    responses

let test_empty_stream () =
  let responses, summary = collect ~action:Batch.Solve 0 in
  Alcotest.(check int) "no responses" 0 (List.length responses);
  Alcotest.(check int) "no requests" 0 summary.Batch.requests;
  Alcotest.(check int) "no failures" 0 summary.Batch.failures

(* A handler exception must surface as an "error" response and count as a
   failure without killing the run or breaking the emission order. *)
let test_error_isolation () =
  (* Bypass Instance.make's validation: a query touching attribute 3 of a
     one-attribute schema makes the solver raise out-of-bounds, which the
     service must convert into an "error" response. *)
  let schema = Schema.make [ ("T", [ ("a", 4) ]) ] in
  let workload =
    Workload.make
      ~queries:
        [ { Workload.q_name = "q"; kind = Workload.Read; freq = 1.;
            tables = [ (0, 1.) ]; attrs = [ 3 ] } ]
      ~transactions:[ { Workload.t_name = "t"; queries = [ 0 ] } ]
  in
  let bad = { Instance.name = "bad"; schema; workload } in
  let good = Instance_gen.generate ~seed:7 (tiny_params "good") in
  let seq = List.to_seq [ ("good0", good); ("bad", bad); ("good1", good) ] in
  let out = ref [] in
  let summary =
    Batch.run ~jobs:2 ~action:Batch.Solve
      ~emit:(fun r -> out := r :: !out)
      seq
  in
  let responses = List.rev !out in
  Alcotest.(check int) "requests" 3 summary.Batch.requests;
  Alcotest.(check (list int)) "ordered"
    [ 0; 1; 2 ]
    (List.map (fun r -> r.Batch.index) responses);
  let bad_r = List.nth responses 1 in
  Alcotest.(check bool) "bad not ok" false bad_r.Batch.ok;
  Alcotest.(check bool) "failures counted" true (summary.Batch.failures >= 1)

(* JSONL schema: every response serializes to an object with the eight
   documented fields, round-trippable through the codec. *)
let test_response_json_shape () =
  let responses, summary = collect ~action:Batch.Check 3 in
  List.iter
    (fun r ->
       let j =
         Json.of_string (Json.to_string ~minify:true (Batch.response_to_json r))
       in
       Alcotest.(check int) "index" r.Batch.index (Json.to_int (Json.member "index" j));
       Alcotest.(check string) "name" r.Batch.name (Json.to_str (Json.member "name" j));
       Alcotest.(check bool) "ok" r.Batch.ok (Json.to_bool (Json.member "ok" j));
       Alcotest.(check string) "outcome" r.Batch.outcome
         (Json.to_str (Json.member "outcome" j));
       Alcotest.(check bool) "seconds >= 0" true
         (Json.to_float (Json.member "seconds" j) >= 0.);
       Alcotest.(check bool) "error null" true (Json.member "error" j = Json.Null))
    responses;
  let s = Json.of_string (Json.to_string (Batch.summary_to_json summary)) in
  Alcotest.(check int) "summary requests" summary.Batch.requests
    (Json.to_int (Json.member "requests" s));
  Alcotest.(check bool) "summary has heap gauge" true
    (Json.to_int (Json.member "top_heap_words" s) > 0)

let test_action_strings () =
  List.iter
    (fun a ->
       match Batch.action_of_string (Batch.string_of_action a) with
       | Some a' -> Alcotest.(check bool) "round trip" true (a = a')
       | None -> Alcotest.fail "action string did not round-trip")
    [ Batch.Check; Batch.Solve; Batch.Certify ];
  Alcotest.(check bool) "unknown rejected" true
    (Batch.action_of_string "frobnicate" = None)

let () =
  Alcotest.run "batch"
    [ ("service",
       [ Alcotest.test_case "ordered emission" `Quick test_ordered_emission;
         Alcotest.test_case "check is clean" `Quick test_check_clean;
         Alcotest.test_case "solve matches standalone" `Quick
           test_solve_matches_standalone;
         Alcotest.test_case "empty stream" `Quick test_empty_stream;
         Alcotest.test_case "error isolation" `Quick test_error_isolation;
         Alcotest.test_case "response json shape" `Quick
           test_response_json_shape;
         Alcotest.test_case "action strings" `Quick test_action_strings;
       ]);
    ]

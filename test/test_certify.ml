(* Tests for the certification layer: primal/dual/Farkas certificates
   (Vpart_certify.Certify) and the domain-level cost re-derivations
   (Vpart.Solution_certify via Qp_solver's [certify] option). *)

open Vpart
module C = Vpart_certify.Certify
module D = Vpart_analysis.Diagnostic

let exact_limits =
  { Mip.default_limits with Mip.gap = 1e-9; time_limit = Some 30. }

let get_optimal name = function
  | Mip.Optimal sol -> sol
  | out ->
    Alcotest.failf "%s: expected optimal, got %a" name Mip.pp_outcome out

let check_clean name ds =
  match D.errors ds with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "%s: unexpected certificate error: %s" name (D.to_string e)

let has_code code ds = List.mem code (D.codes ds)

(* A 2x2 assignment problem: every binary appears in two equality rows,
   so flipping any single binary provably violates a row. *)
let assignment_model () =
  let m = Lp.create () in
  let v = Array.init 4 (fun _ -> Lp.binary m ()) in
  Lp.add_constr m [ (1., v.(0)); (1., v.(1)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(2)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(0)); (1., v.(2)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(1)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.set_objective m Lp.Minimize
    [ (4., v.(0)); (1., v.(1)); (2., v.(2)); (9., v.(3)) ];
  m

(* ------------------------------------------------------------------ *)
(* Certified clean solves                                              *)
(* ------------------------------------------------------------------ *)

let test_optimal_certifies () =
  let m = assignment_model () in
  let out, stats = Mip.solve ~limits:exact_limits m in
  ignore (get_optimal "assignment" out);
  check_clean "assignment" (C.certify_mip m out stats)

let test_optimal_certifies_with_presolve () =
  (* Certificates are against the pre-presolve model; presolve must not
     break them (bound back-mapping may only weaken, never invalidate). *)
  let m = Lp.create () in
  let fixed = Lp.add_var m ~lb:1. ~ub:1. ~integer:true () in
  let x = Lp.binary m () and y = Lp.binary m () and z = Lp.binary m () in
  Lp.add_constr m [ (1., fixed); (1., x); (1., y) ] Lp.Ge 2.;
  Lp.add_constr m [ (1., x); (1., y); (1., z) ] Lp.Le 10.;
  Lp.add_constr m [ (2., z) ] Lp.Le 1.;
  Lp.set_objective m Lp.Minimize [ (5., fixed); (2., x); (3., y); (1., z) ];
  let out, stats = Mip.solve ~limits:exact_limits ~presolve:true m in
  ignore (get_optimal "presolved" out);
  check_clean "presolved" (C.certify_mip m out stats)

let test_node_limited_certifies () =
  (* An interrupted solve's (bound, gap) bookkeeping must still certify. *)
  let m = assignment_model () in
  let limits = { exact_limits with Mip.node_limit = Some 1 } in
  let out, stats = Mip.solve ~limits m in
  check_clean "node-limited" (C.certify_mip m out stats)

(* ------------------------------------------------------------------ *)
(* Corrupted solutions are rejected with stable codes                  *)
(* ------------------------------------------------------------------ *)

let solve_assignment () =
  let m = assignment_model () in
  let out, stats = Mip.solve ~limits:exact_limits m in
  (m, get_optimal "assignment" out, stats)

let test_flipped_binary_rejected () =
  let m, sol, stats = solve_assignment () in
  for j = 0 to Array.length sol.Mip.x - 1 do
    let x = Array.copy sol.Mip.x in
    x.(j) <- 1. -. x.(j);
    let ds = C.certify_mip m (Mip.Optimal { sol with Mip.x }) stats in
    Alcotest.(check bool)
      (Printf.sprintf "flip %d rejected" j) true (D.has_errors ds);
    Alcotest.(check bool)
      (Printf.sprintf "flip %d violates a row (C004)" j) true
      (has_code "C004" ds)
  done

let test_corrupted_objective_rejected () =
  let m, sol, stats = solve_assignment () in
  let out = Mip.Optimal { sol with Mip.obj = sol.Mip.obj +. 10. } in
  let ds = C.certify_mip m out stats in
  Alcotest.(check bool) "rejected" true (D.has_errors ds);
  Alcotest.(check bool) "claimed objective (C005)" true (has_code "C005" ds)

let test_malformed_vector_rejected () =
  let m, sol, stats = solve_assignment () in
  let out = Mip.Optimal { sol with Mip.x = [| 1.; 0. |] } in
  let ds = C.certify_mip m out stats in
  Alcotest.(check bool) "rejected" true (D.has_errors ds);
  Alcotest.(check bool) "malformed vector (C001)" true (has_code "C001" ds)

let test_fractional_rejected () =
  let m, sol, stats = solve_assignment () in
  let x = Array.copy sol.Mip.x in
  x.(0) <- 0.5;
  let ds = C.certify_mip m (Mip.Optimal { sol with Mip.x }) stats in
  Alcotest.(check bool) "rejected" true (D.has_errors ds);
  Alcotest.(check bool) "integrality (C003)" true (has_code "C003" ds)

(* ------------------------------------------------------------------ *)
(* Dual and Farkas machinery                                           *)
(* ------------------------------------------------------------------ *)

let test_lagrangian_bound_exact () =
  (* min x s.t. x >= 1, 0 <= x <= 2: y = [1] is in the cone (Ge row),
     d = 1 - 1 = 0, so L(y) = y·b = 1 = the optimum. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. () in
  Lp.add_constr m [ (1., x) ] Lp.Ge 1.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let std = Lp.standardize m in
  let y, ds = C.clamp_duals std [| 1. |] in
  Alcotest.(check int) "in-cone y untouched" 0 (List.length ds);
  Alcotest.(check (float 1e-9)) "L(y) = optimum" 1. (C.lagrangian_bound std y)

let test_clamp_out_of_cone () =
  (* y = [-1] on a Ge row is outside the dual cone: clamped + C101. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. () in
  Lp.add_constr m [ (1., x) ] Lp.Ge 1.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let std = Lp.standardize m in
  let y, ds = C.clamp_duals std [| -1. |] in
  Alcotest.(check (float 0.)) "clamped to zero" 0. y.(0);
  Alcotest.(check bool) "reported (C101)" true (has_code "C101" ds);
  (* The clamped vector still yields a valid (weaker) bound: L(0) = 0. *)
  Alcotest.(check (float 1e-9)) "bound after clamp" 0.
    (C.lagrangian_bound std y)

let test_infeasible_farkas_certifies () =
  (* x + y >= 3 over binaries is infeasible; the solver's ray must
     re-prove it and certify_mip must accept the claim. *)
  let m = Lp.create () in
  let x = Lp.binary m () and y = Lp.binary m () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 3.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let out, stats = Mip.solve ~limits:exact_limits m in
  (match out with
   | Mip.Infeasible -> ()
   | out -> Alcotest.failf "expected infeasible, got %a" Mip.pp_outcome out);
  (match stats.Mip.audit.Mip.farkas with
   | None -> Alcotest.fail "no Farkas ray returned"
   | Some ray ->
     Alcotest.(check bool) "ray proves infeasibility" true
       (C.farkas_proves_infeasible (Lp.standardize m) ray));
  check_clean "infeasible" (C.certify_mip m out stats)

let test_farkas_rejects_feasible () =
  (* No multiplier can "prove" a feasible model infeasible. *)
  let m = assignment_model () in
  let std = Lp.standardize m in
  List.iter
    (fun ray ->
       Alcotest.(check bool) "junk ray rejected" false
         (C.farkas_proves_infeasible std ray))
    [ [| 1.; 1.; 1.; 1. |]; [| -1.; 2.; 0.; 0.5 |]; [| 0.; 0.; 0.; 0. |] ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

type knap = { values : int list; weights : int list; cap : int }

let gen_knap =
  let open QCheck2.Gen in
  let* n = int_range 1 10 in
  let* values = list_size (return n) (int_range 1 50) in
  let* weights = list_size (return n) (int_range 1 20) in
  let total = List.fold_left ( + ) 0 weights in
  let* cap = int_range 1 (max 1 total) in
  return { values; weights; cap }

let knap_model k =
  let m = Lp.create () in
  let vars = List.map (fun _ -> Lp.binary m ()) k.values in
  Lp.add_constr m
    (List.map2 (fun w v -> (float_of_int w, v)) k.weights vars)
    Lp.Le (float_of_int k.cap);
  Lp.set_objective m Lp.Maximize
    (List.map2 (fun value v -> (float_of_int value, v)) k.values vars);
  m

let prop_optimal_certifies =
  QCheck2.Test.make ~count:80
    ~name:"every Optimal outcome passes full certification" gen_knap
    (fun k ->
       let m = knap_model k in
       match Mip.solve ~limits:exact_limits m with
       | Mip.Optimal _ as out, stats ->
         not (D.has_errors (C.certify_mip m out stats))
       | _ -> false)

let prop_weak_duality =
  QCheck2.Test.make ~count:100
    ~name:"LP-relaxation duals satisfy weak duality" gen_knap
    (fun k ->
       let std = Lp.standardize (knap_model k) in
       let t = Simplex.create std in
       match Simplex.reoptimize t with
       | Simplex.Optimal ->
         let y, _ = C.clamp_duals std (Simplex.duals t) in
         let lb = C.lagrangian_bound std y in
         let obj = Lp.eval_objective std (Simplex.primal t) in
         (* all variables are boxed, so the bound is finite *)
         Float.is_finite lb && lb <= obj +. 1e-6 *. (1. +. Float.abs obj)
       | _ -> false)

type card = { costs : int list; k : int; flip : int }

let gen_card =
  let open QCheck2.Gen in
  let* n = int_range 2 10 in
  let* costs = list_size (return n) (int_range 1 50) in
  let* k = int_range 1 n in
  let* flip = int_range 0 (n - 1) in
  return { costs; k; flip }

let prop_mutated_incumbent_rejected =
  QCheck2.Test.make ~count:80
    ~name:"a mutated incumbent (one flipped binary) is always rejected"
    gen_card
    (fun c ->
       (* min-cost cardinality selection: sum x = k makes every single-bit
          flip provably infeasible. *)
       let m = Lp.create () in
       let vars = List.map (fun _ -> Lp.binary m ()) c.costs in
       Lp.add_constr m (List.map (fun v -> (1., v)) vars) Lp.Eq
         (float_of_int c.k);
       Lp.set_objective m Lp.Minimize
         (List.map2 (fun cost v -> (float_of_int cost, v)) c.costs vars);
       match Mip.solve ~limits:exact_limits m with
       | Mip.Optimal sol, stats ->
         let x = Array.copy sol.Mip.x in
         x.(c.flip) <- 1. -. x.(c.flip);
         let ds = C.certify_mip m (Mip.Optimal { sol with Mip.x }) stats in
         D.has_errors ds && has_code "C004" ds
       | _ -> false)

(* ------------------------------------------------------------------ *)
(* Domain certificates on the bundled instances                        *)
(* ------------------------------------------------------------------ *)

let bundled_instances () =
  (* cwd is _build/default/test under `dune runtest` *)
  let dir = if Sys.file_exists "instances" then "instances" else "../instances" in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let test_qp_agrees_with_cost_model () =
  (* The QP MIP's objective-(6) claim must match the independent
     Cost_model evaluation on every bundled instance (C201/C202 clean). *)
  let files = bundled_instances () in
  Alcotest.(check bool) "found bundled instances" true (files <> []);
  List.iter
    (fun file ->
       let inst = Codec.load_instance file in
       let options =
         { Qp_solver.default_options with
           Qp_solver.certify = true; time_limit = 10. }
       in
       let r = Qp_solver.solve ~options inst in
       match r.Qp_solver.certificate with
       | None -> Alcotest.failf "%s: no certificate returned" file
       | Some ds -> check_clean file ds)
    files

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "certify"
    [ ( "clean",
        [ Alcotest.test_case "optimal certifies" `Quick test_optimal_certifies;
          Alcotest.test_case "optimal certifies with presolve" `Quick
            test_optimal_certifies_with_presolve;
          Alcotest.test_case "node-limited solve certifies" `Quick
            test_node_limited_certifies;
        ] );
      ( "corrupted",
        [ Alcotest.test_case "flipped binary rejected (C004)" `Quick
            test_flipped_binary_rejected;
          Alcotest.test_case "corrupted objective rejected (C005)" `Quick
            test_corrupted_objective_rejected;
          Alcotest.test_case "malformed vector rejected (C001)" `Quick
            test_malformed_vector_rejected;
          Alcotest.test_case "fractional binary rejected (C003)" `Quick
            test_fractional_rejected;
        ] );
      ( "dual",
        [ Alcotest.test_case "lagrangian bound exact" `Quick
            test_lagrangian_bound_exact;
          Alcotest.test_case "clamp out-of-cone duals (C101)" `Quick
            test_clamp_out_of_cone;
          Alcotest.test_case "infeasible Farkas certifies (C107 clean)" `Quick
            test_infeasible_farkas_certifies;
          Alcotest.test_case "farkas rejects feasible model" `Quick
            test_farkas_rejects_feasible;
        ] );
      ( "bundled-instances",
        [ Alcotest.test_case "qp agrees with cost model" `Slow
            test_qp_agrees_with_cost_model ] );
      ( "properties",
        [ q prop_optimal_certifies;
          q prop_weak_duality;
          q prop_mutated_incumbent_rejected;
        ] );
    ]
